#!/usr/bin/env bash
# Full local gate: warnings-as-errors build + tests, secret-hygiene lint,
# the concurrency suite under TSan, then the same suite under ASan(+LSan)
# and UBSan.
#
#   scripts/check.sh            # everything (tier-1, lint, tsan, asan, ubsan)
#   scripts/check.sh --fast     # tier-1 build + tests + lint + tsan only
#
# Run from anywhere; paths resolve relative to the repo root.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "$repo_root"

jobs="$(nproc 2>/dev/null || echo 2)"
fast=0
[[ "${1:-}" == "--fast" ]] && fast=1

step() { printf '\n=== %s ===\n' "$*"; }

step "tier-1: configure + build (-Werror)"
cmake --preset default >/dev/null
cmake --build --preset default -j "$jobs"

step "tier-1: ctest"
ctest --preset default -j "$jobs"

step "mbtls-lint: src/ tests/ tools/ bench/ (dataflow + baseline)"
# Machine-readable findings; the per-rule counts land on stderr. A finding
# is fatal unless it is in the reviewed baseline (tools/lint/lint_baseline.txt).
lint_json=/tmp/mbtls-lint-findings.json
if ./build/tools/lint/mbtls-lint --json --baseline tools/lint/lint_baseline.txt \
    src tests tools bench > "$lint_json"; then
  echo "lint clean (findings: $lint_json)"
else
  echo "lint FAILED — non-baselined findings:" >&2
  cat "$lint_json" >&2
  exit 1
fi

step "transport: posix backend + cross-backend conformance + loopback"
# TimerWheel/EpollLoop units (including cross-thread post/wakeup), the
# multi-loop SO_REUSEPORT LoopGroup suite, the sim-vs-epoll conformance
# matrix (including the transport-glue bugfix regressions), the timer-driven
# ticket rotator, and the loopback integration passes (three-thread and
# 4-loop-per-tier) — all over real 127.0.0.1 sockets.
ctest --preset default \
  -R 'TimerWheel\.|EpollLoop\.|LoopGroup\.|TransportConformance/|PosixLoopback\.|TransportGlue\.|TicketRotator\.' \
  --output-on-failure

step "chaos: fault-injection pass (ctest -R Chaos)"
ctest --preset default -R 'Chaos\.' --output-on-failure

step "trace: protocol-invariant pass (ctest -R TraceInvariants)"
ctest --preset default -R 'TraceInvariants\.' --output-on-failure

step "bench: quick run + JSON emission (scripts/bench.sh --quick --churn)"
# --churn smokes the control-plane harness too: sharded cache + ticket
# rotation + cert pool, with the resumed>=5x and cert-hit>=90% floors on.
scripts/bench.sh --quick --churn --out /tmp/mbtls-bench-check

# The multi-core data plane is the only concurrent subsystem; its tests
# (pool semantics + the parallel-vs-serial byte-identical cross-check) run
# under TSan even in --fast mode — a data race there corrupts sessions
# silently, which nothing else in the gate would catch.
step "tsan: build concurrency tests"
cmake --preset tsan >/dev/null
cmake --build --preset tsan -j "$jobs" --target test_workpool test_posix_loopback \
  test_posix_net test_transport_conformance test_control_plane

step "tsan: WorkPool / ReprotectPipeline / DrbgThreading"
ctest --preset tsan -R 'SpscRing\.|WorkPool\.|ReprotectPipeline\.|DrbgThreading\.' \
  --output-on-failure

# The control-plane caches (sharded session cache, cert pool, quote cache,
# ticket key rotation) are hit from the worker pool while the main thread
# rotates keys — the mutex-striping and atomic counters must hold up.
step "tsan: control-plane shard hammer"
ctest --preset tsan -R 'ControlPlaneConcurrency\.' --output-on-failure

# The loopback integration tests drive epoll loops on real threads — three
# single loops in the flagship pass, 4-loop SO_REUSEPORT groups per tier in
# the multi-loop pass — plus the cross-thread post/eventfd-wakeup units and
# the conformance matrix, all under the same instrumentation. Transport is
# the subsystem where a missed happens-before corrupts sessions silently.
step "tsan: posix loopback + loop groups + transport conformance"
ctest --preset tsan \
  -R 'PosixLoopback\.|LoopGroup\.|EpollLoop\.(Posted|Pending|CrossThread)|TransportConformance/' \
  --output-on-failure

if [[ "$fast" == 1 ]]; then
  step "fast mode: skipping sanitizer builds"
  exit 0
fi

step "asan: configure + build"
cmake --preset asan >/dev/null
cmake --build --preset asan -j "$jobs"

step "asan: ctest (leaks + stack-use-after-return on)"
ctest --preset asan -j "$jobs"

step "ubsan: configure + build"
cmake --preset ubsan >/dev/null
cmake --build --preset ubsan -j "$jobs"

step "ubsan: ctest (halt on first report)"
ctest --preset ubsan -j "$jobs"

step "all checks passed"
