#!/usr/bin/env bash
# Perf-regression harness: build the bench binaries (Release) and emit the
# machine-readable benchmark record.
#
#   scripts/bench.sh                 # full run -> BENCH_micro.json,
#                                    #            BENCH_fig5.json,
#                                    #            BENCH_fig7.json in repo root
#   scripts/bench.sh --quick         # tiny budgets (CI / smoke)
#   scripts/bench.sh --c10k          # additionally run the real-socket
#                                    # C10K harness -> BENCH_c10k.json
#   scripts/bench.sh --churn         # additionally run the control-plane
#                                    # churn harness -> BENCH_churn.json
#                                    # (enforces: resumed handshakes >= 5x
#                                    # full rate; cert-pool hit >= 90%)
#   scripts/bench.sh --out DIR       # write the JSON files elsewhere
#   scripts/bench.sh --backend B     # pin the crypto backend (auto|scalar|aesni)
#                                    # via MBTLS_CRYPTO_BACKEND for every binary
#
# bench_microcrypto additionally enforces the fast-vs-reference speedup
# floors (p256 mul_base >= 3x, AES-GCM seal >= 1.5x, and — when the aesni
# backend resolves — AES-NI seal >= 3x over the scalar fast path), so a perf
# regression fails this script. The JSON files in the repo root are the
# committed baseline; re-run this script and commit the diff when the crypto
# changes. Every JSON records the backend + CPU features that produced it,
# so a baseline refreshed under --backend scalar is distinguishable from an
# AES-NI one.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "$repo_root"

out_dir="$repo_root"
quick=0
c10k=0
churn=0
backend=""
while [[ $# -gt 0 ]]; do
  case "$1" in
    --quick) quick=1; shift ;;
    --c10k) c10k=1; shift ;;
    --churn) churn=1; shift ;;
    --out) out_dir="$2"; shift 2 ;;
    --backend) backend="$2"; shift 2 ;;
    *) echo "usage: scripts/bench.sh [--quick] [--c10k] [--churn] [--out DIR] [--backend auto|scalar|aesni]" >&2; exit 2 ;;
  esac
done
mkdir -p "$out_dir"
if [[ -n "$backend" ]]; then
  export MBTLS_CRYPTO_BACKEND="$backend"
  echo "crypto backend pinned: MBTLS_CRYPTO_BACKEND=$backend"
fi

jobs="$(nproc 2>/dev/null || echo 2)"

echo "=== bench: configure + build (Release) ==="
cmake --preset default >/dev/null
targets=(bench_microcrypto bench_fig5_handshake_cpu bench_fig7_sgx_throughput)
[[ "$c10k" == 1 ]] && targets+=(bench_c10k)
[[ "$churn" == 1 ]] && targets+=(bench_churn)
cmake --build --preset default -j "$jobs" --target "${targets[@]}"

micro_args=()
fig5_args=(--trials 20)
fig7_args=(--seconds 0.25)
# Full runs enforce the scaling floors (>=2.5x capacity at 4 workers,
# batching closes >=30% of the enclave gap); quick runs only smoke the grid.
scaling_args=(--scaling --records 64 --enforce)
if [[ "$quick" == 1 ]]; then
  micro_args=(--quick)
  fig5_args=(--trials 2)
  fig7_args=(--seconds 0.01)
  scaling_args=(--scaling --records 4)
fi

echo
echo "=== bench_microcrypto ==="
./build/bench/bench_microcrypto "${micro_args[@]}" --json "$out_dir/BENCH_micro.json"

echo
echo "=== bench_fig5_handshake_cpu ==="
./build/bench/bench_fig5_handshake_cpu "${fig5_args[@]}" --json "$out_dir/BENCH_fig5.json"

echo
echo "=== bench_fig7_sgx_throughput ==="
./build/bench/bench_fig7_sgx_throughput "${fig7_args[@]}" --json "$out_dir/BENCH_fig7.json"

echo
echo "=== bench_fig7_sgx_throughput --scaling (multi-core data plane) ==="
./build/bench/bench_fig7_sgx_throughput "${scaling_args[@]}" \
  --json "$out_dir/BENCH_fig7_scaling.json"

if [[ "$c10k" == 1 ]]; then
  echo
  echo "=== bench_c10k (multi-loop SO_REUSEPORT grid, real loopback sockets) ==="
  # Full grid sweeps loops {1,2,4} plus the 10k-session row at 4 loops and
  # enforces the >=2.5x capacity-scaling floor (4 loops vs 1); quick mode
  # runs a tiny {1,2}-loop grid with no floor.
  c10k_args=(--grid)
  [[ "$quick" == 1 ]] && c10k_args=(--quick --grid)  # 25 sessions, 0.3 s window
  ./build/bench/bench_c10k "${c10k_args[@]}" --json "$out_dir/BENCH_c10k.json"
fi

if [[ "$churn" == 1 ]]; then
  echo
  echo "=== bench_churn (session cache + tickets + cert pool under churn) ==="
  churn_args=()
  [[ "$quick" == 1 ]] && churn_args=(--quick)  # 6 clients x 5 sessions, 40 origins
  ./build/bench/bench_churn "${churn_args[@]}" --json "$out_dir/BENCH_churn.json"
fi

echo
echo "wrote: $out_dir/BENCH_micro.json $out_dir/BENCH_fig5.json $out_dir/BENCH_fig7.json $out_dir/BENCH_fig7_scaling.json"
if [[ "$c10k" == 1 ]]; then
  echo "wrote: $out_dir/BENCH_c10k.json"
fi
if [[ "$churn" == 1 ]]; then
  echo "wrote: $out_dir/BENCH_churn.json"
fi
grep -o '"backend":"[^"]*","cpu_features":"[^"]*"' "$out_dir/BENCH_micro.json" \
  | sed 's/^/recorded /' || true
