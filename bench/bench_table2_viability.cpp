// Table 2 — Handshake Viability.
//
// The paper performed mbTLS handshakes from 241 client sites across nine
// network types (via Tor exit nodes plus manual vantage points) toward a
// middlebox + server in Azure, checking that on-path filters (firewalls,
// traffic normalizers, IDSes) do not drop the new TLS extension and record
// types. All 241 handshakes succeeded.
//
// Substitution: each site is a simulated client network whose access path
// carries a randomly drawn filter chain. Filter models implement the
// standard real-world behaviours: stateful L4 firewalls (TCP-only checks),
// TLS traffic normalizers (validate record framing + known versions,
// forward unknown record *types*), and DPI/IDS boxes (validate framing,
// inspect, forward). A control arm sends malformed TLS framing to show the
// filters are not vacuous — those connections die.
#include <cstdio>
#include <map>

#include "bench/bench_common.h"
#include "mbtls/transport.h"

namespace mbtls::bench {
namespace {

using namespace net;

struct NetworkType {
  const char* name;
  int sites;   // from the paper's Table 2
  Time base_rtt_ms;
};

constexpr NetworkType kTypes[] = {
    {"Enterprise", 6, 30},   {"University", 11, 20}, {"Residential", 34, 25},
    {"Public", 1, 40},       {"Mobile", 2, 60},      {"Hosting", 56, 10},
    {"Colocation Services", 35, 12}, {"Data Center", 19, 8}, {"Uncategorized", 77, 35},
};

// ---------------------------------------------------------------- filters

/// A TLS-aware traffic normalizer: parses record framing; drops connections
/// carrying malformed records or unknown protocol *versions*; forwards
/// unknown record types (they are length-delimited and cause no ambiguity).
net::LinkTap make_normalizer(bool* tripped) {
  auto reassembly = std::make_shared<std::map<bool, Bytes>>();
  return [reassembly, tripped](Packet& p, bool a_to_b) {
    if (p.payload.empty()) return TapVerdict::kPass;
    Bytes& buffer = (*reassembly)[a_to_b];
    append(buffer, p.payload);
    // Validate complete records at the front of the stream.
    while (buffer.size() >= tls::kRecordHeaderSize) {
      const std::uint16_t version = get_u16(buffer, 1);
      const std::uint16_t length = get_u16(buffer, 3);
      if ((version >> 8) != 0x03 || length > tls::kMaxRecordPayload + 256) {
        *tripped = true;
        return TapVerdict::kDrop;
      }
      if (buffer.size() < tls::kRecordHeaderSize + length) break;
      buffer.erase(buffer.begin(),
                   buffer.begin() + static_cast<std::ptrdiff_t>(tls::kRecordHeaderSize + length));
    }
    return TapVerdict::kPass;
  };
}

/// A stateful L4 firewall: drops obviously bogus TCP (none in our runs) —
/// application payloads pass untouched.
net::LinkTap make_firewall() {
  return [](Packet& p, bool) {
    if (p.flags.syn && p.flags.fin) return TapVerdict::kDrop;  // classic bogon
    return TapVerdict::kPass;
  };
}

struct SiteResult {
  bool handshake_ok;
  bool malformed_control_blocked;
};

const Identity& server_identity() {
  static const Identity id = make_identity("service.example", x509::KeyType::kEcdsaP256);
  return id;
}

const Identity& mbox_identity() {
  static const Identity id = make_identity("edge-proxy.example", x509::KeyType::kEcdsaP256);
  return id;
}

SiteResult run_site(const NetworkType& type, int site_index, std::uint64_t seed) {
  Simulator sim;
  Network network(sim, seed);
  const NodeId nc = network.add_node("client");
  const NodeId nf = network.add_node("access-router");  // where filters sit
  const NodeId nm = network.add_node("azure-mbox");
  const NodeId ns = network.add_node("azure-server");

  crypto::Drbg site_rng("table2-site", seed);
  const Time rtt = (type.base_rtt_ms + site_rng.uniform(40)) * kMillisecond;
  network.add_link(nc, nf, {.propagation = 2 * kMillisecond});
  network.add_link(nf, nm, {.propagation = rtt / 2});
  network.add_link(nm, ns, {.propagation = 1 * kMillisecond});

  // Draw this site's filter chain: every site has a firewall; most have a
  // normalizer; some have DPI (same framing checks in this model).
  bool normalizer_tripped = false;
  network.add_tap(nc, nf, make_firewall());
  const double r = site_rng.real();
  if (r < 0.7) network.add_tap(nf, nm, make_normalizer(&normalizer_tripped));
  if (r < 0.25) network.add_tap(nc, nf, make_normalizer(&normalizer_tripped));

  Host client_host(network, nc);
  Host mbox_host(network, nm);
  Host server_host(network, ns);

  mb::ServerSession::Options sopts;
  sopts.tls.private_key = server_identity().key;
  sopts.tls.certificate_chain = server_identity().chain;
  sopts.tls.rng_seed = seed;
  mb::ServerSession server(std::move(sopts));
  std::unique_ptr<mb::SocketBinding<mb::ServerSession>> server_binding;
  server_host.listen(443, [&](Socket& socket) {
    server_binding = std::make_unique<mb::SocketBinding<mb::ServerSession>>(server, socket);
  });

  // Client-side middlebox in the data center, as in the paper's deployment.
  mb::Middlebox::Options mopts;
  mopts.name = "edge-proxy.example";
  mopts.side = mb::Middlebox::Side::kClientSide;
  mopts.private_key = mbox_identity().key;
  mopts.certificate_chain = mbox_identity().chain;
  mb::Middlebox mbox(std::move(mopts));
  std::unique_ptr<mb::MiddleboxBinding> mbox_binding;
  mbox_host.listen(443, [&](Socket& downstream) {
    Socket& upstream = mbox_host.connect(ns, 443);
    mbox_binding = std::make_unique<mb::MiddleboxBinding>(mbox, downstream, upstream);
  });

  mb::ClientSession::Options copts;
  copts.tls.trust_anchors = {ca().root()};
  copts.tls.server_name = "service.example";
  copts.tls.rng_seed = seed + 1;
  mb::ClientSession client(std::move(copts));
  Socket& client_socket = client_host.connect(nm, 443);
  mb::SocketBinding<mb::ClientSession> binding(client, client_socket);
  client_socket.on_connect = [&] {
    client.start();
    binding.flush();
  };
  sim.run(3'000'000);
  const bool ok = client.established() && server.established() && mbox.joined();

  // Control arm: a raw sender pushing malformed "TLS" from the same site
  // must be stopped by the normalizer (when one is present on this path).
  bool control_blocked = false;
  if (normalizer_tripped) {
    control_blocked = true;  // already tripped during some run: impossible here
  } else {
    Host rogue(network, nc);
    bool delivered_garbage = false;
    mbox_host.listen(9443, [&](Socket& s) {
      s.on_data = [&](ByteView) { delivered_garbage = true; };
    });
    Socket& rogue_socket = rogue.connect(nm, 9443);
    rogue_socket.on_connect = [&] {
      Bytes junk = {0x16, 0x09, 0x09, 0xff, 0xff};  // bogus version + length
      append(junk, crypto::Drbg("junk", seed).bytes(64));
      rogue_socket.send(junk);
    };
    sim.run(4'000'000);
    const bool path_has_normalizer = r < 0.7 || r < 0.25;
    control_blocked = !path_has_normalizer || !delivered_garbage;
  }
  (void)site_index;
  return {ok, control_blocked};
}

}  // namespace
}  // namespace mbtls::bench

int main() {
  using namespace mbtls::bench;
  std::printf("=== Table 2: mbTLS handshake viability across client network types ===\n");
  std::printf("Each site: simulated access network with drawn on-path filter chain.\n\n");
  std::printf("%-22s %7s %10s %10s   %s\n", "network type", "sites", "success", "failed",
              "control (garbage blocked where filtered)");
  int total = 0, ok_total = 0, control_ok = 0;
  std::uint64_t seed = 1;
  for (const auto& type : kTypes) {
    int ok = 0, control = 0;
    for (int i = 0; i < type.sites; ++i, ++seed) {
      const auto result = run_site(type, i, seed);
      ok += result.handshake_ok;
      control += result.malformed_control_blocked;
    }
    std::printf("%-22s %7d %10d %10d   %d/%d\n", type.name, type.sites, ok, type.sites - ok,
                control, type.sites);
    total += type.sites;
    ok_total += ok;
    control_ok += control;
  }
  std::printf("%-22s %7d %10d %10d\n", "Total", total, ok_total, total - ok_total);
  std::printf("\nPaper: 241 sites, all handshakes successful. Reproduced: %d/%d successful.\n",
              ok_total, total);
  return 0;
}
