// Hot-path crypto microbenchmarks: fast vs reference implementations.
//
// Every optimized primitive ships alongside the reference implementation it
// was differentially tested against (see MBTLS_REFERENCE_CRYPTO), so this
// binary can measure both in one process and report the speedup directly:
//   * P-256 scalar multiplication — fixed-window comb (mul_base), fixed
//     window with per-point table (mul), Shamir interleaving (mul_add) vs
//     the plain double-and-add ladder,
//   * AES-GCM seal/open — 4-block interleaved CTR + word XOR + table GHASH
//     vs block-at-a-time CTR with bit-serial GHASH,
//   * BigInt::mod_exp — sliding-window vs bit-at-a-time Montgomery ladder,
//   * the record layer — allocation-free seal_into vs the allocating seal.
//
// `--json PATH` writes the numbers machine-readably (BENCH_micro.json is the
// committed perf-regression baseline; scripts/bench.sh refreshes it);
// `--quick` shrinks the measurement budget for the bench_smoke ctest.
#include <chrono>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "bignum/bignum.h"
#include "crypto/backend.h"
#include "crypto/drbg.h"
#include "crypto/gcm.h"
#include "ec/p256.h"
#include "tls/record.h"

namespace mbtls::bench {
namespace {

/// Seconds of measurement per primitive (after one warmup call).
double g_budget = 0.2;

/// Mean wall time per call in microseconds, growing the iteration count
/// until the budget is filled (so fast and slow primitives are measured with
/// comparable noise).
template <typename F>
double us_per_op(F&& f) {
  f();  // warmup
  long iters = 1;
  for (;;) {
    const auto t0 = std::chrono::steady_clock::now();
    for (long i = 0; i < iters; ++i) f();
    const double dt =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    if (dt >= g_budget || iters >= (1L << 30)) {
      return dt / static_cast<double>(iters) * 1e6;
    }
    const double target = dt > 0 ? g_budget / dt * 1.2 : 16.0;
    iters = static_cast<long>(static_cast<double>(iters) * std::min(target, 16.0)) + 1;
  }
}

struct Metric {
  std::string name;
  std::string unit;    // "us_per_op" (lower better) or "mb_per_s" (higher better)
  double fast = 0;
  double reference = 0;
  double speedup = 0;  // always >1 means the fast path wins
};

void p256_metrics(std::vector<Metric>& out) {
  const auto& curve = ec::P256::instance();
  crypto::Drbg rng_local("bench-micro-p256", 1);
  const ec::U256 k1 = curve.random_scalar(rng_local);
  const ec::U256 k2 = curve.random_scalar(rng_local);
  const ec::AffinePoint q = curve.mul_base_reference(k2);

  Metric base{"p256_mul_base", "us_per_op", 0, 0, 0};
  base.fast = us_per_op([&] { (void)curve.mul_base(k1); });
  base.reference = us_per_op([&] { (void)curve.mul_base_reference(k1); });
  base.speedup = base.reference / base.fast;
  out.push_back(base);

  Metric mul{"p256_mul", "us_per_op", 0, 0, 0};
  mul.fast = us_per_op([&] { (void)curve.mul(k1, q); });
  mul.reference = us_per_op([&] { (void)curve.mul_reference(k1, q); });
  mul.speedup = mul.reference / mul.fast;
  out.push_back(mul);

  Metric ma{"p256_mul_add", "us_per_op", 0, 0, 0};
  ma.fast = us_per_op([&] { (void)curve.mul_add(k1, k2, q); });
  ma.reference = us_per_op([&] { (void)curve.mul_add_reference(k1, k2, q); });
  ma.speedup = ma.reference / ma.fast;
  out.push_back(ma);
}

/// Forces a crypto backend for the enclosing scope (bench-local copy of the
/// test guard; backend choice is captured per AesGcm at construction).
class BackendGuard {
 public:
  explicit BackendGuard(crypto::Backend b) : saved_(crypto::active_backend()) {
    crypto::force_backend_for_testing(b);
  }
  ~BackendGuard() { crypto::force_backend_for_testing(saved_); }
  BackendGuard(const BackendGuard&) = delete;
  BackendGuard& operator=(const BackendGuard&) = delete;

 private:
  crypto::Backend saved_;
};

void gcm_metrics(std::vector<Metric>& out) {
  // The committed aes_gcm_* floors predate the dispatch layer: they gauge
  // the scalar fast path (4-block CTR + table GHASH) against the bit-serial
  // reference. Pin the scalar backend here so those numbers keep meaning the
  // same thing on AES-NI hosts; gcm_accel_metrics covers the new backend.
  BackendGuard guard(crypto::Backend::kScalar);
  crypto::Drbg rng_local("bench-micro-gcm", 2);
  const crypto::AesGcm aead(rng_local.bytes(32));
  const Bytes iv = rng_local.bytes(12);
  const Bytes aad = rng_local.bytes(13);

  for (const std::size_t size : {std::size_t{1500}, std::size_t{8192}}) {
    const Bytes plaintext = rng_local.bytes(size);
    Bytes scratch(size + crypto::AesGcm::kTagSize);

    Metric seal{"aes_gcm_seal_" + std::to_string(size), "mb_per_s", 0, 0, 0};
    const double fast_us = us_per_op([&] { aead.seal_into(iv, aad, plaintext, scratch); });
    const double ref_us = us_per_op([&] { (void)aead.seal_reference(iv, aad, plaintext); });
    seal.fast = static_cast<double>(size) / fast_us;  // bytes/us == MB/s
    seal.reference = static_cast<double>(size) / ref_us;
    seal.speedup = seal.fast / seal.reference;
    out.push_back(seal);

    if (size == 8192) {
      const Bytes sealed = aead.seal(iv, aad, plaintext);
      Bytes open_scratch(size);
      Metric open{"aes_gcm_open_" + std::to_string(size), "mb_per_s", 0, 0, 0};
      const double fo_us = us_per_op([&] {
        if (!aead.open_into(iv, aad, sealed, open_scratch)) std::abort();
      });
      const double ro_us = us_per_op([&] {
        if (!aead.open_reference(iv, aad, sealed)) std::abort();
      });
      open.fast = static_cast<double>(size) / fo_us;
      open.reference = static_cast<double>(size) / ro_us;
      open.speedup = open.fast / open.reference;
      out.push_back(open);
    }
  }
}

/// AES-NI/PCLMUL backend vs the *scalar fast path* (not the bit-serial
/// reference): `fast` is an AesGcm built under the resolved accelerated
/// backend, `reference` the same key forced scalar. Only emitted when the
/// active backend is aesni — on other hosts (or under
/// MBTLS_CRYPTO_BACKEND=scalar) the metrics and their floor are absent.
void gcm_accel_metrics(std::vector<Metric>& out) {
  if (crypto::active_backend() != crypto::Backend::kAesni) return;
  crypto::Drbg rng_local("bench-micro-gcm-accel", 6);
  const Bytes key = rng_local.bytes(32);
  const Bytes iv = rng_local.bytes(12);
  const Bytes aad = rng_local.bytes(13);
  const crypto::AesGcm accel(key);
  BackendGuard guard(crypto::Backend::kScalar);
  const crypto::AesGcm scalar(key);

  for (const std::size_t size : {std::size_t{1500}, std::size_t{8192}}) {
    const Bytes plaintext = rng_local.bytes(size);
    Bytes scratch(size + crypto::AesGcm::kTagSize);

    Metric seal{"aes_gcm_seal_" + std::to_string(size) + "_aesni", "mb_per_s", 0, 0, 0};
    const double fast_us = us_per_op([&] { accel.seal_into(iv, aad, plaintext, scratch); });
    const double ref_us = us_per_op([&] { scalar.seal_into(iv, aad, plaintext, scratch); });
    seal.fast = static_cast<double>(size) / fast_us;
    seal.reference = static_cast<double>(size) / ref_us;
    seal.speedup = seal.fast / seal.reference;
    out.push_back(seal);

    if (size == 8192) {
      const Bytes sealed = accel.seal(iv, aad, plaintext);
      Bytes open_scratch(size);
      Metric open{"aes_gcm_open_" + std::to_string(size) + "_aesni", "mb_per_s", 0, 0, 0};
      const double fo_us = us_per_op([&] {
        if (!accel.open_into(iv, aad, sealed, open_scratch)) std::abort();
      });
      const double ro_us = us_per_op([&] {
        if (!scalar.open_into(iv, aad, sealed, open_scratch)) std::abort();
      });
      open.fast = static_cast<double>(size) / fo_us;
      open.reference = static_cast<double>(size) / ro_us;
      open.speedup = open.fast / open.reference;
      out.push_back(open);
    }
  }
}

void mod_exp_metric(std::vector<Metric>& out) {
  crypto::Drbg rng_local("bench-micro-rsa", 3);
  Bytes mod_bytes = rng_local.bytes(256);  // RSA-2048-sized operands
  mod_bytes[0] |= 0x80;
  mod_bytes[255] |= 1;
  const bn::BigInt modulus = bn::BigInt::from_bytes(mod_bytes);
  const bn::BigInt base = bn::BigInt::from_bytes(rng_local.bytes(256)) % modulus;
  const bn::BigInt exponent = bn::BigInt::from_bytes(rng_local.bytes(256));

  Metric m{"mod_exp_2048", "us_per_op", 0, 0, 0};
  m.fast = us_per_op([&] { (void)base.mod_exp(exponent, modulus); });
  m.reference = us_per_op([&] { (void)base.mod_exp_reference(exponent, modulus); });
  m.speedup = m.reference / m.fast;
  out.push_back(m);
}

void record_metric(std::vector<Metric>& out) {
  crypto::Drbg rng_local("bench-micro-record", 4);
  const tls::DirectionKeys keys{rng_local.bytes(32), rng_local.bytes(4)};
  const std::size_t size = 8192;
  const Bytes payload = rng_local.bytes(size);

  Metric m{"record_seal_8192", "mb_per_s", 0, 0, 0};
  {
    tls::HopChannel channel(keys);
    Bytes wire;
    const double us = us_per_op([&] {
      wire.clear();  // capacity is reused — steady state allocates nothing
      channel.seal_into(tls::ContentType::kApplicationData, payload, wire);
    });
    m.fast = static_cast<double>(size) / us;
  }
  {
    tls::HopChannel channel(keys);
    const double us = us_per_op(
        [&] { (void)channel.seal(tls::ContentType::kApplicationData, payload); });
    m.reference = static_cast<double>(size) / us;
  }
  m.speedup = m.fast / m.reference;
  out.push_back(m);
}

void record_trace_metric(std::vector<Metric>& out) {
  crypto::Drbg rng_local("bench-micro-trace", 5);
  const tls::DirectionKeys keys{rng_local.bytes(32), rng_local.bytes(4)};
  const std::size_t size = 8192;
  const Bytes payload = rng_local.bytes(size);

  // Zero-cost-when-disabled guard: the record path now carries its trace
  // branch unconditionally. With no sink attached, seal_into must stay
  // within noise of the raw AEAD data plane — the branch plus record
  // framing is all that separates them at 8 KB.
  Metric m{"record_seal_trace_off_8192", "mb_per_s", 0, 0, 0};
  {
    tls::HopChannel channel(keys);  // tracing compiled in, no sink attached
    Bytes wire;
    const double us = us_per_op([&] {
      wire.clear();
      channel.seal_into(tls::ContentType::kApplicationData, payload, wire);
    });
    m.fast = static_cast<double>(size) / us;
  }
  {
    const crypto::AesGcm aead(keys.key);
    const Bytes iv = rng_local.bytes(12);
    const Bytes aad = rng_local.bytes(13);
    Bytes scratch(size + crypto::AesGcm::kTagSize);
    const double us = us_per_op([&] { aead.seal_into(iv, aad, payload, scratch); });
    m.reference = static_cast<double>(size) / us;
  }
  m.speedup = m.fast / m.reference;
  out.push_back(m);
}

}  // namespace
}  // namespace mbtls::bench

int main(int argc, char** argv) {
  using namespace mbtls::bench;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") g_budget = 0.01;
  }
  const std::string json_path = json_arg(argc, argv);

  std::printf("=== Microcrypto: fast vs reference (budget %.2fs per primitive) ===\n", g_budget);
  std::printf("crypto backend: %s (features: %s)\n", mbtls::crypto::active_backend_name(),
              mbtls::crypto::cpu_feature_string().c_str());
  std::vector<Metric> metrics;
  p256_metrics(metrics);
  gcm_metrics(metrics);
  gcm_accel_metrics(metrics);
  mod_exp_metric(metrics);
  record_metric(metrics);
  record_trace_metric(metrics);

  std::printf("%-22s %12s %12s %9s  %s\n", "primitive", "fast", "reference", "speedup",
              "unit");
  for (const auto& m : metrics) {
    std::printf("%-22s %12.2f %12.2f %8.2fx  %s\n", m.name.c_str(), m.fast, m.reference,
                m.speedup, m.unit.c_str());
  }

  if (!json_path.empty()) {
    Json rows = Json::array();
    for (const auto& m : metrics) {
      rows.push(Json::object()
                    .add("name", m.name)
                    .add("unit", m.unit)
                    .add("fast", m.fast)
                    .add("reference", m.reference)
                    .add("speedup", m.speedup));
    }
    Json doc = Json::object().add("bench", std::string("microcrypto"));
    add_backend_fields(doc).add("metrics", rows);
    if (!doc.write_file(json_path)) {
      std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", json_path.c_str());
  }

  // Regression gate mirrored by the acceptance criteria: the windowed
  // ladder must beat the reference ladder 3x on the fixed base, and the
  // fast GCM data plane must beat the reference seal 1.5x. Sanitizer
  // instrumentation skews the two paths differently, so only uninstrumented
  // builds enforce the floor.
#ifdef MBTLS_SANITIZER_BUILD
  std::printf("sanitizer build: speedup floors not enforced\n");
  return 0;
#endif
  for (const auto& m : metrics) {
    if (m.name == "p256_mul_base" && m.speedup < 3.0) {
      std::fprintf(stderr, "FAIL: p256_mul_base speedup %.2fx < 3x\n", m.speedup);
      return 1;
    }
    if (m.name == "aes_gcm_seal_8192" && m.speedup < 1.5) {
      std::fprintf(stderr, "FAIL: aes_gcm_seal_8192 speedup %.2fx < 1.5x\n", m.speedup);
      return 1;
    }
    // Tracing must be free when disabled: the record path with its (never
    // taken) trace branch keeps at least 70% of raw AEAD throughput. The
    // generous floor absorbs single-core scheduling noise; a forgotten
    // unconditional argument render would cut this far below it.
    if (m.name == "record_seal_trace_off_8192" && m.speedup < 0.7) {
      std::fprintf(stderr, "FAIL: record_seal_trace_off_8192 ratio %.2fx < 0.7x\n", m.speedup);
      return 1;
    }
    // Accelerated-backend floor (only present when the aesni backend
    // resolved): AES-NI + PCLMUL must beat the scalar fast path 3x at 8 KB.
    // In practice it lands far higher; 3x catches a dispatch regression
    // (e.g. the per-object capture silently resolving scalar).
    if (m.name == "aes_gcm_seal_8192_aesni" && m.speedup < 3.0) {
      std::fprintf(stderr, "FAIL: aes_gcm_seal_8192_aesni speedup %.2fx < 3x\n", m.speedup);
      return 1;
    }
  }
  return 0;
}
