// Million-user control plane under session churn (DESIGN.md "Control
// plane"): N clients each open M sessions against a fleet of origins; a
// configurable fraction of those sessions resume (stateless tickets sealed
// by the rotating TicketKeyManager, server-side state in the sharded LRU
// cache). Reported:
//
//   * full vs resumed handshakes/sec — an abbreviated handshake is PRF-only
//     (no ECDHE, no certificate chain, no signature), so the resumed rate
//     must clear 5x the full rate or resumption is not pulling its weight;
//   * per-cache hit rates — the dedup certificate pool over the 500-origin
//     legacy mix (the §5.1 site population: a fleet's handshakes overwhelm
//     a few hundred distinct leaves, so the pool must serve >=90% of chain
//     parses from memory) and the memoized attestation-quote verifier
//     (Knauth et al.: one quote is presented across many connections).
//
// Both floors are enforced on every run (--quick included); scripts/bench.sh
// --churn commits the full-run record as BENCH_churn.json.
#include <cstdio>
#include <cstdlib>

#include "bench/bench_common.h"
#include "mbtls/cache.h"
#include "sgx/attestation.h"
#include "tls/engine.h"
#include "tls/ticket.h"

namespace mbtls::bench {
namespace {

struct Options {
  int clients = 50;
  int sessions = 20;
  double resumption_ratio = 0.8;
  int origins = 500;
  int quote_draws = 2000;
  bool quick = false;
};

/// EC P-256 identities keep origin setup and the full-handshake phase
/// dominated by the handshake itself, not RSA keygen.
Identity make_origin(int index) {
  return make_identity("site" + std::to_string(index) + ".example",
                       x509::KeyType::kEcdsaP256);
}

struct ControlPlane {
  mb::ShardedSessionCache sessions{{.shards = 16, .capacity_per_shard = 4096}};
  mb::CertPool certs{16};
  mb::QuoteVerifyCache quotes{16};
  tls::TicketKeyManager ticket_keys{"churn-ticket-keys", 0};
};

/// One handshake against `origin`; with `client_cache` set the client
/// offers its cached ticket/session. Returns whether it came up resumed.
bool handshake(const Identity& origin, const std::string& host, ControlPlane& cp,
               tls::SessionCache* client_cache, std::uint64_t seed) {
  tls::Config ccfg;
  ccfg.is_client = true;
  ccfg.trust_anchors = {ca().root()};
  ccfg.server_name = host;
  ccfg.cert_pool = &cp.certs;
  ccfg.rng_label = "churn-client";
  ccfg.rng_seed = seed;
  if (client_cache) {
    ccfg.session_cache = client_cache;
    ccfg.offer_resumption = true;
    ccfg.enable_session_tickets = true;
  }
  tls::Config scfg;
  scfg.is_client = false;
  scfg.private_key = origin.key;
  scfg.certificate_chain = origin.chain;
  scfg.session_cache = &cp.sessions;
  scfg.enable_session_tickets = true;
  scfg.ticket_keys = &cp.ticket_keys;
  scfg.rng_label = "churn-server";
  scfg.rng_seed = seed + 1;

  tls::Engine client(ccfg);
  tls::Engine server(scfg);
  client.start();
  for (int i = 0; i < 50; ++i) {
    const Bytes a = client.take_output();
    const Bytes b = server.take_output();
    if (a.empty() && b.empty()) break;
    if (!a.empty()) server.feed(a);
    if (!b.empty()) client.feed(b);
  }
  if (!client.handshake_done() || !server.handshake_done()) {
    std::fprintf(stderr, "churn handshake failed: %s / %s\n",
                 client.error_message().c_str(), server.error_message().c_str());
    std::exit(1);
  }
  return client.resumed();
}

double rate_per_sec(int count, const PartyTimer& timer) {
  return timer.ms() <= 0 ? 0 : static_cast<double>(count) / (timer.ms() / 1000.0);
}

}  // namespace
}  // namespace mbtls::bench

int main(int argc, char** argv) {
  using namespace mbtls;
  using namespace mbtls::bench;

  Options opt;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") opt.quick = true;
  }
  if (opt.quick) {
    opt.clients = 6;
    opt.sessions = 5;
    opt.origins = 40;
    opt.quote_draws = 100;
  }
  if (const std::string v = value_arg(argc, argv, "--clients"); !v.empty())
    opt.clients = std::atoi(v.c_str());
  if (const std::string v = value_arg(argc, argv, "--sessions"); !v.empty())
    opt.sessions = std::atoi(v.c_str());
  if (const std::string v = value_arg(argc, argv, "--origins"); !v.empty())
    opt.origins = std::atoi(v.c_str());
  if (const std::string v = value_arg(argc, argv, "--resumption-ratio"); !v.empty())
    opt.resumption_ratio = std::atof(v.c_str());

  std::printf("churn: %d clients x %d sessions, %.0f%% resumption, %d origins\n",
              opt.clients, opt.sessions, opt.resumption_ratio * 100, opt.origins);

  // ------------------------------------------------------------ origin fleet
  std::vector<Identity> origins;
  std::vector<std::string> hosts;
  origins.reserve(static_cast<std::size_t>(opt.origins));
  for (int i = 0; i < opt.origins; ++i) {
    origins.push_back(make_origin(i));
    hosts.push_back("site" + std::to_string(i) + ".example");
  }

  ControlPlane cp;

  // -------------------------------------------- phase 1: full vs resumed rate
  // Same origin, pinned measurement loops: the full path runs ECDHE + ECDSA
  // + chain verification every time; the resumed path is ticket unseal + PRF.
  const int rate_handshakes = opt.quick ? 8 : 64;
  PartyTimer full_timer;
  for (int i = 0; i < rate_handshakes; ++i) {
    full_timer.time([&] {
      handshake(origins[0], hosts[0], cp, nullptr, 1000 + 2 * static_cast<std::uint64_t>(i));
    });
  }

  tls::SessionCache warm_cache;
  handshake(origins[0], hosts[0], cp, &warm_cache, 5000);  // populate the ticket
  PartyTimer resumed_timer;
  for (int i = 0; i < rate_handshakes; ++i) {
    resumed_timer.time([&] {
      if (!handshake(origins[0], hosts[0], cp, &warm_cache,
                     6000 + 2 * static_cast<std::uint64_t>(i))) {
        std::fprintf(stderr, "resumed-phase handshake fell back to full\n");
        std::exit(1);
      }
    });
  }
  const double full_rate = rate_per_sec(rate_handshakes, full_timer);
  const double resumed_rate = rate_per_sec(rate_handshakes, resumed_timer);
  const double speedup = full_rate > 0 ? resumed_rate / full_rate : 0;
  std::printf("  full    : %8.0f handshakes/sec\n", full_rate);
  std::printf("  resumed : %8.0f handshakes/sec  (%.1fx)\n", resumed_rate, speedup);

  // ----------------------------------------- phase 2: churn mix + rotation
  // N clients, M sessions each: a fresh client starts full, then resumes
  // with probability `resumption_ratio` (else it behaves like a new user —
  // cache dropped). Ticket keys rotate mid-phase, so late resumptions cross
  // a rotation and exercise the stale-ticket reissue path.
  crypto::Drbg churn_rng("churn-mix", 1);
  std::vector<std::unique_ptr<tls::SessionCache>> client_caches;
  std::vector<std::size_t> last_origin(static_cast<std::size_t>(opt.clients), 0);
  for (int c = 0; c < opt.clients; ++c)
    client_caches.push_back(std::make_unique<tls::SessionCache>());
  int churn_total = 0, churn_resumed = 0;
  PartyTimer churn_timer;
  std::uint64_t seed = 10'000;
  for (int s = 0; s < opt.sessions; ++s) {
    if (s == opt.sessions / 2) cp.ticket_keys.rotate();
    for (int c = 0; c < opt.clients; ++c) {
      const std::size_t ci = static_cast<std::size_t>(c);
      const Bytes draw = churn_rng.bytes(3);
      // A resuming client revisits its previous origin (that is what a
      // cached ticket is for); otherwise it behaves like a new user — cache
      // dropped, fresh uniform origin pick.
      const bool try_resume = s > 0 && (draw[2] < opt.resumption_ratio * 256.0);
      std::size_t origin = last_origin[ci];
      if (!try_resume) {
        client_caches[ci]->clear();
        origin = static_cast<std::size_t>(draw[0] | (draw[1] << 8)) % origins.size();
        last_origin[ci] = origin;
      }
      bool resumed = false;
      churn_timer.time([&] {
        resumed = handshake(origins[origin], hosts[origin], cp, client_caches[ci].get(),
                            seed);
      });
      seed += 2;
      ++churn_total;
      churn_resumed += resumed ? 1 : 0;
    }
  }
  const double churn_rate = rate_per_sec(churn_total, churn_timer);
  std::printf("  churn   : %8.0f handshakes/sec aggregate (%d/%d resumed)\n", churn_rate,
              churn_resumed, churn_total);

  // ------------------------------- phase 3: cert pool over the legacy mix
  // The fleet's view of the §5.1 origin population: every full churn
  // handshake above already interned its origin's leaf; fold in a uniform
  // sweep of 20 draws per origin (each origin's first sighting is a
  // compulsory miss, so the steady-state hit rate needs draws >> origins),
  // then read the pool's lifetime hit rate.
  crypto::Drbg mix_rng("legacy-mix", 2);
  const int mix_draws = 20 * opt.origins;
  for (int i = 0; i < mix_draws; ++i) {
    const Bytes draw = mix_rng.bytes(2);
    const std::size_t origin =
        static_cast<std::size_t>(draw[0] | (draw[1] << 8)) % origins.size();
    (void)cp.certs.intern(origins[origin].chain[0].der());
  }
  const auto cert_stats = cp.certs.stats();
  std::printf("  certs   : %zu distinct, %.1f%% hit rate\n", cp.certs.size(),
              cert_stats.hit_rate() * 100);

  // -------------------------------- phase 4: memoized quote verification
  // A handful of enclave builds present quotes across thousands of
  // connections; the ECDSA verification runs once per distinct quote.
  const int enclave_builds = 4;
  std::vector<Bytes> measurements, reports, sigs;
  for (int i = 0; i < enclave_builds; ++i) {
    measurements.push_back(crypto::Drbg("churn-meas", static_cast<std::uint64_t>(i)).bytes(32));
    reports.push_back(Bytes(64, static_cast<std::uint8_t>(i)));
    sigs.push_back(sgx::attestation_service_sign(measurements.back(), reports.back()));
  }
  crypto::Drbg quote_rng("quote-draws", 3);
  PartyTimer quote_timer;
  for (int i = 0; i < opt.quote_draws; ++i) {
    const std::size_t b = quote_rng.bytes(1)[0] % static_cast<std::size_t>(enclave_builds);
    quote_timer.time([&] {
      if (!cp.quotes.verify(measurements[b], reports[b], sigs[b])) {
        std::fprintf(stderr, "quote verification failed\n");
        std::exit(1);
      }
    });
  }
  const auto quote_stats = cp.quotes.stats();
  std::printf("  quotes  : %8.0f verifications/sec, %.1f%% hit rate\n",
              rate_per_sec(opt.quote_draws, quote_timer), quote_stats.hit_rate() * 100);

  const auto session_stats = cp.sessions.stats();
  const auto ticket_stats = cp.ticket_keys.stats();
  std::printf("  tickets : %llu sealed, %llu current, %llu stale, %llu rejected\n",
              static_cast<unsigned long long>(ticket_stats.seals),
              static_cast<unsigned long long>(ticket_stats.unseal_current),
              static_cast<unsigned long long>(ticket_stats.unseal_stale),
              static_cast<unsigned long long>(ticket_stats.rejects));

  // ------------------------------------------------------------------ floors
  constexpr double kSpeedupFloor = 5.0;
  constexpr double kCertHitFloor = 0.90;
  bool ok = true;
  if (speedup < kSpeedupFloor) {
    std::fprintf(stderr, "FLOOR VIOLATION: resumed/full speedup %.2fx < %.1fx\n", speedup,
                 kSpeedupFloor);
    ok = false;
  }
  if (cert_stats.hit_rate() < kCertHitFloor) {
    std::fprintf(stderr, "FLOOR VIOLATION: cert pool hit rate %.3f < %.2f\n",
                 cert_stats.hit_rate(), kCertHitFloor);
    ok = false;
  }

  // -------------------------------------------------------------------- JSON
  const std::string json_path = json_arg(argc, argv);
  if (!json_path.empty()) {
    auto cache_json = [](const mb::CacheStats& st) {
      return Json::object()
          .add("hits", static_cast<double>(st.hits))
          .add("misses", static_cast<double>(st.misses))
          .add("stores", static_cast<double>(st.stores))
          .add("evictions", static_cast<double>(st.evictions))
          .add("hit_rate", st.hit_rate());
    };
    Json doc = Json::object();
    doc.add("bench", std::string("churn"));
    doc.add("config", Json::object()
                          .add("clients", opt.clients)
                          .add("sessions", opt.sessions)
                          .add("resumption_ratio", opt.resumption_ratio)
                          .add("origins", opt.origins)
                          .add("quote_draws", opt.quote_draws)
                          .add("quick", opt.quick ? 1 : 0));
    doc.add("full_handshakes_per_sec", full_rate);
    doc.add("resumed_handshakes_per_sec", resumed_rate);
    doc.add("resumed_speedup", speedup);
    doc.add("churn_handshakes_per_sec", churn_rate);
    doc.add("churn_resumed_fraction",
            churn_total == 0 ? 0.0
                             : static_cast<double>(churn_resumed) / churn_total);
    doc.add("session_cache", cache_json(session_stats));
    doc.add("cert_pool", cache_json(cp.certs.stats())
                             .add("distinct", static_cast<double>(cp.certs.size())));
    doc.add("quote_cache", cache_json(quote_stats));
    doc.add("tickets", Json::object()
                           .add("seals", static_cast<double>(ticket_stats.seals))
                           .add("unseal_current",
                                static_cast<double>(ticket_stats.unseal_current))
                           .add("unseal_stale", static_cast<double>(ticket_stats.unseal_stale))
                           .add("rejects", static_cast<double>(ticket_stats.rejects))
                           .add("generation",
                                static_cast<double>(cp.ticket_keys.generation())));
    doc.add("floors", Json::object()
                          .add("resumed_speedup_min", kSpeedupFloor)
                          .add("cert_pool_hit_rate_min", kCertHitFloor));
    add_backend_fields(doc);
    if (!doc.write_file(json_path)) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", json_path.c_str());
  }

  if (!ok) return 1;
  std::printf("floors: resumed speedup %.1fx >= %.1fx, cert hit rate %.1f%% >= %.0f%%\n",
              speedup, kSpeedupFloor, cert_stats.hit_rate() * 100, kCertHitFloor * 100);
  return 0;
}
