// Shared helpers for the figure/table benchmark binaries: a process-wide
// benchmark CA and identities, per-party CPU timers, and mean/CI statistics.
#pragma once

#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "crypto/backend.h"
#include "x509/certificate.h"

namespace mbtls::bench {

inline crypto::Drbg& rng() {
  static crypto::Drbg r("bench", 0);
  return r;
}

inline const x509::CertificateAuthority& ca() {
  static const auto authority =
      x509::CertificateAuthority::create("Bench Root CA", x509::KeyType::kEcdsaP256, rng());
  return authority;
}

struct Identity {
  std::shared_ptr<x509::PrivateKey> key;
  std::vector<x509::Certificate> chain;
};

/// Issue an identity; RSA keys use full 2048-bit moduli (the paper's
/// ECDHE-RSA / DHE-RSA suites sign with RSA certificates).
inline Identity make_identity(const std::string& cn,
                              x509::KeyType type = x509::KeyType::kRsa) {
  Identity id;
  id.key = std::make_shared<x509::PrivateKey>(x509::PrivateKey::generate(type, rng(), 2048));
  x509::CertRequest req;
  req.subject_cn = cn;
  req.san_dns = {cn};
  req.not_after = 2524607999;
  req.key = id.key->public_key();
  id.chain = {ca().issue(req, rng())};
  return id;
}

/// Accumulates CPU time spent inside one party's calls.
class PartyTimer {
 public:
  template <typename F>
  auto time(F&& f) {
    const auto start = std::chrono::steady_clock::now();
    if constexpr (std::is_void_v<decltype(f())>) {
      f();
      total_ += std::chrono::steady_clock::now() - start;
    } else {
      auto result = f();
      total_ += std::chrono::steady_clock::now() - start;
      return result;
    }
  }

  double ms() const {
    return std::chrono::duration<double, std::milli>(total_).count();
  }
  void reset() { total_ = {}; }

 private:
  std::chrono::steady_clock::duration total_{};
};

struct Stats {
  double mean = 0;
  double ci95 = 0;  // half-width of the 95% confidence interval of the mean
};

inline Stats stats_of(const std::vector<double>& samples) {
  Stats s;
  if (samples.empty()) return s;
  double sum = 0;
  for (const double v : samples) sum += v;
  s.mean = sum / static_cast<double>(samples.size());
  if (samples.size() < 2) return s;
  double var = 0;
  for (const double v : samples) var += (v - s.mean) * (v - s.mean);
  var /= static_cast<double>(samples.size() - 1);
  s.ci95 = 1.96 * std::sqrt(var / static_cast<double>(samples.size()));
  return s;
}

/// Trials from argv ("--trials N"), with a default.
inline int trials_arg(int argc, char** argv, int fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--trials") return std::atoi(argv[i + 1]);
  }
  return fallback;
}

/// Value of "<flag> VALUE" from argv; empty when absent.
inline std::string value_arg(int argc, char** argv, const std::string& flag) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == flag) return argv[i + 1];
  }
  return {};
}

/// Output path from argv ("--json PATH"); empty when not requested.
inline std::string json_arg(int argc, char** argv) {
  return value_arg(argc, argv, "--json");
}

/// Output path from argv ("--trace PATH"): where benches that support
/// tracing write a Chrome trace-event JSON (chrome://tracing / Perfetto).
inline std::string trace_arg(int argc, char** argv) {
  return value_arg(argc, argv, "--trace");
}

/// Write `body` to `path`; returns false on I/O failure.
inline bool write_text_file(const std::string& path, const std::string& body) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  return std::fclose(f) == 0 && ok;
}

/// Minimal ordered JSON emitter for the BENCH_*.json files every bench
/// binary writes under --json. Supports objects, arrays, numbers, and
/// strings — scripts/bench.sh chains these into the perf-regression record,
/// so the shape must stay machine-stable across PRs.
class Json {
 public:
  static Json object() { return Json(Kind::kObject); }
  static Json array() { return Json(Kind::kArray); }

  Json& add(const std::string& key, double v) {
    sep();
    text_ += quote(key) + ":" + num(v);
    return *this;
  }
  Json& add(const std::string& key, const std::string& v) {
    sep();
    text_ += quote(key) + ":" + quote(v);
    return *this;
  }
  Json& add(const std::string& key, const Json& v) {
    sep();
    text_ += quote(key) + ":" + v.str();
    return *this;
  }
  Json& push(const Json& v) {
    sep();
    text_ += v.str();
    return *this;
  }

  std::string str() const { return text_ + (kind_ == Kind::kObject ? "}" : "]"); }

  /// Write to `path` with a trailing newline; returns false on I/O failure.
  bool write_file(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (!f) return false;
    const std::string body = str() + "\n";
    const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
    return std::fclose(f) == 0 && ok;
  }

 private:
  enum class Kind { kObject, kArray };
  explicit Json(Kind kind) : kind_(kind), text_(kind == Kind::kObject ? "{" : "[") {}

  void sep() {
    if (!first_) text_ += ",";
    first_ = false;
  }
  static std::string quote(const std::string& s) {
    std::string out = "\"";
    for (const char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    return out + "\"";
  }
  static std::string num(double v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
  }

  Kind kind_;
  bool first_ = true;
  std::string text_;
};

/// Stamps the resolved crypto backend and the host's CPU feature set into a
/// JSON document. Every BENCH_*.json carries these fields so a committed
/// baseline records which backend produced it — numbers from a forced-scalar
/// run and an AES-NI run are not comparable, and scripts/bench.sh surfaces
/// the fields when refreshing baselines.
inline Json& add_backend_fields(Json& doc) {
  return doc.add("backend", std::string(crypto::active_backend_name()))
      .add("cpu_features", crypto::cpu_feature_string());
}

}  // namespace mbtls::bench
