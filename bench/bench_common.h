// Shared helpers for the figure/table benchmark binaries: a process-wide
// benchmark CA and identities, per-party CPU timers, and mean/CI statistics.
#pragma once

#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "x509/certificate.h"

namespace mbtls::bench {

inline crypto::Drbg& rng() {
  static crypto::Drbg r("bench", 0);
  return r;
}

inline const x509::CertificateAuthority& ca() {
  static const auto authority =
      x509::CertificateAuthority::create("Bench Root CA", x509::KeyType::kEcdsaP256, rng());
  return authority;
}

struct Identity {
  std::shared_ptr<x509::PrivateKey> key;
  std::vector<x509::Certificate> chain;
};

/// Issue an identity; RSA keys use full 2048-bit moduli (the paper's
/// ECDHE-RSA / DHE-RSA suites sign with RSA certificates).
inline Identity make_identity(const std::string& cn,
                              x509::KeyType type = x509::KeyType::kRsa) {
  Identity id;
  id.key = std::make_shared<x509::PrivateKey>(x509::PrivateKey::generate(type, rng(), 2048));
  x509::CertRequest req;
  req.subject_cn = cn;
  req.san_dns = {cn};
  req.not_after = 2524607999;
  req.key = id.key->public_key();
  id.chain = {ca().issue(req, rng())};
  return id;
}

/// Accumulates CPU time spent inside one party's calls.
class PartyTimer {
 public:
  template <typename F>
  auto time(F&& f) {
    const auto start = std::chrono::steady_clock::now();
    if constexpr (std::is_void_v<decltype(f())>) {
      f();
      total_ += std::chrono::steady_clock::now() - start;
    } else {
      auto result = f();
      total_ += std::chrono::steady_clock::now() - start;
      return result;
    }
  }

  double ms() const {
    return std::chrono::duration<double, std::milli>(total_).count();
  }
  void reset() { total_ = {}; }

 private:
  std::chrono::steady_clock::duration total_{};
};

struct Stats {
  double mean = 0;
  double ci95 = 0;  // half-width of the 95% confidence interval of the mean
};

inline Stats stats_of(const std::vector<double>& samples) {
  Stats s;
  if (samples.empty()) return s;
  double sum = 0;
  for (const double v : samples) sum += v;
  s.mean = sum / static_cast<double>(samples.size());
  if (samples.size() < 2) return s;
  double var = 0;
  for (const double v : samples) var += (v - s.mean) * (v - s.mean);
  var /= static_cast<double>(samples.size() - 1);
  s.ci95 = 1.96 * std::sqrt(var / static_cast<double>(samples.size()));
  return s;
}

/// Trials from argv ("--trials N"), with a default.
inline int trials_arg(int argc, char** argv, int fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--trials") return std::atoi(argv[i + 1]);
  }
  return fallback;
}

}  // namespace mbtls::bench
