// §5.1 "Legacy Interoperability" — the Alexa-top-500 experiment.
//
// The paper used a modified curl speaking mbTLS through a SOCKS HTTP proxy
// to fetch the root document of the 500 most popular sites, reporting:
//   385/500 support HTTPS; of those, 308 succeeded, 19 failed with
//   invalid/expired certificates, 40 lacked AES256-GCM (the only cipher the
//   prototype implemented), 13 failed on unhandled redirects, 5 unknown.
//
// Substitution: 500 simulated origin servers with exactly that property
// mix, each running the *plain* TLS engine (no mbTLS code paths). The
// mbTLS client fetches "/" through a header-insertion middlebox proxy. The
// prototype's cipher limitation is reproduced by restricting the client to
// AES-256-GCM suites.
#include <cstdio>

#include "bench/bench_common.h"
#include "mbox/header_proxy.h"
#include "http/http.h"
#include "mbtls/client.h"
#include "mbtls/middlebox.h"

namespace mbtls::bench {
namespace {

enum class SiteKind {
  kNoHttps,       // 115: port 443 closed
  kOk,            // 308: stock TLS 1.2 with AES-256-GCM
  kBadCert,       // 19: expired or untrusted certificate
  kNoAes256Gcm,   // 40: only AES-128-GCM suites enabled
  kRedirect,      // 13: HTTPS fine but responds with a redirect (unhandled)
  kBroken,        // 5: aborts mid-handshake
};

enum class FetchResult { kSuccess, kConnectFailed, kCertFailed, kCipherFailed, kRedirect, kOther };

const char* to_string(FetchResult r) {
  switch (r) {
    case FetchResult::kSuccess: return "successful fetches";
    case FetchResult::kConnectFailed: return "no HTTPS (connect failed)";
    case FetchResult::kCertFailed: return "invalid / expired certificates";
    case FetchResult::kCipherFailed: return "no AES256-GCM support";
    case FetchResult::kRedirect: return "unhandled redirects";
    case FetchResult::kOther: return "other failures";
  }
  return "?";
}

const Identity& mbox_identity() {
  static const Identity id = make_identity("socks-proxy.example", x509::KeyType::kEcdsaP256);
  return id;
}

struct Origin {
  SiteKind kind;
  std::string host;
  Identity identity;
};

Origin make_origin(SiteKind kind, int index) {
  Origin origin;
  origin.kind = kind;
  origin.host = "site" + std::to_string(index) + ".example";
  if (kind == SiteKind::kNoHttps) return origin;

  origin.identity.key = std::make_shared<x509::PrivateKey>(
      x509::PrivateKey::generate(x509::KeyType::kEcdsaP256, rng()));
  x509::CertRequest req;
  req.subject_cn = origin.host;
  req.san_dns = {origin.host};
  req.not_after = 2524607999;
  req.key = origin.identity.key->public_key();
  if (kind == SiteKind::kBadCert && index % 2 == 0) {
    req.not_after = 1000;  // long expired
  }
  origin.identity.chain = {ca().issue(req, rng())};
  if (kind == SiteKind::kBadCert && index % 2 == 1) {
    // Self-signed by an unknown CA.
    crypto::Drbg rogue("rogue-site", static_cast<std::uint64_t>(index));
    const auto rogue_ca =
        x509::CertificateAuthority::create("Unknown CA", x509::KeyType::kEcdsaP256, rogue);
    origin.identity.chain = {rogue_ca.issue(req, rogue)};
  }
  return origin;
}

FetchResult fetch_via_proxy(const Origin& origin, std::uint64_t seed) {
  if (origin.kind == SiteKind::kNoHttps) return FetchResult::kConnectFailed;

  // Legacy origin: a plain TLS 1.2 engine, mbTLS-unaware; tolerant of
  // unknown record types (the common behaviour the paper observed — the
  // client-side proxy never sends any to the server anyway).
  tls::Config scfg;
  scfg.is_client = false;
  scfg.private_key = origin.identity.key;
  scfg.certificate_chain = origin.identity.chain;
  scfg.rng_seed = seed;
  if (origin.kind == SiteKind::kNoAes256Gcm) {
    scfg.cipher_suites = {tls::CipherSuite::kEcdheEcdsaAes128GcmSha256};
  }
  tls::Engine server(scfg);

  // The prototype client: mbTLS with only AES-256-GCM suites.
  mb::ClientSession::Options copts;
  copts.tls.cipher_suites = {tls::CipherSuite::kEcdheEcdsaAes256GcmSha384,
                             tls::CipherSuite::kEcdheRsaAes256GcmSha384,
                             tls::CipherSuite::kDheRsaAes256GcmSha384};
  copts.tls.trust_anchors = {ca().root()};
  copts.tls.server_name = origin.host;
  copts.tls.rng_seed = seed + 1;
  mb::ClientSession client(std::move(copts));

  mbox::HeaderInsertionProxy proxy("Via", "mbtls-socks-proxy");
  mb::Middlebox::Options mopts;
  mopts.name = "socks-proxy.example";
  mopts.side = mb::Middlebox::Side::kClientSide;
  mopts.private_key = mbox_identity().key;
  mopts.certificate_chain = mbox_identity().chain;
  mopts.processor = proxy.processor();
  mb::Middlebox mbox(std::move(mopts));

  client.start();
  int broken_countdown = 2;  // for kBroken: abort after a couple of flights
  for (int i = 0; i < 60; ++i) {
    bool moved = false;
    Bytes a = client.take_output();
    if (!a.empty()) {
      moved = true;
      mbox.feed_from_client(a);
    }
    Bytes b = mbox.take_to_server();
    if (!b.empty()) {
      moved = true;
      server.feed(b);
    }
    if (origin.kind == SiteKind::kBroken && --broken_countdown == 0) {
      return FetchResult::kOther;  // connection reset mid-handshake
    }
    Bytes c = server.take_output();
    if (!c.empty()) {
      moved = true;
      mbox.feed_from_server(c);
    }
    Bytes d = mbox.take_to_client();
    if (!d.empty()) {
      moved = true;
      client.feed(d);
    }
    if (!moved) break;
  }

  if (client.failed()) {
    const auto& msg = client.error_message();
    if (msg.find("certificate") != std::string::npos || msg.find("unknown_ca") != std::string::npos)
      return FetchResult::kCertFailed;
    if (msg.find("cipher") != std::string::npos || msg.find("handshake_failure") != std::string::npos)
      return FetchResult::kCipherFailed;
    return FetchResult::kOther;
  }
  if (!client.established() || !server.handshake_done()) return FetchResult::kOther;

  // Fetch "/".
  http::Request req;
  req.target = "/";
  req.headers.set("Host", origin.host);
  client.send(req.serialize());
  for (int i = 0; i < 20; ++i) {
    Bytes a = client.take_output();
    if (!a.empty()) mbox.feed_from_client(a);
    Bytes b = mbox.take_to_server();
    if (!b.empty()) server.feed(b);
    const Bytes got = server.take_plaintext();
    if (!got.empty()) {
      // Serve the root document (or a redirect).
      http::Response resp;
      if (origin.kind == SiteKind::kRedirect) {
        resp.status = 301;
        resp.reason = "Moved Permanently";
        resp.headers.set("Location", "https://www." + origin.host + "/");
      } else {
        resp.body = to_bytes(std::string_view("<html>root document</html>"));
      }
      server.send(resp.serialize());
    }
    Bytes c = server.take_output();
    if (!c.empty()) mbox.feed_from_server(c);
    Bytes d = mbox.take_to_client();
    if (!d.empty()) client.feed(d);
    const Bytes body = client.take_app_data();
    if (!body.empty()) {
      const auto response = http::parse_response(body);
      if (!response) return FetchResult::kOther;
      if (response->status >= 300 && response->status < 400) return FetchResult::kRedirect;
      return FetchResult::kSuccess;
    }
  }
  return FetchResult::kOther;
}

}  // namespace
}  // namespace mbtls::bench

int main() {
  using namespace mbtls::bench;
  std::printf("=== §5.1 Legacy interoperability: mbTLS client vs 500 legacy origins ===\n");
  std::printf("mbTLS client + header-insertion proxy fetches '/' from each origin.\n\n");

  // The paper's observed population.
  struct Group {
    SiteKind kind;
    int count;
  };
  const Group groups[] = {
      {SiteKind::kNoHttps, 115}, {SiteKind::kOk, 308},      {SiteKind::kBadCert, 19},
      {SiteKind::kNoAes256Gcm, 40}, {SiteKind::kRedirect, 13}, {SiteKind::kBroken, 5},
  };

  std::map<FetchResult, int> tally;
  std::uint64_t seed = 10'000;
  int site_index = 0;
  for (const auto& group : groups) {
    for (int i = 0; i < group.count; ++i, ++site_index) {
      const Origin origin = make_origin(group.kind, site_index);
      ++tally[fetch_via_proxy(origin, seed += 3)];
    }
  }

  std::printf("%-38s %8s %8s\n", "outcome", "measured", "paper");
  const std::pair<FetchResult, int> expected[] = {
      {FetchResult::kSuccess, 308},      {FetchResult::kConnectFailed, 115},
      {FetchResult::kCertFailed, 19},    {FetchResult::kCipherFailed, 40},
      {FetchResult::kRedirect, 13},      {FetchResult::kOther, 5},
  };
  for (const auto& [result, paper_count] : expected) {
    std::printf("%-38s %8d %8d\n", to_string(result), tally[result], paper_count);
  }
  std::printf("\nHTTPS-capable sites: %d/500 (paper: 385); successful: %d (paper: 308).\n",
              500 - tally[FetchResult::kConnectFailed], tally[FetchResult::kSuccess]);
  return 0;
}
