// Figure 7 — SGX (non-)overhead: middlebox throughput with/without
// encryption and with/without an enclave.
//
// Reproduces: a middlebox fed a saturating stream of records of varying
// payload size ("buffer size" 512 B - 12 KiB) in four configurations:
//   no encryption + no enclave : forward bytes untouched
//   no encryption + enclave    : forward, but each record crosses the
//                                enclave boundary (transition cost burned)
//   encryption + no enclave    : AES-256-GCM open + re-seal per record
//   encryption + enclave       : open + re-seal inside the enclave
//
// Paper result (shape): the enclave makes no noticeable difference (I/O
// interrupt/processing costs dominate boundary crossings), while the
// decrypt+re-encrypt path plateaus at the AES-GCM compute bound.
// Absolute numbers differ from the paper's 40 Gbps testbed: this AES is
// bit-sliced-free portable C++, so the crypto plateau sits lower, but the
// relationships between the four curves are the experiment.
#include <chrono>

#include "bench/bench_common.h"
#include "mbtls/types.h"
#include "sgx/enclave.h"

namespace mbtls::bench {
namespace {

struct Config {
  bool encrypt;
  bool enclave;
  const char* name;
};

double run_config(const Config& config, std::size_t buffer_size, double seconds_budget) {
  crypto::Drbg rng_local("fig7", buffer_size);
  const std::size_t key_len = 32;  // AES-256-GCM, as in the paper's prototype

  // Inbound and outbound hop keys (what an mbTLS middlebox holds).
  const tls::HopKeys in_keys = mb::generate_hop_keys(key_len, rng_local);
  const tls::HopKeys out_keys = mb::generate_hop_keys(key_len, rng_local);
  mb::HopDuplex inbound(in_keys, key_len);
  mb::HopDuplex outbound(out_keys, key_len);

  // Pre-seal a batch of records with a *sender-side* channel so the
  // middlebox-side `inbound` channel can open them in sequence.
  tls::HopChannel sender({in_keys.client_to_server_key, in_keys.client_to_server_iv}, 0);
  const Bytes payload = rng_local.bytes(buffer_size);
  std::vector<Bytes> sealed;
  for (int i = 0; i < 64; ++i) {
    Bytes rec = sender.seal(tls::ContentType::kApplicationData, payload);
    sealed.push_back(Bytes(rec.begin() + tls::kRecordHeaderSize, rec.end()));
  }

  sgx::Platform platform;
  sgx::Enclave& enclave = platform.launch("fig7-mbox");

  // Per-record network-I/O handling cost (NIC interrupt, kernel stack,
  // copies). The paper attributes the *absence* of enclave overhead to
  // exactly this cost dominating boundary crossings ("overhead from
  // interrupt handling overwhelms the overhead from crossing the enclave
  // boundary"); the model makes that executable. 60k calibration iterations
  // ~ a couple of syscalls + interrupt handling at line rate.
  constexpr std::uint64_t kIoCostIterations = 60'000;

  std::uint64_t bytes_moved = 0;
  volatile std::uint64_t sink = 0;
  // Reused across every record: `scratch` holds the inbound body (decrypted
  // in place), `out` receives the re-sealed wire record. Capacity is
  // retained, so the steady-state reprotect path performs no allocation —
  // the same discipline Middlebox::reprotect_c2s uses.
  Bytes scratch, out;
  const auto start = std::chrono::steady_clock::now();
  const auto deadline = start + std::chrono::duration<double>(seconds_budget);
  std::size_t batch_index = 0;
  // Fresh open-channel per 64-record pass (sequence numbers restart).
  while (std::chrono::steady_clock::now() < deadline) {
    mb::HopDuplex pass_in(in_keys, key_len);
    mb::HopDuplex pass_out(out_keys, key_len);
    for (const auto& record : sealed) {
      auto work = [&] {
        if (config.encrypt) {
          scratch.assign(record.begin(), record.end());
          auto opened = pass_in.open_c2s_in_place(tls::ContentType::kApplicationData, scratch);
          if (!opened) std::abort();
          out.clear();
          pass_out.seal_c2s_into(tls::ContentType::kApplicationData, *opened, out);
          sink = sink + out.size();
        } else {
          // Plain forwarding: touch the bytes (copy) like a forwarding path.
          scratch.assign(record.begin(), record.end());
          sink = sink + scratch.size();
        }
      };
      sgx::burn_cycles(kIoCostIterations);  // recv()/send() handling
      if (config.enclave) {
        enclave.ecall(work);
      } else {
        work();
      }
      bytes_moved += buffer_size;
    }
    ++batch_index;
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  (void)batch_index;
  return static_cast<double>(bytes_moved) * 8.0 / elapsed / 1e9;  // Gbps
}

}  // namespace
}  // namespace mbtls::bench

int main(int argc, char** argv) {
  using namespace mbtls::bench;
  double budget = 0.25;  // seconds per (config, size) cell
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--seconds") budget = std::atof(argv[i + 1]);
  }
  const std::string json_path = json_arg(argc, argv);
  const std::size_t sizes[] = {512, 1024, 2048, 4096, 8192, 12288};
  const Config configs[] = {
      {false, false, "No Encryption + No Enclave"},
      {false, true, "No Encryption + Enclave"},
      {true, false, "Encryption + No Enclave"},
      {true, true, "Encryption + Enclave"},
  };
  std::printf("=== Figure 7: middlebox throughput (Gbps) vs record buffer size ===\n");
  std::printf("SGX transition cost model: ~8000 cycles per boundary crossing.\n\n");
  std::printf("%-28s", "config \\ buffer");
  for (const auto s : sizes) std::printf("%8zuB", s);
  std::printf("\n");
  Json rows = Json::array();
  for (const auto& config : configs) {
    std::printf("%-28s", config.name);
    for (const auto size : sizes) {
      const double gbps = run_config(config, size, budget);
      std::printf("%9.2f", gbps);
      rows.push(Json::object()
                    .add("config", std::string(config.name))
                    .add("buffer_bytes", static_cast<double>(size))
                    .add("gbps", gbps));
    }
    std::printf("\n");
  }
  std::printf(
      "\nPaper shape to check: enclave vs no-enclave nearly indistinguishable within each\n"
      "encryption mode; the encryption rows plateau at the AES-GCM compute bound while\n"
      "the forwarding rows keep scaling with buffer size.\n");
  if (!json_path.empty()) {
    const Json doc =
        Json::object().add("bench", std::string("fig7_sgx_throughput")).add("rows", rows);
    if (!doc.write_file(json_path)) {
      std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
