// Figure 7 — SGX (non-)overhead: middlebox throughput with/without
// encryption and with/without an enclave.
//
// Reproduces: a middlebox fed a saturating stream of records of varying
// payload size ("buffer size" 512 B - 12 KiB) in four configurations:
//   no encryption + no enclave : forward bytes untouched
//   no encryption + enclave    : forward, but each record crosses the
//                                enclave boundary (transition cost burned)
//   encryption + no enclave    : AES-256-GCM open + re-seal per record
//   encryption + enclave       : open + re-seal inside the enclave
//
// Paper result (shape): the enclave makes no noticeable difference (I/O
// interrupt/processing costs dominate boundary crossings), while the
// decrypt+re-encrypt path plateaus at the AES-GCM compute bound.
// Absolute numbers differ from the paper's 40 Gbps testbed: this AES is
// bit-sliced-free portable C++, so the crypto plateau sits lower, but the
// relationships between the four curves are the experiment.
// --scaling mode (Fig. 7 scaling companion): the multi-core data plane.
// Grid of worker counts × ECALL batch sizes × buffer sizes × enclave on/off,
// run through mb::ReprotectPipeline with sessions sharded across workers.
// Emits BENCH_fig7_scaling.json; see EXPERIMENTS.md for the recipe and
// DESIGN.md "Multi-core data plane" for the capacity-throughput metric.
#include <chrono>

#include "bench/bench_common.h"
#include "mbtls/middlebox.h"
#include "mbtls/types.h"
#include "sgx/enclave.h"

namespace mbtls::bench {
namespace {

// Per-record network-I/O handling cost (NIC interrupt, kernel stack,
// copies). The paper attributes the *absence* of enclave overhead to exactly
// this cost dominating boundary crossings; the model makes that executable.
// 60k calibration iterations ~ a couple of syscalls + interrupt handling.
constexpr std::uint64_t kIoCostIterations = 60'000;

struct Config {
  bool encrypt;
  bool enclave;
  const char* name;
};

double run_config(const Config& config, std::size_t buffer_size, double seconds_budget) {
  crypto::Drbg rng_local("fig7", buffer_size);
  const std::size_t key_len = 32;  // AES-256-GCM, as in the paper's prototype

  // Inbound and outbound hop keys (what an mbTLS middlebox holds).
  const tls::HopKeys in_keys = mb::generate_hop_keys(key_len, rng_local);
  const tls::HopKeys out_keys = mb::generate_hop_keys(key_len, rng_local);
  mb::HopDuplex inbound(in_keys, key_len);
  mb::HopDuplex outbound(out_keys, key_len);

  // Pre-seal a batch of records with a *sender-side* channel so the
  // middlebox-side `inbound` channel can open them in sequence.
  tls::HopChannel sender({in_keys.client_to_server_key, in_keys.client_to_server_iv}, 0);
  const Bytes payload = rng_local.bytes(buffer_size);
  std::vector<Bytes> sealed;
  for (int i = 0; i < 64; ++i) {
    Bytes rec = sender.seal(tls::ContentType::kApplicationData, payload);
    sealed.push_back(Bytes(rec.begin() + tls::kRecordHeaderSize, rec.end()));
  }

  sgx::Platform platform;
  sgx::Enclave& enclave = platform.launch("fig7-mbox");

  std::uint64_t bytes_moved = 0;
  volatile std::uint64_t sink = 0;
  // Reused across every record: `scratch` holds the inbound body (decrypted
  // in place), `out` receives the re-sealed wire record. Capacity is
  // retained, so the steady-state reprotect path performs no allocation —
  // the same discipline Middlebox::reprotect_c2s uses.
  Bytes scratch, out;
  const auto start = std::chrono::steady_clock::now();
  const auto deadline = start + std::chrono::duration<double>(seconds_budget);
  std::size_t batch_index = 0;
  // Fresh open-channel per 64-record pass (sequence numbers restart).
  while (std::chrono::steady_clock::now() < deadline) {
    mb::HopDuplex pass_in(in_keys, key_len);
    mb::HopDuplex pass_out(out_keys, key_len);
    for (const auto& record : sealed) {
      auto work = [&] {
        if (config.encrypt) {
          scratch.assign(record.begin(), record.end());
          auto opened = pass_in.open_c2s_in_place(tls::ContentType::kApplicationData, scratch);
          if (!opened) std::abort();
          out.clear();
          pass_out.seal_c2s_into(tls::ContentType::kApplicationData, *opened, out);
          sink = sink + out.size();
        } else {
          // Plain forwarding: touch the bytes (copy) like a forwarding path.
          scratch.assign(record.begin(), record.end());
          sink = sink + scratch.size();
        }
      };
      sgx::burn_cycles(kIoCostIterations);  // recv()/send() handling
      if (config.enclave) {
        enclave.ecall(work);
      } else {
        work();
      }
      bytes_moved += buffer_size;
    }
    ++batch_index;
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  (void)batch_index;
  return static_cast<double>(bytes_moved) * 8.0 / elapsed / 1e9;  // Gbps
}

// ------------------------------------------------------------- scaling mode

struct ScalingCell {
  std::size_t workers;
  std::size_t batch;
  std::size_t buffer;
  bool enclave;
};

struct ScalingResult {
  double capacity_gbps = 0;  // bytes / busiest worker's CPU time (see below)
  double wall_gbps = 0;
  double max_busy_seconds = 0;
  std::uint64_t transitions = 0;
};

/// One grid cell: 8 sessions sharded across `workers`, each fed
/// `records_per_session` pre-sealed application records, re-protected through
/// mb::ReprotectPipeline.
///
/// The reported metric is *capacity throughput*: total bits divided by the
/// busiest worker's CPU time (util::thread_cpu_nanos around handler
/// execution only — idle spins excluded). Per-thread CPU time measures the
/// compute each worker actually performed regardless of how the OS
/// timeslices the threads, so the number is the throughput the sharded
/// pipeline sustains given one core per worker — honest about shard
/// imbalance (the busiest worker is the critical path) and reproducible on
/// builders with any core count. Wall-clock throughput is also recorded;
/// on a machine with >= `workers` free cores the two converge.
ScalingResult run_scaling_cell(const ScalingCell& cell, std::size_t records_per_session) {
  constexpr std::size_t kSessions = 8;
  const std::size_t key_len = 32;
  crypto::Drbg rng_local("fig7-scaling",
                         cell.workers * 1000000 + cell.batch * 10000 + cell.buffer * 2 +
                             (cell.enclave ? 1 : 0));

  sgx::Platform platform;
  sgx::Enclave& enclave = platform.launch("fig7-mbox");

  mb::ReprotectPipeline::Options opt;
  opt.workers = cell.workers;
  opt.batch_records = cell.batch;
  opt.queue_capacity = 64;
  opt.enclave = cell.enclave ? &enclave : nullptr;
  // batch == 1 means one ECALL per record: the unbatched baseline.
  opt.batched_ecalls = true;
  opt.io_cost_iterations = kIoCostIterations;
  mb::ReprotectPipeline pipeline(opt);

  std::vector<std::vector<Bytes>> sealed(kSessions);
  for (std::size_t s = 0; s < kSessions; ++s) {
    const tls::HopKeys in_keys = mb::generate_hop_keys(key_len, rng_local);
    const tls::HopKeys out_keys = mb::generate_hop_keys(key_len, rng_local);
    const auto id = pipeline.add_session(in_keys, out_keys, key_len);
    if (id != s) std::abort();
    tls::HopChannel sender({in_keys.client_to_server_key, in_keys.client_to_server_iv}, 0);
    const Bytes payload = rng_local.bytes(cell.buffer);
    sealed[s].reserve(records_per_session);
    for (std::size_t r = 0; r < records_per_session; ++r) {
      Bytes rec = sender.seal(tls::ContentType::kApplicationData, payload);
      sealed[s].emplace_back(rec.begin() + tls::kRecordHeaderSize, rec.end());
    }
  }

  // Round-robin across sessions, as an event loop fed by many connections
  // would: consecutive submissions hit different workers' rings.
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t r = 0; r < records_per_session; ++r) {
    for (std::size_t s = 0; s < kSessions; ++s) {
      pipeline.submit(s, /*client_to_server=*/true, tls::ContentType::kApplicationData,
                      sealed[s][r]);
    }
  }
  pipeline.flush();
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

  if (pipeline.records_reprotected() != kSessions * records_per_session ||
      pipeline.auth_failures() != 0) {
    std::fprintf(stderr, "scaling cell dropped records (%llu ok, %llu auth failures)\n",
                 static_cast<unsigned long long>(pipeline.records_reprotected()),
                 static_cast<unsigned long long>(pipeline.auth_failures()));
    std::abort();
  }

  ScalingResult result;
  const double bits =
      static_cast<double>(kSessions * records_per_session * cell.buffer) * 8.0;
  result.max_busy_seconds = pipeline.max_worker_busy_seconds();
  result.capacity_gbps = bits / result.max_busy_seconds / 1e9;
  result.wall_gbps = bits / wall / 1e9;
  result.transitions = enclave.transitions();
  return result;
}

int scaling_main(int argc, char** argv) {
  std::size_t records = 64;
  bool enforce = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--records" && i + 1 < argc)
      records = static_cast<std::size_t>(std::atoi(argv[i + 1]));
    if (std::string(argv[i]) == "--enforce") enforce = true;
  }
  const std::string json_path = json_arg(argc, argv);

  const std::size_t worker_counts[] = {1, 2, 4, 8};
  const std::size_t batches[] = {1, 32};
  const std::size_t buffers[] = {512, 8192};
  std::printf("=== Figure 7 scaling: sharded reprotect pipeline, capacity Gbps ===\n");
  std::printf("8 sessions sharded across workers; %zu records/session; ECALL batch size\n",
              records);
  std::printf("amortizes the ~8000-cycle boundary crossing. capacity = bits / busiest\n");
  std::printf("worker's CPU time (scheduling-independent); wall Gbps alongside.\n\n");
  std::printf("%-8s%-7s%-9s%-9s%12s%10s%14s\n", "workers", "batch", "buffer", "enclave",
              "capacity", "wall", "transitions");

  Json rows = Json::array();
  // Keyed lookup for the summary floors.
  auto cell_key = [](std::size_t w, std::size_t b, std::size_t buf, bool encl) {
    return w * 1000000 + b * 10000 + buf * 2 + (encl ? 1 : 0);
  };
  std::vector<std::pair<std::size_t, double>> capacity_by_cell;
  for (const std::size_t workers : worker_counts) {
    for (const std::size_t batch : batches) {
      for (const std::size_t buffer : buffers) {
        for (const bool use_enclave : {false, true}) {
          const ScalingCell cell{workers, batch, buffer, use_enclave};
          const ScalingResult r = run_scaling_cell(cell, records);
          std::printf("%-8zu%-7zu%-9zu%-9s%10.3f G%8.3f G%14llu\n", workers, batch, buffer,
                      use_enclave ? "yes" : "no", r.capacity_gbps, r.wall_gbps,
                      static_cast<unsigned long long>(r.transitions));
          capacity_by_cell.emplace_back(cell_key(workers, batch, buffer, use_enclave),
                                        r.capacity_gbps);
          rows.push(Json::object()
                        .add("workers", static_cast<double>(workers))
                        .add("batch_records", static_cast<double>(batch))
                        .add("buffer_bytes", static_cast<double>(buffer))
                        .add("enclave", use_enclave ? std::string("yes") : std::string("no"))
                        .add("capacity_gbps", r.capacity_gbps)
                        .add("wall_gbps", r.wall_gbps)
                        .add("max_worker_busy_seconds", r.max_busy_seconds)
                        .add("enclave_transitions", static_cast<double>(r.transitions)));
        }
      }
    }
  }

  auto capacity_of = [&](std::size_t w, std::size_t b, std::size_t buf, bool encl) {
    const std::size_t key = cell_key(w, b, buf, encl);
    for (const auto& [k, v] : capacity_by_cell)
      if (k == key) return v;
    std::abort();
  };

  // Floor 1: thread scaling. 4 workers vs 1 at 8 KB buffers (no enclave,
  // batched) — sharding must deliver >= 2.5x capacity.
  const double speedup =
      capacity_of(4, 32, 8192, false) / capacity_of(1, 32, 8192, false);
  // Floor 2: ECALL batching must close >= 30% of the enclave-vs-no-enclave
  // capacity gap at 512 B records (where per-record transition cost bites
  // hardest relative to crypto).
  const double no_enclave_base = capacity_of(1, 1, 512, false);
  const double enclave_unbatched = capacity_of(1, 1, 512, true);
  const double enclave_batched = capacity_of(1, 32, 512, true);
  const double gap = no_enclave_base - enclave_unbatched;
  const double gap_closed = gap > 0 ? (enclave_batched - enclave_unbatched) / gap : 1.0;

  std::printf("\nspeedup 4w/1w @8KB (no enclave, batch 32): %.2fx (floor 2.5x)\n", speedup);
  std::printf("enclave gap closed by batching @512B:      %.0f%% (floor 30%%)\n",
              gap_closed * 100.0);

  if (!json_path.empty()) {
    const Json summary =
        Json::object()
            .add("speedup_4w_vs_1w_8k", speedup)
            .add("enclave_gap_closed_512b", gap_closed)
            .add("records_per_session", static_cast<double>(records))
            .add("sessions", 8.0);
    Json doc =
        Json::object()
            .add("bench", std::string("fig7_scaling"))
            .add("throughput_model",
                 std::string("capacity: total bits / busiest worker's CPU time "
                             "(CLOCK_THREAD_CPUTIME_ID around handler execution; "
                             "scheduling-independent). wall_gbps recorded alongside."));
    add_backend_fields(doc).add("rows", rows).add("summary", summary);
    if (!doc.write_file(json_path)) {
      std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", json_path.c_str());
  }

  if (enforce && (speedup < 2.5 || gap_closed < 0.3)) {
    std::fprintf(stderr, "scaling floors not met (speedup %.2f, gap closed %.2f)\n", speedup,
                 gap_closed);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace mbtls::bench

int main(int argc, char** argv) {
  using namespace mbtls::bench;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--scaling") return scaling_main(argc, argv);
  }
  double budget = 0.25;  // seconds per (config, size) cell
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--seconds") budget = std::atof(argv[i + 1]);
  }
  const std::string json_path = json_arg(argc, argv);
  const std::size_t sizes[] = {512, 1024, 2048, 4096, 8192, 12288};
  const Config configs[] = {
      {false, false, "No Encryption + No Enclave"},
      {false, true, "No Encryption + Enclave"},
      {true, false, "Encryption + No Enclave"},
      {true, true, "Encryption + Enclave"},
  };
  std::printf("=== Figure 7: middlebox throughput (Gbps) vs record buffer size ===\n");
  std::printf("SGX transition cost model: ~8000 cycles per boundary crossing.\n\n");
  std::printf("%-28s", "config \\ buffer");
  for (const auto s : sizes) std::printf("%8zuB", s);
  std::printf("\n");
  Json rows = Json::array();
  for (const auto& config : configs) {
    std::printf("%-28s", config.name);
    for (const auto size : sizes) {
      const double gbps = run_config(config, size, budget);
      std::printf("%9.2f", gbps);
      rows.push(Json::object()
                    .add("config", std::string(config.name))
                    .add("buffer_bytes", static_cast<double>(size))
                    .add("gbps", gbps));
    }
    std::printf("\n");
  }
  std::printf(
      "\nPaper shape to check: enclave vs no-enclave nearly indistinguishable within each\n"
      "encryption mode; the encryption rows plateau at the AES-GCM compute bound while\n"
      "the forwarding rows keep scaling with buffer size.\n");
  if (!json_path.empty()) {
    Json doc = Json::object().add("bench", std::string("fig7_sgx_throughput"));
    add_backend_fields(doc).add("rows", rows);
    if (!doc.write_file(json_path)) {
      std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
