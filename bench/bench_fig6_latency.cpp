// Figure 6 — mbTLS vs TLS handshake latency across WAN paths.
//
// Reproduces: time to fetch a small object through one middlebox across all
// client-middlebox-server permutations of four regions (Australia, US West,
// US East, UK), comparing plain TLS (the middlebox relays bytes — the
// best-possible baseline, exactly like the paper) against mbTLS (the
// middlebox joins the session). Runs on the discrete-event network simulator
// with measured inter-region RTTs, split into handshake and data-transfer
// time.
//
// Paper result (shape): mbTLS keeps the TLS four-flight handshake shape, so
// it adds no round trips; the increase is small (paper: 0.7% average).
#include "bench/bench_common.h"
#include "mbtls/transport.h"

namespace mbtls::bench {
namespace {

using namespace net;

struct Region {
  const char* name;
};

// Approximate public inter-region RTTs (ms), matching the paper's four Azure
// regions. Entry [i][j] is the round-trip between regions i and j.
constexpr const char* kRegions[4] = {"au", "usw", "use", "uk"};
constexpr double kRttMs[4][4] = {
    //        au   usw   use    uk
    /*au*/ {0, 150, 200, 280},
    /*usw*/ {150, 0, 70, 140},
    /*use*/ {200, 70, 0, 80},
    /*uk*/ {280, 140, 80, 0},
};

// The 12 paths shown in the paper's Figure 6 (client-mbox-server).
constexpr int kPaths[12][3] = {
    {1, 2, 3}, {1, 3, 2}, {0, 1, 2}, {2, 1, 3}, {0, 2, 1}, {0, 2, 3},
    {0, 1, 3}, {0, 3, 2}, {1, 0, 2}, {0, 3, 1}, {1, 0, 3}, {2, 0, 3},
};

const Identity& server_identity() {
  static const Identity id = make_identity("origin.example", x509::KeyType::kEcdsaP256);
  return id;
}

const Identity& mbox_identity() {
  static const Identity id = make_identity("proxy.example", x509::KeyType::kEcdsaP256);
  return id;
}

struct RunResult {
  double handshake_ms;
  double total_ms;
};

/// One fetch over the simulated WAN. `use_mbtls` false = middlebox is a pure
/// TCP relay (paper's baseline: it "simply relays packets"). With `rec` set,
/// every layer traces into it, timestamped by the virtual clock.
RunResult run_fetch(int client_region, int mbox_region, int server_region, bool use_mbtls,
                    std::uint64_t trial, trace::Recorder* rec = nullptr) {
  Simulator sim;
  Network network(sim, trial);
  if (rec) {
    rec->set_clock([&sim] { return sim.now(); });
    network.set_trace(rec);
  }
  const NodeId nc = network.add_node(kRegions[client_region]);
  const NodeId nm = network.add_node(kRegions[mbox_region]);
  const NodeId ns = network.add_node(kRegions[server_region]);

  // Per-trial jitter of up to ±3% models measurement noise.
  crypto::Drbg jitter("fig6-jitter", trial);
  auto delay = [&](int a, int b) {
    const double one_way_us = kRttMs[a][b] * 1000.0 / 2.0;
    const double factor = 0.97 + 0.06 * jitter.real();
    return static_cast<Time>(one_way_us * factor);
  };
  network.add_link(nc, nm, {.propagation = delay(client_region, mbox_region),
                            .bandwidth_bps = 1e9});
  network.add_link(nm, ns, {.propagation = delay(mbox_region, server_region),
                            .bandwidth_bps = 1e9});

  Host client_host(network, nc);
  Host mbox_host(network, nm);
  Host server_host(network, ns);

  // --- server ---
  mb::ServerSession::Options sopts;
  sopts.tls.private_key = server_identity().key;
  sopts.tls.certificate_chain = server_identity().chain;
  sopts.tls.trust_anchors = {ca().root()};
  sopts.tls.rng_seed = trial * 3 + 1;
  sopts.trace_sink = rec;
  mb::ServerSession server(std::move(sopts));
  std::unique_ptr<mb::SocketBinding<mb::ServerSession>> server_binding;
  const Bytes object(1000, 'x');  // the small object being fetched
  bool served = false;
  server_host.listen(443, [&](Socket& socket) {
    server_binding = std::make_unique<mb::SocketBinding<mb::ServerSession>>(server, socket);
  });

  // --- middlebox ---
  mb::Middlebox::Options mopts;
  mopts.name = "proxy.example";
  mopts.side = mb::Middlebox::Side::kClientSide;
  mopts.private_key = mbox_identity().key;
  mopts.certificate_chain = mbox_identity().chain;
  mopts.peer_known_legacy = !use_mbtls;  // relay mode for the TLS baseline
  mopts.trace_sink = rec;
  mb::Middlebox mbox(std::move(mopts));
  std::unique_ptr<mb::MiddleboxBinding> mbox_binding;
  // Measure the middlebox's real CPU time (crypto is genuinely executed);
  // it is added to the virtual clock below, mirroring how the paper's
  // testbed latency included middlebox computation.
  PartyTimer mbox_cpu;
  Time mbox_cpu_at_handshake = 0;
  mbox_host.listen(443, [&](Socket& downstream) {
    Socket& upstream = mbox_host.connect(ns, 443);
    mbox_binding = std::make_unique<mb::MiddleboxBinding>(mbox, downstream, upstream);
    const auto down_inner = downstream.on_data;
    downstream.on_data = [&mbox_cpu, down_inner](ByteView d) {
      mbox_cpu.time([&] { down_inner(d); });
    };
    const auto up_inner = upstream.on_data;
    upstream.on_data = [&mbox_cpu, up_inner](ByteView d) {
      mbox_cpu.time([&] { up_inner(d); });
    };
  });

  // --- client ---
  mb::ClientSession::Options copts;
  copts.tls.trust_anchors = {ca().root()};
  copts.tls.server_name = "origin.example";
  copts.tls.rng_seed = trial * 3 + 2;
  copts.announce_mbtls = use_mbtls;
  copts.trace_sink = rec;
  mb::ClientSession client(std::move(copts));

  Time handshake_done_at = 0;
  Time object_received_at = 0;
  Bytes received;

  Socket& client_socket = client_host.connect(nm, 443);
  mb::SocketBinding<mb::ClientSession> client_binding(client, client_socket);
  client_socket.on_connect = [&] {
    client.start();
    client_binding.flush();
  };

  // Event-driven progress checks.
  std::function<void()> poll = [&] {
    if (!handshake_done_at && client.established()) {
      handshake_done_at = sim.now();
      mbox_cpu_at_handshake = static_cast<Time>(mbox_cpu.ms() * 1000.0);
      client.send(to_bytes(std::string_view("GET /object")));
      client_binding.flush();
    }
    if (server.established() && !served && !server.take_app_data().empty()) {
      served = true;
      server.send(object);
      server_binding->flush();
    }
    const Bytes chunk = client.take_app_data();
    if (!chunk.empty()) append(received, chunk);
    if (received.size() >= object.size() && !object_received_at) {
      object_received_at = sim.now();
    }
    if (!object_received_at) sim.schedule(100, poll);
  };
  sim.schedule(100, poll);
  sim.run(2'000'000);

  if (!object_received_at) std::abort();
  // Charge the middlebox's measured CPU into the virtual timeline.
  return {static_cast<double>(handshake_done_at + mbox_cpu_at_handshake) / 1000.0,
          static_cast<double>(object_received_at) / 1000.0 + mbox_cpu.ms()};
}

}  // namespace
}  // namespace mbtls::bench

int main(int argc, char** argv) {
  using namespace mbtls::bench;
  const int trials = trials_arg(argc, argv, 20);
  const std::string trace_path = trace_arg(argc, argv);
  if (!trace_path.empty()) {
    // One traced mbTLS fetch (usw-use-uk) on the virtual clock: net segments,
    // TLS flights, and mbtls session events in one Chrome-trace timeline.
    mbtls::trace::Recorder rec;
    const auto r = run_fetch(1, 2, 3, /*use_mbtls=*/true, 0, &rec);
    if (!write_text_file(trace_path, rec.chrome_trace_json())) {
      std::fprintf(stderr, "failed to write %s\n", trace_path.c_str());
      return 1;
    }
    std::printf("traced mbTLS fetch usw-use-uk: hs %.1f ms, total %.1f ms, %zu events\n",
                r.handshake_ms, r.total_ms, rec.events().size());
    std::printf("wrote %s\n", trace_path.c_str());
    return 0;
  }
  std::printf("=== Figure 6: mbTLS vs TLS latency across WAN paths (%d trials) ===\n", trials);
  std::printf("Time to fetch a 1 KB object via one middlebox; virtual WAN with real RTTs.\n\n");
  std::printf("%-16s | %-28s | %-28s | delta\n", "path (c-m-s)", "TLS relay: hs / total (ms)",
              "mbTLS: hs / total (ms)");
  double total_tls = 0, total_mb = 0;
  for (const auto& path : kPaths) {
    std::vector<double> tls_hs, tls_total, mb_hs, mb_total;
    for (int t = 0; t < trials; ++t) {
      const auto r1 = run_fetch(path[0], path[1], path[2], false, static_cast<std::uint64_t>(t));
      const auto r2 = run_fetch(path[0], path[1], path[2], true, static_cast<std::uint64_t>(t));
      tls_hs.push_back(r1.handshake_ms);
      tls_total.push_back(r1.total_ms);
      mb_hs.push_back(r2.handshake_ms);
      mb_total.push_back(r2.total_ms);
    }
    const Stats t_hs = stats_of(tls_hs), t_tot = stats_of(tls_total);
    const Stats m_hs = stats_of(mb_hs), m_tot = stats_of(mb_total);
    total_tls += t_tot.mean;
    total_mb += m_tot.mean;
    std::printf("%3s-%3s-%3s      | %8.1f ±%5.1f / %8.1f    | %8.1f ±%5.1f / %8.1f    | %+5.2f%%\n",
                kRegions[path[0]], kRegions[path[1]], kRegions[path[2]], t_hs.mean, t_hs.ci95,
                t_tot.mean, m_hs.mean, m_hs.ci95, m_tot.mean,
                100.0 * (m_tot.mean - t_tot.mean) / t_tot.mean);
  }
  std::printf("\nAverage total-time increase of mbTLS over TLS relay: %+0.2f%% (paper: +0.7%%)\n",
              100.0 * (total_mb - total_tls) / total_tls);
  return 0;
}
