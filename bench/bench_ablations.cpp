// Ablations and crypto microbenchmarks (google-benchmark).
//
// Design choices DESIGN.md calls out, measured in isolation:
//  * per-hop re-protection (open + seal) vs plain forwarding per record
//  * Encapsulated-record overhead (bytes and CPU)
//  * the cost of adding an SGX attestation to a handshake
//  * session resumption vs full handshake
//  * enclave transition cost
// plus throughput baselines for the primitives (AES-GCM, SHA-256, P-256,
// RSA-2048, the TLS PRF).
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "mbtls/client.h"
#include "mbtls/middlebox.h"
#include "mbtls/server.h"
#include "tls/prf.h"

namespace mbtls::bench {
namespace {

// ------------------------------------------------------------- primitives

void BM_Sha256(benchmark::State& state) {
  crypto::Drbg r("bm-sha", 0);
  const Bytes data = r.bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Sha256::digest(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(16384);

void BM_AesGcmSeal(benchmark::State& state) {
  crypto::Drbg r("bm-gcm", 0);
  const crypto::AesGcm gcm(r.bytes(32));
  const Bytes iv = r.bytes(12);
  const Bytes data = r.bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(gcm.seal(iv, {}, data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_AesGcmSeal)->Arg(512)->Arg(4096)->Arg(16384);

void BM_EcdhP256(benchmark::State& state) {
  crypto::Drbg r("bm-ecdh", 0);
  const auto a = ec::ecdh_generate(r);
  const auto b = ec::ecdh_generate(r);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ec::ecdh_shared_secret(a, b.public_point));
  }
}
BENCHMARK(BM_EcdhP256);

void BM_EcdsaSign(benchmark::State& state) {
  crypto::Drbg r("bm-ecdsa", 0);
  const auto key = ec::ecdsa_generate(r);
  const Bytes msg = r.bytes(128);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ec::ecdsa_sign(key, crypto::HashAlgo::kSha256, msg, r));
  }
}
BENCHMARK(BM_EcdsaSign);

void BM_Rsa2048Sign(benchmark::State& state) {
  static const rsa::RsaKeyPair key = [] {
    crypto::Drbg r("bm-rsa", 0);
    return rsa::rsa_generate(2048, r);
  }();
  crypto::Drbg r("bm-rsa-msg", 0);
  const Bytes msg = r.bytes(128);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rsa::rsa_sign(key, crypto::HashAlgo::kSha256, msg));
  }
}
BENCHMARK(BM_Rsa2048Sign);

void BM_TlsPrf(benchmark::State& state) {
  crypto::Drbg r("bm-prf", 0);
  const Bytes secret = r.bytes(48);
  const Bytes seed = r.bytes(64);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tls::prf(crypto::HashAlgo::kSha384, secret, "key expansion", seed, 72));
  }
}
BENCHMARK(BM_TlsPrf);

// -------------------------------------------------------------- ablations

void BM_HopReprotect(benchmark::State& state) {
  // Ablation: the cost a middlebox pays per record for unique per-hop keys
  // (open with hop A, seal with hop B) vs forwarding opaque bytes.
  crypto::Drbg r("bm-hop", 0);
  const auto in_keys = mb::generate_hop_keys(32, r);
  const auto out_keys = mb::generate_hop_keys(32, r);
  const Bytes payload = r.bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    state.PauseTiming();
    tls::HopChannel sender({in_keys.client_to_server_key, in_keys.client_to_server_iv}, 0);
    mb::HopDuplex in(in_keys, 32), out(out_keys, 32);
    Bytes rec = sender.seal(tls::ContentType::kApplicationData, payload);
    const Bytes body(rec.begin() + tls::kRecordHeaderSize, rec.end());
    state.ResumeTiming();
    auto opened = in.open_c2s(tls::ContentType::kApplicationData, body);
    benchmark::DoNotOptimize(out.seal_c2s(tls::ContentType::kApplicationData, *opened));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_HopReprotect)->Arg(1024)->Arg(8192)->Arg(16384);

void BM_ForwardOnly(benchmark::State& state) {
  crypto::Drbg r("bm-fwd", 0);
  const Bytes record = r.bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    Bytes copy(record.begin(), record.end());
    benchmark::DoNotOptimize(copy);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_ForwardOnly)->Arg(1024)->Arg(8192)->Arg(16384);

void BM_EncapsulationOverhead(benchmark::State& state) {
  // Wrapping a record in an Encapsulated record: 1 subchannel byte + a new
  // 5-byte outer header.
  crypto::Drbg r("bm-encap", 0);
  const Bytes inner = tls::frame_plaintext_record(tls::ContentType::kHandshake, r.bytes(512));
  for (auto _ : state) {
    tls::EncapsulatedRecord enc;
    enc.subchannel = 3;
    enc.inner_record = inner;
    benchmark::DoNotOptimize(
        tls::frame_plaintext_record(tls::ContentType::kMbtlsEncapsulated, enc.encode()));
  }
}
BENCHMARK(BM_EncapsulationOverhead);

void BM_EnclaveTransition(benchmark::State& state) {
  sgx::Platform platform;
  platform.set_transition_cost(static_cast<std::uint64_t>(state.range(0)));
  sgx::Enclave& enclave = platform.launch("bm");
  for (auto _ : state) {
    enclave.ecall([] {});
  }
}
BENCHMARK(BM_EnclaveTransition)->Arg(0)->Arg(8000);

void BM_Quote(benchmark::State& state) {
  sgx::Platform platform;
  sgx::Enclave& enclave = platform.launch("bm-quote");
  crypto::Drbg r("bm-quote", 0);
  const Bytes rd = r.bytes(32);
  for (auto _ : state) {
    benchmark::DoNotOptimize(enclave.quote(rd));
  }
}
BENCHMARK(BM_Quote);

// Full-handshake vs resumption vs attested handshake (end to end, both
// parties' work, over in-memory pipes).
struct HandshakeFixtures {
  Identity id = make_identity("bm.example", x509::KeyType::kEcdsaP256);
  tls::SessionCache client_cache, server_cache;
  sgx::Platform platform;
  sgx::Enclave* enclave = &platform.launch("bm-attested-server");
};

HandshakeFixtures& fixtures() {
  static HandshakeFixtures f;
  return f;
}

void pump_pair(tls::Engine& client, tls::Engine& server) {
  client.start();
  for (int i = 0; i < 20; ++i) {
    const Bytes a = client.take_output();
    const Bytes b = server.take_output();
    if (a.empty() && b.empty()) break;
    if (!a.empty()) server.feed(a);
    if (!b.empty()) client.feed(b);
  }
  if (!client.handshake_done()) std::abort();
}

void BM_HandshakeFull(benchmark::State& state) {
  auto& f = fixtures();
  std::uint64_t seed = 0;
  for (auto _ : state) {
    tls::Config ccfg;
    ccfg.trust_anchors = {ca().root()};
    ccfg.server_name = "bm.example";
    ccfg.rng_seed = seed++;
    tls::Config scfg;
    scfg.is_client = false;
    scfg.private_key = f.id.key;
    scfg.certificate_chain = f.id.chain;
    scfg.rng_seed = seed++;
    tls::Engine client(ccfg), server(scfg);
    pump_pair(client, server);
  }
}
BENCHMARK(BM_HandshakeFull);

void BM_HandshakeResumed(benchmark::State& state) {
  auto& f = fixtures();
  // Seed the caches once.
  {
    tls::Config ccfg;
    ccfg.trust_anchors = {ca().root()};
    ccfg.server_name = "bm.example";
    ccfg.session_cache = &f.client_cache;
    ccfg.offer_resumption = true;
    tls::Config scfg;
    scfg.is_client = false;
    scfg.private_key = f.id.key;
    scfg.certificate_chain = f.id.chain;
    scfg.session_cache = &f.server_cache;
    tls::Engine client(ccfg), server(scfg);
    pump_pair(client, server);
  }
  std::uint64_t seed = 100;
  for (auto _ : state) {
    tls::Config ccfg;
    ccfg.trust_anchors = {ca().root()};
    ccfg.server_name = "bm.example";
    ccfg.session_cache = &f.client_cache;
    ccfg.offer_resumption = true;
    ccfg.rng_seed = seed++;
    tls::Config scfg;
    scfg.is_client = false;
    scfg.private_key = f.id.key;
    scfg.certificate_chain = f.id.chain;
    scfg.session_cache = &f.server_cache;
    scfg.rng_seed = seed++;
    tls::Engine client(ccfg), server(scfg);
    pump_pair(client, server);
    if (!client.resumed()) std::abort();
  }
}
BENCHMARK(BM_HandshakeResumed);

void BM_HandshakeAttested(benchmark::State& state) {
  auto& f = fixtures();
  std::uint64_t seed = 10'000;
  for (auto _ : state) {
    tls::Config ccfg;
    ccfg.trust_anchors = {ca().root()};
    ccfg.server_name = "bm.example";
    ccfg.request_attestation = true;
    ccfg.rng_seed = seed++;
    tls::Config scfg;
    scfg.is_client = false;
    scfg.private_key = f.id.key;
    scfg.certificate_chain = f.id.chain;
    scfg.enclave = f.enclave;
    scfg.rng_seed = seed++;
    tls::Engine client(ccfg), server(scfg);
    pump_pair(client, server);
    if (!client.peer_attested()) std::abort();
  }
}
BENCHMARK(BM_HandshakeAttested);

// Full mbTLS session setup (client + one middlebox + server, all parties'
// work) — full handshakes vs all-abbreviated resumption (§3.5).
struct MbtlsRig {
  Identity server_id = make_identity("bm-mb.example", x509::KeyType::kEcdsaP256);
  Identity mbox_id = make_identity("bm-mbox.example", x509::KeyType::kEcdsaP256);
  tls::SessionCache client_cache, server_cache, mbox_cache;

  bool run(std::uint64_t seed, bool offer_resumption) {
    mb::ClientSession::Options copts;
    copts.tls.trust_anchors = {ca().root()};
    copts.tls.server_name = "bm-mb.example";
    copts.tls.rng_seed = seed;
    copts.tls.session_cache = &client_cache;
    copts.tls.offer_resumption = offer_resumption;
    mb::ClientSession client(std::move(copts));
    mb::ServerSession::Options sopts;
    sopts.tls.private_key = server_id.key;
    sopts.tls.certificate_chain = server_id.chain;
    sopts.tls.rng_seed = seed + 1;
    sopts.tls.session_cache = &server_cache;
    mb::ServerSession server(std::move(sopts));
    mb::Middlebox::Options mopts;
    mopts.name = "bm-mbox.example";
    mopts.private_key = mbox_id.key;
    mopts.certificate_chain = mbox_id.chain;
    mopts.session_cache = &mbox_cache;
    mb::Middlebox mbox(std::move(mopts));
    client.start();
    for (int i = 0; i < 100; ++i) {
      bool moved = false;
      Bytes a = client.take_output();
      if (!a.empty()) {
        moved = true;
        mbox.feed_from_client(a);
      }
      Bytes b = mbox.take_to_server();
      if (!b.empty()) {
        moved = true;
        server.feed(b);
      }
      Bytes sv = server.take_output();
      if (!sv.empty()) {
        moved = true;
        mbox.feed_from_server(sv);
      }
      Bytes d = mbox.take_to_client();
      if (!d.empty()) {
        moved = true;
        client.feed(d);
      }
      if (!moved) break;
    }
    if (!client.established() || !server.established()) std::abort();
    return mbox.resumed();
  }
};

MbtlsRig& mbtls_rig() {
  static MbtlsRig rig;
  return rig;
}

void BM_MbtlsSessionSetupFull(benchmark::State& state) {
  auto& rig = mbtls_rig();
  std::uint64_t seed = 50'000;
  for (auto _ : state) {
    rig.client_cache.clear();
    rig.server_cache.clear();
    rig.mbox_cache.clear();
    rig.run(seed += 3, false);
  }
}
BENCHMARK(BM_MbtlsSessionSetupFull);

void BM_MbtlsSessionSetupResumed(benchmark::State& state) {
  auto& rig = mbtls_rig();
  rig.client_cache.clear();
  rig.server_cache.clear();
  rig.mbox_cache.clear();
  rig.run(60'000, true);  // populate caches
  std::uint64_t seed = 60'100;
  for (auto _ : state) {
    if (!rig.run(seed += 3, true)) std::abort();  // must actually resume
  }
}
BENCHMARK(BM_MbtlsSessionSetupResumed);

}  // namespace
}  // namespace mbtls::bench

BENCHMARK_MAIN();
