// §2.2 — the design space for secure multi-entity communication, as
// EXECUTED checks rather than a prose table. For each protocol the binary
// runs a concrete probe of each design dimension and prints what it
// measured, reproducing the paper's argument that no protocol gets every
// property ("there is no one-size-fits-all solution").
#include <cstdio>

#include "attacks/attacks.h"
#include "baselines/mctls.h"
#include "bench/bench_common.h"
#include "mbtls/client.h"
#include "mbtls/middlebox.h"
#include "mbtls/server.h"
#include "tests/mbtls_test_util.h"


namespace mbtls::bench {
namespace {

// ---- probes ---------------------------------------------------------------

/// mbTLS: does a one-sided deployment work (P5)? Probed with a stock TLS
/// server.
bool probe_mbtls_one_legacy() {
  const auto id = make_identity("ds-legacy.example", x509::KeyType::kEcdsaP256);
  mb::ClientSession::Options copts;
  copts.tls.trust_anchors = {ca().root()};
  copts.tls.server_name = "ds-legacy.example";
  mb::ClientSession client(std::move(copts));
  tls::Config scfg;
  scfg.is_client = false;
  scfg.private_key = id.key;
  scfg.certificate_chain = id.chain;
  tls::Engine server(scfg);
  const auto mbid = make_identity("ds-mbox.example", x509::KeyType::kEcdsaP256);
  mb::Middlebox::Options mopts;
  mopts.name = "ds-mbox.example";
  mopts.private_key = mbid.key;
  mopts.certificate_chain = mbid.chain;
  mb::Middlebox mbox(std::move(mopts));
  client.start();
  for (int i = 0; i < 60; ++i) {
    bool moved = false;
    Bytes a = client.take_output();
    if (!a.empty()) {
      moved = true;
      mbox.feed_from_client(a);
    }
    Bytes b = mbox.take_to_server();
    if (!b.empty()) {
      moved = true;
      server.feed(b);
    }
    Bytes c = server.take_output();
    if (!c.empty()) {
      moved = true;
      mbox.feed_from_server(c);
    }
    Bytes d = mbox.take_to_client();
    if (!d.empty()) {
      moved = true;
      client.feed(d);
    }
    if (!moved) break;
  }
  return client.established() && server.handshake_done() && mbox.joined();
}

/// mcTLS: read-only enforcement — a reader's forgery must be detected.
bool probe_mctls_readonly_enforced() {
  crypto::Drbg rng("ds-mctls", 0);  // NOLINT: shadows bench::rng() on purpose
  const auto keys = baselines::derive_context_keys(rng.bytes(32), rng.bytes(32));
  baselines::McRecordLayer sender(
      baselines::keys_for(keys, baselines::McPermission::kNone, true));
  baselines::McRecordLayer receiver(
      baselines::keys_for(keys, baselines::McPermission::kNone, true));
  const Bytes record = sender.seal(to_bytes(std::string_view("pay $10")));
  // Malicious reader forges a modified record with the reader key alone.
  crypto::AesGcm reader_aead(keys.reader_key);
  Bytes iv(4, 0);
  put_u64(iv, 0);
  auto inner = reader_aead.open(iv, {}, record);
  if (!inner) return false;
  Bytes forged_inner = to_bytes(std::string_view("pay $9999"));
  append(forged_inner, rng.bytes(64));
  const auto opened = receiver.open(reader_aead.seal(iv, {}, forged_inner));
  return opened && opened->verdict == baselines::McVerdict::kIllegallyModified;
}

/// mbTLS: a joined middlebox has FULL read-write access (the granularity
/// mbTLS offers is all-or-nothing) — probe: the processor's modification is
/// accepted by the endpoint.
bool probe_mbtls_rw_access() {
  const auto id = make_identity("ds-rw.example", x509::KeyType::kEcdsaP256);
  mb::ClientSession::Options copts;
  copts.tls.trust_anchors = {ca().root()};
  copts.tls.server_name = "ds-rw.example";
  mb::ClientSession client(std::move(copts));
  mb::ServerSession::Options sopts;
  sopts.tls.private_key = id.key;
  sopts.tls.certificate_chain = id.chain;
  mb::ServerSession server(std::move(sopts));
  const auto mbid = make_identity("ds-rw-mbox.example", x509::KeyType::kEcdsaP256);
  mb::Middlebox::Options mopts;
  mopts.name = "ds-rw-mbox.example";
  mopts.private_key = mbid.key;
  mopts.certificate_chain = mbid.chain;
  mopts.processor = [](bool, ByteView) { return to_bytes(std::string_view("REWRITTEN")); };
  mb::Middlebox mbox(std::move(mopts));
  mb::testing::Chain chain{.client = &client, .middleboxes = {&mbox}, .server = &server};
  client.start();
  chain.pump();
  if (!client.established()) return false;
  client.send(to_bytes(std::string_view("original")));
  chain.pump();
  return equal(server.take_app_data(), to_bytes(std::string_view("REWRITTEN")));
}

const char* yn(bool v) { return v ? "yes" : "no "; }

}  // namespace
}  // namespace mbtls::bench

int main() {
  using namespace mbtls::bench;
  using namespace mbtls::attacks;
  std::printf("=== §2.2 Design space, executed ===\n\n");

  // Per-dimension probes (each line states what was actually run).
  const bool mbtls_legacy = probe_mbtls_one_legacy();
  const bool mctls_ro = probe_mctls_readonly_enforced();
  const bool mbtls_rw = probe_mbtls_rw_access();
  const bool skip_naive = skip_middlebox(Protocol::kNaiveKeyShare);
  const bool skip_mbtls = skip_middlebox(Protocol::kMbtls);
  const bool mem_split = mip_reads_keys_from_memory(Protocol::kSplitTls);
  const bool mem_mbtls = mip_reads_keys_from_memory(Protocol::kMbtls);
  const bool imp_split = impersonate_server(Protocol::kSplitTls);
  const bool imp_mbtls = impersonate_server(Protocol::kMbtls);

  std::printf("%-44s %-10s %-10s %-10s\n", "dimension (probe actually executed)", "split TLS",
              "mcTLS", "mbTLS");
  std::printf("%-44s %-10s %-10s %-10s\n", "one legacy endpoint interoperates", "yes (both)",
              "no", yn(mbtls_legacy));
  std::printf("%-44s %-10s %-10s %-10s\n", "read-only middlebox enforced crypto.", "no",
              yn(mctls_ro), "no");
  std::printf("%-44s %-10s %-10s %-10s\n", "middlebox arbitrary computation", "yes",
              "writers", yn(mbtls_rw));
  std::printf("%-44s %-10s %-10s %-10s\n", "path integrity (skip attack fails)", "-",
              "-", yn(!skip_mbtls));
  std::printf("%-44s %-10s %-10s %-10s\n", "  (same probe vs naive key-share)",
              yn(false), "-", skip_naive ? "(naive: skip succeeded)" : "");
  std::printf("%-44s %-10s %-10s %-10s\n", "keys safe on untrusted infrastructure",
              yn(!mem_split), "no", yn(!mem_mbtls));
  std::printf("%-44s %-10s %-10s %-10s\n", "client authenticates the real server",
              yn(!imp_split), "yes", yn(!imp_mbtls));
  std::printf("%-44s %-10s %-10s %-10s\n", "in-band middlebox discovery", "yes", "no",
              yn(mbtls_legacy /* discovery exercised in that probe */));

  std::printf(
      "\nPaper takeaway, reproduced: each protocol trades properties — mcTLS buys\n"
      "cryptographic access control at the cost of legacy interoperability; split TLS\n"
      "buys universal deployability at the cost of server authentication; mbTLS takes\n"
      "deployability + outsourcing protection and gives up partial-access control.\n");
  return 0;
}
