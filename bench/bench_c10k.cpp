// C10K/C20K load harness for the posix transport backend: N concurrent
// mbTLS sessions from a client LoopGroup, through a middlebox LoopGroup,
// into a server LoopGroup — 3×L event-loop threads, real TCP over
// 127.0.0.1, with SO_REUSEPORT sharding accepts across the middlebox and
// server loops (net/posix/loop_group.h).
//
// Phase 1 dials every session at once (posted to each client loop so the
// storm itself is loop-affine) and measures time-to-established per session
// (p50/p99 under the resulting connection storm — queueing included, that
// is the point). Phase 2 holds the sessions open and pushes application
// records from every session for a fixed window, with writability-gated
// sending so the bindings' backpressure buffering is on the measured path;
// steady-state goodput is what the server tier decrypts.
//
// Two throughputs are reported per row:
//  * wall_gbps    — decrypted bits / wall-clock window. Honest about this
//                   box, meaningless for scaling claims on a small one.
//  * capacity_gbps — decrypted bits / busiest-loop CPU time over the same
//                   window: the single-core-honest capacity metric the
//                   Fig. 7 scaling bench already uses (bits per second of
//                   the bottleneck loop, which is what adding cores buys).
//    The --grid scaling floor (4-loop capacity >= 2.5x 1-loop) is enforced
//    on capacity_gbps.
//
//   bench_c10k [--loops L] [--sessions N] [--payload BYTES] [--seconds S]
//              [--quick] [--grid] [--json PATH]
//
// --grid runs the loop grid {1,2,4} at --sessions plus a 10k-session row at
// 4 loops (quick grids shrink to {1,2} x 25 sessions and skip the floor),
// and fails if 4-loop capacity lands under the floor or any handshake fails.
//
// Fd budget: ~4 fds per concurrent session (client 1, middlebox 2, server 1)
// plus 3 per loop per tier (epoll + eventfd wakeup + listener). The harness
// raises RLIMIT_NOFILE to the hard cap, records the effective limit in the
// JSON, and derives a max-concurrent budget from it (with 1/3 headroom for
// in-flight teardown). A row whose --sessions exceeds the budget still runs
// every handshake — as a sliding-window storm: at most `max_concurrent`
// sessions are open at once, and each establishment beyond the window closes
// the finishing session and dials the next. On a box with real ulimit
// headroom the window covers all sessions and the row degenerates to the
// plain hold-everything-open storm; either way 0 failed handshakes is the
// bar, and `max_concurrent` lands in the JSON so the two shapes are
// distinguishable.
#include <sys/resource.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "mbtls/cache.h"
#include "mbtls/transport.h"
#include "net/posix/loop_group.h"

namespace mbtls::bench {
namespace {

using namespace mb;
using net::Stream;
using net::posix::EpollLoop;
using net::posix::LoopGroup;

using Clock = std::chrono::steady_clock;

double ms_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

double percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0;
  const double idx = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  return sorted[lo] + (idx - static_cast<double>(lo)) * (sorted[hi] - sorted[lo]);
}

/// Raise RLIMIT_NOFILE to the hard cap unconditionally and return the
/// effective soft limit; the concurrency budget is derived from it.
rlim_t raise_fd_limit() {
  rlimit lim{};
  if (getrlimit(RLIMIT_NOFILE, &lim) != 0) return 0;
  if (lim.rlim_cur < lim.rlim_max) {
    lim.rlim_cur = lim.rlim_max;
    setrlimit(RLIMIT_NOFILE, &lim);
  }
  getrlimit(RLIMIT_NOFILE, &lim);
  return lim.rlim_cur;
}

/// How many sessions can be open at once under `limit`: 4 fds per session
/// (client + 2 middlebox + server) after subtracting the per-loop overhead
/// (epoll + eventfd per loop per tier, SO_REUSEPORT listener per
/// middlebox/server loop), keeping 1/3 headroom for sessions still tearing
/// down when the sliding window has already dialed their replacements.
/// Returns 0 when even a trivial storm does not fit (refuse loudly rather
/// than die mid-storm on EMFILE).
std::size_t concurrent_budget(rlim_t limit, std::size_t loops) {
  const std::size_t overhead = loops * 2 * 3 + loops * 2 + 64;
  if (static_cast<std::size_t>(limit) < overhead + 4 * 16) return 0;
  return (static_cast<std::size_t>(limit) - overhead) / 4 * 2 / 3;
}

struct RowConfig {
  int sessions = 500;
  std::size_t loops = 1;
  std::size_t max_concurrent = 0;  // sliding-window cap; set from the fd budget
  std::size_t payload = 16 * 1024;
  double seconds = 2.0;     // steady-state measurement window
  double warmup_s = 0.25;   // discarded send time before the window
  int wait_limit_ms = 300'000;
};

struct RowResult {
  RowConfig cfg;
  int established = 0;
  int failed = 0;
  double p50 = 0, p99 = 0, mean = 0, ci95 = 0;
  std::uint64_t window_bytes = 0;
  double window_s = 0;
  double wall_gbps = 0;
  double capacity_gbps = 0;
  std::vector<std::uint64_t> mbox_accepts;
  std::size_t cache_entries = 0;
};

struct ClientSlot {
  std::unique_ptr<ClientSession> session;
  std::unique_ptr<SocketBinding<ClientSession>> binding;
  Stream* stream = nullptr;
  Clock::time_point dialed_at{};
  Clock::time_point established_at{};
  bool established = false;
  bool failed = false;
  bool churned = false;  // closed right after establishing to free its window slot
};

RowResult run_row(const RowConfig& cfg, const Identity& server_id, const Identity& mbox_id) {
  RowResult res;
  res.cfg = cfg;
  const std::size_t loops = cfg.loops;
  const int sessions = cfg.sessions;

  // The process-wide control plane every loop shares: mutex-striped caches
  // built for exactly this many-loops-one-process shape (mbtls/cache.h).
  ShardedSessionCache session_cache;
  CertPool cert_pool;

  std::atomic<bool> sending{false};
  std::atomic<int> established{0}, failed{0};
  std::atomic<std::uint64_t> server_bytes{0};

  // --- server tier ----------------------------------------------------------
  struct ServerSlot {
    std::unique_ptr<ServerSession> session;
    std::unique_ptr<SocketBinding<ServerSession>> binding;
  };
  LoopGroup server_group({loops, LoopGroup::DialPolicy::kRoundRobin});
  std::vector<std::vector<std::unique_ptr<ServerSlot>>> server_slots(loops);
  const net::Port server_port =
      server_group.listen(0, [&](std::size_t li, Stream& s) {
        auto slot = std::make_unique<ServerSlot>();
        ServerSession::Options sopts;
        sopts.tls.private_key = server_id.key;
        sopts.tls.certificate_chain = server_id.chain;
        sopts.tls.rng_seed = 7000 + li * 100'000 + server_slots[li].size();
        sopts.tls.session_cache = &session_cache;
        sopts.tls.cert_pool = &cert_pool;
        slot->session = std::make_unique<ServerSession>(std::move(sopts));
        slot->binding = std::make_unique<SocketBinding<ServerSession>>(*slot->session, s);
        ServerSlot* raw = slot.get();
        auto inner = std::move(s.on_data);
        s.on_data = [&server_bytes, raw, inner = std::move(inner)](ByteView d) {
          if (inner) inner(d);
          server_bytes.fetch_add(raw->session->take_app_data().size(),
                                 std::memory_order_relaxed);
        };
        server_slots[li].push_back(std::move(slot));
      });

  // --- middlebox tier -------------------------------------------------------
  // Each loop is a complete middlebox front: its own accepted streams, its
  // own upstream dials (same loop — a session's fds never migrate), its own
  // bindings. Only the striped caches are shared.
  struct MbSlot {
    std::unique_ptr<Middlebox> mbox;
    std::unique_ptr<MiddleboxBinding> binding;
  };
  LoopGroup mbox_group({loops, LoopGroup::DialPolicy::kRoundRobin});
  std::vector<std::vector<std::unique_ptr<MbSlot>>> mb_slots(loops);
  const net::Port mbox_port =
      mbox_group.listen(0, [&](std::size_t li, Stream& down) {
        auto slot = std::make_unique<MbSlot>();
        Middlebox::Options mopts;
        mopts.name = "c10kproxy.example";
        mopts.side = Middlebox::Side::kClientSide;
        mopts.private_key = mbox_id.key;
        mopts.certificate_chain = mbox_id.chain;
        mopts.session_cache = &session_cache;
        slot->mbox = std::make_unique<Middlebox>(std::move(mopts));
        Stream& up = mbox_group.loop(li).dial({0, server_port, "127.0.0.1"});
        slot->binding = std::make_unique<MiddleboxBinding>(*slot->mbox, down, up);
        mb_slots[li].push_back(std::move(slot));
      });

  // --- client tier ----------------------------------------------------------
  // Slots are fully materialized (and loop-assigned via pick_loop) before
  // any thread starts; the dial storm itself is posted so each loop opens
  // its own connections on its own thread.
  LoopGroup client_group({loops, LoopGroup::DialPolicy::kRoundRobin});
  std::vector<std::vector<std::unique_ptr<ClientSlot>>> clients(loops);
  for (int i = 0; i < sessions; ++i) {
    auto slot = std::make_unique<ClientSlot>();
    ClientSession::Options copts;
    copts.tls.trust_anchors = {ca().root()};
    copts.tls.server_name = "c10k.example";
    copts.tls.rng_seed = 9000 + static_cast<std::uint64_t>(i);
    copts.tls.cert_pool = &cert_pool;
    slot->session = std::make_unique<ClientSession>(std::move(copts));
    clients[client_group.pick_loop()].push_back(std::move(slot));
  }

  crypto::Drbg payload_rng("c10k-payload", 1);
  const Bytes chunk = payload_rng.bytes(cfg.payload);

  // Acceptor tiers first, then the clients with their refill tick.
  server_group.start();
  mbox_group.start();
  client_group.start([&](std::size_t li) {
    if (!sending.load(std::memory_order_acquire)) return;
    for (auto& c : clients[li]) {
      if (c->established && c->stream && c->stream->writable() && c->session->established()) {
        c->session->send(chunk);
        c->binding->flush();
      }
    }
  });

  // Phase 1: the dial storm. With max_concurrent >= sessions this is one
  // posted batch per client loop, everything open at once; otherwise it is
  // a sliding window — a session that establishes while undialed slots
  // remain closes itself, and its stream's on_close (fd freed) dials the
  // next slot. All per-slot state is loop-affine: next_dial[li] and the
  // slot vectors are touched only on loop li's thread after start().
  const std::size_t window =
      cfg.max_concurrent == 0 ? static_cast<std::size_t>(sessions) : cfg.max_concurrent;
  std::vector<std::size_t> next_dial(loops, 0);
  // run_row joins every loop thread (LoopGroup::stop) before this frame
  // unwinds, so reference captures of dial_one and the locals are safe.
  std::function<void(std::size_t)> dial_one = [&](std::size_t li) {
    auto& slots = clients[li];
    if (next_dial[li] >= slots.size()) return;
    ClientSlot* raw = slots[next_dial[li]++].get();
    EpollLoop& loop = client_group.loop(li);
    raw->dialed_at = Clock::now();
    raw->stream = &loop.dial({0, mbox_port, "127.0.0.1"});
    raw->stream->on_connect = [raw] { raw->session->start(); };
    raw->binding =
        std::make_unique<SocketBinding<ClientSession>>(*raw->session, *raw->stream);
    auto inner = std::move(raw->stream->on_data);
    raw->stream->on_data = [raw, li, &next_dial, &clients, &established, &failed,
                            inner = std::move(inner)](ByteView d) {
      if (inner) inner(d);
      if (!raw->established && raw->session->established()) {
        raw->established = true;
        raw->established_at = Clock::now();
        established.fetch_add(1, std::memory_order_release);
        // Checked now, not at dial time: only churn while this loop still
        // has undialed slots (loop-affine read of next_dial[li]).
        if (next_dial[li] < clients[li].size()) {
          // Hand the window slot on: orderly close_notify + FIN, then the
          // on_close below dials the replacement once the fd is gone.
          raw->churned = true;
          raw->session->close();
          raw->binding->flush();
          raw->stream->close();
        }
      } else if (!raw->failed && raw->session->failed()) {
        raw->failed = true;
        failed.fetch_add(1, std::memory_order_release);
      }
    };
    auto inner_close = std::move(raw->stream->on_close);
    raw->stream->on_close = [raw, li, &dial_one, inner_close = std::move(inner_close)] {
      if (inner_close) inner_close();
      if (raw->churned) dial_one(li);
    };
  };
  for (std::size_t li = 0; li < loops; ++li) {
    client_group.post(li, [&, li] {
      const std::size_t share = window / loops + (li < window % loops ? 1 : 0);
      const std::size_t initial = std::min(clients[li].size(), std::max<std::size_t>(1, share));
      for (std::size_t j = 0; j < initial; ++j) dial_one(li);
    });
  }

  for (int waited = 0; waited < cfg.wait_limit_ms; waited += 20) {
    if (established.load(std::memory_order_acquire) + failed.load(std::memory_order_acquire) >=
        sessions)
      break;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  res.established = established.load(std::memory_order_acquire);
  res.failed = failed.load(std::memory_order_acquire);

  // Phase 2: steady-state window with per-loop CPU accounting. The busiest
  // loop over the window is the capacity bottleneck.
  const std::size_t all_loops = loops * 3;
  std::vector<std::uint64_t> cpu0(all_loops), cpu1(all_loops);
  auto sample_cpus = [&](std::vector<std::uint64_t>& out) {
    for (std::size_t i = 0; i < loops; ++i) {
      out[i] = server_group.cpu_nanos_on(i);
      out[loops + i] = mbox_group.cpu_nanos_on(i);
      out[2 * loops + i] = client_group.cpu_nanos_on(i);
    }
  };
  if (res.established > 0) {
    sending.store(true, std::memory_order_release);
    std::this_thread::sleep_for(std::chrono::duration<double>(cfg.warmup_s));
    const std::uint64_t bytes0 = server_bytes.load(std::memory_order_relaxed);
    sample_cpus(cpu0);
    const auto w0 = Clock::now();
    std::this_thread::sleep_for(std::chrono::duration<double>(cfg.seconds));
    const std::uint64_t bytes1 = server_bytes.load(std::memory_order_relaxed);
    sample_cpus(cpu1);
    const auto w1 = Clock::now();
    sending.store(false, std::memory_order_release);
    res.window_bytes = bytes1 - bytes0;
    res.window_s = std::chrono::duration<double>(w1 - w0).count();
    res.wall_gbps = static_cast<double>(res.window_bytes) * 8.0 / res.window_s / 1e9;
    std::uint64_t busiest_ns = 0;
    for (std::size_t i = 0; i < all_loops; ++i)
      busiest_ns = std::max(busiest_ns, cpu1[i] - cpu0[i]);
    if (busiest_ns > 0)
      res.capacity_gbps = static_cast<double>(res.window_bytes) * 8.0 /
                          (static_cast<double>(busiest_ns) / 1e9) / 1e9;
  }

  client_group.stop();
  mbox_group.stop();
  server_group.stop();

  std::vector<double> latencies;
  latencies.reserve(static_cast<std::size_t>(res.established));
  for (const auto& per_loop : clients)
    for (const auto& c : per_loop)
      if (c->established) latencies.push_back(ms_between(c->dialed_at, c->established_at));
  std::sort(latencies.begin(), latencies.end());
  res.p50 = percentile(latencies, 50);
  res.p99 = percentile(latencies, 99);
  const Stats lat_stats = stats_of(latencies);
  res.mean = lat_stats.mean;
  res.ci95 = lat_stats.ci95;
  res.mbox_accepts = mbox_group.accept_counts();
  res.cache_entries = session_cache.size();
  return res;
}

void print_row(const RowResult& r) {
  std::printf("bench_c10k: loops=%zu sessions=%d (window %zu) established=%d failed=%d\n",
              r.cfg.loops, r.cfg.sessions, r.cfg.max_concurrent, r.established, r.failed);
  std::printf("  handshake latency under storm: p50=%.1f ms  p99=%.1f ms  mean=%.1f ms\n",
              r.p50, r.p99, r.mean);
  std::printf("  steady state: wall %.3f Gbps, capacity %.3f Gbps "
              "(%llu bytes over %.2f s, %zu-byte records)\n",
              r.wall_gbps, r.capacity_gbps, static_cast<unsigned long long>(r.window_bytes),
              r.window_s, r.cfg.payload);
  std::printf("  middlebox accepts per loop:");
  for (const std::uint64_t a : r.mbox_accepts)
    std::printf(" %llu", static_cast<unsigned long long>(a));
  std::printf("  (session-cache entries: %zu)\n", r.cache_entries);
}

std::string row_json(const RowResult& r) {
  char buf[1024];
  std::string accepts = "[";
  for (std::size_t i = 0; i < r.mbox_accepts.size(); ++i) {
    accepts += (i ? "," : "") + std::to_string(r.mbox_accepts[i]);
  }
  accepts += "]";
  std::snprintf(buf, sizeof(buf),
                "{\"loops\":%zu,\"sessions\":%d,\"max_concurrent\":%zu,"
                "\"established\":%d,\"failed\":%d,"
                "\"handshake_ms\":{\"p50\":%.3f,\"p99\":%.3f,\"mean\":%.3f,\"ci95\":%.3f},"
                "\"payload_bytes\":%zu,\"window_seconds\":%.3f,\"window_bytes\":%llu,"
                "\"wall_gbps\":%.4f,\"capacity_gbps\":%.4f,"
                "\"mbox_accepts\":%s,\"session_cache_entries\":%zu}",
                r.cfg.loops, r.cfg.sessions, r.cfg.max_concurrent, r.established, r.failed,
                r.p50, r.p99, r.mean,
                r.ci95, r.cfg.payload, r.window_s,
                static_cast<unsigned long long>(r.window_bytes), r.wall_gbps, r.capacity_gbps,
                accepts.c_str(), r.cache_entries);
  return buf;
}

int run(int argc, char** argv) {
  const auto flag = [&](const char* name) {
    for (int i = 1; i < argc; ++i)
      if (std::string(argv[i]) == name) return true;
    return false;
  };
  const bool quick = flag("--quick");
  const bool grid = flag("--grid");
  const std::string sessions_s = value_arg(argc, argv, "--sessions");
  const std::string payload_s = value_arg(argc, argv, "--payload");
  const std::string seconds_s = value_arg(argc, argv, "--seconds");
  const std::string loops_s = value_arg(argc, argv, "--loops");

  RowConfig base;
  base.sessions = sessions_s.empty() ? (quick ? 25 : 500) : std::atoi(sessions_s.c_str());
  base.loops = loops_s.empty() ? 1 : static_cast<std::size_t>(std::atol(loops_s.c_str()));
  if (!payload_s.empty()) base.payload = static_cast<std::size_t>(std::atol(payload_s.c_str()));
  base.seconds = seconds_s.empty() ? (quick ? 0.3 : 2.0) : std::atof(seconds_s.c_str());
  if (quick) base.warmup_s = 0.05;

  constexpr double kScalingFloor = 2.5;  // 4-loop capacity vs 1-loop capacity
  constexpr int kBigSessions = 10'000;

  std::vector<RowConfig> rows;
  if (grid) {
    const std::vector<std::size_t> loop_grid = quick ? std::vector<std::size_t>{1, 2}
                                                     : std::vector<std::size_t>{1, 2, 4};
    for (const std::size_t l : loop_grid) {
      RowConfig cfg = base;
      cfg.loops = l;
      rows.push_back(cfg);
    }
    if (!quick) {
      RowConfig big = base;  // the C10K+ row: 10k sessions over 4 loops
      big.loops = 4;
      big.sessions = kBigSessions;
      rows.push_back(big);
    }
  } else {
    rows.push_back(base);
  }

  const rlim_t fd_limit = raise_fd_limit();
  for (RowConfig& cfg : rows) {
    const std::size_t budget = concurrent_budget(fd_limit, cfg.loops);
    if (budget == 0) {
      std::fprintf(stderr,
                   "bench_c10k: RLIMIT_NOFILE=%llu is too small for any storm at --loops %zu\n",
                   static_cast<unsigned long long>(fd_limit), cfg.loops);
      return 2;
    }
    cfg.max_concurrent = std::min(budget, static_cast<std::size_t>(cfg.sessions));
    if (cfg.max_concurrent < static_cast<std::size_t>(cfg.sessions))
      std::printf("bench_c10k: fd limit %llu holds %zu concurrent sessions; "
                  "running %d sessions as a sliding-window storm\n",
                  static_cast<unsigned long long>(fd_limit), cfg.max_concurrent, cfg.sessions);
  }

  // ECDSA identities: cheap enough to sign N times that the transport, not
  // the certificate math, dominates the handshake storm.
  const Identity server_id = make_identity("c10k.example", x509::KeyType::kEcdsaP256);
  const Identity mbox_id = make_identity("c10kproxy.example", x509::KeyType::kEcdsaP256);

  std::vector<RowResult> results;
  bool all_ok = true;
  for (const RowConfig& cfg : rows) {
    results.push_back(run_row(cfg, server_id, mbox_id));
    const RowResult& r = results.back();
    print_row(r);
    if (r.established != r.cfg.sessions || (r.established > 0 && r.window_bytes == 0)) {
      std::fprintf(stderr, "bench_c10k: row loops=%zu sessions=%d FAILED (established=%d)\n",
                   r.cfg.loops, r.cfg.sessions, r.established);
      all_ok = false;
    }
  }

  // The scaling floor: multi-loop sharding must actually buy capacity.
  double scaling_4v1 = 0;
  bool floor_checked = false;
  if (grid && !quick) {
    const RowResult* one = nullptr;
    const RowResult* four = nullptr;
    for (const RowResult& r : results) {
      if (r.cfg.loops == 1 && r.cfg.sessions == base.sessions) one = &r;
      if (r.cfg.loops == 4 && r.cfg.sessions == base.sessions) four = &r;
    }
    if (one && four && one->capacity_gbps > 0) {
      scaling_4v1 = four->capacity_gbps / one->capacity_gbps;
      floor_checked = true;
      std::printf("bench_c10k: capacity scaling 4 loops vs 1 = %.2fx (floor %.1fx)\n",
                  scaling_4v1, kScalingFloor);
      if (scaling_4v1 < kScalingFloor) {
        std::fprintf(stderr, "bench_c10k: scaling floor VIOLATED: %.2fx < %.1fx\n",
                     scaling_4v1, kScalingFloor);
        all_ok = false;
      }
    }
  }

  const std::string json_path = json_arg(argc, argv);
  if (!json_path.empty()) {
    std::string out = "{\"bench\":\"c10k\",\"backend\":\"posix-epoll\",\"fd_limit\":" +
                      std::to_string(static_cast<unsigned long long>(fd_limit));
    if (floor_checked) {
      char buf[128];
      std::snprintf(buf, sizeof(buf), ",\"capacity_scaling_4v1\":%.3f,\"scaling_floor\":%.1f",
                    scaling_4v1, kScalingFloor);
      out += buf;
    }
    out += ",\"rows\":[";
    for (std::size_t i = 0; i < results.size(); ++i)
      out += (i ? "," : "") + row_json(results[i]);
    out += "]}\n";
    if (!write_text_file(json_path, out)) {
      std::fprintf(stderr, "bench_c10k: cannot write %s\n", json_path.c_str());
      return 1;
    }
  }
  return all_ok ? 0 : 1;
}

}  // namespace
}  // namespace mbtls::bench

int main(int argc, char** argv) { return mbtls::bench::run(argc, argv); }
