// C10K-style load harness for the posix transport backend: N concurrent
// mbTLS sessions from one client event loop, through one middlebox event
// loop, into one server event loop — three threads, real TCP over 127.0.0.1.
//
// Phase 1 dials every session at once and measures time-to-established per
// session (p50/p99 under the resulting connection storm — queueing included,
// that is the point). Phase 2 holds the sessions open and pushes application
// records from every session for a fixed window, with writability-gated
// sending so the bindings' backpressure buffering is on the measured path;
// steady-state goodput is what the server decrypts.
//
//   bench_c10k [--sessions N] [--payload BYTES] [--seconds S] [--quick]
//              [--json PATH]
//
// Scaling to the full 10K needs `ulimit -n` headroom (~4 fds per session
// across the three loops); the harness raises RLIMIT_NOFILE to the hard cap
// and then refuses session counts that still do not fit.
#include <sys/resource.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "mbtls/transport.h"
#include "net/posix/epoll_loop.h"

namespace mbtls::bench {
namespace {

using namespace mb;
using net::Stream;
using net::posix::EpollLoop;

using Clock = std::chrono::steady_clock;

double ms_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

double percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0;
  const double idx = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  return sorted[lo] + (idx - static_cast<double>(lo)) * (sorted[hi] - sorted[lo]);
}

void raise_fd_limit(std::size_t needed) {
  rlimit lim{};
  if (getrlimit(RLIMIT_NOFILE, &lim) != 0) return;
  if (lim.rlim_cur < needed && lim.rlim_cur < lim.rlim_max) {
    lim.rlim_cur = std::min<rlim_t>(lim.rlim_max, std::max<rlim_t>(needed, lim.rlim_cur));
    setrlimit(RLIMIT_NOFILE, &lim);
  }
  getrlimit(RLIMIT_NOFILE, &lim);
  if (lim.rlim_cur < needed) {
    std::fprintf(stderr, "bench_c10k: need ~%zu fds, RLIMIT_NOFILE is %llu — lower --sessions\n",
                 needed, static_cast<unsigned long long>(lim.rlim_cur));
    std::exit(2);
  }
}

struct ClientSlot {
  std::unique_ptr<ClientSession> session;
  std::unique_ptr<SocketBinding<ClientSession>> binding;
  Stream* stream = nullptr;
  Clock::time_point established_at{};
  bool established = false;
  bool failed = false;
};

int run(int argc, char** argv) {
  const bool quick = [&] {
    for (int i = 1; i < argc; ++i)
      if (std::string(argv[i]) == "--quick") return true;
    return false;
  }();
  const std::string sessions_s = value_arg(argc, argv, "--sessions");
  const std::string payload_s = value_arg(argc, argv, "--payload");
  const std::string seconds_s = value_arg(argc, argv, "--seconds");
  const int sessions = sessions_s.empty() ? (quick ? 25 : 500) : std::atoi(sessions_s.c_str());
  const std::size_t payload =
      payload_s.empty() ? 16 * 1024 : static_cast<std::size_t>(std::atol(payload_s.c_str()));
  const double seconds = seconds_s.empty() ? (quick ? 0.3 : 2.0) : std::atof(seconds_s.c_str());
  raise_fd_limit(static_cast<std::size_t>(sessions) * 4 + 64);

  // ECDSA identities: cheap enough to sign N times that the transport, not
  // the certificate math, dominates the handshake storm.
  const Identity server_id = make_identity("c10k.example", x509::KeyType::kEcdsaP256);
  const Identity mbox_id = make_identity("c10kproxy.example", x509::KeyType::kEcdsaP256);

  std::atomic<bool> stop{false};
  std::atomic<int> established{0}, failed{0};
  std::atomic<std::uint64_t> server_bytes{0};

  // --- server loop ----------------------------------------------------------
  EpollLoop server_loop;
  struct ServerSlot {
    std::unique_ptr<ServerSession> session;
    std::unique_ptr<SocketBinding<ServerSession>> binding;
  };
  std::vector<std::unique_ptr<ServerSlot>> server_slots;
  server_slots.reserve(static_cast<std::size_t>(sessions));
  const net::Port server_port = server_loop.listen_stream(0, [&](Stream& s) {
    auto slot = std::make_unique<ServerSlot>();
    ServerSession::Options sopts;
    sopts.tls.private_key = server_id.key;
    sopts.tls.certificate_chain = server_id.chain;
    sopts.tls.rng_seed = 7000 + server_slots.size();
    slot->session = std::make_unique<ServerSession>(std::move(sopts));
    slot->binding = std::make_unique<SocketBinding<ServerSession>>(*slot->session, s);
    ServerSlot* raw = slot.get();
    auto inner = std::move(s.on_data);
    s.on_data = [&server_bytes, raw, inner = std::move(inner)](ByteView d) {
      if (inner) inner(d);
      server_bytes.fetch_add(raw->session->take_app_data().size(), std::memory_order_relaxed);
    };
    server_slots.push_back(std::move(slot));
  });

  // --- middlebox loop -------------------------------------------------------
  EpollLoop mbox_loop;
  struct MbSlot {
    std::unique_ptr<Middlebox> mbox;
    std::unique_ptr<MiddleboxBinding> binding;
  };
  std::vector<std::unique_ptr<MbSlot>> mb_slots;
  mb_slots.reserve(static_cast<std::size_t>(sessions));
  const net::Port mbox_port = mbox_loop.listen_stream(0, [&](Stream& down) {
    auto slot = std::make_unique<MbSlot>();
    Middlebox::Options mopts;
    mopts.name = "c10kproxy.example";
    mopts.side = Middlebox::Side::kClientSide;
    mopts.private_key = mbox_id.key;
    mopts.certificate_chain = mbox_id.chain;
    slot->mbox = std::make_unique<Middlebox>(std::move(mopts));
    Stream& up = mbox_loop.dial({0, server_port, "127.0.0.1"});
    slot->binding = std::make_unique<MiddleboxBinding>(*slot->mbox, down, up);
    mb_slots.push_back(std::move(slot));
  });

  // --- client loop: one dial storm ------------------------------------------
  EpollLoop client_loop;
  std::vector<std::unique_ptr<ClientSlot>> clients;
  clients.reserve(static_cast<std::size_t>(sessions));
  for (int i = 0; i < sessions; ++i) {
    auto slot = std::make_unique<ClientSlot>();
    ClientSession::Options copts;
    copts.tls.trust_anchors = {ca().root()};
    copts.tls.server_name = "c10k.example";
    copts.tls.rng_seed = 9000 + static_cast<std::uint64_t>(i);
    slot->session = std::make_unique<ClientSession>(std::move(copts));
    slot->stream = &client_loop.dial({0, mbox_port, "127.0.0.1"});
    ClientSlot* raw = slot.get();
    slot->stream->on_connect = [raw] { raw->session->start(); };
    slot->binding = std::make_unique<SocketBinding<ClientSession>>(*slot->session, *slot->stream);
    auto inner = std::move(slot->stream->on_data);
    slot->stream->on_data = [raw, &established, &failed, inner = std::move(inner)](ByteView d) {
      if (inner) inner(d);
      if (!raw->established && raw->session->established()) {
        raw->established = true;
        raw->established_at = Clock::now();
        established.fetch_add(1, std::memory_order_release);
      } else if (!raw->failed && raw->session->failed()) {
        raw->failed = true;
        failed.fetch_add(1, std::memory_order_release);
      }
    };
    clients.push_back(std::move(slot));
  }

  // Steady phase: the client thread itself refills every writable session,
  // so sends interleave with polling on one thread (the loop's contract).
  std::atomic<bool> sending{false};
  crypto::Drbg payload_rng("c10k-payload", 1);
  const Bytes chunk = payload_rng.bytes(payload);

  const auto t_start = Clock::now();
  std::thread ts([&] {
    while (!stop.load(std::memory_order_relaxed)) server_loop.poll_once(net::kMillisecond);
  });
  std::thread tm([&] {
    while (!stop.load(std::memory_order_relaxed)) mbox_loop.poll_once(net::kMillisecond);
  });
  std::thread tc([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      client_loop.poll_once(net::kMillisecond);
      if (sending.load(std::memory_order_acquire)) {
        for (auto& c : clients) {
          if (c->established && c->stream->writable() && c->session->established()) {
            c->session->send(chunk);
            c->binding->flush();
          }
        }
      }
    }
  });

  // Phase 1: wait for the handshake storm to finish.
  const int wait_limit_ms = 120'000;
  for (int waited = 0; waited < wait_limit_ms; waited += 20) {
    if (established.load(std::memory_order_acquire) + failed.load(std::memory_order_acquire) >=
        sessions)
      break;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  const int ok = established.load(std::memory_order_acquire);
  const int bad = failed.load(std::memory_order_acquire);

  std::vector<double> latencies;
  latencies.reserve(static_cast<std::size_t>(ok));
  for (const auto& c : clients)
    if (c->established) latencies.push_back(ms_between(t_start, c->established_at));
  std::sort(latencies.begin(), latencies.end());
  const double p50 = percentile(latencies, 50);
  const double p99 = percentile(latencies, 99);
  const Stats lat_stats = stats_of(latencies);

  // Phase 2: steady-state goodput window (skip if nothing established).
  double gbps = 0;
  std::uint64_t window_bytes = 0;
  double window_s = 0;
  if (ok > 0) {
    sending.store(true, std::memory_order_release);
    std::this_thread::sleep_for(std::chrono::milliseconds(quick ? 50 : 250));  // warm-up
    const std::uint64_t bytes0 = server_bytes.load(std::memory_order_relaxed);
    const auto w0 = Clock::now();
    std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
    const std::uint64_t bytes1 = server_bytes.load(std::memory_order_relaxed);
    const auto w1 = Clock::now();
    sending.store(false, std::memory_order_release);
    window_bytes = bytes1 - bytes0;
    window_s = std::chrono::duration<double>(w1 - w0).count();
    gbps = static_cast<double>(window_bytes) * 8.0 / window_s / 1e9;
  }

  stop.store(true, std::memory_order_relaxed);
  tc.join();
  tm.join();
  ts.join();

  std::printf("bench_c10k: sessions=%d established=%d failed=%d\n", sessions, ok, bad);
  std::printf("  handshake latency under storm: p50=%.1f ms  p99=%.1f ms  mean=%.1f ms\n",
              p50, p99, lat_stats.mean);
  std::printf("  steady-state goodput: %.3f Gbps (%llu bytes over %.2f s, %zu-byte records)\n",
              gbps, static_cast<unsigned long long>(window_bytes), window_s, payload);

  const std::string json_path = json_arg(argc, argv);
  if (!json_path.empty()) {
    char buf[1024];
    std::snprintf(buf, sizeof(buf),
                  "{\"bench\":\"c10k\",\"backend\":\"posix-epoll\",\"sessions\":%d,"
                  "\"established\":%d,\"failed\":%d,"
                  "\"handshake_ms\":{\"p50\":%.3f,\"p99\":%.3f,\"mean\":%.3f,\"ci95\":%.3f},"
                  "\"payload_bytes\":%zu,\"window_seconds\":%.3f,"
                  "\"window_bytes\":%llu,\"steady_gbps\":%.4f}\n",
                  sessions, ok, bad, p50, p99, lat_stats.mean, lat_stats.ci95, payload,
                  window_s, static_cast<unsigned long long>(window_bytes), gbps);
    if (!write_text_file(json_path, buf)) {
      std::fprintf(stderr, "bench_c10k: cannot write %s\n", json_path.c_str());
      return 1;
    }
  }
  // The harness's own pass/fail: every session must complete its handshake
  // and the window must move real bytes end to end.
  if (ok != sessions || (ok > 0 && window_bytes == 0)) return 1;
  return 0;
}

}  // namespace
}  // namespace mbtls::bench

int main(int argc, char** argv) { return mbtls::bench::run(argc, argv); }
