// Figure 5 — Handshake CPU Microbenchmarks.
//
// Reproduces: per-party computation time for a single handshake (network
// wait excluded — every byte moves through in-memory pipes and only the time
// spent inside a party's own calls is counted), for:
//   TLS (no mbox), mbTLS (no mbox), "split" TLS (1 mbox),
//   mbTLS (1 client mbox), mbTLS (1/2/3 server mboxes).
//
// Paper result (shape): client/server TLS and mbTLS costs are close without
// middleboxes; the middlebox is cheaper under mbTLS than under split TLS
// (one handshake instead of two); the server's cost is flat in the number of
// client-side middleboxes and grows by roughly the cost of one *client*
// handshake (~20% of its own) per server-side middlebox.
#include "baselines/split_tls.h"
#include "bench/bench_common.h"
#include "mbtls/client.h"
#include "mbtls/metrics.h"
#include "mbtls/middlebox.h"
#include "mbtls/server.h"

namespace mbtls::bench {
namespace {

using mb::ClientSession;
using mb::Middlebox;
using mb::ServerSession;

struct Sample {
  double client_ms = 0;
  double mbox_ms = 0;  // first middlebox when several
  double server_ms = 0;
};

const Identity& server_identity() {
  static const Identity id = make_identity("origin.example", x509::KeyType::kRsa);
  return id;
}

const Identity& mbox_identity() {
  static const Identity id = make_identity("proxy.example", x509::KeyType::kRsa);
  return id;
}

std::vector<tls::CipherSuite> suite_for(const std::string& kx) {
  if (kx == "DHE-RSA") return {tls::CipherSuite::kDheRsaAes256GcmSha384};
  return {tls::CipherSuite::kEcdheRsaAes256GcmSha384};
}

// ------------------------------------------------- plain TLS / no middlebox

Sample run_tls_no_mbox(const std::string& kx, std::uint64_t seed) {
  tls::Config ccfg;
  ccfg.is_client = true;
  ccfg.cipher_suites = suite_for(kx);
  ccfg.trust_anchors = {ca().root()};
  ccfg.server_name = "origin.example";
  ccfg.rng_seed = seed;
  tls::Config scfg;
  scfg.is_client = false;
  scfg.cipher_suites = suite_for(kx);
  scfg.private_key = server_identity().key;
  scfg.certificate_chain = server_identity().chain;
  scfg.rng_seed = seed + 1;
  tls::Engine client(ccfg);
  tls::Engine server(scfg);
  PartyTimer tc, ts;
  tc.time([&] { client.start(); });
  for (int i = 0; i < 20; ++i) {
    const Bytes a = tc.time([&] { return client.take_output(); });
    const Bytes b = ts.time([&] { return server.take_output(); });
    if (a.empty() && b.empty()) break;
    if (!a.empty()) ts.time([&] { server.feed(a); });
    if (!b.empty()) tc.time([&] { client.feed(b); });
  }
  if (!client.handshake_done() || !server.handshake_done()) std::abort();
  return {tc.ms(), 0, ts.ms()};
}

// ----------------------------------------------------- mbTLS with N mboxes

Sample run_mbtls(const std::string& kx, int client_mboxes, int server_mboxes,
                 std::uint64_t seed, trace::Sink* sink = nullptr) {
  ClientSession::Options copts;
  copts.tls.cipher_suites = suite_for(kx);
  copts.tls.trust_anchors = {ca().root()};
  copts.tls.server_name = "origin.example";
  copts.tls.rng_seed = seed;
  copts.trace_sink = sink;
  ClientSession client(std::move(copts));

  ServerSession::Options sopts;
  sopts.tls.cipher_suites = suite_for(kx);
  sopts.tls.private_key = server_identity().key;
  sopts.tls.certificate_chain = server_identity().chain;
  sopts.tls.trust_anchors = {ca().root()};
  sopts.tls.rng_seed = seed + 1;
  sopts.trace_sink = sink;
  ServerSession server(std::move(sopts));

  std::vector<std::unique_ptr<Middlebox>> mboxes;
  for (int i = 0; i < client_mboxes + server_mboxes; ++i) {
    Middlebox::Options mopts;
    mopts.name = "proxy.example";
    mopts.side = i < client_mboxes ? Middlebox::Side::kClientSide : Middlebox::Side::kServerSide;
    mopts.cipher_suites = suite_for(kx);
    mopts.private_key = mbox_identity().key;
    mopts.certificate_chain = mbox_identity().chain;
    mopts.trace_sink = sink;
    mopts.trace_actor = "mbox" + std::to_string(i + 1);
    mboxes.push_back(std::make_unique<Middlebox>(std::move(mopts)));
  }

  PartyTimer tc, tm, ts;
  tc.time([&] { client.start(); });
  for (int iter = 0; iter < 100; ++iter) {
    bool moved = false;
    auto move = [&](Bytes data, auto&& sink) {
      if (!data.empty()) {
        moved = true;
        sink(data);
      }
    };
    move(tc.time([&] { return client.take_output(); }), [&](const Bytes& d) {
      if (mboxes.empty()) {
        ts.time([&] { server.feed(d); });
      } else {
        tm.time([&] { mboxes[0]->feed_from_client(d); });
      }
    });
    for (std::size_t i = 0; i < mboxes.size(); ++i) {
      auto timed = [&](auto&& f) {
        // Only the first middlebox is reported (all are symmetric).
        if (i == 0) return tm.time(f);
        return f();
      };
      move(timed([&] { return mboxes[i]->take_to_server(); }), [&](const Bytes& d) {
        if (i + 1 < mboxes.size()) {
          mboxes[i + 1]->feed_from_client(d);
        } else {
          ts.time([&] { server.feed(d); });
        }
      });
      move(timed([&] { return mboxes[i]->take_to_client(); }), [&](const Bytes& d) {
        if (i == 0) {
          tc.time([&] { client.feed(d); });
        } else {
          mboxes[i - 1]->feed_from_server(d);
        }
      });
    }
    move(ts.time([&] { return server.take_output(); }), [&](const Bytes& d) {
      if (mboxes.empty()) {
        tc.time([&] { client.feed(d); });
      } else {
        mboxes.back()->feed_from_server(d);
      }
    });
    if (!moved) break;
  }
  if (!client.established() || !server.established()) std::abort();
  return {tc.ms(), tm.ms(), ts.ms()};
}

// -------------------------------------------------------------- split TLS

Sample run_split(const std::string& kx, std::uint64_t seed);

Sample run_split(const std::string& kx, std::uint64_t seed) {
  tls::Config ccfg;
  ccfg.is_client = true;
  ccfg.cipher_suites = suite_for(kx);
  ccfg.trust_anchors = {ca().root()};
  ccfg.server_name = "origin.example";
  ccfg.rng_seed = seed;
  tls::Engine client(ccfg);

  baselines::SplitTlsMiddlebox::Options mopts;
  mopts.ca = &ca();
  mopts.upstream_trust_anchors = {ca().root()};
  mopts.rng_seed = seed + 7;
  baselines::SplitTlsMiddlebox mbox(std::move(mopts));

  tls::Config scfg;
  scfg.is_client = false;
  scfg.cipher_suites = suite_for(kx);
  scfg.private_key = server_identity().key;
  scfg.certificate_chain = server_identity().chain;
  scfg.rng_seed = seed + 1;
  tls::Engine server(scfg);

  PartyTimer tc, tm, ts;
  tc.time([&] { client.start(); });
  for (int i = 0; i < 50; ++i) {
    bool moved = false;
    auto move = [&](Bytes data, auto&& sink) {
      if (!data.empty()) {
        moved = true;
        sink(data);
      }
    };
    move(tc.time([&] { return client.take_output(); }),
         [&](const Bytes& d) { tm.time([&] { mbox.feed_from_client(d); }); });
    move(tm.time([&] { return mbox.take_to_server(); }),
         [&](const Bytes& d) { ts.time([&] { server.feed(d); }); });
    move(ts.time([&] { return server.take_output(); }),
         [&](const Bytes& d) { tm.time([&] { mbox.feed_from_server(d); }); });
    move(tm.time([&] { return mbox.take_to_client(); }),
         [&](const Bytes& d) { tc.time([&] { client.feed(d); }); });
    if (!moved) break;
  }
  if (!client.handshake_done() || !server.handshake_done()) std::abort();
  return {tc.ms(), tm.ms(), ts.ms()};
}

Json report(const std::string& kx, const std::string& config,
            const std::vector<Sample>& samples) {
  std::vector<double> c, m, s;
  for (const auto& sample : samples) {
    c.push_back(sample.client_ms);
    m.push_back(sample.mbox_ms);
    s.push_back(sample.server_ms);
  }
  const Stats sc = stats_of(c), sm = stats_of(m), ss = stats_of(s);
  std::printf("%-28s  client %7.3f ±%5.3f ms   mbox %7.3f ±%5.3f ms   server %7.3f ±%5.3f ms\n",
              config.c_str(), sc.mean, sc.ci95, sm.mean, sm.ci95, ss.mean, ss.ci95);
  return Json::object()
      .add("kx", kx)
      .add("config", config)
      .add("client_ms", sc.mean)
      .add("client_ci95", sc.ci95)
      .add("mbox_ms", sm.mean)
      .add("mbox_ci95", sm.ci95)
      .add("server_ms", ss.mean)
      .add("server_ci95", ss.ci95);
}

void run_kx(const std::string& kx, int trials, Json& rows) {
  std::printf("--- key exchange: %s (RSA-2048 certificates) ---\n", kx.c_str());
  struct Case {
    std::string name;
    std::function<Sample(std::uint64_t)> run;
  };
  const std::vector<Case> cases = {
      {"TLS (no mbox)", [&](std::uint64_t s) { return run_tls_no_mbox(kx, s); }},
      {"mbTLS (no mbox)", [&](std::uint64_t s) { return run_mbtls(kx, 0, 0, s); }},
      {"\"Split\" TLS (1 mbox)", [&](std::uint64_t s) { return run_split(kx, s); }},
      {"mbTLS (1 client mbox)", [&](std::uint64_t s) { return run_mbtls(kx, 1, 0, s); }},
      {"mbTLS (1 server mbox)", [&](std::uint64_t s) { return run_mbtls(kx, 0, 1, s); }},
      {"mbTLS (2 server mboxes)", [&](std::uint64_t s) { return run_mbtls(kx, 0, 2, s); }},
      {"mbTLS (3 server mboxes)", [&](std::uint64_t s) { return run_mbtls(kx, 0, 3, s); }},
  };
  for (const auto& c : cases) {
    std::vector<Sample> samples;
    for (int t = 0; t < trials; ++t) samples.push_back(c.run(static_cast<std::uint64_t>(t) * 100));
    rows.push(report(kx, c.name, samples));
  }
}

}  // namespace
}  // namespace mbtls::bench

int main(int argc, char** argv) {
  using namespace mbtls::bench;
  const int trials = trials_arg(argc, argv, 100);
  const std::string json_path = json_arg(argc, argv);
  const std::string trace_path = trace_arg(argc, argv);
  if (!trace_path.empty()) {
    // One traced handshake — client, two server-side middleboxes, server —
    // exported as Chrome trace-event JSON (see EXPERIMENTS.md).
    mbtls::trace::Recorder rec;
    run_mbtls("ECDHE-RSA", 0, 2, 42, &rec);
    if (!write_text_file(trace_path, rec.chrome_trace_json())) {
      std::fprintf(stderr, "failed to write %s\n", trace_path.c_str());
      return 1;
    }
    const auto metrics = mbtls::mb::summarize(rec.events());
    std::printf("traced mbTLS handshake (2 server mboxes): %zu events\n%s",
                rec.events().size(), metrics.dump().c_str());
    std::printf("wrote %s\n", trace_path.c_str());
    return 0;
  }
  std::printf("=== Figure 5: Handshake CPU microbenchmarks (%d trials, mean ± 95%% CI) ===\n",
              trials);
  // One-time setup outside the timers: DHE group generation, CA creation,
  // identity issuance, and one split-TLS fabrication per host.
  mbtls::tls::default_dh_group();
  (void)server_identity();
  (void)mbox_identity();
  run_split("ECDHE-RSA", 17);
  run_split("DHE-RSA", 18);
  std::printf("Time spent computing per handshake, per party; network wait excluded.\n\n");
  Json rows = Json::array();
  run_kx("ECDHE-RSA", trials, rows);
  std::printf("\n");
  run_kx("DHE-RSA", trials, rows);
  std::printf(
      "\nPaper shape to check: TLS ~= mbTLS without middleboxes; middlebox cheaper under\n"
      "mbTLS than split TLS (one handshake, not two); server cost flat vs client-side\n"
      "middleboxes, + ~one client-handshake (~20%%) per server-side middlebox.\n");
  if (!json_path.empty()) {
    Json doc = Json::object()
                   .add("bench", std::string("fig5_handshake_cpu"))
                   .add("trials", static_cast<double>(trials));
    add_backend_fields(doc).add("rows", rows);
    if (!doc.write_file(json_path)) {
      std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
