// Table 1 — Threats and Defenses.
//
// Reproduces the paper's threat/defense matrix by *executing* each attack
// against four protocol configurations (naive key-share TLS, split TLS,
// mbTLS without SGX, and full mbTLS with SGX-protected middleboxes) and
// reporting whether the attack succeeded. See src/attacks/attacks.h for the
// concrete adversary implementations.
#include <cstdio>
#include <map>

#include "attacks/attacks.h"

int main() {
  using namespace mbtls::attacks;
  std::printf("=== Table 1: threats and defenses (executed attack matrix) ===\n");
  std::printf("Cell: 'defended' = attack failed; 'COMPROMISED' = attack succeeded.\n\n");

  const auto results = run_all();

  // Group rows by threat, columns by protocol.
  std::vector<std::string> threat_order;
  std::map<std::string, std::map<Protocol, bool>> matrix;
  std::map<std::string, std::string> property_of;
  for (const auto& r : results) {
    if (!matrix.count(r.threat)) threat_order.push_back(r.threat);
    matrix[r.threat][r.protocol] = r.attack_succeeded;
    property_of[r.threat] = r.property;
  }

  const Protocol cols[] = {Protocol::kNaiveKeyShare, Protocol::kSplitTls, Protocol::kMbtlsNoSgx,
                           Protocol::kMbtls};
  std::printf("%-52s %-5s", "threat", "prop");
  for (const auto p : cols) std::printf(" | %-19s", to_string(p));
  std::printf("\n");
  for (std::size_t i = 0; i < 52 + 6 + 4 * 22; ++i) std::printf("-");
  std::printf("\n");
  for (const auto& threat : threat_order) {
    std::printf("%-52.52s %-5s", threat.c_str(), property_of[threat].c_str());
    for (const auto p : cols) {
      const auto it = matrix[threat].find(p);
      if (it == matrix[threat].end()) {
        std::printf(" | %-19s", "-");
      } else {
        std::printf(" | %-19s", it->second ? "COMPROMISED" : "defended");
      }
    }
    std::printf("\n");
  }
  std::printf(
      "\nPaper expectation: mbTLS+SGX defends every Table-1 threat; the naive design\n"
      "leaks middlebox modifications (P1C) and permits skips (P4); any design without\n"
      "a secure execution environment exposes keys to the infrastructure provider;\n"
      "split TLS cannot let the client authenticate the real server (P3A, [23]).\n"
      "The cache-poisoning row is the documented §4.2 limitation of mbTLS itself.\n");
  return 0;
}
