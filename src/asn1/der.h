// DER (Distinguished Encoding Rules) subset — the encodings X.509 needs:
// SEQUENCE/SET, INTEGER, BIT STRING, OCTET STRING, OBJECT IDENTIFIER,
// BOOLEAN, NULL, UTF8String/PrintableString, UTCTime/GeneralizedTime, and
// context-specific constructed tags.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "bignum/bignum.h"
#include "util/bytes.h"
#include "util/reader.h"

namespace mbtls::asn1 {

enum class Tag : std::uint8_t {
  kBoolean = 0x01,
  kInteger = 0x02,
  kBitString = 0x03,
  kOctetString = 0x04,
  kNull = 0x05,
  kOid = 0x06,
  kUtf8String = 0x0c,
  kPrintableString = 0x13,
  kUtcTime = 0x17,
  kGeneralizedTime = 0x18,
  kSequence = 0x30,
  kSet = 0x31,
};

/// Returns the context-specific constructed tag byte [n].
constexpr std::uint8_t context_tag(unsigned n) {
  return static_cast<std::uint8_t>(0xa0 | n);
}

// ------------------------------------------------------------------ encode

/// Wrap `content` in a TLV with the given tag byte.
Bytes tlv(std::uint8_t tag, ByteView content);
inline Bytes tlv(Tag tag, ByteView content) { return tlv(static_cast<std::uint8_t>(tag), content); }

Bytes encode_sequence(std::initializer_list<ByteView> elements);
Bytes encode_set(std::initializer_list<ByteView> elements);
Bytes encode_integer(const bn::BigInt& v);
Bytes encode_integer(std::int64_t v);
/// BIT STRING with zero unused bits (the only form certificates need).
Bytes encode_bit_string(ByteView bits);
Bytes encode_octet_string(ByteView data);
Bytes encode_null();
Bytes encode_boolean(bool v);
/// Encode dotted OID text, e.g. "1.2.840.10045.2.1".
Bytes encode_oid(std::string_view dotted);
Bytes encode_utf8_string(std::string_view s);
Bytes encode_printable_string(std::string_view s);
/// UTCTime from a Unix timestamp (YYMMDDHHMMSSZ). Year must be in 1950-2049.
Bytes encode_utc_time(std::int64_t unix_seconds);
/// Context-specific constructed wrapper [n] { content }.
Bytes encode_context(unsigned n, ByteView content);

// ------------------------------------------------------------------ decode

/// A parsed TLV element. `content` aliases the input buffer.
struct Element {
  std::uint8_t tag = 0;
  ByteView content;

  bool is(Tag t) const { return tag == static_cast<std::uint8_t>(t); }
};

/// Sequential DER parser over a byte view. Throws DecodeError on malformed
/// or non-minimal encodings.
class Parser {
 public:
  explicit Parser(ByteView data) : r_(data) {}
  // The parser only *views* its input; constructing one from a temporary
  // buffer would dangle, so forbid it at compile time.
  explicit Parser(Bytes&&) = delete;

  bool empty() const { return r_.empty(); }

  /// Read the next TLV element of any tag.
  Element any();
  /// Read the next element, requiring the given tag.
  Element expect(Tag tag);
  Element expect(std::uint8_t tag);

  /// Convenience typed readers.
  bn::BigInt integer();
  std::int64_t small_integer();  // throws if it does not fit
  Bytes bit_string();            // strips the unused-bits octet (must be 0)
  ByteView octet_string();
  std::string oid();             // returns dotted text
  std::string string();          // UTF8String or PrintableString
  std::int64_t utc_time();       // Unix seconds
  bool boolean();
  void null();

  /// Sub-parser over a SEQUENCE / SET / context tag body.
  Parser sequence();
  Parser set();
  Parser context(unsigned n);

  /// Peek at the next tag without consuming.
  std::uint8_t peek_tag() const;

  void expect_end() const { r_.expect_end(); }

 private:
  Reader r_;
};

}  // namespace mbtls::asn1
