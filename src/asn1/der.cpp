#include <cstdio>
#include "asn1/der.h"

#include <stdexcept>

namespace mbtls::asn1 {

namespace {

void encode_length(Bytes& out, std::size_t len) {
  if (len < 0x80) {
    out.push_back(static_cast<std::uint8_t>(len));
    return;
  }
  Bytes len_bytes;
  std::size_t v = len;
  while (v) {
    len_bytes.insert(len_bytes.begin(), static_cast<std::uint8_t>(v & 0xff));
    v >>= 8;
  }
  out.push_back(static_cast<std::uint8_t>(0x80 | len_bytes.size()));
  append(out, len_bytes);
}

}  // namespace

Bytes tlv(std::uint8_t tag, ByteView content) {
  Bytes out;
  out.push_back(tag);
  encode_length(out, content.size());
  append(out, content);
  return out;
}

Bytes encode_sequence(std::initializer_list<ByteView> elements) {
  Bytes body;
  for (auto e : elements) append(body, e);
  return tlv(Tag::kSequence, body);
}

Bytes encode_set(std::initializer_list<ByteView> elements) {
  Bytes body;
  for (auto e : elements) append(body, e);
  return tlv(Tag::kSet, body);
}

Bytes encode_integer(const bn::BigInt& v) {
  Bytes mag = v.to_bytes();
  if (mag.empty()) mag.push_back(0);
  // DER INTEGER is two's complement; prepend 0x00 when the top bit is set so
  // the (non-negative) value is not read as negative.
  if (mag[0] & 0x80) mag.insert(mag.begin(), 0);
  return tlv(Tag::kInteger, mag);
}

Bytes encode_integer(std::int64_t v) {
  if (v < 0) throw std::invalid_argument("negative INTEGERs not supported");
  return encode_integer(bn::BigInt(static_cast<std::uint64_t>(v)));
}

Bytes encode_bit_string(ByteView bits) {
  Bytes body;
  body.push_back(0);  // zero unused bits
  append(body, bits);
  return tlv(Tag::kBitString, body);
}

Bytes encode_octet_string(ByteView data) { return tlv(Tag::kOctetString, data); }

Bytes encode_null() { return tlv(Tag::kNull, {}); }

Bytes encode_boolean(bool v) {
  const std::uint8_t body = v ? 0xff : 0x00;
  return tlv(Tag::kBoolean, ByteView(&body, 1));
}

Bytes encode_oid(std::string_view dotted) {
  std::vector<std::uint64_t> arcs;
  std::uint64_t cur = 0;
  bool have_digit = false;
  for (char c : dotted) {
    if (c == '.') {
      if (!have_digit) throw std::invalid_argument("bad OID");
      arcs.push_back(cur);
      cur = 0;
      have_digit = false;
    } else if (c >= '0' && c <= '9') {
      cur = cur * 10 + static_cast<std::uint64_t>(c - '0');
      have_digit = true;
    } else {
      throw std::invalid_argument("bad OID character");
    }
  }
  if (!have_digit) throw std::invalid_argument("bad OID");
  arcs.push_back(cur);
  if (arcs.size() < 2 || arcs[0] > 2 || (arcs[0] < 2 && arcs[1] >= 40))
    throw std::invalid_argument("bad OID arcs");
  Bytes body;
  auto push_base128 = [&](std::uint64_t v) {
    Bytes tmp;
    tmp.push_back(static_cast<std::uint8_t>(v & 0x7f));
    v >>= 7;
    while (v) {
      tmp.insert(tmp.begin(), static_cast<std::uint8_t>(0x80 | (v & 0x7f)));
      v >>= 7;
    }
    append(body, tmp);
  };
  push_base128(arcs[0] * 40 + arcs[1]);
  for (std::size_t i = 2; i < arcs.size(); ++i) push_base128(arcs[i]);
  return tlv(Tag::kOid, body);
}

Bytes encode_utf8_string(std::string_view s) { return tlv(Tag::kUtf8String, to_bytes(s)); }

Bytes encode_printable_string(std::string_view s) {
  return tlv(Tag::kPrintableString, to_bytes(s));
}

namespace {
// Civil-from-days (Howard Hinnant's algorithm) to format UTCTime.
struct Civil {
  int year, month, day;
};
Civil civil_from_days(std::int64_t z) {
  z += 719468;
  const std::int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const std::uint64_t doe = static_cast<std::uint64_t>(z - era * 146097);
  const std::uint64_t yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const std::int64_t y = static_cast<std::int64_t>(yoe) + era * 400;
  const std::uint64_t doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const std::uint64_t mp = (5 * doy + 2) / 153;
  const std::uint64_t d = doy - (153 * mp + 2) / 5 + 1;
  const std::uint64_t m = mp < 10 ? mp + 3 : mp - 9;
  return {static_cast<int>(y + (m <= 2)), static_cast<int>(m), static_cast<int>(d)};
}

std::int64_t days_from_civil(int y, int m, int d) {
  y -= m <= 2;
  const std::int64_t era = (y >= 0 ? y : y - 399) / 400;
  const std::uint64_t yoe = static_cast<std::uint64_t>(y - era * 400);
  const std::uint64_t doy =
      static_cast<std::uint64_t>((153 * (m > 2 ? m - 3 : m + 9) + 2) / 5 + d - 1);
  const std::uint64_t doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097 + static_cast<std::int64_t>(doe) - 719468;
}
}  // namespace

Bytes encode_utc_time(std::int64_t unix_seconds) {
  const std::int64_t days = unix_seconds >= 0 ? unix_seconds / 86400
                                              : (unix_seconds - 86399) / 86400;
  std::int64_t secs = unix_seconds - days * 86400;
  const Civil c = civil_from_days(days);
  if (c.year < 1950 || c.year > 2049)
    throw std::invalid_argument("UTCTime only covers 1950-2049");
  char buf[32];
  const int yy = c.year % 100;
  std::snprintf(buf, sizeof(buf), "%02d%02d%02d%02d%02d%02dZ", yy, c.month, c.day,
                static_cast<int>(secs / 3600), static_cast<int>((secs / 60) % 60),
                static_cast<int>(secs % 60));
  return tlv(Tag::kUtcTime, to_bytes(std::string_view(buf, 13)));
}

Bytes encode_context(unsigned n, ByteView content) { return tlv(context_tag(n), content); }

// ------------------------------------------------------------------ parser

Element Parser::any() {
  const std::uint8_t tag = r_.u8();
  std::size_t len;
  const std::uint8_t first = r_.u8();
  if (first < 0x80) {
    len = first;
  } else {
    const int n = first & 0x7f;
    if (n == 0 || n > 4) throw DecodeError("unsupported DER length");
    len = 0;
    for (int i = 0; i < n; ++i) len = (len << 8) | r_.u8();
    if (len < 0x80) throw DecodeError("non-minimal DER length");
  }
  return Element{tag, r_.bytes(len)};
}

Element Parser::expect(Tag tag) { return expect(static_cast<std::uint8_t>(tag)); }

Element Parser::expect(std::uint8_t tag) {
  const Element e = any();
  if (e.tag != tag) throw DecodeError("unexpected DER tag");
  return e;
}

bn::BigInt Parser::integer() {
  const Element e = expect(Tag::kInteger);
  if (e.content.empty()) throw DecodeError("empty INTEGER");
  if (e.content[0] & 0x80) throw DecodeError("negative INTEGERs not supported");
  return bn::BigInt::from_bytes(e.content);
}

std::int64_t Parser::small_integer() {
  const bn::BigInt v = integer();
  if (v.bit_length() > 62) throw DecodeError("INTEGER too large");
  std::int64_t out = 0;
  for (const auto b : v.to_bytes()) out = (out << 8) | b;
  return out;
}

Bytes Parser::bit_string() {
  const Element e = expect(Tag::kBitString);
  if (e.content.empty() || e.content[0] != 0)
    throw DecodeError("BIT STRING with unused bits not supported");
  return to_bytes(e.content.subspan(1));
}

ByteView Parser::octet_string() { return expect(Tag::kOctetString).content; }

std::string Parser::oid() {
  const Element e = expect(Tag::kOid);
  if (e.content.empty()) throw DecodeError("empty OID");
  std::string out;
  std::size_t i = 0;
  std::uint64_t first = 0;
  // First subidentifier encodes the first two arcs.
  while (i < e.content.size()) {
    first = (first << 7) | (e.content[i] & 0x7f);
    if (!(e.content[i++] & 0x80)) break;
  }
  const std::uint64_t arc0 = first >= 80 ? 2 : first / 40;
  const std::uint64_t arc1 = first - arc0 * 40;
  out = std::to_string(arc0) + "." + std::to_string(arc1);
  while (i < e.content.size()) {
    std::uint64_t v = 0;
    for (;;) {
      if (i >= e.content.size()) throw DecodeError("truncated OID");
      v = (v << 7) | (e.content[i] & 0x7f);
      if (!(e.content[i++] & 0x80)) break;
    }
    out += '.';
    out += std::to_string(v);
  }
  return out;
}

std::string Parser::string() {
  const Element e = any();
  if (!e.is(Tag::kUtf8String) && !e.is(Tag::kPrintableString))
    throw DecodeError("expected string type");
  return to_string(e.content);
}

std::int64_t Parser::utc_time() {
  const Element e = expect(Tag::kUtcTime);
  if (e.content.size() != 13 || e.content[12] != 'Z') throw DecodeError("bad UTCTime");
  auto dd = [&](std::size_t i) {
    const char a = static_cast<char>(e.content[i]);
    const char b = static_cast<char>(e.content[i + 1]);
    if (a < '0' || a > '9' || b < '0' || b > '9') throw DecodeError("bad UTCTime digit");
    return (a - '0') * 10 + (b - '0');
  };
  const int yy = dd(0);
  const int year = yy >= 50 ? 1900 + yy : 2000 + yy;
  const std::int64_t days = days_from_civil(year, dd(2), dd(4));
  return days * 86400 + dd(6) * 3600 + dd(8) * 60 + dd(10);
}

bool Parser::boolean() {
  const Element e = expect(Tag::kBoolean);
  if (e.content.size() != 1) throw DecodeError("bad BOOLEAN");
  return e.content[0] != 0;
}

void Parser::null() {
  const Element e = expect(Tag::kNull);
  if (!e.content.empty()) throw DecodeError("bad NULL");
}

Parser Parser::sequence() { return Parser(expect(Tag::kSequence).content); }
Parser Parser::set() { return Parser(expect(Tag::kSet).content); }
Parser Parser::context(unsigned n) { return Parser(expect(context_tag(n)).content); }

std::uint8_t Parser::peek_tag() const {
  Reader copy = r_;  // lint: partial-read (peek: reads one byte by design)
  return copy.u8();
}

}  // namespace mbtls::asn1
