#include "rsa/rsa.h"

#include <stdexcept>

#include "bignum/prime.h"
#include "util/ct.h"

namespace mbtls::rsa {

using bn::BigInt;

bn::BigInt RsaKeyPair::private_op(const BigInt& m) const {
  // CRT: m1 = m^dp mod p, m2 = m^dq mod q, h = qinv (m1 - m2) mod p.
  const BigInt m1 = m.mod_exp(dp, p);
  const BigInt m2 = m.mod_exp(dq, q);
  BigInt diff;
  if (m1 >= m2) {
    diff = (m1 - m2) % p;
  } else {
    diff = p - ((m2 - m1) % p);
    if (diff == p) diff = BigInt();
  }
  const BigInt h = (qinv * diff) % p;
  return m2 + q * h;
}

RsaKeyPair rsa_generate(std::size_t bits, crypto::Drbg& rng) {
  const BigInt e(65537);
  for (;;) {
    const BigInt p = bn::generate_prime(bits / 2, rng);
    const BigInt q = bn::generate_prime(bits - bits / 2, rng);
    if (p == q) continue;
    const BigInt n = p * q;
    if (n.bit_length() != bits) continue;
    const BigInt phi = (p - BigInt(1)) * (q - BigInt(1));
    if (BigInt::gcd(e, phi) != BigInt(1)) continue;
    RsaKeyPair kp;
    kp.pub = {n, e};
    kp.d = e.mod_inverse(phi);
    // Normalize so that p > q (required for the qinv CRT form used above).
    kp.p = p >= q ? p : q;
    kp.q = p >= q ? q : p;
    kp.dp = kp.d % (kp.p - BigInt(1));
    kp.dq = kp.d % (kp.q - BigInt(1));
    kp.qinv = kp.q.mod_inverse(kp.p);
    return kp;
  }
}

namespace {

// DigestInfo prefixes (DER) for PKCS#1 v1.5 signatures, per RFC 8017 §9.2.
Bytes digest_info_prefix(crypto::HashAlgo algo) {
  switch (algo) {
    case crypto::HashAlgo::kSha256:
      return {0x30, 0x31, 0x30, 0x0d, 0x06, 0x09, 0x60, 0x86, 0x48, 0x01,
              0x65, 0x03, 0x04, 0x02, 0x01, 0x05, 0x00, 0x04, 0x20};
    case crypto::HashAlgo::kSha384:
      return {0x30, 0x41, 0x30, 0x0d, 0x06, 0x09, 0x60, 0x86, 0x48, 0x01,
              0x65, 0x03, 0x04, 0x02, 0x02, 0x05, 0x00, 0x04, 0x30};
    case crypto::HashAlgo::kSha512:
      return {0x30, 0x51, 0x30, 0x0d, 0x06, 0x09, 0x60, 0x86, 0x48, 0x01,
              0x65, 0x03, 0x04, 0x02, 0x03, 0x05, 0x00, 0x04, 0x40};
  }
  throw std::invalid_argument("unknown hash algorithm");
}

Bytes emsa_pkcs1_v15(crypto::HashAlgo algo, ByteView message, std::size_t em_len) {
  const Bytes t = concat({digest_info_prefix(algo), crypto::hash(algo, message)});
  if (em_len < t.size() + 11) throw std::length_error("RSA modulus too small for digest");
  Bytes em;
  em.reserve(em_len);
  em.push_back(0x00);
  em.push_back(0x01);
  em.insert(em.end(), em_len - t.size() - 3, 0xff);
  em.push_back(0x00);
  append(em, t);
  return em;
}

}  // namespace

Bytes rsa_sign(const RsaKeyPair& key, crypto::HashAlgo algo, ByteView message) {
  const std::size_t k = key.pub.modulus_bytes();
  const Bytes em = emsa_pkcs1_v15(algo, message, k);
  const BigInt m = BigInt::from_bytes(em);
  return key.private_op(m).to_bytes(k);
}

bool rsa_verify(const RsaPublicKey& key, crypto::HashAlgo algo, ByteView message,
                ByteView signature) {
  const std::size_t k = key.modulus_bytes();
  if (signature.size() != k) return false;
  const BigInt s = BigInt::from_bytes(signature);
  if (s >= key.n) return false;
  const Bytes em = s.mod_exp(key.e, key.n).to_bytes(k);
  Bytes expected;
  try {
    expected = emsa_pkcs1_v15(algo, message, k);
  } catch (const std::length_error&) {
    return false;
  }
  return ct::equal(em, expected);
}

Bytes rsa_encrypt(const RsaPublicKey& key, ByteView plaintext, crypto::Drbg& rng) {
  const std::size_t k = key.modulus_bytes();
  if (plaintext.size() + 11 > k) throw std::length_error("RSA plaintext too long");
  Bytes em;
  em.reserve(k);
  em.push_back(0x00);
  em.push_back(0x02);
  const std::size_t pad_len = k - plaintext.size() - 3;
  for (std::size_t i = 0; i < pad_len; ++i) {
    std::uint8_t b = 0;
    while (b == 0) b = static_cast<std::uint8_t>(rng.u32());  // nonzero padding
    em.push_back(b);
  }
  em.push_back(0x00);
  append(em, plaintext);
  const BigInt m = BigInt::from_bytes(em);
  return m.mod_exp(key.e, key.n).to_bytes(k);
}

std::optional<Bytes> rsa_decrypt(const RsaKeyPair& key, ByteView ciphertext) {
  const std::size_t k = key.pub.modulus_bytes();
  if (ciphertext.size() != k) return std::nullopt;
  const BigInt c = BigInt::from_bytes(ciphertext);
  if (c >= key.pub.n) return std::nullopt;
  const Bytes em = key.private_op(c).to_bytes(k);
  if (em.size() < 11 || em[0] != 0x00 || em[1] != 0x02) return std::nullopt;
  std::size_t sep = 2;
  while (sep < em.size() && em[sep] != 0x00) ++sep;
  if (sep < 10 || sep == em.size()) return std::nullopt;  // at least 8 pad bytes
  return Bytes(em.begin() + static_cast<std::ptrdiff_t>(sep) + 1, em.end());
}

}  // namespace mbtls::rsa
