// RSA with PKCS#1 v1.5 signatures and encryption padding (RFC 8017).
//
// The TLS stack uses RSA both for certificate signatures (*_RSA_* suites)
// and, indirectly, as the certificate-key type for ECDHE-RSA / DHE-RSA —
// matching the cipher suites the paper benchmarked (Figure 5 used
// ECDHE-RSA and DHE-RSA).
#pragma once

#include <optional>

#include "bignum/bignum.h"
#include "crypto/drbg.h"
#include "crypto/sha2.h"
#include "util/bytes.h"

namespace mbtls::rsa {

struct RsaPublicKey {
  bn::BigInt n;
  bn::BigInt e;

  std::size_t modulus_bytes() const { return n.byte_length(); }
};

struct RsaKeyPair {
  RsaPublicKey pub;
  bn::BigInt d;
  // CRT components for fast private-key operations.
  bn::BigInt p, q, dp, dq, qinv;

  /// Private-key exponentiation with CRT.
  bn::BigInt private_op(const bn::BigInt& m) const;
};

/// Generate an RSA key pair (e = 65537). `bits` is the modulus size.
RsaKeyPair rsa_generate(std::size_t bits, crypto::Drbg& rng);

/// PKCS#1 v1.5 signature over message (hashed with `algo`, DigestInfo-wrapped).
Bytes rsa_sign(const RsaKeyPair& key, crypto::HashAlgo algo, ByteView message);
bool rsa_verify(const RsaPublicKey& key, crypto::HashAlgo algo, ByteView message,
                ByteView signature);

/// PKCS#1 v1.5 encryption (type-2 padding) — used by the RSA key transport
/// cipher suites and session-ticket wrapping in tests.
Bytes rsa_encrypt(const RsaPublicKey& key, ByteView plaintext, crypto::Drbg& rng);
/// Returns empty optional on padding failure.
std::optional<Bytes> rsa_decrypt(const RsaKeyPair& key, ByteView ciphertext);

}  // namespace mbtls::rsa
