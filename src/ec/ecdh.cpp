#include "ec/ecdh.h"

#include <stdexcept>

namespace mbtls::ec {

EcdhKeyPair ecdh_generate(crypto::Drbg& rng) {
  const auto& curve = P256::instance();
  EcdhKeyPair kp;
  kp.private_key = curve.random_scalar(rng);
  kp.public_point = curve.encode_point(curve.mul_base(kp.private_key));
  return kp;
}

Bytes ecdh_shared_secret(const EcdhKeyPair& ours, ByteView peer_public_point) {
  const auto& curve = P256::instance();
  const auto peer = curve.decode_point(peer_public_point);
  if (!peer) throw std::invalid_argument("ECDH: invalid peer public point");
  const AffinePoint shared = curve.mul(ours.private_key, *peer);
  if (shared.infinity) throw std::invalid_argument("ECDH: degenerate shared point");
  return shared.x.to_bytes();
}

}  // namespace mbtls::ec
