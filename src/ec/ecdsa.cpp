#include "ec/ecdsa.h"

namespace mbtls::ec {

namespace {
// Hash-to-scalar: leftmost 256 bits of the digest, reduced once mod n.
U256 hash_to_scalar(crypto::HashAlgo algo, ByteView message) {
  Bytes digest = crypto::hash(algo, message);
  digest.resize(32);  // truncate to the group size (SHA-384/512 -> 32 bytes)
  const U256 z = U256::from_bytes(digest);
  return P256::instance().scalar_field().reduce_once(z);
}
}  // namespace

EcdsaKeyPair ecdsa_generate(crypto::Drbg& rng) {
  const auto& curve = P256::instance();
  EcdsaKeyPair kp;
  kp.private_key = curve.random_scalar(rng);
  kp.public_key = curve.mul_base(kp.private_key);
  return kp;
}

Bytes ecdsa_sign(const EcdsaKeyPair& key, crypto::HashAlgo algo, ByteView message,
                 crypto::Drbg& rng) {
  const auto& curve = P256::instance();
  const auto& fn = curve.scalar_field();
  const U256 z = hash_to_scalar(algo, message);
  for (;;) {
    const U256 k = curve.random_scalar(rng);
    const AffinePoint r_point = curve.mul_base(k);
    const U256 r = fn.reduce_once(r_point.x);
    if (r.is_zero()) continue;
    // s = k^-1 (z + r d) mod n, computed in the Montgomery domain of n.
    const U256 km = fn.to_mont(k);
    const U256 rm = fn.to_mont(r);
    const U256 dm = fn.to_mont(key.private_key);
    const U256 zm = fn.to_mont(z);
    const U256 kinv = fn.inv(km);
    const U256 sm = fn.mul(kinv, fn.add(zm, fn.mul(rm, dm)));
    const U256 s = fn.from_mont(sm);
    if (s.is_zero()) continue;
    return concat({r.to_bytes(), s.to_bytes()});
  }
}

bool ecdsa_verify(const AffinePoint& public_key, crypto::HashAlgo algo, ByteView message,
                  ByteView signature) {
  if (signature.size() != 64) return false;
  const auto& curve = P256::instance();
  const auto& fn = curve.scalar_field();
  if (!curve.on_curve(public_key)) return false;

  const U256 r = U256::from_bytes(signature.first(32));
  const U256 s = U256::from_bytes(signature.subspan(32));
  if (r.is_zero() || s.is_zero()) return false;
  // r, s must be < n.
  if (fn.reduce_once(r) != r || fn.reduce_once(s) != s) return false;

  const U256 z = hash_to_scalar(algo, message);
  const U256 sm = fn.to_mont(s);
  const U256 w = fn.inv(sm);  // s^-1 in Montgomery form
  const U256 u1 = fn.from_mont(fn.mul(fn.to_mont(z), w));
  const U256 u2 = fn.from_mont(fn.mul(fn.to_mont(r), w));
  const AffinePoint rp = curve.mul_add(u1, u2, public_key);
  if (rp.infinity) return false;
  return fn.reduce_once(rp.x) == r;
}

}  // namespace mbtls::ec
