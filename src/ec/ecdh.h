// Ephemeral ECDH over P-256 — the key exchange behind the
// TLS_ECDHE_* cipher suites.
#pragma once

#include "crypto/drbg.h"
#include "ec/p256.h"
#include "util/bytes.h"

namespace mbtls::ec {

struct EcdhKeyPair {
  U256 private_key;
  Bytes public_point;  // SEC1 uncompressed (65 bytes)
};

/// Generate an ephemeral key pair.
EcdhKeyPair ecdh_generate(crypto::Drbg& rng);

/// Compute the shared secret (the 32-byte x-coordinate, per RFC 4492).
/// Throws std::invalid_argument if the peer point is invalid.
Bytes ecdh_shared_secret(const EcdhKeyPair& ours, ByteView peer_public_point);

}  // namespace mbtls::ec
