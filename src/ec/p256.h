// NIST P-256 (secp256r1) group arithmetic.
//
// Field and scalar arithmetic use a fixed-size 4x64-limb Montgomery
// implementation (generic over any odd 256-bit modulus, so the same code
// serves both the field prime p and the group order n). Points are held in
// Jacobian projective coordinates in the Montgomery domain.
//
// This backs both ECDHE key exchange and ECDSA certificate signatures — the
// dominant asymmetric cost in the Figure-5 handshake CPU experiment, which is
// why it gets a dedicated implementation instead of the generic BigInt.
//
// Two implementations coexist:
//  * the fast path — fixed-window (w=4) scalar multiplication. `mul_base`
//    uses a precomputed 64x15 comb table of generator multiples (public
//    constants); `mul` builds a per-call 15-entry table of the input point.
//    Secret-scalar paths select window entries with a constant-time scan over
//    the whole table (see `ct_select_window`), never by secret index.
//    `mul_add` (ECDSA verify — public scalars) interleaves both scalars over
//    shared doublings with plain indexed lookups.
//  * the reference path — the original double-and-add ladder, kept as the
//    differential-test oracle (`*_reference`). Building with
//    -DMBTLS_REFERENCE_CRYPTO routes the public API back to it.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>

#include "crypto/drbg.h"
#include "util/bytes.h"

namespace mbtls::ec {

/// 256-bit value, 4 little-endian 64-bit limbs.
struct U256 {
  std::array<std::uint64_t, 4> w{};

  static U256 from_bytes(ByteView be32);  // exactly 32 big-endian bytes
  Bytes to_bytes() const;                 // 32 big-endian bytes

  bool operator==(const U256&) const = default;
  bool is_zero() const { return w[0] == 0 && w[1] == 0 && w[2] == 0 && w[3] == 0; }
  bool bit(std::size_t i) const { return (w[i / 64] >> (i % 64)) & 1; }
};

/// Montgomery arithmetic context modulo an odd 256-bit modulus.
class Mont {
 public:
  explicit Mont(const U256& modulus);

  const U256& modulus() const { return n_; }

  U256 to_mont(const U256& a) const { return mul(a, r2_); }
  U256 from_mont(const U256& a) const;

  // All of these operate on Montgomery-domain values (except add/sub, which
  // are domain-agnostic residue arithmetic).
  U256 add(const U256& a, const U256& b) const;
  U256 sub(const U256& a, const U256& b) const;
  U256 mul(const U256& a, const U256& b) const;  // Montgomery product
  U256 sqr(const U256& a) const { return mul(a, a); }
  U256 exp(const U256& base_mont, const U256& e) const;
  U256 inv(const U256& a_mont) const;  // via Fermat (modulus must be prime)
  U256 one_mont() const { return one_; }

  /// Reduce an arbitrary 256-bit value into [0, n) (at most one subtraction —
  /// callers guarantee a < 2n).
  U256 reduce_once(const U256& a) const;

 private:
  U256 n_;
  std::uint64_t n0inv_;
  U256 r2_;
  U256 one_;
};

/// Affine point; infinity encoded by `infinity == true`.
struct AffinePoint {
  U256 x, y;
  bool infinity = false;
};

/// Constant-time window-table selection: returns table[idx - 1] for idx in
/// [1, table.size()], or a zero point for idx == 0. Every entry is scanned and
/// mask-combined regardless of idx, so neither the branch predictor nor the
/// data cache observes which entry was chosen. This is the primitive all
/// secret-scalar window lookups go through; test_consttime pits it against a
/// deliberately variable-time early-exit lookup as the positive control.
AffinePoint ct_select_window(std::span<const AffinePoint> table, std::uint32_t idx);

class P256 {
 public:
  static const P256& instance();

  const Mont& field() const { return fp_; }
  const Mont& scalar_field() const { return fn_; }
  const U256& order() const { return n_; }

  /// Scalar multiplication k*G.
  AffinePoint mul_base(const U256& k) const;
  /// Scalar multiplication k*P.
  AffinePoint mul(const U256& k, const AffinePoint& p) const;
  /// u1*G + u2*Q (for ECDSA verification; u1/u2 are public).
  AffinePoint mul_add(const U256& u1, const U256& u2, const AffinePoint& q) const;

  // Reference (double-and-add ladder) implementations: the differential-test
  // oracle and the bench baseline. Always compiled; `mul_base` etc. dispatch
  // here when MBTLS_REFERENCE_CRYPTO is defined.
  AffinePoint mul_base_reference(const U256& k) const;
  AffinePoint mul_reference(const U256& k, const AffinePoint& p) const;
  AffinePoint mul_add_reference(const U256& u1, const U256& u2, const AffinePoint& q) const;

  /// Is `p` a valid point on the curve (and not infinity)?
  bool on_curve(const AffinePoint& p) const;

  /// SEC1 uncompressed encoding: 0x04 || X || Y (65 bytes).
  Bytes encode_point(const AffinePoint& p) const;
  std::optional<AffinePoint> decode_point(ByteView data) const;

  /// Random scalar in [1, n-1].
  U256 random_scalar(crypto::Drbg& rng) const;

  const AffinePoint& generator() const { return g_; }

 private:
  P256();

  struct Jacobian {
    U256 x, y, z;  // Montgomery domain; infinity iff z == 0
  };

  /// Montgomery-domain affine point (z == 1 implied); the window-table entry
  /// format. Mixed addition against these saves ~4 field muls per add.
  struct AffineMont {
    U256 x, y;
  };

  static constexpr int kWindowBits = 4;
  static constexpr int kWindows = 256 / kWindowBits;       // 64
  static constexpr int kTableSize = (1 << kWindowBits) - 1;  // 15 (idx 0 = skip)

  Jacobian to_jacobian(const AffinePoint& p) const;
  AffinePoint to_affine(const Jacobian& p) const;
  Jacobian dbl(const Jacobian& p) const;
  Jacobian add(const Jacobian& p, const Jacobian& q) const;
  Jacobian add_mixed(const Jacobian& p, const AffineMont& q) const;
  Jacobian add_mixed_ct(const Jacobian& p, const AffineMont& q, std::uint64_t valid_mask) const;
  Jacobian mul_impl(const U256& k, const Jacobian& p) const;
  void build_window_table(const AffinePoint& p, AffineMont out[kTableSize]) const;
  void batch_to_affine_mont(const Jacobian* in, AffineMont* out, std::size_t count) const;

  Mont fp_;
  Mont fn_;
  U256 n_;
  U256 b_mont_;        // curve b in Montgomery form
  U256 three_mont_;    // 3 in Montgomery form (a = -3)
  AffinePoint g_;
  // Comb table of generator multiples: base_table_[i][j-1] = j * 16^i * G for
  // i in [0,64), j in [1,16). Public curve constants only (derived from G), so
  // no wiping is required; secret scalars never enter the precomputation.
  std::array<std::array<AffineMont, kTableSize>, kWindows> base_table_;  // lint: not-secret
};

}  // namespace mbtls::ec
