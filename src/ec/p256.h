// NIST P-256 (secp256r1) group arithmetic.
//
// Field and scalar arithmetic use a fixed-size 4x64-limb Montgomery
// implementation (generic over any odd 256-bit modulus, so the same code
// serves both the field prime p and the group order n). Points are held in
// Jacobian projective coordinates in the Montgomery domain.
//
// This backs both ECDHE key exchange and ECDSA certificate signatures — the
// dominant asymmetric cost in the Figure-5 handshake CPU experiment, which is
// why it gets a dedicated implementation instead of the generic BigInt.
#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "crypto/drbg.h"
#include "util/bytes.h"

namespace mbtls::ec {

/// 256-bit value, 4 little-endian 64-bit limbs.
struct U256 {
  std::array<std::uint64_t, 4> w{};

  static U256 from_bytes(ByteView be32);  // exactly 32 big-endian bytes
  Bytes to_bytes() const;                 // 32 big-endian bytes

  bool operator==(const U256&) const = default;
  bool is_zero() const { return w[0] == 0 && w[1] == 0 && w[2] == 0 && w[3] == 0; }
  bool bit(std::size_t i) const { return (w[i / 64] >> (i % 64)) & 1; }
};

/// Montgomery arithmetic context modulo an odd 256-bit modulus.
class Mont {
 public:
  explicit Mont(const U256& modulus);

  const U256& modulus() const { return n_; }

  U256 to_mont(const U256& a) const { return mul(a, r2_); }
  U256 from_mont(const U256& a) const;

  // All of these operate on Montgomery-domain values (except add/sub, which
  // are domain-agnostic residue arithmetic).
  U256 add(const U256& a, const U256& b) const;
  U256 sub(const U256& a, const U256& b) const;
  U256 mul(const U256& a, const U256& b) const;  // Montgomery product
  U256 sqr(const U256& a) const { return mul(a, a); }
  U256 exp(const U256& base_mont, const U256& e) const;
  U256 inv(const U256& a_mont) const;  // via Fermat (modulus must be prime)
  U256 one_mont() const { return one_; }

  /// Reduce an arbitrary 256-bit value into [0, n) (at most one subtraction —
  /// callers guarantee a < 2n).
  U256 reduce_once(const U256& a) const;

 private:
  U256 n_;
  std::uint64_t n0inv_;
  U256 r2_;
  U256 one_;
};

/// Affine point; infinity encoded by `infinity == true`.
struct AffinePoint {
  U256 x, y;
  bool infinity = false;
};

class P256 {
 public:
  static const P256& instance();

  const Mont& field() const { return fp_; }
  const Mont& scalar_field() const { return fn_; }
  const U256& order() const { return n_; }

  /// Scalar multiplication k*G.
  AffinePoint mul_base(const U256& k) const;
  /// Scalar multiplication k*P.
  AffinePoint mul(const U256& k, const AffinePoint& p) const;
  /// u1*G + u2*Q (for ECDSA verification).
  AffinePoint mul_add(const U256& u1, const U256& u2, const AffinePoint& q) const;

  /// Is `p` a valid point on the curve (and not infinity)?
  bool on_curve(const AffinePoint& p) const;

  /// SEC1 uncompressed encoding: 0x04 || X || Y (65 bytes).
  Bytes encode_point(const AffinePoint& p) const;
  std::optional<AffinePoint> decode_point(ByteView data) const;

  /// Random scalar in [1, n-1].
  U256 random_scalar(crypto::Drbg& rng) const;

  const AffinePoint& generator() const { return g_; }

 private:
  P256();

  struct Jacobian {
    U256 x, y, z;  // Montgomery domain; infinity iff z == 0
  };

  Jacobian to_jacobian(const AffinePoint& p) const;
  AffinePoint to_affine(const Jacobian& p) const;
  Jacobian dbl(const Jacobian& p) const;
  Jacobian add(const Jacobian& p, const Jacobian& q) const;
  Jacobian mul_impl(const U256& k, const Jacobian& p) const;

  Mont fp_;
  Mont fn_;
  U256 n_;
  U256 b_mont_;        // curve b in Montgomery form
  U256 three_mont_;    // 3 in Montgomery form (a = -3)
  AffinePoint g_;
};

}  // namespace mbtls::ec
