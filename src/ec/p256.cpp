#include "ec/p256.h"

#include <cstring>
#include <stdexcept>

namespace mbtls::ec {

using u64 = std::uint64_t;
using u128 = unsigned __int128;

U256 U256::from_bytes(ByteView be32) {
  if (be32.size() != 32) throw std::invalid_argument("U256::from_bytes wants 32 bytes");
  U256 r;
  for (int limb = 0; limb < 4; ++limb) {
    u64 v = 0;
    for (int i = 0; i < 8; ++i) v = (v << 8) | be32[static_cast<std::size_t>((3 - limb) * 8 + i)];
    r.w[static_cast<std::size_t>(limb)] = v;
  }
  return r;
}

Bytes U256::to_bytes() const {
  Bytes out(32);
  for (int limb = 0; limb < 4; ++limb) {
    u64 v = w[static_cast<std::size_t>(limb)];
    for (int i = 7; i >= 0; --i) {
      out[static_cast<std::size_t>((3 - limb) * 8 + i)] = static_cast<std::uint8_t>(v);
      v >>= 8;
    }
  }
  return out;
}

namespace {

// raw add: r = a + b, returns carry
inline u64 raw_add(U256& r, const U256& a, const U256& b) {
  u128 carry = 0;
  for (int i = 0; i < 4; ++i) {
    const u128 s = static_cast<u128>(a.w[i]) + b.w[i] + carry;
    r.w[i] = static_cast<u64>(s);
    carry = s >> 64;
  }
  return static_cast<u64>(carry);
}

// raw sub: r = a - b, returns borrow
inline u64 raw_sub(U256& r, const U256& a, const U256& b) {
  u128 borrow = 0;
  for (int i = 0; i < 4; ++i) {
    const u128 d = static_cast<u128>(a.w[i]) - b.w[i] - borrow;
    r.w[i] = static_cast<u64>(d);
    borrow = (d >> 64) & 1;
  }
  return static_cast<u64>(borrow);
}

inline int raw_cmp(const U256& a, const U256& b) {
  for (int i = 3; i >= 0; --i) {
    if (a.w[i] != b.w[i]) return a.w[i] < b.w[i] ? -1 : 1;
  }
  return 0;
}

}  // namespace

Mont::Mont(const U256& modulus) : n_(modulus) {
  if ((n_.w[0] & 1) == 0) throw std::invalid_argument("Mont: modulus must be odd");
  u64 inv = 1;
  for (int i = 0; i < 6; ++i) inv *= 2 - n_.w[0] * inv;
  n0inv_ = ~inv + 1;

  // r2_ = 2^512 mod n, computed by repeated doubling of (2^256 mod n).
  // Start with r = 2^256 mod n: since n has the top bit set in practice
  // (both the P-256 prime and order do), 2^256 mod n can be found by
  // repeated conditional subtraction from a value built via doubling 1,
  // 256 times, reducing as we go.
  U256 r{};  // running value
  r.w[0] = 1;
  for (int i = 0; i < 512; ++i) {
    // r = 2r mod n
    U256 doubled;
    const u64 carry = raw_add(doubled, r, r);
    if (carry || raw_cmp(doubled, n_) >= 0) {
      U256 reduced;
      raw_sub(reduced, doubled, n_);
      r = reduced;
    } else {
      r = doubled;
    }
  }
  r2_ = r;

  U256 one{};
  one.w[0] = 1;
  one_ = mul(one, r2_);
}

U256 Mont::add(const U256& a, const U256& b) const {
  U256 r;
  const u64 carry = raw_add(r, a, b);
  if (carry || raw_cmp(r, n_) >= 0) {
    U256 s;
    raw_sub(s, r, n_);
    return s;
  }
  return r;
}

U256 Mont::sub(const U256& a, const U256& b) const {
  U256 r;
  const u64 borrow = raw_sub(r, a, b);
  if (borrow) {
    U256 s;
    raw_add(s, r, n_);
    return s;
  }
  return r;
}

U256 Mont::mul(const U256& a, const U256& b) const {
  // CIOS Montgomery multiplication, fixed 4 limbs.
  u64 t[6] = {0};
  for (int i = 0; i < 4; ++i) {
    // t += a[i] * b
    u64 carry = 0;
    for (int j = 0; j < 4; ++j) {
      const u128 cur = static_cast<u128>(a.w[i]) * b.w[j] + t[j] + carry;
      t[j] = static_cast<u64>(cur);
      carry = static_cast<u64>(cur >> 64);
    }
    u128 cur = static_cast<u128>(t[4]) + carry;
    t[4] = static_cast<u64>(cur);
    t[5] = static_cast<u64>(cur >> 64);

    const u64 m = t[0] * n0inv_;
    // t += m * n; t >>= 64
    u128 c0 = static_cast<u128>(m) * n_.w[0] + t[0];
    carry = static_cast<u64>(c0 >> 64);
    for (int j = 1; j < 4; ++j) {
      const u128 cur2 = static_cast<u128>(m) * n_.w[j] + t[j] + carry;
      t[j - 1] = static_cast<u64>(cur2);
      carry = static_cast<u64>(cur2 >> 64);
    }
    cur = static_cast<u128>(t[4]) + carry;
    t[3] = static_cast<u64>(cur);
    t[4] = t[5] + static_cast<u64>(cur >> 64);
    t[5] = 0;
  }
  U256 r{{t[0], t[1], t[2], t[3]}};
  if (t[4] != 0 || raw_cmp(r, n_) >= 0) {
    U256 s;
    raw_sub(s, r, n_);
    return s;
  }
  return r;
}

U256 Mont::from_mont(const U256& a) const {
  U256 one{};
  one.w[0] = 1;
  return mul(a, one);
}

U256 Mont::exp(const U256& base_mont, const U256& e) const {
  U256 acc = one_;
  bool started = false;
  for (int i = 255; i >= 0; --i) {
    if (started) acc = sqr(acc);
    if (e.bit(static_cast<std::size_t>(i))) {
      acc = started ? mul(acc, base_mont) : base_mont;
      started = true;
    }
  }
  return started ? acc : one_;
}

U256 Mont::inv(const U256& a_mont) const {
  // Fermat: a^(n-2) mod n.
  U256 e = n_;
  U256 two{};
  two.w[0] = 2;
  U256 nm2;
  raw_sub(nm2, e, two);
  return exp(a_mont, nm2);
}

U256 Mont::reduce_once(const U256& a) const {
  if (raw_cmp(a, n_) >= 0) {
    U256 r;
    raw_sub(r, a, n_);
    return r;
  }
  return a;
}

// ------------------------------------------------------------------ curve

namespace {
U256 from_hex64(const char* hex) {
  // 64 hex chars -> U256
  Bytes b(32);
  auto nib = [](char c) -> u64 {
    if (c >= '0' && c <= '9') return static_cast<u64>(c - '0');
    if (c >= 'a' && c <= 'f') return static_cast<u64>(c - 'a' + 10);
    return static_cast<u64>(c - 'A' + 10);
  };
  for (int i = 0; i < 32; ++i)
    b[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>((nib(hex[2 * i]) << 4) | nib(hex[2 * i + 1]));
  return U256::from_bytes(b);
}
}  // namespace

const P256& P256::instance() {
  static const P256 curve;
  return curve;
}

P256::P256()
    : fp_(from_hex64("ffffffff00000001000000000000000000000000ffffffffffffffffffffffff")),
      fn_(from_hex64("ffffffff00000000ffffffffffffffffbce6faada7179e84f3b9cac2fc632551")),
      n_(from_hex64("ffffffff00000000ffffffffffffffffbce6faada7179e84f3b9cac2fc632551")) {
  const U256 b = from_hex64("5ac635d8aa3a93e7b3ebbd55769886bc651d06b0cc53b0f63bce3c3e27d2604b");
  const U256 gx = from_hex64("6b17d1f2e12c4247f8bce6e563a440f277037d812deb33a0f4a13945d898c296");
  const U256 gy = from_hex64("4fe342e2fe1a7f9b8ee7eb4a7c0f9e162bce33576b315ececbb6406837bf51f5");
  b_mont_ = fp_.to_mont(b);
  U256 three{};
  three.w[0] = 3;
  three_mont_ = fp_.to_mont(three);
  g_.x = gx;
  g_.y = gy;
}

P256::Jacobian P256::to_jacobian(const AffinePoint& p) const {
  if (p.infinity) return Jacobian{};  // z == 0
  return Jacobian{fp_.to_mont(p.x), fp_.to_mont(p.y), fp_.one_mont()};
}

AffinePoint P256::to_affine(const Jacobian& p) const {
  AffinePoint r;
  if (p.z.is_zero()) {
    r.infinity = true;
    return r;
  }
  const U256 zinv = fp_.inv(p.z);
  const U256 zinv2 = fp_.sqr(zinv);
  const U256 zinv3 = fp_.mul(zinv2, zinv);
  r.x = fp_.from_mont(fp_.mul(p.x, zinv2));
  r.y = fp_.from_mont(fp_.mul(p.y, zinv3));
  return r;
}

// Jacobian doubling for a = -3 (dbl-2001-b style, using
// M = 3(X-Z^2)(X+Z^2)).
P256::Jacobian P256::dbl(const Jacobian& p) const {
  if (p.z.is_zero() || p.y.is_zero()) return Jacobian{};
  const U256 z2 = fp_.sqr(p.z);
  const U256 t1 = fp_.sub(p.x, z2);
  const U256 t2 = fp_.add(p.x, z2);
  const U256 m = fp_.mul(three_mont_, fp_.mul(t1, t2));
  const U256 y2 = fp_.sqr(p.y);
  const U256 s = fp_.mul(fp_.add(fp_.add(p.x, p.x), fp_.add(p.x, p.x)), y2);  // 4*X*Y^2
  U256 x3 = fp_.sub(fp_.sqr(m), fp_.add(s, s));
  const U256 y4 = fp_.sqr(y2);
  const U256 eight_y4 =
      fp_.add(fp_.add(fp_.add(y4, y4), fp_.add(y4, y4)), fp_.add(fp_.add(y4, y4), fp_.add(y4, y4)));
  U256 y3 = fp_.sub(fp_.mul(m, fp_.sub(s, x3)), eight_y4);
  U256 z3 = fp_.mul(fp_.add(p.y, p.y), p.z);
  return Jacobian{x3, y3, z3};
}

// General Jacobian addition (add-2007-bl style simplifications omitted;
// straightforward formulas are fine at our scale).
P256::Jacobian P256::add(const Jacobian& p, const Jacobian& q) const {
  if (p.z.is_zero()) return q;
  if (q.z.is_zero()) return p;
  const U256 z1z1 = fp_.sqr(p.z);
  const U256 z2z2 = fp_.sqr(q.z);
  const U256 u1 = fp_.mul(p.x, z2z2);
  const U256 u2 = fp_.mul(q.x, z1z1);
  const U256 s1 = fp_.mul(p.y, fp_.mul(z2z2, q.z));
  const U256 s2 = fp_.mul(q.y, fp_.mul(z1z1, p.z));
  if (u1 == u2) {
    if (s1 == s2) return dbl(p);
    return Jacobian{};  // P + (-P) = infinity
  }
  const U256 h = fp_.sub(u2, u1);
  const U256 r = fp_.sub(s2, s1);
  const U256 h2 = fp_.sqr(h);
  const U256 h3 = fp_.mul(h2, h);
  const U256 u1h2 = fp_.mul(u1, h2);
  U256 x3 = fp_.sub(fp_.sub(fp_.sqr(r), h3), fp_.add(u1h2, u1h2));
  U256 y3 = fp_.sub(fp_.mul(r, fp_.sub(u1h2, x3)), fp_.mul(s1, h3));
  U256 z3 = fp_.mul(h, fp_.mul(p.z, q.z));
  return Jacobian{x3, y3, z3};
}

P256::Jacobian P256::mul_impl(const U256& k, const Jacobian& p) const {
  Jacobian acc{};  // infinity
  for (int i = 255; i >= 0; --i) {
    acc = dbl(acc);
    if (k.bit(static_cast<std::size_t>(i))) acc = add(acc, p);
  }
  return acc;
}

AffinePoint P256::mul_base(const U256& k) const { return mul(k, g_); }

AffinePoint P256::mul(const U256& k, const AffinePoint& p) const {
  return to_affine(mul_impl(k, to_jacobian(p)));
}

AffinePoint P256::mul_add(const U256& u1, const U256& u2, const AffinePoint& q) const {
  const Jacobian a = mul_impl(u1, to_jacobian(g_));
  const Jacobian b = mul_impl(u2, to_jacobian(q));
  return to_affine(add(a, b));
}

bool P256::on_curve(const AffinePoint& p) const {
  if (p.infinity) return false;
  // y^2 == x^3 - 3x + b (in the Montgomery domain).
  const U256 x = fp_.to_mont(p.x);
  const U256 y = fp_.to_mont(p.y);
  const U256 y2 = fp_.sqr(y);
  const U256 x3 = fp_.mul(fp_.sqr(x), x);
  const U256 rhs = fp_.add(fp_.sub(x3, fp_.mul(three_mont_, x)), b_mont_);
  return y2 == rhs;
}

Bytes P256::encode_point(const AffinePoint& p) const {
  if (p.infinity) throw std::invalid_argument("cannot encode point at infinity");
  Bytes out;
  out.reserve(65);
  out.push_back(0x04);
  append(out, p.x.to_bytes());
  append(out, p.y.to_bytes());
  return out;
}

std::optional<AffinePoint> P256::decode_point(ByteView data) const {
  if (data.size() != 65 || data[0] != 0x04) return std::nullopt;
  AffinePoint p;
  p.x = U256::from_bytes(data.subspan(1, 32));
  p.y = U256::from_bytes(data.subspan(33, 32));
  if (raw_cmp(p.x, fp_.modulus()) >= 0 || raw_cmp(p.y, fp_.modulus()) >= 0) return std::nullopt;
  if (!on_curve(p)) return std::nullopt;
  return p;
}

U256 P256::random_scalar(crypto::Drbg& rng) const {
  for (;;) {
    const Bytes b = rng.bytes(32);
    const U256 k = U256::from_bytes(b);
    if (!k.is_zero() && raw_cmp(k, n_) < 0) return k;
  }
}

}  // namespace mbtls::ec
