#include "ec/p256.h"

#include <cstring>
#include <stdexcept>
#include <vector>

#include "util/ct.h"

namespace mbtls::ec {

using u64 = std::uint64_t;
using u128 = unsigned __int128;

U256 U256::from_bytes(ByteView be32) {
  if (be32.size() != 32) throw std::invalid_argument("U256::from_bytes wants 32 bytes");
  U256 r;
  for (int limb = 0; limb < 4; ++limb)
    r.w[static_cast<std::size_t>(limb)] =
        load_be64(be32.data() + static_cast<std::size_t>((3 - limb) * 8));
  return r;
}

Bytes U256::to_bytes() const {
  Bytes out(32);
  for (int limb = 0; limb < 4; ++limb)
    store_be64(out.data() + static_cast<std::size_t>((3 - limb) * 8),
               w[static_cast<std::size_t>(limb)]);
  return out;
}

namespace {

// raw add: r = a + b, returns carry
inline u64 raw_add(U256& r, const U256& a, const U256& b) {
  u128 carry = 0;
  for (int i = 0; i < 4; ++i) {
    const u128 s = static_cast<u128>(a.w[i]) + b.w[i] + carry;
    r.w[i] = static_cast<u64>(s);
    carry = s >> 64;
  }
  return static_cast<u64>(carry);
}

// raw sub: r = a - b, returns borrow
inline u64 raw_sub(U256& r, const U256& a, const U256& b) {
  u128 borrow = 0;
  for (int i = 0; i < 4; ++i) {
    const u128 d = static_cast<u128>(a.w[i]) - b.w[i] - borrow;
    r.w[i] = static_cast<u64>(d);
    borrow = (d >> 64) & 1;
  }
  return static_cast<u64>(borrow);
}

inline int raw_cmp(const U256& a, const U256& b) {
  for (int i = 3; i >= 0; --i) {
    if (a.w[i] != b.w[i]) return a.w[i] < b.w[i] ? -1 : 1;
  }
  return 0;
}

// ------------------------------------------------- constant-time primitives
//
// Thin U256 adapters over the shared branch-free mask arithmetic in
// util/ct.h. Every helper returns / consumes an all-ones (0xff..ff) or
// all-zeros 64-bit mask so the compiler emits plain ALU ops, never a
// conditional jump.

/// All-ones when a == b, all-zeros otherwise.
inline u64 ct_eq_mask(u64 a, u64 b) { return ct::eq_mask(a, b); }

/// All-ones when the 256-bit value is zero.
inline u64 ct_u256_is_zero_mask(const U256& a) { return ct::all_zero_mask(a.w.data(), 4); }

/// r = mask ? a : r (mask must be all-ones or all-zeros).
inline void ct_cmov(U256& r, const U256& a, u64 mask) { ct::cmov(r.w.data(), a.w.data(), 4, mask); }

/// Window i (bits [4i, 4i+4)) of a scalar.
inline std::uint32_t window4(const U256& k, int i) {
  return static_cast<std::uint32_t>((k.w[static_cast<std::size_t>(i / 16)] >>
                                     (4 * (i % 16))) &
                                    0xf);
}

}  // namespace

Mont::Mont(const U256& modulus) : n_(modulus) {
  if ((n_.w[0] & 1) == 0) throw std::invalid_argument("Mont: modulus must be odd");
  u64 inv = 1;
  for (int i = 0; i < 6; ++i) inv *= 2 - n_.w[0] * inv;
  n0inv_ = ~inv + 1;

  // r2_ = 2^512 mod n, computed by repeated doubling of (2^256 mod n).
  // Start with r = 2^256 mod n: since n has the top bit set in practice
  // (both the P-256 prime and order do), 2^256 mod n can be found by
  // repeated conditional subtraction from a value built via doubling 1,
  // 256 times, reducing as we go.
  U256 r{};  // running value
  r.w[0] = 1;
  for (int i = 0; i < 512; ++i) {
    // r = 2r mod n
    U256 doubled;
    const u64 carry = raw_add(doubled, r, r);
    if (carry || raw_cmp(doubled, n_) >= 0) {
      U256 reduced;
      raw_sub(reduced, doubled, n_);
      r = reduced;
    } else {
      r = doubled;
    }
  }
  r2_ = r;

  U256 one{};
  one.w[0] = 1;
  one_ = mul(one, r2_);
}

U256 Mont::add(const U256& a, const U256& b) const {
  U256 r;
  const u64 carry = raw_add(r, a, b);
  if (carry || raw_cmp(r, n_) >= 0) {
    U256 s;
    raw_sub(s, r, n_);
    return s;
  }
  return r;
}

U256 Mont::sub(const U256& a, const U256& b) const {
  U256 r;
  const u64 borrow = raw_sub(r, a, b);
  if (borrow) {
    U256 s;
    raw_add(s, r, n_);
    return s;
  }
  return r;
}

U256 Mont::mul(const U256& a, const U256& b) const {
  // CIOS Montgomery multiplication, fixed 4 limbs.
  u64 t[6] = {0};
  for (int i = 0; i < 4; ++i) {
    // t += a[i] * b
    u64 carry = 0;
    for (int j = 0; j < 4; ++j) {
      const u128 cur = static_cast<u128>(a.w[i]) * b.w[j] + t[j] + carry;
      t[j] = static_cast<u64>(cur);
      carry = static_cast<u64>(cur >> 64);
    }
    u128 cur = static_cast<u128>(t[4]) + carry;
    t[4] = static_cast<u64>(cur);
    t[5] = static_cast<u64>(cur >> 64);

    const u64 m = t[0] * n0inv_;
    // t += m * n; t >>= 64
    u128 c0 = static_cast<u128>(m) * n_.w[0] + t[0];
    carry = static_cast<u64>(c0 >> 64);
    for (int j = 1; j < 4; ++j) {
      const u128 cur2 = static_cast<u128>(m) * n_.w[j] + t[j] + carry;
      t[j - 1] = static_cast<u64>(cur2);
      carry = static_cast<u64>(cur2 >> 64);
    }
    cur = static_cast<u128>(t[4]) + carry;
    t[3] = static_cast<u64>(cur);
    t[4] = t[5] + static_cast<u64>(cur >> 64);
    t[5] = 0;
  }
  U256 r{{t[0], t[1], t[2], t[3]}};
  if (t[4] != 0 || raw_cmp(r, n_) >= 0) {
    U256 s;
    raw_sub(s, r, n_);
    return s;
  }
  return r;
}

U256 Mont::from_mont(const U256& a) const {
  U256 one{};
  one.w[0] = 1;
  return mul(a, one);
}

U256 Mont::exp(const U256& base_mont, const U256& e) const {
  U256 acc = one_;
  bool started = false;
  for (int i = 255; i >= 0; --i) {
    if (started) acc = sqr(acc);
    if (e.bit(static_cast<std::size_t>(i))) {
      acc = started ? mul(acc, base_mont) : base_mont;
      started = true;
    }
  }
  return started ? acc : one_;
}

U256 Mont::inv(const U256& a_mont) const {
  // Fermat: a^(n-2) mod n.
  U256 e = n_;
  U256 two{};
  two.w[0] = 2;
  U256 nm2;
  raw_sub(nm2, e, two);
  return exp(a_mont, nm2);
}

U256 Mont::reduce_once(const U256& a) const {
  if (raw_cmp(a, n_) >= 0) {
    U256 r;
    raw_sub(r, a, n_);
    return r;
  }
  return a;
}

// ---------------------------------------------------- ct window selection

AffinePoint ct_select_window(std::span<const AffinePoint> table, std::uint32_t idx) {
  AffinePoint out;
  u64 matched = 0;
  for (std::size_t j = 0; j < table.size(); ++j) {
    const u64 m = ct_eq_mask(idx, static_cast<u64>(j + 1));
    ct_cmov(out.x, table[j].x, m);
    ct_cmov(out.y, table[j].y, m);
    matched |= m;
  }
  out.infinity = matched == 0;
  return out;
}

// ------------------------------------------------------------------ curve

namespace {
U256 from_hex64(const char* hex) {
  // 64 hex chars -> U256
  Bytes b(32);
  auto nib = [](char c) -> u64 {
    if (c >= '0' && c <= '9') return static_cast<u64>(c - '0');
    if (c >= 'a' && c <= 'f') return static_cast<u64>(c - 'a' + 10);
    return static_cast<u64>(c - 'A' + 10);
  };
  for (int i = 0; i < 32; ++i)
    b[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>((nib(hex[2 * i]) << 4) | nib(hex[2 * i + 1]));
  return U256::from_bytes(b);
}
}  // namespace

const P256& P256::instance() {
  static const P256 curve;
  return curve;
}

P256::P256()
    : fp_(from_hex64("ffffffff00000001000000000000000000000000ffffffffffffffffffffffff")),
      fn_(from_hex64("ffffffff00000000ffffffffffffffffbce6faada7179e84f3b9cac2fc632551")),
      n_(from_hex64("ffffffff00000000ffffffffffffffffbce6faada7179e84f3b9cac2fc632551")) {
  const U256 b = from_hex64("5ac635d8aa3a93e7b3ebbd55769886bc651d06b0cc53b0f63bce3c3e27d2604b");
  const U256 gx = from_hex64("6b17d1f2e12c4247f8bce6e563a440f277037d812deb33a0f4a13945d898c296");
  const U256 gy = from_hex64("4fe342e2fe1a7f9b8ee7eb4a7c0f9e162bce33576b315ececbb6406837bf51f5");
  b_mont_ = fp_.to_mont(b);
  U256 three{};
  three.w[0] = 3;
  three_mont_ = fp_.to_mont(three);
  g_.x = gx;
  g_.y = gy;

  // Precompute the fixed-base comb table: row i holds {1..15} * 16^i * G.
  // With it, mul_base needs zero doublings — one mixed addition per window.
  // All entries derive from the public generator; one-time cost at first
  // P256::instance() is ~1.2k Jacobian ops plus a single batched inversion.
  std::vector<Jacobian> rows(static_cast<std::size_t>(kWindows) * kTableSize);
  Jacobian cur = to_jacobian(g_);
  for (int i = 0; i < kWindows; ++i) {
    Jacobian* row = rows.data() + static_cast<std::size_t>(i) * kTableSize;
    row[0] = cur;
    for (int j = 1; j < kTableSize; ++j) row[j] = add(row[j - 1], cur);
    if (i + 1 < kWindows) {
      for (int d = 0; d < kWindowBits; ++d) cur = dbl(cur);
    }
  }
  std::vector<AffineMont> flat(rows.size());
  batch_to_affine_mont(rows.data(), flat.data(), rows.size());
  for (int i = 0; i < kWindows; ++i)
    for (int j = 0; j < kTableSize; ++j)
      base_table_[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
          flat[static_cast<std::size_t>(i) * kTableSize + static_cast<std::size_t>(j)];
}

P256::Jacobian P256::to_jacobian(const AffinePoint& p) const {
  if (p.infinity) return Jacobian{};  // z == 0
  return Jacobian{fp_.to_mont(p.x), fp_.to_mont(p.y), fp_.one_mont()};
}

AffinePoint P256::to_affine(const Jacobian& p) const {
  AffinePoint r;
  if (p.z.is_zero()) {
    r.infinity = true;
    return r;
  }
  const U256 zinv = fp_.inv(p.z);
  const U256 zinv2 = fp_.sqr(zinv);
  const U256 zinv3 = fp_.mul(zinv2, zinv);
  r.x = fp_.from_mont(fp_.mul(p.x, zinv2));
  r.y = fp_.from_mont(fp_.mul(p.y, zinv3));
  return r;
}

// Jacobian doubling for a = -3 (dbl-2001-b style, using
// M = 3(X-Z^2)(X+Z^2)). Branch-free: with Z = 0 the formulas yield Z3 = 0,
// so infinity stays infinity without a secret-dependent early exit (the
// windowed ladders double an accumulator that is infinity while the secret
// scalar's leading windows are zero).
P256::Jacobian P256::dbl(const Jacobian& p) const {
  const U256 z2 = fp_.sqr(p.z);
  const U256 t1 = fp_.sub(p.x, z2);
  const U256 t2 = fp_.add(p.x, z2);
  const U256 m = fp_.mul(three_mont_, fp_.mul(t1, t2));
  const U256 y2 = fp_.sqr(p.y);
  const U256 s = fp_.mul(fp_.add(fp_.add(p.x, p.x), fp_.add(p.x, p.x)), y2);  // 4*X*Y^2
  U256 x3 = fp_.sub(fp_.sqr(m), fp_.add(s, s));
  const U256 y4 = fp_.sqr(y2);
  const U256 eight_y4 =
      fp_.add(fp_.add(fp_.add(y4, y4), fp_.add(y4, y4)), fp_.add(fp_.add(y4, y4), fp_.add(y4, y4)));
  U256 y3 = fp_.sub(fp_.mul(m, fp_.sub(s, x3)), eight_y4);
  U256 z3 = fp_.mul(fp_.add(p.y, p.y), p.z);
  return Jacobian{x3, y3, z3};
}

// General Jacobian addition (add-2007-bl style simplifications omitted;
// straightforward formulas are fine at our scale). Used on public data only
// (reference ladder, table precomputation) — branches are acceptable here.
P256::Jacobian P256::add(const Jacobian& p, const Jacobian& q) const {
  if (p.z.is_zero()) return q;
  if (q.z.is_zero()) return p;
  const U256 z1z1 = fp_.sqr(p.z);
  const U256 z2z2 = fp_.sqr(q.z);
  const U256 u1 = fp_.mul(p.x, z2z2);
  const U256 u2 = fp_.mul(q.x, z1z1);
  const U256 s1 = fp_.mul(p.y, fp_.mul(z2z2, q.z));
  const U256 s2 = fp_.mul(q.y, fp_.mul(z1z1, p.z));
  if (u1 == u2) {
    if (s1 == s2) return dbl(p);
    return Jacobian{};  // P + (-P) = infinity
  }
  const U256 h = fp_.sub(u2, u1);
  const U256 r = fp_.sub(s2, s1);
  const U256 h2 = fp_.sqr(h);
  const U256 h3 = fp_.mul(h2, h);
  const U256 u1h2 = fp_.mul(u1, h2);
  U256 x3 = fp_.sub(fp_.sub(fp_.sqr(r), h3), fp_.add(u1h2, u1h2));
  U256 y3 = fp_.sub(fp_.mul(r, fp_.sub(u1h2, x3)), fp_.mul(s1, h3));
  U256 z3 = fp_.mul(h, fp_.mul(p.z, q.z));
  return Jacobian{x3, y3, z3};
}

// Mixed addition p + q with q affine (Z2 = 1): madd-2007-bl, ~3 field muls
// cheaper than the general add. Variable-time (public scalars only).
P256::Jacobian P256::add_mixed(const Jacobian& p, const AffineMont& q) const {
  if (p.z.is_zero()) return Jacobian{q.x, q.y, fp_.one_mont()};
  const U256 z1z1 = fp_.sqr(p.z);
  const U256 u2 = fp_.mul(q.x, z1z1);
  const U256 s2 = fp_.mul(q.y, fp_.mul(z1z1, p.z));
  const U256 h = fp_.sub(u2, p.x);
  const U256 r = fp_.sub(s2, p.y);
  if (h.is_zero()) {
    if (r.is_zero()) return dbl(p);
    return Jacobian{};  // p + (-p)
  }
  const U256 h2 = fp_.sqr(h);
  const U256 h3 = fp_.mul(h2, h);
  const U256 v = fp_.mul(p.x, h2);
  U256 x3 = fp_.sub(fp_.sub(fp_.sqr(r), h3), fp_.add(v, v));
  U256 y3 = fp_.sub(fp_.mul(r, fp_.sub(v, x3)), fp_.mul(p.y, h3));
  U256 z3 = fp_.mul(p.z, h);
  return Jacobian{x3, y3, z3};
}

// Constant-time mixed addition for secret-scalar ladders. The general-case
// formulas run unconditionally; the two degenerate cases (accumulator at
// infinity, window digit 0) are resolved afterwards with masked moves, so
// control flow never depends on the secret window value.
//
// The p == ±q cases cannot arise when the scalar is in [0, n): the
// accumulator always holds (prefix of k) * P with the prefix strictly
// smaller than the table entry's multiple, so their multiples of P can only
// collide mod n for k >= n. A plain branch guards that unreachable case to
// keep out-of-range inputs well-defined (the differential tests exercise it).
P256::Jacobian P256::add_mixed_ct(const Jacobian& p, const AffineMont& q,
                                  std::uint64_t valid_mask) const {
  const U256 z1z1 = fp_.sqr(p.z);
  const U256 u2 = fp_.mul(q.x, z1z1);
  const U256 s2 = fp_.mul(q.y, fp_.mul(z1z1, p.z));
  const U256 h = fp_.sub(u2, p.x);
  const U256 r = fp_.sub(s2, p.y);
  const U256 h2 = fp_.sqr(h);
  const U256 h3 = fp_.mul(h2, h);
  const U256 v = fp_.mul(p.x, h2);
  Jacobian out;
  out.x = fp_.sub(fp_.sub(fp_.sqr(r), h3), fp_.add(v, v));
  out.y = fp_.sub(fp_.mul(r, fp_.sub(v, out.x)), fp_.mul(p.y, h3));
  out.z = fp_.mul(p.z, h);

  const u64 p_inf = ct_u256_is_zero_mask(p.z);
  // p at infinity: the sum is q lifted to Jacobian.
  const Jacobian lifted{q.x, q.y, fp_.one_mont()};
  ct_cmov(out.x, lifted.x, p_inf & valid_mask);
  ct_cmov(out.y, lifted.y, p_inf & valid_mask);
  ct_cmov(out.z, lifted.z, p_inf & valid_mask);
  // q absent (window digit 0): keep p.
  ct_cmov(out.x, p.x, ~valid_mask);
  ct_cmov(out.y, p.y, ~valid_mask);
  ct_cmov(out.z, p.z, ~valid_mask);

  if ((ct_u256_is_zero_mask(h) & ct_u256_is_zero_mask(r) & ~p_inf & valid_mask) != 0) {
    return dbl(p);  // unreachable for scalars < n; see comment above
  }
  return out;
}

namespace {
/// Constant-time scan over a window table of Montgomery-affine entries.
/// Returns the all-ones mask when idx selected a real entry (idx in [1, n]).
template <typename Entry>
u64 ct_select_entry(const Entry* table, int n, std::uint32_t idx, Entry& out) {
  u64 matched = 0;
  for (int j = 0; j < n; ++j) {
    const u64 m = ct_eq_mask(idx, static_cast<u64>(j + 1));
    ct_cmov(out.x, table[j].x, m);
    ct_cmov(out.y, table[j].y, m);
    matched |= m;
  }
  return matched;
}
}  // namespace

void P256::batch_to_affine_mont(const Jacobian* in, AffineMont* out, std::size_t count) const {
  // Montgomery's trick: one field inversion for the whole batch. Callers
  // guarantee no input is at infinity (window tables never contain it).
  std::vector<U256> prefix(count);
  U256 acc = fp_.one_mont();
  for (std::size_t i = 0; i < count; ++i) {
    acc = fp_.mul(acc, in[i].z);
    prefix[i] = acc;
  }
  U256 inv_tail = fp_.inv(acc);  // (z0*...*z_{n-1})^-1
  for (std::size_t i = count; i-- > 0;) {
    const U256 zinv = i == 0 ? inv_tail : fp_.mul(inv_tail, prefix[i - 1]);
    inv_tail = fp_.mul(inv_tail, in[i].z);
    const U256 zinv2 = fp_.sqr(zinv);
    out[i].x = fp_.mul(in[i].x, zinv2);
    out[i].y = fp_.mul(in[i].y, fp_.mul(zinv2, zinv));
  }
}

void P256::build_window_table(const AffinePoint& p, AffineMont out[kTableSize]) const {
  Jacobian jt[kTableSize];
  jt[0] = to_jacobian(p);
  for (int j = 1; j < kTableSize; ++j) jt[j] = add(jt[j - 1], jt[0]);
  batch_to_affine_mont(jt, out, kTableSize);
}

P256::Jacobian P256::mul_impl(const U256& k, const Jacobian& p) const {
  Jacobian acc{};  // infinity
  for (int i = 255; i >= 0; --i) {
    acc = dbl(acc);
    if (k.bit(static_cast<std::size_t>(i))) acc = add(acc, p);
  }
  return acc;
}

AffinePoint P256::mul_base_reference(const U256& k) const { return mul_reference(k, g_); }

AffinePoint P256::mul_reference(const U256& k, const AffinePoint& p) const {
  return to_affine(mul_impl(k, to_jacobian(p)));
}

AffinePoint P256::mul_add_reference(const U256& u1, const U256& u2, const AffinePoint& q) const {
  const Jacobian a = mul_impl(u1, to_jacobian(g_));
  const Jacobian b = mul_impl(u2, to_jacobian(q));
  return to_affine(add(a, b));
}

AffinePoint P256::mul_base(const U256& k) const {
#ifdef MBTLS_REFERENCE_CRYPTO
  return mul_base_reference(k);
#else
  // Fixed-base comb: one constant-time-selected mixed addition per 4-bit
  // window, no doublings at all (the table rows absorb the 16^i factors).
  Jacobian acc{};  // infinity
  for (int i = 0; i < kWindows; ++i) {
    const std::uint32_t d = window4(k, i);
    AffineMont sel{};
    const u64 valid =
        ct_select_entry(base_table_[static_cast<std::size_t>(i)].data(), kTableSize, d, sel);
    acc = add_mixed_ct(acc, sel, valid);
  }
  return to_affine(acc);
#endif
}

AffinePoint P256::mul(const U256& k, const AffinePoint& p) const {
#ifdef MBTLS_REFERENCE_CRYPTO
  return mul_reference(k, p);
#else
  // Fixed-window (w=4) left-to-right ladder: 4 doublings + one
  // constant-time-selected mixed addition per window. The per-call table is
  // derived from the (public) input point; only the selection index is
  // secret, and it never steers a branch or a memory address.
  AffineMont table[kTableSize];
  build_window_table(p, table);
  Jacobian acc{};  // infinity
  for (int i = kWindows - 1; i >= 0; --i) {
    if (i != kWindows - 1) {
      for (int d = 0; d < kWindowBits; ++d) acc = dbl(acc);
    }
    const std::uint32_t d = window4(k, i);
    AffineMont sel{};
    const u64 valid = ct_select_entry(table, kTableSize, d, sel);
    acc = add_mixed_ct(acc, sel, valid);
  }
  return to_affine(acc);
#endif
}

AffinePoint P256::mul_add(const U256& u1, const U256& u2, const AffinePoint& q) const {
#ifdef MBTLS_REFERENCE_CRYPTO
  return mul_add_reference(u1, u2, q);
#else
  // Shamir/Strauss interleaving: both scalars share one chain of doublings,
  // with up to two mixed additions per window. ECDSA verification inputs are
  // public, so plain indexed table lookups are fine here.
  AffineMont table_q[kTableSize];
  build_window_table(q, table_q);
  const auto& table_g = base_table_[0];  // row 0 holds {1..15} * G
  Jacobian acc{};                        // infinity
  for (int i = kWindows - 1; i >= 0; --i) {
    if (i != kWindows - 1) {
      for (int d = 0; d < kWindowBits; ++d) acc = dbl(acc);
    }
    const std::uint32_t d1 = window4(u1, i);
    if (d1 != 0) acc = add_mixed(acc, table_g[d1 - 1]);
    const std::uint32_t d2 = window4(u2, i);
    if (d2 != 0) acc = add_mixed(acc, table_q[d2 - 1]);
  }
  return to_affine(acc);
#endif
}

bool P256::on_curve(const AffinePoint& p) const {
  if (p.infinity) return false;
  // y^2 == x^3 - 3x + b (in the Montgomery domain).
  const U256 x = fp_.to_mont(p.x);
  const U256 y = fp_.to_mont(p.y);
  const U256 y2 = fp_.sqr(y);
  const U256 x3 = fp_.mul(fp_.sqr(x), x);
  const U256 rhs = fp_.add(fp_.sub(x3, fp_.mul(three_mont_, x)), b_mont_);
  return y2 == rhs;
}

Bytes P256::encode_point(const AffinePoint& p) const {
  if (p.infinity) throw std::invalid_argument("cannot encode point at infinity");
  Bytes out;
  out.reserve(65);
  out.push_back(0x04);
  append(out, p.x.to_bytes());
  append(out, p.y.to_bytes());
  return out;
}

std::optional<AffinePoint> P256::decode_point(ByteView data) const {
  if (data.size() != 65 || data[0] != 0x04) return std::nullopt;
  AffinePoint p;
  p.x = U256::from_bytes(data.subspan(1, 32));
  p.y = U256::from_bytes(data.subspan(33, 32));
  if (raw_cmp(p.x, fp_.modulus()) >= 0 || raw_cmp(p.y, fp_.modulus()) >= 0) return std::nullopt;
  if (!on_curve(p)) return std::nullopt;
  return p;
}

U256 P256::random_scalar(crypto::Drbg& rng) const {
  for (;;) {
    const Bytes b = rng.bytes(32);
    const U256 k = U256::from_bytes(b);
    if (!k.is_zero() && raw_cmp(k, n_) < 0) return k;
  }
}

}  // namespace mbtls::ec
