// ECDSA over P-256 (FIPS 186-4). Signatures are encoded as raw r || s
// (64 bytes); the x509 layer wraps them in DER when placing them in
// certificates.
#pragma once

#include "crypto/drbg.h"
#include "crypto/sha2.h"
#include "ec/p256.h"
#include "util/bytes.h"

namespace mbtls::ec {

struct EcdsaKeyPair {
  U256 private_key;   // d in [1, n-1]
  AffinePoint public_key;  // Q = d*G

  Bytes public_bytes() const { return P256::instance().encode_point(public_key); }
};

/// Generate a fresh key pair from `rng`.
EcdsaKeyPair ecdsa_generate(crypto::Drbg& rng);

/// Sign `message` (hashed with `algo` internally). Returns r || s (64 bytes).
Bytes ecdsa_sign(const EcdsaKeyPair& key, crypto::HashAlgo algo, ByteView message,
                 crypto::Drbg& rng);

/// Verify an r || s signature over `message`.
bool ecdsa_verify(const AffinePoint& public_key, crypto::HashAlgo algo, ByteView message,
                  ByteView signature);

}  // namespace mbtls::ec
