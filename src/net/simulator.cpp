#include "net/simulator.h"

namespace mbtls::net {

void Simulator::schedule(Time delay, std::function<void()> fn) {
  queue_.push(Event{now_ + delay, next_seq_++, std::move(fn)});
}

RunStatus Simulator::run(std::size_t max_events) {
  std::size_t fired = 0;
  while (!queue_.empty()) {
    if (fired >= max_events) return RunStatus::kBudgetExhausted;
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.at;
    ++events_processed_;
    ++fired;
    ev.fn();
  }
  return RunStatus::kDrained;
}

RunStatus Simulator::run_until(Time deadline, std::size_t max_events) {
  std::size_t fired = 0;
  while (!queue_.empty() && queue_.top().at <= deadline) {
    if (fired >= max_events) return RunStatus::kBudgetExhausted;
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.at;
    ++events_processed_;
    ++fired;
    ev.fn();
  }
  now_ = deadline;
  return queue_.empty() ? RunStatus::kDrained : RunStatus::kDeadlineReached;
}

}  // namespace mbtls::net
