#include "net/simulator.h"

#include <stdexcept>

namespace mbtls::net {

void Simulator::schedule(Time delay, std::function<void()> fn) {
  queue_.push(Event{now_ + delay, next_seq_++, std::move(fn)});
}

void Simulator::run(std::size_t max_events) {
  while (!queue_.empty()) {
    if (events_processed_ >= max_events)
      throw std::runtime_error("Simulator: event budget exhausted (runaway?)");
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.at;
    ++events_processed_;
    ev.fn();
  }
}

void Simulator::run_until(Time deadline) {
  while (!queue_.empty() && queue_.top().at <= deadline) {
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.at;
    ++events_processed_;
    ev.fn();
  }
  now_ = deadline;
}

}  // namespace mbtls::net
