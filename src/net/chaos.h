// Deterministic fault injection for the simulated network ("chaos taps").
//
// Each factory returns a LinkTap implementing one hostile-path failure mode;
// taps compose by installing several on the same link (they run in install
// order). Every randomized tap draws from its own DRBG stream, so a chaos
// run is reproducible bit-for-bit from its seed: same seed, same faults,
// same outcome. That is what lets tests/test_chaos.cpp assert the repo-wide
// robustness invariant — every mbTLS session under chaos either completes
// with intact data or fails with an explicit error in bounded virtual time.
#pragma once

#include "net/network.h"

namespace mbtls::net {

class ChaosTap {
 public:
  /// XOR one random payload byte with a random nonzero mask, with
  /// probability `p` per data-bearing packet. Headers stay intact (the
  /// simplified TCP has no checksum, and corrupting seq/ack would model a
  /// fault real checksums catch); this is the corruption that slips past
  /// TCP and that the record-layer AEAD must be the arbiter of.
  static LinkTap corrupt_byte(crypto::Drbg rng, double p);

  /// Cut the payload to a random shorter length with probability `p` per
  /// data-bearing packet. TCP sees a short segment, leaves a sequence gap,
  /// and recovers via retransmission.
  static LinkTap truncate(crypto::Drbg rng, double p);

  /// With probability `p`, deliver a second copy of the packet to the far
  /// end of the link after a small random extra delay. Receivers must
  /// de-duplicate by sequence number.
  static LinkTap duplicate(Network& net, NodeId a, NodeId b, crypto::Drbg rng, double p);

  /// Hold packets (per direction); once `window` are held — or `max_hold`
  /// of virtual time passes — release the batch in a DRBG-shuffled order.
  static LinkTap reorder_within_window(Network& net, NodeId a, NodeId b, crypto::Drbg rng,
                                       std::size_t window, Time max_hold = 50 * kMillisecond);

  /// Queue every packet crossing the link during the stall window, which
  /// opens `start_after` after installation and lasts `duration`; the
  /// backlog is released in order when the window closes. Models a hop that
  /// freezes (GC pause, failover) and then comes back.
  static LinkTap stall_for_duration(Network& net, NodeId a, NodeId b, Time start_after,
                                    Time duration);

  /// Pass the first `n` packets (both directions combined), then drop
  /// everything forever — a hop that silently dies mid-session.
  static LinkTap blackhole_after(std::size_t n);
};

}  // namespace mbtls::net
