// Time and timer scheduling, abstracted over backends.
//
// The transport seam (net/transport.h) lets the sans-IO engines run either on
// the discrete-event simulator (virtual microseconds, deterministic) or on the
// posix epoll loop (monotonic real microseconds). Everything above the seam —
// handshake deadlines, join deadlines, retransmit backoff, watchdogs — talks
// to a `Scheduler` and therefore cannot tell which clock is underneath: the
// same `schedule(timeout, fn)` call arms a simulator event or a timer-wheel
// slot.
#pragma once

#include <cstdint>
#include <functional>

namespace mbtls::net {

using Time = std::uint64_t;  // microseconds (virtual or monotonic real time)

constexpr Time kMicrosecond = 1;
constexpr Time kMillisecond = 1000;
constexpr Time kSecond = 1000 * 1000;

/// Why a run() call returned. Callers that care about liveness (the chaos
/// harness, negative-path tests) must distinguish a drained queue from the
/// runaway guard tripping; callers that don't may ignore the result.
enum class RunStatus {
  kDrained,          // event queue is empty (sim) / no open streams or timers (posix)
  kDeadlineReached,  // run_until: clock advanced to the deadline
  kBudgetExhausted,  // max_events fired with work still queued (runaway?)
};

/// A monotonic clock. Virtual time on the simulator, CLOCK_MONOTONIC
/// microseconds since loop construction on the posix backend — both start
/// near zero and never go backwards.
class Clock {
 public:
  virtual ~Clock() = default;
  virtual Time now() const = 0;
};

/// A clock that can also run callbacks later. `fn` runs `delay` microseconds
/// from now, on the thread driving the owning event loop; callbacks scheduled
/// for the same instant run in scheduling order (FIFO).
///
/// There is deliberately no cancellation: a callback that may outlive the
/// object it touches must carry its own liveness guard (see the weak-token
/// pattern in mbtls/transport.h) — that keeps both backends' timer stores
/// trivial and the semantics identical.
class Scheduler : public Clock {
 public:
  virtual void schedule(Time delay, std::function<void()> fn) = 0;
};

}  // namespace mbtls::net
