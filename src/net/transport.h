// The transport seam: backend-agnostic byte-stream and dialing interfaces.
//
// The sans-IO mbTLS engines never perform I/O themselves; the bindings in
// mbtls/transport.h glue them to a `Stream` and arm deadlines on a
// `Scheduler`. Two backends implement this seam:
//
//   * the discrete-event simulator (net::Host + net::Socket over the
//     simulated network, virtual time) — deterministic, used by every
//     experiment and the chaos suite;
//   * the posix epoll loop (net::posix::EpollLoop + net::posix::TcpStream,
//     non-blocking real TCP over the kernel stack, monotonic time) — the
//     production path.
//
// tests/test_transport_conformance.cpp runs the same handshake / data /
// teardown / deadline scenarios against both, which is what keeps the seam
// honest.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "net/clock.h"
#include "util/bytes.h"

namespace mbtls::net {

using NodeId = std::uint32_t;  // simulator addressing
using Port = std::uint16_t;

/// Why a stream reached closed(). Anything but kNone is an abnormal teardown
/// the application must treat as an error, not a clean shutdown.
enum class SocketError : std::uint8_t {
  kNone,                 // still open, or clean FIN teardown
  kPeerReset,            // peer aborted (RST / ECONNRESET / ECONNREFUSED)
  kRetransmitExhausted,  // peer unreachable: backoff rounds / connect timed out
};

/// A reliable byte-stream endpoint. Obtained from Transport::dial or a
/// listener accept callback; owned by the backend, so pointers stay valid for
/// the backend's lifetime (a closed stream is inert, not freed).
///
/// Callback contract, identical across backends:
///  * on_connect fires once when an outbound dial completes (never for
///    accepted streams — the accept handler already runs post-establishment
///    on posix, pre-establishment on the simulator where it fires nothing);
///  * on_data fires per delivered in-order chunk;
///  * on_error (abnormal cause) fires at most once, before on_close;
///  * on_close fires exactly once when the stream reaches closed();
///  * on_writable fires when backend write backpressure clears — only the
///    posix backend ever fires it (the simulator's send() never backpressures)
///    but bindings must drain their pending output on it to be correct over
///    real sockets.
class Stream {
 public:
  virtual ~Stream() = default;

  /// Queue bytes for transmission. Illegal once !writable() from teardown
  /// (closed or FIN queued); legal while still connecting (bytes are sent on
  /// establishment).
  virtual void send(ByteView data) = 0;

  /// Half-close: FIN after all queued data; the stream stays readable until
  /// the peer closes.
  virtual void close() = 0;

  /// Abort: RST and drop all state.
  virtual void reset() = 0;

  virtual bool established() const = 0;
  virtual bool closed() const = 0;

  /// send() is currently legal *and advisable*: not closed, no FIN queued,
  /// and (posix) the unwritten backlog is below the backpressure high-water
  /// mark. Callers that see false must buffer and retry on on_writable /
  /// on_connect rather than drop — see MiddleboxBinding::flush.
  virtual bool writable() const = 0;

  /// Terminal error cause; valid once closed() (kNone = clean teardown).
  virtual SocketError error() const = 0;

  // Application callbacks (see the contract above).
  std::function<void()> on_connect;
  std::function<void(ByteView)> on_data;
  std::function<void()> on_close;
  std::function<void(SocketError)> on_error;
  std::function<void()> on_writable;
};

/// Where to dial. The simulator backend uses {node, port}; the posix backend
/// uses {address, port} (e.g. "127.0.0.1"). Backends ignore the fields that
/// are not theirs, so one Endpoint can describe both.
struct Endpoint {
  NodeId node = 0;
  Port port = 0;
  std::string address;
};

using StreamHandler = std::function<void(Stream&)>;

/// A transport backend: dials and accepts streams, and owns the scheduler
/// whose clock paces every deadline above it. Implemented by net::Host
/// (simulator) and net::posix::EpollLoop (real sockets).
class Transport {
 public:
  virtual ~Transport() = default;

  /// Open a connection; returns immediately, on_connect fires when the
  /// handshake completes.
  virtual Stream& dial(const Endpoint& remote) = 0;

  /// Accept connections on `port` (0 = backend-chosen ephemeral port on
  /// posix). Returns the actually bound port. The handler runs before any
  /// data is delivered, so it can wire callbacks.
  virtual Port listen_stream(Port port, StreamHandler on_accept) = 0;

  virtual Scheduler& scheduler() = 0;
};

}  // namespace mbtls::net
