// Simulated network: nodes, point-to-point links (propagation delay +
// serialization rate + loss), shortest-path routing, and link taps.
//
// Link taps are the adversary/filter hook: a tap sees every packet crossing
// a link and can pass, modify, drop, or inject packets. The Table-1 attack
// harness and the Table-2 on-path filter models are implemented as taps.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "crypto/drbg.h"
#include "net/simulator.h"
#include "net/transport.h"
#include "util/bytes.h"
#include "util/trace.h"

namespace mbtls::net {

/// TCP segment flags.
struct TcpFlags {
  bool syn = false;
  bool ack = false;
  bool fin = false;
  bool rst = false;
};

/// The only packet type in the simulation is a TCP segment; the experiments
/// need nothing else.
struct Packet {
  NodeId src = 0;
  NodeId dst = 0;
  Port src_port = 0;
  Port dst_port = 0;
  TcpFlags flags;
  std::uint64_t seq = 0;
  std::uint64_t ack = 0;
  Bytes payload;

  std::size_t wire_size() const { return payload.size() + 54; }  // headers
};

struct LinkConfig {
  Time propagation = 0;         // one-way delay
  double bandwidth_bps = 0;     // 0 = infinite
  double loss_rate = 0;         // independent per-packet loss probability
};

/// Action a tap takes on a packet.
enum class TapVerdict { kPass, kDrop };

/// Tap callback: may mutate the packet in place; return kDrop to discard.
/// `a_to_b` tells the direction relative to how the link was added.
using LinkTap = std::function<TapVerdict(Packet& packet, bool a_to_b)>;

class Network {
 public:
  explicit Network(Simulator& sim, std::uint64_t loss_seed = 0);

  NodeId add_node(std::string name);
  const std::string& node_name(NodeId id) const { return names_.at(id); }
  std::size_t node_count() const { return names_.size(); }

  /// Add a bidirectional link.
  void add_link(NodeId a, NodeId b, const LinkConfig& config);

  /// Install a tap on the (a, b) link. Multiple taps run in install order.
  void add_tap(NodeId a, NodeId b, LinkTap tap);

  /// Inject a packet as if it originated at `at_node` (used by attackers to
  /// forge traffic). It is routed normally toward packet.dst.
  void inject(NodeId at_node, Packet packet);

  /// Deliver a packet from its src to its dst across the routed path.
  void send(Packet packet);

  /// Handler invoked when a packet reaches its destination node.
  using DeliveryHandler = std::function<void(const Packet&)>;
  void set_delivery_handler(NodeId node, DeliveryHandler handler);

  /// One-way propagation delay along the routed path (for test assertions).
  Time path_delay(NodeId a, NodeId b) const;

  Simulator& simulator() { return sim_; }

  /// Attach a trace sink: segment send/recv, retransmits, tap verdicts, and
  /// random losses are emitted under "net:<node>" actors. Null (the default)
  /// keeps the forwarding path branch-only. Timestamps come from whatever
  /// clock the sink stamps with — harnesses install the simulator's.
  void set_trace(trace::Sink* sink) { trace_sink_ = sink; }
  bool trace_on() const { return trace_sink_ != nullptr; }
  trace::Emitter node_trace(NodeId id) const {
    return trace::Emitter(trace_sink_, "net:" + names_.at(id));
  }

 private:
  struct Link {
    NodeId a, b;
    LinkConfig config;
    Time next_free_a_to_b = 0;  // serialization bookkeeping per direction
    Time next_free_b_to_a = 0;
    std::vector<LinkTap> taps;
  };

  void forward(Packet packet, NodeId at);
  Link* find_link(NodeId a, NodeId b);
  void recompute_routes();

  Simulator& sim_;
  std::vector<std::string> names_;
  std::vector<std::unique_ptr<Link>> links_;
  std::vector<std::vector<Link*>> adjacency_;       // per node
  std::vector<std::vector<NodeId>> next_hop_;       // routing table
  std::vector<DeliveryHandler> handlers_;
  crypto::Drbg loss_rng_;
  trace::Sink* trace_sink_ = nullptr;
};

}  // namespace mbtls::net
