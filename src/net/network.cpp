#include "net/network.h"

#include <limits>
#include <queue>
#include <stdexcept>

namespace mbtls::net {

Network::Network(Simulator& sim, std::uint64_t loss_seed)
    : sim_(sim), loss_rng_("net-loss", loss_seed) {}

NodeId Network::add_node(std::string name) {
  names_.push_back(std::move(name));
  adjacency_.emplace_back();
  handlers_.emplace_back();
  next_hop_.clear();  // invalidate routes
  return static_cast<NodeId>(names_.size() - 1);
}

void Network::add_link(NodeId a, NodeId b, const LinkConfig& config) {
  if (a >= names_.size() || b >= names_.size() || a == b)
    throw std::invalid_argument("add_link: bad endpoints");
  links_.push_back(std::make_unique<Link>(Link{a, b, config, 0, 0, {}}));
  adjacency_[a].push_back(links_.back().get());
  adjacency_[b].push_back(links_.back().get());
  next_hop_.clear();
}

Network::Link* Network::find_link(NodeId a, NodeId b) {
  for (auto& l : links_) {
    if ((l->a == a && l->b == b) || (l->a == b && l->b == a)) return l.get();
  }
  return nullptr;
}

void Network::add_tap(NodeId a, NodeId b, LinkTap tap) {
  Link* link = find_link(a, b);
  if (!link) throw std::invalid_argument("add_tap: no such link");
  link->taps.push_back(std::move(tap));
}

void Network::set_delivery_handler(NodeId node, DeliveryHandler handler) {
  handlers_.at(node) = std::move(handler);
}

void Network::recompute_routes() {
  const std::size_t n = names_.size();
  next_hop_.assign(n, std::vector<NodeId>(n, std::numeric_limits<NodeId>::max()));
  // Dijkstra from every source over propagation delay.
  for (NodeId src = 0; src < n; ++src) {
    std::vector<Time> dist(n, std::numeric_limits<Time>::max());
    std::vector<NodeId> prev(n, std::numeric_limits<NodeId>::max());
    using Entry = std::pair<Time, NodeId>;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> pq;
    dist[src] = 0;
    pq.push({0, src});
    while (!pq.empty()) {
      const auto [d, u] = pq.top();
      pq.pop();
      if (d > dist[u]) continue;
      for (const Link* l : adjacency_[u]) {
        const NodeId v = l->a == u ? l->b : l->a;
        const Time nd = d + l->config.propagation + 1;  // +1 biases to fewer hops
        if (nd < dist[v]) {
          dist[v] = nd;
          prev[v] = u;
          pq.push({nd, v});
        }
      }
    }
    for (NodeId dst = 0; dst < n; ++dst) {
      if (dst == src || prev[dst] == std::numeric_limits<NodeId>::max()) continue;
      // Walk back from dst to find the first hop out of src.
      NodeId hop = dst;
      while (prev[hop] != src) hop = prev[hop];
      next_hop_[src][dst] = hop;
    }
  }
}

void Network::send(Packet packet) {
  const NodeId src = packet.src;
  forward(std::move(packet), src);
}

void Network::inject(NodeId at_node, Packet packet) { forward(std::move(packet), at_node); }

void Network::forward(Packet packet, NodeId at) {
  if (next_hop_.empty()) recompute_routes();
  if (packet.dst >= names_.size()) throw std::invalid_argument("forward: bad destination");
  if (at == packet.dst) {
    if (handlers_[at]) {
      // Deliver through the event queue so handlers never re-enter senders.
      auto& handler = handlers_[at];
      sim_.schedule(0, [&handler, p = std::move(packet)]() mutable { handler(p); });
    }
    return;
  }
  const NodeId hop = next_hop_[at][packet.dst];
  if (hop == std::numeric_limits<NodeId>::max()) return;  // unroutable: drop
  Link* link = find_link(at, hop);
  const bool a_to_b = link->a == at;

  // Taps (filters / attackers) on this link. When tracing, snapshot the
  // mutable fields so a "chaos tap fired" event distinguishes a mutation
  // from a pass-through (the copy is paid only with a sink attached).
  if (!link->taps.empty() && trace_sink_ != nullptr) {
    const Bytes before_payload = packet.payload;
    const std::uint64_t before_seq = packet.seq;
    const TcpFlags before_flags = packet.flags;
    for (std::size_t i = 0; i < link->taps.size(); ++i) {
      if (link->taps[i](packet, a_to_b) == TapVerdict::kDrop) {
        node_trace(at).instant("net", "tap",
                               {{"to", names_.at(hop)},
                                {"tap", static_cast<std::uint64_t>(i)},
                                {"verdict", "drop"}});
        return;
      }
    }
    const bool mutated =
        packet.seq != before_seq || packet.payload != before_payload ||
        packet.flags.syn != before_flags.syn || packet.flags.ack != before_flags.ack ||
        packet.flags.fin != before_flags.fin || packet.flags.rst != before_flags.rst;
    if (mutated) {
      node_trace(at).instant("net", "tap",
                             {{"to", names_.at(hop)}, {"verdict", "mutated"}});
    }
  } else {
    for (auto& tap : link->taps) {
      if (tap(packet, a_to_b) == TapVerdict::kDrop) return;
    }
  }

  // Random loss.
  if (link->config.loss_rate > 0 && loss_rng_.real() < link->config.loss_rate) {
    if (trace_sink_ != nullptr) {
      node_trace(at).instant("net", "loss",
                             {{"to", names_.at(hop)},
                              {"len", static_cast<std::uint64_t>(packet.payload.size())}});
    }
    return;
  }

  // Serialization + propagation delay.
  Time tx = 0;
  Time queue_delay = 0;
  if (link->config.bandwidth_bps > 0) {
    tx = static_cast<Time>(static_cast<double>(packet.wire_size()) * 8.0 * kSecond /
                           link->config.bandwidth_bps);
    Time& next_free = a_to_b ? link->next_free_a_to_b : link->next_free_b_to_a;
    const Time start = std::max(sim_.now(), next_free);
    queue_delay = start - sim_.now();
    next_free = start + tx;
  }
  const Time arrival_delay = queue_delay + tx + link->config.propagation;
  sim_.schedule(arrival_delay, [this, p = std::move(packet), hop]() mutable {
    forward(std::move(p), hop);
  });
}

Time Network::path_delay(NodeId a, NodeId b) const {
  if (next_hop_.empty()) const_cast<Network*>(this)->recompute_routes();
  Time total = 0;
  NodeId at = a;
  while (at != b) {
    const NodeId hop = next_hop_[at][b];
    if (hop == std::numeric_limits<NodeId>::max())
      throw std::runtime_error("path_delay: unroutable");
    for (const Link* l : adjacency_[at]) {
      if ((l->a == at && l->b == hop) || (l->b == at && l->a == hop)) {
        total += l->config.propagation;
        break;
      }
    }
    at = hop;
  }
  return total;
}

}  // namespace mbtls::net
