// Simplified TCP over the simulated network: 3-way handshake, byte-stream
// sequencing with cumulative ACKs, out-of-order reassembly, go-back-N
// retransmission, FIN teardown, and RST on unexpected segments.
//
// Flow/congestion control are intentionally absent — the experiments measure
// handshake latency and protocol behaviour, not congestion dynamics. The
// paper's prototype likewise ran on uncongested testbed links.
#pragma once

#include <deque>
#include <map>
#include <memory>

#include "net/network.h"

namespace mbtls::net {

class Host;

/// The simulator's reliable byte-stream endpoint (see net/transport.h for
/// the Stream contract and the posix counterpart). Obtained from
/// Host::connect or a listener accept callback. Owned by the Host; pointers
/// stay valid for the Host's lifetime.
class Socket final : public Stream {
 public:
  /// Queue bytes for transmission.
  void send(ByteView data) override;

  /// Half-close: sends FIN after all queued data.
  void close() override;

  /// Abort: sends RST and drops all state.
  void reset() override;

  bool established() const override { return state_ == State::kEstablished; }
  bool closed() const override { return state_ == State::kClosed; }
  /// send() is legal: not closed and no FIN queued. The simulated network
  /// never backpressures, so this only goes false on teardown.
  bool writable() const override { return state_ != State::kClosed && !fin_queued_; }

  /// Terminal error cause; valid once closed() (kNone = clean teardown).
  SocketError error() const override { return error_; }

  NodeId remote_node() const { return remote_node_; }
  Port remote_port() const { return remote_port_; }
  Port local_port() const { return local_port_; }

 private:
  friend class Host;

  enum class State { kSynSent, kSynReceived, kEstablished, kFinWait, kClosed };

  static constexpr std::size_t kMss = 1400;
  static constexpr Time kInitialRto = 200 * kMillisecond;  // doubles per loss
  static constexpr Time kMaxRto = 5 * kSecond;             // backoff ceiling
  static constexpr int kMaxRetransmits = 10;

  explicit Socket(Host& host) : host_(host) {}

  void handle_segment(const Packet& p);
  void transmit_pending();
  void send_segment(TcpFlags flags, std::uint64_t seq, ByteView payload);
  void send_ack();
  void arm_timer();
  void on_timeout();
  void deliver_in_order();
  void fail_connection(SocketError error);
  void become_closed();

  Host& host_;
  State state_ = State::kClosed;
  NodeId remote_node_ = 0;
  Port remote_port_ = 0;
  Port local_port_ = 0;

  std::uint64_t iss_ = 0;       // initial send sequence
  std::uint64_t snd_nxt_ = 0;   // next seq to send
  std::uint64_t snd_una_ = 0;   // oldest unacknowledged
  std::uint64_t rcv_nxt_ = 0;   // next expected from peer

  Bytes send_queue_;            // bytes not yet segmented
  struct Unacked {
    std::uint64_t seq;
    Bytes payload;
    bool fin;
  };
  std::deque<Unacked> unacked_;
  std::map<std::uint64_t, Bytes> out_of_order_;
  bool fin_queued_ = false;
  bool fin_sent_ = false;
  bool peer_fin_seen_ = false;
  int retransmit_count_ = 0;
  Time rto_ = kInitialRto;  // current retransmit timeout (exponential backoff)
  SocketError error_ = SocketError::kNone;
  std::uint64_t timer_generation_ = 0;
};

/// Per-node transport endpoint: owns sockets and listeners, and plugs into
/// the Network's delivery path for its node. Implements the backend-agnostic
/// Transport seam on top of the simulated network.
class Host final : public Transport {
 public:
  Host(Network& network, NodeId node);

  using AcceptHandler = std::function<void(Socket&)>;
  void listen(Port port, AcceptHandler handler);
  void stop_listening(Port port);

  /// Open a connection; returns immediately, `on_connect` fires when the
  /// handshake completes.
  Socket& connect(NodeId remote, Port remote_port);

  // Transport seam (net/transport.h). `Endpoint::node` addresses the peer;
  // `Endpoint::address` is ignored on this backend.
  Stream& dial(const Endpoint& remote) override { return connect(remote.node, remote.port); }
  Port listen_stream(Port port, StreamHandler on_accept) override;
  Scheduler& scheduler() override { return simulator(); }

  NodeId node() const { return node_; }
  Network& network() { return network_; }
  Simulator& simulator() { return network_.simulator(); }

 private:
  friend class Socket;

  void handle_packet(const Packet& p);
  Socket& new_socket();

  struct ConnKey {
    Port local_port;
    NodeId remote_node;
    Port remote_port;
    auto operator<=>(const ConnKey&) const = default;
  };

  Network& network_;
  NodeId node_;
  Port next_ephemeral_ = 40000;
  std::map<Port, AcceptHandler> listeners_;
  std::map<ConnKey, Socket*> connections_;
  std::vector<std::unique_ptr<Socket>> sockets_;
  crypto::Drbg isn_rng_;
};

}  // namespace mbtls::net
