#include "net/tcp.h"

#include <stdexcept>

namespace mbtls::net {

namespace {
std::string flags_str(const TcpFlags& f) {
  std::string s;
  if (f.syn) s += 'S';
  if (f.ack) s += 'A';
  if (f.fin) s += 'F';
  if (f.rst) s += 'R';
  return s;
}
}  // namespace

// --------------------------------------------------------------------- Host

Host::Host(Network& network, NodeId node)
    : network_(network), node_(node), isn_rng_("tcp-isn", node) {
  network_.set_delivery_handler(node_, [this](const Packet& p) { handle_packet(p); });
}

void Host::listen(Port port, AcceptHandler handler) {
  listeners_[port] = std::move(handler);
}

void Host::stop_listening(Port port) { listeners_.erase(port); }

Port Host::listen_stream(Port port, StreamHandler on_accept) {
  listen(port, [handler = std::move(on_accept)](Socket& s) { handler(s); });
  return port;
}

Socket& Host::new_socket() {
  sockets_.push_back(std::unique_ptr<Socket>(new Socket(*this)));
  return *sockets_.back();
}

Socket& Host::connect(NodeId remote, Port remote_port) {
  Socket& s = new_socket();
  s.remote_node_ = remote;
  s.remote_port_ = remote_port;
  s.local_port_ = next_ephemeral_++;
  s.iss_ = isn_rng_.u32();
  s.snd_nxt_ = s.iss_;
  s.snd_una_ = s.iss_;
  s.state_ = Socket::State::kSynSent;
  connections_[ConnKey{s.local_port_, remote, remote_port}] = &s;
  s.send_segment(TcpFlags{.syn = true}, s.snd_nxt_, {});
  s.snd_nxt_ += 1;  // SYN consumes a sequence number
  s.unacked_.push_back({s.iss_, {}, false});
  s.arm_timer();
  return s;
}

void Host::handle_packet(const Packet& p) {
  const ConnKey key{p.dst_port, p.src, p.src_port};
  auto it = connections_.find(key);
  if (it != connections_.end()) {
    it->second->handle_segment(p);
    return;
  }
  // New connection?
  if (p.flags.syn && !p.flags.ack) {
    auto lit = listeners_.find(p.dst_port);
    if (lit != listeners_.end()) {
      Socket& s = new_socket();
      s.remote_node_ = p.src;
      s.remote_port_ = p.src_port;
      s.local_port_ = p.dst_port;
      s.iss_ = isn_rng_.u32();
      s.snd_nxt_ = s.iss_;
      s.snd_una_ = s.iss_;
      s.rcv_nxt_ = p.seq + 1;
      s.state_ = Socket::State::kSynReceived;
      connections_[key] = &s;
      // Let the application wire callbacks before any data arrives.
      lit->second(s);
      s.send_segment([]{ TcpFlags f; f.syn = true; f.ack = true; return f; }(), s.snd_nxt_, {});
      s.snd_nxt_ += 1;
      s.unacked_.push_back({s.iss_, {}, false});
      s.arm_timer();
      return;
    }
  }
  if (!p.flags.rst) {
    // No listener / unknown connection: RST.
    Packet rst;
    rst.src = node_;
    rst.dst = p.src;
    rst.src_port = p.dst_port;
    rst.dst_port = p.src_port;
    rst.flags.rst = true;
    rst.seq = p.ack;
    network_.send(std::move(rst));
  }
}

// ------------------------------------------------------------------- Socket

void Socket::send(ByteView data) {
  if (state_ == State::kClosed || fin_queued_)
    throw std::logic_error("Socket::send on closed socket");
  append(send_queue_, data);
  if (state_ == State::kEstablished) transmit_pending();
}

void Socket::close() {
  if (state_ == State::kClosed || fin_queued_) return;
  fin_queued_ = true;
  if (state_ == State::kEstablished) transmit_pending();
}

void Socket::reset() {
  if (state_ == State::kClosed) return;
  send_segment(TcpFlags{.rst = true}, snd_nxt_, {});
  become_closed();
}

void Socket::send_segment(TcpFlags flags, std::uint64_t seq, ByteView payload) {
  Packet p;
  p.src = host_.node_;
  p.dst = remote_node_;
  p.src_port = local_port_;
  p.dst_port = remote_port_;
  p.flags = flags;
  p.seq = seq;
  p.ack = rcv_nxt_;
  p.payload = to_bytes(payload);
  if (host_.network_.trace_on()) {
    host_.network_.node_trace(host_.node_).instant(
        "net", "seg.send",
        {{"to", host_.network_.node_name(remote_node_)},
         {"flags", flags_str(flags)},
         {"seq", seq},
         {"len", static_cast<std::uint64_t>(payload.size())}});
  }
  host_.network_.send(std::move(p));
}

void Socket::send_ack() { send_segment(TcpFlags{.ack = true}, snd_nxt_, {}); }

void Socket::transmit_pending() {
  // Segment everything queued (no window limit; links provide backpressure
  // through serialization delay only).
  std::size_t off = 0;
  while (off < send_queue_.size()) {
    const std::size_t n = std::min(kMss, send_queue_.size() - off);
    const ByteView chunk(send_queue_.data() + off, n);
    send_segment(TcpFlags{.ack = true}, snd_nxt_, chunk);
    unacked_.push_back({snd_nxt_, to_bytes(chunk), false});
    snd_nxt_ += n;
    off += n;
  }
  send_queue_.clear();
  if (fin_queued_ && !fin_sent_) {
    send_segment(TcpFlags{.ack = true, .fin = true}, snd_nxt_, {});
    unacked_.push_back({snd_nxt_, {}, true});
    snd_nxt_ += 1;
    fin_sent_ = true;
    state_ = State::kFinWait;
  }
  if (!unacked_.empty()) arm_timer();
}

void Socket::arm_timer() {
  const std::uint64_t gen = ++timer_generation_;
  host_.simulator().schedule(rto_, [this, gen] {
    if (gen == timer_generation_) on_timeout();
  });
}

void Socket::on_timeout() {
  if (state_ == State::kClosed || unacked_.empty()) return;
  if (++retransmit_count_ > kMaxRetransmits) {
    // The peer is unreachable. Tell it so (best effort) and surface the
    // give-up as an explicit error rather than a silent close.
    send_segment(TcpFlags{.rst = true}, snd_nxt_, {});
    fail_connection(SocketError::kRetransmitExhausted);
    return;
  }
  if (host_.network_.trace_on()) {
    host_.network_.node_trace(host_.node_).instant(
        "net", "retransmit",
        {{"to", host_.network_.node_name(remote_node_)},
         {"attempt", retransmit_count_},
         {"rto_us", static_cast<std::uint64_t>(rto_)},
         {"outstanding", static_cast<std::uint64_t>(unacked_.size())}});
  }
  // Go-back-N: resend everything outstanding.
  for (const auto& seg : unacked_) {
    TcpFlags flags;
    if (seg.fin) {
      flags.fin = flags.ack = true;
    } else if (seg.seq == iss_) {
      flags.syn = true;
      flags.ack = state_ != State::kSynSent;
    } else {
      flags.ack = true;
    }
    send_segment(flags, seg.seq, seg.payload);
  }
  // Exponential backoff: each consecutive loss doubles the wait, so a dead
  // path costs bounded virtual time while a congested one is not hammered.
  rto_ = std::min(rto_ * 2, kMaxRto);
  arm_timer();
}

void Socket::deliver_in_order() {
  for (auto it = out_of_order_.begin(); it != out_of_order_.end();) {
    if (it->first > rcv_nxt_) break;
    if (it->first + it->second.size() > rcv_nxt_) {
      const std::size_t skip = rcv_nxt_ - it->first;
      const Bytes data(it->second.begin() + static_cast<std::ptrdiff_t>(skip), it->second.end());
      rcv_nxt_ += data.size();
      if (on_data && !data.empty()) on_data(data);
    }
    it = out_of_order_.erase(it);
  }
}

void Socket::fail_connection(SocketError error) {
  if (state_ == State::kClosed) return;
  error_ = error;
  if (host_.network_.trace_on()) {
    host_.network_.node_trace(host_.node_).instant(
        "net", "sock_error",
        {{"error", error == SocketError::kPeerReset ? "peer_reset" : "retransmit_exhausted"}});
  }
  if (on_error) {
    auto cb = std::move(on_error);
    on_error = nullptr;
    cb(error);
  }
  become_closed();
}

void Socket::become_closed() {
  if (state_ == State::kClosed) return;  // on_close fires exactly once
  state_ = State::kClosed;
  unacked_.clear();
  out_of_order_.clear();
  ++timer_generation_;  // cancel timers
  if (on_close) {
    auto cb = on_close;
    on_close = nullptr;
    cb();
  }
}

void Socket::handle_segment(const Packet& p) {
  if (state_ == State::kClosed) return;
  if (host_.network_.trace_on()) {
    host_.network_.node_trace(host_.node_).instant(
        "net", "seg.recv",
        {{"from", host_.network_.node_name(p.src)},
         {"flags", flags_str(p.flags)},
         {"seq", p.seq},
         {"len", static_cast<std::uint64_t>(p.payload.size())}});
  }
  if (p.flags.rst) {
    fail_connection(SocketError::kPeerReset);
    return;
  }

  // Handshake transitions.
  if (state_ == State::kSynSent) {
    if (p.flags.syn && p.flags.ack && p.ack == iss_ + 1) {
      rcv_nxt_ = p.seq + 1;
      snd_una_ = p.ack;
      unacked_.clear();
      retransmit_count_ = 0;
      state_ = State::kEstablished;
      send_ack();
      if (on_connect) on_connect();
      transmit_pending();
    }
    return;
  }
  if (state_ == State::kSynReceived) {
    if (p.flags.ack && p.ack >= iss_ + 1) {
      snd_una_ = p.ack;
      unacked_.clear();
      retransmit_count_ = 0;
      state_ = State::kEstablished;
      transmit_pending();
      // Fall through: the ACK may carry data.
    } else if (p.flags.syn && !p.flags.ack) {
      // Duplicate SYN (our SYN-ACK was lost): resend.
      send_segment([]{ TcpFlags f; f.syn = true; f.ack = true; return f; }(), iss_, {});
      return;
    } else {
      return;
    }
  }

  // ACK processing.
  if (p.flags.ack && p.ack > snd_una_) {
    snd_una_ = p.ack;
    retransmit_count_ = 0;
    rto_ = kInitialRto;  // forward progress: reset the backoff
    while (!unacked_.empty() &&
           unacked_.front().seq + std::max<std::size_t>(unacked_.front().payload.size(),
                                                        unacked_.front().fin ? 1 : 0) <=
               snd_una_) {
      unacked_.pop_front();
    }
    if (!unacked_.empty())
      arm_timer();
    else
      ++timer_generation_;  // all acked: cancel timer
  }

  // Data processing.
  if (!p.payload.empty()) {
    if (p.seq + p.payload.size() > rcv_nxt_) {
      out_of_order_[p.seq] = p.payload;
      deliver_in_order();
    }
    send_ack();
  }

  // FIN processing (only once all preceding data has arrived). A peer FIN
  // tears the whole connection down, exactly as on the posix backend (where
  // become_closed drops the fd, which emits our FIN): if we haven't FINed
  // yet, answer with one so the active closer also reaches closed() instead
  // of parking in FinWait forever.
  if (p.flags.fin && !peer_fin_seen_ && p.seq <= rcv_nxt_) {
    peer_fin_seen_ = true;
    rcv_nxt_ = p.seq + 1;
    if (!fin_sent_) {
      send_segment(TcpFlags{.ack = true, .fin = true}, snd_nxt_, {});
      fin_sent_ = true;
    } else {
      send_ack();
    }
    become_closed();
  }
}

}  // namespace mbtls::net
