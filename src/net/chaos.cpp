#include "net/chaos.h"

#include <memory>
#include <utility>
#include <vector>

namespace mbtls::net {

namespace {

// Held packets re-enter the network at the link's far end (past the tap), so
// a released packet is never re-judged by the tap that held it. Staggered
// one-microsecond delays keep release order deterministic and distinct.
void release(Network& net, NodeId receiver, Packet packet, Time extra_delay) {
  net.simulator().schedule(extra_delay, [&net, receiver, p = std::move(packet)]() mutable {
    net.inject(receiver, std::move(p));
  });
}

struct ReorderState {
  explicit ReorderState(crypto::Drbg r) : rng(std::move(r)) {}
  crypto::Drbg rng;
  std::vector<Packet> held[2];        // per direction
  std::uint64_t flush_generation[2] = {0, 0};
};

void reorder_flush(Network& net, NodeId receiver, ReorderState& st, int dir) {
  auto& held = st.held[dir];
  ++st.flush_generation[dir];
  // Fisher-Yates off the tap's own stream keeps the permutation seeded.
  for (std::size_t i = held.size(); i > 1; --i) {
    std::swap(held[i - 1], held[st.rng.uniform(i)]);
  }
  Time delay = 1;
  for (auto& p : held) release(net, receiver, std::move(p), delay++);
  held.clear();
}

}  // namespace

LinkTap ChaosTap::corrupt_byte(crypto::Drbg rng, double p) {
  auto st = std::make_shared<crypto::Drbg>(std::move(rng));
  return [st, p](Packet& packet, bool) {
    if (!packet.payload.empty() && st->real() < p) {
      const std::size_t index = st->uniform(packet.payload.size());
      packet.payload[index] ^= static_cast<std::uint8_t>(1 + st->uniform(255));
    }
    return TapVerdict::kPass;
  };
}

LinkTap ChaosTap::truncate(crypto::Drbg rng, double p) {
  auto st = std::make_shared<crypto::Drbg>(std::move(rng));
  return [st, p](Packet& packet, bool) {
    if (!packet.payload.empty() && st->real() < p) {
      packet.payload.resize(st->uniform(packet.payload.size()));
    }
    return TapVerdict::kPass;
  };
}

LinkTap ChaosTap::duplicate(Network& net, NodeId a, NodeId b, crypto::Drbg rng, double p) {
  auto st = std::make_shared<crypto::Drbg>(std::move(rng));
  return [st, &net, a, b, p](Packet& packet, bool a_to_b) {
    if (st->real() < p) {
      const Time jitter = 1 + st->uniform(2 * kMillisecond);
      release(net, a_to_b ? b : a, packet, jitter);
    }
    return TapVerdict::kPass;
  };
}

LinkTap ChaosTap::reorder_within_window(Network& net, NodeId a, NodeId b, crypto::Drbg rng,
                                        std::size_t window, Time max_hold) {
  auto st = std::make_shared<ReorderState>(std::move(rng));
  return [st, &net, a, b, window, max_hold](Packet& packet, bool a_to_b) {
    const int dir = a_to_b ? 0 : 1;
    const NodeId receiver = a_to_b ? b : a;
    st->held[dir].push_back(packet);
    if (st->held[dir].size() == 1) {
      // A partial window must not wedge a quiet link: flush on a timer too.
      const std::uint64_t generation = st->flush_generation[dir];
      net.simulator().schedule(max_hold, [st, &net, receiver, dir, generation] {
        if (st->flush_generation[dir] == generation) reorder_flush(net, receiver, *st, dir);
      });
    }
    if (st->held[dir].size() >= window) reorder_flush(net, receiver, *st, dir);
    return TapVerdict::kDrop;
  };
}

LinkTap ChaosTap::stall_for_duration(Network& net, NodeId a, NodeId b, Time start_after,
                                     Time duration) {
  struct StallState {
    std::vector<std::pair<Packet, bool>> held;  // packet + a_to_b
    bool released = false;
  };
  auto st = std::make_shared<StallState>();
  const Time begin = net.simulator().now() + start_after;
  net.simulator().schedule(start_after + duration, [st, &net, a, b] {
    st->released = true;
    Time delay = 1;
    for (auto& [packet, a_to_b] : st->held) {
      release(net, a_to_b ? b : a, std::move(packet), delay++);
    }
    st->held.clear();
  });
  return [st, &net, begin](Packet& packet, bool a_to_b) {
    if (net.simulator().now() < begin || st->released) return TapVerdict::kPass;
    st->held.emplace_back(packet, a_to_b);
    return TapVerdict::kDrop;
  };
}

LinkTap ChaosTap::blackhole_after(std::size_t n) {
  auto seen = std::make_shared<std::size_t>(0);
  return [seen, n](Packet&, bool) {
    return (*seen)++ < n ? TapVerdict::kPass : TapVerdict::kDrop;
  };
}

}  // namespace mbtls::net
