// Discrete-event simulator core: a virtual clock and an event queue.
//
// Every latency experiment (Figure 6, Table 2) runs on virtual time so that
// results are deterministic and independent of the host machine. Time is in
// integer microseconds.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "net/clock.h"

namespace mbtls::net {

/// The virtual-time Scheduler backend (see net/clock.h; the posix epoll loop
/// is the real-time one).
class Simulator : public Scheduler {
 public:
  Time now() const override { return now_; }

  /// Schedule `fn` to run `delay` microseconds from now. Events scheduled at
  /// the same instant run in scheduling order (FIFO), which keeps runs
  /// reproducible.
  void schedule(Time delay, std::function<void()> fn) override;

  /// Run until the event queue drains or `max_events` fire (runaway guard).
  /// Returns kDrained or kBudgetExhausted — a budget-exhausted run leaves the
  /// remaining events queued so the caller can inspect or resume.
  RunStatus run(std::size_t max_events = 10'000'000);

  /// Run until the virtual clock would pass `deadline` (or `max_events`
  /// fire). Returns kDrained, kDeadlineReached, or kBudgetExhausted.
  RunStatus run_until(Time deadline, std::size_t max_events = 10'000'000);

  bool idle() const { return queue_.empty(); }
  std::size_t events_processed() const { return events_processed_; }

 private:
  struct Event {
    Time at;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::size_t events_processed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace mbtls::net
