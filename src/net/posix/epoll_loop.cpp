#include "net/posix/epoll_loop.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <ctime>
#include <stdexcept>

namespace mbtls::net::posix {

namespace {

std::uint64_t monotonic_nanos() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000'000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

[[noreturn]] void throw_errno(const char* what) {
  throw std::runtime_error(std::string(what) + ": " + std::strerror(errno));
}

SocketError map_connect_errno(int err) {
  switch (err) {
    case ETIMEDOUT:
    case EHOSTUNREACH:
    case ENETUNREACH:
      return SocketError::kRetransmitExhausted;  // peer unreachable, as in the sim
    default:
      return SocketError::kPeerReset;  // ECONNREFUSED, ECONNRESET, ...
  }
}

// Listeners and streams share one epoll instance; the low pointer bit tags
// which kind a ready event belongs to (both are heap objects, so bit 0 of
// the pointer is always free). The wakeup eventfd registers with a bare
// sentinel value no heap pointer can collide with.
constexpr std::uint64_t kListenerTag = 1;
constexpr std::uint64_t kWakeupTag = 2;

}  // namespace

// ---------------------------------------------------------------- TcpStream

TcpStream::~TcpStream() {
  if (fd_ >= 0) ::close(fd_);
}

void TcpStream::send(ByteView data) {
  if (state_ == State::kClosed || fin_queued_)
    throw std::logic_error("TcpStream::send on closed stream");
  std::size_t off = 0;
  // Kernel-first: only a short write spills into the backlog, which the next
  // EPOLLOUT edge drains.
  if (state_ == State::kEstablished && backlog() == 0) {
    while (off < data.size()) {
      const ssize_t n = ::send(fd_, data.data() + off, data.size() - off, MSG_NOSIGNAL);
      if (n > 0) {
        off += static_cast<std::size_t>(n);
        continue;
      }
      if (n == 0 || errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      fail(SocketError::kPeerReset);
      return;
    }
  }
  if (off < data.size()) {
    append(out_, ByteView(data.data() + off, data.size() - off));
    had_backlog_ = true;
  }
}

void TcpStream::close() {
  if (state_ == State::kClosed || fin_queued_) return;
  fin_queued_ = true;
  if (state_ == State::kEstablished && backlog() == 0) {
    ::shutdown(fd_, SHUT_WR);
    fin_sent_ = true;
    state_ = State::kFinWait;  // keep reading until the peer's FIN
  }
  // Otherwise the FIN follows the drained backlog (try_flush_out) or the
  // completed connect.
}

void TcpStream::reset() {
  if (state_ == State::kClosed) return;
  // SO_LINGER(0) turns the close into an RST, matching the simulator's
  // Socket::reset() (on_close fires locally, error stays kNone).
  linger lin{1, 0};
  ::setsockopt(fd_, SOL_SOCKET, SO_LINGER, &lin, sizeof(lin));
  become_closed();
}

void TcpStream::complete_connect() {
  int err = 0;
  socklen_t len = sizeof(err);
  if (::getsockopt(fd_, SOL_SOCKET, SO_ERROR, &err, &len) != 0) err = errno;
  if (err != 0) {
    fail(map_connect_errno(err));
    return;
  }
  state_ = State::kEstablished;
  if (on_connect) on_connect();
  if (state_ != State::kClosed) try_flush_out();  // bytes queued pre-connect, or a FIN
}

void TcpStream::try_flush_out() {
  while (backlog() > 0) {
    const ssize_t n = ::send(fd_, out_.data() + out_off_, backlog(), MSG_NOSIGNAL);
    if (n > 0) {
      out_off_ += static_cast<std::size_t>(n);
      continue;
    }
    if (n == 0 || errno == EAGAIN || errno == EWOULDBLOCK) return;
    if (errno == EINTR) continue;
    fail(SocketError::kPeerReset);
    return;
  }
  out_.clear();
  out_off_ = 0;
  if (fin_queued_ && !fin_sent_) {
    ::shutdown(fd_, SHUT_WR);
    fin_sent_ = true;
    if (state_ == State::kEstablished) state_ = State::kFinWait;
  }
  if (had_backlog_) {
    had_backlog_ = false;
    if (on_writable && state_ != State::kClosed && !fin_queued_) on_writable();
  }
}

void TcpStream::handle_readable() {
  std::uint8_t buf[16384];
  while (state_ != State::kClosed) {
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      if (on_data) on_data(ByteView(buf, static_cast<std::size_t>(n)));
      continue;
    }
    if (n == 0) {  // peer FIN: clean teardown, like the simulator's FIN path
      become_closed();
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    if (errno == EINTR) continue;
    fail(SocketError::kPeerReset);
    return;
  }
}

void TcpStream::handle_events(std::uint32_t events) {
  if (state_ == State::kClosed) return;  // stale event from this dispatch batch
  if (events & EPOLLERR) {
    int err = 0;
    socklen_t len = sizeof(err);
    ::getsockopt(fd_, SOL_SOCKET, SO_ERROR, &err, &len);
    fail(state_ == State::kConnecting ? map_connect_errno(err) : SocketError::kPeerReset);
    return;
  }
  if (state_ == State::kConnecting) {
    if (events & (EPOLLOUT | EPOLLHUP)) complete_connect();
    if (state_ == State::kClosed || state_ == State::kConnecting) return;
  }
  if (events & (EPOLLIN | EPOLLRDHUP | EPOLLHUP)) handle_readable();
  if (state_ == State::kClosed) return;
  if (events & EPOLLOUT) try_flush_out();
}

void TcpStream::fail(SocketError err) {
  if (state_ == State::kClosed) return;
  error_ = err;
  if (on_error) {
    auto cb = std::move(on_error);
    on_error = nullptr;
    cb(err);
  }
  become_closed();
}

void TcpStream::become_closed() {
  if (state_ == State::kClosed) return;  // on_close fires exactly once
  state_ = State::kClosed;
  loop_.open_count_.fetch_sub(1, std::memory_order_relaxed);
  loop_.deregister(fd_);
  ::close(fd_);
  fd_ = -1;
  out_.clear();
  out_off_ = 0;
  if (on_close) {
    auto cb = on_close;
    on_close = nullptr;
    cb();
  }
}

// ---------------------------------------------------------------- EpollLoop

EpollLoop::EpollLoop() : t0_ns_(monotonic_nanos()) {
  epfd_ = ::epoll_create1(0);
  if (epfd_ < 0) throw_errno("epoll_create1");
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (wake_fd_ < 0) throw_errno("eventfd");
  epoll_event ev{};
  ev.events = EPOLLIN;  // level-triggered: poll_once drains the counter
  ev.data.u64 = kWakeupTag;
  if (::epoll_ctl(epfd_, EPOLL_CTL_ADD, wake_fd_, &ev) != 0) throw_errno("epoll_ctl(wakeup)");
}

EpollLoop::~EpollLoop() {
  for (auto& l : listeners_)
    if (l->fd >= 0) ::close(l->fd);
  streams_.clear();  // TcpStream dtors close their fds
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epfd_ >= 0) ::close(epfd_);
}

Time EpollLoop::now() const { return (monotonic_nanos() - t0_ns_) / 1000; }

void EpollLoop::schedule(Time delay, std::function<void()> fn) {
  wheel_.schedule(now(), delay, std::move(fn));
}

void EpollLoop::post(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(posted_mu_);
    posted_.push_back(std::move(fn));
    posted_pending_.store(posted_.size(), std::memory_order_release);
  }
  const std::uint64_t one = 1;
  // A full eventfd counter (EAGAIN) still wakes the loop; nothing to retry.
  [[maybe_unused]] const ssize_t n = ::write(wake_fd_, &one, sizeof(one));
}

void EpollLoop::drain_posted() {
  std::vector<std::function<void()>> batch;
  {
    std::lock_guard<std::mutex> lock(posted_mu_);
    batch.swap(posted_);
    posted_pending_.store(0, std::memory_order_release);
  }
  for (auto& fn : batch) fn();
}

TcpStream& EpollLoop::adopt(int fd, TcpStream::State state) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  streams_.push_back(std::unique_ptr<TcpStream>(new TcpStream(*this, fd, state)));
  open_count_.fetch_add(1, std::memory_order_relaxed);
  TcpStream& s = *streams_.back();
  epoll_event ev{};
  ev.events = EPOLLIN | EPOLLOUT | EPOLLRDHUP | EPOLLET;
  ev.data.ptr = &s;
  if (::epoll_ctl(epfd_, EPOLL_CTL_ADD, fd, &ev) != 0) throw_errno("epoll_ctl(stream)");
  return s;
}

void EpollLoop::deregister(int fd) { ::epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, nullptr); }

Stream& EpollLoop::dial(const Endpoint& remote) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) throw_errno("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(remote.port);
  const std::string& host = remote.address.empty() ? std::string("127.0.0.1") : remote.address;
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw std::runtime_error("EpollLoop::dial: bad address " + host);
  }
  // Even an immediately successful connect completes through the add-time
  // EPOLLOUT edge, so on_connect always fires after the caller had a chance
  // to install it.
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 &&
      errno != EINPROGRESS) {
    ::close(fd);
    throw_errno("connect");
  }
  return adopt(fd, TcpStream::State::kConnecting);
}

Port EpollLoop::listen_stream(Port port, StreamHandler on_accept, bool reuse_port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) throw_errno("socket");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (reuse_port) ::setsockopt(fd, SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    throw_errno("bind");
  }
  if (::listen(fd, SOMAXCONN) != 0) {
    ::close(fd);
    throw_errno("listen");
  }
  socklen_t len = sizeof(addr);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  listeners_.push_back(std::make_unique<Listener>());
  Listener& l = *listeners_.back();
  l.loop = this;
  l.fd = fd;
  l.port = ntohs(addr.sin_port);
  l.on_accept = std::move(on_accept);
  epoll_event ev{};
  ev.events = EPOLLIN | EPOLLET;
  ev.data.u64 = reinterpret_cast<std::uintptr_t>(&l) | kListenerTag;
  if (::epoll_ctl(epfd_, EPOLL_CTL_ADD, fd, &ev) != 0) throw_errno("epoll_ctl(listener)");
  return l.port;
}

void EpollLoop::handle_accept(Listener& listener) {
  while (true) {
    const int fd = ::accept4(listener.fd, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN: drained this edge
    }
    TcpStream& s = adopt(fd, TcpStream::State::kEstablished);
    if (listener.on_accept) listener.on_accept(s);
  }
}

bool EpollLoop::poll_once(Time max_wait) {
  bool did_work = wheel_.advance(now()) > 0;
  // Don't block while cross-thread posts are queued: run them this round.
  const Time cap = posted_pending_.load(std::memory_order_acquire) > 0 ? 0 : max_wait;
  const Time wait = wheel_.time_until_next(now(), cap);
  epoll_event evs[64];
  const int timeout_ms =
      wait == 0 ? 0 : static_cast<int>(std::max<Time>(1, wait / kMillisecond));
  const int n = ::epoll_wait(epfd_, evs, 64, timeout_ms);
  for (int i = 0; i < n; ++i) {
    if (evs[i].data.u64 == kWakeupTag) {  // posts drain below, every round
      std::uint64_t counter = 0;
      [[maybe_unused]] const ssize_t r = ::read(wake_fd_, &counter, sizeof(counter));
      continue;
    }
    did_work = true;
    if (evs[i].data.u64 & kListenerTag) {
      handle_accept(*reinterpret_cast<Listener*>(evs[i].data.u64 & ~kListenerTag));
    } else {
      static_cast<TcpStream*>(evs[i].data.ptr)->handle_events(evs[i].events);
    }
  }
  // Unconditional: a post can land between the queue push and the eventfd
  // write becoming visible, and coalesced wakeups must not strand tasks.
  if (posted_pending_.load(std::memory_order_acquire) > 0) {
    drain_posted();
    did_work = true;
  }
  did_work |= wheel_.advance(now()) > 0;
  return did_work;
}

bool EpollLoop::idle() const {
  return wheel_.pending() == 0 && open_streams() == 0 &&
         posted_pending_.load(std::memory_order_acquire) == 0;
}

RunStatus EpollLoop::run(std::size_t max_rounds) {
  for (std::size_t round = 0; round < max_rounds; ++round) {
    if (idle()) return RunStatus::kDrained;
    poll_once(10 * kMillisecond);
  }
  return RunStatus::kBudgetExhausted;
}

RunStatus EpollLoop::run_until(Time deadline, std::size_t max_rounds) {
  for (std::size_t round = 0; round < max_rounds; ++round) {
    if (idle()) return RunStatus::kDrained;
    const Time t = now();
    if (t >= deadline) return RunStatus::kDeadlineReached;
    poll_once(std::min<Time>(10 * kMillisecond, deadline - t));
  }
  return RunStatus::kBudgetExhausted;
}

}  // namespace mbtls::net::posix
