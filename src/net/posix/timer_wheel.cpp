#include "net/posix/timer_wheel.h"

#include <algorithm>
#include <utility>

namespace mbtls::net::posix {

void TimerWheel::schedule(Time now_us, Time delay_us, std::function<void()> fn) {
  // Round up to the next tick boundary and never land on or before the
  // current tick: schedule(0) fires on the next advance, not reentrantly.
  std::uint64_t expiry = (now_us + delay_us + tick_us_ - 1) / tick_us_;
  expiry = std::max(expiry, current_tick_ + 1);
  place({expiry, std::move(fn)});
  ++pending_;
}

void TimerWheel::place(Timer timer) {
  const std::uint64_t delta = timer.expiry_tick - current_tick_;  // >= 1
  int level = 0;
  while (level < kLevels - 1 && delta >= (std::uint64_t{1} << (kSlotBits * (level + 1)))) {
    ++level;
  }
  const std::uint64_t idx = (timer.expiry_tick >> (kSlotBits * level)) & (kSlots - 1);
  slots_[level][idx].push_back(std::move(timer));
}

std::size_t TimerWheel::fire_slot(std::vector<Timer>& slot) {
  // Swap the slot out first: callbacks may schedule into this very slot (a
  // periodic timer re-arming itself) and must not be fired this round.
  std::vector<Timer> due;
  due.swap(slot);
  std::size_t fired = 0;
  for (auto& t : due) {
    if (t.expiry_tick > current_tick_) {  // future wrap that shares the slot
      place(std::move(t));
      continue;
    }
    --pending_;
    ++fired;
    auto fn = std::move(t.fn);
    fn();
  }
  return fired;
}

std::size_t TimerWheel::advance(Time now_us) {
  const std::uint64_t target = now_us / tick_us_;
  std::size_t fired = 0;
  while (current_tick_ < target) {
    if (pending_ == 0) {  // big idle jumps cost nothing
      current_tick_ = target;
      break;
    }
    ++current_tick_;
    // On each level's wrap boundary, cascade its current slot down: place()
    // re-buckets by the now-smaller remaining delta, so near-due timers land
    // in level 0 and fire below.
    for (int level = 1; level < kLevels; ++level) {
      if (current_tick_ & ((std::uint64_t{1} << (kSlotBits * level)) - 1)) break;
      const std::uint64_t idx = (current_tick_ >> (kSlotBits * level)) & (kSlots - 1);
      std::vector<Timer> moved;
      moved.swap(slots_[level][idx]);
      for (auto& t : moved) place(std::move(t));
    }
    fired += fire_slot(slots_[0][current_tick_ & (kSlots - 1)]);
  }
  return fired;
}

Time TimerWheel::time_until_next(Time now_us, Time cap_us) const {
  if (pending_ == 0) return cap_us;
  const std::uint64_t max_ticks =
      std::min<std::uint64_t>(kSlots - 1, cap_us / tick_us_ + 1);
  for (std::uint64_t d = 1; d <= max_ticks; ++d) {
    const std::uint64_t tick = current_tick_ + d;
    if (!slots_[0][tick & (kSlots - 1)].empty()) {
      const Time due_us = tick * tick_us_;
      return due_us <= now_us ? 0 : std::min(cap_us, due_us - now_us);
    }
  }
  return cap_us;  // nothing in level 0: everything pending is >= 64 ticks out
}

}  // namespace mbtls::net::posix
