#include "net/posix/loop_group.h"

#include <algorithm>
#include <stdexcept>

#include "util/workpool.h"  // util::thread_cpu_nanos

namespace mbtls::net::posix {

LoopGroup::LoopGroup() : LoopGroup(Options{}) {}

LoopGroup::LoopGroup(Options options) : dial_policy_(options.dial_policy) {
  const std::size_t n = std::max<std::size_t>(1, options.loops);
  loops_.reserve(n);
  accepted_.reserve(n);
  cpu_nanos_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    loops_.push_back(std::make_unique<EpollLoop>());
    accepted_.push_back(std::make_unique<std::atomic<std::uint64_t>>(0));
    cpu_nanos_.push_back(std::make_unique<std::atomic<std::uint64_t>>(0));
  }
}

LoopGroup::~LoopGroup() {
  if (running()) stop();
}

Port LoopGroup::listen(Port port, GroupAcceptHandler on_accept) {
  if (running()) throw std::logic_error("LoopGroup::listen after start()");
  Port bound = 0;
  for (std::size_t i = 0; i < loops_.size(); ++i) {
    auto wrapped = [this, i, on_accept](Stream& s) {
      accepted_[i]->fetch_add(1, std::memory_order_relaxed);
      if (on_accept) on_accept(i, s);
    };
    // Loop 0 may bind an ephemeral port; every sibling then joins that
    // exact port through its own SO_REUSEPORT socket.
    const Port want = (i == 0) ? port : bound;
    bound = loops_[i]->listen_stream(want, std::move(wrapped), /*reuse_port=*/true);
  }
  return bound;
}

std::size_t LoopGroup::pick_loop() {
  if (dial_policy_ == DialPolicy::kLeastSessions) {
    std::size_t best = 0;
    std::size_t best_open = loops_[0]->open_streams();
    for (std::size_t i = 1; i < loops_.size(); ++i) {
      const std::size_t open = loops_[i]->open_streams();
      if (open < best_open) {
        best = i;
        best_open = open;
      }
    }
    return best;
  }
  return next_loop_.fetch_add(1, std::memory_order_relaxed) % loops_.size();
}

void LoopGroup::post(std::size_t i, std::function<void()> fn) {
  loops_[i]->post(std::move(fn));
}

std::size_t LoopGroup::post_dial(std::function<void(EpollLoop&, std::size_t)> fn) {
  const std::size_t i = pick_loop();
  EpollLoop& loop = *loops_[i];
  loop.post([&loop, i, fn = std::move(fn)] { fn(loop, i); });
  return i;
}

void LoopGroup::drive(std::size_t i, const std::function<void(std::size_t)>& tick) {
  EpollLoop& loop = *loops_[i];
  while (!stop_requested_.load(std::memory_order_acquire)) {
    loop.poll_once(kMillisecond);
    if (tick) tick(i);
    cpu_nanos_[i]->store(util::thread_cpu_nanos(), std::memory_order_relaxed);
  }
  // Drain phase: give in-flight sessions up to the budget to reach closed()
  // before the loop is torn down under them.
  const Time deadline = loop.now() + drain_budget_.load(std::memory_order_acquire);
  while (!loop.idle() && loop.now() < deadline) {
    loop.poll_once(kMillisecond);
    if (tick) tick(i);
  }
  cpu_nanos_[i]->store(util::thread_cpu_nanos(), std::memory_order_relaxed);
}

void LoopGroup::start(std::function<void(std::size_t)> tick) {
  if (running()) throw std::logic_error("LoopGroup::start called twice");
  stop_requested_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  threads_.reserve(loops_.size());
  for (std::size_t i = 0; i < loops_.size(); ++i)
    threads_.emplace_back([this, i, tick] { drive(i, tick); });
}

void LoopGroup::stop(Time drain_budget) {
  if (!running()) return;
  drain_budget_.store(drain_budget, std::memory_order_release);
  stop_requested_.store(true, std::memory_order_release);
  for (auto& loop : loops_) loop->post([] {});  // kick epoll_wait awake
  for (auto& t : threads_) t.join();
  threads_.clear();
  running_.store(false, std::memory_order_release);
}

std::vector<std::uint64_t> LoopGroup::accept_counts() const {
  std::vector<std::uint64_t> counts;
  counts.reserve(accepted_.size());
  for (const auto& a : accepted_) counts.push_back(a->load(std::memory_order_relaxed));
  return counts;
}

}  // namespace mbtls::net::posix
