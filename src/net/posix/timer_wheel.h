// Hierarchical timer wheel for the posix event loop.
//
// Four levels of 64 slots each at a 1 ms tick give ~4.6 hours of range with
// O(1) insertion and amortized O(1) advance — the shape Varghese/Lauck
// describe and what every production event loop uses for the "many cheap
// timers, most of them cancelled or far away" workload that TLS handshake
// deadlines and retransmit backoff produce. Timers carry no cancellation
// handle (see net/clock.h): a callback guards its own liveness.
//
// Single-threaded, like the loop that owns it.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "net/clock.h"

namespace mbtls::net::posix {

class TimerWheel {
 public:
  /// `tick_us` is the firing granularity; timers fire on the first advance()
  /// whose time has reached their (rounded-up) expiry tick.
  explicit TimerWheel(Time tick_us = kMillisecond) : tick_us_(tick_us) {}

  /// Arm `fn` to fire `delay_us` from `now_us`. A zero delay fires on the
  /// next advance that crosses a tick boundary (delays round up to one tick,
  /// mirroring the simulator's "schedule(0) runs next, not reentrantly").
  void schedule(Time now_us, Time delay_us, std::function<void()> fn);

  /// Fire every timer whose expiry tick has been reached by `now_us`, in
  /// expiry order (FIFO within a tick). Callbacks may schedule new timers.
  /// Returns how many fired.
  std::size_t advance(Time now_us);

  std::size_t pending() const { return pending_; }

  /// Microseconds from `now_us` until the next level-0 timer could fire,
  /// capped at `cap_us`. Deeper levels are not scanned: they are by
  /// construction at least 64 ticks away, so a cap of a few ticks is always
  /// conservative. Used to bound the epoll_wait timeout.
  Time time_until_next(Time now_us, Time cap_us) const;

 private:
  static constexpr int kLevels = 4;
  static constexpr int kSlotBits = 6;
  static constexpr std::uint64_t kSlots = 1u << kSlotBits;  // 64 per level

  struct Timer {
    std::uint64_t expiry_tick;
    std::function<void()> fn;
  };

  void place(Timer timer);
  std::size_t fire_slot(std::vector<Timer>& slot);

  Time tick_us_;
  std::uint64_t current_tick_ = 0;
  std::size_t pending_ = 0;
  std::vector<Timer> slots_[kLevels][kSlots];
};

}  // namespace mbtls::net::posix
