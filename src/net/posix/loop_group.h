// Multi-loop posix data plane: N EpollLoop instances on N threads, sharded
// by the kernel.
//
// One EpollLoop on one core tops out around ~1.2 Gbps of reprotected mbTLS
// traffic (BENCH_c10k.json, PR 8) while the multi-core reprotect pipeline
// and the sharded control plane sit idle beside it. A LoopGroup closes that
// gap without adding a single cross-thread handoff to the data path:
//
//  * Accept sharding is the kernel's job. Every loop binds its own
//    SO_REUSEPORT listener on the same port; the kernel hashes each incoming
//    4-tuple to one listener, so a connection is born on the loop that will
//    own it forever. No shared accept lock, no fd passing.
//  * Loop affinity is an invariant, not a policy. A session's fds (and its
//    bindings, sessions, and DRBGs) live and die on the loop that accepted
//    or dialed them; nothing ever migrates. Everything a loop touches is
//    single-threaded — exactly the discipline EpollLoop already demands —
//    so N loops need no locks beyond what they share deliberately: the
//    process-wide control-plane caches (mb::ShardedSessionCache, CertPool,
//    QuoteVerifyCache), which are mutex-striped for exactly this shape.
//  * Outbound dials are assigned, not raced. pick_loop() implements
//    round-robin or least-sessions placement; post_dial() runs the caller's
//    dial-and-wire function on the chosen loop's thread via the eventfd
//    wakeup, so external threads never touch a loop directly.
//  * Stop is graceful. stop(drain_budget) wakes every loop, lets each keep
//    polling until it is idle (or the budget expires — in-flight sessions
//    are reset by loop teardown, never by a race), then joins the threads.
//
// Thread discipline mirrors tests/test_posix_loopback.cpp: wire listeners
// before start(); after start(), reach a loop only through post()/post_dial()
// or from its own callbacks.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "net/posix/epoll_loop.h"

namespace mbtls::net::posix {

class LoopGroup {
 public:
  /// How pick_loop() places outbound dials.
  enum class DialPolicy {
    kRoundRobin,     // deterministic rotation — uniform for uniform sessions
    kLeastSessions,  // lowest open_streams() — adapts to skewed lifetimes
  };

  struct Options {
    std::size_t loops = 2;  // clamped to >= 1
    DialPolicy dial_policy = DialPolicy::kRoundRobin;
  };

  LoopGroup();
  explicit LoopGroup(Options options);
  ~LoopGroup();  // stops and joins if still running
  LoopGroup(const LoopGroup&) = delete;
  LoopGroup& operator=(const LoopGroup&) = delete;

  std::size_t size() const { return loops_.size(); }
  EpollLoop& loop(std::size_t i) { return *loops_[i]; }

  /// Runs on the owning loop's thread for every kernel-sharded accept.
  using GroupAcceptHandler = std::function<void(std::size_t loop_index, Stream&)>;

  /// Bind one SO_REUSEPORT listener per loop on the same port (0 = let the
  /// first loop pick an ephemeral port, then bind the rest to it). Returns
  /// the bound port. Call before start().
  Port listen(Port port, GroupAcceptHandler on_accept);

  /// Pick a loop for the next outbound dial under the configured policy.
  std::size_t pick_loop();

  /// Thread-safe: run `fn` on loop `i`'s thread (its next dispatch round).
  void post(std::size_t i, std::function<void()> fn);

  /// pick_loop() + post(): run `fn(loop, index)` on the chosen loop's
  /// thread — the caller dials and wires its session in there, keeping the
  /// new fds loop-affine from birth. Returns the chosen index.
  std::size_t post_dial(std::function<void(EpollLoop&, std::size_t)> fn);

  /// Spawn one driver thread per loop. `tick`, when set, runs on each
  /// loop's own thread after every dispatch round — the hook a benchmark
  /// uses to refill writable sessions without cross-thread posting.
  void start(std::function<void(std::size_t loop_index)> tick = {});

  /// Graceful stop: request shutdown, wake every loop, and let each drain
  /// (keep polling until idle()) for up to `drain_budget` microseconds of
  /// extra polling before joining. 0 = stop at the next dispatch round.
  void stop(Time drain_budget = 0);

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Kernel-sharded accepts per loop (how balanced SO_REUSEPORT left us).
  std::uint64_t accepted_on(std::size_t i) const {
    return accepted_[i]->load(std::memory_order_relaxed);
  }
  std::vector<std::uint64_t> accept_counts() const;

  /// CPU nanoseconds burned by loop `i`'s driver thread so far (sampled on
  /// the thread each round; readable while running). The busiest loop's
  /// delta over a measurement window is the capacity bottleneck — the same
  /// single-core-honest accounting as the reprotect pipeline's
  /// per-worker busy time (util::thread_cpu_nanos).
  std::uint64_t cpu_nanos_on(std::size_t i) const {
    return cpu_nanos_[i]->load(std::memory_order_relaxed);
  }

 private:
  void drive(std::size_t i, const std::function<void(std::size_t)>& tick);

  std::vector<std::unique_ptr<EpollLoop>> loops_;
  std::vector<std::unique_ptr<std::atomic<std::uint64_t>>> accepted_;
  std::vector<std::unique_ptr<std::atomic<std::uint64_t>>> cpu_nanos_;
  std::vector<std::thread> threads_;
  DialPolicy dial_policy_;
  std::atomic<std::size_t> next_loop_{0};
  std::atomic<bool> stop_requested_{false};
  std::atomic<bool> running_{false};
  std::atomic<Time> drain_budget_{0};
};

}  // namespace mbtls::net::posix
