// Production transport backend: an epoll(7) event loop with non-blocking TCP
// sockets, edge-triggered readiness, and a hierarchical timer wheel — the
// second implementation of the transport seam (net/transport.h) next to the
// discrete-event simulator.
//
// Design decisions, chosen to keep the two backends observably identical to
// the bindings above the seam:
//
//  * One loop == one thread. All calls into a loop and all its callbacks
//    happen on the thread that drives run()/poll_once(); loops share nothing,
//    so a client / middlebox / server process triple is three loops on three
//    threads talking only through the kernel (tests/test_posix_loopback.cpp).
//  * Streams are owned by the loop and never freed before it (pointers from
//    dial()/accept stay valid; a closed stream is inert), mirroring
//    Host/Socket lifetime rules.
//  * Edge-triggered EPOLLIN|EPOLLOUT: reads drain until EAGAIN; writes go
//    kernel-first and spill into an internal backlog on short writes, drained
//    on the next EPOLLOUT edge. writable() reports false above a backlog
//    high-water mark and on_writable fires when the backlog fully drains —
//    this is the short-write backpressure that makes the bindings' symmetric
//    pending buffers load-bearing rather than theoretical.
//  * The clock is CLOCK_MONOTONIC microseconds since loop construction, so
//    deadlines arm with the same small numbers as on the simulator.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "net/posix/timer_wheel.h"
#include "net/transport.h"

namespace mbtls::net::posix {

class EpollLoop;

/// One non-blocking TCP connection (see net/transport.h for the contract).
class TcpStream final : public Stream {
 public:
  ~TcpStream() override;

  void send(ByteView data) override;
  void close() override;
  void reset() override;

  bool established() const override { return state_ == State::kEstablished; }
  bool closed() const override { return state_ == State::kClosed; }
  bool writable() const override {
    return state_ != State::kClosed && !fin_queued_ && backlog() < kHighWater;
  }
  SocketError error() const override { return error_; }

  /// Unwritten bytes queued behind a short write (0 in steady state).
  std::size_t backlog() const { return out_.size() - out_off_; }

  static constexpr std::size_t kHighWater = 256 * 1024;

 private:
  friend class EpollLoop;

  enum class State { kConnecting, kEstablished, kFinWait, kClosed };

  TcpStream(EpollLoop& loop, int fd, State state) : loop_(loop), fd_(fd), state_(state) {}

  void handle_events(std::uint32_t events);
  void handle_readable();
  void complete_connect();
  void try_flush_out();
  void fail(SocketError err);
  void become_closed();

  EpollLoop& loop_;
  int fd_;
  State state_;
  Bytes out_;                 // backlog after short writes
  std::size_t out_off_ = 0;   // consumed prefix of out_
  bool fin_queued_ = false;
  bool fin_sent_ = false;
  bool had_backlog_ = false;  // a drain-to-empty should fire on_writable
  SocketError error_ = SocketError::kNone;
};

/// The epoll Transport/Scheduler backend. Single-threaded; see file header.
class EpollLoop final : public Transport, public Scheduler {
 public:
  EpollLoop();
  ~EpollLoop() override;
  EpollLoop(const EpollLoop&) = delete;
  EpollLoop& operator=(const EpollLoop&) = delete;

  // Transport seam. `Endpoint::address` (default "127.0.0.1") + port address
  // the peer; `Endpoint::node` is ignored on this backend. listen_stream(0)
  // binds an ephemeral port and returns it.
  Stream& dial(const Endpoint& remote) override;
  Port listen_stream(Port port, StreamHandler on_accept) override {
    return listen_stream(port, std::move(on_accept), /*reuse_port=*/false);
  }
  Scheduler& scheduler() override { return *this; }

  /// Listener with SO_REUSEPORT: several loops (one per thread) bind the
  /// same port and the kernel shards incoming connections across them by
  /// 4-tuple hash — no user-space handoff, no shared accept lock. This is
  /// how LoopGroup scales accepts across cores.
  Port listen_stream(Port port, StreamHandler on_accept, bool reuse_port);

  /// Thread-safe: run `fn` on this loop's thread during its next dispatch
  /// round, waking the loop via eventfd if it is blocked in epoll_wait.
  /// The only EpollLoop entry point that may be called from another thread
  /// (everything else — dial, listen, send — stays loop-thread-only).
  /// Posted work counts against idle(): a loop with queued posts is not
  /// drained.
  void post(std::function<void()> fn);

  // Scheduler seam: CLOCK_MONOTONIC microseconds since construction.
  Time now() const override;
  void schedule(Time delay, std::function<void()> fn) override;

  /// Run until every stream is closed and every timer fired (listeners do
  /// not keep the loop alive), or `max_rounds` dispatch rounds elapse.
  RunStatus run(std::size_t max_rounds = 10'000'000);

  /// Run until `deadline` on this loop's clock (or idle / budget).
  RunStatus run_until(Time deadline, std::size_t max_rounds = 10'000'000);

  /// One dispatch round: advance timers, wait up to `max_wait` for socket
  /// readiness, dispatch, advance timers again. Returns true if any timer
  /// fired or event dispatched. `max_wait == 0` polls without blocking —
  /// how a driver interleaves several loops on one thread.
  bool poll_once(Time max_wait = 0);

  /// No open streams, no pending timers, no queued posts.
  bool idle() const;

  /// Currently open (not yet closed) streams. Safe from any thread: backed
  /// by a relaxed atomic kept by adopt()/become_closed(), which is what lets
  /// LoopGroup's least-sessions dial policy read sibling loops' load.
  std::size_t open_streams() const { return open_count_.load(std::memory_order_relaxed); }

 private:
  friend class TcpStream;

  struct Listener {
    EpollLoop* loop = nullptr;
    int fd = -1;
    Port port = 0;
    StreamHandler on_accept;
  };

  TcpStream& adopt(int fd, TcpStream::State state);
  void handle_accept(Listener& listener);
  void deregister(int fd);
  void drain_posted();

  int epfd_ = -1;
  int wake_fd_ = -1;  // eventfd; written by post(), drained by poll_once()
  std::uint64_t t0_ns_ = 0;
  TimerWheel wheel_;
  std::vector<std::unique_ptr<TcpStream>> streams_;
  std::vector<std::unique_ptr<Listener>> listeners_;
  std::atomic<std::size_t> open_count_{0};

  // Cross-thread post queue. The mutex guards only the vector swap; posted
  // callbacks run unlocked on the loop thread.
  mutable std::mutex posted_mu_;
  std::vector<std::function<void()>> posted_;
  std::atomic<std::size_t> posted_pending_{0};
};

}  // namespace mbtls::net::posix
