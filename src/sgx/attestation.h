// Simulated Intel attestation service: a process-wide ECDSA key that signs
// quotes, with the public half available to verifiers (as Intel publishes
// its attestation root).
#pragma once

#include "ec/ecdsa.h"
#include "util/bytes.h"

namespace mbtls::sgx {

/// The attestation service's public key (verifiers embed this, like Intel's
/// attestation root certificate).
const ec::AffinePoint& attestation_service_public_key();

/// Sign (measurement || report_data). Only callable from the enclave
/// implementation — attackers in our harness never touch this directly, they
/// can only replay quotes they observed.
Bytes attestation_service_sign(ByteView measurement, ByteView report_data);

/// Verify a quote's signature and optionally its expected measurement.
/// `expected_report_data` must match exactly (zero-padded to 64 bytes).
bool verify_quote(ByteView measurement, ByteView report_data, ByteView signature);

}  // namespace mbtls::sgx
