#include "sgx/enclave.h"

#include "crypto/gcm.h"
#include "crypto/hkdf.h"
#include "crypto/sha2.h"
#include "sgx/attestation.h"

namespace mbtls::sgx {

Bytes measure(std::string_view code_identity, ByteView config) {
  crypto::Sha256 h;
  h.update(to_bytes(std::string_view("sgx-measurement:")));
  h.update(to_bytes(code_identity));
  h.update(config);
  return h.finish();
}

std::optional<Bytes> MemoryStore::get(const std::string& name) const {
  auto it = data_.find(name);
  if (it == data_.end()) return std::nullopt;
  return it->second;
}

void burn_cycles(std::uint64_t iterations) {
  // Data dependency chain the optimizer cannot elide.
  volatile std::uint64_t sink = 0x9e3779b97f4a7c15ULL;
  std::uint64_t x = sink;
  for (std::uint64_t i = 0; i < iterations; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
  }
  sink = x;
}

// ------------------------------------------------------------------ Enclave

Enclave::Enclave(Platform& platform, std::string code_identity, ByteView config)
    : platform_(platform),
      code_identity_(std::move(code_identity)),
      measurement_(measure(code_identity_, config)) {
  // Sealing key = KDF(platform sealing root, measurement): same code on the
  // same CPU gets the same key; different code or CPU gets a different one.
  sealing_key_ = crypto::hkdf(crypto::HashAlgo::kSha256, platform_.sealing_root_, measurement_,
                              to_bytes(std::string_view("sgx-seal")), 32);
}

void Enclave::enter() {
  transitions_.fetch_add(1, std::memory_order_relaxed);
  burn_cycles(platform_.transition_cost_);
}

void Enclave::leave() {
  transitions_.fetch_add(1, std::memory_order_relaxed);
  burn_cycles(platform_.transition_cost_);
}

Enclave::QuoteData Enclave::quote(ByteView report_data) const {
  QuoteData q;
  q.measurement = measurement_;
  q.report_data = to_bytes(report_data);
  q.report_data.resize(64, 0);
  q.signature = attestation_service_sign(q.measurement, q.report_data);
  return q;
}

Bytes Enclave::QuoteData::encode() const {
  Bytes out;
  put_u16(out, static_cast<std::uint16_t>(measurement.size()));
  append(out, measurement);
  put_u16(out, static_cast<std::uint16_t>(report_data.size()));
  append(out, report_data);
  put_u16(out, static_cast<std::uint16_t>(signature.size()));
  append(out, signature);
  return out;
}

std::optional<Enclave::QuoteData> Enclave::QuoteData::decode(ByteView wire) {
  try {
    QuoteData q;
    std::size_t off = 0;
    auto read_vec = [&](Bytes& out) {
      const std::uint16_t len = get_u16(wire, off);
      off += 2;
      out = to_bytes(slice(wire, off, len));
      off += len;
    };
    read_vec(q.measurement);
    read_vec(q.report_data);
    read_vec(q.signature);
    if (off != wire.size()) return std::nullopt;
    return q;
  } catch (const std::out_of_range&) {
    return std::nullopt;
  }
}

Bytes Enclave::seal(ByteView plaintext) {
  const crypto::AesGcm gcm(sealing_key_);
  // Unique IV per seal operation: 4 zero bytes + 64-bit counter.
  Bytes iv(4, 0);
  put_u64(iv, seal_counter_++);
  const Bytes sealed = gcm.seal(iv, measurement_, plaintext);
  return concat({iv, sealed});
}

std::optional<Bytes> Enclave::unseal(ByteView sealed) const {
  if (sealed.size() < 12) return std::nullopt;
  const crypto::AesGcm gcm(sealing_key_);
  return gcm.open(sealed.first(12), measurement_, sealed.subspan(12));
}

// ----------------------------------------------------------------- Platform

Platform::Platform(std::uint64_t platform_seed) : rng_("sgx-platform", platform_seed) {
  memory_encryption_key_ = rng_.bytes(32);
  sealing_root_ = rng_.bytes(32);
}

Enclave& Platform::launch(std::string code_identity, ByteView config) {
  enclaves_.push_back(
      std::unique_ptr<Enclave>(new Enclave(*this, std::move(code_identity), config)));
  return *enclaves_.back();
}

std::vector<MemoryRegionView> Platform::adversary_memory_view() const {
  std::vector<MemoryRegionView> view;
  for (const auto& [name, value] : untrusted_.raw()) {
    view.push_back({name, false, value});
  }
  const crypto::AesGcm mee(memory_encryption_key_);
  std::uint64_t page = 0;
  for (const auto& enclave : enclaves_) {
    for (const auto& [name, value] : enclave->memory().raw()) {
      // The memory-encryption engine: the adversary sees only ciphertext.
      Bytes iv(12, 0);
      iv[0] = static_cast<std::uint8_t>(page >> 8);
      iv[1] = static_cast<std::uint8_t>(page);
      ++page;
      view.push_back({enclave->code_identity() + "/" + name, true, mee.seal(iv, {}, value)});
    }
  }
  return view;
}

std::vector<std::string> Platform::adversary_find_secret(ByteView needle) const {
  std::vector<std::string> hits;
  if (needle.empty()) return hits;
  for (const auto& region : adversary_memory_view()) {
    const auto& hay = region.contents;
    if (hay.size() < needle.size()) continue;
    for (std::size_t i = 0; i + needle.size() <= hay.size(); ++i) {
      if (std::equal(needle.begin(), needle.end(), hay.begin() + static_cast<std::ptrdiff_t>(i))) {
        hits.push_back(region.name);
        break;
      }
    }
  }
  return hits;
}

std::uint64_t Platform::total_transitions() const {
  std::uint64_t total = 0;
  for (const auto& e : enclaves_) total += e->transitions();
  return total;
}

}  // namespace mbtls::sgx
