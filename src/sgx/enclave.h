// Simulated Intel SGX: secure execution environments with protected memory,
// code measurement, sealing, remote attestation, and ECALL transition
// accounting.
//
// Substitution notes (see DESIGN.md): the paper runs its middlebox TLS stack
// inside real SGX enclaves. This simulation preserves the two properties the
// protocol depends on, in an *executable* way:
//
//  1. Memory isolation. Every byte a program stores lives in a MemoryStore.
//     The Platform (the middlebox infrastructure provider's machine) exposes
//     an adversary view: untrusted stores are readable in plaintext, enclave
//     stores only as AES-GCM ciphertext under a per-CPU key the adversary
//     does not hold. The Table-1 attack "MIP reads session keys from RAM"
//     actually executes against this view.
//
//  2. Remote attestation. Only an Enclave can mint a Quote; quotes are
//     ECDSA-signed by the simulated Intel attestation service key over
//     (measurement || report_data), so a verifier learns what code runs in
//     the enclave and can bind the quote to a handshake transcript.
//
//  3. Transition cost. ECALL/OCALL boundary crossings burn a calibrated
//     amount of CPU, so the Figure-7 throughput experiment exercises a real
//     overhead rather than a constant.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "crypto/drbg.h"
#include "util/bytes.h"

namespace mbtls::sgx {

/// A code measurement (analog of MRENCLAVE): SHA-256 of the code identity
/// string and configuration.
Bytes measure(std::string_view code_identity, ByteView config = {});

/// Named byte storage. Programs keep secrets (keys, plaintext buffers) in a
/// MemoryStore so the adversary view in Platform is meaningful.
///
/// NOT thread-safe: MemoryStore belongs to the handshake/control plane,
/// which is single-threaded. The multi-core data plane never touches it —
/// workers hold their sessions' hop keys inside per-session HopDuplex state
/// (see mbtls::mb::ReprotectPipeline).
class MemoryStore {
 public:
  void put(std::string name, Bytes value) { data_[std::move(name)] = std::move(value); }
  std::optional<Bytes> get(const std::string& name) const;
  void erase(const std::string& name) { data_.erase(name); }
  const std::map<std::string, Bytes>& raw() const { return data_; }

 private:
  std::map<std::string, Bytes> data_;
};

class Platform;

class Enclave {
 public:
  const Bytes& measurement() const { return measurement_; }
  const std::string& code_identity() const { return code_identity_; }

  /// Protected memory: contents visible to code "inside" the enclave,
  /// ciphertext-only to the platform adversary view.
  MemoryStore& memory() { return memory_; }
  const MemoryStore& memory() const { return memory_; }

  /// Execute `f` inside the enclave. Burns the configured transition cost on
  /// entry and exit and counts the crossing. Returns f's result.
  ///
  /// Thread-safety: like real SGX (one TCS per thread), an enclave may be
  /// entered concurrently from multiple data-plane workers; the transition
  /// counters are atomic and burn_cycles is purely local. Enclave *state*
  /// (memory(), seal()) remains single-threaded control-plane territory.
  template <typename F>
  auto ecall(F&& f) {
    enter();
    if constexpr (std::is_void_v<decltype(f())>) {
      f();
      leave();
    } else {
      auto result = f();
      leave();
      return result;
    }
  }

  /// Batched transition (Fig. 7 scaling lever): one ECALL carries `records`
  /// records' worth of work, so the fixed boundary-crossing cost is paid
  /// once per batch instead of once per record. The amortization Knauth et
  /// al. identify as the key SGX+TLS throughput lever is exactly this call
  /// replacing a loop of ecall()s.
  template <typename F>
  auto ecall_batch(std::size_t records, F&& f) {
    batch_ecalls_.fetch_add(1, std::memory_order_relaxed);
    batched_records_.fetch_add(records, std::memory_order_relaxed);
    return ecall(std::forward<F>(f));
  }

  /// Produce an attestation quote binding this enclave's measurement to
  /// `report_data` (at most 64 bytes, zero-padded).
  struct QuoteData {
    Bytes measurement;
    Bytes report_data;  // 64 bytes
    Bytes signature;    // Intel attestation service ECDSA over the above

    Bytes encode() const;
    static std::optional<QuoteData> decode(ByteView wire);
  };
  QuoteData quote(ByteView report_data) const;

  /// Sealing: AES-GCM under a key derived from (CPU sealing key,
  /// measurement); only the same enclave code on the same platform unseals.
  Bytes seal(ByteView plaintext);
  std::optional<Bytes> unseal(ByteView sealed) const;

  std::uint64_t transitions() const { return transitions_.load(std::memory_order_relaxed); }
  /// Number of ecall_batch() crossings and the records they carried.
  std::uint64_t batch_ecalls() const { return batch_ecalls_.load(std::memory_order_relaxed); }
  std::uint64_t batched_records() const {
    return batched_records_.load(std::memory_order_relaxed);
  }

 private:
  friend class Platform;
  Enclave(Platform& platform, std::string code_identity, ByteView config);

  void enter();
  void leave();

  Platform& platform_;
  std::string code_identity_;
  Bytes measurement_;
  MemoryStore memory_;
  Bytes sealing_key_;
  std::atomic<std::uint64_t> transitions_{0};
  std::atomic<std::uint64_t> batch_ecalls_{0};
  std::atomic<std::uint64_t> batched_records_{0};
  std::uint64_t seal_counter_ = 0;
};

/// The adversary's (MIP's) view of one memory region.
struct MemoryRegionView {
  std::string name;
  bool encrypted;  // true for enclave pages
  Bytes contents;  // plaintext if !encrypted, AES-GCM ciphertext otherwise
};

/// A machine owned by the middlebox infrastructure provider. Hosts enclaves
/// and untrusted memory; provides the adversary view used by the attack
/// harness.
class Platform {
 public:
  /// `platform_seed` models the per-CPU secrets (sealing/encryption keys).
  explicit Platform(std::uint64_t platform_seed = 0);

  /// Launch an enclave running the given code. The returned reference lives
  /// as long as the platform.
  Enclave& launch(std::string code_identity, ByteView config = {});

  /// Untrusted (regular) memory on this machine.
  MemoryStore& untrusted_memory() { return untrusted_; }

  /// Cost burned on each enclave boundary crossing, in calibration-loop
  /// iterations (~cycles). Default approximates published SGX transition
  /// costs (~8000 cycles).
  void set_transition_cost(std::uint64_t iterations) { transition_cost_ = iterations; }
  std::uint64_t transition_cost() const { return transition_cost_; }

  /// ADVERSARY VIEW: everything a malicious operator can read off this
  /// machine. Untrusted memory appears in plaintext; enclave memory is
  /// encrypted by the (simulated) memory-encryption engine.
  std::vector<MemoryRegionView> adversary_memory_view() const;

  /// Convenience for attack code: search the adversary view for a byte
  /// pattern (e.g. a session key). Returns the region names that contain it.
  std::vector<std::string> adversary_find_secret(ByteView needle) const;

  std::uint64_t total_transitions() const;

 private:
  friend class Enclave;

  Bytes memory_encryption_key_;  // MEE key: never exposed via adversary view
  Bytes sealing_root_;
  std::uint64_t transition_cost_ = 8000;
  MemoryStore untrusted_;
  std::vector<std::unique_ptr<Enclave>> enclaves_;
  crypto::Drbg rng_;
};

/// Burn `iterations` of calibrated work (models enclave-transition cost).
void burn_cycles(std::uint64_t iterations);

}  // namespace mbtls::sgx
