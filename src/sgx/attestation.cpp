#include "sgx/attestation.h"

#include "crypto/sha2.h"

namespace mbtls::sgx {

namespace {

const ec::EcdsaKeyPair& service_key() {
  static const ec::EcdsaKeyPair key = [] {
    crypto::Drbg rng("intel-attestation-service", 0);
    return ec::ecdsa_generate(rng);
  }();
  return key;
}

Bytes quote_message(ByteView measurement, ByteView report_data) {
  Bytes msg = to_bytes(std::string_view("sgx-quote:"));
  append(msg, measurement);
  append(msg, report_data);
  return msg;
}

}  // namespace

const ec::AffinePoint& attestation_service_public_key() { return service_key().public_key; }

Bytes attestation_service_sign(ByteView measurement, ByteView report_data) {
  // Deterministic ECDSA in the spirit of RFC 6979: the nonce is derived from
  // the private key and the message, so it is unpredictable to outsiders but
  // reproducible across runs.
  Bytes k_seed = service_key().private_key.to_bytes();
  append(k_seed, quote_message(measurement, report_data));
  crypto::Drbg k_rng(k_seed);
  return ec::ecdsa_sign(service_key(), crypto::HashAlgo::kSha256,
                        quote_message(measurement, report_data), k_rng);
}

bool verify_quote(ByteView measurement, ByteView report_data, ByteView signature) {
  return ec::ecdsa_verify(attestation_service_public_key(), crypto::HashAlgo::kSha256,
                          quote_message(measurement, report_data), signature);
}

}  // namespace mbtls::sgx
