#include "x509/verify.h"

namespace mbtls::x509 {

const char* to_string(VerifyStatus s) {
  switch (s) {
    case VerifyStatus::kOk: return "ok";
    case VerifyStatus::kEmptyChain: return "empty chain";
    case VerifyStatus::kExpired: return "certificate expired";
    case VerifyStatus::kNotYetValid: return "certificate not yet valid";
    case VerifyStatus::kBadSignature: return "bad signature";
    case VerifyStatus::kUnknownIssuer: return "unknown issuer";
    case VerifyStatus::kIssuerNotCa: return "issuer is not a CA";
    case VerifyStatus::kHostnameMismatch: return "hostname mismatch";
  }
  return "unknown";
}

VerifyStatus verify_chain(std::span<const Certificate> chain,
                          std::span<const Certificate> trust_anchors,
                          const VerifyOptions& options) {
  std::vector<const Certificate*> ptrs;
  ptrs.reserve(chain.size());
  for (const auto& cert : chain) ptrs.push_back(&cert);
  return verify_chain(ptrs, trust_anchors, options);
}

VerifyStatus verify_chain(std::span<const Certificate* const> chain,
                          std::span<const Certificate> trust_anchors,
                          const VerifyOptions& options) {
  if (chain.empty()) return VerifyStatus::kEmptyChain;

  for (const auto* cert : chain) {
    if (options.now < cert->info().not_before) return VerifyStatus::kNotYetValid;
    if (options.now > cert->info().not_after) return VerifyStatus::kExpired;
  }

  if (!options.hostname.empty() && !chain[0]->matches_hostname(options.hostname))
    return VerifyStatus::kHostnameMismatch;

  for (std::size_t i = 0; i < chain.size(); ++i) {
    const Certificate& cert = *chain[i];
    if (i + 1 < chain.size()) {
      const Certificate& issuer = *chain[i + 1];
      if (!issuer.info().is_ca) return VerifyStatus::kIssuerNotCa;
      if (issuer.info().subject_cn != cert.info().issuer_cn) return VerifyStatus::kUnknownIssuer;
      if (!cert.verify_signature(issuer.info().key)) return VerifyStatus::kBadSignature;
      continue;
    }
    // Last element: must be signed by (or be) a trust anchor.
    bool anchored = false;
    for (const auto& anchor : trust_anchors) {
      if (anchor.info().subject_cn != cert.info().issuer_cn) continue;
      if (!anchor.info().is_ca) continue;
      if (cert.verify_signature(anchor.info().key)) {
        anchored = true;
        break;
      }
      return VerifyStatus::kBadSignature;
    }
    if (!anchored) return VerifyStatus::kUnknownIssuer;
  }
  return VerifyStatus::kOk;
}

}  // namespace mbtls::x509
