#include "x509/keys.h"

#include "asn1/der.h"
#include "ec/ecdh.h"

namespace mbtls::x509 {

namespace {
constexpr std::string_view kOidRsaEncryption = "1.2.840.113549.1.1.1";
constexpr std::string_view kOidEcPublicKey = "1.2.840.10045.2.1";
constexpr std::string_view kOidPrime256v1 = "1.2.840.10045.3.1.7";
}  // namespace

Bytes PublicKey::spki_der() const {
  using namespace asn1;
  if (type_ == KeyType::kRsa) {
    const Bytes alg = encode_sequence({encode_oid(kOidRsaEncryption), encode_null()});
    const Bytes pub_der =
        encode_sequence({encode_integer(rsa_.n), encode_integer(rsa_.e)});
    return encode_sequence({alg, encode_bit_string(pub_der)});
  }
  const Bytes alg =
      encode_sequence({encode_oid(kOidEcPublicKey), encode_oid(kOidPrime256v1)});
  const Bytes point = ec::P256::instance().encode_point(ec_);
  return encode_sequence({alg, encode_bit_string(point)});
}

std::optional<PublicKey> PublicKey::from_spki(ByteView der) {
  try {
    asn1::Parser p(der);
    asn1::Parser spki = p.sequence();
    p.expect_end();
    asn1::Parser alg = spki.sequence();
    const std::string oid = alg.oid();
    if (oid == kOidRsaEncryption) {
      alg.null();
      alg.expect_end();
      const Bytes spki_bits = spki.bit_string();
      spki.expect_end();
      asn1::Parser kp(spki_bits);
      asn1::Parser seq = kp.sequence();
      kp.expect_end();
      rsa::RsaPublicKey pub;
      pub.n = seq.integer();
      pub.e = seq.integer();
      seq.expect_end();
      return PublicKey(std::move(pub));
    }
    if (oid == kOidEcPublicKey) {
      if (alg.oid() != kOidPrime256v1) return std::nullopt;
      alg.expect_end();
      const Bytes point_bytes = spki.bit_string();
      spki.expect_end();
      const auto point = ec::P256::instance().decode_point(point_bytes);
      if (!point) return std::nullopt;
      return PublicKey(*point);
    }
    return std::nullopt;
  } catch (const DecodeError&) {
    return std::nullopt;
  }
}

bool PublicKey::verify(crypto::HashAlgo algo, ByteView message, ByteView signature) const {
  if (type_ == KeyType::kRsa) return rsa::rsa_verify(rsa_, algo, message, signature);
  const auto raw = ecdsa_sig_from_der(signature);
  if (!raw) return false;
  return ec::ecdsa_verify(ec_, algo, message, *raw);
}

PrivateKey PrivateKey::generate(KeyType type, crypto::Drbg& rng, std::size_t rsa_bits) {
  if (type == KeyType::kRsa) return PrivateKey(rsa::rsa_generate(rsa_bits, rng));
  return PrivateKey(ec::ecdsa_generate(rng));
}

PublicKey PrivateKey::public_key() const {
  if (type_ == KeyType::kRsa) return PublicKey(rsa_.pub);
  return PublicKey(ec_.public_key);
}

Bytes PrivateKey::sign(crypto::HashAlgo algo, ByteView message, crypto::Drbg& rng) const {
  if (type_ == KeyType::kRsa) return rsa::rsa_sign(rsa_, algo, message);
  return ecdsa_sig_to_der(ec::ecdsa_sign(ec_, algo, message, rng));
}

Bytes ecdsa_sig_to_der(ByteView raw64) {
  if (raw64.size() != 64) throw std::invalid_argument("raw ECDSA signature must be 64 bytes");
  const bn::BigInt r = bn::BigInt::from_bytes(raw64.first(32));
  const bn::BigInt s = bn::BigInt::from_bytes(raw64.subspan(32));
  return asn1::encode_sequence({asn1::encode_integer(r), asn1::encode_integer(s)});
}

std::optional<Bytes> ecdsa_sig_from_der(ByteView der) {
  try {
    asn1::Parser p(der);
    asn1::Parser seq = p.sequence();
    p.expect_end();
    const bn::BigInt r = seq.integer();
    const bn::BigInt s = seq.integer();
    seq.expect_end();
    if (r.byte_length() > 32 || s.byte_length() > 32) return std::nullopt;
    return concat({r.to_bytes(32), s.to_bytes(32)});
  } catch (const DecodeError&) {
    return std::nullopt;
  }
}

}  // namespace mbtls::x509
