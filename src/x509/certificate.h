// X.509 v3 certificates: a real DER encoding of the fields the TLS stack
// needs (serial, issuer/subject CN, validity, SPKI, basicConstraints and
// subjectAltName extensions), plus a CA abstraction for issuing them.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "crypto/drbg.h"
#include "crypto/sha2.h"
#include "x509/keys.h"

namespace mbtls::x509 {

/// Parsed certificate contents.
struct CertificateInfo {
  bn::BigInt serial;
  std::string issuer_cn;
  std::string subject_cn;
  std::vector<std::string> san_dns;
  std::int64_t not_before = 0;
  std::int64_t not_after = 0;
  bool is_ca = false;
  PublicKey key;
};

class Certificate {
 public:
  Certificate() = default;

  /// Parse a DER certificate; throws DecodeError on malformed input.
  static Certificate parse(ByteView der);

  const CertificateInfo& info() const { return info_; }
  ByteView der() const { return der_; }

  /// Verify this certificate's signature with the issuer's public key.
  bool verify_signature(const PublicKey& issuer_key) const;

  /// Hostname check against subject CN and dNSName SANs, with single-label
  /// left-most wildcard support ("*.example.com").
  bool matches_hostname(std::string_view host) const;

  bool valid_at(std::int64_t unix_seconds) const {
    return unix_seconds >= info_.not_before && unix_seconds <= info_.not_after;
  }

 private:
  Bytes der_;
  Bytes tbs_der_;  // the signed portion
  Bytes signature_;
  std::string sig_oid_;
  CertificateInfo info_;
};

/// Fields for issuing a certificate.
struct CertRequest {
  std::string subject_cn;
  std::vector<std::string> san_dns;
  std::int64_t not_before = 0;
  std::int64_t not_after = 0;
  bool is_ca = false;
  PublicKey key;
};

/// Build and sign a certificate. `issuer_cn` names the signer; for
/// self-signed roots it equals the subject CN.
Certificate issue_certificate(const CertRequest& req, std::string_view issuer_cn,
                              const PrivateKey& issuer_key, crypto::HashAlgo algo,
                              const bn::BigInt& serial, crypto::Drbg& rng);

/// A certificate authority: a self-signed root plus an issuing key.
class CertificateAuthority {
 public:
  /// Create a root CA. Validity defaults to a wide window around epoch time
  /// used by the simulations.
  static CertificateAuthority create(std::string name, KeyType type, crypto::Drbg& rng,
                                     std::int64_t not_before = 0,
                                     std::int64_t not_after = 2524607999 /* 2049-12-31, the UTCTime limit */);

  const Certificate& root() const { return root_; }
  const PrivateKey& key() const { return key_; }
  const std::string& name() const { return name_; }

  /// Issue an end-entity (or intermediate, if req.is_ca) certificate.
  Certificate issue(const CertRequest& req, crypto::Drbg& rng) const;

 private:
  std::string name_;
  PrivateKey key_;
  Certificate root_;
  mutable std::uint64_t next_serial_ = 2;
};

}  // namespace mbtls::x509
