// Public/private key abstraction over the two key types the TLS stack
// supports (RSA and ECDSA-P256), with SubjectPublicKeyInfo (SPKI) DER
// encoding and TLS-style signatures.
#pragma once

#include <optional>
#include <string>

#include "crypto/drbg.h"
#include "crypto/sha2.h"
#include "ec/ecdsa.h"
#include "rsa/rsa.h"
#include "util/bytes.h"

namespace mbtls::x509 {

enum class KeyType : std::uint8_t {
  kRsa = 1,
  kEcdsaP256 = 3,  // values match the TLS SignatureAlgorithm registry
};

class PublicKey {
 public:
  PublicKey() = default;
  explicit PublicKey(rsa::RsaPublicKey k) : type_(KeyType::kRsa), rsa_(std::move(k)) {}
  explicit PublicKey(ec::AffinePoint k) : type_(KeyType::kEcdsaP256), ec_(k) {}

  KeyType type() const { return type_; }
  const rsa::RsaPublicKey& rsa() const { return rsa_; }
  const ec::AffinePoint& ec() const { return ec_; }

  /// DER SubjectPublicKeyInfo.
  Bytes spki_der() const;
  static std::optional<PublicKey> from_spki(ByteView der);

  /// Verify a signature as produced by PrivateKey::sign: RSA PKCS#1 v1.5 or
  /// ECDSA (DER-encoded r,s).
  bool verify(crypto::HashAlgo algo, ByteView message, ByteView signature) const;

 private:
  KeyType type_ = KeyType::kRsa;
  rsa::RsaPublicKey rsa_;
  ec::AffinePoint ec_;
};

class PrivateKey {
 public:
  PrivateKey() = default;
  explicit PrivateKey(rsa::RsaKeyPair k) : type_(KeyType::kRsa), rsa_(std::move(k)) {}
  explicit PrivateKey(ec::EcdsaKeyPair k) : type_(KeyType::kEcdsaP256), ec_(k) {}

  /// Generate a key of the given type. RSA uses 2048-bit moduli.
  static PrivateKey generate(KeyType type, crypto::Drbg& rng, std::size_t rsa_bits = 2048);

  KeyType type() const { return type_; }
  const rsa::RsaKeyPair& rsa() const { return rsa_; }
  const ec::EcdsaKeyPair& ec() const { return ec_; }

  PublicKey public_key() const;

  /// Sign a message; the encoding depends on key type (RSA PKCS#1 v1.5
  /// raw modulus-size bytes, ECDSA DER SEQUENCE{r, s}).
  Bytes sign(crypto::HashAlgo algo, ByteView message, crypto::Drbg& rng) const;

 private:
  KeyType type_ = KeyType::kRsa;
  rsa::RsaKeyPair rsa_;
  ec::EcdsaKeyPair ec_;
};

/// DER-encode / decode an ECDSA raw (r || s) signature as SEQUENCE{r, s}.
Bytes ecdsa_sig_to_der(ByteView raw64);
std::optional<Bytes> ecdsa_sig_from_der(ByteView der);

}  // namespace mbtls::x509
