#include "x509/certificate.h"

#include <stdexcept>

#include "asn1/der.h"

namespace mbtls::x509 {

namespace {

constexpr std::string_view kOidCommonName = "2.5.4.3";
constexpr std::string_view kOidBasicConstraints = "2.5.29.19";
constexpr std::string_view kOidSubjectAltName = "2.5.29.17";
constexpr std::string_view kOidSha256Rsa = "1.2.840.113549.1.1.11";
constexpr std::string_view kOidSha384Rsa = "1.2.840.113549.1.1.12";
constexpr std::string_view kOidEcdsaSha256 = "1.2.840.10045.4.3.2";
constexpr std::string_view kOidEcdsaSha384 = "1.2.840.10045.4.3.3";

// GeneralName dNSName = context-specific primitive tag [2].
constexpr std::uint8_t kDnsNameTag = 0x82;

Bytes encode_name(std::string_view cn) {
  using namespace asn1;
  // Name ::= RDNSequence; single RDN with a single CN attribute.
  const Bytes attr = encode_sequence({encode_oid(kOidCommonName), encode_utf8_string(cn)});
  return encode_sequence({encode_set({attr})});
}

std::string parse_name_cn(asn1::Parser& outer) {
  asn1::Parser name = outer.sequence();
  std::string cn;
  while (!name.empty()) {
    asn1::Parser rdn = name.set();
    while (!rdn.empty()) {
      // AttributeTypeAndValue ::= SEQUENCE { type OID, value ANY }
      asn1::Parser attr = rdn.sequence();
      const std::string oid = attr.oid();
      const std::string value = attr.string();
      attr.expect_end();
      if (oid == kOidCommonName) cn = value;
    }
    rdn.expect_end();
  }
  name.expect_end();
  return cn;
}

std::string sig_oid_for(KeyType type, crypto::HashAlgo algo) {
  if (type == KeyType::kRsa) {
    return std::string(algo == crypto::HashAlgo::kSha384 ? kOidSha384Rsa : kOidSha256Rsa);
  }
  return std::string(algo == crypto::HashAlgo::kSha384 ? kOidEcdsaSha384 : kOidEcdsaSha256);
}

Bytes encode_sig_algorithm(KeyType type, crypto::HashAlgo algo) {
  using namespace asn1;
  if (type == KeyType::kRsa)
    return encode_sequence({encode_oid(sig_oid_for(type, algo)), encode_null()});
  return encode_sequence({encode_oid(sig_oid_for(type, algo))});
}

crypto::HashAlgo hash_for_sig_oid(const std::string& oid) {
  if (oid == kOidSha256Rsa || oid == kOidEcdsaSha256) return crypto::HashAlgo::kSha256;
  if (oid == kOidSha384Rsa || oid == kOidEcdsaSha384) return crypto::HashAlgo::kSha384;
  throw DecodeError("unknown signature algorithm OID");
}

}  // namespace

Certificate Certificate::parse(ByteView der) {
  Certificate cert;
  cert.der_ = to_bytes(der);

  asn1::Parser top(cert.der_);
  asn1::Parser outer = top.sequence();
  top.expect_end();

  // Capture the raw TBS bytes (tag + length + content) for signature checks.
  {
    asn1::Parser probe(outer);  // copy  // lint: partial-read (peeks the first TLV only)
    // Re-parse manually: the TBS element is the first element of the outer
    // sequence; Element gives us only the content, so re-encode it.
    // Simpler: find content then rebuild the TLV.
    asn1::Element tbs_elem = probe.any();
    cert.tbs_der_ = asn1::tlv(tbs_elem.tag, tbs_elem.content);
  }

  asn1::Parser tbs = outer.sequence();
  {
    // AlgorithmIdentifier: trailing parameters (NULL for RSA) are ignored.
    asn1::Parser sig_alg = outer.sequence();  // lint: partial-read
    cert.sig_oid_ = sig_alg.oid();
  }
  cert.signature_ = outer.bit_string();
  outer.expect_end();

  // --- TBS body ---
  // [0] version (optional, we expect v3)
  if (tbs.peek_tag() == asn1::context_tag(0)) {
    asn1::Parser version = tbs.context(0);
    version.integer();  // 2 = v3; tolerated but unchecked beyond well-formedness
    version.expect_end();
  }
  cert.info_.serial = tbs.integer();
  {
    // Repeated AlgorithmIdentifier; parameters ignored as above.
    asn1::Parser inner_alg = tbs.sequence();  // lint: partial-read
    inner_alg.oid();
  }
  cert.info_.issuer_cn = parse_name_cn(tbs);
  {
    asn1::Parser validity = tbs.sequence();
    cert.info_.not_before = validity.utc_time();
    cert.info_.not_after = validity.utc_time();
    validity.expect_end();
  }
  cert.info_.subject_cn = parse_name_cn(tbs);
  {
    asn1::Element spki = tbs.any();
    const Bytes spki_der = asn1::tlv(spki.tag, spki.content);
    const auto key = PublicKey::from_spki(spki_der);
    if (!key) throw DecodeError("unsupported SubjectPublicKeyInfo");
    cert.info_.key = *key;
  }
  // [3] extensions (optional)
  if (!tbs.empty() && tbs.peek_tag() == asn1::context_tag(3)) {
    asn1::Parser ext_wrapper = tbs.context(3);
    asn1::Parser exts = ext_wrapper.sequence();
    ext_wrapper.expect_end();
    while (!exts.empty()) {
      // Extension ::= SEQUENCE { extnID, critical DEFAULT FALSE, extnValue }
      asn1::Parser ext = exts.sequence();
      const std::string oid = ext.oid();
      bool critical = false;
      if (ext.peek_tag() == static_cast<std::uint8_t>(asn1::Tag::kBoolean)) {
        critical = ext.boolean();
      }
      (void)critical;
      const ByteView value = ext.octet_string();
      ext.expect_end();
      if (oid == kOidBasicConstraints) {
        asn1::Parser bc(value);
        // BasicConstraints: a trailing pathLenConstraint may follow the
        // cA flag; we take the flag and ignore the rest.
        asn1::Parser seq = bc.sequence();  // lint: partial-read
        bc.expect_end();
        if (!seq.empty()) cert.info_.is_ca = seq.boolean();
      } else if (oid == kOidSubjectAltName) {
        asn1::Parser san(value);
        asn1::Parser names = san.sequence();
        san.expect_end();
        while (!names.empty()) {
          const asn1::Element name = names.any();
          if (name.tag == kDnsNameTag) cert.info_.san_dns.push_back(to_string(name.content));
        }
        names.expect_end();
      }
    }
    exts.expect_end();
  }
  // TBS trailing fields (issuer/subjectUniqueID) are not produced by this
  // library's issuer and are rejected rather than silently skipped.
  tbs.expect_end();
  return cert;
}

bool Certificate::verify_signature(const PublicKey& issuer_key) const {
  crypto::HashAlgo algo;
  try {
    algo = hash_for_sig_oid(sig_oid_);
  } catch (const DecodeError&) {
    return false;
  }
  return issuer_key.verify(algo, tbs_der_, signature_);
}

namespace {
bool hostname_label_match(std::string_view pattern, std::string_view host) {
  if (pattern == host) return true;
  // Single left-most wildcard label.
  if (pattern.size() > 2 && pattern[0] == '*' && pattern[1] == '.') {
    const auto dot = host.find('.');
    if (dot == std::string_view::npos) return false;
    return pattern.substr(2) == host.substr(dot + 1);
  }
  return false;
}
}  // namespace

bool Certificate::matches_hostname(std::string_view host) const {
  if (!info_.san_dns.empty()) {
    for (const auto& san : info_.san_dns) {
      if (hostname_label_match(san, host)) return true;
    }
    return false;  // SANs present: CN is ignored, per modern practice
  }
  return hostname_label_match(info_.subject_cn, host);
}

Certificate issue_certificate(const CertRequest& req, std::string_view issuer_cn,
                              const PrivateKey& issuer_key, crypto::HashAlgo algo,
                              const bn::BigInt& serial, crypto::Drbg& rng) {
  using namespace asn1;
  const Bytes version = encode_context(0, encode_integer(2));  // v3
  const Bytes sig_alg = encode_sig_algorithm(issuer_key.type(), algo);
  const Bytes validity =
      encode_sequence({encode_utc_time(req.not_before), encode_utc_time(req.not_after)});

  Bytes extensions;
  {
    // basicConstraints (critical)
    const Bytes bc_value = req.is_ca ? encode_sequence({encode_boolean(true)})
                                     : encode_sequence({});
    const Bytes bc = encode_sequence({encode_oid(kOidBasicConstraints), encode_boolean(true),
                                      encode_octet_string(bc_value)});
    Bytes ext_list = bc;
    if (!req.san_dns.empty()) {
      Bytes names;
      for (const auto& dns : req.san_dns) append(names, tlv(kDnsNameTag, to_bytes(dns)));
      const Bytes san_value = tlv(Tag::kSequence, names);
      const Bytes san = encode_sequence(
          {encode_oid(kOidSubjectAltName), encode_octet_string(san_value)});
      append(ext_list, san);
    }
    extensions = encode_context(3, tlv(Tag::kSequence, ext_list));
  }

  const Bytes tbs = encode_sequence({
      version,
      encode_integer(serial),
      sig_alg,
      encode_name(issuer_cn),
      validity,
      encode_name(req.subject_cn),
      req.key.spki_der(),
      extensions,
  });

  const Bytes signature = issuer_key.sign(algo, tbs, rng);
  const Bytes cert_der = encode_sequence({tbs, sig_alg, encode_bit_string(signature)});
  return Certificate::parse(cert_der);
}

CertificateAuthority CertificateAuthority::create(std::string name, KeyType type,
                                                  crypto::Drbg& rng, std::int64_t not_before,
                                                  std::int64_t not_after) {
  CertificateAuthority ca;
  ca.name_ = std::move(name);
  ca.key_ = PrivateKey::generate(type, rng);
  CertRequest req;
  req.subject_cn = ca.name_;
  req.not_before = not_before;
  req.not_after = not_after;
  req.is_ca = true;
  req.key = ca.key_.public_key();
  ca.root_ = issue_certificate(req, ca.name_, ca.key_, crypto::HashAlgo::kSha256, bn::BigInt(1),
                               rng);
  return ca;
}

Certificate CertificateAuthority::issue(const CertRequest& req, crypto::Drbg& rng) const {
  return issue_certificate(req, name_, key_, crypto::HashAlgo::kSha256,
                           bn::BigInt(next_serial_++), rng);
}

}  // namespace mbtls::x509
