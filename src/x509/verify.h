// Certificate chain verification against a set of trust anchors.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "x509/certificate.h"

namespace mbtls::x509 {

enum class VerifyStatus {
  kOk,
  kEmptyChain,
  kExpired,
  kNotYetValid,
  kBadSignature,
  kUnknownIssuer,
  kIssuerNotCa,
  kHostnameMismatch,
};

const char* to_string(VerifyStatus s);

struct VerifyOptions {
  std::int64_t now = 0;     // Unix seconds (simulated clock)
  std::string hostname;     // empty = skip hostname check
};

/// Verify `chain` (leaf first) against `trust_anchors`. Every certificate's
/// validity window is checked; each signature is checked against the next
/// certificate in the chain or, for the last element, against a matching
/// trust anchor (matched by issuer CN, then by signature).
VerifyStatus verify_chain(std::span<const Certificate> chain,
                          std::span<const Certificate> trust_anchors,
                          const VerifyOptions& options);

/// Pointer-chain overload for callers holding certificates by reference —
/// the dedup cert pool hands out shared parsed certificates, which cannot
/// form a contiguous Certificate array without copying.
VerifyStatus verify_chain(std::span<const Certificate* const> chain,
                          std::span<const Certificate> trust_anchors,
                          const VerifyOptions& options);

}  // namespace mbtls::x509
