// Finite-field Diffie-Hellman for the DHE_* cipher suites.
//
// Group parameters: the paper's prototype used OpenSSL's built-in groups;
// offline we generate a safe-prime group once per process (deterministic
// seed) and cache it. Group size is configurable; the default favours
// simulation speed while preserving the *relative* cost structure of DHE vs
// ECDHE that Figure 5 reports (DHE was "similar" to ECDHE-RSA).
#pragma once

#include "bignum/bignum.h"
#include "crypto/drbg.h"
#include "util/bytes.h"

namespace mbtls::tls {

struct DhGroup {
  bn::BigInt p;  // safe prime
  bn::BigInt g;  // generator (2)
};

/// Process-wide default group (deterministically generated, cached).
const DhGroup& default_dh_group();

struct DhKeyPair {
  bn::BigInt private_key;
  Bytes public_value;  // big-endian Y = g^x mod p
};

DhKeyPair dh_generate(const DhGroup& group, crypto::Drbg& rng);

/// Shared secret = peer^x mod p, left-padded to the group size.
/// Throws std::invalid_argument on degenerate peer values (0, 1, p-1, >= p).
Bytes dh_shared_secret(const DhGroup& group, const bn::BigInt& private_key,
                       ByteView peer_public);

}  // namespace mbtls::tls
