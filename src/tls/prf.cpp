#include "tls/prf.h"

#include "crypto/hmac.h"
#include "util/hex.h"

namespace mbtls::tls {

Bytes prf(crypto::HashAlgo hash, ByteView secret, std::string_view label, ByteView seed,
          std::size_t length) {
  const Bytes label_seed = concat({to_bytes(label), seed});
  // P_hash(secret, seed): A(0) = seed; A(i) = HMAC(secret, A(i-1));
  // output = HMAC(secret, A(1) || seed) || HMAC(secret, A(2) || seed) || ...
  Bytes out;
  Bytes a = label_seed;
  while (out.size() < length) {
    a = crypto::hmac(hash, secret, a);
    append(out, crypto::hmac(hash, secret, concat({a, label_seed})));
  }
  out.resize(length);
  return out;
}

Bytes derive_master_secret(crypto::HashAlgo hash, ByteView pre_master, ByteView client_random,
                           ByteView server_random) {
  return prf(hash, pre_master, "master secret", concat({client_random, server_random}), 48);
}

KeyBlock derive_key_block(crypto::HashAlgo hash, ByteView master_secret, ByteView client_random,
                          ByteView server_random, std::size_t key_len) {
  constexpr std::size_t kFixedIvLen = 4;
  const Bytes block = prf(hash, master_secret, "key expansion",
                          concat({server_random, client_random}), 2 * (key_len + kFixedIvLen));
  KeyBlock keys;
  std::size_t off = 0;
  auto take = [&](std::size_t n) {
    Bytes part(block.begin() + static_cast<std::ptrdiff_t>(off),
               block.begin() + static_cast<std::ptrdiff_t>(off + n));
    off += n;
    return part;
  };
  keys.client_write.key = take(key_len);
  keys.server_write.key = take(key_len);
  keys.client_write.fixed_iv = take(kFixedIvLen);
  keys.server_write.fixed_iv = take(kFixedIvLen);
  return keys;
}

Bytes finished_verify_data(crypto::HashAlgo hash, ByteView master_secret, bool from_client,
                           ByteView transcript_hash) {
  return prf(hash, master_secret, from_client ? "client finished" : "server finished",
             transcript_hash, 12);
}

std::string key_fingerprint(ByteView secret) {
  crypto::Sha256 h;
  h.update(to_bytes(std::string_view("mbtls key fingerprint")));
  h.update(secret);
  const Bytes digest = h.finish();
  return hex_encode(ByteView(digest.data(), 8));
}

}  // namespace mbtls::tls
