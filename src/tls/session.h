// Session resumption state (§3.5 of the paper): ID-based resumption caches
// plus the mbTLS twist that middlebox session state must also carry the
// primary session keys.
#pragma once

#include <map>
#include <functional>
#include <optional>
#include <string>

#include "tls/common.h"
#include "util/bytes.h"

namespace mbtls::tls {

struct SessionState {
  Bytes session_id;
  CipherSuite suite{};
  Bytes master_secret;  // lint: secret
  // For mbTLS middlebox resumption: the per-hop key material that was
  // distributed last time (empty for plain TLS sessions).
  Bytes mbtls_key_material;  // lint: secret
  // Client side: the opaque ticket the server issued (RFC 5077), offered in
  // the SessionTicket extension on the next connection. Never serialized
  // into tickets themselves.
  Bytes ticket;

  SessionState() = default;
  SessionState(const SessionState&) = default;
  SessionState(SessionState&&) = default;
  SessionState& operator=(const SessionState&) = default;
  SessionState& operator=(SessionState&&) = default;
  // Cached sessions hold live key material; scrub it whenever an entry dies
  // (cache eviction, ticket decode temporaries, engine teardown).
  ~SessionState() {
    secure_wipe(master_secret);
    secure_wipe(mbtls_key_material);
  }
};

/// Seal a SessionState into an opaque ticket (RFC 5077 style). `sealer`
/// wraps whatever key protects tickets — a plain ticket key, or an SGX
/// enclave's sealing key for mbTLS middleboxes (§3.5: "only the enclave
/// knows the key needed to decrypt the session ticket").
Bytes encode_ticket_state(const SessionState& state);
std::optional<SessionState> decode_ticket_state(ByteView data);

/// Server-side cache keyed by session ID; client-side keyed by peer name.
///
/// The methods are virtual so scale-out implementations (the sharded,
/// bounded, thread-safe cache in src/mbtls/cache.h) slot into the same
/// Config::session_cache pointer the engine already consults. This default
/// implementation is the unbounded single-threaded map the unit tests and
/// single-connection simulations use.
class SessionCache {
 public:
  virtual ~SessionCache() = default;

  virtual void store_by_id(const SessionState& state);
  virtual std::optional<SessionState> lookup_by_id(ByteView session_id) const;

  virtual void store_by_peer(const std::string& peer, const SessionState& state);
  virtual std::optional<SessionState> lookup_by_peer(const std::string& peer) const;

  virtual void clear() {
    by_id_.clear();
    by_peer_.clear();
  }
  virtual std::size_t size() const { return by_id_.size() + by_peer_.size(); }

 private:
  std::map<Bytes, SessionState> by_id_;
  std::map<std::string, SessionState> by_peer_;
};

}  // namespace mbtls::tls
