// Sans-IO TLS 1.2 engine: client and server state machines.
//
// The engine consumes records (or raw transport bytes) and produces wire
// bytes through an output buffer; it never touches a socket. This is what
// lets the same engine run over in-memory pipes (unit tests, CPU
// microbenchmarks for Figure 5), the simulated network (Figure 6 latency),
// and loopback batches (Figure 7 throughput).
//
// mbTLS integration points (used by src/mbtls, harmless for plain TLS):
//  * extra extensions in the ClientHello (MiddleboxSupport),
//  * construction of a client engine from a *preset* ClientHello — the
//    paper's trick where the primary ClientHello serves double duty as the
//    secondary handshake's ClientHello,
//  * SGX attestation as an optional handshake message bound to the
//    transcript hash,
//  * export of the connection key block + sequence numbers so an endpoint
//    can hand the "bridge" keys to its last middlebox,
//  * a secret sink so session keys land in enclave or untrusted memory,
//    making the Table-1 memory-inspection attacks executable.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "crypto/drbg.h"
#include "ec/ecdh.h"
#include "sgx/attestation.h"
#include "sgx/enclave.h"
#include "tls/dh.h"
#include "tls/messages.h"
#include "tls/record.h"
#include "tls/session.h"
#include "x509/certificate.h"
#include "x509/verify.h"

namespace mbtls::tls {

class TicketKeyManager;

/// Dedup pool for parsed certificates (implemented by mb::CertPool): the
/// engine interns each DER blob instead of re-parsing it, so a fleet of
/// sessions seeing the same chains shares one parsed copy per certificate.
class CertIntern {
 public:
  virtual ~CertIntern() = default;
  virtual std::shared_ptr<const x509::Certificate> intern(ByteView der) = 0;
};

/// Attestation-quote verification hook (implemented by mb::QuoteVerifyCache):
/// memoizes sgx::verify_quote so identical quotes — middlebox fleets present
/// the same measurement-bound quote to many verifiers — cost one ECDSA
/// verification process-wide instead of one per handshake.
class QuoteVerifier {
 public:
  virtual ~QuoteVerifier() = default;
  virtual bool verify(ByteView measurement, ByteView report_data, ByteView signature) = 0;
};

/// Exported connection protection state (the "bridge key" of Figure 4).
struct ConnectionKeys {
  CipherSuite suite{};
  KeyBlock keys;
  std::uint64_t client_seq = 0;  // next client->server record sequence
  std::uint64_t server_seq = 0;  // next server->client record sequence
};

struct Config {
  bool is_client = true;

  std::vector<CipherSuite> cipher_suites = {
      CipherSuite::kEcdheRsaAes256GcmSha384,   CipherSuite::kEcdheEcdsaAes256GcmSha384,
      CipherSuite::kDheRsaAes256GcmSha384,     CipherSuite::kEcdheRsaAes128GcmSha256,
      CipherSuite::kEcdheEcdsaAes128GcmSha256, CipherSuite::kDheRsaAes128GcmSha256,
  };

  // Local identity (servers need one; clients only for future client auth).
  std::shared_ptr<x509::PrivateKey> private_key;
  std::vector<x509::Certificate> certificate_chain;

  // Peer verification.
  std::vector<x509::Certificate> trust_anchors;
  std::string server_name;            // client: SNI and hostname check
  bool verify_peer_certificate = true;
  std::int64_t now = 1500000000;      // Unix seconds for validity checks

  // Randomness (seeded for reproducibility).
  std::string rng_label = "tls";
  std::uint64_t rng_seed = 0;

  // Session resumption (ID-based, §3.5).
  SessionCache* session_cache = nullptr;
  bool offer_resumption = false;
  // Client-side cache key; defaults to server_name. mbTLS secondary engines
  // have no SNI of their own (the primary ClientHello does double duty), so
  // they key resumption state by subchannel instead.
  std::string resumption_cache_key;

  // Ticket-based resumption (RFC 5077 / §3.5). Servers issue a
  // NewSessionTicket on full handshakes; clients cache and offer it. The
  // ticket is sealed with `ticket_key` (AES-256-GCM) or, when `enclave` is
  // set and no key is given, with the enclave's sealing key — the paper's
  // observation that "only the enclave knows the key needed to decrypt the
  // session ticket".
  bool enable_session_tickets = false;
  Bytes ticket_key;  // 32 bytes; empty = derive from enclave (or refuse)  // lint: secret
  // Scale-out alternative to the fixed `ticket_key`: a process-wide rotating
  // key manager (src/tls/ticket.h). Takes precedence when set. Tickets
  // sealed under the manager's previous key still resume but trigger a
  // fresh NewSessionTicket in the abbreviated flight, so clients ride
  // across rotations without ever falling off the fast path.
  TicketKeyManager* ticket_keys = nullptr;

  // Control-plane caches (src/mbtls/cache.h). Both optional; null = the
  // uncached per-handshake work (parse every chain, verify every quote).
  CertIntern* cert_pool = nullptr;
  QuoteVerifier* quote_verifier = nullptr;

  // SGX attestation (extended handshake, §3.4).
  sgx::Enclave* enclave = nullptr;     // if set: attest when asked, keys live in enclave
  bool request_attestation = false;    // client: require an attestation quote
  Bytes expected_measurement;          // required MRENCLAVE when requesting

  // mbTLS hooks.
  std::vector<Extension> extra_extensions;  // appended to the ClientHello

  // Where session secrets are registered (enclave memory vs the platform's
  // untrusted memory) so the SGX adversary view reflects reality. Optional.
  sgx::MemoryStore* secret_store = nullptr;
  std::string secret_prefix;

  // Legacy-endpoint behaviour knob: what a non-mbTLS stack does when it sees
  // an unknown record type (paper §3.4 observed both behaviours in the
  // wild). true = ignore the record, false = fatal unexpected_message.
  bool ignore_unknown_record_types = false;

  // mbTLS middleboxes on the server side attest without being asked (the
  // ClientHello they saw came from the *client*, which may be legacy, while
  // the attestation consumer is the *server* endpoint).
  bool attest_unsolicited = false;

  // Structured tracing (src/util/trace.h). When a sink is attached the
  // engine emits handshake message in/out, flight boundary, key derivation
  // (fingerprints only — never raw keys), and record seal/open events under
  // `trace_actor`. Null sink = disabled = one branch per emission site.
  trace::Sink* trace_sink = nullptr;
  std::string trace_actor = "tls";
};

enum class EngineState {
  kIdle,
  kAwaitServerHello,
  kAwaitCertificate,
  kAwaitServerKeyExchange,
  kAwaitServerHelloDone,
  kAwaitClientHello,
  kAwaitClientKeyExchange,
  kAwaitChangeCipherSpec,
  kAwaitFinished,
  kEstablished,
  kClosed,
  kError,
};

class Engine {
 public:
  explicit Engine(Config config);

  /// Scrubs handshake and session key material (pre-master, master, key
  /// block, ticket key) before the memory is returned to the allocator.
  ~Engine();
  Engine(const Engine&) = delete;
  Engine(Engine&&) = default;
  Engine& operator=(const Engine&) = delete;
  Engine& operator=(Engine&&) = default;

  // ------------------------------------------------------------- lifecycle
  /// Client: emit the ClientHello. No-op for servers.
  void start();

  /// Client-only: adopt `hello` as *our already-sent* ClientHello (the
  /// primary hello doing double duty for a secondary mbTLS handshake).
  /// Nothing is emitted; the engine waits for the ServerHello.
  void start_with_preset_hello(const ClientHello& hello, ByteView raw_message);

  // --------------------------------------------------------------- ingest
  /// Feed raw transport bytes (runs an internal record parser).
  void feed(ByteView transport_bytes);

  /// Feed one complete record (header already stripped; payload may be
  /// encrypted). Used by the mbTLS layer, which demultiplexes records.
  void feed_record(const Record& record);

  // --------------------------------------------------------------- egress
  /// Drain the pending wire bytes.
  Bytes take_output();
  /// Drain pending wire bytes as whole records (for encapsulation).
  std::vector<Bytes> take_output_records();
  bool has_output() const { return !output_.empty(); }

  // ------------------------------------------------------------- app data
  void send(ByteView application_data);
  /// Send a record of an arbitrary content type under the session keys
  /// (mbTLS uses this for MBTLSKeyMaterial, type 31). Post-handshake only.
  void send_typed(ContentType type, ByteView data);
  Bytes take_plaintext();

  /// Receiver hook for mbTLS record types (30-32): when set, such records
  /// are decrypted (if protection is active) and handed to the callback
  /// instead of being treated as unknown.
  std::function<void(ContentType, ByteView)> on_typed_record;
  /// Graceful close (close_notify).
  void close();

  // ---------------------------------------------------------------- state
  EngineState state() const { return state_; }
  bool handshake_done() const { return state_ == EngineState::kEstablished; }
  bool failed() const { return state_ == EngineState::kError; }
  AlertDescription last_alert() const { return last_alert_; }
  const std::string& error_message() const { return error_message_; }

  // ---------------------------------------------------------- negotiated
  const SuiteInfo& suite() const;
  bool resumed() const { return resumed_; }
  const Bytes& client_random() const { return client_random_; }
  const Bytes& server_random() const { return server_random_; }
  const Bytes& session_id() const { return session_id_; }
  const Bytes& master_secret() const { return master_secret_; }

  /// The raw ClientHello handshake message (set on both sides). mbTLS
  /// middleboxes and endpoints reuse it for secondary handshakes.
  const Bytes& client_hello_raw() const { return client_hello_raw_; }
  const std::optional<ClientHello>& received_client_hello() const { return parsed_client_hello_; }

  const std::optional<x509::Certificate>& peer_certificate() const { return peer_certificate_; }

  bool peer_attested() const { return peer_attested_; }
  const Bytes& peer_measurement() const { return peer_measurement_; }

  /// Exported bridge keys (valid once established).
  ConnectionKeys connection_keys() const;

  const Config& config() const { return config_; }

  /// Handshake flights seen so far (maximal same-direction runs of
  /// handshake-phase records; 4 on a full handshake, 3 on resumption).
  int flights() const { return flight_; }
  const trace::Emitter& trace() const { return trace_; }

 private:
  // Handshake driving.
  void handle_handshake_message(const HandshakeMsg& msg);
  void handle_client_hello(const HandshakeMsg& msg);
  void handle_server_hello(const HandshakeMsg& msg);
  void handle_certificate(const HandshakeMsg& msg);
  void handle_server_key_exchange(const HandshakeMsg& msg);
  void handle_sgx_attestation(const HandshakeMsg& msg);
  void handle_server_hello_done(const HandshakeMsg& msg);
  void handle_client_key_exchange(const HandshakeMsg& msg);
  void handle_finished(const HandshakeMsg& msg);
  void handle_change_cipher_spec(ByteView payload);
  void handle_alert(ByteView payload);

  // Flights.
  void send_client_hello();
  void send_server_flight();            // SH, Cert, SKE, [Attestation], SHD
  void send_server_resumption_flight(const SessionState& session);
  void send_client_key_exchange_flight();
  void send_ccs_and_finished();
  void maybe_send_attestation();

  // Helpers.
  void emit_record(ContentType type, ByteView payload);
  void emit_handshake(HandshakeType type, ByteView body);
  void append_transcript(ByteView raw_message);
  Bytes transcript_hash() const;
  void compute_keys_and_activate_write();
  void activate_read_keys();
  void derive_key_block_once();
  void fail(AlertDescription alert, const std::string& message);
  void finish_handshake();
  void register_secret(const std::string& name, ByteView value);
  Bytes signature_payload(const ServerKeyExchange& ske) const;
  /// Record a handshake flight boundary whenever the traffic direction flips
  /// pre-establishment. Cheap enough to run untraced (two int compares);
  /// emits a "tls flight" event when a sink is attached.
  void note_flight(bool outbound);

  Config config_;
  crypto::Drbg rng_;
  trace::Emitter trace_;
  int flight_ = 0;
  int last_flight_dir_ = 0;  // 0 = none, 1 = outbound, 2 = inbound
  EngineState state_ = EngineState::kIdle;
  AlertDescription last_alert_ = AlertDescription::kCloseNotify;
  std::string error_message_;

  RecordReader reader_;
  HandshakeReassembler reassembler_;
  Bytes output_;
  Bytes plaintext_in_;

  // Negotiated parameters.
  std::optional<SuiteInfo> suite_;
  Bytes client_random_, server_random_, session_id_;
  Bytes pre_master_secret_, master_secret_;
  std::optional<KeyBlock> key_block_;
  bool resumed_ = false;

  // Ticket plumbing.
  Bytes make_ticket(const SessionState& state);
  /// `stale_key`, when non-null, is set if the ticket authenticated under a
  /// rotated (previous-generation) key — resumption proceeds, but the server
  /// reissues a fresh ticket.
  std::optional<SessionState> open_ticket(ByteView ticket, bool* stale_key = nullptr) const;
  void handle_new_session_ticket(const HandshakeMsg& msg);
  std::optional<SessionState> offered_session_;  // what the client hopes to resume
  bool should_issue_ticket_ = false;
  Bytes received_ticket_;

  // Transcript.
  Bytes transcript_;
  Bytes client_hello_raw_;
  std::optional<ClientHello> parsed_client_hello_;
  Bytes attestation_binding_hash_;  // transcript hash at the SKE boundary

  // Key exchange ephemeral state.
  std::optional<ec::EcdhKeyPair> ecdhe_;
  std::optional<DhKeyPair> dhe_;
  std::optional<ServerKeyExchange> received_ske_;

  // Peer identity.
  std::optional<x509::Certificate> peer_certificate_;
  bool peer_attested_ = false;
  Bytes peer_measurement_;
  bool attestation_requested_by_peer_ = false;

  // Record protection.
  std::optional<HopChannel> write_channel_;
  std::optional<HopChannel> read_channel_;
  bool read_protected_ = false;
  bool peer_finished_seen_ = false;
  bool our_finished_sent_ = false;
};

}  // namespace mbtls::tls
