// Shared TLS 1.2 definitions: content types, handshake types, cipher suites,
// alerts, and protocol constants — including the mbTLS additions from the
// paper's Appendix A (record types 30-32, handshake type 17, and the
// MiddleboxSupport extension).
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>

#include "crypto/sha2.h"
#include "util/bytes.h"

namespace mbtls::tls {

constexpr std::uint16_t kVersionTls12 = 0x0303;

enum class ContentType : std::uint8_t {
  kChangeCipherSpec = 20,
  kAlert = 21,
  kHandshake = 22,
  kApplicationData = 23,
  // mbTLS additions (paper Appendix A.1).
  kMbtlsEncapsulated = 30,
  kMbtlsKeyMaterial = 31,
  kMbtlsMiddleboxAnnouncement = 32,
};

enum class HandshakeType : std::uint8_t {
  kHelloRequest = 0,
  kClientHello = 1,
  kServerHello = 2,
  kNewSessionTicket = 4,
  kCertificate = 11,
  kServerKeyExchange = 12,
  kCertificateRequest = 13,
  kServerHelloDone = 14,
  kCertificateVerify = 15,
  kClientKeyExchange = 16,
  // mbTLS addition (paper Appendix A.2).
  kSgxAttestation = 17,
  kFinished = 20,
};

enum class AlertLevel : std::uint8_t { kWarning = 1, kFatal = 2 };

enum class AlertDescription : std::uint8_t {
  kCloseNotify = 0,
  kUnexpectedMessage = 10,
  kBadRecordMac = 20,
  kRecordOverflow = 22,
  kHandshakeFailure = 40,
  kBadCertificate = 42,
  kCertificateExpired = 45,
  kCertificateUnknown = 46,
  kIllegalParameter = 47,
  kUnknownCa = 48,
  kDecodeError = 50,
  kDecryptError = 51,
  kProtocolVersion = 70,
  kInternalError = 80,
  kInsufficientSecurity = 71,
};

const char* to_string(AlertDescription d);

/// Handshake message name for diagnostics and trace events.
const char* to_string(HandshakeType t);

enum class CipherSuite : std::uint16_t {
  kDheRsaAes128GcmSha256 = 0x009e,
  kDheRsaAes256GcmSha384 = 0x009f,
  kEcdheEcdsaAes128GcmSha256 = 0xc02b,
  kEcdheEcdsaAes256GcmSha384 = 0xc02c,
  kEcdheRsaAes128GcmSha256 = 0xc02f,
  kEcdheRsaAes256GcmSha384 = 0xc030,
};

enum class KeyExchange : std::uint8_t { kEcdhe, kDhe };
enum class AuthAlgo : std::uint8_t { kRsa, kEcdsa };

struct SuiteInfo {
  CipherSuite id;
  KeyExchange kx;
  AuthAlgo auth;
  std::size_t key_len;         // AES key bytes (16 or 32)
  crypto::HashAlgo prf_hash;   // also the handshake transcript hash
};

/// Returns nullopt for unknown suites (legacy endpoints use this to skip
/// suites they do not implement).
std::optional<SuiteInfo> suite_info(CipherSuite suite);
std::optional<SuiteInfo> suite_info(std::uint16_t wire_value);
const char* suite_name(CipherSuite suite);

// Extension numbers.
constexpr std::uint16_t kExtServerName = 0;
constexpr std::uint16_t kExtSupportedGroups = 10;
constexpr std::uint16_t kExtSignatureAlgorithms = 13;
constexpr std::uint16_t kExtSessionTicket = 35;
// Private-range extension numbers for the mbTLS additions.
constexpr std::uint16_t kExtMiddleboxSupport = 0xff77;
constexpr std::uint16_t kExtAttestationRequest = 0xff78;

/// Fatal protocol failure; carries the alert that was (or should be) sent.
class ProtocolError : public std::runtime_error {
 public:
  ProtocolError(AlertDescription alert, const std::string& what)
      : std::runtime_error(what), alert_(alert) {}
  AlertDescription alert() const { return alert_; }

 private:
  AlertDescription alert_;
};

}  // namespace mbtls::tls
