#include "tls/record.h"

namespace mbtls::tls {

Bytes frame_plaintext_record(ContentType type, ByteView payload) {
  if (payload.size() > kMaxRecordPayload)
    throw ProtocolError(AlertDescription::kRecordOverflow, "record payload too large");
  Bytes out;
  out.reserve(kRecordHeaderSize + payload.size());
  put_u8(out, static_cast<std::uint8_t>(type));
  put_u16(out, kVersionTls12);
  put_u16(out, static_cast<std::uint16_t>(payload.size()));
  append(out, payload);
  return out;
}

HopChannel::HopChannel(const DirectionKeys& keys, std::uint64_t initial_seq)
    : aead_(keys.key), fixed_iv_(keys.fixed_iv), seq_(initial_seq) {
  if (fixed_iv_.size() != 4) throw std::invalid_argument("GCM fixed IV must be 4 bytes");
}

namespace {
// Nonce = fixed_iv (4) || explicit nonce (8); AAD = seq || type || version ||
// length (RFC 5288). Both are small and fixed-size, so they are built on the
// stack — the data plane allocates nothing per record.
void make_nonce(const Bytes& fixed_iv, std::uint64_t explicit_part, std::uint8_t nonce[12]) {
  std::memcpy(nonce, fixed_iv.data(), 4);
  store_be64(nonce + 4, explicit_part);
}

void make_aad(std::uint64_t seq, ContentType type, std::size_t plaintext_len,
              std::uint8_t aad[13]) {
  store_be64(aad, seq);
  aad[8] = static_cast<std::uint8_t>(type);
  aad[9] = static_cast<std::uint8_t>(kVersionTls12 >> 8);
  aad[10] = static_cast<std::uint8_t>(kVersionTls12);
  aad[11] = static_cast<std::uint8_t>(plaintext_len >> 8);
  aad[12] = static_cast<std::uint8_t>(plaintext_len);
}
}  // namespace

void HopChannel::seal_into(ContentType type, ByteView plaintext, Bytes& out) {
  if (plaintext.size() > kMaxRecordPayload)
    throw ProtocolError(AlertDescription::kRecordOverflow, "record payload too large");
  const std::size_t sealed_len = plaintext.size() + crypto::AesGcm::kTagSize;
  const std::size_t body_len = kExplicitNonceSize + sealed_len;
  const std::size_t base = out.size();
  out.resize(base + kRecordHeaderSize + body_len);
  std::uint8_t* p = out.data() + base;
  p[0] = static_cast<std::uint8_t>(type);
  p[1] = static_cast<std::uint8_t>(kVersionTls12 >> 8);
  p[2] = static_cast<std::uint8_t>(kVersionTls12);
  p[3] = static_cast<std::uint8_t>(body_len >> 8);
  p[4] = static_cast<std::uint8_t>(body_len);
  // RFC 5288 lets the sender choose the explicit nonce; like most stacks we
  // use the sequence number.
  store_be64(p + kRecordHeaderSize, seq_);
  std::uint8_t nonce[12];
  std::uint8_t aad[13];
  make_nonce(fixed_iv_, seq_, nonce);
  make_aad(seq_, type, plaintext.size(), aad);
  aead_.seal_into(ByteView(nonce, 12), ByteView(aad, 13), plaintext,
                  MutableByteView(p + kRecordHeaderSize + kExplicitNonceSize, sealed_len));
  if (trace_.on()) {
    trace_.instant("tls", "record.seal",
                   {{"type", static_cast<int>(type)},
                    {"len", static_cast<std::uint64_t>(plaintext.size())},
                    {"seq", seq_}});
  }
  ++seq_;
}

Bytes HopChannel::seal(ContentType type, ByteView plaintext) {
  Bytes out;
  seal_into(type, plaintext, out);
  return out;
}

std::optional<MutableByteView> HopChannel::open_in_place(ContentType type, MutableByteView body) {
  if (body.size() < kExplicitNonceSize + crypto::AesGcm::kTagSize) return std::nullopt;
  const std::size_t pt_len = body.size() - kExplicitNonceSize - crypto::AesGcm::kTagSize;
  std::uint8_t nonce[12];
  std::uint8_t aad[13];
  make_nonce(fixed_iv_, load_be64(body.data()), nonce);
  make_aad(seq_, type, pt_len, aad);
  MutableByteView plaintext = body.subspan(kExplicitNonceSize, pt_len);
  if (!aead_.open_into(ByteView(nonce, 12), ByteView(aad, 13), body.subspan(kExplicitNonceSize),
                       plaintext)) {
    if (trace_.on()) {
      trace_.instant("tls", "record.auth_fail",
                     {{"type", static_cast<int>(type)}, {"seq", seq_}});
    }
    return std::nullopt;
  }
  if (trace_.on()) {
    trace_.instant("tls", "record.open",
                   {{"type", static_cast<int>(type)},
                    {"len", static_cast<std::uint64_t>(pt_len)},
                    {"seq", seq_}});
  }
  ++seq_;
  return plaintext;
}

std::optional<Bytes> HopChannel::open(ContentType type, ByteView body) {
  Bytes scratch = to_bytes(body);
  const auto plaintext = open_in_place(type, scratch);
  if (!plaintext) return std::nullopt;
  return Bytes(plaintext->begin(), plaintext->end());
}

void RecordReader::feed(ByteView data) {
  if (pos_ == buffer_.size()) {
    // Fully drained: restart at the front (clear() keeps the capacity).
    buffer_.clear();
    pos_ = 0;
  }
  append(buffer_, data);
}

std::optional<std::size_t> RecordReader::complete_record_size() const {
  const std::size_t avail = buffer_.size() - pos_;
  if (avail < kRecordHeaderSize) return std::nullopt;
  const std::size_t len = get_u16(buffer_, pos_ + 3);
  if (len > kMaxRecordPayload + 256)
    throw ProtocolError(AlertDescription::kRecordOverflow, "oversized record");
  if (avail < kRecordHeaderSize + len) return std::nullopt;
  return kRecordHeaderSize + len;
}

void RecordReader::consume(std::size_t n) {
  pos_ += n;
  if (pos_ == buffer_.size()) {
    buffer_.clear();
    pos_ = 0;
  } else if (pos_ >= kCompactThreshold) {
    buffer_.erase(buffer_.begin(), buffer_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
}

std::optional<Record> RecordReader::next() {
  const auto size = complete_record_size();
  if (!size) return std::nullopt;
  Record rec;
  rec.type = static_cast<ContentType>(buffer_[pos_]);
  rec.payload.assign(buffer_.begin() + static_cast<std::ptrdiff_t>(pos_ + kRecordHeaderSize),
                     buffer_.begin() + static_cast<std::ptrdiff_t>(pos_ + *size));
  consume(*size);
  return rec;
}

std::optional<Bytes> RecordReader::take_raw() {
  const auto size = complete_record_size();
  if (!size) return std::nullopt;
  Bytes raw(buffer_.begin() + static_cast<std::ptrdiff_t>(pos_),
            buffer_.begin() + static_cast<std::ptrdiff_t>(pos_ + *size));
  consume(*size);
  return raw;
}

bool RecordReader::take_raw_into(Bytes& raw) {
  const auto size = complete_record_size();
  if (!size) return false;
  raw.assign(buffer_.begin() + static_cast<std::ptrdiff_t>(pos_),
             buffer_.begin() + static_cast<std::ptrdiff_t>(pos_ + *size));
  consume(*size);
  return true;
}

}  // namespace mbtls::tls
