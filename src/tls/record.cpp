#include "tls/record.h"

namespace mbtls::tls {

Bytes frame_plaintext_record(ContentType type, ByteView payload) {
  if (payload.size() > kMaxRecordPayload)
    throw ProtocolError(AlertDescription::kRecordOverflow, "record payload too large");
  Bytes out;
  out.reserve(kRecordHeaderSize + payload.size());
  put_u8(out, static_cast<std::uint8_t>(type));
  put_u16(out, kVersionTls12);
  put_u16(out, static_cast<std::uint16_t>(payload.size()));
  append(out, payload);
  return out;
}

HopChannel::HopChannel(const DirectionKeys& keys, std::uint64_t initial_seq)
    : aead_(keys.key), fixed_iv_(keys.fixed_iv), seq_(initial_seq) {
  if (fixed_iv_.size() != 4) throw std::invalid_argument("GCM fixed IV must be 4 bytes");
}

namespace {
Bytes make_aad(std::uint64_t seq, ContentType type, std::size_t plaintext_len) {
  Bytes aad;
  put_u64(aad, seq);
  put_u8(aad, static_cast<std::uint8_t>(type));
  put_u16(aad, kVersionTls12);
  put_u16(aad, static_cast<std::uint16_t>(plaintext_len));
  return aad;
}
}  // namespace

Bytes HopChannel::seal(ContentType type, ByteView plaintext) {
  if (plaintext.size() > kMaxRecordPayload)
    throw ProtocolError(AlertDescription::kRecordOverflow, "record payload too large");
  // Nonce = fixed_iv (4) || explicit nonce (8). RFC 5288 lets the sender
  // choose the explicit part; like most stacks we use the sequence number.
  Bytes explicit_nonce;
  put_u64(explicit_nonce, seq_);
  const Bytes nonce = concat({fixed_iv_, explicit_nonce});
  const Bytes aad = make_aad(seq_, type, plaintext.size());
  const Bytes sealed = aead_.seal(nonce, aad, plaintext);
  ++seq_;

  Bytes out;
  out.reserve(kRecordHeaderSize + kExplicitNonceSize + sealed.size());
  put_u8(out, static_cast<std::uint8_t>(type));
  put_u16(out, kVersionTls12);
  put_u16(out, static_cast<std::uint16_t>(kExplicitNonceSize + sealed.size()));
  append(out, explicit_nonce);
  append(out, sealed);
  return out;
}

std::optional<Bytes> HopChannel::open(ContentType type, ByteView body) {
  if (body.size() < kExplicitNonceSize + crypto::AesGcm::kTagSize) return std::nullopt;
  const ByteView explicit_nonce = body.first(kExplicitNonceSize);
  const ByteView sealed = body.subspan(kExplicitNonceSize);
  const Bytes nonce = concat({fixed_iv_, explicit_nonce});
  const Bytes aad = make_aad(seq_, type, sealed.size() - crypto::AesGcm::kTagSize);
  auto opened = aead_.open(nonce, aad, sealed);
  if (!opened) return std::nullopt;
  ++seq_;
  return opened;
}

void RecordReader::feed(ByteView data) { append(buffer_, data); }

std::optional<std::size_t> RecordReader::complete_record_size() const {
  if (buffer_.size() < kRecordHeaderSize) return std::nullopt;
  const std::size_t len = get_u16(buffer_, 3);
  if (len > kMaxRecordPayload + 256)
    throw ProtocolError(AlertDescription::kRecordOverflow, "oversized record");
  if (buffer_.size() < kRecordHeaderSize + len) return std::nullopt;
  return kRecordHeaderSize + len;
}

std::optional<Record> RecordReader::next() {
  const auto size = complete_record_size();
  if (!size) return std::nullopt;
  Record rec;
  rec.type = static_cast<ContentType>(buffer_[0]);
  rec.payload.assign(buffer_.begin() + kRecordHeaderSize,
                     buffer_.begin() + static_cast<std::ptrdiff_t>(*size));
  buffer_.erase(buffer_.begin(), buffer_.begin() + static_cast<std::ptrdiff_t>(*size));
  return rec;
}

std::optional<Bytes> RecordReader::take_raw() {
  const auto size = complete_record_size();
  if (!size) return std::nullopt;
  Bytes raw(buffer_.begin(), buffer_.begin() + static_cast<std::ptrdiff_t>(*size));
  buffer_.erase(buffer_.begin(), buffer_.begin() + static_cast<std::ptrdiff_t>(*size));
  return raw;
}

}  // namespace mbtls::tls
