#include "tls/engine.h"

#include "crypto/gcm.h"
#include "crypto/sha2.h"
#include "tls/ticket.h"
#include "ec/ecdh.h"
#include "util/ct.h"
#include "util/hex.h"
#include "util/writer.h"

namespace mbtls::tls {

namespace {

constexpr std::uint8_t kSigAlgoRsa = 1;
constexpr std::uint8_t kSigAlgoEcdsa = 3;

std::uint8_t hash_registry_value(crypto::HashAlgo h) { return static_cast<std::uint8_t>(h); }

crypto::HashAlgo hash_from_registry(std::uint8_t v) {
  switch (v) {
    case 4: return crypto::HashAlgo::kSha256;
    case 5: return crypto::HashAlgo::kSha384;
    case 6: return crypto::HashAlgo::kSha512;
  }
  throw ProtocolError(AlertDescription::kIllegalParameter, "unsupported signature hash");
}

}  // namespace

Engine::Engine(Config config)
    : config_(std::move(config)),
      rng_(config_.rng_label, config_.rng_seed),
      trace_(config_.trace_sink, config_.trace_actor) {
  state_ = config_.is_client ? EngineState::kIdle : EngineState::kAwaitClientHello;
}

Engine::~Engine() {
  secure_wipe(pre_master_secret_);
  secure_wipe(master_secret_);
  secure_wipe(config_.ticket_key);
  // key_block_, offered_session_ and the hop channels wipe themselves
  // (DirectionKeys / SessionState / AesGcm destructors).
}

// ------------------------------------------------------------------ egress

void Engine::emit_record(ContentType type, ByteView payload) {
  if (write_channel_) {
    append(output_, write_channel_->seal(type, payload));
  } else {
    append(output_, frame_plaintext_record(type, payload));
  }
}

void Engine::emit_handshake(HandshakeType type, ByteView body) {
  note_flight(true);
  if (trace_.on()) {
    trace_.instant("tls", "hs.out",
                   {{"msg", to_string(type)},
                    {"len", static_cast<std::uint64_t>(body.size())}});
  }
  const Bytes msg = wrap_handshake(type, body);
  append_transcript(msg);
  emit_record(ContentType::kHandshake, msg);
}

void Engine::note_flight(bool outbound) {
  if (state_ == EngineState::kEstablished) return;
  const int dir = outbound ? 1 : 2;
  if (dir == last_flight_dir_) return;
  last_flight_dir_ = dir;
  ++flight_;
  if (trace_.on()) {
    trace_.instant("tls", "flight",
                   {{"index", flight_}, {"dir", outbound ? "out" : "in"}});
  }
}

Bytes Engine::take_output() { return std::move(output_); }

std::vector<Bytes> Engine::take_output_records() {
  std::vector<Bytes> records;
  RecordReader splitter;
  splitter.feed(output_);
  output_.clear();
  while (auto raw = splitter.take_raw()) records.push_back(std::move(*raw));
  return records;
}

// -------------------------------------------------------------- transcript

void Engine::append_transcript(ByteView raw_message) { append(transcript_, raw_message); }

Bytes Engine::transcript_hash() const {
  return crypto::hash(suite_ ? suite_->prf_hash : crypto::HashAlgo::kSha256, transcript_);
}

// ------------------------------------------------------------------ errors

void Engine::fail(AlertDescription alert, const std::string& message) {
  if (state_ == EngineState::kError) return;
  last_alert_ = alert;
  error_message_ = message;
  trace_.instant("tls", "fail", {{"alert", to_string(alert)}, {"reason", message}});
  // Best effort fatal alert to the peer.
  Bytes body;
  put_u8(body, static_cast<std::uint8_t>(AlertLevel::kFatal));
  put_u8(body, static_cast<std::uint8_t>(alert));
  try {
    emit_record(ContentType::kAlert, body);
  } catch (...) {
  }
  state_ = EngineState::kError;
}

// ------------------------------------------------------------------ ingest

void Engine::feed(ByteView transport_bytes) {
  if (state_ == EngineState::kError) return;
  try {
    reader_.feed(transport_bytes);
    while (auto rec = reader_.next()) {
      feed_record(*rec);
      if (state_ == EngineState::kError) return;
    }
  } catch (const ProtocolError& e) {
    fail(e.alert(), e.what());
  } catch (const DecodeError& e) {
    fail(AlertDescription::kDecodeError, e.what());
  }
}

void Engine::feed_record(const Record& record) {
  if (state_ == EngineState::kError || state_ == EngineState::kClosed) return;
  try {
    switch (record.type) {
      case ContentType::kChangeCipherSpec:
        handle_change_cipher_spec(record.payload);
        return;
      case ContentType::kHandshake:
      case ContentType::kAlert:
      case ContentType::kApplicationData:
        break;
      default:
        if (on_typed_record) break;  // mbTLS layer wants these; decrypt below
        // mbTLS record types reaching a plain engine = legacy endpoint
        // behaviour (§3.4): either ignore or abort.
        if (config_.ignore_unknown_record_types) return;
        fail(AlertDescription::kUnexpectedMessage, "unknown record type");
        return;
    }

    Bytes plaintext;
    if (read_protected_) {
      auto opened = read_channel_->open(record.type, record.payload);
      if (!opened) {
        fail(AlertDescription::kBadRecordMac, "record authentication failed");
        return;
      }
      plaintext = std::move(*opened);
    } else {
      plaintext = record.payload;
    }

    switch (record.type) {
      case ContentType::kHandshake: {
        reassembler_.feed(plaintext);
        while (auto msg = reassembler_.next()) {
          handle_handshake_message(*msg);
          if (state_ == EngineState::kError) return;
        }
        break;
      }
      case ContentType::kAlert:
        handle_alert(plaintext);
        break;
      case ContentType::kApplicationData:
        if (state_ != EngineState::kEstablished) {
          fail(AlertDescription::kUnexpectedMessage, "application data during handshake");
          return;
        }
        append(plaintext_in_, plaintext);
        break;
      default:
        if (on_typed_record) on_typed_record(record.type, plaintext);
        break;
    }
  } catch (const ProtocolError& e) {
    fail(e.alert(), e.what());
  } catch (const DecodeError& e) {
    fail(AlertDescription::kDecodeError, e.what());
  }
}

void Engine::handle_alert(ByteView payload) {
  if (payload.size() != 2) {
    fail(AlertDescription::kDecodeError, "malformed alert");
    return;
  }
  const auto level = static_cast<AlertLevel>(payload[0]);
  const auto desc = static_cast<AlertDescription>(payload[1]);
  trace_.instant("tls", "alert.in",
                 {{"alert", to_string(desc)},
                  {"level", level == AlertLevel::kFatal ? "fatal" : "warning"}});
  if (desc == AlertDescription::kCloseNotify) {
    state_ = EngineState::kClosed;
    return;
  }
  if (level == AlertLevel::kFatal) {
    last_alert_ = desc;
    error_message_ = std::string("peer alert: ") + to_string(desc);
    state_ = EngineState::kError;
  }
}

void Engine::handle_change_cipher_spec(ByteView payload) {
  if (payload.size() != 1 || payload[0] != 1)
    throw ProtocolError(AlertDescription::kDecodeError, "malformed ChangeCipherSpec");
  if (state_ != EngineState::kAwaitChangeCipherSpec)
    throw ProtocolError(AlertDescription::kUnexpectedMessage, "unexpected ChangeCipherSpec");
  note_flight(false);
  activate_read_keys();
  state_ = EngineState::kAwaitFinished;
}

void Engine::handle_handshake_message(const HandshakeMsg& msg) {
  note_flight(false);
  if (trace_.on()) {
    trace_.instant("tls", "hs.in",
                   {{"msg", to_string(msg.type)},
                    {"len", static_cast<std::uint64_t>(msg.body.size())}});
  }
  switch (msg.type) {
    case HandshakeType::kClientHello: return handle_client_hello(msg);
    case HandshakeType::kServerHello: return handle_server_hello(msg);
    case HandshakeType::kNewSessionTicket: return handle_new_session_ticket(msg);
    case HandshakeType::kCertificate: return handle_certificate(msg);
    case HandshakeType::kServerKeyExchange: return handle_server_key_exchange(msg);
    case HandshakeType::kSgxAttestation: return handle_sgx_attestation(msg);
    case HandshakeType::kServerHelloDone: return handle_server_hello_done(msg);
    case HandshakeType::kClientKeyExchange: return handle_client_key_exchange(msg);
    case HandshakeType::kFinished: return handle_finished(msg);
    default:
      throw ProtocolError(AlertDescription::kUnexpectedMessage, "unsupported handshake message");
  }
}

// ----------------------------------------------------------------- tickets

Bytes Engine::make_ticket(const SessionState& state) {
  const Bytes plain = encode_ticket_state(state);
  if (config_.ticket_keys) {
    return config_.ticket_keys->seal(plain);
  }
  if (config_.ticket_key.empty() && config_.enclave) {
    return config_.enclave->seal(plain);
  }
  if (config_.ticket_key.size() != 32)
    throw ProtocolError(AlertDescription::kInternalError, "no ticket key configured");
  const crypto::AesGcm gcm(config_.ticket_key);
  const Bytes iv = rng_.bytes(12);
  return concat({iv, gcm.seal(iv, {}, plain)});
}

std::optional<SessionState> Engine::open_ticket(ByteView ticket, bool* stale_key) const {
  std::optional<Bytes> plain;
  if (config_.ticket_keys) {
    if (auto opened = config_.ticket_keys->unseal(ticket)) {
      if (stale_key) *stale_key = opened->stale;
      plain = std::move(opened->plaintext);
    }
  } else if (config_.ticket_key.empty() && config_.enclave) {
    plain = config_.enclave->unseal(ticket);
  } else if (config_.ticket_key.size() == 32 && ticket.size() > 12) {
    const crypto::AesGcm gcm(config_.ticket_key);
    plain = gcm.open(ticket.first(12), {}, ticket.subspan(12));
  }
  if (!plain) return std::nullopt;
  auto state = decode_ticket_state(*plain);
  secure_wipe(*plain);
  return state;
}

void Engine::handle_new_session_ticket(const HandshakeMsg& msg) {
  if (!config_.is_client || state_ != EngineState::kAwaitChangeCipherSpec)
    throw ProtocolError(AlertDescription::kUnexpectedMessage, "unexpected NewSessionTicket");
  append_transcript(msg.raw);
  Reader r(msg.body);
  r.u32();  // lifetime hint (unused by the simulation)
  received_ticket_ = to_bytes(r.vec16());
  r.expect_end();
}

// ------------------------------------------------------------------ client

void Engine::start() {
  if (!config_.is_client || state_ != EngineState::kIdle) return;
  send_client_hello();
}

void Engine::start_with_preset_hello(const ClientHello& hello, ByteView raw_message) {
  if (!config_.is_client || state_ != EngineState::kIdle) return;
  // The primary ClientHello does double duty as ours: it counts as our
  // outbound flight even though this engine never puts it on the wire.
  note_flight(true);
  trace_.instant("tls", "hs.preset_hello",
                 {{"len", static_cast<std::uint64_t>(raw_message.size())}});
  client_random_ = hello.random;
  parsed_client_hello_ = hello;
  client_hello_raw_ = to_bytes(raw_message);
  append_transcript(raw_message);
  state_ = EngineState::kAwaitServerHello;
}

void Engine::send_client_hello() {
  ClientHello hello;
  hello.random = rng_.bytes(32);
  client_random_ = hello.random;

  if (config_.offer_resumption && config_.session_cache) {
    const std::string& key =
        config_.resumption_cache_key.empty() ? config_.server_name : config_.resumption_cache_key;
    if (auto cached = config_.session_cache->lookup_by_peer(key)) {
      if (config_.enable_session_tickets && !cached->ticket.empty()) {
        // Ticket resumption: the session ID is a random marker the server
        // echoes so the client can recognize the abbreviated handshake.
        cached->session_id = rng_.bytes(32);
      }
      hello.session_id = cached->session_id;
      offered_session_ = *cached;
    }
  }

  for (const auto s : config_.cipher_suites)
    hello.cipher_suites.push_back(static_cast<std::uint16_t>(s));

  if (!config_.server_name.empty())
    hello.extensions.push_back({kExtServerName, encode_sni(config_.server_name)});
  {
    // supported_groups: secp256r1 only.
    Bytes groups;
    put_u16(groups, 2);
    put_u16(groups, 23);
    hello.extensions.push_back({kExtSupportedGroups, groups});
  }
  {
    // signature_algorithms: sha256/sha384 x rsa/ecdsa.
    Bytes algs;
    put_u16(algs, 8);
    for (const auto& pair : {std::pair<std::uint8_t, std::uint8_t>{4, 1},
                            {4, 3},
                            {5, 1},
                            {5, 3}}) {
      put_u8(algs, pair.first);
      put_u8(algs, pair.second);
    }
    hello.extensions.push_back({kExtSignatureAlgorithms, algs});
  }
  if (config_.enable_session_tickets) {
    const Bytes ticket = offered_session_ ? offered_session_->ticket : Bytes{};
    hello.extensions.push_back({kExtSessionTicket, ticket});
  }
  if (config_.request_attestation) hello.extensions.push_back({kExtAttestationRequest, {}});
  for (const auto& ext : config_.extra_extensions) hello.extensions.push_back(ext);

  parsed_client_hello_ = hello;
  const Bytes body = hello.encode_body();
  client_hello_raw_ = wrap_handshake(HandshakeType::kClientHello, body);
  emit_handshake(HandshakeType::kClientHello, body);
  state_ = EngineState::kAwaitServerHello;
}

void Engine::handle_server_hello(const HandshakeMsg& msg) {
  if (state_ != EngineState::kAwaitServerHello)
    throw ProtocolError(AlertDescription::kUnexpectedMessage, "unexpected ServerHello");
  append_transcript(msg.raw);
  const ServerHello hello = ServerHello::parse(msg.body);
  server_random_ = hello.random;
  session_id_ = hello.session_id;

  const auto info = suite_info(hello.cipher_suite);
  if (!info) throw ProtocolError(AlertDescription::kHandshakeFailure, "server chose unknown suite");
  bool offered = false;
  for (const auto s : parsed_client_hello_->cipher_suites) {
    if (s == hello.cipher_suite) offered = true;
  }
  if (!offered)
    throw ProtocolError(AlertDescription::kIllegalParameter, "server chose unoffered suite");
  suite_ = *info;

  // Resumption: server echoed the session ID (or ticket marker) we offered.
  if (!parsed_client_hello_->session_id.empty() &&
      equal(hello.session_id, parsed_client_hello_->session_id)) {
    std::optional<SessionState> cached = offered_session_;
    if (!cached && config_.session_cache) {
      const std::string& key = config_.resumption_cache_key.empty()
                                   ? config_.server_name
                                   : config_.resumption_cache_key;
      cached = config_.session_cache->lookup_by_peer(key);
    }
    if (cached && cached->suite == suite_->id) {
      resumed_ = true;
      master_secret_ = cached->master_secret;
      derive_key_block_once();
      state_ = EngineState::kAwaitChangeCipherSpec;
      return;
    }
    throw ProtocolError(AlertDescription::kHandshakeFailure, "resumption state mismatch");
  }

  state_ = EngineState::kAwaitCertificate;
}

void Engine::handle_certificate(const HandshakeMsg& msg) {
  if (state_ != EngineState::kAwaitCertificate)
    throw ProtocolError(AlertDescription::kUnexpectedMessage, "unexpected Certificate");
  append_transcript(msg.raw);
  const CertificateMsg cert_msg = CertificateMsg::parse(msg.body);
  if (cert_msg.chain_der.empty())
    throw ProtocolError(AlertDescription::kBadCertificate, "empty certificate chain");

  // With a cert pool attached, identical DER blobs (the common case at
  // scale: every session to an origin sees the same chain) resolve to one
  // shared parsed Certificate instead of a fresh parse per handshake.
  std::vector<std::shared_ptr<const x509::Certificate>> pooled;
  std::vector<x509::Certificate> owned;
  std::vector<const x509::Certificate*> chain;
  try {
    for (const auto& der : cert_msg.chain_der) {
      if (config_.cert_pool) {
        pooled.push_back(config_.cert_pool->intern(der));
      } else {
        owned.push_back(x509::Certificate::parse(der));
      }
    }
  } catch (const DecodeError&) {
    throw ProtocolError(AlertDescription::kBadCertificate, "unparseable certificate");
  }
  for (const auto& cert : pooled) chain.push_back(cert.get());
  for (const auto& cert : owned) chain.push_back(&cert);
  peer_certificate_ = *chain.front();

  if (config_.verify_peer_certificate) {
    const x509::VerifyOptions opts{config_.now, config_.server_name};
    const auto status = x509::verify_chain(chain, config_.trust_anchors, opts);
    if (status != x509::VerifyStatus::kOk) {
      AlertDescription alert = AlertDescription::kBadCertificate;
      if (status == x509::VerifyStatus::kExpired) alert = AlertDescription::kCertificateExpired;
      if (status == x509::VerifyStatus::kUnknownIssuer) alert = AlertDescription::kUnknownCa;
      throw ProtocolError(alert, std::string("certificate verification failed: ") +
                                     x509::to_string(status));
    }
  }
  state_ = EngineState::kAwaitServerKeyExchange;
}

Bytes Engine::signature_payload(const ServerKeyExchange& ske) const {
  return concat({client_random_, server_random_, ske.params_bytes()});
}

void Engine::handle_server_key_exchange(const HandshakeMsg& msg) {
  if (state_ != EngineState::kAwaitServerKeyExchange)
    throw ProtocolError(AlertDescription::kUnexpectedMessage, "unexpected ServerKeyExchange");
  append_transcript(msg.raw);
  const ServerKeyExchange ske = ServerKeyExchange::parse(msg.body, suite_->kx);

  if (!peer_certificate_)
    throw ProtocolError(AlertDescription::kUnexpectedMessage, "ServerKeyExchange before cert");
  // The signature algorithm must match the certificate key type.
  const auto key_type = peer_certificate_->info().key.type();
  if ((ske.sig_algo == kSigAlgoRsa) != (key_type == x509::KeyType::kRsa))
    throw ProtocolError(AlertDescription::kIllegalParameter, "signature/cert key mismatch");
  const crypto::HashAlgo sig_hash = hash_from_registry(ske.sig_hash);
  if (!peer_certificate_->info().key.verify(sig_hash, signature_payload(ske), ske.signature))
    throw ProtocolError(AlertDescription::kDecryptError, "ServerKeyExchange signature invalid");

  received_ske_ = ske;
  attestation_binding_hash_ = transcript_hash();
  state_ = EngineState::kAwaitServerHelloDone;
}

void Engine::handle_sgx_attestation(const HandshakeMsg& msg) {
  if (state_ != EngineState::kAwaitServerHelloDone)
    throw ProtocolError(AlertDescription::kUnexpectedMessage, "unexpected SGXAttestation");
  append_transcript(msg.raw);
  const SgxAttestationMsg att = SgxAttestationMsg::parse(msg.body);
  const auto quote = sgx::Enclave::QuoteData::decode(att.quote);
  if (!quote) throw ProtocolError(AlertDescription::kDecodeError, "malformed attestation quote");
  const bool quote_ok =
      config_.quote_verifier
          ? config_.quote_verifier->verify(quote->measurement, quote->report_data,
                                           quote->signature)
          : sgx::verify_quote(quote->measurement, quote->report_data, quote->signature);
  if (!quote_ok)
    throw ProtocolError(AlertDescription::kDecryptError, "attestation signature invalid");
  // Freshness: the quote must bind this handshake's transcript (through the
  // ServerKeyExchange) — a replayed quote from another handshake fails here.
  Bytes expected_rd = attestation_binding_hash_;
  expected_rd.resize(64, 0);
  if (!ct::equal(quote->report_data, expected_rd))
    throw ProtocolError(AlertDescription::kDecryptError, "attestation not bound to handshake");
  if (!config_.expected_measurement.empty() &&
      !equal(quote->measurement, config_.expected_measurement))
    throw ProtocolError(AlertDescription::kBadCertificate, "unexpected enclave measurement");
  peer_attested_ = true;
  peer_measurement_ = quote->measurement;
}

void Engine::handle_server_hello_done(const HandshakeMsg& msg) {
  if (state_ != EngineState::kAwaitServerHelloDone)
    throw ProtocolError(AlertDescription::kUnexpectedMessage, "unexpected ServerHelloDone");
  if (config_.request_attestation && !peer_attested_)
    throw ProtocolError(AlertDescription::kHandshakeFailure,
                        "attestation required but not provided");
  append_transcript(msg.raw);
  send_client_key_exchange_flight();
}

void Engine::send_client_key_exchange_flight() {
  ClientKeyExchange cke;
  cke.kx = suite_->kx;
  if (suite_->kx == KeyExchange::kEcdhe) {
    ecdhe_ = ec::ecdh_generate(rng_);
    cke.public_value = ecdhe_->public_point;
    pre_master_secret_ = ec::ecdh_shared_secret(*ecdhe_, received_ske_->ec_point);
  } else {
    DhGroup group{bn::BigInt::from_bytes(received_ske_->dh_p),
                  bn::BigInt::from_bytes(received_ske_->dh_g)};
    dhe_ = dh_generate(group, rng_);
    cke.public_value = dhe_->public_value;
    pre_master_secret_ = dh_shared_secret(group, dhe_->private_key, received_ske_->dh_ys);
  }
  emit_handshake(HandshakeType::kClientKeyExchange, cke.encode_body());

  master_secret_ =
      derive_master_secret(suite_->prf_hash, pre_master_secret_, client_random_, server_random_);
  register_secret("master_secret", master_secret_);
  derive_key_block_once();
  send_ccs_and_finished();
  state_ = EngineState::kAwaitChangeCipherSpec;
}

// ------------------------------------------------------------------ server

void Engine::handle_client_hello(const HandshakeMsg& msg) {
  if (config_.is_client || state_ != EngineState::kAwaitClientHello)
    throw ProtocolError(AlertDescription::kUnexpectedMessage, "unexpected ClientHello");
  append_transcript(msg.raw);
  client_hello_raw_ = msg.raw;
  const ClientHello hello = ClientHello::parse(msg.body);
  parsed_client_hello_ = hello;
  client_random_ = hello.random;
  attestation_requested_by_peer_ = hello.find_extension(kExtAttestationRequest) != nullptr;

  // Suite selection: server preference order, constrained to suites whose
  // signature algorithm matches our certificate key.
  for (const auto preferred : config_.cipher_suites) {
    const auto info = suite_info(preferred);
    if (config_.private_key) {
      const bool suite_wants_rsa = info->auth == AuthAlgo::kRsa;
      if (suite_wants_rsa != (config_.private_key->type() == x509::KeyType::kRsa)) continue;
    }
    for (const auto offered : hello.cipher_suites) {
      if (offered == static_cast<std::uint16_t>(preferred)) {
        suite_ = *info;
        break;
      }
    }
    if (suite_) break;
  }
  if (!suite_)
    throw ProtocolError(AlertDescription::kHandshakeFailure, "no mutually supported cipher suite");

  server_random_ = rng_.bytes(32);

  // Ticket-based resumption takes precedence: an acceptable ticket restores
  // the session regardless of any server-side cache.
  if (config_.enable_session_tickets) {
    if (const auto* ext = hello.find_extension(kExtSessionTicket)) {
      if (!ext->data.empty()) {
        bool stale_key = false;
        if (auto state = open_ticket(ext->data, &stale_key);
            state && state->suite == suite_->id) {
          // Echo the client's session-ID marker so it recognizes resumption.
          state->session_id = hello.session_id;
          // Ticket sealed under the previous (soon-to-retire) rotation key:
          // resume now, but reissue under the current key inside the
          // abbreviated flight so the next connection also resumes.
          should_issue_ticket_ = stale_key;
          send_server_resumption_flight(*state);
          return;
        }
      }
      should_issue_ticket_ = true;  // client supports tickets: issue one
    }
  }

  // ID-based resumption.
  if (config_.session_cache && !hello.session_id.empty()) {
    if (auto cached = config_.session_cache->lookup_by_id(hello.session_id)) {
      if (cached->suite == suite_->id) {
        send_server_resumption_flight(*cached);
        return;
      }
    }
  }

  send_server_flight();
}

void Engine::send_server_flight() {
  session_id_ = rng_.bytes(32);
  ServerHello hello;
  hello.random = server_random_;
  hello.session_id = session_id_;
  hello.cipher_suite = static_cast<std::uint16_t>(suite_->id);
  if (should_issue_ticket_) hello.extensions.push_back({kExtSessionTicket, {}});
  emit_handshake(HandshakeType::kServerHello, hello.encode_body());

  if (!config_.private_key || config_.certificate_chain.empty())
    throw ProtocolError(AlertDescription::kInternalError, "server has no certificate");
  // The certificate key type must match what the negotiated suite signs with.
  const bool suite_wants_rsa = suite_->auth == AuthAlgo::kRsa;
  if (suite_wants_rsa != (config_.private_key->type() == x509::KeyType::kRsa))
    throw ProtocolError(AlertDescription::kHandshakeFailure, "certificate/suite mismatch");

  CertificateMsg cert_msg;
  for (const auto& cert : config_.certificate_chain) cert_msg.chain_der.push_back(to_bytes(cert.der()));
  emit_handshake(HandshakeType::kCertificate, cert_msg.encode_body());

  ServerKeyExchange ske;
  ske.kx = suite_->kx;
  if (suite_->kx == KeyExchange::kEcdhe) {
    ecdhe_ = ec::ecdh_generate(rng_);
    ske.ec_point = ecdhe_->public_point;
  } else {
    const DhGroup& group = default_dh_group();
    dhe_ = dh_generate(group, rng_);
    ske.dh_p = group.p.to_bytes();
    ske.dh_g = group.g.to_bytes();
    ske.dh_ys = dhe_->public_value;
  }
  ske.sig_hash = hash_registry_value(suite_->prf_hash);
  ske.sig_algo = suite_->auth == AuthAlgo::kRsa ? kSigAlgoRsa : kSigAlgoEcdsa;
  ske.signature = config_.private_key->sign(suite_->prf_hash, signature_payload(ske), rng_);
  emit_handshake(HandshakeType::kServerKeyExchange, ske.encode_body());

  attestation_binding_hash_ = transcript_hash();
  maybe_send_attestation();

  emit_handshake(HandshakeType::kServerHelloDone, {});
  state_ = EngineState::kAwaitClientKeyExchange;
}

void Engine::maybe_send_attestation() {
  if (!config_.enclave) return;
  if (!attestation_requested_by_peer_ && !config_.attest_unsolicited) return;
  const auto quote = config_.enclave->quote(attestation_binding_hash_);
  SgxAttestationMsg att;
  att.quote = quote.encode();
  emit_handshake(HandshakeType::kSgxAttestation, att.encode_body());
}

void Engine::send_server_resumption_flight(const SessionState& session) {
  resumed_ = true;
  session_id_ = session.session_id;
  master_secret_ = session.master_secret;
  register_secret("master_secret", master_secret_);

  ServerHello hello;
  hello.random = server_random_;
  hello.session_id = session_id_;
  hello.cipher_suite = static_cast<std::uint16_t>(suite_->id);
  emit_handshake(HandshakeType::kServerHello, hello.encode_body());

  // RFC 5077 §3.3: the abbreviated handshake may carry a NewSessionTicket
  // between ServerHello and ChangeCipherSpec. Used on ticket-key rotation to
  // replace a ticket that authenticated under the outgoing key.
  if (should_issue_ticket_) {
    SessionState reissue;
    reissue.suite = suite_->id;
    reissue.master_secret = master_secret_;
    Writer nst;
    nst.u32(7200);  // lifetime hint, seconds
    nst.vec16(make_ticket(reissue));
    emit_handshake(HandshakeType::kNewSessionTicket, nst.buffer());
  }

  derive_key_block_once();
  send_ccs_and_finished();
  state_ = EngineState::kAwaitChangeCipherSpec;
}

void Engine::handle_client_key_exchange(const HandshakeMsg& msg) {
  if (config_.is_client || state_ != EngineState::kAwaitClientKeyExchange)
    throw ProtocolError(AlertDescription::kUnexpectedMessage, "unexpected ClientKeyExchange");
  append_transcript(msg.raw);
  const ClientKeyExchange cke = ClientKeyExchange::parse(msg.body, suite_->kx);
  try {
    if (suite_->kx == KeyExchange::kEcdhe) {
      pre_master_secret_ = ec::ecdh_shared_secret(*ecdhe_, cke.public_value);
    } else {
      pre_master_secret_ =
          dh_shared_secret(default_dh_group(), dhe_->private_key, cke.public_value);
    }
  } catch (const std::invalid_argument& e) {
    throw ProtocolError(AlertDescription::kIllegalParameter, e.what());
  }
  master_secret_ =
      derive_master_secret(suite_->prf_hash, pre_master_secret_, client_random_, server_random_);
  register_secret("master_secret", master_secret_);
  derive_key_block_once();
  state_ = EngineState::kAwaitChangeCipherSpec;
}

// ------------------------------------------------------------ shared tail

void Engine::derive_key_block_once() {
  if (key_block_) return;
  key_block_ = derive_key_block(suite_->prf_hash, master_secret_, client_random_, server_random_,
                                suite_->key_len);
  register_secret("client_write_key", key_block_->client_write.key);
  register_secret("client_write_iv", key_block_->client_write.fixed_iv);
  register_secret("server_write_key", key_block_->server_write.key);
  register_secret("server_write_iv", key_block_->server_write.fixed_iv);
  if (trace_.on()) {
    // Keylog-style event: fingerprints only, never raw key bytes
    // (tools/mbtls-lint: trace-no-secret).
    trace_.instant("tls", "keys.derived",
                   {{"client_write", key_fingerprint(key_block_->client_write.key)},
                    {"server_write", key_fingerprint(key_block_->server_write.key)},
                    {"suite", suite_name(suite_->id)},
                    {"resumed", resumed_ ? 1 : 0}});
  }
}

void Engine::send_ccs_and_finished() {
  // ChangeCipherSpec (not part of the transcript), then activate our write
  // protection and send Finished under the new keys.
  note_flight(true);
  Bytes ccs{1};
  emit_record(ContentType::kChangeCipherSpec, ccs);
  const DirectionKeys& write_keys =
      config_.is_client ? key_block_->client_write : key_block_->server_write;
  write_channel_.emplace(write_keys);
  if (trace_.on()) write_channel_->set_trace(trace_.sub("write"));

  const Bytes verify =
      finished_verify_data(suite_->prf_hash, master_secret_, config_.is_client, transcript_hash());
  emit_handshake(HandshakeType::kFinished, verify);
  our_finished_sent_ = true;
}

void Engine::activate_read_keys() {
  if (!key_block_)
    throw ProtocolError(AlertDescription::kUnexpectedMessage, "ChangeCipherSpec before keys");
  const DirectionKeys& read_keys =
      config_.is_client ? key_block_->server_write : key_block_->client_write;
  read_channel_.emplace(read_keys);
  if (trace_.on()) read_channel_->set_trace(trace_.sub("read"));
  read_protected_ = true;
}

void Engine::handle_finished(const HandshakeMsg& msg) {
  if (state_ != EngineState::kAwaitFinished)
    throw ProtocolError(AlertDescription::kUnexpectedMessage, "unexpected Finished");
  const Bytes expected = finished_verify_data(suite_->prf_hash, master_secret_,
                                              /*from_client=*/!config_.is_client,
                                              transcript_hash());
  if (!ct::equal(expected, msg.body))
    throw ProtocolError(AlertDescription::kDecryptError, "Finished verify_data mismatch");
  append_transcript(msg.raw);
  peer_finished_seen_ = true;

  if (!our_finished_sent_) {
    if (should_issue_ticket_) {
      SessionState state;
      state.suite = suite_->id;
      state.master_secret = master_secret_;
      Writer nst;
      nst.u32(7200);  // lifetime hint, seconds
      nst.vec16(make_ticket(state));
      emit_handshake(HandshakeType::kNewSessionTicket, nst.buffer());
    }
    send_ccs_and_finished();
  }
  finish_handshake();
}

void Engine::finish_handshake() {
  state_ = EngineState::kEstablished;
  if (trace_.on()) {
    trace_.instant("tls", "established",
                   {{"flights", flight_}, {"resumed", resumed_ ? 1 : 0}});
  }
  // Populate the resumption cache.
  if (config_.session_cache && !session_id_.empty()) {
    SessionState session;
    session.session_id = session_id_;
    session.suite = suite_->id;
    session.master_secret = master_secret_;
    session.ticket = received_ticket_;
    // A resumed handshake without a fresh NewSessionTicket leaves the
    // offered ticket valid (RFC 5077 tickets are multi-use): keep it so the
    // client stays on the abbreviated path for every future connection.
    if (session.ticket.empty() && resumed_ && offered_session_)
      session.ticket = offered_session_->ticket;
    if (config_.is_client) {
      const std::string& key = config_.resumption_cache_key.empty() ? config_.server_name
                                                                    : config_.resumption_cache_key;
      config_.session_cache->store_by_peer(key, session);
    } else {
      config_.session_cache->store_by_id(session);
    }
  }
}

void Engine::register_secret(const std::string& name, ByteView value) {
  if (!config_.secret_store) return;
  config_.secret_store->put(config_.secret_prefix + name, to_bytes(value));
}

// ---------------------------------------------------------------- app data

void Engine::send(ByteView application_data) {
  if (state_ != EngineState::kEstablished)
    throw std::logic_error("Engine::send before handshake completion");
  std::size_t off = 0;
  while (off < application_data.size()) {
    const std::size_t n = std::min(kMaxRecordPayload, application_data.size() - off);
    emit_record(ContentType::kApplicationData, application_data.subspan(off, n));
    off += n;
  }
}

void Engine::send_typed(ContentType type, ByteView data) {
  if (state_ != EngineState::kEstablished)
    throw std::logic_error("Engine::send_typed before handshake completion");
  emit_record(type, data);
}

Bytes Engine::take_plaintext() { return std::move(plaintext_in_); }

void Engine::close() {
  if (state_ == EngineState::kError || state_ == EngineState::kClosed) return;
  Bytes body;
  put_u8(body, static_cast<std::uint8_t>(AlertLevel::kWarning));
  put_u8(body, static_cast<std::uint8_t>(AlertDescription::kCloseNotify));
  emit_record(ContentType::kAlert, body);
  state_ = EngineState::kClosed;
}

// ------------------------------------------------------------- negotiated

const SuiteInfo& Engine::suite() const {
  if (!suite_) throw std::logic_error("suite() before negotiation");
  return *suite_;
}

ConnectionKeys Engine::connection_keys() const {
  if (state_ != EngineState::kEstablished)
    throw std::logic_error("connection_keys() before handshake completion");
  ConnectionKeys keys;
  keys.suite = suite_->id;
  keys.keys = *key_block_;
  const std::uint64_t write_seq = write_channel_->sequence();
  const std::uint64_t read_seq = read_channel_->sequence();
  keys.client_seq = config_.is_client ? write_seq : read_seq;
  keys.server_seq = config_.is_client ? read_seq : write_seq;
  return keys;
}

}  // namespace mbtls::tls
