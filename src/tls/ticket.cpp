#include "tls/ticket.h"

#include "crypto/gcm.h"

namespace mbtls::tls {

TicketKeyManager::TicketKeyManager(std::string_view label, std::uint64_t seed)
    : rng_(label, seed) {
  current_ = fresh_key_locked();
}

TicketKeyManager::~TicketKeyManager() = default;  // Key dtors wipe secrets

TicketKeyManager::Key TicketKeyManager::fresh_key_locked() {
  Key key;
  key.name = rng_.bytes(kKeyNameLen);
  key.secret = rng_.bytes(32);
  return key;
}

void TicketKeyManager::rotate() {
  std::lock_guard<std::mutex> lock(mu_);
  // The manager is a shared cross-thread object: any connection thread may
  // rotate or seal. Draws from rng_ are serialized by mu_, so each one is a
  // deliberate ownership handoff as far as the Drbg discipline is concerned
  // (nonce/key-name draw *order* across threads is allowed to be
  // nondeterministic — these are random values, not a reproducible stream).
  rng_.rebind_owner_thread();
  // previous_'s old secret is wiped by the move-assignment's destruction
  // chain only if the vector reallocates; wipe explicitly first.
  secure_wipe(previous_.secret);
  previous_ = std::move(current_);
  current_ = fresh_key_locked();
  ++generation_;
}

Bytes TicketKeyManager::seal(ByteView plaintext) {
  std::lock_guard<std::mutex> lock(mu_);
  rng_.rebind_owner_thread();  // serialized by mu_ (see rotate())
  const crypto::AesGcm gcm(current_.secret);
  const Bytes iv = rng_.bytes(kIvLen);
  // The key name is authenticated as AAD: moving a ciphertext under a
  // different generation's name fails the tag, not just the lookup.
  Bytes out = current_.name;
  append(out, iv);
  append(out, gcm.seal(iv, current_.name, plaintext));
  ++stats_.seals;
  return out;
}

std::optional<TicketKeyManager::Unsealed> TicketKeyManager::unseal(ByteView ticket) {
  std::lock_guard<std::mutex> lock(mu_);
  if (ticket.size() < kMinTicketLen) {
    ++stats_.rejects;
    return std::nullopt;
  }
  const ByteView name = ticket.first(kKeyNameLen);
  const ByteView iv = ticket.subspan(kKeyNameLen, kIvLen);
  const ByteView sealed = ticket.subspan(kKeyNameLen + kIvLen);

  const Key* key = nullptr;
  bool stale = false;
  if (equal(name, current_.name)) {
    key = &current_;
  } else if (!previous_.name.empty() && equal(name, previous_.name)) {
    key = &previous_;
    stale = true;
  }
  if (!key) {
    ++stats_.rejects;
    return std::nullopt;
  }

  const crypto::AesGcm gcm(key->secret);
  auto plain = gcm.open(iv, name, sealed);
  if (!plain) {
    ++stats_.rejects;
    return std::nullopt;
  }
  stale ? ++stats_.unseal_stale : ++stats_.unseal_current;
  return Unsealed{std::move(*plain), stale};
}

std::uint64_t TicketKeyManager::generation() const {
  std::lock_guard<std::mutex> lock(mu_);
  return generation_;
}

TicketKeyManager::Stats TicketKeyManager::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace mbtls::tls
