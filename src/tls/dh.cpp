#include "tls/dh.h"

#include <stdexcept>

#include "bignum/prime.h"

namespace mbtls::tls {

const DhGroup& default_dh_group() {
  static const DhGroup group = [] {
    crypto::Drbg rng("mbtls-dhe-group", 1);
    DhGroup g;
    g.p = bn::generate_safe_prime(512, rng);
    g.g = bn::BigInt(2);
    return g;
  }();
  return group;
}

DhKeyPair dh_generate(const DhGroup& group, crypto::Drbg& rng) {
  DhKeyPair kp;
  // Private exponent: 256 random bits is ample for the simulation group.
  kp.private_key = bn::random_bits(256, rng);
  const bn::BigInt y = group.g.mod_exp(kp.private_key, group.p);
  kp.public_value = y.to_bytes(group.p.byte_length());
  return kp;
}

Bytes dh_shared_secret(const DhGroup& group, const bn::BigInt& private_key, ByteView peer_public) {
  const bn::BigInt peer = bn::BigInt::from_bytes(peer_public);
  if (peer <= bn::BigInt(1) || peer >= group.p - bn::BigInt(1))
    throw std::invalid_argument("DH: degenerate peer public value");
  const bn::BigInt secret = peer.mod_exp(private_key, group.p);
  return secret.to_bytes(group.p.byte_length());
}

}  // namespace mbtls::tls
