// TLS 1.2 pseudo-random function (RFC 5246 §5) and the key derivation
// schedule built on it.
#pragma once

#include "crypto/sha2.h"
#include "util/bytes.h"

namespace mbtls::tls {

/// PRF(secret, label, seed) producing `length` bytes using P_<hash>.
Bytes prf(crypto::HashAlgo hash, ByteView secret, std::string_view label, ByteView seed,
          std::size_t length);

/// master_secret = PRF(pre_master, "master secret", client_random || server_random)[0..47]
Bytes derive_master_secret(crypto::HashAlgo hash, ByteView pre_master, ByteView client_random,
                           ByteView server_random);

/// AEAD traffic keys for one direction of one connection. Wipes itself on
/// destruction: copies of the key block travel through HopKeys messages and
/// session caches, and every copy's death must scrub its bytes.
struct DirectionKeys {
  Bytes key;       // AES key  // lint: secret
  Bytes fixed_iv;  // 4-byte implicit GCM salt

  DirectionKeys() = default;
  DirectionKeys(Bytes key_in, Bytes fixed_iv_in)
      : key(std::move(key_in)), fixed_iv(std::move(fixed_iv_in)) {}
  DirectionKeys(const DirectionKeys&) = default;
  DirectionKeys(DirectionKeys&&) = default;
  DirectionKeys& operator=(const DirectionKeys&) = default;
  DirectionKeys& operator=(DirectionKeys&&) = default;
  ~DirectionKeys() {
    secure_wipe(key);
    secure_wipe(fixed_iv);
  }
};

struct KeyBlock {
  DirectionKeys client_write;
  DirectionKeys server_write;
};

/// key_block = PRF(master, "key expansion", server_random || client_random),
/// carved into client/server write keys and fixed IVs (AEAD ciphers carry no
/// MAC keys).
KeyBlock derive_key_block(crypto::HashAlgo hash, ByteView master_secret, ByteView client_random,
                          ByteView server_random, std::size_t key_len);

/// Finished verify_data (12 bytes).
Bytes finished_verify_data(crypto::HashAlgo hash, ByteView master_secret, bool from_client,
                           ByteView transcript_hash);

/// Non-invertible fingerprint of key material for keylog-style trace events:
/// hex of the first 8 bytes of SHA-256("mbtls key fingerprint" || secret).
/// Trace sinks must never receive raw keys (tools/mbtls-lint rule
/// trace-no-secret); passing material through this digest is the sanctioned
/// way to let tests assert key *identity* (equality/uniqueness) from traces
/// without the trace ever containing recoverable secrets.
std::string key_fingerprint(ByteView secret);

}  // namespace mbtls::tls
