#include "tls/session.h"

#include "util/reader.h"
#include "util/writer.h"

namespace mbtls::tls {

Bytes encode_ticket_state(const SessionState& state) {
  Writer w;
  w.u16(static_cast<std::uint16_t>(state.suite));
  w.vec8(state.session_id);
  w.vec8(state.master_secret);
  w.vec16(state.mbtls_key_material);
  return w.take();
}

std::optional<SessionState> decode_ticket_state(ByteView data) {
  try {
    Reader r(data);
    SessionState state;
    state.suite = static_cast<CipherSuite>(r.u16());
    state.session_id = to_bytes(r.vec8());
    state.master_secret = to_bytes(r.vec8());
    state.mbtls_key_material = to_bytes(r.vec16());
    r.expect_end();
    return state;
  } catch (const DecodeError&) {
    return std::nullopt;
  }
}

void SessionCache::store_by_id(const SessionState& state) { by_id_[state.session_id] = state; }

std::optional<SessionState> SessionCache::lookup_by_id(ByteView session_id) const {
  if (session_id.empty()) return std::nullopt;
  auto it = by_id_.find(to_bytes(session_id));
  if (it == by_id_.end()) return std::nullopt;
  return it->second;
}

void SessionCache::store_by_peer(const std::string& peer, const SessionState& state) {
  by_peer_[peer] = state;
}

std::optional<SessionState> SessionCache::lookup_by_peer(const std::string& peer) const {
  auto it = by_peer_.find(peer);
  if (it == by_peer_.end()) return std::nullopt;
  return it->second;
}

}  // namespace mbtls::tls
