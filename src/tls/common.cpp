#include "tls/common.h"

namespace mbtls::tls {

const char* to_string(AlertDescription d) {
  switch (d) {
    case AlertDescription::kCloseNotify: return "close_notify";
    case AlertDescription::kUnexpectedMessage: return "unexpected_message";
    case AlertDescription::kBadRecordMac: return "bad_record_mac";
    case AlertDescription::kRecordOverflow: return "record_overflow";
    case AlertDescription::kHandshakeFailure: return "handshake_failure";
    case AlertDescription::kBadCertificate: return "bad_certificate";
    case AlertDescription::kCertificateExpired: return "certificate_expired";
    case AlertDescription::kCertificateUnknown: return "certificate_unknown";
    case AlertDescription::kIllegalParameter: return "illegal_parameter";
    case AlertDescription::kUnknownCa: return "unknown_ca";
    case AlertDescription::kDecodeError: return "decode_error";
    case AlertDescription::kDecryptError: return "decrypt_error";
    case AlertDescription::kProtocolVersion: return "protocol_version";
    case AlertDescription::kInternalError: return "internal_error";
    case AlertDescription::kInsufficientSecurity: return "insufficient_security";
  }
  return "unknown_alert";
}

const char* to_string(HandshakeType t) {
  switch (t) {
    case HandshakeType::kHelloRequest: return "HelloRequest";
    case HandshakeType::kClientHello: return "ClientHello";
    case HandshakeType::kServerHello: return "ServerHello";
    case HandshakeType::kNewSessionTicket: return "NewSessionTicket";
    case HandshakeType::kCertificate: return "Certificate";
    case HandshakeType::kServerKeyExchange: return "ServerKeyExchange";
    case HandshakeType::kCertificateRequest: return "CertificateRequest";
    case HandshakeType::kServerHelloDone: return "ServerHelloDone";
    case HandshakeType::kCertificateVerify: return "CertificateVerify";
    case HandshakeType::kClientKeyExchange: return "ClientKeyExchange";
    case HandshakeType::kSgxAttestation: return "SGXAttestation";
    case HandshakeType::kFinished: return "Finished";
  }
  return "UnknownHandshake";
}

std::optional<SuiteInfo> suite_info(CipherSuite suite) {
  using H = crypto::HashAlgo;
  switch (suite) {
    case CipherSuite::kDheRsaAes128GcmSha256:
      return SuiteInfo{suite, KeyExchange::kDhe, AuthAlgo::kRsa, 16, H::kSha256};
    case CipherSuite::kDheRsaAes256GcmSha384:
      return SuiteInfo{suite, KeyExchange::kDhe, AuthAlgo::kRsa, 32, H::kSha384};
    case CipherSuite::kEcdheEcdsaAes128GcmSha256:
      return SuiteInfo{suite, KeyExchange::kEcdhe, AuthAlgo::kEcdsa, 16, H::kSha256};
    case CipherSuite::kEcdheEcdsaAes256GcmSha384:
      return SuiteInfo{suite, KeyExchange::kEcdhe, AuthAlgo::kEcdsa, 32, H::kSha384};
    case CipherSuite::kEcdheRsaAes128GcmSha256:
      return SuiteInfo{suite, KeyExchange::kEcdhe, AuthAlgo::kRsa, 16, H::kSha256};
    case CipherSuite::kEcdheRsaAes256GcmSha384:
      return SuiteInfo{suite, KeyExchange::kEcdhe, AuthAlgo::kRsa, 32, H::kSha384};
  }
  return std::nullopt;
}

std::optional<SuiteInfo> suite_info(std::uint16_t wire_value) {
  return suite_info(static_cast<CipherSuite>(wire_value));
}

const char* suite_name(CipherSuite suite) {
  switch (suite) {
    case CipherSuite::kDheRsaAes128GcmSha256: return "DHE-RSA-AES128-GCM-SHA256";
    case CipherSuite::kDheRsaAes256GcmSha384: return "DHE-RSA-AES256-GCM-SHA384";
    case CipherSuite::kEcdheEcdsaAes128GcmSha256: return "ECDHE-ECDSA-AES128-GCM-SHA256";
    case CipherSuite::kEcdheEcdsaAes256GcmSha384: return "ECDHE-ECDSA-AES256-GCM-SHA384";
    case CipherSuite::kEcdheRsaAes128GcmSha256: return "ECDHE-RSA-AES128-GCM-SHA256";
    case CipherSuite::kEcdheRsaAes256GcmSha384: return "ECDHE-RSA-AES256-GCM-SHA384";
  }
  return "UNKNOWN-SUITE";
}

}  // namespace mbtls::tls
