// TLS 1.2 handshake message structures and their wire codecs, including the
// mbTLS additions: the MiddleboxSupport extension, the SGXAttestation
// handshake message, and the MBTLSKeyMaterial record body (Appendix A).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "tls/common.h"
#include "util/reader.h"

namespace mbtls::tls {

struct Extension {
  std::uint16_t type = 0;
  Bytes data;
};

/// type + 24-bit length framing around a handshake body.
Bytes wrap_handshake(HandshakeType type, ByteView body);

/// A reassembled handshake message.
struct HandshakeMsg {
  HandshakeType type;
  Bytes body;
  Bytes raw;  // full message incl. header — fed to the transcript hash
};

/// Incremental handshake-stream reassembler (messages may span records).
class HandshakeReassembler {
 public:
  void feed(ByteView record_payload);
  std::optional<HandshakeMsg> next();
  bool empty() const { return buffer_.empty(); }

 private:
  Bytes buffer_;
};

// ----------------------------------------------------------------- hellos

struct ClientHello {
  Bytes random;  // 32 bytes
  Bytes session_id;
  std::vector<std::uint16_t> cipher_suites;
  std::vector<Extension> extensions;

  Bytes encode_body() const;
  static ClientHello parse(ByteView body);
  const Extension* find_extension(std::uint16_t type) const;
};

struct ServerHello {
  Bytes random;
  Bytes session_id;
  std::uint16_t cipher_suite = 0;
  std::vector<Extension> extensions;

  Bytes encode_body() const;
  static ServerHello parse(ByteView body);
};

// ------------------------------------------------------------ certificates

struct CertificateMsg {
  std::vector<Bytes> chain_der;  // leaf first

  Bytes encode_body() const;
  static CertificateMsg parse(ByteView body);
};

// ------------------------------------------------------------ key exchange

/// Signed ephemeral parameters. `params` is the raw parameter bytes the
/// signature covers (together with both randoms).
struct ServerKeyExchange {
  KeyExchange kx = KeyExchange::kEcdhe;
  // ECDHE
  Bytes ec_point;
  // DHE
  Bytes dh_p, dh_g, dh_ys;
  // Signature over client_random || server_random || params.
  std::uint8_t sig_hash = 0;  // HashAlgorithm registry value
  std::uint8_t sig_algo = 0;  // SignatureAlgorithm registry value (1=RSA, 3=ECDSA)
  Bytes signature;

  Bytes params_bytes() const;
  Bytes encode_body() const;
  static ServerKeyExchange parse(ByteView body, KeyExchange kx);
};

struct ClientKeyExchange {
  KeyExchange kx = KeyExchange::kEcdhe;
  Bytes public_value;  // EC point or DH Yc

  Bytes encode_body() const;
  static ClientKeyExchange parse(ByteView body, KeyExchange kx);
};

// ------------------------------------------------------------- attestation

struct SgxAttestationMsg {
  Bytes quote;  // sgx::Enclave::QuoteData::encode()

  Bytes encode_body() const;
  static SgxAttestationMsg parse(ByteView body);
};

// ------------------------------------------------- MiddleboxSupport (mbTLS)

/// Paper Appendix A.2: announces client mbTLS support and lists middleboxes
/// known a priori. `optimistic_hellos` carries extra ClientHellos for
/// middleboxes that need distinct parameters (unused when the primary hello
/// serves double duty, which is the common case and what our stack does).
struct MiddleboxSupportExtension {
  std::vector<Bytes> optimistic_hellos;
  std::vector<std::string> known_middleboxes;

  Bytes encode() const;
  static MiddleboxSupportExtension parse(ByteView data);
};

// -------------------------------------------- MBTLSKeyMaterial record body

/// Paper Appendix A.1: key material an endpoint ships to a middlebox over
/// the (encrypted) secondary session — one direction-pair per adjacent hop.
struct HopKeys {
  Bytes client_to_server_key;  // lint: secret
  Bytes client_to_server_iv;   // 4-byte GCM salt
  Bytes server_to_client_key;  // lint: secret
  Bytes server_to_client_iv;
  std::uint64_t client_to_server_seq = 0;
  std::uint64_t server_to_client_seq = 0;

  HopKeys() = default;
  HopKeys(const HopKeys&) = default;
  HopKeys(HopKeys&&) = default;
  HopKeys& operator=(const HopKeys&) = default;
  HopKeys& operator=(HopKeys&&) = default;
  // Hop keys are copied into every node of a session chain; each copy
  // scrubs itself when it dies (P1/P4 rest on these bytes staying private).
  ~HopKeys() {
    secure_wipe(client_to_server_key);
    secure_wipe(client_to_server_iv);
    secure_wipe(server_to_client_key);
    secure_wipe(server_to_client_iv);
  }
};

struct KeyMaterialMsg {
  std::uint16_t version = kVersionTls12;
  std::uint16_t cipher_suite = 0;
  HopKeys toward_client;  // hop on the middlebox's client side
  HopKeys toward_server;  // hop on the middlebox's server side

  Bytes encode() const;
  static std::optional<KeyMaterialMsg> parse(ByteView data);
};

// ----------------------------------------------------- Encapsulated records

/// Body of an Encapsulated record: subchannel ID + a complete inner record.
struct EncapsulatedRecord {
  std::uint8_t subchannel = 0;
  Bytes inner_record;  // full TLS record (header + payload)

  Bytes encode() const;
  static std::optional<EncapsulatedRecord> parse(ByteView data);
};

// -------------------------------------------------------------- extensions

Bytes encode_extensions(const std::vector<Extension>& extensions);
std::vector<Extension> parse_extensions(Reader& r);

/// server_name extension helpers (host_name entry only).
Bytes encode_sni(std::string_view host);
std::optional<std::string> parse_sni(ByteView data);

}  // namespace mbtls::tls
