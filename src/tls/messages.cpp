#include "tls/messages.h"

#include "tls/record.h"
#include "util/writer.h"

namespace mbtls::tls {

Bytes wrap_handshake(HandshakeType type, ByteView body) {
  Bytes out;
  put_u8(out, static_cast<std::uint8_t>(type));
  put_u24(out, static_cast<std::uint32_t>(body.size()));
  append(out, body);
  return out;
}

void HandshakeReassembler::feed(ByteView record_payload) { append(buffer_, record_payload); }

std::optional<HandshakeMsg> HandshakeReassembler::next() {
  if (buffer_.size() < 4) return std::nullopt;
  const std::uint32_t len = get_u24(buffer_, 1);
  if (buffer_.size() < 4 + len) return std::nullopt;
  HandshakeMsg msg;
  msg.type = static_cast<HandshakeType>(buffer_[0]);
  msg.body.assign(buffer_.begin() + 4, buffer_.begin() + 4 + len);
  msg.raw.assign(buffer_.begin(), buffer_.begin() + 4 + len);
  buffer_.erase(buffer_.begin(), buffer_.begin() + 4 + len);
  return msg;
}

// -------------------------------------------------------------- extensions

Bytes encode_extensions(const std::vector<Extension>& extensions) {
  Writer w;
  {
    Writer::LengthPrefix total(w, 2);
    for (const auto& ext : extensions) {
      w.u16(ext.type);
      w.vec16(ext.data);
    }
  }
  return w.take();
}

std::vector<Extension> parse_extensions(Reader& r) {
  std::vector<Extension> out;
  if (r.empty()) return out;  // extensions block is optional
  Reader exts(r.vec16());
  while (!exts.empty()) {
    Extension ext;
    ext.type = exts.u16();
    ext.data = to_bytes(exts.vec16());
    out.push_back(std::move(ext));
  }
  exts.expect_end();
  return out;
}

Bytes encode_sni(std::string_view host) {
  Writer w;
  {
    Writer::LengthPrefix list(w, 2);
    w.u8(0);  // host_name
    w.vec16(to_bytes(host));
  }
  return w.take();
}

std::optional<std::string> parse_sni(ByteView data) {
  try {
    Reader r(data);
    Reader list(r.vec16());
    r.expect_end();
    std::optional<std::string> host;
    while (!list.empty()) {
      const std::uint8_t name_type = list.u8();
      const ByteView name = list.vec16();
      if (name_type == 0 && !host) host = mbtls::to_string(name);
    }
    list.expect_end();
    return host;
  } catch (const DecodeError&) {
    return std::nullopt;
  }
}

// ----------------------------------------------------------------- hellos

Bytes ClientHello::encode_body() const {
  Writer w;
  w.u16(kVersionTls12);
  w.raw(random);
  w.vec8(session_id);
  {
    Writer::LengthPrefix suites(w, 2);
    for (const auto s : cipher_suites) w.u16(s);
  }
  w.vec8(Bytes{0});  // null compression only
  w.raw(encode_extensions(extensions));
  return w.take();
}

ClientHello ClientHello::parse(ByteView body) {
  Reader r(body);
  const std::uint16_t version = r.u16();
  if (version != kVersionTls12)
    throw ProtocolError(AlertDescription::kProtocolVersion, "unsupported TLS version");
  ClientHello hello;
  hello.random = to_bytes(r.bytes(32));
  hello.session_id = to_bytes(r.vec8());
  Reader suites(r.vec16());
  while (!suites.empty()) hello.cipher_suites.push_back(suites.u16());
  suites.expect_end();
  r.vec8();  // compression methods
  hello.extensions = parse_extensions(r);
  r.expect_end();
  return hello;
}

const Extension* ClientHello::find_extension(std::uint16_t type) const {
  for (const auto& ext : extensions) {
    if (ext.type == type) return &ext;
  }
  return nullptr;
}

Bytes ServerHello::encode_body() const {
  Writer w;
  w.u16(kVersionTls12);
  w.raw(random);
  w.vec8(session_id);
  w.u16(cipher_suite);
  w.u8(0);  // null compression
  w.raw(encode_extensions(extensions));
  return w.take();
}

ServerHello ServerHello::parse(ByteView body) {
  Reader r(body);
  const std::uint16_t version = r.u16();
  if (version != kVersionTls12)
    throw ProtocolError(AlertDescription::kProtocolVersion, "unsupported TLS version");
  ServerHello hello;
  hello.random = to_bytes(r.bytes(32));
  hello.session_id = to_bytes(r.vec8());
  hello.cipher_suite = r.u16();
  r.u8();  // compression
  hello.extensions = parse_extensions(r);
  r.expect_end();
  return hello;
}

// ------------------------------------------------------------ certificates

Bytes CertificateMsg::encode_body() const {
  Writer w;
  {
    Writer::LengthPrefix list(w, 3);
    for (const auto& cert : chain_der) w.vec24(cert);
  }
  return w.take();
}

CertificateMsg CertificateMsg::parse(ByteView body) {
  Reader r(body);
  CertificateMsg msg;
  Reader list(r.vec24());
  while (!list.empty()) msg.chain_der.push_back(to_bytes(list.vec24()));
  list.expect_end();
  r.expect_end();
  return msg;
}

// ------------------------------------------------------------ key exchange

Bytes ServerKeyExchange::params_bytes() const {
  Writer w;
  if (kx == KeyExchange::kEcdhe) {
    w.u8(3);    // curve_type = named_curve
    w.u16(23);  // secp256r1
    w.vec8(ec_point);
  } else {
    w.vec16(dh_p);
    w.vec16(dh_g);
    w.vec16(dh_ys);
  }
  return w.take();
}

Bytes ServerKeyExchange::encode_body() const {
  Writer w;
  w.raw(params_bytes());
  w.u8(sig_hash);
  w.u8(sig_algo);
  w.vec16(signature);
  return w.take();
}

ServerKeyExchange ServerKeyExchange::parse(ByteView body, KeyExchange kx) {
  Reader r(body);
  ServerKeyExchange ske;
  ske.kx = kx;
  if (kx == KeyExchange::kEcdhe) {
    const std::uint8_t curve_type = r.u8();
    const std::uint16_t curve = r.u16();
    if (curve_type != 3 || curve != 23)
      throw ProtocolError(AlertDescription::kIllegalParameter, "unsupported curve");
    ske.ec_point = to_bytes(r.vec8());
  } else {
    ske.dh_p = to_bytes(r.vec16());
    ske.dh_g = to_bytes(r.vec16());
    ske.dh_ys = to_bytes(r.vec16());
  }
  ske.sig_hash = r.u8();
  ske.sig_algo = r.u8();
  ske.signature = to_bytes(r.vec16());
  r.expect_end();
  return ske;
}

Bytes ClientKeyExchange::encode_body() const {
  Writer w;
  if (kx == KeyExchange::kEcdhe)
    w.vec8(public_value);
  else
    w.vec16(public_value);
  return w.take();
}

ClientKeyExchange ClientKeyExchange::parse(ByteView body, KeyExchange kx) {
  Reader r(body);
  ClientKeyExchange cke;
  cke.kx = kx;
  cke.public_value = to_bytes(kx == KeyExchange::kEcdhe ? r.vec8() : r.vec16());
  r.expect_end();
  return cke;
}

// ------------------------------------------------------------- attestation

Bytes SgxAttestationMsg::encode_body() const {
  Writer w;
  w.vec16(quote);
  return w.take();
}

SgxAttestationMsg SgxAttestationMsg::parse(ByteView body) {
  Reader r(body);
  SgxAttestationMsg msg;
  msg.quote = to_bytes(r.vec16());
  r.expect_end();
  return msg;
}

// ------------------------------------------------- MiddleboxSupport (mbTLS)

Bytes MiddleboxSupportExtension::encode() const {
  Writer w;
  w.u8(static_cast<std::uint8_t>(optimistic_hellos.size()));
  for (const auto& hello : optimistic_hellos) w.vec16(hello);
  w.u8(static_cast<std::uint8_t>(known_middleboxes.size()));
  for (const auto& name : known_middleboxes) w.vec8(to_bytes(name));
  return w.take();
}

MiddleboxSupportExtension MiddleboxSupportExtension::parse(ByteView data) {
  Reader r(data);
  MiddleboxSupportExtension ext;
  const std::uint8_t num_hellos = r.u8();
  for (std::uint8_t i = 0; i < num_hellos; ++i) ext.optimistic_hellos.push_back(to_bytes(r.vec16()));
  const std::uint8_t num_mboxes = r.u8();
  for (std::uint8_t i = 0; i < num_mboxes; ++i)
    ext.known_middleboxes.push_back(mbtls::to_string(r.vec8()));
  r.expect_end();
  return ext;
}

// -------------------------------------------- MBTLSKeyMaterial record body

namespace {
void encode_hop_keys(Writer& w, const HopKeys& keys) {
  w.vec8(keys.client_to_server_key);
  w.vec8(keys.client_to_server_iv);
  w.vec8(keys.server_to_client_key);
  w.vec8(keys.server_to_client_iv);
  w.u64(keys.client_to_server_seq);
  w.u64(keys.server_to_client_seq);
}

HopKeys parse_hop_keys(Reader& r) {
  HopKeys keys;
  keys.client_to_server_key = to_bytes(r.vec8());
  keys.client_to_server_iv = to_bytes(r.vec8());
  keys.server_to_client_key = to_bytes(r.vec8());
  keys.server_to_client_iv = to_bytes(r.vec8());
  keys.client_to_server_seq = r.u64();
  keys.server_to_client_seq = r.u64();
  return keys;
}
}  // namespace

Bytes KeyMaterialMsg::encode() const {
  Writer w;
  w.u16(version);
  w.u16(cipher_suite);
  encode_hop_keys(w, toward_client);
  encode_hop_keys(w, toward_server);
  return w.take();
}

std::optional<KeyMaterialMsg> KeyMaterialMsg::parse(ByteView data) {
  try {
    Reader r(data);
    KeyMaterialMsg msg;
    msg.version = r.u16();
    msg.cipher_suite = r.u16();
    msg.toward_client = parse_hop_keys(r);
    msg.toward_server = parse_hop_keys(r);
    r.expect_end();
    return msg;
  } catch (const DecodeError&) {
    return std::nullopt;
  }
}

// ----------------------------------------------------- Encapsulated records

Bytes EncapsulatedRecord::encode() const {
  Bytes out;
  put_u8(out, subchannel);
  append(out, inner_record);
  return out;
}

std::optional<EncapsulatedRecord> EncapsulatedRecord::parse(ByteView data) {
  if (data.size() < 1 + kRecordHeaderSize) return std::nullopt;
  EncapsulatedRecord rec;
  rec.subchannel = data[0];
  rec.inner_record = to_bytes(data.subspan(1));
  return rec;
}

}  // namespace mbtls::tls
