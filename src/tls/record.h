// TLS 1.2 record protocol with AES-GCM AEAD protection (RFC 5288).
//
// The codec is exposed standalone (not buried in the Engine) because mbTLS
// middleboxes re-protect records hop by hop: they open a record with the
// inbound hop's keys and seal it with the outbound hop's keys, maintaining
// independent sequence numbers per hop. `HopChannel` models exactly one
// direction of one hop.
#pragma once

#include <deque>
#include <optional>

#include "crypto/gcm.h"
#include "tls/common.h"
#include "tls/prf.h"
#include "util/trace.h"

namespace mbtls::tls {

constexpr std::size_t kRecordHeaderSize = 5;
constexpr std::size_t kMaxRecordPayload = 1 << 14;
constexpr std::size_t kExplicitNonceSize = 8;

struct Record {
  ContentType type = ContentType::kHandshake;
  Bytes payload;
};

/// Frame a plaintext record (no encryption).
Bytes frame_plaintext_record(ContentType type, ByteView payload);

/// One direction of one protected hop: sequence number + AEAD state.
class HopChannel {
 public:
  HopChannel(const DirectionKeys& keys, std::uint64_t initial_seq = 0);

  /// Seal a record: returns the full wire record (header + explicit nonce +
  /// ciphertext + tag). Increments the sequence number.
  Bytes seal(ContentType type, ByteView plaintext);

  /// Open a protected record body (everything after the 5-byte header).
  /// Returns nullopt on authentication failure. Increments the sequence
  /// number on success.
  std::optional<Bytes> open(ContentType type, ByteView body);

  /// Allocation-free seal: appends the full wire record to `out`, sealing
  /// directly into the grown tail (the nonce and AAD live on the stack).
  /// `plaintext` must not alias `out`. An accumulating output buffer reuses
  /// its capacity across records, so the steady-state data plane never
  /// allocates per record.
  void seal_into(ContentType type, ByteView plaintext, Bytes& out);

  /// Allocation-free open: decrypts the record body in place and returns a
  /// view of the plaintext (a sub-span of `body`), or nullopt on
  /// authentication failure (body unmodified). Increments the sequence
  /// number on success.
  std::optional<MutableByteView> open_in_place(ContentType type, MutableByteView body);

  std::uint64_t sequence() const { return seq_; }

  /// Attach a trace emitter; every sealed/opened record then produces a
  /// "tls record.seal"/"record.open" event. Detached (the default) the data
  /// plane pays exactly one predicted branch per record.
  void set_trace(trace::Emitter em) { trace_ = std::move(em); }

 private:
  crypto::AesGcm aead_;
  Bytes fixed_iv_;
  std::uint64_t seq_;
  trace::Emitter trace_;
};

/// Incremental record parser: feed raw transport bytes, pop complete records
/// (still encrypted if the connection is protected). Used by the engine and
/// by middleboxes that forward records without joining a session.
class RecordReader {
 public:
  /// Append transport bytes.
  void feed(ByteView data);

  /// Pop the next complete record: {type, body-bytes-after-header}. Throws
  /// ProtocolError(kDecodeError / kRecordOverflow) on malformed framing.
  std::optional<Record> next();

  /// Raw bytes of the next complete record (header included) without
  /// consuming — or consume with `take_raw`. Middleboxes forwarding opaque
  /// records use this to cut through without re-framing.
  std::optional<Bytes> take_raw();

  /// Allocation-free variant: assigns the next complete record into `raw`
  /// (reusing its capacity) and returns true, or returns false with `raw`
  /// untouched when no complete record is buffered. The middlebox data path
  /// drains records through one reused scratch buffer with this.
  bool take_raw_into(Bytes& raw);

  bool buffer_empty() const { return pos_ == buffer_.size(); }

 private:
  std::optional<std::size_t> complete_record_size() const;
  void consume(std::size_t n);

  // Consumed-offset cursor: `pos_` marks how far records have been popped.
  // Erasing the front of the buffer per record is O(n^2) across a burst of
  // small records; instead the consumed prefix is dropped only when the
  // buffer fully drains (the common case — clear() keeps capacity) or once
  // it exceeds kCompactThreshold, which amortizes the memmove.
  static constexpr std::size_t kCompactThreshold = 64 * 1024;
  Bytes buffer_;
  std::size_t pos_ = 0;
};

}  // namespace mbtls::tls
