// Stateless session tickets under a rotating AEAD key (§3.5 at scale).
//
// A single fixed ticket key (Config::ticket_key) is fine for one process and
// one lifetime; a million-user control plane rotates its ticket-protection
// key on a schedule so a key compromise only exposes tickets from the last
// rotation window. The manager keeps exactly two generations live:
//
//   * tickets seal under the CURRENT key and carry its 16-byte key name;
//   * tickets sealed under the PREVIOUS key still unseal (clients resuming
//     across one rotation stay on the fast path) but are flagged stale so
//     the server reissues a fresh ticket under the current key;
//   * anything older — or any unknown key name — is rejected, which the
//     engine turns into a clean fall back to a full handshake.
//
// Thread safety: one manager is shared by every server engine in the
// process (that is the point — rotation is a fleet-wide event), so all
// methods take an internal lock. The hot path is one AES-256-GCM call.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string_view>

#include "crypto/drbg.h"
#include "util/bytes.h"

namespace mbtls::tls {

class TicketKeyManager {
 public:
  static constexpr std::size_t kKeyNameLen = 16;
  static constexpr std::size_t kIvLen = 12;
  static constexpr std::size_t kTagLen = 16;
  /// Smallest well-formed ticket: key name, IV, and the AEAD tag of an
  /// empty plaintext. Anything shorter is rejected before any crypto runs.
  static constexpr std::size_t kMinTicketLen = kKeyNameLen + kIvLen + kTagLen;

  /// Seeds the key schedule deterministically (benchmarks, reproducible
  /// tests); production embedders pick a high-entropy seed.
  explicit TicketKeyManager(std::string_view label = "ticket-keys",
                            std::uint64_t seed = 0);
  ~TicketKeyManager();
  TicketKeyManager(const TicketKeyManager&) = delete;
  TicketKeyManager& operator=(const TicketKeyManager&) = delete;

  /// Retire the previous key, demote the current key, and install a fresh
  /// one. Tickets sealed two or more rotations ago stop unsealing.
  void rotate();

  /// Seal `plaintext` into key_name || iv || ciphertext || tag under the
  /// current key.
  Bytes seal(ByteView plaintext);

  struct Unsealed {
    Bytes plaintext;
    /// Sealed under the previous (still-accepted) key: the caller should
    /// reissue a fresh ticket so the client survives the next rotation too.
    bool stale = false;
  };

  /// Open a ticket sealed by this manager under the current or previous
  /// key. Unknown key name, truncation, or authentication failure yield
  /// nullopt — the caller falls back to a full handshake, never an abort.
  std::optional<Unsealed> unseal(ByteView ticket);

  /// How many times rotate() has run (generation of the current key).
  std::uint64_t generation() const;

  struct Stats {
    std::uint64_t seals = 0;
    std::uint64_t unseal_current = 0;  // opened under the current key
    std::uint64_t unseal_stale = 0;    // opened under the previous key
    std::uint64_t rejects = 0;         // unknown name / truncated / bad tag
  };
  Stats stats() const;

 private:
  struct Key {
    Bytes name;    // public 16-byte identifier, sent in the clear
    Bytes secret;  // lint: secret
    ~Key() { secure_wipe(secret); }
  };

  Key fresh_key_locked();

  mutable std::mutex mu_;
  crypto::Drbg rng_;
  Key current_;
  Key previous_;  // empty name = no previous generation yet
  std::uint64_t generation_ = 0;
  Stats stats_;
};

}  // namespace mbtls::tls
