// The "naive approach" baseline (paper Figure 1): establish a normal
// end-to-end TLS session, then pass the session keys to the middlebox over a
// separate, secondary TLS session.
//
// This provides secrecy against pure network attackers, but the same
// symmetric keys protect every hop, so (Table 1 / §3.3):
//  * an adversary can compare records entering and leaving the middlebox and
//    learn whether it modified them (no P1C),
//  * records can be made to skip the middlebox entirely (no P4),
//  * on untrusted infrastructure the keys sit in plain memory (no P1A/P2).
#pragma once

#include <memory>

#include "mbtls/middlebox.h"

namespace mbtls::baselines {

/// Wire format for the key handoff over the secondary session.
Bytes encode_session_keys(const tls::ConnectionKeys& keys);
std::optional<tls::ConnectionKeys> decode_session_keys(ByteView data);

/// The middlebox half: terminates the secondary TLS session (server role) on
/// a dedicated byte stream, receives the session keys, then transparently
/// decrypts / re-encrypts primary-session records flowing through it.
class NaiveKeyShareMiddlebox {
 public:
  struct Options {
    std::shared_ptr<x509::PrivateKey> private_key;
    std::vector<x509::Certificate> certificate_chain;
    sgx::MemoryStore* untrusted_store = nullptr;  // where the keys land
    mb::Middlebox::Processor processor;
    std::string rng_label = "naive-mbox";
  };

  explicit NaiveKeyShareMiddlebox(Options options);

  // Secondary (control) stream carrying the key handoff.
  void feed_control(ByteView data);
  Bytes take_control_output();

  // Primary data path (records between client and server).
  void feed_from_client(ByteView data);
  void feed_from_server(ByteView data);
  Bytes take_to_client();
  Bytes take_to_server();

  bool has_keys() const { return keys_.has_value(); }

 private:
  void process_record(bool from_client, const tls::Record& record, const Bytes& raw);

  Options options_;
  tls::Engine control_;
  std::optional<tls::HopChannel> c2s_open_, c2s_seal_;
  std::optional<tls::HopChannel> s2c_open_, s2c_seal_;
  std::optional<tls::ConnectionKeys> keys_;
  tls::RecordReader down_reader_, up_reader_;
  Bytes to_client_, to_server_;
};

/// Client-side helper: after completing a normal TLS handshake, hand the
/// session keys to the middlebox over a fresh TLS session on `control`.
class NaiveKeyShareClient {
 public:
  struct Options {
    tls::Config tls;                  // primary session config
    tls::Config control_tls;          // secondary session config (client)
  };

  explicit NaiveKeyShareClient(Options options);

  void start();
  void feed(ByteView data);           // primary stream
  Bytes take_output();
  void feed_control(ByteView data);   // secondary stream
  Bytes take_control_output();

  bool ready() const { return keys_sent_; }
  tls::Engine& primary() { return primary_; }

 private:
  void maybe_send_keys();

  tls::Engine primary_;
  tls::Engine control_;
  bool keys_sent_ = false;
};

}  // namespace mbtls::baselines
