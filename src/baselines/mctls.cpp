#include "baselines/mctls.h"

#include "crypto/hkdf.h"
#include "crypto/hmac.h"
#include "util/ct.h"

namespace mbtls::baselines {

namespace {
constexpr std::size_t kMacLen = 32;

Bytes mac_over(ByteView key, std::uint64_t seq, ByteView payload) {
  Bytes input;
  put_u64(input, seq);
  append(input, payload);
  return crypto::hmac(crypto::HashAlgo::kSha256, key, input);
}
}  // namespace

McContextKeys derive_context_keys(ByteView client_share, ByteView server_share) {
  Bytes ikm = concat({client_share, server_share});
  McContextKeys keys;
  keys.reader_key = crypto::hkdf(crypto::HashAlgo::kSha256, {}, ikm,
                                 to_bytes(std::string_view("mctls reader")), 32);
  keys.writer_mac = crypto::hkdf(crypto::HashAlgo::kSha256, {}, ikm,
                                 to_bytes(std::string_view("mctls writer")), 32);
  keys.endpoint_mac = crypto::hkdf(crypto::HashAlgo::kSha256, {}, ikm,
                                   to_bytes(std::string_view("mctls endpoint")), 32);
  secure_wipe(ikm);
  return keys;
}

McPartyKeys keys_for(const McContextKeys& keys, McPermission permission, bool is_endpoint) {
  McPartyKeys party;
  party.permission = is_endpoint ? McPermission::kReadWrite : permission;
  if (permission >= McPermission::kRead || is_endpoint) party.reader_key = keys.reader_key;
  if (permission == McPermission::kReadWrite || is_endpoint) party.writer_mac = keys.writer_mac;
  if (is_endpoint) party.endpoint_mac = keys.endpoint_mac;
  return party;
}

McRecordLayer::McRecordLayer(McPartyKeys keys, std::uint64_t seq)
    : keys_(std::move(keys)), seal_seq_(seq), open_seq_(seq) {
  if (!keys_.reader_key.empty()) aead_.emplace(keys_.reader_key);
}

Bytes McRecordLayer::seal(ByteView payload) {
  if (keys_.writer_mac.empty())
    throw std::logic_error("mcTLS: sealing requires at least write permission");
  Bytes inner = to_bytes(payload);
  append(inner, mac_over(keys_.writer_mac, seal_seq_, payload));
  // Parties without the endpoint key carry the endpoint MAC *through* — but
  // when originating (this API), a non-endpoint writer stamps zeros, which
  // endpoints then read as "modified by writer".
  if (!keys_.endpoint_mac.empty()) {
    append(inner, mac_over(keys_.endpoint_mac, seal_seq_, payload));
  } else {
    inner.resize(inner.size() + kMacLen, 0);
  }
  Bytes iv(4, 0);
  put_u64(iv, seal_seq_);
  ++seal_seq_;
  return aead_->seal(iv, {}, inner);
}

std::optional<McRecordLayer::Opened> McRecordLayer::open(ByteView record) {
  if (!aead_) return std::nullopt;
  Bytes iv(4, 0);
  put_u64(iv, open_seq_);
  auto inner = aead_->open(iv, {}, record);
  if (!inner || inner->size() < 2 * kMacLen) return std::nullopt;
  const std::size_t payload_len = inner->size() - 2 * kMacLen;
  Opened out;
  out.payload.assign(inner->begin(), inner->begin() + static_cast<std::ptrdiff_t>(payload_len));
  const ByteView writer_tag(inner->data() + payload_len, kMacLen);
  const ByteView endpoint_tag(inner->data() + payload_len + kMacLen, kMacLen);

  out.verdict = McVerdict::kUntouched;
  if (!keys_.writer_mac.empty()) {
    const Bytes expected_writer = mac_over(keys_.writer_mac, open_seq_, out.payload);
    if (!ct::equal(expected_writer, writer_tag)) {
      out.verdict = McVerdict::kIllegallyModified;
      ++open_seq_;
      return out;
    }
  }
  if (!keys_.endpoint_mac.empty()) {
    const Bytes expected_endpoint = mac_over(keys_.endpoint_mac, open_seq_, out.payload);
    if (!ct::equal(expected_endpoint, endpoint_tag)) {
      out.verdict = McVerdict::kModifiedByWriter;
    }
  }
  ++open_seq_;
  return out;
}

McMiddlebox::McMiddlebox(McPartyKeys keys, Processor processor)
    : layer_(std::move(keys)), processor_(std::move(processor)) {}

Bytes McMiddlebox::process(ByteView record) {
  const auto opened = layer_.open(record);
  if (!opened) return to_bytes(record);  // no read access: pass through opaquely
  last_seen_ = opened->payload;
  if (layer_.permission() != McPermission::kReadWrite || !processor_) {
    // Read-only (or no processor): forward the ORIGINAL bytes. Re-sealing
    // without the writer key would be detected; see the tests, where a
    // malicious reader tries exactly that.
    return to_bytes(record);
  }
  const Bytes transformed = processor_(opened->payload);
  return layer_.seal(transformed);
}

McSessionSetup mctls_setup(const std::vector<McPermission>& middlebox_permissions,
                           const x509::CertificateAuthority& ca, crypto::Drbg& rng) {
  // Both endpoints generate contributions. These travel to each middlebox
  // over a real TLS session per (endpoint, middlebox) pair — run here over
  // in-memory pipes. A middlebox the server does not keyshare with gets
  // nothing, however much the client wants it in: that is the §2.2
  // "Authorization: both endpoints" property (and the legacy-interop cost).
  const Bytes client_share = rng.bytes(32);
  const Bytes server_share = rng.bytes(32);

  McSessionSetup setup;
  setup.context = derive_context_keys(client_share, server_share);

  // Issue one middlebox identity for the secondary sessions.
  auto mbox_key = std::make_shared<x509::PrivateKey>(
      x509::PrivateKey::generate(x509::KeyType::kEcdsaP256, rng));
  x509::CertRequest req;
  req.subject_cn = "mctls-mbox.example";
  req.not_after = 2524607999;
  req.key = mbox_key->public_key();
  const auto mbox_cert = ca.issue(req, rng);

  for (std::size_t i = 0; i < middlebox_permissions.size(); ++i) {
    // Two secondary TLS sessions deliver the two shares.
    Bytes received_client_share, received_server_share;
    for (int leg = 0; leg < 2; ++leg) {
      tls::Config ccfg;
      ccfg.is_client = true;
      ccfg.trust_anchors = {ca.root()};
      ccfg.server_name = "mctls-mbox.example";
      ccfg.rng_label = "mctls-share";
      ccfg.rng_seed = i * 2 + static_cast<std::size_t>(leg);
      tls::Engine endpoint(ccfg);
      tls::Config mcfg;
      mcfg.is_client = false;
      mcfg.private_key = mbox_key;
      mcfg.certificate_chain = {mbox_cert};
      mcfg.rng_label = "mctls-mbox";
      mcfg.rng_seed = 1000 + i * 2 + static_cast<std::size_t>(leg);
      tls::Engine mbox(mcfg);
      endpoint.start();
      for (int p = 0; p < 20; ++p) {
        const Bytes a = endpoint.take_output();
        const Bytes b = mbox.take_output();
        if (a.empty() && b.empty()) break;
        if (!a.empty()) mbox.feed(a);
        if (!b.empty()) endpoint.feed(b);
      }
      endpoint.send(leg == 0 ? client_share : server_share);
      mbox.feed(endpoint.take_output());
      (leg == 0 ? received_client_share : received_server_share) = mbox.take_plaintext();
    }
    const McContextKeys derived =
        derive_context_keys(received_client_share, received_server_share);
    setup.middleboxes.push_back(
        keys_for(derived, middlebox_permissions[i], /*is_endpoint=*/false));
  }
  return setup;
}

}  // namespace mbtls::baselines
