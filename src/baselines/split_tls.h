// "Split TLS" baseline (§2.2): TLS interception with a custom root CA.
//
// The middlebox terminates the client's TLS session by fabricating a
// certificate for the requested server name (signed by a root the client was
// provisioned to trust) and opens an independent TLS session to the server.
// This is the practice mbTLS replaces; it appears in Figure 5 (handshake CPU
// comparison) and in the Table-1 attack harness (the client cannot
// authenticate the real server; the middlebox sees everything).
#pragma once

#include <map>
#include <memory>

#include "mbtls/middlebox.h"
#include "x509/certificate.h"

namespace mbtls::baselines {

class SplitTlsMiddlebox {
 public:
  struct Options {
    /// The interception CA whose root the client trusts.
    const x509::CertificateAuthority* ca = nullptr;
    /// Identity used on the middlebox->server connection (client role): the
    /// middlebox validates the real server chain against these anchors —
    /// or not at all, which is the widely-deployed misconfiguration the
    /// paper cites ([23]).
    std::vector<x509::Certificate> upstream_trust_anchors;
    bool verify_upstream = true;
    std::int64_t now = 1500000000;
    mb::Middlebox::Processor processor;
    /// Where this middlebox's session secrets live (plain process memory on
    /// the hosting platform — split TLS has no enclave story).
    sgx::MemoryStore* secret_store = nullptr;
    std::string rng_label = "split-mbox";
    std::uint64_t rng_seed = 7;
  };

  explicit SplitTlsMiddlebox(Options options);

  void feed_from_client(ByteView data);
  void feed_from_server(ByteView data);
  Bytes take_to_client();
  Bytes take_to_server();

  bool both_established() const;
  bool failed() const { return failed_; }
  const std::string& error_message() const { return error_; }

  /// The plaintext this middlebox observed (it sees everything).
  const Bytes& observed_c2s() const { return observed_c2s_; }
  const Bytes& observed_s2c() const { return observed_s2c_; }

 private:
  void start_downstream(const tls::Record& client_hello_record);
  void pump_app_data();

  Options options_;
  crypto::Drbg rng_;
  std::unique_ptr<tls::Engine> downstream_;  // server role toward the client
  std::unique_ptr<tls::Engine> upstream_;    // client role toward the server
  tls::RecordReader down_reader_;
  Bytes to_client_, to_server_;
  Bytes observed_c2s_, observed_s2c_;
  bool failed_ = false;
  std::string error_;
};

}  // namespace mbtls::baselines
