// mcTLS-style baseline (Naylor et al., SIGCOMM'15), as characterized in the
// paper's §2.2 design space: endpoints grant middleboxes *partial* access —
// read-only or read-write — to the data stream, enforced cryptographically
// with layered keys and a stack of MACs per record.
//
// What this gives that mbTLS does not: a read-only middlebox provably
// cannot modify data (endpoints detect it). What it costs, per §2.2: both
// endpoints must speak the protocol (no legacy interop — enforced here by
// construction: context keys are derived from key-material contributions of
// BOTH endpoints), and endpoints cannot tell *which* writer modified data.
//
// Implementation notes. One access "context" spans the whole stream (the
// real mcTLS allows several; one suffices for the design-space experiments).
// Per context there are three key layers:
//   readers   : AES-GCM key (+ its implicit integrity) — anyone with read
//               access can decrypt and re-encrypt,
//   writers   : HMAC key over the plaintext — only writers can produce it,
//   endpoints : HMAC key over the plaintext — only endpoints can produce it.
// A record is AES-GCM(payload || writer_mac || endpoint_mac). An endpoint
// accepting a record learns one of three things: untouched (both MACs
// verify), legitimately modified by a writer (writer MAC verifies, endpoint
// MAC does not), or ILLEGALLY modified (writer MAC fails — e.g. a reader
// tried to write). Key shares travel to middleboxes over real secondary TLS
// sessions, one from each endpoint, mirroring mcTLS's requirement that a
// middlebox gains access only if both endpoints agree.
#pragma once

#include <optional>

#include "crypto/drbg.h"
#include "crypto/gcm.h"
#include "tls/engine.h"

namespace mbtls::baselines {

enum class McPermission : std::uint8_t { kNone = 0, kRead = 1, kReadWrite = 2 };

/// The derived key layers for one context.
struct McContextKeys {
  Bytes reader_key;    // 32 bytes, AES-256-GCM
  Bytes writer_mac;    // 32 bytes, HMAC-SHA-256
  Bytes endpoint_mac;  // 32 bytes
};

/// Derive the context keys from both endpoints' contributions. Either share
/// alone yields nothing (tested): the HKDF input is the concatenation.
McContextKeys derive_context_keys(ByteView client_share, ByteView server_share);

/// The key subset a party holds, by permission.
struct McPartyKeys {
  McPermission permission = McPermission::kNone;
  Bytes reader_key;
  Bytes writer_mac;    // empty unless kReadWrite (or endpoint)
  Bytes endpoint_mac;  // empty unless endpoint
};

McPartyKeys keys_for(const McContextKeys& keys, McPermission permission, bool is_endpoint);

/// What an endpoint learns when opening a record (§2.2: mcTLS's extra
/// signal that mbTLS deliberately trades away).
enum class McVerdict {
  kUntouched,           // endpoint MAC verified
  kModifiedByWriter,    // writer MAC verified, endpoint MAC did not
  kIllegallyModified,   // writer MAC failed: a reader or attacker wrote
  kAuthFailed,          // outer decryption failed (wrong keys / corrupted)
};

/// Record codec. Sequence numbers are per-sender-direction like TLS.
class McRecordLayer {
 public:
  McRecordLayer(McPartyKeys keys, std::uint64_t seq = 0);

  /// Endpoint/writer: seal payload with fresh MACs (writers update the
  /// writer MAC; only endpoints can mint the endpoint MAC — sealing with
  /// reader-only keys throws).
  Bytes seal(ByteView payload);

  struct Opened {
    Bytes payload;
    McVerdict verdict;
  };
  /// Open a record; verdict depends on which MAC layers this party holds.
  std::optional<Opened> open(ByteView record);

  McPermission permission() const { return keys_.permission; }

 private:
  McPartyKeys keys_;
  std::optional<crypto::AesGcm> aead_;  // absent without read permission
  std::uint64_t seal_seq_;
  std::uint64_t open_seq_;
};

/// A middlebox in an mcTLS session: holds keys per its permission and
/// re-seals records it is allowed to change.
class McMiddlebox {
 public:
  using Processor = std::function<Bytes(ByteView)>;

  McMiddlebox(McPartyKeys keys, Processor processor);

  /// Process one record in the client->server direction. Read-only boxes
  /// can observe (`last_seen`) but any modification they attempt is
  /// detectable; this API hands back the (re-sealed or original) record.
  Bytes process(ByteView record);

  const Bytes& last_seen() const { return last_seen_; }

 private:
  McRecordLayer layer_;
  Processor processor_;
  Bytes last_seen_;
};

/// Runs the mcTLS context-key setup: endpoints generate shares and deliver
/// them to each middlebox over REAL secondary TLS sessions (one from the
/// client, one from the server — both endpoints must participate, which is
/// exactly why mcTLS cannot include a legacy endpoint).
struct McSessionSetup {
  McContextKeys context;                 // full keys (endpoint view)
  std::vector<McPartyKeys> middleboxes;  // per-middlebox key subsets
};

McSessionSetup mctls_setup(const std::vector<McPermission>& middlebox_permissions,
                           const x509::CertificateAuthority& ca, crypto::Drbg& rng);

}  // namespace mbtls::baselines
