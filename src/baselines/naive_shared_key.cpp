#include "baselines/naive_shared_key.h"

namespace mbtls::baselines {

Bytes encode_session_keys(const tls::ConnectionKeys& keys) {
  Bytes out;
  put_u16(out, static_cast<std::uint16_t>(keys.suite));
  auto put_dir = [&](const tls::DirectionKeys& d) {
    put_u8(out, static_cast<std::uint8_t>(d.key.size()));
    append(out, d.key);
    put_u8(out, static_cast<std::uint8_t>(d.fixed_iv.size()));
    append(out, d.fixed_iv);
  };
  put_dir(keys.keys.client_write);
  put_dir(keys.keys.server_write);
  put_u64(out, keys.client_seq);
  put_u64(out, keys.server_seq);
  return out;
}

std::optional<tls::ConnectionKeys> decode_session_keys(ByteView data) {
  try {
    Reader r(data);
    tls::ConnectionKeys keys;
    keys.suite = static_cast<tls::CipherSuite>(r.u16());
    auto get_dir = [&](tls::DirectionKeys& d) {
      d.key = to_bytes(r.vec8());
      d.fixed_iv = to_bytes(r.vec8());
    };
    get_dir(keys.keys.client_write);
    get_dir(keys.keys.server_write);
    keys.client_seq = r.u64();
    keys.server_seq = r.u64();
    r.expect_end();
    return keys;
  } catch (const DecodeError&) {
    return std::nullopt;
  }
}

// ------------------------------------------------------------- middlebox

namespace {
tls::Config control_server_config(const NaiveKeyShareMiddlebox::Options& options) {
  tls::Config cfg;
  cfg.is_client = false;
  cfg.private_key = options.private_key;
  cfg.certificate_chain = options.certificate_chain;
  cfg.rng_label = options.rng_label + "/control";
  cfg.secret_store = options.untrusted_store;
  cfg.secret_prefix = "naive-mbox/control/";
  return cfg;
}
}  // namespace

NaiveKeyShareMiddlebox::NaiveKeyShareMiddlebox(Options options)
    : options_(std::move(options)), control_(control_server_config(options_)) {}

void NaiveKeyShareMiddlebox::feed_control(ByteView data) {
  control_.feed(data);
  const Bytes plain = control_.take_plaintext();
  if (!plain.empty() && !keys_) {
    const auto keys = decode_session_keys(plain);
    if (keys) {
      keys_ = *keys;
      // The defining weakness of this design on untrusted infrastructure:
      // the end-to-end session keys sit in ordinary memory.
      if (options_.untrusted_store) {
        options_.untrusted_store->put("naive-mbox/client_write_key",
                                      keys->keys.client_write.key);
        options_.untrusted_store->put("naive-mbox/server_write_key",
                                      keys->keys.server_write.key);
      }
      c2s_open_.emplace(keys->keys.client_write, keys->client_seq);
      c2s_seal_.emplace(keys->keys.client_write, keys->client_seq);
      s2c_open_.emplace(keys->keys.server_write, keys->server_seq);
      s2c_seal_.emplace(keys->keys.server_write, keys->server_seq);
    }
  }
}

Bytes NaiveKeyShareMiddlebox::take_control_output() { return control_.take_output(); }

void NaiveKeyShareMiddlebox::process_record(bool from_client, const tls::Record& record,
                                            const Bytes& raw) {
  Bytes& out = from_client ? to_server_ : to_client_;
  if (!keys_ || record.type != tls::ContentType::kApplicationData) {
    append(out, raw);  // handshake traffic etc.: forward opaquely
    return;
  }
  auto& open_ch = from_client ? c2s_open_ : s2c_open_;
  auto& seal_ch = from_client ? c2s_seal_ : s2c_seal_;
  auto opened = open_ch->open(record.type, record.payload);
  if (!opened) {
    append(out, raw);  // not ours to judge; forward
    return;
  }
  Bytes payload = std::move(*opened);
  if (options_.processor) payload = options_.processor(from_client, payload);
  // Re-encrypt with the SAME key and the SAME sequence number: with GCM this
  // reproduces the identical ciphertext when the payload is unmodified —
  // precisely the P1C leak the paper calls out.
  append(out, seal_ch->seal(record.type, payload));
}

void NaiveKeyShareMiddlebox::feed_from_client(ByteView data) {
  down_reader_.feed(data);
  while (auto raw = down_reader_.take_raw()) {
    tls::Record rec;
    rec.type = static_cast<tls::ContentType>((*raw)[0]);
    rec.payload.assign(raw->begin() + tls::kRecordHeaderSize, raw->end());
    process_record(true, rec, *raw);
  }
}

void NaiveKeyShareMiddlebox::feed_from_server(ByteView data) {
  up_reader_.feed(data);
  while (auto raw = up_reader_.take_raw()) {
    tls::Record rec;
    rec.type = static_cast<tls::ContentType>((*raw)[0]);
    rec.payload.assign(raw->begin() + tls::kRecordHeaderSize, raw->end());
    process_record(false, rec, *raw);
  }
}

Bytes NaiveKeyShareMiddlebox::take_to_client() { return std::move(to_client_); }
Bytes NaiveKeyShareMiddlebox::take_to_server() { return std::move(to_server_); }

// ---------------------------------------------------------------- client

NaiveKeyShareClient::NaiveKeyShareClient(Options options)
    : primary_([&] {
        options.tls.is_client = true;
        return options.tls;
      }()),
      control_([&] {
        options.control_tls.is_client = true;
        return options.control_tls;
      }()) {}

void NaiveKeyShareClient::start() {
  primary_.start();
  control_.start();
}

void NaiveKeyShareClient::feed(ByteView data) {
  primary_.feed(data);
  maybe_send_keys();
}

Bytes NaiveKeyShareClient::take_output() { return primary_.take_output(); }

void NaiveKeyShareClient::feed_control(ByteView data) {
  control_.feed(data);
  maybe_send_keys();
}

Bytes NaiveKeyShareClient::take_control_output() { return control_.take_output(); }

void NaiveKeyShareClient::maybe_send_keys() {
  if (keys_sent_ || !primary_.handshake_done() || !control_.handshake_done()) return;
  control_.send(encode_session_keys(primary_.connection_keys()));
  keys_sent_ = true;
}

}  // namespace mbtls::baselines
