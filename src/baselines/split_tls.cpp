#include "baselines/split_tls.h"

namespace mbtls::baselines {

SplitTlsMiddlebox::SplitTlsMiddlebox(Options options)
    : options_(std::move(options)), rng_(options_.rng_label + "/fab", options_.rng_seed) {}

void SplitTlsMiddlebox::start_downstream(const tls::Record& client_hello_record) {
  // Parse the SNI so we can impersonate the right host.
  tls::HandshakeReassembler reasm;
  reasm.feed(client_hello_record.payload);
  const auto msg = reasm.next();
  std::string host = "unknown.invalid";
  tls::ClientHello hello;
  if (msg && msg->type == tls::HandshakeType::kClientHello) {
    hello = tls::ClientHello::parse(msg->body);
    if (const auto* sni = hello.find_extension(tls::kExtServerName)) {
      if (auto name = tls::parse_sni(sni->data)) host = *name;
    }
  }

  // Fabricate a certificate for the host, signed by the interception CA.
  // The key type must suit the client's offered cipher suites: prefer ECDSA
  // (cheap to generate per connection), fall back to RSA if the client only
  // offers *_RSA_* suites.
  bool client_accepts_ecdsa = false;
  for (const auto wire_suite : hello.cipher_suites) {
    const auto info = tls::suite_info(wire_suite);
    if (info && info->auth == tls::AuthAlgo::kEcdsa) client_accepts_ecdsa = true;
  }
  const x509::KeyType fab_type =
      client_accepts_ecdsa ? x509::KeyType::kEcdsaP256 : x509::KeyType::kRsa;
  // Interception proxies cache fabricated certificates per host (key
  // generation would otherwise dominate every connection setup).
  struct FabEntry {
    std::shared_ptr<x509::PrivateKey> key;
    x509::Certificate cert;
  };
  static std::map<std::pair<std::string, int>, FabEntry> fabrication_cache;
  const auto cache_key = std::make_pair(host, static_cast<int>(fab_type));
  auto cached = fabrication_cache.find(cache_key);
  if (cached == fabrication_cache.end()) {
    auto key = std::make_shared<x509::PrivateKey>(
        x509::PrivateKey::generate(fab_type, rng_, 2048));
    x509::CertRequest req;
    req.subject_cn = host;
    req.san_dns = {host};
    req.not_before = 0;
    req.not_after = 2524607999;
    req.key = key->public_key();
    cached = fabrication_cache
                 .emplace(cache_key, FabEntry{key, options_.ca->issue(req, rng_)})
                 .first;
  }
  auto fab_key = cached->second.key;
  const x509::Certificate& fabricated = cached->second.cert;

  tls::Config down_cfg;
  down_cfg.is_client = false;
  down_cfg.private_key = fab_key;
  down_cfg.certificate_chain = {fabricated, options_.ca->root()};
  down_cfg.now = options_.now;
  down_cfg.rng_label = options_.rng_label + "/down";
  down_cfg.rng_seed = options_.rng_seed;
  down_cfg.secret_store = options_.secret_store;
  down_cfg.secret_prefix = "split-mbox/down/";
  downstream_ = std::make_unique<tls::Engine>(std::move(down_cfg));

  // Open our own session to the real server.
  tls::Config up_cfg;
  up_cfg.is_client = true;
  up_cfg.server_name = host;
  up_cfg.trust_anchors = options_.upstream_trust_anchors;
  up_cfg.verify_peer_certificate = options_.verify_upstream;
  up_cfg.now = options_.now;
  up_cfg.rng_label = options_.rng_label + "/up";
  up_cfg.rng_seed = options_.rng_seed;
  up_cfg.secret_store = options_.secret_store;
  up_cfg.secret_prefix = "split-mbox/up/";
  upstream_ = std::make_unique<tls::Engine>(std::move(up_cfg));
  upstream_->start();

  downstream_->feed_record(client_hello_record);
}

void SplitTlsMiddlebox::feed_from_client(ByteView data) {
  if (failed_) return;
  down_reader_.feed(data);
  while (auto rec = down_reader_.next()) {
    if (!downstream_) {
      start_downstream(*rec);
    } else {
      downstream_->feed_record(*rec);
    }
  }
  pump_app_data();
}

void SplitTlsMiddlebox::feed_from_server(ByteView data) {
  if (failed_ || !upstream_) return;
  upstream_->feed(data);
  pump_app_data();
}

void SplitTlsMiddlebox::pump_app_data() {
  if (downstream_) {
    if (downstream_->failed()) {
      failed_ = true;
      error_ = "downstream: " + downstream_->error_message();
    }
    if (downstream_->handshake_done() && upstream_ && upstream_->handshake_done()) {
      const Bytes c2s = downstream_->take_plaintext();
      if (!c2s.empty()) {
        append(observed_c2s_, c2s);
        const Bytes out = options_.processor ? options_.processor(true, c2s) : c2s;
        upstream_->send(out);
      }
    }
    append(to_client_, downstream_->take_output());
  }
  if (upstream_) {
    if (upstream_->failed()) {
      failed_ = true;
      error_ = "upstream: " + upstream_->error_message();
    }
    if (upstream_->handshake_done() && downstream_ && downstream_->handshake_done()) {
      const Bytes s2c = upstream_->take_plaintext();
      if (!s2c.empty()) {
        append(observed_s2c_, s2c);
        const Bytes out = options_.processor ? options_.processor(false, s2c) : s2c;
        downstream_->send(out);
      }
    }
    append(to_server_, upstream_->take_output());
  }
}

Bytes SplitTlsMiddlebox::take_to_client() {
  pump_app_data();
  return std::move(to_client_);
}

Bytes SplitTlsMiddlebox::take_to_server() {
  pump_app_data();
  return std::move(to_server_);
}

bool SplitTlsMiddlebox::both_established() const {
  return downstream_ && upstream_ && downstream_->handshake_done() &&
         upstream_->handshake_done();
}

}  // namespace mbtls::baselines
