#include "http/http.h"

#include <algorithm>
#include <charconv>

namespace mbtls::http {

namespace {

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i])))
      return false;
  }
  return true;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) s.remove_suffix(1);
  return s;
}

/// Locate the end of the header block; returns npos if incomplete.
std::size_t find_header_end(ByteView data) {
  const std::string_view view(reinterpret_cast<const char*>(data.data()), data.size());
  const auto pos = view.find("\r\n\r\n");
  return pos == std::string_view::npos ? std::string_view::npos : pos + 4;
}

struct HeadLines {
  std::string start_line;
  Headers headers;
};

std::optional<HeadLines> parse_head(std::string_view head) {
  HeadLines out;
  std::size_t pos = head.find("\r\n");
  if (pos == std::string_view::npos) return std::nullopt;
  out.start_line = std::string(head.substr(0, pos));
  pos += 2;
  while (pos < head.size()) {
    const auto eol = head.find("\r\n", pos);
    if (eol == std::string_view::npos) break;
    const std::string_view line = head.substr(pos, eol - pos);
    pos = eol + 2;
    if (line.empty()) break;
    const auto colon = line.find(':');
    if (colon == std::string_view::npos) continue;  // tolerate junk lines
    out.headers.add(std::string(trim(line.substr(0, colon))),
                    std::string(trim(line.substr(colon + 1))));
  }
  return out;
}

std::size_t content_length(const Headers& headers) {
  const auto value = headers.get("Content-Length");
  if (!value) return 0;
  std::size_t length = 0;
  const auto [ptr, ec] = std::from_chars(value->data(), value->data() + value->size(), length);
  (void)ptr;
  return ec == std::errc() ? length : 0;
}

std::optional<Request> build_request(const HeadLines& head, Bytes body) {
  Request req;
  // METHOD SP TARGET SP VERSION
  const std::string& line = head.start_line;
  const auto sp1 = line.find(' ');
  const auto sp2 = line.rfind(' ');
  if (sp1 == std::string::npos || sp2 == std::string::npos || sp2 <= sp1) return std::nullopt;
  req.method = line.substr(0, sp1);
  req.target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  req.version = line.substr(sp2 + 1);
  req.headers = head.headers;
  req.body = std::move(body);
  return req;
}

std::optional<Response> build_response(const HeadLines& head, Bytes body) {
  Response resp;
  const std::string& line = head.start_line;
  const auto sp1 = line.find(' ');
  if (sp1 == std::string::npos) return std::nullopt;
  resp.version = line.substr(0, sp1);
  const auto sp2 = line.find(' ', sp1 + 1);
  const std::string status_str =
      sp2 == std::string::npos ? line.substr(sp1 + 1) : line.substr(sp1 + 1, sp2 - sp1 - 1);
  resp.status = std::atoi(status_str.c_str());
  if (sp2 != std::string::npos) resp.reason = line.substr(sp2 + 1);
  resp.headers = head.headers;
  resp.body = std::move(body);
  return resp;
}

}  // namespace

void Headers::set(std::string name, std::string value) {
  remove(name);
  entries_.emplace_back(std::move(name), std::move(value));
}

void Headers::add(std::string name, std::string value) {
  entries_.emplace_back(std::move(name), std::move(value));
}

std::optional<std::string> Headers::get(std::string_view name) const {
  for (const auto& [key, value] : entries_) {
    if (iequals(key, name)) return value;
  }
  return std::nullopt;
}

void Headers::remove(std::string_view name) {
  entries_.erase(std::remove_if(entries_.begin(), entries_.end(),
                                [&](const auto& e) { return iequals(e.first, name); }),
                 entries_.end());
}

namespace {
Bytes serialize_message(const std::string& start_line, const Headers& headers, const Bytes& body) {
  std::string head = start_line + "\r\n";
  bool has_length = false;
  for (const auto& [name, value] : headers.entries()) {
    head += name + ": " + value + "\r\n";
    if (iequals(name, "Content-Length")) has_length = true;
  }
  if (!has_length && !body.empty())
    head += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  head += "\r\n";
  Bytes out = to_bytes(std::string_view(head));
  append(out, body);
  return out;
}
}  // namespace

Bytes Request::serialize() const {
  return serialize_message(method + " " + target + " " + version, headers, body);
}

Bytes Response::serialize() const {
  return serialize_message(version + " " + std::to_string(status) + " " + reason, headers, body);
}

template <typename Message>
std::vector<Message> Parser<Message>::feed(ByteView data) {
  append(buffer_, data);
  std::vector<Message> out;
  for (;;) {
    const std::size_t head_end = find_header_end(buffer_);
    if (head_end == std::string_view::npos) break;
    const std::string_view head(reinterpret_cast<const char*>(buffer_.data()), head_end);
    const auto parsed_head = parse_head(head);
    if (!parsed_head) {
      buffer_.clear();  // unrecoverable garbage
      break;
    }
    const std::size_t body_len = content_length(parsed_head->headers);
    if (buffer_.size() < head_end + body_len) break;  // body incomplete
    Bytes body(buffer_.begin() + static_cast<std::ptrdiff_t>(head_end),
               buffer_.begin() + static_cast<std::ptrdiff_t>(head_end + body_len));
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(head_end + body_len));
    std::optional<Message> msg;
    if constexpr (std::is_same_v<Message, Request>) {
      msg = build_request(*parsed_head, std::move(body));
    } else {
      msg = build_response(*parsed_head, std::move(body));
    }
    if (msg) out.push_back(std::move(*msg));
  }
  return out;
}

template class Parser<Request>;
template class Parser<Response>;

std::optional<Request> parse_request(ByteView data) {
  RequestParser parser;
  auto msgs = parser.feed(data);
  if (msgs.empty()) return std::nullopt;
  return std::move(msgs.front());
}

std::optional<Response> parse_response(ByteView data) {
  ResponseParser parser;
  auto msgs = parser.feed(data);
  if (msgs.empty()) return std::nullopt;
  return std::move(msgs.front());
}

}  // namespace mbtls::http
