// Minimal HTTP/1.1: request/response model, incremental parsers, and
// serializers — enough substrate for the paper's prototype middlebox (an
// HTTP header-insertion proxy), the web-cache middlebox, and the examples.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "util/bytes.h"

namespace mbtls::http {

/// Case-insensitive header map (HTTP header names are case-insensitive).
class Headers {
 public:
  void set(std::string name, std::string value);
  /// Appends without replacing (repeated headers).
  void add(std::string name, std::string value);
  std::optional<std::string> get(std::string_view name) const;
  bool contains(std::string_view name) const { return get(name).has_value(); }
  void remove(std::string_view name);
  const std::vector<std::pair<std::string, std::string>>& entries() const { return entries_; }

 private:
  std::vector<std::pair<std::string, std::string>> entries_;
};

struct Request {
  std::string method = "GET";
  std::string target = "/";
  std::string version = "HTTP/1.1";
  Headers headers;
  Bytes body;

  Bytes serialize() const;
};

struct Response {
  int status = 200;
  std::string reason = "OK";
  std::string version = "HTTP/1.1";
  Headers headers;
  Bytes body;

  Bytes serialize() const;
};

/// Incremental parser over a byte stream; emits complete messages. Bodies
/// are delimited by Content-Length (chunked transfer is not needed by the
/// experiments and is intentionally unsupported — messages without a length
/// are treated as having an empty body).
template <typename Message>
class Parser {
 public:
  /// Feed stream bytes; returns every message completed by this feed.
  std::vector<Message> feed(ByteView data);

 private:
  Bytes buffer_;
};

using RequestParser = Parser<Request>;
using ResponseParser = Parser<Response>;

/// Parse a single complete message (testing convenience); nullopt if the
/// bytes do not contain one complete message.
std::optional<Request> parse_request(ByteView data);
std::optional<Response> parse_response(ByteView data);

}  // namespace mbtls::http
