#include "mbox/ids.h"

#include <deque>

namespace mbtls::mbox {

IntrusionDetector::IntrusionDetector(std::vector<std::string> signatures)
    : signatures_(std::move(signatures)) {
  build();
}

void IntrusionDetector::build() {
  nodes_.clear();
  nodes_.emplace_back();  // root
  for (std::size_t i = 0; i < signatures_.size(); ++i) {
    int node = 0;
    for (const char c : signatures_[i]) {
      const auto byte = static_cast<std::uint8_t>(c);
      auto it = nodes_[static_cast<std::size_t>(node)].next.find(byte);
      if (it == nodes_[static_cast<std::size_t>(node)].next.end()) {
        nodes_[static_cast<std::size_t>(node)].next[byte] = static_cast<int>(nodes_.size());
        node = static_cast<int>(nodes_.size());
        nodes_.emplace_back();
      } else {
        node = it->second;
      }
    }
    nodes_[static_cast<std::size_t>(node)].matches.push_back(static_cast<int>(i));
  }
  // BFS to set failure links.
  std::deque<int> queue;
  for (const auto& [byte, child] : nodes_[0].next) queue.push_back(child);
  while (!queue.empty()) {
    const int node = queue.front();
    queue.pop_front();
    for (const auto& [byte, child] : nodes_[static_cast<std::size_t>(node)].next) {
      queue.push_back(child);
      int fail = nodes_[static_cast<std::size_t>(node)].fail;
      while (fail != 0 && !nodes_[static_cast<std::size_t>(fail)].next.count(byte))
        fail = nodes_[static_cast<std::size_t>(fail)].fail;
      const auto it = nodes_[static_cast<std::size_t>(fail)].next.find(byte);
      const int target = (it != nodes_[static_cast<std::size_t>(fail)].next.end() &&
                          it->second != child)
                             ? it->second
                             : 0;
      nodes_[static_cast<std::size_t>(child)].fail = target;
      // Inherit matches through the failure link.
      const auto& inherited = nodes_[static_cast<std::size_t>(target)].matches;
      auto& own = nodes_[static_cast<std::size_t>(child)].matches;
      own.insert(own.end(), inherited.begin(), inherited.end());
    }
  }
}

mb::Middlebox::Processor IntrusionDetector::processor() {
  return [this](bool c2s, ByteView data) { return process(c2s, data); };
}

void IntrusionDetector::scan(bool client_to_server, ByteView data, int& state,
                             std::uint64_t& offset) {
  for (const auto byte : data) {
    while (state != 0 && !nodes_[static_cast<std::size_t>(state)].next.count(byte))
      state = nodes_[static_cast<std::size_t>(state)].fail;
    const auto it = nodes_[static_cast<std::size_t>(state)].next.find(byte);
    state = it != nodes_[static_cast<std::size_t>(state)].next.end() ? it->second : 0;
    for (const int sig : nodes_[static_cast<std::size_t>(state)].matches) {
      alerts_.push_back(
          {signatures_[static_cast<std::size_t>(sig)], client_to_server, offset});
    }
    ++offset;
  }
}

Bytes IntrusionDetector::process(bool client_to_server, ByteView data) {
  if (client_to_server) {
    scan(true, data, state_c2s_, offset_c2s_);
  } else {
    scan(false, data, state_s2c_, offset_s2c_);
  }
  return to_bytes(data);
}

}  // namespace mbtls::mbox
