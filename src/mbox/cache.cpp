#include "mbox/cache.h"

namespace mbtls::mbox {

mb::Middlebox::Processor WebCache::processor() {
  return [this](bool c2s, ByteView data) { return process(c2s, data); };
}

Bytes WebCache::process(bool client_to_server, ByteView data) {
  if (client_to_server) {
    for (const auto& request : request_parser_.feed(data)) {
      if (request.method == "GET") outstanding_targets_.push_back(request.target);
    }
  } else {
    for (const auto& response : response_parser_.feed(data)) {
      if (outstanding_targets_.empty()) continue;
      const std::string target = outstanding_targets_.front();
      outstanding_targets_.erase(outstanding_targets_.begin());
      if (response.status == 200) entries_[target] = response.body;
    }
  }
  return to_bytes(data);  // transparent: cache fills, never rewrites
}

std::optional<Bytes> WebCache::lookup(const std::string& target) const {
  auto it = entries_.find(target);
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

}  // namespace mbtls::mbox
