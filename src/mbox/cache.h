// Web-cache middlebox application.
//
// Observes request/response pairs flowing through an mbTLS session and
// caches responses by request target. This is the middlebox class §4.2
// warns about ("Middlebox State Poisoning"): because a client holds every
// hop key on its side, it can inject a forged response on a link beyond the
// cache and poison an entry served to *other* clients. The attack harness
// exercises exactly that using `lookup` to show the poisoned entry.
#pragma once

#include <map>

#include "http/http.h"
#include "mbtls/middlebox.h"

namespace mbtls::mbox {

class WebCache {
 public:
  mb::Middlebox::Processor processor();

  /// What the cache currently holds for a target (body bytes).
  std::optional<Bytes> lookup(const std::string& target) const;
  std::size_t size() const { return entries_.size(); }

 private:
  Bytes process(bool client_to_server, ByteView data);

  http::RequestParser request_parser_;
  http::ResponseParser response_parser_;
  std::vector<std::string> outstanding_targets_;  // FIFO request->response match
  std::map<std::string, Bytes> entries_;
};

}  // namespace mbtls::mbox
