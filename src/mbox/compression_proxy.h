// Compression-proxy middlebox pair: a compressor near the server and a
// decompressor near the client shrink the bytes on the WAN segment between
// them (the Flywheel-style use case from the paper's introduction). Each
// record's payload is framed as <u32 original-length><lz data>.
#pragma once

#include "mbox/lz.h"
#include "mbtls/middlebox.h"

namespace mbtls::mbox {

/// Compresses server->client payloads.
class CompressorProxy {
 public:
  mb::Middlebox::Processor processor();
  std::uint64_t bytes_in() const { return bytes_in_; }
  std::uint64_t bytes_out() const { return bytes_out_; }

 private:
  std::uint64_t bytes_in_ = 0, bytes_out_ = 0;
};

/// Decompresses server->client payloads (the peer of CompressorProxy).
class DecompressorProxy {
 public:
  mb::Middlebox::Processor processor();
  std::uint64_t failures() const { return failures_; }

 private:
  std::uint64_t failures_ = 0;
};

}  // namespace mbtls::mbox
