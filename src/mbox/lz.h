// LZSS-style compression codec (from scratch) used by the compression-proxy
// middlebox pair — the "compression proxy" workload the paper's introduction
// motivates (e.g. Google Flywheel).
//
// Format: a stream of flag-prefixed tokens. Each flag byte covers 8 tokens,
// LSB first: bit 0 = literal byte, bit 1 = match (2-byte little-endian
// <offset:12, length-3:4>). Window 4096 bytes, match length 3-18.
#pragma once

#include <optional>

#include "util/bytes.h"

namespace mbtls::mbox {

Bytes lz_compress(ByteView input);

/// Returns nullopt on malformed input.
std::optional<Bytes> lz_decompress(ByteView input);

}  // namespace mbtls::mbox
