// Pattern-matching intrusion detection middlebox (the BlindBox-style
// workload class). Scans the reassembled plaintext stream for signature
// strings (Aho-Corasick over a fixed rule set) and raises alerts; traffic
// passes through unmodified.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "mbtls/middlebox.h"

namespace mbtls::mbox {

class IntrusionDetector {
 public:
  explicit IntrusionDetector(std::vector<std::string> signatures);

  mb::Middlebox::Processor processor();

  struct Alert {
    std::string signature;
    bool client_to_server;
    std::uint64_t stream_offset;
  };
  const std::vector<Alert>& alerts() const { return alerts_; }

 private:
  // Aho-Corasick automaton.
  struct Node {
    std::map<std::uint8_t, int> next;
    int fail = 0;
    std::vector<int> matches;  // signature indices ending here
  };
  void build();
  Bytes process(bool client_to_server, ByteView data);
  void scan(bool client_to_server, ByteView data, int& state, std::uint64_t& offset);

  std::vector<std::string> signatures_;
  std::vector<Node> nodes_;
  int state_c2s_ = 0, state_s2c_ = 0;
  std::uint64_t offset_c2s_ = 0, offset_s2c_ = 0;
  std::vector<Alert> alerts_;
};

}  // namespace mbtls::mbox
