#include "mbox/compression_proxy.h"

namespace mbtls::mbox {

mb::Middlebox::Processor CompressorProxy::processor() {
  return [this](bool c2s, ByteView data) {
    if (c2s) return to_bytes(data);
    bytes_in_ += data.size();
    Bytes framed;
    put_u32(framed, static_cast<std::uint32_t>(data.size()));
    append(framed, lz_compress(data));
    bytes_out_ += framed.size();
    return framed;
  };
}

mb::Middlebox::Processor DecompressorProxy::processor() {
  return [this](bool c2s, ByteView data) {
    if (c2s) return to_bytes(data);
    if (data.size() < 4) {
      ++failures_;
      return to_bytes(data);
    }
    const std::uint32_t original_len = get_u32(data, 0);
    const auto decompressed = lz_decompress(data.subspan(4));
    if (!decompressed || decompressed->size() != original_len) {
      ++failures_;
      return to_bytes(data);
    }
    return *decompressed;
  };
}

}  // namespace mbtls::mbox
