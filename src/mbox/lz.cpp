#include "mbox/lz.h"

#include <array>

namespace mbtls::mbox {

namespace {
constexpr std::size_t kWindow = 4096;
constexpr std::size_t kMinMatch = 3;
constexpr std::size_t kMaxMatch = 18;
}  // namespace

Bytes lz_compress(ByteView input) {
  Bytes out;
  // Hash chains over 3-byte prefixes for match finding.
  std::array<int, 1 << 13> head;
  head.fill(-1);
  std::vector<int> prev(input.size(), -1);
  auto hash3 = [&](std::size_t i) {
    return ((input[i] << 6) ^ (input[i + 1] << 3) ^ input[i + 2]) & 0x1fff;
  };

  std::size_t pos = 0;
  std::uint8_t flags = 0;
  int flag_bits = 0;
  std::size_t flag_at = 0;

  auto begin_group = [&] {
    flag_at = out.size();
    out.push_back(0);
    flags = 0;
    flag_bits = 0;
  };
  auto end_token = [&](bool is_match) {
    if (is_match) flags |= static_cast<std::uint8_t>(1 << flag_bits);
    if (++flag_bits == 8) {
      out[flag_at] = flags;
      begin_group();
    }
  };

  begin_group();
  while (pos < input.size()) {
    std::size_t best_len = 0;
    std::size_t best_off = 0;
    if (pos + kMinMatch <= input.size()) {
      int candidate = head[static_cast<std::size_t>(hash3(pos))];
      int tries = 32;
      while (candidate >= 0 && tries-- > 0 &&
             pos - static_cast<std::size_t>(candidate) <= kWindow) {
        std::size_t len = 0;
        const std::size_t limit = std::min(kMaxMatch, input.size() - pos);
        while (len < limit &&
               input[static_cast<std::size_t>(candidate) + len] == input[pos + len])
          ++len;
        if (len > best_len) {
          best_len = len;
          best_off = pos - static_cast<std::size_t>(candidate);
        }
        candidate = prev[static_cast<std::size_t>(candidate)];
      }
    }
    if (best_len >= kMinMatch) {
      const std::uint16_t token = static_cast<std::uint16_t>(
          ((best_off - 1) & 0xfff) | ((best_len - kMinMatch) << 12));
      out.push_back(static_cast<std::uint8_t>(token & 0xff));
      out.push_back(static_cast<std::uint8_t>(token >> 8));
      end_token(true);
      // Advance past the match, inserting hash entries where a full 3-byte
      // prefix still exists.
      for (std::size_t i = 0; i < best_len; ++i, ++pos) {
        if (pos + kMinMatch <= input.size()) {
          const auto h = static_cast<std::size_t>(hash3(pos));
          prev[pos] = head[h];
          head[h] = static_cast<int>(pos);
        }
      }
    } else {
      if (pos + kMinMatch <= input.size()) {
        const auto h = static_cast<std::size_t>(hash3(pos));
        prev[pos] = head[h];
        head[h] = static_cast<int>(pos);
      }
      out.push_back(input[pos]);
      end_token(false);
      ++pos;
    }
  }
  out[flag_at] = flags;
  if (flag_bits == 0 && out.size() == flag_at + 1) out.pop_back();  // empty trailing group
  return out;
}

std::optional<Bytes> lz_decompress(ByteView input) {
  Bytes out;
  std::size_t pos = 0;
  while (pos < input.size()) {
    const std::uint8_t flags = input[pos++];
    for (int bit = 0; bit < 8 && pos < input.size(); ++bit) {
      if (flags & (1 << bit)) {
        if (pos + 2 > input.size()) return std::nullopt;
        const std::uint16_t token =
            static_cast<std::uint16_t>(input[pos] | (input[pos + 1] << 8));
        pos += 2;
        const std::size_t offset = static_cast<std::size_t>(token & 0xfff) + 1;
        const std::size_t length = static_cast<std::size_t>(token >> 12) + kMinMatch;
        if (offset > out.size()) return std::nullopt;
        for (std::size_t i = 0; i < length; ++i)
          out.push_back(out[out.size() - offset]);
      } else {
        out.push_back(input[pos++]);
      }
    }
  }
  return out;
}

}  // namespace mbtls::mbox
