// The paper's prototype middlebox application: "a simple HTTP proxy that
// performs HTTP header insertion" (§5). Implemented as a stateful mbTLS
// record processor: it reassembles the HTTP request stream, inserts a header
// into each request, and re-emits the bytes.
#pragma once

#include "http/http.h"
#include "mbtls/middlebox.h"

namespace mbtls::mbox {

class HeaderInsertionProxy {
 public:
  HeaderInsertionProxy(std::string header_name, std::string header_value)
      : header_name_(std::move(header_name)), header_value_(std::move(header_value)) {}

  /// Adapt into the mbTLS middlebox processor interface.
  mb::Middlebox::Processor processor();

  std::uint64_t requests_seen() const { return requests_seen_; }

 private:
  Bytes process(bool client_to_server, ByteView data);

  std::string header_name_;
  std::string header_value_;
  http::RequestParser request_parser_;
  std::uint64_t requests_seen_ = 0;
};

}  // namespace mbtls::mbox
