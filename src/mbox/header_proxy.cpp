#include "mbox/header_proxy.h"

namespace mbtls::mbox {

mb::Middlebox::Processor HeaderInsertionProxy::processor() {
  return [this](bool c2s, ByteView data) { return process(c2s, data); };
}

Bytes HeaderInsertionProxy::process(bool client_to_server, ByteView data) {
  if (!client_to_server) return to_bytes(data);  // responses pass untouched
  Bytes out;
  // Requests may span records (or several may share one); reassemble and
  // re-serialize each completed request with the extra header.
  for (auto& request : request_parser_.feed(data)) {
    ++requests_seen_;
    request.headers.add(header_name_, header_value_);
    append(out, request.serialize());
  }
  return out;
}

}  // namespace mbtls::mbox
