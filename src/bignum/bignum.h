// Arbitrary-precision unsigned integers, sized for cryptographic use
// (RSA-2048, DHE groups). 64-bit limbs, little-endian limb order.
//
// Only the operations the crypto stack needs are provided: ring arithmetic,
// comparison, shifting, division with remainder, modular exponentiation
// (Montgomery for odd moduli), and modular inverse. Values are non-negative;
// subtraction underflow throws.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/bytes.h"

namespace mbtls::bn {

class BigInt {
 public:
  BigInt() = default;
  explicit BigInt(std::uint64_t v);

  /// Parse big-endian bytes (leading zeros fine).
  static BigInt from_bytes(ByteView be);
  /// Parse a hex string (no 0x prefix).
  static BigInt from_hex(std::string_view hex);

  /// Big-endian byte encoding, minimal length (empty for zero) or padded to
  /// `min_len` bytes.
  Bytes to_bytes(std::size_t min_len = 0) const;
  std::string to_hex() const;

  bool is_zero() const { return limbs_.empty(); }
  bool is_odd() const { return !limbs_.empty() && (limbs_[0] & 1); }
  bool bit(std::size_t i) const;
  std::size_t bit_length() const;
  std::size_t byte_length() const { return (bit_length() + 7) / 8; }

  // Comparison: -1, 0, 1.
  int compare(const BigInt& other) const;
  bool operator==(const BigInt& o) const { return compare(o) == 0; }
  bool operator!=(const BigInt& o) const { return compare(o) != 0; }
  bool operator<(const BigInt& o) const { return compare(o) < 0; }
  bool operator<=(const BigInt& o) const { return compare(o) <= 0; }
  bool operator>(const BigInt& o) const { return compare(o) > 0; }
  bool operator>=(const BigInt& o) const { return compare(o) >= 0; }

  BigInt operator+(const BigInt& o) const;
  BigInt operator-(const BigInt& o) const;  // throws std::underflow_error
  BigInt operator*(const BigInt& o) const;
  BigInt operator<<(std::size_t bits) const;
  BigInt operator>>(std::size_t bits) const;

  /// Division with remainder as {quotient, remainder}; divisor must be
  /// non-zero.
  std::pair<BigInt, BigInt> divmod(const BigInt& divisor) const;
  BigInt operator/(const BigInt& o) const { return divmod(o).first; }
  BigInt operator%(const BigInt& o) const { return divmod(o).second; }

  /// (this ^ exponent) mod modulus. Odd moduli use sliding-window (w=5)
  /// Montgomery exponentiation — an odd-powers table cuts the multiply count
  /// from ~bits/2 to ~bits/6 on random exponents; even moduli fall back to
  /// plain square-and-multiply with division.
  BigInt mod_exp(const BigInt& exponent, const BigInt& modulus) const;

  /// Reference bit-at-a-time Montgomery ladder: the differential-test oracle
  /// and bench baseline for the sliding-window path. Always compiled;
  /// mod_exp dispatches here when MBTLS_REFERENCE_CRYPTO is defined.
  BigInt mod_exp_reference(const BigInt& exponent, const BigInt& modulus) const;

  /// Modular inverse via extended Euclid; throws std::domain_error when
  /// gcd(this, modulus) != 1.
  BigInt mod_inverse(const BigInt& modulus) const;

  static BigInt gcd(BigInt a, BigInt b);

  const std::vector<std::uint64_t>& limbs() const { return limbs_; }

 private:
  void trim();
  static BigInt from_limbs(std::vector<std::uint64_t> limbs);

  std::vector<std::uint64_t> limbs_;  // little-endian; no trailing zero limbs
};

}  // namespace mbtls::bn
