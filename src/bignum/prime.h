// Probabilistic primality testing and prime generation for RSA key
// generation and DHE parameter creation.
#pragma once

#include "bignum/bignum.h"
#include "crypto/drbg.h"

namespace mbtls::bn {

/// Miller–Rabin with `rounds` random bases (plus trial division by small
/// primes first). Error probability <= 4^-rounds for composites.
bool is_probable_prime(const BigInt& n, crypto::Drbg& rng, int rounds = 24);

/// Uniform random integer in [0, bound).
BigInt random_below(const BigInt& bound, crypto::Drbg& rng);

/// Random integer with exactly `bits` bits (top bit set).
BigInt random_bits(std::size_t bits, crypto::Drbg& rng);

/// Random probable prime with exactly `bits` bits. Top two bits are set
/// (standard for RSA so that p*q has full length) and the value is odd.
BigInt generate_prime(std::size_t bits, crypto::Drbg& rng);

/// Random safe prime p = 2q + 1 with both p, q probable primes. Used for
/// DHE parameter generation (slow at large sizes; tests use modest ones).
BigInt generate_safe_prime(std::size_t bits, crypto::Drbg& rng);

}  // namespace mbtls::bn
