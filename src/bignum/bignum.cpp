#include "bignum/bignum.h"

#include <algorithm>
#include <stdexcept>

#include "util/hex.h"

namespace mbtls::bn {

using u64 = std::uint64_t;
using u128 = unsigned __int128;

void BigInt::trim() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

BigInt BigInt::from_limbs(std::vector<u64> limbs) {
  BigInt r;
  r.limbs_ = std::move(limbs);
  r.trim();
  return r;
}

BigInt::BigInt(u64 v) {
  if (v) limbs_.push_back(v);
}

BigInt BigInt::from_bytes(ByteView be) {
  BigInt r;
  r.limbs_.assign((be.size() + 7) / 8, 0);
  for (std::size_t i = 0; i < be.size(); ++i) {
    // byte i (from the end) belongs to limb i/8, shifted by (i%8)*8
    const std::size_t from_end = be.size() - 1 - i;
    r.limbs_[i / 8] |= static_cast<u64>(be[from_end]) << ((i % 8) * 8);
  }
  r.trim();
  return r;
}

BigInt BigInt::from_hex(std::string_view hex) {
  std::string padded(hex);
  if (padded.size() % 2) padded.insert(padded.begin(), '0');
  return from_bytes(hex_decode(padded));
}

Bytes BigInt::to_bytes(std::size_t min_len) const {
  const std::size_t n = byte_length();
  const std::size_t len = std::max(n, min_len);
  Bytes out(len, 0);
  for (std::size_t i = 0; i < n; ++i) {
    out[len - 1 - i] = static_cast<std::uint8_t>(limbs_[i / 8] >> ((i % 8) * 8));
  }
  return out;
}

std::string BigInt::to_hex() const {
  if (is_zero()) return "0";
  std::string s = hex_encode(to_bytes());
  const auto pos = s.find_first_not_of('0');
  return s.substr(pos);
}

bool BigInt::bit(std::size_t i) const {
  const std::size_t limb = i / 64;
  if (limb >= limbs_.size()) return false;
  return (limbs_[limb] >> (i % 64)) & 1;
}

std::size_t BigInt::bit_length() const {
  if (limbs_.empty()) return 0;
  const u64 top = limbs_.back();
  return (limbs_.size() - 1) * 64 + (64 - static_cast<std::size_t>(__builtin_clzll(top)));
}

int BigInt::compare(const BigInt& other) const {
  if (limbs_.size() != other.limbs_.size())
    return limbs_.size() < other.limbs_.size() ? -1 : 1;
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    if (limbs_[i] != other.limbs_[i]) return limbs_[i] < other.limbs_[i] ? -1 : 1;
  }
  return 0;
}

BigInt BigInt::operator+(const BigInt& o) const {
  std::vector<u64> out(std::max(limbs_.size(), o.limbs_.size()) + 1, 0);
  u128 carry = 0;
  for (std::size_t i = 0; i < out.size(); ++i) {
    u128 sum = carry;
    if (i < limbs_.size()) sum += limbs_[i];
    if (i < o.limbs_.size()) sum += o.limbs_[i];
    out[i] = static_cast<u64>(sum);
    carry = sum >> 64;
  }
  return from_limbs(std::move(out));
}

BigInt BigInt::operator-(const BigInt& o) const {
  if (*this < o) throw std::underflow_error("BigInt subtraction underflow");
  std::vector<u64> out(limbs_.size(), 0);
  std::int64_t borrow = 0;
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    const u128 rhs = static_cast<u128>(i < o.limbs_.size() ? o.limbs_[i] : 0) +
                     static_cast<u128>(borrow);
    if (static_cast<u128>(limbs_[i]) >= rhs) {
      out[i] = static_cast<u64>(limbs_[i] - static_cast<u64>(rhs));
      borrow = 0;
    } else {
      out[i] = static_cast<u64>((static_cast<u128>(1) << 64) + limbs_[i] - rhs);
      borrow = 1;
    }
  }
  return from_limbs(std::move(out));
}

BigInt BigInt::operator*(const BigInt& o) const {
  if (is_zero() || o.is_zero()) return BigInt();
  std::vector<u64> out(limbs_.size() + o.limbs_.size(), 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    u64 carry = 0;
    for (std::size_t j = 0; j < o.limbs_.size(); ++j) {
      const u128 cur = static_cast<u128>(limbs_[i]) * o.limbs_[j] + out[i + j] + carry;
      out[i + j] = static_cast<u64>(cur);
      carry = static_cast<u64>(cur >> 64);
    }
    out[i + o.limbs_.size()] += carry;
  }
  return from_limbs(std::move(out));
}

BigInt BigInt::operator<<(std::size_t bits) const {
  if (is_zero()) return BigInt();
  const std::size_t limb_shift = bits / 64;
  const std::size_t bit_shift = bits % 64;
  std::vector<u64> out(limbs_.size() + limb_shift + 1, 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    out[i + limb_shift] |= limbs_[i] << bit_shift;
    if (bit_shift) out[i + limb_shift + 1] |= limbs_[i] >> (64 - bit_shift);
  }
  return from_limbs(std::move(out));
}

BigInt BigInt::operator>>(std::size_t bits) const {
  const std::size_t limb_shift = bits / 64;
  if (limb_shift >= limbs_.size()) return BigInt();
  const std::size_t bit_shift = bits % 64;
  std::vector<u64> out(limbs_.size() - limb_shift, 0);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = limbs_[i + limb_shift] >> bit_shift;
    if (bit_shift && i + limb_shift + 1 < limbs_.size())
      out[i] |= limbs_[i + limb_shift + 1] << (64 - bit_shift);
  }
  return from_limbs(std::move(out));
}

std::pair<BigInt, BigInt> BigInt::divmod(const BigInt& divisor) const {
  if (divisor.is_zero()) throw std::domain_error("BigInt division by zero");
  if (*this < divisor) return {BigInt(), *this};
  if (divisor.limbs_.size() == 1) {
    // Fast path: single-limb divisor.
    const u64 d = divisor.limbs_[0];
    std::vector<u64> q(limbs_.size(), 0);
    u128 rem = 0;
    for (std::size_t i = limbs_.size(); i-- > 0;) {
      const u128 cur = (rem << 64) | limbs_[i];
      q[i] = static_cast<u64>(cur / d);
      rem = cur % d;
    }
    return {from_limbs(std::move(q)), BigInt(static_cast<u64>(rem))};
  }
  // Shift-and-subtract long division, one bit at a time over the quotient
  // bit width. O(bits x limbs) which is adequate at RSA sizes because hot
  // paths use Montgomery arithmetic instead.
  const std::size_t shift = bit_length() - divisor.bit_length();
  BigInt remainder = *this;
  BigInt q;
  q.limbs_.assign(shift / 64 + 1, 0);
  BigInt d = divisor << shift;
  for (std::size_t i = shift + 1; i-- > 0;) {
    if (remainder >= d) {
      remainder = remainder - d;
      q.limbs_[i / 64] |= (static_cast<u64>(1) << (i % 64));
    }
    d = d >> 1;
  }
  q.trim();
  return {q, remainder};
}

namespace {

// Montgomery context for an odd modulus N: R = 2^(64*k), k = limbs in N.
struct MontCtx {
  std::vector<u64> n;   // modulus limbs
  u64 n0inv;            // -N^-1 mod 2^64
  BigInt r2;            // R^2 mod N

  explicit MontCtx(const BigInt& modulus) : n(modulus.limbs()) {
    // Newton iteration for the 64-bit inverse of n[0].
    const u64 n0 = n[0];
    u64 inv = 1;
    for (int i = 0; i < 6; ++i) inv *= 2 - n0 * inv;  // inv = n0^-1 mod 2^64
    n0inv = ~inv + 1;                                  // -inv
    const std::size_t k = n.size();
    BigInt r = BigInt(1) << (64 * k);
    r2 = (r * r) % modulus;
  }

  // CIOS Montgomery multiplication: returns a*b*R^-1 mod N (limb vectors of
  // size k, result size k).
  std::vector<u64> mul(const std::vector<u64>& a, const std::vector<u64>& b) const {
    const std::size_t k = n.size();
    std::vector<u64> t(k + 2, 0);
    for (std::size_t i = 0; i < k; ++i) {
      const u64 ai = i < a.size() ? a[i] : 0;
      // t += ai * b
      u64 carry = 0;
      for (std::size_t j = 0; j < k; ++j) {
        const u64 bj = j < b.size() ? b[j] : 0;
        const u128 cur = static_cast<u128>(ai) * bj + t[j] + carry;
        t[j] = static_cast<u64>(cur);
        carry = static_cast<u64>(cur >> 64);
      }
      u128 cur = static_cast<u128>(t[k]) + carry;
      t[k] = static_cast<u64>(cur);
      t[k + 1] = static_cast<u64>(cur >> 64);
      // m = t[0] * n0inv mod 2^64; t += m * N; t >>= 64
      const u64 m = t[0] * n0inv;
      carry = 0;
      {
        const u128 c0 = static_cast<u128>(m) * n[0] + t[0];
        carry = static_cast<u64>(c0 >> 64);
      }
      for (std::size_t j = 1; j < k; ++j) {
        const u128 cur2 = static_cast<u128>(m) * n[j] + t[j] + carry;
        t[j - 1] = static_cast<u64>(cur2);
        carry = static_cast<u64>(cur2 >> 64);
      }
      cur = static_cast<u128>(t[k]) + carry;
      t[k - 1] = static_cast<u64>(cur);
      t[k] = t[k + 1] + static_cast<u64>(cur >> 64);
      t[k + 1] = 0;
    }
    t.resize(k + 1);
    // Conditional subtraction of N.
    bool ge = t[k] != 0;
    if (!ge) {
      ge = true;
      for (std::size_t i = k; i-- > 0;) {
        if (t[i] != n[i]) {
          ge = t[i] > n[i];
          break;
        }
      }
    }
    t.resize(k);
    if (ge) {
      std::int64_t borrow = 0;
      for (std::size_t i = 0; i < k; ++i) {
        const u128 rhs = static_cast<u128>(n[i]) + static_cast<u128>(borrow);
        if (static_cast<u128>(t[i]) >= rhs) {
          t[i] = static_cast<u64>(t[i] - static_cast<u64>(rhs));
          borrow = 0;
        } else {
          t[i] = static_cast<u64>((static_cast<u128>(1) << 64) + t[i] - rhs);
          borrow = 1;
        }
      }
    }
    return t;
  }
};

}  // namespace

BigInt BigInt::mod_exp(const BigInt& exponent, const BigInt& modulus) const {
#ifdef MBTLS_REFERENCE_CRYPTO
  return mod_exp_reference(exponent, modulus);
#else
  if (modulus.is_zero()) throw std::domain_error("mod_exp: zero modulus");
  if (modulus == BigInt(1)) return BigInt();
  BigInt base = *this % modulus;
  if (exponent.is_zero()) return BigInt(1);

  if (modulus.is_odd()) {
    // Sliding-window Montgomery exponentiation. A 16-entry table of odd
    // powers x^1, x^3, ..., x^31 turns every run of up to five exponent bits
    // ending in a 1 into a single multiply; zero bits between windows cost
    // only squarings. For a 2048-bit exponent that is ~1024 multiplies with
    // the plain ladder vs ~340 here, on top of the shared squaring chain.
    constexpr std::size_t kWindow = 5;
    MontCtx ctx(modulus);
    const std::size_t k = ctx.n.size();
    auto pad = [&](const BigInt& v) {
      std::vector<u64> l = v.limbs();
      l.resize(k, 0);
      return l;
    };
    const std::vector<u64> r2 = pad(ctx.r2);
    const std::vector<u64> xm = ctx.mul(pad(base), r2);
    const std::vector<u64> x2 = ctx.mul(xm, xm);
    std::vector<std::vector<u64>> odd_pow(1u << (kWindow - 1));
    odd_pow[0] = xm;
    for (std::size_t i = 1; i < odd_pow.size(); ++i) odd_pow[i] = ctx.mul(odd_pow[i - 1], x2);

    std::vector<u64> acc = ctx.mul(pad(BigInt(1)), r2);  // 1 in Montgomery form
    std::size_t i = exponent.bit_length();
    while (i > 0) {
      if (!exponent.bit(i - 1)) {
        acc = ctx.mul(acc, acc);
        --i;
        continue;
      }
      // Greedy window [lo, i): at most kWindow bits, both ends set.
      std::size_t lo = i >= kWindow ? i - kWindow : 0;
      while (!exponent.bit(lo)) ++lo;
      std::uint32_t wval = 0;
      for (std::size_t j = i; j-- > lo;) {
        acc = ctx.mul(acc, acc);
        wval = (wval << 1) | static_cast<std::uint32_t>(exponent.bit(j));
      }
      acc = ctx.mul(acc, odd_pow[(wval - 1) >> 1]);
      i = lo;
    }
    std::vector<u64> one(k, 0);
    one[0] = 1;
    acc = ctx.mul(acc, one);  // convert back out of the Montgomery domain
    return from_limbs(std::move(acc));
  }

  // Even modulus: plain square-and-multiply with division-based reduction.
  BigInt acc(1);
  for (std::size_t i = exponent.bit_length(); i-- > 0;) {
    acc = (acc * acc) % modulus;
    if (exponent.bit(i)) acc = (acc * base) % modulus;
  }
  return acc;
#endif
}

BigInt BigInt::mod_exp_reference(const BigInt& exponent, const BigInt& modulus) const {
  if (modulus.is_zero()) throw std::domain_error("mod_exp: zero modulus");
  if (modulus == BigInt(1)) return BigInt();
  BigInt base = *this % modulus;
  if (exponent.is_zero()) return BigInt(1);

  if (modulus.is_odd()) {
    MontCtx ctx(modulus);
    const std::size_t k = ctx.n.size();
    auto pad = [&](const BigInt& v) {
      std::vector<u64> l = v.limbs();
      l.resize(k, 0);
      return l;
    };
    // Convert to Montgomery domain.
    std::vector<u64> xm = ctx.mul(pad(base), pad(ctx.r2));
    std::vector<u64> acc = pad(BigInt(1));
    acc = ctx.mul(acc, pad(ctx.r2));  // 1 in Montgomery form = R mod N
    for (std::size_t i = exponent.bit_length(); i-- > 0;) {
      acc = ctx.mul(acc, acc);
      if (exponent.bit(i)) acc = ctx.mul(acc, xm);
    }
    // Convert back: multiply by 1.
    std::vector<u64> one(k, 0);
    one[0] = 1;
    acc = ctx.mul(acc, one);
    return from_limbs(std::move(acc));
  }

  // Even modulus: plain square-and-multiply with division-based reduction.
  BigInt acc(1);
  for (std::size_t i = exponent.bit_length(); i-- > 0;) {
    acc = (acc * acc) % modulus;
    if (exponent.bit(i)) acc = (acc * base) % modulus;
  }
  return acc;
}

BigInt BigInt::mod_inverse(const BigInt& modulus) const {
  // Extended Euclid tracking only the coefficient of `this`, with signs
  // managed manually (BigInt is unsigned).
  BigInt r0 = modulus, r1 = *this % modulus;
  BigInt t0, t1(1);
  bool t0_neg = false, t1_neg = false;
  while (!r1.is_zero()) {
    const auto [q, r2] = r0.divmod(r1);
    // t2 = t0 - q*t1 with sign tracking.
    const BigInt qt1 = q * t1;
    BigInt t2;
    bool t2_neg;
    if (t0_neg == t1_neg) {
      if (t0 >= qt1) {
        t2 = t0 - qt1;
        t2_neg = t0_neg;
      } else {
        t2 = qt1 - t0;
        t2_neg = !t0_neg;
      }
    } else {
      t2 = t0 + qt1;
      t2_neg = t0_neg;
    }
    r0 = r1;
    r1 = r2;
    t0 = t1;
    t0_neg = t1_neg;
    t1 = t2;
    t1_neg = t2_neg;
  }
  if (r0 != BigInt(1)) throw std::domain_error("mod_inverse: not invertible");
  if (t0_neg) return modulus - (t0 % modulus);
  return t0 % modulus;
}

BigInt BigInt::gcd(BigInt a, BigInt b) {
  while (!b.is_zero()) {
    BigInt r = a % b;
    a = std::move(b);
    b = std::move(r);
  }
  return a;
}

}  // namespace mbtls::bn
