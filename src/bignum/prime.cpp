#include "bignum/prime.h"

#include <array>

namespace mbtls::bn {

namespace {
// Small primes for fast trial division.
constexpr std::array<std::uint64_t, 60> kSmallPrimes = {
    2,   3,   5,   7,   11,  13,  17,  19,  23,  29,  31,  37,  41,  43,  47,
    53,  59,  61,  67,  71,  73,  79,  83,  89,  97,  101, 103, 107, 109, 113,
    127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193, 197,
    199, 211, 223, 227, 229, 233, 239, 241, 251, 257, 263, 269, 271, 277, 281};
}  // namespace

BigInt random_bits(std::size_t bits, crypto::Drbg& rng) {
  const std::size_t bytes = (bits + 7) / 8;
  Bytes b = rng.bytes(bytes);
  // Clear excess high bits, then force the top bit.
  const std::size_t excess = bytes * 8 - bits;
  b[0] &= static_cast<std::uint8_t>(0xff >> excess);
  b[0] |= static_cast<std::uint8_t>(0x80 >> excess);
  return BigInt::from_bytes(b);
}

BigInt random_below(const BigInt& bound, crypto::Drbg& rng) {
  const std::size_t bytes = bound.byte_length();
  for (;;) {
    Bytes b = rng.bytes(bytes);
    BigInt candidate = BigInt::from_bytes(b);
    if (candidate < bound) return candidate;
  }
}

bool is_probable_prime(const BigInt& n, crypto::Drbg& rng, int rounds) {
  if (n < BigInt(2)) return false;
  for (const auto p : kSmallPrimes) {
    const BigInt bp(p);
    if (n == bp) return true;
    if ((n % bp).is_zero()) return false;
  }
  // n - 1 = d * 2^s with d odd.
  const BigInt n_minus_1 = n - BigInt(1);
  BigInt d = n_minus_1;
  std::size_t s = 0;
  while (!d.is_odd()) {
    d = d >> 1;
    ++s;
  }
  const BigInt two(2);
  for (int round = 0; round < rounds; ++round) {
    // a in [2, n-2]
    BigInt a = random_below(n - BigInt(3), rng) + two;
    BigInt x = a.mod_exp(d, n);
    if (x == BigInt(1) || x == n_minus_1) continue;
    bool witness = true;
    for (std::size_t i = 1; i < s; ++i) {
      x = x.mod_exp(two, n);
      if (x == n_minus_1) {
        witness = false;
        break;
      }
    }
    if (witness) return false;
  }
  return true;
}

BigInt generate_prime(std::size_t bits, crypto::Drbg& rng) {
  for (;;) {
    BigInt candidate = random_bits(bits, rng);
    // Force odd and set the second-highest bit (RSA convention).
    Bytes b = candidate.to_bytes((bits + 7) / 8);
    b.back() |= 1;
    if (bits >= 2) {
      const std::size_t excess = b.size() * 8 - bits;
      b[0] |= static_cast<std::uint8_t>(0x40 >> excess);
    }
    candidate = BigInt::from_bytes(b);
    if (is_probable_prime(candidate, rng)) return candidate;
  }
}

BigInt generate_safe_prime(std::size_t bits, crypto::Drbg& rng) {
  for (;;) {
    BigInt q = generate_prime(bits - 1, rng);
    BigInt p = (q << 1) + BigInt(1);
    if (is_probable_prime(p, rng, 16)) return p;
  }
}

}  // namespace mbtls::bn
