#include "util/workpool.h"

#include <ctime>

namespace mbtls::util {

std::uint64_t thread_cpu_nanos() {
  timespec ts{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000'000ULL +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield");
#else
  std::this_thread::yield();
#endif
}

void spin_backoff(unsigned& spins) {
  // A short PAUSE burst catches a peer that is one store away; past that,
  // yield the timeslice — essential when workers outnumber cores, where
  // spinning would only steal cycles from the thread being waited on.
  if (++spins < 64) {
    cpu_relax();
  } else {
    std::this_thread::yield();
  }
}

}  // namespace mbtls::util
