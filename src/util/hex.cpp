#include "util/hex.h"

#include <stdexcept>

namespace mbtls {

namespace {
constexpr char kHexDigits[] = "0123456789abcdef";

int nibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  throw std::invalid_argument("hex_decode: invalid hex digit");
}
}  // namespace

std::string hex_encode(ByteView v) {
  std::string out;
  out.reserve(v.size() * 2);
  for (std::uint8_t b : v) {
    out.push_back(kHexDigits[b >> 4]);
    out.push_back(kHexDigits[b & 0xf]);
  }
  return out;
}

Bytes hex_decode(std::string_view s) {
  if (s.size() % 2 != 0) throw std::invalid_argument("hex_decode: odd length");
  Bytes out;
  out.reserve(s.size() / 2);
  for (std::size_t i = 0; i < s.size(); i += 2) {
    out.push_back(static_cast<std::uint8_t>((nibble(s[i]) << 4) | nibble(s[i + 1])));
  }
  return out;
}

}  // namespace mbtls
