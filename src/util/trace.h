// Structured tracing: zero-overhead-when-disabled event emission for the
// net / tls / mbtls layers, plus in-memory sinks and exporters.
//
// Model
// -----
// An instrumented component holds a `trace::Emitter` by value (a sink pointer
// plus an actor label). With no sink attached the emitter is a null pointer
// and every emission site reduces to one predictable branch; hot paths guard
// with `if (em.on())` so argument rendering is never paid for a disabled
// trace. When a sink is attached, emitters produce `Event`s — instants,
// span begin/end pairs, and counters — and the sink timestamps them.
//
// Timestamps come from the sink's clock. Harnesses that drive the discrete
// event simulator install `[&] { return sim.now(); }` so every event carries
// the virtual-microsecond time; sans-IO components (the TLS engine) need no
// clock of their own — with no clock installed the recorder stamps a
// deterministic sequence number instead. Either way the same DRBG seed and
// the same chaos taps reproduce a byte-identical trace.
//
// Exporters: `Recorder::chrome_trace_json()` emits Chrome trace-event JSON
// (load in chrome://tracing or Perfetto; actors map to threads) and
// `Recorder::counter_dump()` emits a flat, sorted `key value` listing of
// counter totals and per-event tallies.
//
// Key material must never reach a sink. Emit `tls::key_fingerprint(...)`
// digests instead; tools/mbtls-lint rule `trace-no-secret` enforces this.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace mbtls::trace {

/// Chrome trace-event phases we emit.
enum class Phase : char {
  kInstant = 'i',
  kBegin = 'B',
  kEnd = 'E',
  kCounter = 'C',
};

/// One key/value pair attached to an event. Values are pre-rendered; numeric
/// values are remembered so the JSON exporter can emit them unquoted.
struct Arg {
  std::string name;
  std::string value;
  bool numeric = false;

  Arg(std::string k, std::string v) : name(std::move(k)), value(std::move(v)) {}
  Arg(std::string k, const char* v) : name(std::move(k)), value(v) {}
  Arg(std::string k, std::string_view v) : name(std::move(k)), value(v) {}
  Arg(std::string k, std::uint64_t v)
      : name(std::move(k)), value(std::to_string(v)), numeric(true) {}
  Arg(std::string k, int v)
      : name(std::move(k)), value(std::to_string(v)), numeric(true) {}
};

using Args = std::vector<Arg>;

struct Event {
  std::uint64_t ts = 0;  ///< stamped by the sink (virtual µs, or a sequence number)
  Phase phase = Phase::kInstant;
  std::string actor;     ///< emitting party, e.g. "client" or "mbox:cache/primary"
  std::string category;  ///< layer: "net", "tls", "mbtls"
  std::string name;
  double delta = 0;      ///< kCounter only: amount added to the counter
  Args args;
};

/// Receives events from emitters. Implementations must not retain references
/// into the event past the call (they get a copy by value anyway).
class Sink {
 public:
  virtual ~Sink() = default;
  virtual void record(Event e) = 0;
};

/// Value-type handle instrumented components hold. Default-constructed it is
/// disabled: `on()` is false and every emit call is a single branch.
class Emitter {
 public:
  Emitter() = default;
  Emitter(Sink* sink, std::string actor)
      : sink_(sink), actor_(std::move(actor)) {}

  bool on() const { return sink_ != nullptr; }
  Sink* sink() const { return sink_; }
  const std::string& actor() const { return actor_; }

  /// Derive an emitter for a sub-component; shares the sink, extends the
  /// actor label ("client" -> "client/primary").
  Emitter sub(std::string_view suffix) const {
    if (!sink_) return {};
    std::string actor = actor_;
    actor += '/';
    actor += suffix;
    return Emitter(sink_, std::move(actor));
  }

  void instant(std::string_view category, std::string_view name,
               Args args = {}) const {
    if (sink_) emit(Phase::kInstant, category, name, 0, std::move(args));
  }
  void begin(std::string_view category, std::string_view name,
             Args args = {}) const {
    if (sink_) emit(Phase::kBegin, category, name, 0, std::move(args));
  }
  void end(std::string_view category, std::string_view name) const {
    if (sink_) emit(Phase::kEnd, category, name, 0, {});
  }
  /// Add `delta` to the counter `name` (category "counter" in exports).
  void counter(std::string_view name, double delta) const {
    if (sink_) emit(Phase::kCounter, "counter", name, delta, {});
  }

 private:
  void emit(Phase phase, std::string_view category, std::string_view name,
            double delta, Args args) const;

  Sink* sink_ = nullptr;
  std::string actor_;
};

/// In-memory sink: keeps the full event list, accumulates counters, and
/// exports Chrome-trace JSON / a flat counter dump.
class Recorder : public Sink {
 public:
  using Clock = std::function<std::uint64_t()>;

  /// Install the timestamp source (e.g. the simulator's virtual clock).
  /// Without a clock, events are stamped with a sequence number.
  void set_clock(Clock clock) { clock_ = std::move(clock); }

  void record(Event e) override;

  const std::vector<Event>& events() const { return events_; }
  /// Counter totals keyed "actor/name" (explicit kCounter events only).
  const std::map<std::string, double>& counters() const { return counters_; }
  /// Total of one counter across all actors.
  double counter_total(std::string_view name) const;
  void clear();

  /// Chrome trace-event JSON ("traceEvents" array; actors become threads).
  std::string chrome_trace_json() const;
  /// Flat `key value` lines: counter totals plus per-event-name tallies,
  /// sorted, deterministic.
  std::string counter_dump() const;

 private:
  Clock clock_;
  std::uint64_t seq_ = 0;
  std::vector<Event> events_;
  std::map<std::string, double> counters_;
};

/// Fan-out sink, e.g. a Recorder plus a live counter aggregator.
class TeeSink : public Sink {
 public:
  explicit TeeSink(std::vector<Sink*> sinks) : sinks_(std::move(sinks)) {}
  void record(Event e) override {
    for (std::size_t i = 0; i + 1 < sinks_.size(); ++i) sinks_[i]->record(e);
    if (!sinks_.empty()) sinks_.back()->record(std::move(e));
  }

 private:
  std::vector<Sink*> sinks_;
};

/// JSON string escaping shared by exporters.
std::string json_escape(std::string_view s);

/// Render a double without trailing noise: integral values print as
/// integers, everything else with enough digits to round-trip.
std::string format_number(double v);

}  // namespace mbtls::trace
