// Wire-format writer with TLS-style length-prefixed vectors. The
// `LengthPrefix` RAII helper back-patches a 1/2/3-byte length once the scope
// closes, so encoders read like the RFC message definitions.
#pragma once

#include <cstdint>

#include "util/bytes.h"

namespace mbtls {

class Writer {
 public:
  Bytes& buffer() { return out_; }
  const Bytes& buffer() const { return out_; }
  Bytes take() { return std::move(out_); }

  void u8(std::uint8_t v) { put_u8(out_, v); }
  void u16(std::uint16_t v) { put_u16(out_, v); }
  void u24(std::uint32_t v) { put_u24(out_, v); }
  void u32(std::uint32_t v) { put_u32(out_, v); }
  void u64(std::uint64_t v) { put_u64(out_, v); }
  void raw(ByteView v) { append(out_, v); }

  void vec8(ByteView v);
  void vec16(ByteView v);
  void vec24(ByteView v);

  /// RAII scope that reserves a length prefix of `prefix_bytes` and patches
  /// the encoded length of everything written inside the scope when destroyed.
  class LengthPrefix {
   public:
    LengthPrefix(Writer& w, int prefix_bytes);
    ~LengthPrefix();
    LengthPrefix(const LengthPrefix&) = delete;
    LengthPrefix& operator=(const LengthPrefix&) = delete;

   private:
    Writer& w_;
    int prefix_bytes_;
    std::size_t at_;
  };

 private:
  Bytes out_;
};

}  // namespace mbtls
