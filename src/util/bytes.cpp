#include "util/bytes.h"

#include <stdexcept>

namespace mbtls {

Bytes to_bytes(ByteView v) { return Bytes(v.begin(), v.end()); }

Bytes to_bytes(std::string_view s) {
  return Bytes(reinterpret_cast<const std::uint8_t*>(s.data()),
               reinterpret_cast<const std::uint8_t*>(s.data()) + s.size());
}

std::string to_string(ByteView v) {
  return std::string(reinterpret_cast<const char*>(v.data()), v.size());
}

void append(Bytes& dst, ByteView src) { dst.insert(dst.end(), src.begin(), src.end()); }

Bytes concat(std::initializer_list<ByteView> parts) {
  std::size_t total = 0;
  for (auto p : parts) total += p.size();
  Bytes out;
  out.reserve(total);
  for (auto p : parts) append(out, p);
  return out;
}

bool equal(ByteView a, ByteView b) {
  return a.size() == b.size() && std::equal(a.begin(), a.end(), b.begin());
}

void xor_into(MutableByteView a, ByteView b) {
  if (a.size() != b.size()) throw std::invalid_argument("xor_into: length mismatch");
  for (std::size_t i = 0; i < a.size(); ++i) a[i] ^= b[i];
}

void secure_wipe(MutableByteView v) {
  volatile std::uint8_t* p = v.data();
  for (std::size_t i = 0; i < v.size(); ++i) p[i] = 0;
  // Volatile stores alone are not always enough once the enclosing object is
  // about to die; the barrier makes the writes observable side effects.
  asm volatile("" : : "r"(v.data()) : "memory");
}

ByteView slice(ByteView v, std::size_t offset, std::size_t len) {
  if (offset + len > v.size()) throw std::out_of_range("slice: out of range");
  return v.subspan(offset, len);
}

void put_u8(Bytes& out, std::uint8_t v) { out.push_back(v); }

void put_u16(Bytes& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

void put_u24(Bytes& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

void put_u32(Bytes& out, std::uint32_t v) {
  put_u16(out, static_cast<std::uint16_t>(v >> 16));
  put_u16(out, static_cast<std::uint16_t>(v));
}

void put_u64(Bytes& out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v >> 32));
  put_u32(out, static_cast<std::uint32_t>(v));
}

namespace {
void check_range(ByteView v, std::size_t offset, std::size_t n) {
  if (offset + n > v.size()) throw std::out_of_range("integer decode out of range");
}
}  // namespace

std::uint16_t get_u16(ByteView v, std::size_t offset) {
  check_range(v, offset, 2);
  return static_cast<std::uint16_t>((v[offset] << 8) | v[offset + 1]);
}

std::uint32_t get_u24(ByteView v, std::size_t offset) {
  check_range(v, offset, 3);
  return (static_cast<std::uint32_t>(v[offset]) << 16) |
         (static_cast<std::uint32_t>(v[offset + 1]) << 8) | v[offset + 2];
}

std::uint32_t get_u32(ByteView v, std::size_t offset) {
  check_range(v, offset, 4);
  return (static_cast<std::uint32_t>(get_u16(v, offset)) << 16) | get_u16(v, offset + 2);
}

std::uint64_t get_u64(ByteView v, std::size_t offset) {
  check_range(v, offset, 8);
  return (static_cast<std::uint64_t>(get_u32(v, offset)) << 32) | get_u32(v, offset + 4);
}

}  // namespace mbtls
