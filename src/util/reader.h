// Bounds-checked sequential reader over a byte view. Used by every wire-format
// decoder (TLS records, handshake messages, ASN.1, HTTP framing).
#pragma once

#include <cstdint>
#include <stdexcept>

#include "util/bytes.h"

namespace mbtls {

/// Thrown when a decoder runs off the end of its input or sees malformed
/// framing. Callers at protocol boundaries translate this into an alert /
/// connection error instead of crashing.
class DecodeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Reader {
 public:
  explicit Reader(ByteView data) : data_(data) {}

  std::size_t remaining() const { return data_.size() - pos_; }
  bool empty() const { return remaining() == 0; }
  std::size_t position() const { return pos_; }

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u24();
  std::uint32_t u32();
  std::uint64_t u64();

  /// Read exactly `n` bytes.
  ByteView bytes(std::size_t n);

  /// Read a length-prefixed vector with a 1/2/3-byte length prefix (TLS
  /// "opaque foo<0..2^k-1>" syntax).
  ByteView vec8();
  ByteView vec16();
  ByteView vec24();

  /// Read everything that remains.
  ByteView rest();

  /// Skip `n` bytes.
  void skip(std::size_t n);

  /// Throw unless the input was fully consumed — decoders call this to reject
  /// trailing garbage.
  void expect_end() const;

 private:
  void require(std::size_t n) const {
    if (remaining() < n) throw DecodeError("truncated input");
  }

  ByteView data_;
  std::size_t pos_ = 0;
};

}  // namespace mbtls
