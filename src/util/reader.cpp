#include "util/reader.h"

namespace mbtls {

std::uint8_t Reader::u8() {
  require(1);
  return data_[pos_++];
}

std::uint16_t Reader::u16() {
  require(2);
  auto v = get_u16(data_, pos_);
  pos_ += 2;
  return v;
}

std::uint32_t Reader::u24() {
  require(3);
  auto v = get_u24(data_, pos_);
  pos_ += 3;
  return v;
}

std::uint32_t Reader::u32() {
  require(4);
  auto v = get_u32(data_, pos_);
  pos_ += 4;
  return v;
}

std::uint64_t Reader::u64() {
  require(8);
  auto v = get_u64(data_, pos_);
  pos_ += 8;
  return v;
}

ByteView Reader::bytes(std::size_t n) {
  require(n);
  auto v = data_.subspan(pos_, n);
  pos_ += n;
  return v;
}

ByteView Reader::vec8() { return bytes(u8()); }
ByteView Reader::vec16() { return bytes(u16()); }
ByteView Reader::vec24() { return bytes(u24()); }

ByteView Reader::rest() { return bytes(remaining()); }

void Reader::skip(std::size_t n) {
  require(n);
  pos_ += n;
}

void Reader::expect_end() const {
  if (!empty()) throw DecodeError("trailing bytes after message");
}

}  // namespace mbtls
