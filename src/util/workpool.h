// Fixed worker pool over single-producer/single-consumer ring queues — the
// substrate of the multi-core middlebox data plane (see DESIGN.md
// "Multi-core data plane").
//
// Design constraints, in order:
//  1. Shard affinity. A job posted to shard k always runs on worker
//     k % workers, and jobs within one shard run in FIFO order. The mbTLS
//     reprotect pipeline maps one session to one shard, which is what keeps
//     per-hop AEAD sequence numbers and record ordering correct without any
//     cross-worker synchronization.
//  2. No hot-path allocation. Each worker owns one pre-sized SPSC ring;
//     posting moves the job into a slot, popping moves it out. The pool
//     itself never allocates after construction.
//  3. Bounded memory. Rings are fixed-capacity; a full ring applies
//     backpressure to the producer (post() spins-then-yields) instead of
//     growing without bound.
//
// Threading contract: post()/try_post()/drain() must all be called from ONE
// producer thread (the rings are single-producer). The handler runs on the
// worker threads; anything it touches must be sharded or otherwise owned by
// exactly one worker. Key material must never cross the queue except as
// sealed records (lint rule queue-no-secret).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

namespace mbtls::util {

/// CPU time consumed by the calling thread, in nanoseconds
/// (CLOCK_THREAD_CPUTIME_ID). Per-worker busy time measured with this is
/// scheduling-independent: on a machine with fewer cores than workers the
/// threads timeslice, but each thread's own CPU time still measures exactly
/// the compute it performed — which is what the Fig. 7 scaling bench reports
/// as capacity throughput.
std::uint64_t thread_cpu_nanos();

/// One polite busy-wait step (PAUSE/YIELD instruction where available).
void cpu_relax();

/// Adaptive wait for queue spins: a short cpu_relax() burst, then a
/// scheduler yield so a single-core machine makes progress.
void spin_backoff(unsigned& spins);

/// Bounded lock-free single-producer/single-consumer ring. Capacity is
/// rounded up to a power of two. T must be default-constructible and
/// movable; a moved-out slot keeps its (empty) husk until overwritten.
template <typename T>
class SpscRing {
 public:
  explicit SpscRing(std::size_t min_capacity) {
    std::size_t cap = 2;
    while (cap < min_capacity) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  /// Producer side. Returns false (without consuming `v`) when full.
  bool try_push(T&& v) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_.load(std::memory_order_acquire) > mask_) return false;
    slots_[tail & mask_] = std::move(v);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side.
  std::optional<T> try_pop() {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_.load(std::memory_order_acquire)) return std::nullopt;
    std::optional<T> out(std::move(slots_[head & mask_]));
    head_.store(head + 1, std::memory_order_release);
    return out;
  }

  bool empty() const {
    return head_.load(std::memory_order_acquire) == tail_.load(std::memory_order_acquire);
  }
  std::size_t capacity() const { return mask_ + 1; }

 private:
  std::vector<T> slots_;
  std::size_t mask_ = 0;
  // Head and tail on separate cache lines: the producer writes tail_ while
  // the consumer writes head_; sharing a line would ping-pong it.
  alignas(64) std::atomic<std::size_t> head_{0};
  alignas(64) std::atomic<std::size_t> tail_{0};
};

/// Fixed pool of workers, one SPSC ring each, with shard-affine routing.
template <typename Job>
class WorkPool {
 public:
  /// Runs on a worker thread for every job. `worker` is the worker index —
  /// handlers use it to reach per-worker scratch state without locks.
  using Handler = std::function<void(std::size_t worker, Job&& job)>;

  WorkPool(std::size_t workers, std::size_t queue_capacity, Handler handler)
      : handler_(std::move(handler)) {
    if (workers == 0) workers = 1;
    lanes_.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i)
      lanes_.push_back(std::make_unique<Lane>(queue_capacity));
    // Threads start only after every lane exists (worker_main indexes lanes_).
    for (std::size_t i = 0; i < workers; ++i)
      lanes_[i]->thread = std::thread([this, i] { worker_main(i); });
  }

  /// Drains every ring, then joins. Jobs posted before destruction all run.
  ~WorkPool() {
    stop_.store(true, std::memory_order_release);
    for (auto& lane : lanes_)
      if (lane->thread.joinable()) lane->thread.join();
  }

  WorkPool(const WorkPool&) = delete;
  WorkPool& operator=(const WorkPool&) = delete;

  std::size_t worker_count() const { return lanes_.size(); }
  std::size_t shard_worker(std::size_t shard) const { return shard % lanes_.size(); }

  /// Post a job to its shard's worker; blocks (spin, then yield) while that
  /// worker's ring is full — bounded memory via backpressure.
  void post(std::size_t shard, Job job) {
    Lane& lane = *lanes_[shard_worker(shard)];
    unsigned spins = 0;
    // try_push leaves `job` untouched on failure, so the retry move is safe.
    while (!lane.ring.try_push(std::move(job))) spin_backoff(spins);
    ++lane.posted;
  }

  /// Non-blocking post: false (job untouched) when the shard's ring is full.
  bool try_post(std::size_t shard, Job& job) {
    Lane& lane = *lanes_[shard_worker(shard)];
    if (!lane.ring.try_push(std::move(job))) return false;
    ++lane.posted;
    return true;
  }

  /// Barrier: returns once every job posted so far has finished running.
  /// Completion counts are released by the workers after the handler returns,
  /// so the producer observes all handler side effects after drain().
  void drain() {
    for (auto& lane : lanes_) {
      unsigned spins = 0;
      while (lane->completed.load(std::memory_order_acquire) < lane->posted)
        spin_backoff(spins);
    }
  }

  /// CPU time worker `i` spent inside the handler (idle spinning excluded).
  double busy_seconds(std::size_t i) const {
    return static_cast<double>(lanes_[i]->busy_nanos.load(std::memory_order_acquire)) * 1e-9;
  }
  std::uint64_t jobs_done(std::size_t i) const {
    return lanes_[i]->completed.load(std::memory_order_acquire);
  }

 private:
  struct Lane {
    explicit Lane(std::size_t queue_capacity) : ring(queue_capacity) {}
    SpscRing<Job> ring;
    std::atomic<std::uint64_t> completed{0};
    std::atomic<std::uint64_t> busy_nanos{0};
    std::uint64_t posted = 0;  // producer thread only
    std::thread thread;
  };

  void worker_main(std::size_t index) {
    Lane& lane = *lanes_[index];
    unsigned spins = 0;
    for (;;) {
      if (auto job = lane.ring.try_pop()) {
        const std::uint64_t t0 = thread_cpu_nanos();
        handler_(index, std::move(*job));
        lane.busy_nanos.fetch_add(thread_cpu_nanos() - t0, std::memory_order_relaxed);
        lane.completed.fetch_add(1, std::memory_order_release);
        spins = 0;
        continue;
      }
      if (stop_.load(std::memory_order_acquire) && lane.ring.empty()) return;
      spin_backoff(spins);
    }
  }

  Handler handler_;
  std::vector<std::unique_ptr<Lane>> lanes_;
  std::atomic<bool> stop_{false};
};

}  // namespace mbtls::util
