#include "util/writer.h"

#include <stdexcept>

namespace mbtls {

void Writer::vec8(ByteView v) {
  if (v.size() > 0xff) throw std::length_error("vec8 overflow");
  u8(static_cast<std::uint8_t>(v.size()));
  raw(v);
}

void Writer::vec16(ByteView v) {
  if (v.size() > 0xffff) throw std::length_error("vec16 overflow");
  u16(static_cast<std::uint16_t>(v.size()));
  raw(v);
}

void Writer::vec24(ByteView v) {
  if (v.size() > 0xffffff) throw std::length_error("vec24 overflow");
  u24(static_cast<std::uint32_t>(v.size()));
  raw(v);
}

Writer::LengthPrefix::LengthPrefix(Writer& w, int prefix_bytes)
    : w_(w), prefix_bytes_(prefix_bytes), at_(w.out_.size()) {
  for (int i = 0; i < prefix_bytes; ++i) w_.out_.push_back(0);
}

Writer::LengthPrefix::~LengthPrefix() {
  const std::size_t len = w_.out_.size() - at_ - static_cast<std::size_t>(prefix_bytes_);
  std::size_t v = len;
  for (int i = prefix_bytes_ - 1; i >= 0; --i) {
    w_.out_[at_ + static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(v & 0xff);
    v >>= 8;
  }
}

}  // namespace mbtls
