// Hex encoding/decoding, used heavily by tests (known-answer vectors) and by
// diagnostic logging.
#pragma once

#include <string>
#include <string_view>

#include "util/bytes.h"

namespace mbtls {

/// Lowercase hex encoding of `v`.
std::string hex_encode(ByteView v);

/// Decode a hex string (case-insensitive; throws std::invalid_argument on bad
/// input or odd length).
Bytes hex_decode(std::string_view s);

}  // namespace mbtls
