#include "util/trace.h"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>

namespace mbtls::trace {

void Emitter::emit(Phase phase, std::string_view category,
                   std::string_view name, double delta, Args args) const {
  Event e;
  e.phase = phase;
  e.actor = actor_;
  e.category = std::string(category);
  e.name = std::string(name);
  e.delta = delta;
  e.args = std::move(args);
  sink_->record(std::move(e));
}

void Recorder::record(Event e) {
  e.ts = clock_ ? clock_() : seq_;
  ++seq_;
  if (e.phase == Phase::kCounter) {
    counters_[e.actor + "/" + e.name] += e.delta;
  }
  events_.push_back(std::move(e));
}

double Recorder::counter_total(std::string_view name) const {
  double total = 0;
  for (const auto& [key, value] : counters_) {
    auto slash = key.rfind('/');
    if (slash != std::string::npos &&
        std::string_view(key).substr(slash + 1) == name) {
      total += value;
    }
  }
  return total;
}

void Recorder::clear() {
  seq_ = 0;
  events_.clear();
  counters_.clear();
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

std::string format_number(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::abs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRId64, static_cast<std::int64_t>(v));
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

namespace {

// Stable actor -> Chrome tid mapping, in order of first appearance.
std::vector<std::string> actor_order(const std::vector<Event>& events) {
  std::vector<std::string> actors;
  for (const Event& e : events) {
    if (std::find(actors.begin(), actors.end(), e.actor) == actors.end()) {
      actors.push_back(e.actor);
    }
  }
  return actors;
}

}  // namespace

std::string Recorder::chrome_trace_json() const {
  const std::vector<std::string> actors = actor_order(events_);
  auto tid_of = [&](const std::string& actor) {
    return static_cast<int>(
        std::find(actors.begin(), actors.end(), actor) - actors.begin());
  };

  std::string out = "{\"traceEvents\":[";
  bool first = true;
  auto sep = [&] {
    if (!first) out += ',';
    first = false;
  };
  for (std::size_t i = 0; i < actors.size(); ++i) {
    sep();
    out += "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":";
    out += std::to_string(i);
    out += ",\"args\":{\"name\":\"";
    out += json_escape(actors[i]);
    out += "\"}}";
  }
  for (const Event& e : events_) {
    sep();
    out += "{\"name\":\"";
    out += json_escape(e.name);
    out += "\",\"cat\":\"";
    out += json_escape(e.category);
    out += "\",\"ph\":\"";
    out += static_cast<char>(e.phase);
    out += "\",\"ts\":";
    out += std::to_string(e.ts);
    out += ",\"pid\":1,\"tid\":";
    out += std::to_string(tid_of(e.actor));
    if (e.phase == Phase::kInstant) out += ",\"s\":\"t\"";
    if (e.phase == Phase::kCounter) {
      out += ",\"args\":{\"value\":";
      out += format_number(e.delta);
      out += "}}";
      continue;
    }
    if (!e.args.empty()) {
      out += ",\"args\":{";
      for (std::size_t i = 0; i < e.args.size(); ++i) {
        if (i) out += ',';
        out += '"';
        out += json_escape(e.args[i].name);
        out += "\":";
        if (e.args[i].numeric) {
          out += e.args[i].value;
        } else {
          out += '"';
          out += json_escape(e.args[i].value);
          out += '"';
        }
      }
      out += '}';
    }
    out += '}';
  }
  out += "]}";
  return out;
}

std::string Recorder::counter_dump() const {
  // Explicit counter totals plus a tally of every non-counter event name,
  // both keyed "actor/name" and emitted in sorted order.
  std::map<std::string, double> lines = counters_;
  for (const Event& e : events_) {
    if (e.phase == Phase::kCounter) continue;
    if (e.phase == Phase::kEnd) continue;  // count spans once, at begin
    lines["events/" + e.actor + "/" + e.category + "." + e.name] += 1;
  }
  std::string out;
  for (const auto& [key, value] : lines) {
    out += key;
    out += ' ';
    out += format_number(value);
    out += '\n';
  }
  return out;
}

}  // namespace mbtls::trace
