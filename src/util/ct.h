// Constant-time primitives shared by every module that touches secrets.
//
// Everything here runs in time dependent only on operand *lengths*, never on
// operand *values*: branch-free masks for field arithmetic (src/ec, src/rsa),
// branchless selection for window lookups, and the byte-string equality used
// for MAC/tag verification in src/crypto and src/tls. Call sites must not
// reimplement these locally — tools/mbtls-lint's secret-compare rule treats
// `ct::equal` / `constant_time_equal` as the only sanctioned comparisons for
// secret-named data.
#pragma once

#include <cstddef>
#include <cstdint>

#include "util/bytes.h"

namespace mbtls::ct {

/// All-ones if `x == 0`, else all-zeros. The classic (x | -x) trick: the top
/// bit of `x | (~x + 1)` is set iff x is non-zero.
inline std::uint64_t is_zero_mask(std::uint64_t x) {
  const std::uint64_t nonzero_bit = (x | (~x + 1)) >> 63;
  return nonzero_bit - 1;  // 1 -> 0x00..0, 0 -> 0xff..f
}

/// All-ones if `a == b`, else all-zeros.
inline std::uint64_t eq_mask(std::uint64_t a, std::uint64_t b) {
  return is_zero_mask(a ^ b);
}

/// All-ones if every word of `w[0..n)` is zero, else all-zeros.
inline std::uint64_t all_zero_mask(const std::uint64_t* w, std::size_t n) {
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < n; ++i) acc |= w[i];
  return is_zero_mask(acc);
}

/// Branchless select: `a` where mask is all-ones, `b` where all-zeros.
inline std::uint64_t select(std::uint64_t mask, std::uint64_t a, std::uint64_t b) {
  return (a & mask) | (b & ~mask);
}

/// Conditional move over a word array: `r[i] = a[i]` where mask is all-ones.
/// Always reads and writes every word.
inline void cmov(std::uint64_t* r, const std::uint64_t* a, std::size_t n,
                 std::uint64_t mask) {
  for (std::size_t i = 0; i < n; ++i) r[i] = (r[i] & ~mask) | (a[i] & mask);
}

/// Constant-time byte-string equality for MACs, tags, and other secrets.
/// Accumulates the XOR of every byte pair before deciding; only the lengths
/// leak (they are public framing, not secret content).
inline bool equal(ByteView a, ByteView b) {
  if (a.size() != b.size()) return false;
  std::uint8_t diff = 0;
  for (std::size_t i = 0; i < a.size(); ++i) diff |= static_cast<std::uint8_t>(a[i] ^ b[i]);
  return diff == 0;
}

}  // namespace mbtls::ct

namespace mbtls {

/// Historic spelling kept for call sites outside the crypto core; new code in
/// secret-bearing directories should spell it ct::equal.
inline bool constant_time_equal(ByteView a, ByteView b) { return ct::equal(a, b); }

}  // namespace mbtls
