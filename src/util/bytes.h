// Byte-buffer primitives shared by every module.
//
// `Bytes` is the canonical owning byte container; `ByteView` the canonical
// non-owning view. Helpers here cover concatenation, comparison, and
// conversions to/from strings; constant-time comparison lives in util/ct.h.
#pragma once

#include <bit>
#include <cstdint>
#include <cstddef>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

namespace mbtls {

using Bytes = std::vector<std::uint8_t>;
using ByteView = std::span<const std::uint8_t>;
using MutableByteView = std::span<std::uint8_t>;

/// Build an owning buffer from a view.
Bytes to_bytes(ByteView v);

/// Build an owning buffer from the raw characters of a string (no encoding).
Bytes to_bytes(std::string_view s);

/// Interpret raw bytes as a std::string (no encoding).
std::string to_string(ByteView v);

/// Append `src` to `dst`.
void append(Bytes& dst, ByteView src);

/// Concatenate any number of views into a fresh buffer.
Bytes concat(std::initializer_list<ByteView> parts);

/// Ordinary (early-exit) equality. Do NOT use for secrets; the constant-time
/// variant lives in util/ct.h (ct::equal / constant_time_equal).
bool equal(ByteView a, ByteView b);

/// XOR `b` into `a` (lengths must match).
void xor_into(MutableByteView a, ByteView b);

/// Zero a buffer. Writes through a volatile pointer and ends with a compiler
/// barrier so the stores survive dead-store elimination even when the buffer
/// is destroyed immediately afterwards. Key material must flow through this
/// (or secure_wipe_object) before its owner dies; tools/mbtls-lint enforces
/// it for annotated and key-named members.
void secure_wipe(MutableByteView v);

/// Zero an entire trivially-copyable object: round-key schedules, GHASH
/// tables, fixed-size cipher state. Prefer secure_wipe() for byte buffers.
template <typename T>
void secure_wipe_object(T& obj) {
  static_assert(std::is_trivially_copyable_v<T>, "wipe only plain state");
  volatile unsigned char* p = reinterpret_cast<volatile unsigned char*>(&obj);
  for (std::size_t i = 0; i < sizeof(T); ++i) p[i] = 0;
  asm volatile("" : : "r"(&obj) : "memory");
}

/// Subview helper with bounds checking; throws std::out_of_range.
ByteView slice(ByteView v, std::size_t offset, std::size_t len);

// Raw big-endian word load/store: one memcpy plus a byteswap instead of a
// per-byte shift loop. These are the hot-path primitives behind SHA-2 message
// schedules, GHASH block absorption, and the GCM counter; the codec-style
// put_/get_ helpers below stay byte-oriented because they grow vectors.
inline std::uint32_t load_be32(const void* p) {
  std::uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  if constexpr (std::endian::native == std::endian::little) v = __builtin_bswap32(v);
  return v;
}

inline std::uint64_t load_be64(const void* p) {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  if constexpr (std::endian::native == std::endian::little) v = __builtin_bswap64(v);
  return v;
}

inline void store_be32(void* p, std::uint32_t v) {
  if constexpr (std::endian::native == std::endian::little) v = __builtin_bswap32(v);
  std::memcpy(p, &v, sizeof(v));
}

inline void store_be64(void* p, std::uint64_t v) {
  if constexpr (std::endian::native == std::endian::little) v = __builtin_bswap64(v);
  std::memcpy(p, &v, sizeof(v));
}

// Big-endian integer encode/decode helpers (network byte order), used by the
// TLS record and handshake codecs.
void put_u8(Bytes& out, std::uint8_t v);
void put_u16(Bytes& out, std::uint16_t v);
void put_u24(Bytes& out, std::uint32_t v);
void put_u32(Bytes& out, std::uint32_t v);
void put_u64(Bytes& out, std::uint64_t v);

std::uint16_t get_u16(ByteView v, std::size_t offset);
std::uint32_t get_u24(ByteView v, std::size_t offset);
std::uint32_t get_u32(ByteView v, std::size_t offset);
std::uint64_t get_u64(ByteView v, std::size_t offset);

}  // namespace mbtls
