#include "crypto/backend.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

#if defined(__x86_64__) || defined(_M_X64)
#include <cpuid.h>
#define MBTLS_BACKEND_X86 1
#endif

namespace mbtls::crypto {

namespace {

CpuFeatures detect_cpu() {
  CpuFeatures f;
#ifdef MBTLS_BACKEND_X86
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (__get_cpuid(1, &eax, &ebx, &ecx, &edx)) {
    f.pclmul = (ecx & (1u << 1)) != 0;
    f.ssse3 = (ecx & (1u << 9)) != 0;
    f.sse41 = (ecx & (1u << 19)) != 0;
    f.aesni = (ecx & (1u << 25)) != 0;
  }
  if (__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx)) {
    f.avx2 = (ebx & (1u << 5)) != 0;
    f.sha_ni = (ebx & (1u << 29)) != 0;
  }
#endif
  return f;
}

constexpr bool aesni_compiled() {
#ifdef MBTLS_HAVE_AESNI_BUILD
  return true;
#else
  return false;
#endif
}

constexpr bool sha_ni_compiled() {
#ifdef MBTLS_HAVE_SHANI_BUILD
  return true;
#else
  return false;
#endif
}

Backend resolve_from_env() {
  const char* env = std::getenv("MBTLS_CRYPTO_BACKEND");
  const std::string v = env ? env : "auto";
  if (v == "scalar") return Backend::kScalar;
  if (v == "aesni") {
    if (aesni_available()) return Backend::kAesni;
    std::fprintf(stderr,
                 "mbtls: MBTLS_CRYPTO_BACKEND=aesni but the AES-NI backend is "
                 "unavailable (compiled=%d, cpu aes=%d pclmul=%d); using scalar\n",
                 aesni_compiled() ? 1 : 0, cpu_features().aesni ? 1 : 0,
                 cpu_features().pclmul ? 1 : 0);
    return Backend::kScalar;
  }
  if (v != "auto" && !v.empty())
    std::fprintf(stderr, "mbtls: unknown MBTLS_CRYPTO_BACKEND '%s'; using auto\n", v.c_str());
  return aesni_available() ? Backend::kAesni : Backend::kScalar;
}

// -1 = no override; otherwise a Backend value forced by tests/benches.
std::atomic<int> g_forced{-1};

}  // namespace

const CpuFeatures& cpu_features() {
  static const CpuFeatures f = detect_cpu();
  return f;
}

bool aesni_available() {
  const CpuFeatures& f = cpu_features();
  return aesni_compiled() && f.aesni && f.pclmul && f.ssse3 && f.sse41;
}

bool sha_ni_available() {
  const CpuFeatures& f = cpu_features();
  return sha_ni_compiled() && f.sha_ni && f.ssse3 && f.sse41;
}

Backend active_backend() {
  const int forced = g_forced.load(std::memory_order_relaxed);
  if (forced >= 0) return static_cast<Backend>(forced);
  static const Backend resolved = resolve_from_env();
  return resolved;
}

void force_backend_for_testing(Backend b) {
  if (b == Backend::kAesni && !aesni_available()) b = Backend::kScalar;
  g_forced.store(static_cast<int>(b), std::memory_order_relaxed);
}

const char* backend_name(Backend b) {
  switch (b) {
    case Backend::kScalar: return "scalar";
    case Backend::kAesni: return "aesni";
  }
  return "unknown";
}

const char* active_backend_name() { return backend_name(active_backend()); }

std::string cpu_feature_string() {
  const CpuFeatures& f = cpu_features();
  std::string out;
  auto add = [&](bool present, const char* name) {
    if (!present) return;
    if (!out.empty()) out += ' ';
    out += name;
  };
  add(f.aesni, "aesni");
  add(f.pclmul, "pclmul");
  add(f.ssse3, "ssse3");
  add(f.sse41, "sse4.1");
  add(f.sha_ni, "sha_ni");
  add(f.avx2, "avx2");
  if (out.empty()) out = "none";
  return out;
}

// Link-time stubs for builds whose toolchain cannot compile the intrinsics.
// aesni_available()/sha_ni_available() are false in those builds, so reaching
// one of these means a caller skipped the gate — fail loudly.
#ifndef MBTLS_HAVE_AESNI_BUILD
namespace accel {

namespace {
[[noreturn]] void missing() {
  std::fprintf(stderr, "mbtls: accelerated crypto called but not compiled in\n");
  std::abort();
}
}  // namespace

void aes_key_expand(const std::uint8_t*, std::size_t, std::uint8_t*) { missing(); }
void aes_encrypt_block(const std::uint8_t*, int, const std::uint8_t*, std::uint8_t*) { missing(); }
void aes_encrypt4(const std::uint8_t*, int, const std::uint8_t*, std::uint8_t*) { missing(); }
void aes_ctr_xor(const std::uint8_t*, int, const std::uint8_t*, const std::uint8_t*, std::size_t,
                 std::uint8_t*) {
  missing();
}
void ghash_init(const std::uint8_t*, std::uint8_t*) { missing(); }
void ghash(const std::uint8_t*, ByteView, ByteView, std::uint8_t*) { missing(); }

}  // namespace accel
#endif  // !MBTLS_HAVE_AESNI_BUILD

#ifndef MBTLS_HAVE_SHANI_BUILD
namespace accel {

void sha256_compress(std::uint32_t*, const std::uint8_t*, std::size_t) {
  std::fprintf(stderr, "mbtls: SHA-NI path called but not compiled in\n");
  std::abort();
}

}  // namespace accel
#endif  // !MBTLS_HAVE_SHANI_BUILD

}  // namespace mbtls::crypto
