// x86-64 accelerated backend: AES-NI block/CTR paths, PCLMULQDQ GHASH with
// precomputed H powers, and (when the toolchain has -msha) SHA-NI SHA-256.
//
// This is the only translation unit compiled with the -maes/-mpclmul/-mssse3/
// -msse4.1 [-msha] flags; everything it exports is declared in backend.h and
// reached through runtime dispatch, so the rest of the library stays portable.
// Byte-compatibility contract: every function here must produce output
// identical to the scalar implementation it replaces — tests/test_crypto_diff
// enforces this across backends against the MBTLS_REFERENCE_CRYPTO oracle.
//
// Register hygiene: locals holding key material (round keys, GHASH key
// powers, key-schedule temporaries) are named so mbtls-lint's wipe-all-paths
// rule tracks them, and are zeroed via secure_wipe_object() before returning.
#include "crypto/backend.h"

#include <immintrin.h>

#include <array>
#include <cstring>

namespace mbtls::crypto::accel {

namespace {

// Reverse all 16 bytes of a block (GHASH works in the bit-reflected domain).
inline __m128i byte_reverse(__m128i x) {
  const __m128i kReverse =
      _mm_set_epi8(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15);
  return _mm_shuffle_epi8(x, kReverse);
}

// ------------------------------------------------------------- key schedule

// FIPS-197 word recurrence over one 128-bit register: each 32-bit lane
// becomes the XOR of itself and every lane below it (three shift-fold steps),
// ready to take the RotWord/SubWord/Rcon word broadcast across all lanes.
inline __m128i prefix_xor_fold(__m128i k) {
  k = _mm_xor_si128(k, _mm_slli_si128(k, 4));
  k = _mm_xor_si128(k, _mm_slli_si128(k, 4));
  return _mm_xor_si128(k, _mm_slli_si128(k, 4));
}

}  // namespace

void aes_key_expand(const std::uint8_t* key, std::size_t key_len, std::uint8_t* round_keys) {
  __m128i* rk = reinterpret_cast<__m128i*>(round_keys);
  if (key_len == 16) {
    __m128i key_vec = _mm_loadu_si128(reinterpret_cast<const __m128i*>(key));
    _mm_storeu_si128(rk + 0, key_vec);
    // AESKEYGENASSIST's imm8 must be a literal, so the ten rcon steps unroll.
    const auto step = [&key_vec](__m128i keygened) {
      keygened = _mm_shuffle_epi32(keygened, 0xff);  // broadcast RotSub+rcon word
      key_vec = _mm_xor_si128(prefix_xor_fold(key_vec), keygened);
      return key_vec;
    };
    _mm_storeu_si128(rk + 1, step(_mm_aeskeygenassist_si128(key_vec, 0x01)));
    _mm_storeu_si128(rk + 2, step(_mm_aeskeygenassist_si128(key_vec, 0x02)));
    _mm_storeu_si128(rk + 3, step(_mm_aeskeygenassist_si128(key_vec, 0x04)));
    _mm_storeu_si128(rk + 4, step(_mm_aeskeygenassist_si128(key_vec, 0x08)));
    _mm_storeu_si128(rk + 5, step(_mm_aeskeygenassist_si128(key_vec, 0x10)));
    _mm_storeu_si128(rk + 6, step(_mm_aeskeygenassist_si128(key_vec, 0x20)));
    _mm_storeu_si128(rk + 7, step(_mm_aeskeygenassist_si128(key_vec, 0x40)));
    _mm_storeu_si128(rk + 8, step(_mm_aeskeygenassist_si128(key_vec, 0x80)));
    _mm_storeu_si128(rk + 9, step(_mm_aeskeygenassist_si128(key_vec, 0x1b)));
    _mm_storeu_si128(rk + 10, step(_mm_aeskeygenassist_si128(key_vec, 0x36)));
    secure_wipe_object(key_vec);
    return;
  }

  // AES-256: two halves advance alternately; even round keys take the full
  // RotWord/SubWord/Rcon word, odd ones only SubWord (dword 2 of the assist).
  __m128i key_lo = _mm_loadu_si128(reinterpret_cast<const __m128i*>(key));
  __m128i key_hi = _mm_loadu_si128(reinterpret_cast<const __m128i*>(key + 16));
  _mm_storeu_si128(rk + 0, key_lo);
  _mm_storeu_si128(rk + 1, key_hi);
  const auto even_step = [&](__m128i keygened) {
    keygened = _mm_shuffle_epi32(keygened, 0xff);
    key_lo = _mm_xor_si128(prefix_xor_fold(key_lo), keygened);
    return key_lo;
  };
  const auto odd_step = [&] {
    const __m128i keygened =
        _mm_shuffle_epi32(_mm_aeskeygenassist_si128(key_lo, 0x00), 0xaa);
    key_hi = _mm_xor_si128(prefix_xor_fold(key_hi), keygened);
    return key_hi;
  };
  _mm_storeu_si128(rk + 2, even_step(_mm_aeskeygenassist_si128(key_hi, 0x01)));
  _mm_storeu_si128(rk + 3, odd_step());
  _mm_storeu_si128(rk + 4, even_step(_mm_aeskeygenassist_si128(key_hi, 0x02)));
  _mm_storeu_si128(rk + 5, odd_step());
  _mm_storeu_si128(rk + 6, even_step(_mm_aeskeygenassist_si128(key_hi, 0x04)));
  _mm_storeu_si128(rk + 7, odd_step());
  _mm_storeu_si128(rk + 8, even_step(_mm_aeskeygenassist_si128(key_hi, 0x08)));
  _mm_storeu_si128(rk + 9, odd_step());
  _mm_storeu_si128(rk + 10, even_step(_mm_aeskeygenassist_si128(key_hi, 0x10)));
  _mm_storeu_si128(rk + 11, odd_step());
  _mm_storeu_si128(rk + 12, even_step(_mm_aeskeygenassist_si128(key_hi, 0x20)));
  _mm_storeu_si128(rk + 13, odd_step());
  _mm_storeu_si128(rk + 14, even_step(_mm_aeskeygenassist_si128(key_hi, 0x40)));
  secure_wipe_object(key_lo);
  secure_wipe_object(key_hi);
}

// ------------------------------------------------------------- block cipher

void aes_encrypt_block(const std::uint8_t* round_keys, int rounds, const std::uint8_t in[16],
                       std::uint8_t out[16]) {
  const __m128i* rk = reinterpret_cast<const __m128i*>(round_keys);
  __m128i b = _mm_xor_si128(_mm_loadu_si128(reinterpret_cast<const __m128i*>(in)),
                            _mm_loadu_si128(rk));
  for (int r = 1; r < rounds; ++r) b = _mm_aesenc_si128(b, _mm_loadu_si128(rk + r));
  b = _mm_aesenclast_si128(b, _mm_loadu_si128(rk + rounds));
  _mm_storeu_si128(reinterpret_cast<__m128i*>(out), b);
}

void aes_encrypt4(const std::uint8_t* round_keys, int rounds, const std::uint8_t in[64],
                  std::uint8_t out[64]) {
  const __m128i* rk = reinterpret_cast<const __m128i*>(round_keys);
  const __m128i* src = reinterpret_cast<const __m128i*>(in);
  __m128i* dst = reinterpret_cast<__m128i*>(out);
  const __m128i k0 = _mm_loadu_si128(rk);
  __m128i b0 = _mm_xor_si128(_mm_loadu_si128(src + 0), k0);
  __m128i b1 = _mm_xor_si128(_mm_loadu_si128(src + 1), k0);
  __m128i b2 = _mm_xor_si128(_mm_loadu_si128(src + 2), k0);
  __m128i b3 = _mm_xor_si128(_mm_loadu_si128(src + 3), k0);
  for (int r = 1; r < rounds; ++r) {
    const __m128i kr = _mm_loadu_si128(rk + r);
    b0 = _mm_aesenc_si128(b0, kr);
    b1 = _mm_aesenc_si128(b1, kr);
    b2 = _mm_aesenc_si128(b2, kr);
    b3 = _mm_aesenc_si128(b3, kr);
  }
  const __m128i klast = _mm_loadu_si128(rk + rounds);
  _mm_storeu_si128(dst + 0, _mm_aesenclast_si128(b0, klast));
  _mm_storeu_si128(dst + 1, _mm_aesenclast_si128(b1, klast));
  _mm_storeu_si128(dst + 2, _mm_aesenclast_si128(b2, klast));
  _mm_storeu_si128(dst + 3, _mm_aesenclast_si128(b3, klast));
}

// ------------------------------------------------------------ CTR keystream

void aes_ctr_xor(const std::uint8_t* rk_bytes, int rounds, const std::uint8_t j0[16],
                 const std::uint8_t* in, std::size_t len, std::uint8_t* out) {
  if (len == 0) return;
  // Hoist the schedule into registers/stack once per call; wiped on exit.
  std::array<__m128i, 15> cipher_keys;
  for (int r = 0; r <= rounds; ++r)
    cipher_keys[static_cast<std::size_t>(r)] =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(rk_bytes + 16 * r));

  const __m128i j0_vec = _mm_loadu_si128(reinterpret_cast<const __m128i*>(j0));
  std::uint32_t ctr = load_be32(j0 + 12);
  // Counter block c: J0 with its big-endian low word replaced. The scalar
  // path pre-increments, so block k of the message uses counter_0 + k + 1.
  const auto counter_block = [&j0_vec](std::uint32_t c) {
    return _mm_insert_epi32(j0_vec, static_cast<int>(__builtin_bswap32(c)), 3);
  };

  // Eight blocks in flight: AESENC has multi-cycle latency but single-cycle
  // throughput, so independent states hide the chain the scalar T-table
  // encrypt4 could only partially overlap.
  while (len >= 128) {
    __m128i b0 = _mm_xor_si128(counter_block(ctr + 1), cipher_keys[0]);
    __m128i b1 = _mm_xor_si128(counter_block(ctr + 2), cipher_keys[0]);
    __m128i b2 = _mm_xor_si128(counter_block(ctr + 3), cipher_keys[0]);
    __m128i b3 = _mm_xor_si128(counter_block(ctr + 4), cipher_keys[0]);
    __m128i b4 = _mm_xor_si128(counter_block(ctr + 5), cipher_keys[0]);
    __m128i b5 = _mm_xor_si128(counter_block(ctr + 6), cipher_keys[0]);
    __m128i b6 = _mm_xor_si128(counter_block(ctr + 7), cipher_keys[0]);
    __m128i b7 = _mm_xor_si128(counter_block(ctr + 8), cipher_keys[0]);
    for (int r = 1; r < rounds; ++r) {
      const __m128i kr = cipher_keys[static_cast<std::size_t>(r)];
      b0 = _mm_aesenc_si128(b0, kr);
      b1 = _mm_aesenc_si128(b1, kr);
      b2 = _mm_aesenc_si128(b2, kr);
      b3 = _mm_aesenc_si128(b3, kr);
      b4 = _mm_aesenc_si128(b4, kr);
      b5 = _mm_aesenc_si128(b5, kr);
      b6 = _mm_aesenc_si128(b6, kr);
      b7 = _mm_aesenc_si128(b7, kr);
    }
    const __m128i klast = cipher_keys[static_cast<std::size_t>(rounds)];
    b0 = _mm_aesenclast_si128(b0, klast);
    b1 = _mm_aesenclast_si128(b1, klast);
    b2 = _mm_aesenclast_si128(b2, klast);
    b3 = _mm_aesenclast_si128(b3, klast);
    b4 = _mm_aesenclast_si128(b4, klast);
    b5 = _mm_aesenclast_si128(b5, klast);
    b6 = _mm_aesenclast_si128(b6, klast);
    b7 = _mm_aesenclast_si128(b7, klast);
    const __m128i* src = reinterpret_cast<const __m128i*>(in);
    __m128i* dst = reinterpret_cast<__m128i*>(out);
    _mm_storeu_si128(dst + 0, _mm_xor_si128(b0, _mm_loadu_si128(src + 0)));
    _mm_storeu_si128(dst + 1, _mm_xor_si128(b1, _mm_loadu_si128(src + 1)));
    _mm_storeu_si128(dst + 2, _mm_xor_si128(b2, _mm_loadu_si128(src + 2)));
    _mm_storeu_si128(dst + 3, _mm_xor_si128(b3, _mm_loadu_si128(src + 3)));
    _mm_storeu_si128(dst + 4, _mm_xor_si128(b4, _mm_loadu_si128(src + 4)));
    _mm_storeu_si128(dst + 5, _mm_xor_si128(b5, _mm_loadu_si128(src + 5)));
    _mm_storeu_si128(dst + 6, _mm_xor_si128(b6, _mm_loadu_si128(src + 6)));
    _mm_storeu_si128(dst + 7, _mm_xor_si128(b7, _mm_loadu_si128(src + 7)));
    ctr += 8;
    in += 128;
    out += 128;
    len -= 128;
  }

  // Tail: single blocks, partial final block via a keystream staging buffer.
  while (len > 0) {
    __m128i b = _mm_xor_si128(counter_block(++ctr), cipher_keys[0]);
    for (int r = 1; r < rounds; ++r)
      b = _mm_aesenc_si128(b, cipher_keys[static_cast<std::size_t>(r)]);
    b = _mm_aesenclast_si128(b, cipher_keys[static_cast<std::size_t>(rounds)]);
    if (len >= 16) {
      _mm_storeu_si128(
          reinterpret_cast<__m128i*>(out),
          _mm_xor_si128(b, _mm_loadu_si128(reinterpret_cast<const __m128i*>(in))));
      in += 16;
      out += 16;
      len -= 16;
    } else {
      std::uint8_t keystream[16];
      _mm_storeu_si128(reinterpret_cast<__m128i*>(keystream), b);
      for (std::size_t i = 0; i < len; ++i)
        out[i] = static_cast<std::uint8_t>(in[i] ^ keystream[i]);
      len = 0;
    }
  }
  secure_wipe_object(cipher_keys);
}

// ------------------------------------------------------------------- GHASH
//
// GF(2^128) multiply in the bit-reflected domain (Gueron & Kounavis, Intel
// CLMUL white paper): blocks are byte-reversed on load, the 255-bit carryless
// product is shifted left one bit, then reduced mod x^128 + x^7 + x^2 + x + 1.
// The three-accumulator split lets four block·H^i products share one
// reduction (aggregated reduction with precomputed H powers).

namespace {

inline void clmul_accumulate(__m128i a, __m128i b, __m128i& lo, __m128i& mid, __m128i& hi) {
  lo = _mm_xor_si128(lo, _mm_clmulepi64_si128(a, b, 0x00));
  hi = _mm_xor_si128(hi, _mm_clmulepi64_si128(a, b, 0x11));
  mid = _mm_xor_si128(mid, _mm_xor_si128(_mm_clmulepi64_si128(a, b, 0x10),
                                         _mm_clmulepi64_si128(a, b, 0x01)));
}

inline __m128i gf_reduce(__m128i lo, __m128i mid, __m128i hi) {
  // Fold the middle 128 bits into the outer halves.
  lo = _mm_xor_si128(lo, _mm_slli_si128(mid, 8));
  hi = _mm_xor_si128(hi, _mm_srli_si128(mid, 8));
  // Shift the 255-bit product left by one (reflected-domain adjustment).
  const __m128i lo_carry = _mm_srli_epi32(lo, 31);
  const __m128i hi_carry = _mm_srli_epi32(hi, 31);
  lo = _mm_slli_epi32(lo, 1);
  hi = _mm_slli_epi32(hi, 1);
  const __m128i cross = _mm_srli_si128(lo_carry, 12);
  lo = _mm_or_si128(lo, _mm_slli_si128(lo_carry, 4));
  hi = _mm_or_si128(hi, _mm_slli_si128(hi_carry, 4));
  hi = _mm_or_si128(hi, cross);
  // Montgomery-style two-step reduction.
  __m128i t = _mm_xor_si128(_mm_slli_epi32(lo, 31), _mm_slli_epi32(lo, 30));
  t = _mm_xor_si128(t, _mm_slli_epi32(lo, 25));
  const __m128i t_spill = _mm_srli_si128(t, 4);
  lo = _mm_xor_si128(lo, _mm_slli_si128(t, 12));
  __m128i r = _mm_xor_si128(_mm_srli_epi32(lo, 1), _mm_srli_epi32(lo, 2));
  r = _mm_xor_si128(r, _mm_srli_epi32(lo, 7));
  r = _mm_xor_si128(r, t_spill);
  lo = _mm_xor_si128(lo, r);
  return _mm_xor_si128(hi, lo);
}

inline __m128i gf_mul(__m128i a, __m128i b) {
  __m128i lo = _mm_setzero_si128();
  __m128i mid = _mm_setzero_si128();
  __m128i hi = _mm_setzero_si128();
  clmul_accumulate(a, b, lo, mid, hi);
  return gf_reduce(lo, mid, hi);
}

}  // namespace

void ghash_init(const std::uint8_t h[16], std::uint8_t h_powers[64]) {
  __m128i* table = reinterpret_cast<__m128i*>(h_powers);
  __m128i hash_key1 =
      byte_reverse(_mm_loadu_si128(reinterpret_cast<const __m128i*>(h)));
  __m128i hash_key2 = gf_mul(hash_key1, hash_key1);
  __m128i hash_key3 = gf_mul(hash_key2, hash_key1);
  __m128i hash_key4 = gf_mul(hash_key3, hash_key1);
  _mm_storeu_si128(table + 0, hash_key1);
  _mm_storeu_si128(table + 1, hash_key2);
  _mm_storeu_si128(table + 2, hash_key3);
  _mm_storeu_si128(table + 3, hash_key4);
  secure_wipe_object(hash_key1);
  secure_wipe_object(hash_key2);
  secure_wipe_object(hash_key3);
  secure_wipe_object(hash_key4);
}

void ghash(const std::uint8_t* h_powers, ByteView aad, ByteView ciphertext,
           std::uint8_t out[16]) {
  const __m128i* table = reinterpret_cast<const __m128i*>(h_powers);
  __m128i hash_key1 = _mm_loadu_si128(table + 0);
  __m128i hash_key2 = _mm_loadu_si128(table + 1);
  __m128i hash_key3 = _mm_loadu_si128(table + 2);
  __m128i hash_key4 = _mm_loadu_si128(table + 3);
  __m128i y = _mm_setzero_si128();

  const auto absorb = [&](ByteView data) {
    const std::uint8_t* p = data.data();
    std::size_t len = data.size();
    while (len >= 64) {
      const __m128i* blocks = reinterpret_cast<const __m128i*>(p);
      const __m128i x1 = byte_reverse(_mm_loadu_si128(blocks + 0));
      const __m128i x2 = byte_reverse(_mm_loadu_si128(blocks + 1));
      const __m128i x3 = byte_reverse(_mm_loadu_si128(blocks + 2));
      const __m128i x4 = byte_reverse(_mm_loadu_si128(blocks + 3));
      __m128i lo = _mm_setzero_si128();
      __m128i mid = _mm_setzero_si128();
      __m128i hi = _mm_setzero_si128();
      // (Y^X1)*H^4 + X2*H^3 + X3*H^2 + X4*H, one reduction for four blocks.
      clmul_accumulate(_mm_xor_si128(y, x1), hash_key4, lo, mid, hi);
      clmul_accumulate(x2, hash_key3, lo, mid, hi);
      clmul_accumulate(x3, hash_key2, lo, mid, hi);
      clmul_accumulate(x4, hash_key1, lo, mid, hi);
      y = gf_reduce(lo, mid, hi);
      p += 64;
      len -= 64;
    }
    while (len >= 16) {
      const __m128i x =
          byte_reverse(_mm_loadu_si128(reinterpret_cast<const __m128i*>(p)));
      y = gf_mul(_mm_xor_si128(y, x), hash_key1);
      p += 16;
      len -= 16;
    }
    if (len > 0) {
      std::uint8_t block[16] = {0};
      std::memcpy(block, p, len);
      const __m128i x =
          byte_reverse(_mm_loadu_si128(reinterpret_cast<const __m128i*>(block)));
      y = gf_mul(_mm_xor_si128(y, x), hash_key1);
    }
  };
  absorb(aad);
  absorb(ciphertext);

  std::uint8_t len_block[16];
  store_be64(len_block, static_cast<std::uint64_t>(aad.size()) * 8);
  store_be64(len_block + 8, static_cast<std::uint64_t>(ciphertext.size()) * 8);
  const __m128i lengths =
      byte_reverse(_mm_loadu_si128(reinterpret_cast<const __m128i*>(len_block)));
  y = gf_mul(_mm_xor_si128(y, lengths), hash_key1);

  _mm_storeu_si128(reinterpret_cast<__m128i*>(out), byte_reverse(y));
  secure_wipe_object(hash_key1);
  secure_wipe_object(hash_key2);
  secure_wipe_object(hash_key3);
  secure_wipe_object(hash_key4);
}

// ----------------------------------------------------------------- SHA-256

#ifdef MBTLS_HAVE_SHANI_BUILD

namespace {

// Same FIPS 180-4 constants as sha2.cpp; duplicated here so the scalar TU
// stays free of intrinsic-flag coupling.
constexpr std::uint32_t kShaK256[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

// Byte shuffle turning each big-endian 32-bit message word native.
inline __m128i sha_load_words(const std::uint8_t* p) {
  const __m128i kWordSwap = _mm_set_epi8(12, 13, 14, 15, 8, 9, 10, 11, 4, 5, 6, 7, 0, 1, 2, 3);
  return _mm_shuffle_epi8(_mm_loadu_si128(reinterpret_cast<const __m128i*>(p)), kWordSwap);
}

}  // namespace

void sha256_compress(std::uint32_t state[8], const std::uint8_t* blocks, std::size_t nblocks) {
  // Pack {a..h} into the SHA-NI register layout: STATE0 = ABEF, STATE1 = CDGH
  // (highest dword first).
  __m128i tmp = _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state[0]));
  __m128i state1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state[4]));
  tmp = _mm_shuffle_epi32(tmp, 0xb1);        // CDAB
  state1 = _mm_shuffle_epi32(state1, 0x1b);  // EFGH
  __m128i state0 = _mm_alignr_epi8(tmp, state1, 8);   // ABEF
  state1 = _mm_blend_epi16(state1, tmp, 0xf0);        // CDGH

  for (std::size_t blk = 0; blk < nblocks; ++blk) {
    const std::uint8_t* p = blocks + 64 * blk;
    const __m128i abef_saved = state0;
    const __m128i cdgh_saved = state1;

    __m128i msgs[4];
    for (int i = 0; i < 4; ++i) msgs[i] = sha_load_words(p + 16 * i);

    // 16 groups of four rounds. Group r consumes words 4r..4r+3 and (for
    // r < 12) computes words 4r+16..4r+19 in place via MSG1/MSG2.
    for (int r = 0; r < 16; ++r) {
      __m128i msg = _mm_add_epi32(
          msgs[r & 3], _mm_loadu_si128(reinterpret_cast<const __m128i*>(&kShaK256[4 * r])));
      state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
      msg = _mm_shuffle_epi32(msg, 0x0e);
      state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
      if (r < 12) {
        // w[i] = w[i-16] + s0(w[i-15]) + w[i-7] + s1(w[i-2])
        const __m128i w_minus_7 = _mm_alignr_epi8(msgs[(r + 3) & 3], msgs[(r + 2) & 3], 4);
        msgs[r & 3] = _mm_sha256msg2_epu32(
            _mm_add_epi32(_mm_sha256msg1_epu32(msgs[r & 3], msgs[(r + 1) & 3]), w_minus_7),
            msgs[(r + 3) & 3]);
      }
    }

    state0 = _mm_add_epi32(state0, abef_saved);
    state1 = _mm_add_epi32(state1, cdgh_saved);
  }

  tmp = _mm_shuffle_epi32(state0, 0x1b);     // FEBA
  state1 = _mm_shuffle_epi32(state1, 0xb1);  // DCHG
  state0 = _mm_blend_epi16(tmp, state1, 0xf0);        // DCBA
  state1 = _mm_alignr_epi8(state1, tmp, 8);           // HGFE
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&state[0]), state0);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&state[4]), state1);
}

#endif  // MBTLS_HAVE_SHANI_BUILD

}  // namespace mbtls::crypto::accel
