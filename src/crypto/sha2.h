// SHA-2 family (SHA-256, SHA-384, SHA-512), implemented from FIPS 180-4.
//
// Streaming interface (`update`/`finish`) plus one-shot helpers. The TLS 1.2
// PRF, HMAC, handshake transcript hashing, SGX measurements, and certificate
// signatures are all built on these.
#pragma once

#include <array>
#include <cstdint>

#include "util/bytes.h"

namespace mbtls::crypto {

/// SHA-256.
class Sha256 {
 public:
  static constexpr std::size_t kDigestSize = 32;
  static constexpr std::size_t kBlockSize = 64;

  Sha256();
  void update(ByteView data);
  /// Finalizes and returns the digest. The object must not be reused after.
  Bytes finish();

  static Bytes digest(ByteView data);

 private:
  void compress(const std::uint8_t* block);
  /// Bulk path over `n` contiguous blocks; dispatches the whole run to the
  /// SHA-NI backend in one call when it is active (crypto/backend.h).
  void compress_many(const std::uint8_t* blocks, std::size_t n);

  std::array<std::uint32_t, 8> h_;
  std::array<std::uint8_t, kBlockSize> buf_;
  std::size_t buf_len_ = 0;
  std::uint64_t total_len_ = 0;
};

/// SHA-384: SHA-512 with a distinct IV, truncated to 48 bytes.
class Sha384 {
 public:
  static constexpr std::size_t kDigestSize = 48;
  static constexpr std::size_t kBlockSize = 128;

  Sha384();
  void update(ByteView data);
  Bytes finish();

  static Bytes digest(ByteView data);

 private:
  void compress(const std::uint8_t* block);

  std::array<std::uint64_t, 8> h_;
  std::array<std::uint8_t, kBlockSize> buf_;
  std::size_t buf_len_ = 0;
  std::uint64_t total_len_ = 0;
};

/// SHA-512 (full 64-byte digest). Shares the compression function with SHA-384.
class Sha512 {
 public:
  static constexpr std::size_t kDigestSize = 64;
  static constexpr std::size_t kBlockSize = 128;

  Sha512();
  void update(ByteView data);
  Bytes finish();

  static Bytes digest(ByteView data);

 private:
  void compress(const std::uint8_t* block);

  std::array<std::uint64_t, 8> h_;
  std::array<std::uint8_t, kBlockSize> buf_;
  std::size_t buf_len_ = 0;
  std::uint64_t total_len_ = 0;
};

/// Hash algorithm identifiers used across TLS signatures & the PRF.
enum class HashAlgo : std::uint8_t {
  kSha256 = 4,  // TLS HashAlgorithm registry values
  kSha384 = 5,
  kSha512 = 6,
};

std::size_t digest_size(HashAlgo algo);
std::size_t block_size(HashAlgo algo);
Bytes hash(HashAlgo algo, ByteView data);

}  // namespace mbtls::crypto
