#include "crypto/hmac.h"

namespace mbtls::crypto {

namespace {
Bytes pad_key(HashAlgo algo, ByteView key, std::uint8_t pad) {
  const std::size_t bs = block_size(algo);
  Bytes k = key.size() > bs ? hash(algo, key) : to_bytes(key);
  k.resize(bs, 0);
  for (auto& b : k) b ^= pad;
  return k;
}
}  // namespace

Bytes hmac(HashAlgo algo, ByteView key, ByteView message) {
  const Bytes ipad = pad_key(algo, key, 0x36);
  const Bytes opad = pad_key(algo, key, 0x5c);
  const Bytes inner = hash(algo, concat({ipad, message}));
  return hash(algo, concat({opad, inner}));
}

Hmac::Hmac(HashAlgo algo, ByteView key)
    : algo_(algo),
      inner_key_pad_(pad_key(algo, key, 0x36)),
      outer_key_pad_(pad_key(algo, key, 0x5c)) {}

void Hmac::update(ByteView data) { append(inner_data_, data); }

Bytes Hmac::finish() {
  const Bytes inner = hash(algo_, concat({inner_key_pad_, inner_data_}));
  return hash(algo_, concat({outer_key_pad_, inner}));
}

}  // namespace mbtls::crypto
