#include "crypto/drbg.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "crypto/sha2.h"

namespace mbtls::crypto {

namespace {
constexpr std::uint8_t kZeroNonce[12] = {0};
}

void Drbg::check_owner_thread() {
#if MBTLS_DRBG_THREAD_CHECK
  // Bind-on-first-draw: construction commonly happens on a parent thread
  // before the generator is handed to the thread that will use it.
  if (owner_ == std::thread::id{}) {
    owner_ = std::this_thread::get_id();
  } else if (owner_ != std::this_thread::get_id()) {
    std::fprintf(stderr,
                 "Drbg: drawn from two threads; a Drbg is not thread-safe — "
                 "fork() a per-worker child or rebind_owner_thread() after a "
                 "deliberate handoff\n");
    std::abort();
  }
#endif
}

Drbg::Drbg(ByteView seed) : key_(Sha256::digest(seed)) {
  stream_ = std::make_unique<ChaCha20>(key_, ByteView(kZeroNonce, 12));
}

Drbg::Drbg(std::string_view label, std::uint64_t n) : Drbg([&] {
      Bytes seed = to_bytes(label);
      put_u64(seed, n);
      return seed;
    }()) {}

void Drbg::fill(MutableByteView out) {
  check_owner_thread();
  // crypt() XORs keystream into the buffer; zero it first so fill() delivers
  // raw keystream regardless of what the caller's buffer held (u32() passes
  // an uninitialized stack array — XOR alone would leak indeterminate bytes
  // into the "deterministic" stream).
  std::fill(out.begin(), out.end(), std::uint8_t{0});
  stream_->crypt(out);
}

Bytes Drbg::bytes(std::size_t n) {
  check_owner_thread();
  return stream_->keystream(n);
}

std::uint32_t Drbg::u32() {
  std::uint8_t b[4];
  fill(MutableByteView(b, 4));
  return (static_cast<std::uint32_t>(b[0]) << 24) | (static_cast<std::uint32_t>(b[1]) << 16) |
         (static_cast<std::uint32_t>(b[2]) << 8) | b[3];
}

std::uint64_t Drbg::u64() { return (static_cast<std::uint64_t>(u32()) << 32) | u32(); }

std::uint64_t Drbg::uniform(std::uint64_t bound) {
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = bound * ((~0ULL) / bound);
  std::uint64_t v;
  do {
    v = u64();
  } while (v >= limit);
  return v % bound;
}

double Drbg::real() {
  return static_cast<double>(u64() >> 11) * (1.0 / 9007199254740992.0);  // 53-bit mantissa
}

Drbg Drbg::fork(std::string_view label) {
  Bytes seed = key_;
  append(seed, to_bytes(label));
  append(seed, bytes(16));  // advance parent so repeated forks differ
  return Drbg(seed);
}

}  // namespace mbtls::crypto
