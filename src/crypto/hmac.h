// HMAC (FIPS 198-1 / RFC 2104) over any SHA-2 hash in this library.
#pragma once

#include "crypto/sha2.h"
#include "util/bytes.h"

namespace mbtls::crypto {

/// One-shot HMAC.
Bytes hmac(HashAlgo algo, ByteView key, ByteView message);

/// Streaming HMAC for transcript-style usage.
class Hmac {
 public:
  Hmac(HashAlgo algo, ByteView key);
  void update(ByteView data);
  Bytes finish();

 private:
  HashAlgo algo_;
  Bytes inner_key_pad_;  // key ^ ipad, kept to restart the outer hash
  Bytes outer_key_pad_;
  Bytes inner_data_;     // buffered inner-hash input
};

}  // namespace mbtls::crypto
