// HMAC (FIPS 198-1 / RFC 2104) over any SHA-2 hash in this library.
#pragma once

#include "crypto/sha2.h"
#include "util/bytes.h"

namespace mbtls::crypto {

/// One-shot HMAC.
Bytes hmac(HashAlgo algo, ByteView key, ByteView message);

/// Streaming HMAC for transcript-style usage.
class Hmac {
 public:
  Hmac(HashAlgo algo, ByteView key);
  void update(ByteView data);
  Bytes finish();

  ~Hmac() {
    secure_wipe(inner_key_pad_);
    secure_wipe(outer_key_pad_);
    secure_wipe(inner_data_);
  }
  Hmac(const Hmac&) = default;
  Hmac(Hmac&&) = default;
  Hmac& operator=(const Hmac&) = default;
  Hmac& operator=(Hmac&&) = default;

 private:
  HashAlgo algo_;
  Bytes inner_key_pad_;  // key ^ ipad, kept to restart the outer hash
  Bytes outer_key_pad_;
  Bytes inner_data_;     // buffered inner-hash input; may echo secret input
};

}  // namespace mbtls::crypto
