// Deterministic random bit generator built from ChaCha20 keyed by
// SHA-256(seed material).
//
// Every source of randomness in this repository (handshake nonces, ephemeral
// keys, simulated network jitter, workload generation) flows through a Drbg so
// that experiments are reproducible bit-for-bit from a seed, mirroring how the
// paper's experiments fix workloads while the protocol under test stays real.
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>

#include "crypto/chacha20.h"
#include "util/bytes.h"

namespace mbtls::crypto {

class Drbg {
 public:
  /// Seeds from arbitrary bytes (hashed to a key).
  explicit Drbg(ByteView seed);
  /// Convenience: seed from a label + 64-bit value, e.g. {"client", trial_no}.
  Drbg(std::string_view label, std::uint64_t n);

  /// Fill `out` with random bytes.
  void fill(MutableByteView out);
  Bytes bytes(std::size_t n);

  std::uint32_t u32();
  std::uint64_t u64();

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t uniform(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double real();

  /// Derive an independent child generator (used to hand sub-seeds to
  /// components without sharing a stream).
  Drbg fork(std::string_view label);

  ~Drbg() { secure_wipe(key_); }
  Drbg(const Drbg&) = delete;
  Drbg(Drbg&&) = default;
  Drbg& operator=(const Drbg&) = delete;
  Drbg& operator=(Drbg&&) = default;

 private:
  std::unique_ptr<ChaCha20> stream_;
  Bytes key_;  // retained for fork()
};

}  // namespace mbtls::crypto
