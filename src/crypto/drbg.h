// Deterministic random bit generator built from ChaCha20 keyed by
// SHA-256(seed material).
//
// Every source of randomness in this repository (handshake nonces, ephemeral
// keys, simulated network jitter, workload generation) flows through a Drbg so
// that experiments are reproducible bit-for-bit from a seed, mirroring how the
// paper's experiments fix workloads while the protocol under test stays real.
//
// Thread-safety: a Drbg is NOT thread-safe. It is one stateful keystream;
// concurrent draws would interleave that stream nondeterministically, which
// destroys both reproducibility and (under contention) the uniformity
// callers assume. Multi-worker code must give every worker its own
// generator — fork() a child per worker, the same per-tap discipline the
// chaos layer uses. Debug and sanitizer builds enforce this: a Drbg binds to
// the first thread that draws from it and aborts on a draw from any other
// thread; call rebind_owner_thread() after intentionally handing a
// generator to a different thread (e.g. moving a forked child into a worker).
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>
#include <thread>

#include "crypto/chacha20.h"
#include "util/bytes.h"

// Owner-thread enforcement is active whenever asserts are (debug builds) and
// in every sanitizer build (the tsan preset is where cross-thread misuse
// would otherwise hide behind benign-looking interleavings).
#if !defined(NDEBUG) || defined(MBTLS_SANITIZER_BUILD)
#define MBTLS_DRBG_THREAD_CHECK 1
#else
#define MBTLS_DRBG_THREAD_CHECK 0
#endif

namespace mbtls::crypto {

class Drbg {
 public:
  /// Seeds from arbitrary bytes (hashed to a key).
  explicit Drbg(ByteView seed);
  /// Convenience: seed from a label + 64-bit value, e.g. {"client", trial_no}.
  Drbg(std::string_view label, std::uint64_t n);

  /// Fill `out` with random bytes.
  void fill(MutableByteView out);
  Bytes bytes(std::size_t n);

  std::uint32_t u32();
  std::uint64_t u64();

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t uniform(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double real();

  /// Derive an independent child generator (used to hand sub-seeds to
  /// components without sharing a stream — one child per worker in
  /// multi-threaded code).
  Drbg fork(std::string_view label);

  /// Transfer single-thread ownership to the calling thread. Required (in
  /// checked builds) after moving a Drbg that has already been drawn from
  /// onto another thread. No-op in unchecked builds.
  void rebind_owner_thread() {
#if MBTLS_DRBG_THREAD_CHECK
    owner_ = std::this_thread::get_id();
#endif
  }

  ~Drbg() { secure_wipe(key_); }
  Drbg(const Drbg&) = delete;
  Drbg(Drbg&&) = default;
  Drbg& operator=(const Drbg&) = delete;
  Drbg& operator=(Drbg&&) = default;

 private:
  void check_owner_thread();

  std::unique_ptr<ChaCha20> stream_;
  Bytes key_;  // retained for fork()
#if MBTLS_DRBG_THREAD_CHECK
  std::thread::id owner_;  // unset until the first draw
#endif
};

}  // namespace mbtls::crypto
