#include "crypto/sha2.h"

#include <bit>
#include <cstring>
#include <stdexcept>

#include "crypto/backend.h"

namespace mbtls::crypto {

namespace {

// FIPS 180-4 round constants: fractional parts of the cube roots of the first
// 64 (resp. 80) primes.
constexpr std::uint32_t kK256[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

constexpr std::uint64_t kK512[80] = {
    0x428a2f98d728ae22ULL, 0x7137449123ef65cdULL, 0xb5c0fbcfec4d3b2fULL,
    0xe9b5dba58189dbbcULL, 0x3956c25bf348b538ULL, 0x59f111f1b605d019ULL,
    0x923f82a4af194f9bULL, 0xab1c5ed5da6d8118ULL, 0xd807aa98a3030242ULL,
    0x12835b0145706fbeULL, 0x243185be4ee4b28cULL, 0x550c7dc3d5ffb4e2ULL,
    0x72be5d74f27b896fULL, 0x80deb1fe3b1696b1ULL, 0x9bdc06a725c71235ULL,
    0xc19bf174cf692694ULL, 0xe49b69c19ef14ad2ULL, 0xefbe4786384f25e3ULL,
    0x0fc19dc68b8cd5b5ULL, 0x240ca1cc77ac9c65ULL, 0x2de92c6f592b0275ULL,
    0x4a7484aa6ea6e483ULL, 0x5cb0a9dcbd41fbd4ULL, 0x76f988da831153b5ULL,
    0x983e5152ee66dfabULL, 0xa831c66d2db43210ULL, 0xb00327c898fb213fULL,
    0xbf597fc7beef0ee4ULL, 0xc6e00bf33da88fc2ULL, 0xd5a79147930aa725ULL,
    0x06ca6351e003826fULL, 0x142929670a0e6e70ULL, 0x27b70a8546d22ffcULL,
    0x2e1b21385c26c926ULL, 0x4d2c6dfc5ac42aedULL, 0x53380d139d95b3dfULL,
    0x650a73548baf63deULL, 0x766a0abb3c77b2a8ULL, 0x81c2c92e47edaee6ULL,
    0x92722c851482353bULL, 0xa2bfe8a14cf10364ULL, 0xa81a664bbc423001ULL,
    0xc24b8b70d0f89791ULL, 0xc76c51a30654be30ULL, 0xd192e819d6ef5218ULL,
    0xd69906245565a910ULL, 0xf40e35855771202aULL, 0x106aa07032bbd1b8ULL,
    0x19a4c116b8d2d0c8ULL, 0x1e376c085141ab53ULL, 0x2748774cdf8eeb99ULL,
    0x34b0bcb5e19b48a8ULL, 0x391c0cb3c5c95a63ULL, 0x4ed8aa4ae3418acbULL,
    0x5b9cca4f7763e373ULL, 0x682e6ff3d6b2b8a3ULL, 0x748f82ee5defb2fcULL,
    0x78a5636f43172f60ULL, 0x84c87814a1f0ab72ULL, 0x8cc702081a6439ecULL,
    0x90befffa23631e28ULL, 0xa4506cebde82bde9ULL, 0xbef9a3f7b2c67915ULL,
    0xc67178f2e372532bULL, 0xca273eceea26619cULL, 0xd186b8c721c0c207ULL,
    0xeada7dd6cde0eb1eULL, 0xf57d4f7fee6ed178ULL, 0x06f067aa72176fbaULL,
    0x0a637dc5a2c898a6ULL, 0x113f9804bef90daeULL, 0x1b710b35131c471bULL,
    0x28db77f523047d84ULL, 0x32caab7b40c72493ULL, 0x3c9ebe0a15c9bebcULL,
    0x431d67c49c100d4cULL, 0x4cc5d4becb3e42b6ULL, 0x597f299cfc657e2aULL,
    0x5fcb6fab3ad6faecULL, 0x6c44198c4a475817ULL};

void compress256(std::array<std::uint32_t, 8>& h, const std::uint8_t* block) {
  using std::rotr;
  std::uint32_t w[64];
  for (int i = 0; i < 16; ++i) w[i] = load_be32(block + 4 * i);
  for (int i = 16; i < 64; ++i) {
    const std::uint32_t s0 = rotr(w[i - 15], 7) ^ rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
    const std::uint32_t s1 = rotr(w[i - 2], 17) ^ rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
    w[i] = w[i - 16] + s0 + w[i - 7] + s1;
  }
  std::uint32_t a = h[0], b = h[1], c = h[2], d = h[3];
  std::uint32_t e = h[4], f = h[5], g = h[6], hh = h[7];
  for (int i = 0; i < 64; ++i) {
    const std::uint32_t s1 = rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
    const std::uint32_t ch = (e & f) ^ (~e & g);
    const std::uint32_t t1 = hh + s1 + ch + kK256[i] + w[i];
    const std::uint32_t s0 = rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
    const std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
    const std::uint32_t t2 = s0 + maj;
    hh = g;
    g = f;
    f = e;
    e = d + t1;
    d = c;
    c = b;
    b = a;
    a = t1 + t2;
  }
  h[0] += a;
  h[1] += b;
  h[2] += c;
  h[3] += d;
  h[4] += e;
  h[5] += f;
  h[6] += g;
  h[7] += hh;
}

void compress512(std::array<std::uint64_t, 8>& h, const std::uint8_t* block) {
  using std::rotr;
  std::uint64_t w[80];
  for (int i = 0; i < 16; ++i) w[i] = load_be64(block + 8 * i);
  for (int i = 16; i < 80; ++i) {
    const std::uint64_t s0 = rotr(w[i - 15], 1) ^ rotr(w[i - 15], 8) ^ (w[i - 15] >> 7);
    const std::uint64_t s1 = rotr(w[i - 2], 19) ^ rotr(w[i - 2], 61) ^ (w[i - 2] >> 6);
    w[i] = w[i - 16] + s0 + w[i - 7] + s1;
  }
  std::uint64_t a = h[0], b = h[1], c = h[2], d = h[3];
  std::uint64_t e = h[4], f = h[5], g = h[6], hh = h[7];
  for (int i = 0; i < 80; ++i) {
    const std::uint64_t s1 = rotr(e, 14) ^ rotr(e, 18) ^ rotr(e, 41);
    const std::uint64_t ch = (e & f) ^ (~e & g);
    const std::uint64_t t1 = hh + s1 + ch + kK512[i] + w[i];
    const std::uint64_t s0 = rotr(a, 28) ^ rotr(a, 34) ^ rotr(a, 39);
    const std::uint64_t maj = (a & b) ^ (a & c) ^ (b & c);
    const std::uint64_t t2 = s0 + maj;
    hh = g;
    g = f;
    f = e;
    e = d + t1;
    d = c;
    c = b;
    b = a;
    a = t1 + t2;
  }
  h[0] += a;
  h[1] += b;
  h[2] += c;
  h[3] += d;
  h[4] += e;
  h[5] += f;
  h[6] += g;
  h[7] += hh;
}

// Generic streaming update/finish shared by all three classes. The callback
// compresses `n` contiguous blocks so an accelerated backend can absorb a
// whole message run in one call instead of block-at-a-time.
template <typename State, typename CompressMany>
void generic_update(State& buf, std::size_t& buf_len, std::uint64_t& total, std::size_t block_size,
                    CompressMany compress_many, ByteView data) {
  total += data.size();
  // An empty view may carry data() == nullptr, and memcpy(dst, nullptr, 0)
  // is still undefined behaviour.
  if (data.empty()) return;
  std::size_t off = 0;
  if (buf_len > 0) {
    const std::size_t take = std::min(block_size - buf_len, data.size());
    std::memcpy(buf.data() + buf_len, data.data(), take);
    buf_len += take;
    off += take;
    if (buf_len == block_size) {
      compress_many(buf.data(), 1);
      buf_len = 0;
    }
  }
  const std::size_t nblocks = (data.size() - off) / block_size;
  if (nblocks > 0) {
    compress_many(data.data() + off, nblocks);
    off += nblocks * block_size;
  }
  if (off < data.size()) {
    std::memcpy(buf.data(), data.data() + off, data.size() - off);
    buf_len = data.size() - off;
  }
}

/// SHA-256 dispatch decision, queried per compress run (an atomic load plus
/// two cached bools — noise next to a 64-round compression). Hash objects are
/// short-lived, so there is no per-object capture to keep consistent.
bool sha256_accel() {
  return sha_ni_available() && active_backend() == Backend::kAesni;
}

}  // namespace

// ---------------------------------------------------------------- SHA-256

Sha256::Sha256()
    : h_{0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
         0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19} {}

void Sha256::compress(const std::uint8_t* block) { compress_many(block, 1); }

void Sha256::compress_many(const std::uint8_t* blocks, std::size_t n) {
  if (sha256_accel()) {
    accel::sha256_compress(h_.data(), blocks, n);
    return;
  }
  for (std::size_t i = 0; i < n; ++i) compress256(h_, blocks + i * kBlockSize);
}

void Sha256::update(ByteView data) {
  generic_update(buf_, buf_len_, total_len_, kBlockSize,
                 [this](const std::uint8_t* b, std::size_t n) { compress_many(b, n); }, data);
}

Bytes Sha256::finish() {
  const std::uint64_t bit_len = total_len_ * 8;
  std::uint8_t pad[kBlockSize * 2] = {0x80};
  // Pad to 56 mod 64, then append the 64-bit big-endian length.
  const std::size_t pad_len = (buf_len_ < 56) ? (56 - buf_len_) : (120 - buf_len_);
  update(ByteView(pad, pad_len));
  std::uint8_t len_bytes[8];
  store_be64(len_bytes, bit_len);
  update(ByteView(len_bytes, 8));
  Bytes out(kDigestSize);
  for (int i = 0; i < 8; ++i) store_be32(out.data() + 4 * i, h_[i]);
  return out;
}

Bytes Sha256::digest(ByteView data) {
  Sha256 h;
  h.update(data);
  return h.finish();
}

// ---------------------------------------------------------------- SHA-384

Sha384::Sha384()
    : h_{0xcbbb9d5dc1059ed8ULL, 0x629a292a367cd507ULL, 0x9159015a3070dd17ULL,
         0x152fecd8f70e5939ULL, 0x67332667ffc00b31ULL, 0x8eb44a8768581511ULL,
         0xdb0c2e0d64f98fa7ULL, 0x47b5481dbefa4fa4ULL} {}

void Sha384::compress(const std::uint8_t* block) { compress512(h_, block); }

void Sha384::update(ByteView data) {
  generic_update(
      buf_, buf_len_, total_len_, kBlockSize,
      [this](const std::uint8_t* b, std::size_t n) {
        for (std::size_t i = 0; i < n; ++i) compress(b + i * kBlockSize);
      },
      data);
}

Bytes Sha384::finish() {
  const std::uint64_t bit_len = total_len_ * 8;
  std::uint8_t pad[kBlockSize * 2] = {0x80};
  // SHA-512 family uses a 128-bit length field; message sizes here fit in 64
  // bits, so the upper half is zero. Pad to 112 mod 128.
  const std::size_t pad_len = (buf_len_ < 112) ? (112 - buf_len_) : (240 - buf_len_);
  update(ByteView(pad, pad_len));
  std::uint8_t len_bytes[16] = {0};
  store_be64(len_bytes + 8, bit_len);
  update(ByteView(len_bytes, 16));
  Bytes out(kDigestSize);
  for (int i = 0; i < 6; ++i) store_be64(out.data() + 8 * i, h_[i]);
  return out;
}

Bytes Sha384::digest(ByteView data) {
  Sha384 h;
  h.update(data);
  return h.finish();
}

// ---------------------------------------------------------------- SHA-512

Sha512::Sha512()
    : h_{0x6a09e667f3bcc908ULL, 0xbb67ae8584caa73bULL, 0x3c6ef372fe94f82bULL,
         0xa54ff53a5f1d36f1ULL, 0x510e527fade682d1ULL, 0x9b05688c2b3e6c1fULL,
         0x1f83d9abfb41bd6bULL, 0x5be0cd19137e2179ULL} {}

void Sha512::compress(const std::uint8_t* block) { compress512(h_, block); }

void Sha512::update(ByteView data) {
  generic_update(
      buf_, buf_len_, total_len_, kBlockSize,
      [this](const std::uint8_t* b, std::size_t n) {
        for (std::size_t i = 0; i < n; ++i) compress(b + i * kBlockSize);
      },
      data);
}

Bytes Sha512::finish() {
  const std::uint64_t bit_len = total_len_ * 8;
  std::uint8_t pad[kBlockSize * 2] = {0x80};
  const std::size_t pad_len = (buf_len_ < 112) ? (112 - buf_len_) : (240 - buf_len_);
  update(ByteView(pad, pad_len));
  std::uint8_t len_bytes[16] = {0};
  store_be64(len_bytes + 8, bit_len);
  update(ByteView(len_bytes, 16));
  Bytes out(kDigestSize);
  for (int i = 0; i < 8; ++i) store_be64(out.data() + 8 * i, h_[i]);
  return out;
}

Bytes Sha512::digest(ByteView data) {
  Sha512 h;
  h.update(data);
  return h.finish();
}

// ---------------------------------------------------------------- dispatch

std::size_t digest_size(HashAlgo algo) {
  switch (algo) {
    case HashAlgo::kSha256: return Sha256::kDigestSize;
    case HashAlgo::kSha384: return Sha384::kDigestSize;
    case HashAlgo::kSha512: return Sha512::kDigestSize;
  }
  throw std::invalid_argument("unknown hash algorithm");
}

std::size_t block_size(HashAlgo algo) {
  switch (algo) {
    case HashAlgo::kSha256: return Sha256::kBlockSize;
    case HashAlgo::kSha384: return Sha384::kBlockSize;
    case HashAlgo::kSha512: return Sha512::kBlockSize;
  }
  throw std::invalid_argument("unknown hash algorithm");
}

Bytes hash(HashAlgo algo, ByteView data) {
  switch (algo) {
    case HashAlgo::kSha256: return Sha256::digest(data);
    case HashAlgo::kSha384: return Sha384::digest(data);
    case HashAlgo::kSha512: return Sha512::digest(data);
  }
  throw std::invalid_argument("unknown hash algorithm");
}

}  // namespace mbtls::crypto
