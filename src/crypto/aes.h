// AES-128/192/256 block cipher (FIPS 197).
//
// The S-box and its inverse are derived algebraically at first use (GF(2^8)
// inversion followed by the affine map) rather than hard-coded, and validated
// against the FIPS 197 known-answer vectors in tests. Only the raw block
// operation is exposed; all bulk encryption in this library goes through GCM.
#pragma once

#include <array>
#include <cstdint>

#include "util/bytes.h"

namespace mbtls::crypto {

class Aes {
 public:
  static constexpr std::size_t kBlockSize = 16;

  /// Key must be 16, 24, or 32 bytes.
  explicit Aes(ByteView key);

  ~Aes() { secure_wipe_object(round_keys_); }
  Aes(const Aes&) = default;
  Aes(Aes&&) = default;
  Aes& operator=(const Aes&) = default;
  Aes& operator=(Aes&&) = default;

  void encrypt_block(const std::uint8_t in[16], std::uint8_t out[16]) const;
  void decrypt_block(const std::uint8_t in[16], std::uint8_t out[16]) const;

  /// Encrypt four consecutive blocks (`in`/`out` are 64 bytes). The four
  /// states advance through the rounds together so the T-table lookups of
  /// independent blocks overlap in the pipeline — the GCM CTR keystream
  /// generator runs on this.
  void encrypt4(const std::uint8_t in[64], std::uint8_t out[64]) const;

  std::size_t key_size() const { return key_size_; }

  /// True when this instance encrypts via the AES-NI backend (captured from
  /// active_backend() at construction; see crypto/backend.h).
  bool accelerated() const { return accel_; }

 private:
  // AesGcm reads the raw schedule + accel flag to drive the fused CTR path.
  friend class AesGcm;

  std::size_t key_size_;
  int rounds_;
  bool accel_ = false;
  // Round keys stored as bytes, 16 per round (+1 for the initial AddRoundKey).
  // The AES-NI backend loads these exact bytes — both key expansions produce
  // the byte-identical FIPS-197 schedule.
  std::array<std::uint8_t, 16 * 15> round_keys_{};  // lint: secret
};

}  // namespace mbtls::crypto
