// AES-GCM authenticated encryption (NIST SP 800-38D).
//
// This is the only AEAD in the library; TLS record protection, mbTLS per-hop
// protection, session tickets, and SGX sealing all use it. Only 96-bit IVs
// are supported (the TLS 1.2 GCM nonce construction always yields 12 bytes).
#pragma once

#include <array>
#include <optional>

#include "crypto/aes.h"
#include "util/bytes.h"

namespace mbtls::crypto {

class AesGcm {
 public:
  static constexpr std::size_t kTagSize = 16;
  static constexpr std::size_t kIvSize = 12;

  /// Key must be 16 or 32 bytes (AES-128-GCM / AES-256-GCM).
  explicit AesGcm(ByteView key);

  // The GHASH key and its expansion tables are key-equivalent material.
  ~AesGcm() {
    secure_wipe_object(h_);
    secure_wipe_object(m_table_);
    secure_wipe_object(h_powers_);
  }
  AesGcm(const AesGcm&) = default;
  AesGcm(AesGcm&&) = default;
  AesGcm& operator=(const AesGcm&) = default;
  AesGcm& operator=(AesGcm&&) = default;

  /// Encrypts `plaintext`; returns ciphertext || 16-byte tag.
  Bytes seal(ByteView iv, ByteView aad, ByteView plaintext) const;

  /// Verifies the trailing tag and decrypts. Returns nullopt on
  /// authentication failure (callers translate into a bad_record_mac alert).
  std::optional<Bytes> open(ByteView iv, ByteView aad, ByteView ciphertext_and_tag) const;

  // Allocation-free data plane. `seal_into` writes ciphertext || tag into a
  // caller-owned buffer of exactly plaintext.size() + kTagSize bytes;
  // `open_into` verifies the trailing tag and writes the plaintext into a
  // buffer of ciphertext_and_tag.size() - kTagSize bytes, returning false
  // (with `out` unmodified) on authentication failure. Both permit in-place
  // operation when `out` begins at the input's first byte — CTR is a forward
  // XOR stream, and `open_into` runs GHASH over the ciphertext before any
  // byte of it is overwritten. Record protection and the middlebox forward
  // path reuse one scratch buffer across records via these.
  void seal_into(ByteView iv, ByteView aad, ByteView plaintext, MutableByteView out) const;
  bool open_into(ByteView iv, ByteView aad, ByteView ciphertext_and_tag,
                 MutableByteView out) const;

  // Reference (pre-optimization) data plane: one CTR block per cipher call
  // with per-byte XOR, and bit-serial GHASH. Always compiled — it is the
  // differential-test oracle and the bench baseline. seal/open dispatch here
  // when MBTLS_REFERENCE_CRYPTO is defined.
  Bytes seal_reference(ByteView iv, ByteView aad, ByteView plaintext) const;
  std::optional<Bytes> open_reference(ByteView iv, ByteView aad,
                                      ByteView ciphertext_and_tag) const;

  /// 128-bit GHASH block, two big-endian halves. Public so that the GF(2^128)
  /// multiply helper (an implementation detail) can name it.
  struct Block {
    std::uint64_t hi = 0, lo = 0;
  };

 private:

  Block ghash(ByteView aad, ByteView ciphertext) const;
  void ctr_xor(const std::uint8_t j0[16], ByteView in, std::uint8_t* out) const;
  Block ghash_reference(ByteView aad, ByteView ciphertext) const;
  void ctr_xor_reference(const std::uint8_t j0[16], ByteView in, std::uint8_t* out) const;
  void compute_tag(const std::uint8_t j0[16], const Block& s, std::uint8_t tag_out[16]) const;

  Aes aes_;
  Block h_;  // GHASH key H = E_K(0^128)
  // Shoup-style byte table: m_table_[b] = (byte b at the MSB position) * H,
  // built once per key. Reduces GHASH from 128 shift steps per block to 16
  // table lookups.
  std::array<Block, 256> m_table_;
  // H^1..H^4 in the PCLMUL backend's bit-reflected form (crypto/backend.h);
  // filled only when the AES-NI backend is active at construction.
  std::array<std::uint8_t, 64> h_powers_{};  // lint: secret
  bool accel_ = false;
};

}  // namespace mbtls::crypto
