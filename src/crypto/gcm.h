// AES-GCM authenticated encryption (NIST SP 800-38D).
//
// This is the only AEAD in the library; TLS record protection, mbTLS per-hop
// protection, session tickets, and SGX sealing all use it. Only 96-bit IVs
// are supported (the TLS 1.2 GCM nonce construction always yields 12 bytes).
#pragma once

#include <array>
#include <optional>

#include "crypto/aes.h"
#include "util/bytes.h"

namespace mbtls::crypto {

class AesGcm {
 public:
  static constexpr std::size_t kTagSize = 16;
  static constexpr std::size_t kIvSize = 12;

  /// Key must be 16 or 32 bytes (AES-128-GCM / AES-256-GCM).
  explicit AesGcm(ByteView key);

  // The GHASH key and its expansion table are key-equivalent material.
  ~AesGcm() {
    secure_wipe_object(h_);
    secure_wipe_object(m_table_);
  }
  AesGcm(const AesGcm&) = default;
  AesGcm(AesGcm&&) = default;
  AesGcm& operator=(const AesGcm&) = default;
  AesGcm& operator=(AesGcm&&) = default;

  /// Encrypts `plaintext`; returns ciphertext || 16-byte tag.
  Bytes seal(ByteView iv, ByteView aad, ByteView plaintext) const;

  /// Verifies the trailing tag and decrypts. Returns nullopt on
  /// authentication failure (callers translate into a bad_record_mac alert).
  std::optional<Bytes> open(ByteView iv, ByteView aad, ByteView ciphertext_and_tag) const;

  /// 128-bit GHASH block, two big-endian halves. Public so that the GF(2^128)
  /// multiply helper (an implementation detail) can name it.
  struct Block {
    std::uint64_t hi = 0, lo = 0;
  };

 private:

  Block ghash(ByteView aad, ByteView ciphertext) const;
  void ctr_xor(const std::uint8_t j0[16], ByteView in, std::uint8_t* out) const;

  Aes aes_;
  Block h_;  // GHASH key H = E_K(0^128)
  // Shoup-style byte table: m_table_[b] = (byte b at the MSB position) * H,
  // built once per key. Reduces GHASH from 128 shift steps per block to 16
  // table lookups.
  std::array<Block, 256> m_table_;
};

}  // namespace mbtls::crypto
