// ChaCha20 stream cipher (RFC 8439). Used here as the core of the
// deterministic random bit generator; it is not wired into TLS cipher suites
// (the paper's prototype only used AES-GCM).
#pragma once

#include <array>
#include <cstdint>

#include "util/bytes.h"

namespace mbtls::crypto {

class ChaCha20 {
 public:
  /// key: 32 bytes, nonce: 12 bytes.
  ChaCha20(ByteView key, ByteView nonce, std::uint32_t initial_counter = 0);

  /// XOR the keystream into `data` (encrypt == decrypt).
  void crypt(MutableByteView data);

  /// Produce `n` raw keystream bytes.
  Bytes keystream(std::size_t n);

  ~ChaCha20() {
    secure_wipe_object(state_);    // words 4-11 are the key
    secure_wipe_object(partial_);  // unconsumed keystream
  }
  ChaCha20(const ChaCha20&) = default;
  ChaCha20(ChaCha20&&) = default;
  ChaCha20& operator=(const ChaCha20&) = default;
  ChaCha20& operator=(ChaCha20&&) = default;

 private:
  void block(std::uint32_t counter, std::uint8_t out[64]) const;

  std::array<std::uint32_t, 16> state_{};  // lint: secret
  std::array<std::uint8_t, 64> partial_{};
  std::uint32_t counter_;
  std::size_t partial_used_ = 64;  // 64 == empty
};

}  // namespace mbtls::crypto
