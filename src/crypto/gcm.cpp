#include "crypto/gcm.h"

#include <cstring>
#include <stdexcept>

#include "crypto/backend.h"
#include "util/ct.h"

namespace mbtls::crypto {

namespace {
// One GF(2^128) "multiply by x" step in GCM's bit-reflected representation.
inline void shift_right_1(AesGcm::Block& v) {
  const bool lsb = (v.lo & 1) != 0;
  v.lo = (v.lo >> 1) | (v.hi << 63);
  v.hi >>= 1;
  if (lsb) v.hi ^= 0xe100000000000000ULL;
}

// Key-independent reduction table for shifting a block right by 8 bits:
// the low byte that falls off contributes R[byte] back into the high bits.
const std::array<AesGcm::Block, 256>& reduction_table() {
  static const auto table = [] {
    std::array<AesGcm::Block, 256> r{};
    for (int b = 0; b < 256; ++b) {
      AesGcm::Block v{0, static_cast<std::uint64_t>(b)};
      for (int i = 0; i < 8; ++i) shift_right_1(v);
      // After 8 shifts the surviving bits are exactly the reduction terms.
      r[static_cast<std::size_t>(b)] = v;
    }
    return r;
  }();
  return table;
}

inline AesGcm::Block shift_right_8(const AesGcm::Block& z) {
  const auto& r = reduction_table()[z.lo & 0xff];
  AesGcm::Block out;
  out.lo = (z.lo >> 8) | (z.hi << 56);
  out.hi = z.hi >> 8;
  out.hi ^= r.hi;
  out.lo ^= r.lo;
  return out;
}

// XOR eight bytes of `src` with eight bytes of `mask` into `dst` in one
// 64-bit operation (endianness-agnostic: XOR commutes with byte order).
inline void xor_word64(std::uint8_t* dst, const std::uint8_t* src, const std::uint8_t* mask) {
  std::uint64_t a, k;
  std::memcpy(&a, src, 8);
  std::memcpy(&k, mask, 8);
  a ^= k;
  std::memcpy(dst, &a, 8);
}

inline void make_j0(const ByteView& iv, std::uint8_t j0[16]) {
  if (iv.size() != AesGcm::kIvSize)
    throw std::invalid_argument("AES-GCM requires a 96-bit IV");
  std::memset(j0, 0, 16);
  std::memcpy(j0, iv.data(), 12);
  j0[15] = 1;
}
}  // namespace

AesGcm::AesGcm(ByteView key) : aes_(key) {
  if (key.size() != 16 && key.size() != 32)
    throw std::invalid_argument("AES-GCM key must be 16 or 32 bytes");
  std::uint8_t zero[16] = {0};
  std::uint8_t h[16];
  aes_.encrypt_block(zero, h);
  h_.hi = load_be64(h);
  h_.lo = load_be64(h + 8);
  // The backend is captured per object (aes_ captured the same value in the
  // same construction), so a force_backend_for_testing() switch affects
  // contexts built afterwards -- live sessions never change backend mid-key.
  accel_ = aes_.accelerated();
  if (accel_) accel::ghash_init(h, h_powers_.data());
  // m_table_[b] = X_b * H where X_b has byte value b in the most significant
  // byte. Built with the (slow) bit-serial multiply; used on every block.
  for (int b = 0; b < 256; ++b) {
    Block z;     // accumulates X_b * H bit by bit
    Block v = h_;
    for (int bit = 0; bit < 8; ++bit) {
      if (b & (0x80 >> bit)) {
        z.hi ^= v.hi;
        z.lo ^= v.lo;
      }
      shift_right_1(v);
    }
    m_table_[static_cast<std::size_t>(b)] = z;
  }
}

AesGcm::Block AesGcm::ghash(ByteView aad, ByteView ciphertext) const {
  if (accel_) {
    std::uint8_t s[16];
    accel::ghash(h_powers_.data(), aad, ciphertext, s);
    return Block{load_be64(s), load_be64(s + 8)};
  }
  // Table-driven multiply: Z = Y * H computed byte-by-byte (Horner over the
  // bytes of Y, least significant byte first; each step shifts by x^8 and
  // adds byte * H from the per-key table).
  auto mul_h = [&](const Block& y) {
    Block z;
    for (int i = 15; i >= 0; --i) {
      const std::uint8_t byte =
          i < 8 ? static_cast<std::uint8_t>(y.hi >> (56 - 8 * i))
                : static_cast<std::uint8_t>(y.lo >> (56 - 8 * (i - 8)));
      z = shift_right_8(z);
      const Block& m = m_table_[byte];
      z.hi ^= m.hi;
      z.lo ^= m.lo;
    }
    return z;
  };

  Block y;
  auto absorb = [&](ByteView data) {
    const std::uint8_t* p = data.data();
    std::size_t len = data.size();
    // Full blocks load straight from the input — no staging copy.
    while (len >= 16) {
      y.hi ^= load_be64(p);
      y.lo ^= load_be64(p + 8);
      y = mul_h(y);
      p += 16;
      len -= 16;
    }
    if (len > 0) {
      std::uint8_t block[16] = {0};
      std::memcpy(block, p, len);
      y.hi ^= load_be64(block);
      y.lo ^= load_be64(block + 8);
      y = mul_h(y);
    }
  };
  absorb(aad);
  absorb(ciphertext);
  // Length block: 64-bit bit-lengths of AAD and ciphertext.
  y.hi ^= static_cast<std::uint64_t>(aad.size()) * 8;
  y.lo ^= static_cast<std::uint64_t>(ciphertext.size()) * 8;
  y = mul_h(y);
  return y;
}

AesGcm::Block AesGcm::ghash_reference(ByteView aad, ByteView ciphertext) const {
  // Bit-serial GF(2^128) multiply straight from SP 800-38D — the oracle the
  // table-driven path above is differentially tested against.
  auto mul_h = [&](const Block& y) {
    Block z;
    Block v = h_;
    for (int i = 0; i < 128; ++i) {
      const std::uint64_t bit = i < 64 ? (y.hi >> (63 - i)) & 1 : (y.lo >> (127 - i)) & 1;
      if (bit) {
        z.hi ^= v.hi;
        z.lo ^= v.lo;
      }
      shift_right_1(v);
    }
    return z;
  };

  Block y;
  auto absorb = [&](ByteView data) {
    std::size_t off = 0;
    while (off < data.size()) {
      std::uint8_t block[16] = {0};
      const std::size_t n = std::min<std::size_t>(16, data.size() - off);
      std::memcpy(block, data.data() + off, n);
      y.hi ^= load_be64(block);
      y.lo ^= load_be64(block + 8);
      y = mul_h(y);
      off += n;
    }
  };
  absorb(aad);
  absorb(ciphertext);
  y.hi ^= static_cast<std::uint64_t>(aad.size()) * 8;
  y.lo ^= static_cast<std::uint64_t>(ciphertext.size()) * 8;
  y = mul_h(y);
  return y;
}

void AesGcm::ctr_xor(const std::uint8_t j0[16], ByteView in, std::uint8_t* out) const {
  if (accel_) {
    accel::aes_ctr_xor(aes_.round_keys_.data(), aes_.rounds_, j0, in.data(), in.size(), out);
    return;
  }
  std::uint32_t ctr = load_be32(j0 + 12);
  const std::uint8_t* src = in.data();
  std::size_t len = in.size();

  // Main path: four counter blocks encrypted per cipher call (the four
  // states pipeline through the T-table rounds), keystream applied with
  // 64-bit word XORs.
  std::uint8_t counters[64];
  std::uint8_t keystream[64];
  while (len >= 64) {
    for (int b = 0; b < 4; ++b) {
      std::memcpy(counters + 16 * b, j0, 12);
      store_be32(counters + 16 * b + 12, ++ctr);
    }
    aes_.encrypt4(counters, keystream);
    for (int w = 0; w < 8; ++w) xor_word64(out + 8 * w, src + 8 * w, keystream + 8 * w);
    src += 64;
    out += 64;
    len -= 64;
  }

  // Tail: one block at a time, word XOR for full blocks.
  while (len > 0) {
    std::memcpy(counters, j0, 12);
    store_be32(counters + 12, ++ctr);
    aes_.encrypt_block(counters, keystream);
    const std::size_t n = std::min<std::size_t>(16, len);
    if (n == 16) {
      xor_word64(out, src, keystream);
      xor_word64(out + 8, src + 8, keystream + 8);
    } else {
      for (std::size_t i = 0; i < n; ++i) out[i] = static_cast<std::uint8_t>(src[i] ^ keystream[i]);
    }
    src += n;
    out += n;
    len -= n;
  }
}

void AesGcm::ctr_xor_reference(const std::uint8_t j0[16], ByteView in, std::uint8_t* out) const {
  std::uint8_t counter[16];
  std::memcpy(counter, j0, 16);
  std::uint32_t ctr = load_be32(counter + 12);
  std::size_t off = 0;
  while (off < in.size()) {
    ctr++;
    store_be32(counter + 12, ctr);
    std::uint8_t keystream[16];
    aes_.encrypt_block(counter, keystream);
    const std::size_t n = std::min<std::size_t>(16, in.size() - off);
    for (std::size_t i = 0; i < n; ++i) out[off + i] = in[off + i] ^ keystream[i];
    off += n;
  }
}

void AesGcm::compute_tag(const std::uint8_t j0[16], const Block& s,
                         std::uint8_t tag_out[16]) const {
  std::uint8_t tag_mask[16];
  aes_.encrypt_block(j0, tag_mask);
  store_be64(tag_out, s.hi);
  store_be64(tag_out + 8, s.lo);
  for (int i = 0; i < 16; ++i) tag_out[i] ^= tag_mask[i];
}

void AesGcm::seal_into(ByteView iv, ByteView aad, ByteView plaintext, MutableByteView out) const {
  if (out.size() != plaintext.size() + kTagSize)
    throw std::invalid_argument("seal_into: out must be plaintext + tag sized");
  std::uint8_t j0[16];
  make_j0(iv, j0);

#ifdef MBTLS_REFERENCE_CRYPTO
  ctr_xor_reference(j0, plaintext, out.data());
  const Block s = ghash_reference(aad, ByteView(out.data(), plaintext.size()));
#else
  ctr_xor(j0, plaintext, out.data());
  const Block s = ghash(aad, ByteView(out.data(), plaintext.size()));
#endif
  compute_tag(j0, s, out.data() + plaintext.size());
}

bool AesGcm::open_into(ByteView iv, ByteView aad, ByteView ciphertext_and_tag,
                       MutableByteView out) const {
  if (ciphertext_and_tag.size() < kTagSize) return false;
  const std::size_t ct_len = ciphertext_and_tag.size() - kTagSize;
  if (out.size() != ct_len)
    throw std::invalid_argument("open_into: out must be ciphertext sized");
  const ByteView ct = ciphertext_and_tag.first(ct_len);
  const ByteView tag = ciphertext_and_tag.subspan(ct_len);

  std::uint8_t j0[16];
  make_j0(iv, j0);

#ifdef MBTLS_REFERENCE_CRYPTO
  const Block s = ghash_reference(aad, ct);
#else
  const Block s = ghash(aad, ct);
#endif
  std::uint8_t expected[16];
  compute_tag(j0, s, expected);
  if (!ct::equal(ByteView(expected, 16), tag)) return false;

  // Authenticated: decrypt. When `out` aliases the ciphertext this overwrites
  // it in place — GHASH above already consumed every ciphertext byte.
#ifdef MBTLS_REFERENCE_CRYPTO
  ctr_xor_reference(j0, ct, out.data());
#else
  ctr_xor(j0, ct, out.data());
#endif
  return true;
}

Bytes AesGcm::seal(ByteView iv, ByteView aad, ByteView plaintext) const {
  Bytes out(plaintext.size() + kTagSize);
  seal_into(iv, aad, plaintext, out);
  return out;
}

std::optional<Bytes> AesGcm::open(ByteView iv, ByteView aad, ByteView ciphertext_and_tag) const {
  if (ciphertext_and_tag.size() < kTagSize) return std::nullopt;
  Bytes plaintext(ciphertext_and_tag.size() - kTagSize);
  if (!open_into(iv, aad, ciphertext_and_tag, plaintext)) return std::nullopt;
  return plaintext;
}

Bytes AesGcm::seal_reference(ByteView iv, ByteView aad, ByteView plaintext) const {
  std::uint8_t j0[16];
  make_j0(iv, j0);
  Bytes out(plaintext.size() + kTagSize);
  ctr_xor_reference(j0, plaintext, out.data());
  const Block s = ghash_reference(aad, ByteView(out.data(), plaintext.size()));
  compute_tag(j0, s, out.data() + plaintext.size());
  return out;
}

std::optional<Bytes> AesGcm::open_reference(ByteView iv, ByteView aad,
                                            ByteView ciphertext_and_tag) const {
  std::uint8_t j0[16];
  make_j0(iv, j0);
  if (ciphertext_and_tag.size() < kTagSize) return std::nullopt;
  const std::size_t ct_len = ciphertext_and_tag.size() - kTagSize;
  const ByteView ct = ciphertext_and_tag.first(ct_len);
  const ByteView tag = ciphertext_and_tag.subspan(ct_len);
  const Block s = ghash_reference(aad, ct);
  std::uint8_t expected[16];
  compute_tag(j0, s, expected);
  if (!ct::equal(ByteView(expected, 16), tag)) return std::nullopt;
  Bytes plaintext(ct_len);
  ctr_xor_reference(j0, ct, plaintext.data());
  return plaintext;
}

}  // namespace mbtls::crypto
