#include "crypto/gcm.h"

#include <cstring>
#include <stdexcept>

namespace mbtls::crypto {

namespace {

inline std::uint64_t load_be64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | p[i];
  return v;
}

inline void store_be64(std::uint8_t* p, std::uint64_t v) {
  for (int i = 7; i >= 0; --i) {
    p[i] = static_cast<std::uint8_t>(v);
    v >>= 8;
  }
}

inline void store_be32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v >> 24);
  p[1] = static_cast<std::uint8_t>(v >> 16);
  p[2] = static_cast<std::uint8_t>(v >> 8);
  p[3] = static_cast<std::uint8_t>(v);
}

}  // namespace

namespace {
// One GF(2^128) "multiply by x" step in GCM's bit-reflected representation.
inline void shift_right_1(AesGcm::Block& v) {
  const bool lsb = (v.lo & 1) != 0;
  v.lo = (v.lo >> 1) | (v.hi << 63);
  v.hi >>= 1;
  if (lsb) v.hi ^= 0xe100000000000000ULL;
}

// Key-independent reduction table for shifting a block right by 8 bits:
// the low byte that falls off contributes R[byte] back into the high bits.
const std::array<AesGcm::Block, 256>& reduction_table() {
  static const auto table = [] {
    std::array<AesGcm::Block, 256> r{};
    for (int b = 0; b < 256; ++b) {
      AesGcm::Block v{0, static_cast<std::uint64_t>(b)};
      for (int i = 0; i < 8; ++i) shift_right_1(v);
      // After 8 shifts the surviving bits are exactly the reduction terms.
      r[static_cast<std::size_t>(b)] = v;
    }
    return r;
  }();
  return table;
}

inline AesGcm::Block shift_right_8(const AesGcm::Block& z) {
  const auto& r = reduction_table()[z.lo & 0xff];
  AesGcm::Block out;
  out.lo = (z.lo >> 8) | (z.hi << 56);
  out.hi = z.hi >> 8;
  out.hi ^= r.hi;
  out.lo ^= r.lo;
  return out;
}
}  // namespace

AesGcm::AesGcm(ByteView key) : aes_(key) {
  if (key.size() != 16 && key.size() != 32)
    throw std::invalid_argument("AES-GCM key must be 16 or 32 bytes");
  std::uint8_t zero[16] = {0};
  std::uint8_t h[16];
  aes_.encrypt_block(zero, h);
  h_.hi = load_be64(h);
  h_.lo = load_be64(h + 8);
  // m_table_[b] = X_b * H where X_b has byte value b in the most significant
  // byte. Built with the (slow) bit-serial multiply; used on every block.
  for (int b = 0; b < 256; ++b) {
    Block z;     // accumulates X_b * H bit by bit
    Block v = h_;
    for (int bit = 0; bit < 8; ++bit) {
      if (b & (0x80 >> bit)) {
        z.hi ^= v.hi;
        z.lo ^= v.lo;
      }
      shift_right_1(v);
    }
    m_table_[static_cast<std::size_t>(b)] = z;
  }
}

AesGcm::Block AesGcm::ghash(ByteView aad, ByteView ciphertext) const {
  // Table-driven multiply: Z = Y * H computed byte-by-byte (Horner over the
  // bytes of Y, least significant byte first; each step shifts by x^8 and
  // adds byte * H from the per-key table).
  auto mul_h = [&](const Block& y) {
    Block z;
    for (int i = 15; i >= 0; --i) {
      const std::uint8_t byte =
          i < 8 ? static_cast<std::uint8_t>(y.hi >> (56 - 8 * i))
                : static_cast<std::uint8_t>(y.lo >> (56 - 8 * (i - 8)));
      z = shift_right_8(z);
      const Block& m = m_table_[byte];
      z.hi ^= m.hi;
      z.lo ^= m.lo;
    }
    return z;
  };

  Block y;
  auto absorb = [&](ByteView data) {
    std::size_t off = 0;
    while (off < data.size()) {
      std::uint8_t block[16] = {0};
      const std::size_t n = std::min<std::size_t>(16, data.size() - off);
      std::memcpy(block, data.data() + off, n);
      y.hi ^= load_be64(block);
      y.lo ^= load_be64(block + 8);
      y = mul_h(y);
      off += n;
    }
  };
  absorb(aad);
  absorb(ciphertext);
  // Length block: 64-bit bit-lengths of AAD and ciphertext.
  y.hi ^= static_cast<std::uint64_t>(aad.size()) * 8;
  y.lo ^= static_cast<std::uint64_t>(ciphertext.size()) * 8;
  y = mul_h(y);
  return y;
}

void AesGcm::ctr_xor(const std::uint8_t j0[16], ByteView in, std::uint8_t* out) const {
  std::uint8_t counter[16];
  std::memcpy(counter, j0, 16);
  std::uint32_t ctr = (static_cast<std::uint32_t>(counter[12]) << 24) |
                      (static_cast<std::uint32_t>(counter[13]) << 16) |
                      (static_cast<std::uint32_t>(counter[14]) << 8) | counter[15];
  std::size_t off = 0;
  while (off < in.size()) {
    ctr++;
    store_be32(counter + 12, ctr);
    std::uint8_t keystream[16];
    aes_.encrypt_block(counter, keystream);
    const std::size_t n = std::min<std::size_t>(16, in.size() - off);
    for (std::size_t i = 0; i < n; ++i) out[off + i] = in[off + i] ^ keystream[i];
    off += n;
  }
}

Bytes AesGcm::seal(ByteView iv, ByteView aad, ByteView plaintext) const {
  if (iv.size() != kIvSize) throw std::invalid_argument("AES-GCM requires a 96-bit IV");
  std::uint8_t j0[16] = {0};
  std::memcpy(j0, iv.data(), 12);
  j0[15] = 1;

  Bytes out(plaintext.size() + kTagSize);
  ctr_xor(j0, plaintext, out.data());

  const Block s = ghash(aad, ByteView(out.data(), plaintext.size()));
  std::uint8_t tag_mask[16];
  aes_.encrypt_block(j0, tag_mask);
  std::uint8_t tag[16];
  store_be64(tag, s.hi);
  store_be64(tag + 8, s.lo);
  for (int i = 0; i < 16; ++i) tag[i] ^= tag_mask[i];
  std::memcpy(out.data() + plaintext.size(), tag, 16);
  return out;
}

std::optional<Bytes> AesGcm::open(ByteView iv, ByteView aad, ByteView ciphertext_and_tag) const {
  if (iv.size() != kIvSize) throw std::invalid_argument("AES-GCM requires a 96-bit IV");
  if (ciphertext_and_tag.size() < kTagSize) return std::nullopt;
  const std::size_t ct_len = ciphertext_and_tag.size() - kTagSize;
  const ByteView ct = ciphertext_and_tag.first(ct_len);
  const ByteView tag = ciphertext_and_tag.subspan(ct_len);

  std::uint8_t j0[16] = {0};
  std::memcpy(j0, iv.data(), 12);
  j0[15] = 1;

  const Block s = ghash(aad, ct);
  std::uint8_t tag_mask[16];
  aes_.encrypt_block(j0, tag_mask);
  std::uint8_t expected[16];
  store_be64(expected, s.hi);
  store_be64(expected + 8, s.lo);
  for (int i = 0; i < 16; ++i) expected[i] ^= tag_mask[i];
  if (!constant_time_equal(ByteView(expected, 16), tag)) return std::nullopt;

  Bytes plaintext(ct_len);
  ctr_xor(j0, ct, plaintext.data());
  return plaintext;
}

}  // namespace mbtls::crypto
