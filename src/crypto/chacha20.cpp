#include "crypto/chacha20.h"

#include <bit>
#include <cstring>
#include <stdexcept>

namespace mbtls::crypto {

namespace {
inline std::uint32_t load_le32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) | (static_cast<std::uint32_t>(p[3]) << 24);
}

inline void store_le32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}

inline void quarter_round(std::uint32_t& a, std::uint32_t& b, std::uint32_t& c, std::uint32_t& d) {
  using std::rotl;
  a += b; d ^= a; d = rotl(d, 16);
  c += d; b ^= c; b = rotl(b, 12);
  a += b; d ^= a; d = rotl(d, 8);
  c += d; b ^= c; b = rotl(b, 7);
}
}  // namespace

ChaCha20::ChaCha20(ByteView key, ByteView nonce, std::uint32_t initial_counter)
    : counter_(initial_counter) {
  if (key.size() != 32) throw std::invalid_argument("ChaCha20 key must be 32 bytes");
  if (nonce.size() != 12) throw std::invalid_argument("ChaCha20 nonce must be 12 bytes");
  state_[0] = 0x61707865;  // "expa"
  state_[1] = 0x3320646e;  // "nd 3"
  state_[2] = 0x79622d32;  // "2-by"
  state_[3] = 0x6b206574;  // "te k"
  for (int i = 0; i < 8; ++i) state_[static_cast<std::size_t>(4 + i)] = load_le32(key.data() + 4 * i);
  for (int i = 0; i < 3; ++i) state_[static_cast<std::size_t>(13 + i)] = load_le32(nonce.data() + 4 * i);
}

void ChaCha20::block(std::uint32_t counter, std::uint8_t out[64]) const {
  std::uint32_t x[16];
  std::memcpy(x, state_.data(), sizeof(x));
  x[12] = counter;
  std::uint32_t w[16];
  std::memcpy(w, x, sizeof(w));
  for (int i = 0; i < 10; ++i) {
    quarter_round(w[0], w[4], w[8], w[12]);
    quarter_round(w[1], w[5], w[9], w[13]);
    quarter_round(w[2], w[6], w[10], w[14]);
    quarter_round(w[3], w[7], w[11], w[15]);
    quarter_round(w[0], w[5], w[10], w[15]);
    quarter_round(w[1], w[6], w[11], w[12]);
    quarter_round(w[2], w[7], w[8], w[13]);
    quarter_round(w[3], w[4], w[9], w[14]);
  }
  for (int i = 0; i < 16; ++i) store_le32(out + 4 * i, w[i] + x[i]);
}

void ChaCha20::crypt(MutableByteView data) {
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (partial_used_ == 64) {
      block(counter_++, partial_.data());
      partial_used_ = 0;
    }
    data[i] ^= partial_[partial_used_++];
  }
}

Bytes ChaCha20::keystream(std::size_t n) {
  Bytes out(n, 0);
  crypt(out);
  return out;
}

}  // namespace mbtls::crypto
