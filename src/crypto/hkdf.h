// HKDF (RFC 5869): extract-and-expand key derivation. Used by the SGX
// simulation for sealing keys and by mbTLS for deriving per-hop key material.
#pragma once

#include "crypto/sha2.h"
#include "util/bytes.h"

namespace mbtls::crypto {

/// HKDF-Extract: PRK = HMAC-Hash(salt, IKM).
Bytes hkdf_extract(HashAlgo algo, ByteView salt, ByteView ikm);

/// HKDF-Expand: OKM of `length` bytes from PRK and info.
Bytes hkdf_expand(HashAlgo algo, ByteView prk, ByteView info, std::size_t length);

/// Convenience extract-then-expand.
Bytes hkdf(HashAlgo algo, ByteView salt, ByteView ikm, ByteView info, std::size_t length);

}  // namespace mbtls::crypto
