#include "crypto/hkdf.h"

#include <stdexcept>

#include "crypto/hmac.h"

namespace mbtls::crypto {

Bytes hkdf_extract(HashAlgo algo, ByteView salt, ByteView ikm) {
  Bytes zero_salt;
  if (salt.empty()) {
    zero_salt.assign(digest_size(algo), 0);
    salt = zero_salt;
  }
  return hmac(algo, salt, ikm);
}

Bytes hkdf_expand(HashAlgo algo, ByteView prk, ByteView info, std::size_t length) {
  const std::size_t n = digest_size(algo);
  if (length > 255 * n) throw std::length_error("hkdf_expand: output too long");
  Bytes okm;
  Bytes t;
  std::uint8_t counter = 1;
  while (okm.size() < length) {
    Bytes block = concat({t, info});
    block.push_back(counter++);
    t = hmac(algo, prk, block);
    append(okm, t);
  }
  okm.resize(length);
  return okm;
}

Bytes hkdf(HashAlgo algo, ByteView salt, ByteView ikm, ByteView info, std::size_t length) {
  return hkdf_expand(algo, hkdf_extract(algo, salt, ikm), info, length);
}

}  // namespace mbtls::crypto
