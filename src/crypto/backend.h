// Runtime-dispatched crypto backends.
//
// The scalar implementations in aes.cpp / gcm.cpp / sha2.cpp are the portable
// baseline; backend_aesni.cpp adds an x86-64 backend built on AES-NI,
// PCLMULQDQ and (where the toolchain supports it) SHA-NI. Which one runs is
// decided once per process: CPUID feature detection, overridable with
//
//   MBTLS_CRYPTO_BACKEND=auto|scalar|aesni
//
// so benchmarks and CI can pin a backend for reproducibility. Call sites
// outside src/crypto never see the dispatch — Aes / AesGcm / Sha256 capture
// the active backend at construction, so the record layer, middlebox
// reprotect, and the worker pipeline accelerate with zero call-site changes.
// MBTLS_REFERENCE_CRYPTO remains a separate, compile-time oracle: reference
// paths never dispatch to an accelerated backend.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "util/bytes.h"

namespace mbtls::crypto {

enum class Backend : int {
  kScalar = 0,  // portable C++ (T-table AES, Shoup-table GHASH, plain SHA-2)
  kAesni = 1,   // AES-NI + PCLMULQDQ (+ SHA-NI when compiled in)
};

/// CPUID-reported features relevant to the accelerated backend. `sse41` and
/// `ssse3` gate the byte-shuffle helpers the AES-NI paths lean on; `avx2` is
/// recorded for bench attribution only.
struct CpuFeatures {
  bool aesni = false;
  bool pclmul = false;
  bool ssse3 = false;
  bool sse41 = false;
  bool sha_ni = false;
  bool avx2 = false;
};

/// Host CPU features, detected once via CPUID (all-false off x86-64).
const CpuFeatures& cpu_features();

/// True when the AES-NI/PCLMUL backend is both compiled into this binary and
/// usable on this CPU.
bool aesni_available();

/// True when the SHA-NI SHA-256 path is compiled in and usable on this CPU.
bool sha_ni_available();

/// The backend in effect, resolved once from MBTLS_CRYPTO_BACKEND and CPU
/// features. `aesni` requested without hardware support falls back to scalar
/// (with a one-line stderr note); unknown values behave like `auto`.
Backend active_backend();

/// Test/bench hook: override the resolved backend for objects constructed
/// from now on. A kAesni request is clamped to kScalar when unavailable, so
/// forced-accel test runs degrade to a scalar re-run on portable hosts.
void force_backend_for_testing(Backend b);

const char* backend_name(Backend b);
const char* active_backend_name();

/// Space-separated detected-feature list ("aesni pclmul ..."), "none" when
/// nothing relevant is present. Recorded in bench JSON for attribution.
std::string cpu_feature_string();

// Accelerated entry points (backend_aesni.cpp). Callers must check
// aesni_available() / sha_ni_available() first: without hardware (or when the
// toolchain could not compile the intrinsics) these abort. Round keys are the
// byte-identical FIPS-197 schedule from Aes::round_keys_ — the AES-NI paths
// load them directly, no separate schedule storage.
namespace accel {

/// AESKEYGENASSIST-based key expansion for 16/32-byte keys; byte-identical to
/// the scalar FIPS-197 expansion. `round_keys` receives 16*(rounds+1) bytes.
void aes_key_expand(const std::uint8_t* key, std::size_t key_len, std::uint8_t* round_keys);

void aes_encrypt_block(const std::uint8_t* round_keys, int rounds, const std::uint8_t in[16],
                       std::uint8_t out[16]);
void aes_encrypt4(const std::uint8_t* round_keys, int rounds, const std::uint8_t in[64],
                  std::uint8_t out[64]);

/// GCM CTR keystream XOR: 8 counter blocks in flight per AESENC round. The
/// 32-bit counter starts at j0's low word and pre-increments per block,
/// matching AesGcm::ctr_xor. In-place (out == in) is fine.
void aes_ctr_xor(const std::uint8_t* round_keys, int rounds, const std::uint8_t j0[16],
                 const std::uint8_t* in, std::size_t len, std::uint8_t* out);

/// Precompute H^1..H^4 (bit-reflected form) from the GHASH key H = E_K(0^128)
/// into a 64-byte table consumed by ghash(). Key-equivalent material — owners
/// wipe it on teardown.
void ghash_init(const std::uint8_t h[16], std::uint8_t h_powers[64]);

/// Full GHASH (AAD, then ciphertext, then the length block) with 4-way
/// aggregated PCLMUL reduction. Writes the 16-byte S block in standard
/// (big-endian) byte order.
void ghash(const std::uint8_t* h_powers, ByteView aad, ByteView ciphertext,
           std::uint8_t out[16]);

/// SHA-NI compression over `nblocks` contiguous 64-byte blocks.
void sha256_compress(std::uint32_t state[8], const std::uint8_t* blocks, std::size_t nblocks);

}  // namespace accel

}  // namespace mbtls::crypto
