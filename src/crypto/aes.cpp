#include "crypto/aes.h"

#include <cstring>
#include <stdexcept>

#include "crypto/backend.h"

namespace mbtls::crypto {

namespace {

// GF(2^8) multiply with the AES reduction polynomial x^8+x^4+x^3+x+1 (0x11b).
std::uint8_t gf_mul(std::uint8_t a, std::uint8_t b) {
  std::uint8_t p = 0;
  while (b) {
    if (b & 1) p ^= a;
    const bool hi = a & 0x80;
    a = static_cast<std::uint8_t>(a << 1);
    if (hi) a ^= 0x1b;
    b >>= 1;
  }
  return p;
}

struct SboxTables {
  std::array<std::uint8_t, 256> sbox;
  std::array<std::uint8_t, 256> inv_sbox;
  // GF(2^8) multiplication tables for the MixColumns coefficients.
  std::array<std::uint8_t, 256> mul2, mul3, mul9, mul11, mul13, mul14;
  // T-tables fusing SubBytes + MixColumns for the encryption rounds. Each
  // entry packs the four output-byte contributions of one input byte,
  // little-endian (byte r at bits 8r). T1/T2/T3 are byte rotations of T0.
  std::array<std::uint32_t, 256> t0, t1, t2, t3;

  SboxTables() {
    // Build the multiplicative inverse table via 3 as a generator of
    // GF(2^8)*: 3^i enumerates all non-zero elements, and inv(3^i) = 3^(255-i).
    std::array<std::uint8_t, 256> log{}, exp{};
    std::uint8_t x = 1;
    for (int i = 0; i < 255; ++i) {
      exp[static_cast<std::size_t>(i)] = x;
      log[x] = static_cast<std::uint8_t>(i);
      x = static_cast<std::uint8_t>(x ^ gf_mul(x, 2));  // multiply by 3 = x * 2 + x
    }
    auto inverse = [&](std::uint8_t v) -> std::uint8_t {
      if (v == 0) return 0;
      return exp[static_cast<std::size_t>((255 - log[v]) % 255)];
    };
    auto rotl8 = [](std::uint8_t v, int n) {
      return static_cast<std::uint8_t>((v << n) | (v >> (8 - n)));
    };
    for (int i = 0; i < 256; ++i) {
      const std::uint8_t inv = inverse(static_cast<std::uint8_t>(i));
      const std::uint8_t s = static_cast<std::uint8_t>(inv ^ rotl8(inv, 1) ^ rotl8(inv, 2) ^
                                                       rotl8(inv, 3) ^ rotl8(inv, 4) ^ 0x63);
      sbox[static_cast<std::size_t>(i)] = s;
      inv_sbox[s] = static_cast<std::uint8_t>(i);
    }
    for (int i = 0; i < 256; ++i) {
      const auto b = static_cast<std::uint8_t>(i);
      mul2[b] = gf_mul(b, 2);
      mul3[b] = gf_mul(b, 3);
      mul9[b] = gf_mul(b, 9);
      mul11[b] = gf_mul(b, 11);
      mul13[b] = gf_mul(b, 13);
      mul14[b] = gf_mul(b, 14);
    }
    for (int i = 0; i < 256; ++i) {
      const std::uint8_t s = sbox[static_cast<std::size_t>(i)];
      const std::uint32_t s2 = mul2[s], s3 = mul3[s];
      t0[static_cast<std::size_t>(i)] =
          s2 | (static_cast<std::uint32_t>(s) << 8) | (static_cast<std::uint32_t>(s) << 16) |
          (s3 << 24);
      t1[static_cast<std::size_t>(i)] =
          s3 | (s2 << 8) | (static_cast<std::uint32_t>(s) << 16) |
          (static_cast<std::uint32_t>(s) << 24);
      t2[static_cast<std::size_t>(i)] =
          static_cast<std::uint32_t>(s) | (s3 << 8) | (s2 << 16) |
          (static_cast<std::uint32_t>(s) << 24);
      t3[static_cast<std::size_t>(i)] =
          static_cast<std::uint32_t>(s) | (static_cast<std::uint32_t>(s) << 8) | (s3 << 16) |
          (s2 << 24);
    }
  }
};

const SboxTables& tables() {
  static const SboxTables t;
  return t;
}

std::uint8_t sub(std::uint8_t b) { return tables().sbox[b]; }
std::uint8_t inv_sub(std::uint8_t b) { return tables().inv_sbox[b]; }

inline std::uint32_t load_col(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) | (static_cast<std::uint32_t>(p[3]) << 24);
}

}  // namespace

Aes::Aes(ByteView key) : key_size_(key.size()) {
  int nk;  // key length in 32-bit words
  switch (key.size()) {
    case 16: nk = 4; rounds_ = 10; break;
    case 24: nk = 6; rounds_ = 12; break;
    case 32: nk = 8; rounds_ = 14; break;
    default: throw std::invalid_argument("AES key must be 16/24/32 bytes");
  }
  accel_ = aesni_available() && active_backend() == Backend::kAesni;
  if (accel_ && key.size() != 24) {
    // AESKEYGENASSIST schedule; byte-identical to the scalar expansion below
    // (diff-tested). 192-bit keys stay on the scalar path -- GCM never uses
    // them and the intrinsic recurrence for nk=6 straddles register halves.
    accel::aes_key_expand(key.data(), key.size(), round_keys_.data());
    return;
  }
  const int total_words = 4 * (rounds_ + 1);
  // Key expansion (FIPS 197 §5.2), word-oriented over the byte array.
  std::memcpy(round_keys_.data(), key.data(), key.size());
  std::uint8_t rcon = 1;
  for (int i = nk; i < total_words; ++i) {
    std::uint8_t temp[4];
    std::memcpy(temp, round_keys_.data() + 4 * (i - 1), 4);
    if (i % nk == 0) {
      // RotWord + SubWord + Rcon
      const std::uint8_t t0 = temp[0];
      temp[0] = static_cast<std::uint8_t>(sub(temp[1]) ^ rcon);
      temp[1] = sub(temp[2]);
      temp[2] = sub(temp[3]);
      temp[3] = sub(t0);
      rcon = gf_mul(rcon, 2);
    } else if (nk > 6 && i % nk == 4) {
      for (auto& t : temp) t = sub(t);
    }
    for (int j = 0; j < 4; ++j) {
      round_keys_[static_cast<std::size_t>(4 * i + j)] =
          round_keys_[static_cast<std::size_t>(4 * (i - nk) + j)] ^ temp[j];
    }
  }
}

void Aes::encrypt_block(const std::uint8_t in[16], std::uint8_t out[16]) const {
  if (accel_) {
    accel::aes_encrypt_block(round_keys_.data(), rounds_, in, out);
    return;
  }
  // T-table implementation: each round is 16 table lookups + XORs. State is
  // held as four little-endian 32-bit columns (byte r of column c at bits
  // 8r of word c), matching the byte-array layout s[4c + r].
  const auto& t = tables();
  const std::uint8_t* rk = round_keys_.data();
  std::uint32_t c0 = load_col(in) ^ load_col(rk);
  std::uint32_t c1 = load_col(in + 4) ^ load_col(rk + 4);
  std::uint32_t c2 = load_col(in + 8) ^ load_col(rk + 8);
  std::uint32_t c3 = load_col(in + 12) ^ load_col(rk + 12);

  for (int round = 1; round < rounds_; ++round) {
    rk = round_keys_.data() + 16 * round;
    const std::uint32_t n0 = t.t0[c0 & 0xff] ^ t.t1[(c1 >> 8) & 0xff] ^
                             t.t2[(c2 >> 16) & 0xff] ^ t.t3[(c3 >> 24) & 0xff] ^ load_col(rk);
    const std::uint32_t n1 = t.t0[c1 & 0xff] ^ t.t1[(c2 >> 8) & 0xff] ^
                             t.t2[(c3 >> 16) & 0xff] ^ t.t3[(c0 >> 24) & 0xff] ^ load_col(rk + 4);
    const std::uint32_t n2 = t.t0[c2 & 0xff] ^ t.t1[(c3 >> 8) & 0xff] ^
                             t.t2[(c0 >> 16) & 0xff] ^ t.t3[(c1 >> 24) & 0xff] ^ load_col(rk + 8);
    const std::uint32_t n3 = t.t0[c3 & 0xff] ^ t.t1[(c0 >> 8) & 0xff] ^
                             t.t2[(c1 >> 16) & 0xff] ^ t.t3[(c2 >> 24) & 0xff] ^ load_col(rk + 12);
    c0 = n0;
    c1 = n1;
    c2 = n2;
    c3 = n3;
  }

  // Final round: SubBytes + ShiftRows + AddRoundKey (no MixColumns).
  rk = round_keys_.data() + 16 * rounds_;
  const std::uint32_t cols[4] = {c0, c1, c2, c3};
  for (int c = 0; c < 4; ++c) {
    out[4 * c + 0] = static_cast<std::uint8_t>(t.sbox[cols[c] & 0xff] ^ rk[4 * c + 0]);
    out[4 * c + 1] = static_cast<std::uint8_t>(t.sbox[(cols[(c + 1) % 4] >> 8) & 0xff] ^
                                               rk[4 * c + 1]);
    out[4 * c + 2] = static_cast<std::uint8_t>(t.sbox[(cols[(c + 2) % 4] >> 16) & 0xff] ^
                                               rk[4 * c + 2]);
    out[4 * c + 3] = static_cast<std::uint8_t>(t.sbox[(cols[(c + 3) % 4] >> 24) & 0xff] ^
                                               rk[4 * c + 3]);
  }
}

void Aes::encrypt4(const std::uint8_t in[64], std::uint8_t out[64]) const {
  if (accel_) {
    accel::aes_encrypt4(round_keys_.data(), rounds_, in, out);
    return;
  }
  // Four T-table states advanced in lockstep. A single block's round has a
  // serial dependency chain of table lookups; interleaving four independent
  // blocks lets the loads overlap, which is where the CTR keystream speedup
  // comes from on a scalar core.
  const auto& t = tables();
  std::uint32_t c[4][4];
  const std::uint8_t* rk = round_keys_.data();
  for (int b = 0; b < 4; ++b)
    for (int w = 0; w < 4; ++w) c[b][w] = load_col(in + 16 * b + 4 * w) ^ load_col(rk + 4 * w);

  for (int round = 1; round < rounds_; ++round) {
    rk = round_keys_.data() + 16 * round;
    const std::uint32_t k0 = load_col(rk);
    const std::uint32_t k1 = load_col(rk + 4);
    const std::uint32_t k2 = load_col(rk + 8);
    const std::uint32_t k3 = load_col(rk + 12);
    for (int b = 0; b < 4; ++b) {
      const std::uint32_t n0 = t.t0[c[b][0] & 0xff] ^ t.t1[(c[b][1] >> 8) & 0xff] ^
                               t.t2[(c[b][2] >> 16) & 0xff] ^ t.t3[(c[b][3] >> 24) & 0xff] ^ k0;
      const std::uint32_t n1 = t.t0[c[b][1] & 0xff] ^ t.t1[(c[b][2] >> 8) & 0xff] ^
                               t.t2[(c[b][3] >> 16) & 0xff] ^ t.t3[(c[b][0] >> 24) & 0xff] ^ k1;
      const std::uint32_t n2 = t.t0[c[b][2] & 0xff] ^ t.t1[(c[b][3] >> 8) & 0xff] ^
                               t.t2[(c[b][0] >> 16) & 0xff] ^ t.t3[(c[b][1] >> 24) & 0xff] ^ k2;
      const std::uint32_t n3 = t.t0[c[b][3] & 0xff] ^ t.t1[(c[b][0] >> 8) & 0xff] ^
                               t.t2[(c[b][1] >> 16) & 0xff] ^ t.t3[(c[b][2] >> 24) & 0xff] ^ k3;
      c[b][0] = n0;
      c[b][1] = n1;
      c[b][2] = n2;
      c[b][3] = n3;
    }
  }

  rk = round_keys_.data() + 16 * rounds_;
  for (int b = 0; b < 4; ++b) {
    std::uint8_t* o = out + 16 * b;
    for (int col = 0; col < 4; ++col) {
      o[4 * col + 0] = static_cast<std::uint8_t>(t.sbox[c[b][col] & 0xff] ^ rk[4 * col + 0]);
      o[4 * col + 1] =
          static_cast<std::uint8_t>(t.sbox[(c[b][(col + 1) % 4] >> 8) & 0xff] ^ rk[4 * col + 1]);
      o[4 * col + 2] =
          static_cast<std::uint8_t>(t.sbox[(c[b][(col + 2) % 4] >> 16) & 0xff] ^ rk[4 * col + 2]);
      o[4 * col + 3] =
          static_cast<std::uint8_t>(t.sbox[(c[b][(col + 3) % 4] >> 24) & 0xff] ^ rk[4 * col + 3]);
    }
  }
}

void Aes::decrypt_block(const std::uint8_t in[16], std::uint8_t out[16]) const {
  std::uint8_t s[16];
  std::memcpy(s, in, 16);
  auto add_round_key = [&](int round) {
    const std::uint8_t* rk = round_keys_.data() + 16 * round;
    for (int i = 0; i < 16; ++i) s[i] ^= rk[i];
  };
  auto inv_sub_bytes = [&] {
    for (auto& b : s) b = inv_sub(b);
  };
  auto inv_shift_rows = [&] {
    std::uint8_t t[16];
    for (int c = 0; c < 4; ++c)
      for (int r = 0; r < 4; ++r) t[4 * ((c + r) % 4) + r] = s[4 * c + r];
    std::memcpy(s, t, 16);
  };
  const auto& t = tables();
  auto inv_mix_columns = [&] {
    for (int c = 0; c < 4; ++c) {
      std::uint8_t* col = s + 4 * c;
      const std::uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
      col[0] = static_cast<std::uint8_t>(t.mul14[a0] ^ t.mul11[a1] ^ t.mul13[a2] ^ t.mul9[a3]);
      col[1] = static_cast<std::uint8_t>(t.mul9[a0] ^ t.mul14[a1] ^ t.mul11[a2] ^ t.mul13[a3]);
      col[2] = static_cast<std::uint8_t>(t.mul13[a0] ^ t.mul9[a1] ^ t.mul14[a2] ^ t.mul11[a3]);
      col[3] = static_cast<std::uint8_t>(t.mul11[a0] ^ t.mul13[a1] ^ t.mul9[a2] ^ t.mul14[a3]);
    }
  };

  add_round_key(rounds_);
  for (int round = rounds_ - 1; round > 0; --round) {
    inv_shift_rows();
    inv_sub_bytes();
    add_round_key(round);
    inv_mix_columns();
  }
  inv_shift_rows();
  inv_sub_bytes();
  add_round_key(0);
  std::memcpy(out, s, 16);
}

}  // namespace mbtls::crypto
