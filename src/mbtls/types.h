// Shared mbTLS session types: hop data paths, per-hop key generation, and
// middlebox descriptors.
//
// Terminology follows the paper (Figure 4): a session is a chain
//   Client — C_k — ... — C_1 — [bridge] — S_1 — ... — S_n — Server
// where C_* are client-side middleboxes (added & keyed by the client), S_*
// are server-side middleboxes (added & keyed by the server), and the bridge
// hop carries the primary TLS session keys, which is what lets an mbTLS
// endpoint interoperate with a legacy TLS peer (P5).
#pragma once

#include <functional>
#include <optional>
#include <string>

#include "tls/engine.h"
#include "tls/messages.h"
#include "tls/record.h"

namespace mbtls::mb {

/// What an endpoint learns about a middlebox in its session.
struct MiddleboxDescriptor {
  std::uint8_t subchannel = 0;
  std::string certificate_cn;
  bool attested = false;
  Bytes measurement;
  bool discovered = false;  // on-path discovery vs pre-configured
};

/// Bidirectional AEAD channel for one hop, as seen from one node. "c2s" is
/// the client-to-server data direction regardless of which side we are.
class HopDuplex {
 public:
  HopDuplex(const tls::HopKeys& keys, std::size_t key_len);

  /// Seal / open in the client-to-server direction.
  Bytes seal_c2s(tls::ContentType type, ByteView plaintext);
  std::optional<Bytes> open_c2s(tls::ContentType type, ByteView body);

  /// Seal / open in the server-to-client direction.
  Bytes seal_s2c(tls::ContentType type, ByteView plaintext);
  std::optional<Bytes> open_s2c(tls::ContentType type, ByteView body);

  // Allocation-free variants (see HopChannel): seal appends the wire record
  // to `out`; open decrypts the record body in place and returns a plaintext
  // sub-span. The middlebox re-protection fast path runs on these.
  void seal_c2s_into(tls::ContentType type, ByteView plaintext, Bytes& out);
  std::optional<MutableByteView> open_c2s_in_place(tls::ContentType type, MutableByteView body);
  void seal_s2c_into(tls::ContentType type, ByteView plaintext, Bytes& out);
  std::optional<MutableByteView> open_s2c_in_place(tls::ContentType type, MutableByteView body);

  /// Attach tracing to both directions ("<actor>/c2s" and "<actor>/s2c").
  void set_trace(const trace::Emitter& em) {
    c2s_.set_trace(em.sub("c2s"));
    s2c_.set_trace(em.sub("s2c"));
  }

 private:
  tls::HopChannel c2s_;
  tls::HopChannel s2c_;
};

/// Fresh random per-hop key material for the negotiated suite.
tls::HopKeys generate_hop_keys(std::size_t key_len, crypto::Drbg& rng);

/// The bridge hop keys: the primary session's key block + live sequence
/// numbers, in HopKeys form.
tls::HopKeys bridge_hop_keys(const tls::ConnectionKeys& primary);

/// Approval callback: endpoints veto middleboxes here (paper §3.5 "Trust").
using ApprovalCallback = std::function<bool(const MiddleboxDescriptor&)>;

/// Terminal session status.
enum class SessionStatus { kHandshaking, kEstablished, kClosed, kFailed };

/// A decoded two-byte TLS alert body.
struct Alert {
  tls::AlertLevel level;
  tls::AlertDescription description;
  bool is_close_notify() const {
    return description == tls::AlertDescription::kCloseNotify;
  }
};

/// Strict alert decoding: exactly two bytes and a valid level byte, or
/// nullopt. A truncated one-byte alert must never be indexed past its end or
/// misread as close_notify — callers treat nullopt as a protocol error.
std::optional<Alert> parse_alert(ByteView body);

}  // namespace mbtls::mb
