// mbTLS server endpoint (§3.4, "Server-Side Middleboxes").
//
// Server-side middleboxes announce themselves with MiddleboxAnnouncement
// records and then open secondary handshakes in which the *middlebox* plays
// the TLS server role and this endpoint plays the TLS client role, reusing
// the primary ClientHello it received (which may have come from a legacy
// client — server-side middleboxes work regardless of client support, P5).
#pragma once

#include <map>

#include "mbtls/types.h"

namespace mbtls::mb {

class ServerSession {
 public:
  struct Options {
    tls::Config tls;  // is_client forced false
    bool require_middlebox_attestation = false;
    Bytes expected_middlebox_measurement;
    std::vector<x509::Certificate> middlebox_trust_anchors;  // empty = tls.trust_anchors
    ApprovalCallback approve;

    /// Handshake deadline in microseconds of virtual time (0 = none); see
    /// ClientSession::Options::handshake_timeout. Protects the server from
    /// half-open sessions whose middlebox died mid-handshake.
    std::uint64_t handshake_timeout = 0;

    /// Structured tracing (see ClientSession::Options::trace_sink).
    trace::Sink* trace_sink = nullptr;
    std::string trace_actor = "server";
  };

  explicit ServerSession(Options options);

  void feed(ByteView transport_bytes);
  Bytes take_output();

  void send(ByteView application_data);
  Bytes take_app_data();
  void close();

  /// Deadline hook (see ClientSession::handshake_expired).
  bool handshake_expired();

  /// Explicit watchdog abort: fatal alert + failure with `reason`.
  void abort(const std::string& reason);

  /// Transport died without close_notify: explicit failure unless closed.
  void transport_closed();

  SessionStatus status() const { return status_; }
  bool established() const { return status_ == SessionStatus::kEstablished; }
  bool failed() const { return status_ == SessionStatus::kFailed; }
  const std::string& error_message() const { return error_; }

  std::vector<MiddleboxDescriptor> middleboxes() const;
  std::size_t announcements_seen() const { return announcements_; }

  const tls::Engine& primary() const { return primary_; }

 private:
  struct Secondary {
    std::unique_ptr<tls::Engine> engine;
    MiddleboxDescriptor descriptor;
    bool approved = false;
    std::vector<Bytes> pending_inner;  // records that arrived before the CH
  };

  void handle_record(const tls::Record& record);
  void handle_encapsulated(ByteView payload);
  void handle_data_record(const tls::Record& record);
  Secondary& ensure_secondary(std::uint8_t sub);
  void start_pending_secondaries();
  void pump_secondary(std::uint8_t sub, Secondary& sec);
  void drain_primary();
  void maybe_finish_setup();
  void distribute_keys();
  void fail(const std::string& message);
  void emit_fatal_alert(tls::AlertDescription description);

  Options options_;
  trace::Emitter trace_;
  tls::Engine primary_;
  std::map<std::uint8_t, Secondary> secondaries_;
  tls::RecordReader reader_;
  crypto::Drbg hop_rng_;
  Bytes out_;
  Bytes app_in_;
  std::optional<HopDuplex> data_path_;  // hop adjacent to the server
  SessionStatus status_ = SessionStatus::kHandshaking;
  std::string error_;
  std::size_t announcements_ = 0;
};

}  // namespace mbtls::mb
