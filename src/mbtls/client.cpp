#include "mbtls/client.h"

namespace mbtls::mb {

namespace {
tls::Config make_primary_config(ClientSession::Options& options) {
  tls::Config cfg = options.tls;
  cfg.is_client = true;
  cfg.trace_sink = options.trace_sink;
  cfg.trace_actor = options.trace_actor + "/primary";
  if (options.announce_mbtls) {
    tls::MiddleboxSupportExtension ext;
    ext.known_middleboxes = options.known_middleboxes;
    cfg.extra_extensions.push_back({tls::kExtMiddleboxSupport, ext.encode()});
  }
  if (options.require_middlebox_attestation) {
    // Signals on-path middleboxes to include quotes in their secondary
    // handshakes. The origin server simply ignores the unknown extension.
    cfg.extra_extensions.push_back({tls::kExtAttestationRequest, {}});
  }
  return cfg;
}
}  // namespace

ClientSession::ClientSession(Options options)
    : options_(std::move(options)),
      trace_(options_.trace_sink, options_.trace_actor),
      primary_(make_primary_config(options_)),
      hop_rng_(options_.tls.rng_label + "/hop-keys", options_.tls.rng_seed) {}

void ClientSession::start() {
  primary_.start();
  drain_primary();
}

void ClientSession::fail(const std::string& message) {
  if (status_ == SessionStatus::kFailed) return;
  status_ = SessionStatus::kFailed;
  error_ = message;
  trace_.instant("mbtls", "fail", {{"reason", message}});
}

void ClientSession::emit_fatal_alert(tls::AlertDescription description) {
  const Bytes body{static_cast<std::uint8_t>(tls::AlertLevel::kFatal),
                   static_cast<std::uint8_t>(description)};
  if (data_path_) {
    append(out_, data_path_->seal_c2s(tls::ContentType::kAlert, body));
  } else {
    // No keys yet: the alert goes out in the clear, like TLS handshake
    // alerts do. Middleboxes relay unrecognized plaintext alerts verbatim.
    append(out_, tls::frame_plaintext_record(tls::ContentType::kAlert, body));
  }
}

bool ClientSession::handshake_expired() {
  if (status_ != SessionStatus::kHandshaking) return false;
  emit_fatal_alert(tls::AlertDescription::kHandshakeFailure);
  fallback_wanted_ = options_.fallback_to_direct_tls;
  trace_.instant("mbtls", "deadline.expired",
                 {{"fallback", fallback_wanted_ ? 1 : 0}});
  fail("handshake deadline exceeded");
  return true;
}

void ClientSession::abort(const std::string& reason) {
  if (status_ == SessionStatus::kFailed || status_ == SessionStatus::kClosed) return;
  emit_fatal_alert(tls::AlertDescription::kInternalError);
  fail(reason);
}

void ClientSession::transport_closed() {
  if (status_ == SessionStatus::kClosed || status_ == SessionStatus::kFailed) return;
  fail(status_ == SessionStatus::kHandshaking
           ? "transport closed during handshake"
           : "transport closed without close_notify");
}

void ClientSession::drain_primary() {
  append(out_, primary_.take_output());
  if (primary_.failed()) fail("primary handshake: " + primary_.error_message());
}

Bytes ClientSession::take_output() { return std::move(out_); }

void ClientSession::feed(ByteView transport_bytes) {
  if (status_ == SessionStatus::kFailed) return;
  try {
    reader_.feed(transport_bytes);
    while (auto rec = reader_.next()) {
      handle_record(*rec);
      if (status_ == SessionStatus::kFailed) return;
    }
  } catch (const tls::ProtocolError& e) {
    fail(e.what());
  } catch (const DecodeError& e) {
    fail(e.what());
  }
}

void ClientSession::handle_record(const tls::Record& record) {
  if (record.type == tls::ContentType::kMbtlsEncapsulated) {
    handle_encapsulated(record.payload);
    return;
  }
  if (record.type == tls::ContentType::kMbtlsMiddleboxAnnouncement) {
    // Announcements target servers; a client can safely ignore one.
    return;
  }
  if (status_ == SessionStatus::kEstablished || status_ == SessionStatus::kClosed) {
    handle_data_record(record);
    return;
  }
  primary_.feed_record(record);
  drain_primary();
  maybe_finish_setup();
}

void ClientSession::handle_encapsulated(ByteView payload) {
  const auto enc = tls::EncapsulatedRecord::parse(payload);
  if (!enc) {
    fail("malformed Encapsulated record");
    return;
  }
  auto it = secondaries_.find(enc->subchannel);
  if (it == secondaries_.end()) {
    if (status_ != SessionStatus::kHandshaking) return;  // late announcement: ignore
    // A middlebox announcing itself: spin up a secondary engine that has
    // "already sent" the primary ClientHello.
    tls::Config cfg = options_.tls;
    cfg.is_client = true;
    cfg.server_name.clear();  // middlebox identity approved via callback
    cfg.request_attestation = options_.require_middlebox_attestation;
    cfg.expected_measurement = options_.expected_middlebox_measurement;
    cfg.rng_label = options_.tls.rng_label + "/secondary" + std::to_string(enc->subchannel);
    cfg.extra_extensions.clear();
    cfg.trace_sink = options_.trace_sink;
    cfg.trace_actor = options_.trace_actor + "/sec" + std::to_string(enc->subchannel);
    trace_.instant("mbtls", "secondary.open", {{"subchannel", static_cast<int>(enc->subchannel)}});
    // Secondary sessions resume keyed by subchannel (§3.5): the shared
    // ClientHello carries only the primary session ID, which each middlebox
    // also uses as its cache key.
    cfg.resumption_cache_key = "mbtls-secondary-" + std::to_string(enc->subchannel);
    Secondary sec;
    sec.engine = std::make_unique<tls::Engine>(std::move(cfg));
    sec.engine->start_with_preset_hello(*primary_.received_client_hello(),
                                        primary_.client_hello_raw());
    sec.descriptor.subchannel = enc->subchannel;
    sec.descriptor.discovered = true;
    it = secondaries_.emplace(enc->subchannel, std::move(sec)).first;
  }
  tls::RecordReader inner_reader;
  inner_reader.feed(it->second.engine ? ByteView(enc->inner_record) : ByteView{});
  while (auto inner = inner_reader.next()) {
    it->second.engine->feed_record(*inner);
  }
  pump_secondary(it->first, it->second);
  maybe_finish_setup();
}

void ClientSession::pump_secondary(std::uint8_t sub, Secondary& sec) {
  for (auto& record : sec.engine->take_output_records()) {
    tls::EncapsulatedRecord enc;
    enc.subchannel = sub;
    enc.inner_record = std::move(record);
    append(out_, tls::frame_plaintext_record(tls::ContentType::kMbtlsEncapsulated, enc.encode()));
  }
  if (sec.engine->failed()) {
    fail("middlebox handshake (subchannel " + std::to_string(sub) +
         "): " + sec.engine->error_message());
  }
}

void ClientSession::maybe_finish_setup() {
  if (status_ != SessionStatus::kHandshaking) return;
  if (!primary_.handshake_done()) return;
  for (auto& [sub, sec] : secondaries_) {
    if (!sec.engine->handshake_done()) return;
  }
  // Approve every middlebox before keying it into the session.
  for (auto& [sub, sec] : secondaries_) {
    if (sec.approved) continue;
    if (sec.engine->peer_certificate())
      sec.descriptor.certificate_cn = sec.engine->peer_certificate()->info().subject_cn;
    sec.descriptor.attested = sec.engine->peer_attested();
    sec.descriptor.measurement = sec.engine->peer_measurement();
    if (options_.approve && !options_.approve(sec.descriptor)) {
      fail("middlebox " + sec.descriptor.certificate_cn + " rejected by policy");
      return;
    }
    sec.approved = true;
    trace_.instant("mbtls", "mbox.approved",
                   {{"subchannel", static_cast<int>(sub)},
                    {"cn", sec.descriptor.certificate_cn},
                    {"attested", sec.descriptor.attested ? 1 : 0}});
  }
  distribute_keys();
}

void ClientSession::distribute_keys() {
  const auto primary_keys = primary_.connection_keys();
  const std::size_t key_len = primary_.suite().key_len;

  // Path order: ascending subchannel = closest-to-server first (the paper's
  // assignment scheme numbers from the far end; see §3.4 "Middlebox
  // Discovery"). hops[0] is the bridge; hops[i] joins mbox i and mbox i+1;
  // the last hop joins the nearest middlebox and the client.
  std::vector<tls::HopKeys> hops;
  hops.push_back(bridge_hop_keys(primary_keys));
  for (std::size_t i = 0; i < secondaries_.size(); ++i)
    hops.push_back(generate_hop_keys(key_len, hop_rng_));

  if (trace_.on()) {
    // Keylog-style events (one per hop, hop 0 = bridge): fingerprints only,
    // never raw key bytes (tools/mbtls-lint: trace-no-secret). Tests assert
    // the paper's P4 (pairwise-unique hop keys) from these alone.
    for (std::size_t i = 0; i < hops.size(); ++i) {
      trace_.instant("mbtls", "keylog.hop",
                     {{"hop", static_cast<std::uint64_t>(i)},
                      {"c2s", tls::key_fingerprint(hops[i].client_to_server_key)},
                      {"s2c", tls::key_fingerprint(hops[i].server_to_client_key)}});
    }
  }

  std::size_t index = 1;
  for (auto& [sub, sec] : secondaries_) {  // std::map iterates ascending
    tls::KeyMaterialMsg msg;
    msg.cipher_suite = static_cast<std::uint16_t>(primary_keys.suite);
    msg.toward_server = hops[index - 1];
    msg.toward_client = hops[index];
    sec.engine->send_typed(tls::ContentType::kMbtlsKeyMaterial, msg.encode());
    pump_secondary(sub, sec);
    ++index;
  }

  data_path_.emplace(hops.back(), key_len);
  if (trace_.on()) data_path_->set_trace(trace_.sub("data"));
  status_ = SessionStatus::kEstablished;
  trace_.instant("mbtls", "established",
                 {{"middleboxes", static_cast<std::uint64_t>(secondaries_.size())},
                  {"flights", primary_.flights()},
                  {"resumed", primary_.resumed() ? 1 : 0}});
}

void ClientSession::handle_data_record(const tls::Record& record) {
  if (!data_path_) return;
  switch (record.type) {
    case tls::ContentType::kApplicationData: {
      auto opened = data_path_->open_s2c(record.type, record.payload);
      if (!opened) {
        fail("data record authentication failed");
        return;
      }
      append(app_in_, *opened);
      break;
    }
    case tls::ContentType::kAlert: {
      auto opened = data_path_->open_s2c(record.type, record.payload);
      if (!opened) {
        fail("alert authentication failed");
        return;
      }
      const auto alert = parse_alert(*opened);
      if (!alert) {
        // Truncated or garbled alert bodies are protocol errors; indexing
        // into them blindly would misread (or overrun) a 1-byte record.
        fail("malformed alert record");
        return;
      }
      if (alert->is_close_notify()) {
        status_ = SessionStatus::kClosed;
      } else if (alert->level == tls::AlertLevel::kFatal) {
        fail(std::string("peer alert: ") + tls::to_string(alert->description));
      }
      break;
    }
    default:
      break;  // renegotiation & friends: not supported, ignored
  }
}

void ClientSession::send(ByteView application_data) {
  if (status_ != SessionStatus::kEstablished)
    throw std::logic_error("ClientSession::send before establishment");
  std::size_t off = 0;
  while (off < application_data.size()) {
    const std::size_t n = std::min(tls::kMaxRecordPayload, application_data.size() - off);
    append(out_, data_path_->seal_c2s(tls::ContentType::kApplicationData,
                                      application_data.subspan(off, n)));
    off += n;
  }
}

Bytes ClientSession::take_app_data() { return std::move(app_in_); }

void ClientSession::close() {
  if (status_ != SessionStatus::kEstablished) return;
  Bytes body{static_cast<std::uint8_t>(tls::AlertLevel::kWarning),
             static_cast<std::uint8_t>(tls::AlertDescription::kCloseNotify)};
  append(out_, data_path_->seal_c2s(tls::ContentType::kAlert, body));
  status_ = SessionStatus::kClosed;
}

std::vector<MiddleboxDescriptor> ClientSession::middleboxes() const {
  std::vector<MiddleboxDescriptor> out;
  for (const auto& [sub, sec] : secondaries_) out.push_back(sec.descriptor);
  return out;
}

}  // namespace mbtls::mb
