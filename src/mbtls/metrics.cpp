#include "mbtls/metrics.h"

#include <cstdlib>
#include <sstream>

namespace mbtls::mb {

namespace {
bool last_component_is(std::string_view path, std::string_view name) {
  if (path == name) return true;
  return path.size() > name.size() + 1 &&
         path.compare(path.size() - name.size(), name.size(), name) == 0 &&
         path[path.size() - name.size() - 1] == '/';
}

void dump_line(std::ostringstream& out, std::string_view key, double v) {
  out << key << ' ' << trace::format_number(v) << '\n';
}
}  // namespace

void CounterSink::record(trace::Event e) {
  if (e.phase == trace::Phase::kCounter) {
    totals_[e.actor + "/" + e.name] += e.delta;
    return;
  }
  if (e.phase == trace::Phase::kEnd) return;  // the matching kBegin was tallied
  totals_["events/" + e.actor + "/" + e.category + "." + e.name] += 1;
}

double CounterSink::total(std::string_view name) const {
  double sum = 0;
  for (const auto& [key, v] : totals_) {
    if (last_component_is(key, name)) sum += v;
  }
  return sum;
}

std::string CounterSink::dump() const {
  std::ostringstream out;
  for (const auto& [key, v] : totals_) dump_line(out, key, v);
  return out.str();
}

SessionMetrics summarize(const std::vector<trace::Event>& events) {
  SessionMetrics m;
  for (const auto& e : events) {
    if (e.phase == trace::Phase::kCounter) {
      if (e.name == "reprotect.records") m.reprotected_records += e.delta;
      if (e.name == "reprotect.bytes") m.reprotected_bytes += e.delta;
      continue;
    }
    if (e.category == "tls") {
      if (e.name == "record.seal") ++m.records_sealed;
      else if (e.name == "record.open") ++m.records_opened;
      else if (e.name == "record.auth_fail") ++m.record_auth_failures;
      else if (e.name == "established") ++m.handshakes_established;
      else if (e.name == "fail") ++m.failures;
    } else if (e.category == "net") {
      if (e.name == "seg.send") ++m.segments_sent;
      else if (e.name == "retransmit") ++m.retransmits;
      else if (e.name == "tap") ++m.taps_fired;
      else if (e.name == "loss") ++m.losses;
    } else if (e.category == "mbtls") {
      if (e.name == "established") ++m.sessions_established;
      else if (e.name == "joined") ++m.middleboxes_joined;
      else if (e.name == "demote.relay") ++m.demotions;
      else if (e.name == "fallback.redial") ++m.fallback_redials;
      else if (e.name == "fail") ++m.failures;
    }
  }
  return m;
}

std::string SessionMetrics::dump() const {
  std::ostringstream out;
  dump_line(out, "demotions", static_cast<double>(demotions));
  dump_line(out, "failures", static_cast<double>(failures));
  dump_line(out, "fallback_redials", static_cast<double>(fallback_redials));
  dump_line(out, "handshakes_established", static_cast<double>(handshakes_established));
  dump_line(out, "losses", static_cast<double>(losses));
  dump_line(out, "middleboxes_joined", static_cast<double>(middleboxes_joined));
  dump_line(out, "record_auth_failures", static_cast<double>(record_auth_failures));
  dump_line(out, "records_opened", static_cast<double>(records_opened));
  dump_line(out, "records_sealed", static_cast<double>(records_sealed));
  dump_line(out, "reprotected_bytes", reprotected_bytes);
  dump_line(out, "reprotected_records", reprotected_records);
  dump_line(out, "retransmits", static_cast<double>(retransmits));
  dump_line(out, "segments_sent", static_cast<double>(segments_sent));
  dump_line(out, "sessions_established", static_cast<double>(sessions_established));
  dump_line(out, "taps_fired", static_cast<double>(taps_fired));
  return out.str();
}

int flight_count(const std::vector<trace::Event>& events, std::string_view actor_prefix) {
  int count = 0;
  for (const auto& e : events) {
    if (e.category == "tls" && e.name == "flight" &&
        e.actor.compare(0, actor_prefix.size(), actor_prefix) == 0) {
      ++count;
    }
  }
  return count;
}

std::vector<HopKeylog> hop_keylogs(const std::vector<trace::Event>& events,
                                   std::string_view actor_prefix) {
  std::vector<HopKeylog> out;
  for (const auto& e : events) {
    if (e.category != "mbtls" || e.name != "keylog.hop") continue;
    if (e.actor.compare(0, actor_prefix.size(), actor_prefix) != 0) continue;
    HopKeylog k;
    k.actor = e.actor;
    for (const auto& a : e.args) {
      if (a.name == "hop") k.hop = std::strtoull(a.value.c_str(), nullptr, 10);
      else if (a.name == "c2s") k.c2s = a.value;
      else if (a.name == "s2c") k.s2c = a.value;
    }
    out.push_back(std::move(k));
  }
  return out;
}

}  // namespace mbtls::mb
