#include "mbtls/server.h"

namespace mbtls::mb {

namespace {
tls::Config make_primary_config(ServerSession::Options& options) {
  tls::Config cfg = options.tls;
  cfg.is_client = false;
  cfg.trace_sink = options.trace_sink;
  cfg.trace_actor = options.trace_actor + "/primary";
  return cfg;
}
}  // namespace

ServerSession::ServerSession(Options options)
    : options_(std::move(options)),
      trace_(options_.trace_sink, options_.trace_actor),
      primary_(make_primary_config(options_)),
      hop_rng_(options_.tls.rng_label + "/hop-keys", options_.tls.rng_seed) {}

void ServerSession::fail(const std::string& message) {
  if (status_ == SessionStatus::kFailed) return;
  status_ = SessionStatus::kFailed;
  error_ = message;
  trace_.instant("mbtls", "fail", {{"reason", message}});
}

void ServerSession::emit_fatal_alert(tls::AlertDescription description) {
  const Bytes body{static_cast<std::uint8_t>(tls::AlertLevel::kFatal),
                   static_cast<std::uint8_t>(description)};
  if (data_path_) {
    append(out_, data_path_->seal_s2c(tls::ContentType::kAlert, body));
  } else {
    append(out_, tls::frame_plaintext_record(tls::ContentType::kAlert, body));
  }
}

bool ServerSession::handshake_expired() {
  if (status_ != SessionStatus::kHandshaking) return false;
  emit_fatal_alert(tls::AlertDescription::kHandshakeFailure);
  trace_.instant("mbtls", "deadline.expired", {{"fallback", 0}});
  fail("handshake deadline exceeded");
  return true;
}

void ServerSession::abort(const std::string& reason) {
  if (status_ == SessionStatus::kFailed || status_ == SessionStatus::kClosed) return;
  emit_fatal_alert(tls::AlertDescription::kInternalError);
  fail(reason);
}

void ServerSession::transport_closed() {
  if (status_ == SessionStatus::kClosed || status_ == SessionStatus::kFailed) return;
  fail(status_ == SessionStatus::kHandshaking
           ? "transport closed during handshake"
           : "transport closed without close_notify");
}

void ServerSession::drain_primary() {
  append(out_, primary_.take_output());
  if (primary_.failed()) fail("primary handshake: " + primary_.error_message());
}

Bytes ServerSession::take_output() { return std::move(out_); }

void ServerSession::feed(ByteView transport_bytes) {
  if (status_ == SessionStatus::kFailed) return;
  try {
    reader_.feed(transport_bytes);
    while (auto rec = reader_.next()) {
      handle_record(*rec);
      if (status_ == SessionStatus::kFailed) return;
    }
  } catch (const tls::ProtocolError& e) {
    fail(e.what());
  } catch (const DecodeError& e) {
    fail(e.what());
  }
}

void ServerSession::handle_record(const tls::Record& record) {
  if (record.type == tls::ContentType::kMbtlsMiddleboxAnnouncement) {
    ++announcements_;
    trace_.instant("mbtls", "announce.seen",
                   {{"count", static_cast<std::uint64_t>(announcements_)}});
    return;
  }
  if (record.type == tls::ContentType::kMbtlsEncapsulated) {
    handle_encapsulated(record.payload);
    return;
  }
  if (status_ == SessionStatus::kEstablished || status_ == SessionStatus::kClosed) {
    handle_data_record(record);
    return;
  }
  primary_.feed_record(record);
  drain_primary();
  start_pending_secondaries();
  maybe_finish_setup();
}

ServerSession::Secondary& ServerSession::ensure_secondary(std::uint8_t sub) {
  auto it = secondaries_.find(sub);
  if (it != secondaries_.end()) return it->second;
  Secondary sec;
  sec.descriptor.subchannel = sub;
  sec.descriptor.discovered = true;
  return secondaries_.emplace(sub, std::move(sec)).first->second;
}

void ServerSession::handle_encapsulated(ByteView payload) {
  const auto enc = tls::EncapsulatedRecord::parse(payload);
  if (!enc) {
    fail("malformed Encapsulated record");
    return;
  }
  if (status_ != SessionStatus::kHandshaking) return;
  Secondary& sec = ensure_secondary(enc->subchannel);
  sec.pending_inner.push_back(enc->inner_record);
  start_pending_secondaries();
  maybe_finish_setup();
}

void ServerSession::start_pending_secondaries() {
  // Secondary engines need the primary ClientHello; until it has arrived,
  // inner records stay buffered.
  if (!primary_.received_client_hello()) return;
  for (auto& [sub, sec] : secondaries_) {
    if (!sec.engine) {
      tls::Config cfg;
      cfg.is_client = true;
      cfg.cipher_suites = options_.tls.cipher_suites;
      cfg.trust_anchors = options_.middlebox_trust_anchors.empty()
                              ? options_.tls.trust_anchors
                              : options_.middlebox_trust_anchors;
      cfg.verify_peer_certificate = true;
      cfg.now = options_.tls.now;
      cfg.request_attestation = options_.require_middlebox_attestation;
      cfg.expected_measurement = options_.expected_middlebox_measurement;
      cfg.rng_label = options_.tls.rng_label + "/secondary" + std::to_string(sub);
      cfg.rng_seed = options_.tls.rng_seed;
      cfg.session_cache = options_.tls.session_cache;
      cfg.cert_pool = options_.tls.cert_pool;
      cfg.quote_verifier = options_.tls.quote_verifier;
      cfg.resumption_cache_key = "mbtls-secondary-" + std::to_string(sub);
      cfg.secret_store = options_.tls.secret_store;
      cfg.secret_prefix = options_.tls.secret_prefix + "mbox" + std::to_string(sub) + "/";
      cfg.trace_sink = options_.trace_sink;
      cfg.trace_actor = options_.trace_actor + "/sec" + std::to_string(sub);
      trace_.instant("mbtls", "secondary.open", {{"subchannel", static_cast<int>(sub)}});
      sec.engine = std::make_unique<tls::Engine>(std::move(cfg));
      sec.engine->start_with_preset_hello(*primary_.received_client_hello(),
                                          primary_.client_hello_raw());
    }
    if (!sec.pending_inner.empty()) {
      for (auto& raw : sec.pending_inner) {
        tls::RecordReader inner_reader;
        inner_reader.feed(raw);
        while (auto inner = inner_reader.next()) sec.engine->feed_record(*inner);
      }
      sec.pending_inner.clear();
    }
    pump_secondary(sub, sec);
  }
}

void ServerSession::pump_secondary(std::uint8_t sub, Secondary& sec) {
  if (!sec.engine) return;
  for (auto& record : sec.engine->take_output_records()) {
    tls::EncapsulatedRecord enc;
    enc.subchannel = sub;
    enc.inner_record = std::move(record);
    append(out_, tls::frame_plaintext_record(tls::ContentType::kMbtlsEncapsulated, enc.encode()));
  }
  if (sec.engine->failed()) {
    fail("middlebox handshake (subchannel " + std::to_string(sub) +
         "): " + sec.engine->error_message());
  }
}

void ServerSession::maybe_finish_setup() {
  if (status_ != SessionStatus::kHandshaking) return;
  if (!primary_.handshake_done()) return;
  for (auto& [sub, sec] : secondaries_) {
    if (!sec.engine || !sec.engine->handshake_done()) return;
  }
  for (auto& [sub, sec] : secondaries_) {
    if (sec.approved) continue;
    if (sec.engine->peer_certificate())
      sec.descriptor.certificate_cn = sec.engine->peer_certificate()->info().subject_cn;
    sec.descriptor.attested = sec.engine->peer_attested();
    sec.descriptor.measurement = sec.engine->peer_measurement();
    if (options_.approve && !options_.approve(sec.descriptor)) {
      fail("middlebox " + sec.descriptor.certificate_cn + " rejected by policy");
      return;
    }
    sec.approved = true;
    trace_.instant("mbtls", "mbox.approved",
                   {{"subchannel", static_cast<int>(sub)},
                    {"cn", sec.descriptor.certificate_cn},
                    {"attested", sec.descriptor.attested ? 1 : 0}});
  }
  distribute_keys();
}

void ServerSession::distribute_keys() {
  const auto primary_keys = primary_.connection_keys();
  const std::size_t key_len = primary_.suite().key_len;

  // Path order: ascending subchannel = closest-to-client first (server-side
  // middleboxes claim IDs in announcement order along the ClientHello's
  // path). hops[0] is the bridge next to mbox 1; the last hop joins the
  // nearest middlebox and the server.
  std::vector<tls::HopKeys> hops;
  hops.push_back(bridge_hop_keys(primary_keys));
  for (std::size_t i = 0; i < secondaries_.size(); ++i)
    hops.push_back(generate_hop_keys(key_len, hop_rng_));

  if (trace_.on()) {
    // Keylog-style events, hop 0 = bridge (fingerprints only; see
    // ClientSession::distribute_keys and lint rule trace-no-secret).
    for (std::size_t i = 0; i < hops.size(); ++i) {
      trace_.instant("mbtls", "keylog.hop",
                     {{"hop", static_cast<std::uint64_t>(i)},
                      {"c2s", tls::key_fingerprint(hops[i].client_to_server_key)},
                      {"s2c", tls::key_fingerprint(hops[i].server_to_client_key)}});
    }
  }

  std::size_t index = 1;
  for (auto& [sub, sec] : secondaries_) {
    tls::KeyMaterialMsg msg;
    msg.cipher_suite = static_cast<std::uint16_t>(primary_keys.suite);
    msg.toward_client = hops[index - 1];
    msg.toward_server = hops[index];
    sec.engine->send_typed(tls::ContentType::kMbtlsKeyMaterial, msg.encode());
    pump_secondary(sub, sec);
    ++index;
  }

  data_path_.emplace(hops.back(), key_len);
  if (trace_.on()) data_path_->set_trace(trace_.sub("data"));
  status_ = SessionStatus::kEstablished;
  trace_.instant("mbtls", "established",
                 {{"middleboxes", static_cast<std::uint64_t>(secondaries_.size())},
                  {"flights", primary_.flights()},
                  {"resumed", primary_.resumed() ? 1 : 0}});
}

void ServerSession::handle_data_record(const tls::Record& record) {
  if (!data_path_) return;
  switch (record.type) {
    case tls::ContentType::kApplicationData: {
      auto opened = data_path_->open_c2s(record.type, record.payload);
      if (!opened) {
        fail("data record authentication failed");
        return;
      }
      append(app_in_, *opened);
      break;
    }
    case tls::ContentType::kAlert: {
      auto opened = data_path_->open_c2s(record.type, record.payload);
      if (!opened) {
        fail("alert authentication failed");
        return;
      }
      const auto alert = parse_alert(*opened);
      if (!alert) {
        fail("malformed alert record");
        return;
      }
      if (alert->is_close_notify()) {
        status_ = SessionStatus::kClosed;
      } else if (alert->level == tls::AlertLevel::kFatal) {
        fail(std::string("peer alert: ") + tls::to_string(alert->description));
      }
      break;
    }
    default:
      break;
  }
}

void ServerSession::send(ByteView application_data) {
  if (status_ != SessionStatus::kEstablished)
    throw std::logic_error("ServerSession::send before establishment");
  std::size_t off = 0;
  while (off < application_data.size()) {
    const std::size_t n = std::min(tls::kMaxRecordPayload, application_data.size() - off);
    append(out_, data_path_->seal_s2c(tls::ContentType::kApplicationData,
                                      application_data.subspan(off, n)));
    off += n;
  }
}

Bytes ServerSession::take_app_data() { return std::move(app_in_); }

void ServerSession::close() {
  if (status_ != SessionStatus::kEstablished) return;
  Bytes body{static_cast<std::uint8_t>(tls::AlertLevel::kWarning),
             static_cast<std::uint8_t>(tls::AlertDescription::kCloseNotify)};
  append(out_, data_path_->seal_s2c(tls::ContentType::kAlert, body));
  status_ = SessionStatus::kClosed;
}

std::vector<MiddleboxDescriptor> ServerSession::middleboxes() const {
  std::vector<MiddleboxDescriptor> out;
  for (const auto& [sub, sec] : secondaries_) out.push_back(sec.descriptor);
  return out;
}

}  // namespace mbtls::mb
