#include "mbtls/middlebox.h"

#include "tls/prf.h"

namespace mbtls::mb {

namespace {
// Views of a raw wire record (header included). The hot path works on these
// views directly; a parsed tls::Record (which copies the payload) is built
// only on control-plane branches that need one.
ByteView record_body(const Bytes& raw) {
  return ByteView(raw).subspan(tls::kRecordHeaderSize);
}

MutableByteView record_body_mut(Bytes& raw) {
  return MutableByteView(raw).subspan(tls::kRecordHeaderSize);
}

tls::Record parse_record(const Bytes& raw) {
  tls::Record rec;
  rec.type = static_cast<tls::ContentType>(raw[0]);
  rec.payload.assign(raw.begin() + tls::kRecordHeaderSize, raw.end());
  return rec;
}

std::optional<tls::HandshakeType> first_handshake_type(tls::ContentType type, ByteView body) {
  if (type != tls::ContentType::kHandshake || body.empty()) return std::nullopt;
  return static_cast<tls::HandshakeType>(body[0]);
}
}  // namespace

Middlebox::Middlebox(Options options)
    : options_(std::move(options)),
      trace_(options_.trace_sink, options_.trace_actor.empty()
                                      ? "mbox:" + options_.name
                                      : options_.trace_actor) {}

sgx::MemoryStore* Middlebox::key_store() {
  if (options_.enclave) return &options_.enclave->memory();
  return options_.untrusted_store;
}

void Middlebox::feed_from_client(ByteView data) {
  // A middlebox must never take a session down because *it* failed to make
  // sense of the stream: on any parse error it becomes a transparent relay
  // and forwards the bytes (the endpoints' own MACs and state machines
  // remain the arbiters of validity).
  try {
    down_reader_.feed(data);
    while (down_reader_.take_raw_into(raw_scratch_)) handle_downstream_record(raw_scratch_);
  } catch (const std::exception&) {
    demote_to_relay("downstream parse error");
    append(to_server_, data);
  }
}

void Middlebox::feed_from_server(ByteView data) {
  try {
    up_reader_.feed(data);
    while (up_reader_.take_raw_into(raw_scratch_)) handle_upstream_record(raw_scratch_);
  } catch (const std::exception&) {
    demote_to_relay("upstream parse error");
    append(to_client_, data);
  }
}

// ------------------------------------------------------------- discovery

void Middlebox::on_client_hello(const tls::Record& record, const Bytes& raw) {
  saw_client_hello_ = true;
  tls::HandshakeReassembler reasm;
  reasm.feed(record.payload);
  const auto msg = reasm.next();
  if (!msg || msg->type != tls::HandshakeType::kClientHello) {
    demote_to_relay("malformed ClientHello");
    append(to_server_, raw);
    return;
  }
  const tls::ClientHello hello = tls::ClientHello::parse(msg->body);

  if (options_.side == Side::kClientSide) {
    // Join only when the client advertises mbTLS support.
    if (!hello.find_extension(tls::kExtMiddleboxSupport) || options_.peer_known_legacy) {
      if (!hello.find_extension(tls::kExtMiddleboxSupport)) observed_legacy_peer_ = true;
      demote_to_relay("legacy client");
      append(to_server_, raw);
      return;
    }
    mode_ = Mode::kJoining;
    trace_.instant("mbtls", "join.begin", {{"side", "client"}});
    create_secondary(record);
    // Secondary output (our ServerHello flight) is buffered until the
    // primary ServerHello passes and we claim a subchannel.
    append(to_server_, raw);
    return;
  }

  // Server side: announce, forward the hello, claim the next subchannel
  // (one per announcement seen so far), and inject our flight toward the
  // server immediately (its secondary ClientHello is the primary one).
  if (options_.peer_known_legacy) {
    demote_to_relay("peer known legacy");
    append(to_server_, raw);
    return;
  }
  mode_ = Mode::kJoining;
  trace_.instant("mbtls", "join.begin", {{"side", "server"}});
  append(to_server_, tls::frame_plaintext_record(
                         tls::ContentType::kMbtlsMiddleboxAnnouncement, {}));
  trace_.instant("mbtls", "announce.sent", {});
  append(to_server_, raw);
  subchannel_ = static_cast<std::uint8_t>(announcements_seen_downstream_ + 1);
  subchannel_assigned_ = true;
  trace_.instant("mbtls", "subchannel.claimed",
                 {{"subchannel", static_cast<int>(subchannel_)}});
  create_secondary(record);
  drain_secondary();
}

void Middlebox::create_secondary(const tls::Record& client_hello_record) {
  tls::Config cfg;
  cfg.is_client = false;
  if (!options_.cipher_suites.empty()) cfg.cipher_suites = options_.cipher_suites;
  cfg.private_key = options_.private_key;
  cfg.certificate_chain = options_.certificate_chain;
  cfg.enclave = options_.enclave;
  cfg.attest_unsolicited = options_.enclave != nullptr;
  cfg.secret_store = key_store();
  cfg.secret_prefix = options_.name + "/secondary/";
  cfg.now = options_.now;
  cfg.rng_label = options_.name + "/secondary";
  cfg.session_cache = options_.session_cache;
  cfg.trace_sink = options_.trace_sink;
  cfg.trace_actor = trace_.actor() + "/sec";
  secondary_ = std::make_unique<tls::Engine>(std::move(cfg));
  secondary_->on_typed_record = [this](tls::ContentType type, ByteView plaintext) {
    if (type != tls::ContentType::kMbtlsKeyMaterial) return;
    const auto msg = tls::KeyMaterialMsg::parse(plaintext);
    if (msg) install_keys(*msg);
  };
  secondary_->feed_record(client_hello_record);
}

void Middlebox::feed_secondary(ByteView inner_record_bytes) {
  if (!secondary_) return;
  tls::RecordReader inner;
  inner.feed(inner_record_bytes);
  while (auto rec = inner.next()) secondary_->feed_record(*rec);
  drain_secondary();
  maybe_cache_session();
}

void Middlebox::maybe_cache_session() {
  // §3.5: remember this secondary session under the *primary* session's ID
  // so a future ClientHello offering that ID resumes every sub-handshake.
  if (session_cached_ || !options_.session_cache || !secondary_ ||
      !secondary_->handshake_done() || primary_session_id_.empty()) {
    return;
  }
  tls::SessionState state;
  state.session_id = primary_session_id_;
  state.suite = secondary_->suite().id;
  state.master_secret = secondary_->master_secret();
  options_.session_cache->store_by_id(state);
  session_cached_ = true;
}

void Middlebox::drain_secondary() {
  if (!secondary_) return;
  for (auto& record : secondary_->take_output_records()) {
    tls::EncapsulatedRecord enc;
    enc.subchannel = subchannel_;
    enc.inner_record = std::move(record);
    const Bytes framed =
        tls::frame_plaintext_record(tls::ContentType::kMbtlsEncapsulated, enc.encode());
    if (subchannel_assigned_) {
      append(endpoint_out(), framed);
    } else {
      secondary_out_buffer_.push_back(framed);
    }
  }
  if (secondary_->failed())
    demote_to_relay("secondary handshake failed: " + secondary_->error_message());
}

void Middlebox::install_keys(const tls::KeyMaterialMsg& msg) {
  const auto info = tls::suite_info(msg.cipher_suite);
  if (!info) {
    demote_to_relay("unknown cipher suite in key material");
    return;
  }
  toward_client_.emplace(msg.toward_client, info->key_len);
  toward_server_.emplace(msg.toward_server, info->key_len);
  joined_ = true;
  if (trace_.on()) {
    toward_client_->set_trace(trace_.sub("hop_c"));
    toward_server_->set_trace(trace_.sub("hop_s"));
    // Fingerprints only — raw hop keys must never reach a trace sink (lint
    // rule trace-no-secret).
    trace_.instant(
        "mbtls", "joined",
        {{"subchannel", static_cast<int>(subchannel_)},
         {"hop_c_c2s", tls::key_fingerprint(msg.toward_client.client_to_server_key)},
         {"hop_c_s2c", tls::key_fingerprint(msg.toward_client.server_to_client_key)},
         {"hop_s_c2s", tls::key_fingerprint(msg.toward_server.client_to_server_key)},
         {"hop_s_s2c", tls::key_fingerprint(msg.toward_server.server_to_client_key)}});
  }
  if (auto* store = key_store()) {
    store->put(options_.name + "/hop_toward_client_c2s", msg.toward_client.client_to_server_key);
    store->put(options_.name + "/hop_toward_client_s2c", msg.toward_client.server_to_client_key);
    store->put(options_.name + "/hop_toward_server_c2s", msg.toward_server.client_to_server_key);
    store->put(options_.name + "/hop_toward_server_s2c", msg.toward_server.server_to_client_key);
  }
  flush_buffered();
}

bool Middlebox::handshake_expired() {
  if (joined_ || mode_ == Mode::kRelay) return false;
  // Half-joined past the deadline (secondary handshake or key material
  // stalled): step out of the way. Buffered records are forwarded verbatim;
  // the endpoints' MACs and deadlines arbitrate from here.
  demote_to_relay("join deadline exceeded");
  return true;
}

void Middlebox::note_alert(ByteView plaintext, bool client_to_server) {
  const auto alert = parse_alert(plaintext);
  if (alert && alert->is_close_notify()) {
    (client_to_server ? close_seen_c2s_ : close_seen_s2c_) = true;
  }
}

void Middlebox::demote_to_relay(const std::string& reason) {
  if (mode_ != Mode::kRelay) trace_.instant("mbtls", "demote.relay", {{"reason", reason}});
  mode_ = Mode::kRelay;
  secondary_.reset();
  // Anything buffered is forwarded verbatim.
  for (auto& framed : secondary_out_buffer_) (void)framed;  // never sent
  secondary_out_buffer_.clear();
  for (auto& b : buffered_data_) {
    append(b.from_client ? to_server_ : to_client_, b.raw);
  }
  buffered_data_.clear();
}

void Middlebox::flush_buffered() {
  while (!buffered_data_.empty()) {
    Buffered b = std::move(buffered_data_.front());
    buffered_data_.pop_front();
    if (b.from_client)
      reprotect_c2s(b.record.type, MutableByteView(b.record.payload));
    else
      reprotect_s2c(b.record.type, MutableByteView(b.record.payload));
  }
}

// ------------------------------------------------------------ re-protection

// The forward path is zero-copy and zero-allocation: the feed loop drains
// each record into one reused scratch buffer, the body is decrypted in place
// inside that buffer, and the outbound record is sealed directly into the
// accumulating output buffer (whose capacity is reused across records). Only
// a configured application processor — which by contract returns a fresh
// payload — adds an allocation.

void Middlebox::reprotect_c2s(tls::ContentType type, MutableByteView body) {
  const auto opened = toward_client_->open_c2s_in_place(type, body);
  if (!opened) {
    ++auth_failures_;
    trace_.instant("mbtls", "reprotect.auth_fail", {{"dir", "c2s"}});
    return;  // P2/P4: unauthenticated or out-of-path record is discarded
  }
  ByteView payload = *opened;
  Bytes processed;
  if (type == tls::ContentType::kApplicationData && options_.processor) {
    processed = options_.processor(/*client_to_server=*/true, payload);
    payload = processed;
  } else if (type == tls::ContentType::kAlert) {
    note_alert(payload, /*client_to_server=*/true);
  }
  bytes_processed_ += payload.size();
  ++records_reprotected_;
  if (trace_.on()) {
    trace_.counter("reprotect.records", 1);
    trace_.counter("reprotect.bytes", static_cast<double>(payload.size()));
  }
  toward_server_->seal_c2s_into(type, payload, to_server_);
}

void Middlebox::reprotect_s2c(tls::ContentType type, MutableByteView body) {
  const auto opened = toward_server_->open_s2c_in_place(type, body);
  if (!opened) {
    ++auth_failures_;
    trace_.instant("mbtls", "reprotect.auth_fail", {{"dir", "s2c"}});
    return;
  }
  ByteView payload = *opened;
  Bytes processed;
  if (type == tls::ContentType::kApplicationData && options_.processor) {
    processed = options_.processor(/*client_to_server=*/false, payload);
    payload = processed;
  } else if (type == tls::ContentType::kAlert) {
    note_alert(payload, /*client_to_server=*/false);
  }
  bytes_processed_ += payload.size();
  ++records_reprotected_;
  if (trace_.on()) {
    trace_.counter("reprotect.records", 1);
    trace_.counter("reprotect.bytes", static_cast<double>(payload.size()));
  }
  toward_client_->seal_s2c_into(type, payload, to_client_);
}

// ------------------------------------------------------------ record loops

// `raw` is the caller's reused scratch buffer; branches that keep the record
// beyond this call (buffering, hello parsing) copy what they need — all of
// those are control-plane paths.

void Middlebox::handle_downstream_record(Bytes& raw) {
  const auto type = static_cast<tls::ContentType>(raw[0]);

  if (mode_ == Mode::kRelay) {
    append(to_server_, raw);
    return;
  }

  if (!saw_client_hello_) {
    if (first_handshake_type(type, record_body(raw)) == tls::HandshakeType::kClientHello) {
      on_client_hello(parse_record(raw), raw);
      return;
    }
    if (type == tls::ContentType::kMbtlsMiddleboxAnnouncement) {
      // Another middlebox (closer to the client) claiming a server-side slot.
      ++announcements_seen_downstream_;
      append(to_server_, raw);
      return;
    }
    // Unknown pre-hello traffic: relay.
    append(to_server_, raw);
    return;
  }

  switch (type) {
    case tls::ContentType::kMbtlsEncapsulated: {
      const auto enc = tls::EncapsulatedRecord::parse(record_body(raw));
      if (enc && options_.side == Side::kClientSide && subchannel_assigned_ &&
          enc->subchannel == subchannel_) {
        feed_secondary(enc->inner_record);
        return;
      }
      append(to_server_, raw);
      return;
    }
    case tls::ContentType::kMbtlsMiddleboxAnnouncement:
      ++announcements_seen_downstream_;
      append(to_server_, raw);
      return;
    case tls::ContentType::kApplicationData:
      if (joined_) {
        reprotect_c2s(type, record_body_mut(raw));
      } else if (mode_ == Mode::kJoining && secondary_ && secondary_->handshake_done()) {
        buffered_data_.push_back({true, parse_record(raw), raw});
      } else {
        // The session went to data phase without us: the peer is legacy.
        observed_legacy_peer_ = options_.side == Side::kServerSide;
        demote_to_relay("data phase reached before join");
        append(to_server_, raw);
      }
      return;
    case tls::ContentType::kAlert:
      if (joined_) {
        reprotect_c2s(type, record_body_mut(raw));
      } else if (mode_ == Mode::kJoining && secondary_ && secondary_->handshake_done()) {
        // A hop-sealed alert racing our key material (e.g. close_notify right
        // after False-Start data): hold it in order with that data — relaying
        // it raw would reach the next hop under the wrong keys.
        buffered_data_.push_back({true, parse_record(raw), raw});
      } else {
        append(to_server_, raw);
      }
      return;
    default:
      // Primary handshake traffic: cut-through forward.
      append(to_server_, raw);
      return;
  }
}

void Middlebox::handle_upstream_record(Bytes& raw) {
  const auto type = static_cast<tls::ContentType>(raw[0]);

  if (mode_ == Mode::kRelay) {
    append(to_client_, raw);
    return;
  }

  switch (type) {
    case tls::ContentType::kMbtlsEncapsulated: {
      const auto enc = tls::EncapsulatedRecord::parse(record_body(raw));
      if (enc && options_.side == Side::kServerSide && subchannel_assigned_ &&
          enc->subchannel == subchannel_) {
        feed_secondary(enc->inner_record);
        return;
      }
      if (enc && options_.side == Side::kClientSide) {
        max_subchannel_seen_upstream_ = std::max(max_subchannel_seen_upstream_, enc->subchannel);
      }
      append(to_client_, raw);
      return;
    }
    case tls::ContentType::kHandshake: {
      // Observe the primary ServerHello: remember the primary session ID
      // (the resumption cache key, §3.5) and — on the client side — claim a
      // subchannel, injecting our secondary ServerHello ahead of it so the
      // next middlebox toward the client numbers itself after us (§3.4).
      const ByteView body = record_body(raw);
      if (mode_ == Mode::kJoining && primary_session_id_.empty() &&
          first_handshake_type(type, body) == tls::HandshakeType::kServerHello) {
        tls::HandshakeReassembler reasm;
        reasm.feed(body);
        if (const auto msg = reasm.next()) {
          try {
            primary_session_id_ = tls::ServerHello::parse(msg->body).session_id;
            maybe_cache_session();
          } catch (const tls::ProtocolError&) {
          }
        }
      }
      if (options_.side == Side::kClientSide && mode_ == Mode::kJoining &&
          !subchannel_assigned_ &&
          first_handshake_type(type, body) == tls::HandshakeType::kServerHello) {
        subchannel_ = static_cast<std::uint8_t>(max_subchannel_seen_upstream_ + 1);
        subchannel_assigned_ = true;
        trace_.instant("mbtls", "subchannel.claimed",
                       {{"subchannel", static_cast<int>(subchannel_)}});
        // Inject our secondary ServerHello *before* forwarding the primary
        // one, so the next middlebox toward the client sees our subchannel
        // claim first and numbers itself after us (paper §3.4).
        for (auto& framed : secondary_out_buffer_) append(to_client_, framed);
        secondary_out_buffer_.clear();
        drain_secondary();
        append(to_client_, raw);
        return;
      }
      append(to_client_, raw);
      return;
    }
    case tls::ContentType::kApplicationData:
      if (joined_) {
        reprotect_s2c(type, record_body_mut(raw));
      } else if (mode_ == Mode::kJoining && secondary_ && secondary_->handshake_done()) {
        buffered_data_.push_back({false, parse_record(raw), raw});
      } else {
        observed_legacy_peer_ = options_.side == Side::kServerSide;
        demote_to_relay("data phase reached before join");
        append(to_client_, raw);
      }
      return;
    case tls::ContentType::kAlert:
      if (joined_) {
        reprotect_s2c(type, record_body_mut(raw));
      } else if (mode_ == Mode::kJoining && secondary_ && secondary_->handshake_done()) {
        buffered_data_.push_back({false, parse_record(raw), raw});
      } else {
        // A fatal alert during the handshake may mean a strict legacy server
        // choked on our announcement (§3.4): remember that.
        if (options_.side == Side::kServerSide && mode_ == Mode::kJoining && !joined_)
          observed_legacy_peer_ = true;
        append(to_client_, raw);
      }
      return;
    default:
      append(to_client_, raw);
      return;
  }
}

// ======================================================================
// ReprotectPipeline — the multi-core data plane.
// ======================================================================

ReprotectPipeline::ReprotectPipeline(Options options) : options_(std::move(options)) {
  if (options_.batch_records == 0) options_.batch_records = 1;
  scratch_.resize(options_.workers == 0 ? 1 : options_.workers);
  if (options_.workers > 0) {
    pool_.emplace(options_.workers, options_.queue_capacity,
                  [this](std::size_t worker, Batch&& batch) { process_batch(worker, batch); });
  }
}

ReprotectPipeline::~ReprotectPipeline() {
  // The pool destructor drains everything already posted; batches still
  // pending on sessions are simply dropped (callers wanting their output
  // call flush() first).
}

ReprotectPipeline::SessionId ReprotectPipeline::add_session(
    const tls::HopKeys& toward_client_keys, const tls::HopKeys& toward_server_keys,
    std::size_t key_len, Middlebox::Processor processor) {
  auto s = std::make_unique<Session>(toward_client_keys, toward_server_keys, key_len,
                                     std::move(processor));
  const SessionId id = sessions_.size();
  // Sharding rule: one worker owns all of a session's records, so per-hop
  // sequence numbers advance in submission order, exactly as in the serial
  // path. Sessions (not records) are the unit of parallelism.
  s->worker = pool_ ? pool_->shard_worker(id) : 0;
  sessions_.push_back(std::move(s));
  return id;
}

void ReprotectPipeline::submit(SessionId id, bool client_to_server, tls::ContentType type,
                               ByteView sealed_body) {
  Session& s = *sessions_[id];
  // Length-prefixed framing inside the batch buffer: [dir u8][type u8]
  // [len u32][sealed bytes]. One buffer per batch keeps the queue entry a
  // single contiguous allocation regardless of batch size.
  put_u8(s.pending, client_to_server ? 1 : 0);
  put_u8(s.pending, static_cast<std::uint8_t>(type));
  put_u32(s.pending, static_cast<std::uint32_t>(sealed_body.size()));
  append(s.pending, sealed_body);
  if (++s.pending_count >= options_.batch_records) dispatch(s);
}

void ReprotectPipeline::dispatch(Session& s) {
  if (s.pending_count == 0) return;
  Batch batch;
  batch.session = &s;
  batch.count = s.pending_count;
  batch.data = std::move(s.pending);
  s.pending.clear();
  s.pending_count = 0;
  if (pool_) {
    // Only sealed record bytes and plain counters cross the queue (lint
    // rule queue-no-secret); the hop keys stay inside the session state the
    // owning worker already holds.
    pool_->post(s.worker, std::move(batch));
  } else {
    const std::uint64_t t0 = util::thread_cpu_nanos();
    process_batch(0, batch);
    serial_busy_nanos_ += util::thread_cpu_nanos() - t0;
    // Recycle the batch buffer into the session so steady-state serial mode
    // allocates nothing per batch.
    batch.data.clear();
    s.pending = std::move(batch.data);
  }
}

void ReprotectPipeline::flush() {
  for (auto& s : sessions_) dispatch(*s);
  if (pool_) pool_->drain();
}

void ReprotectPipeline::process_batch(std::size_t worker, Batch& batch) {
  Session& s = *batch.session;
  WorkerScratch& scratch = scratch_[worker];
  scratch.spans.clear();
  scratch.meta.clear();
  // Walk the framing once up front so the (possibly in-enclave) crypto loop
  // touches only record views. Reused scratch vectors: no per-batch
  // allocation at steady state.
  std::uint8_t* base = batch.data.data();
  std::size_t off = 0;
  for (std::uint32_t i = 0; i < batch.count; ++i) {
    const std::uint8_t dir = base[off];
    const std::uint8_t rec_type = base[off + 1];
    const std::size_t len = get_u32(batch.data, off + 2);
    off += 6;
    scratch.spans.emplace_back(base + off, len);
    scratch.meta.push_back(static_cast<std::uint8_t>((rec_type << 1) | (dir & 1)));
    off += len;
  }
  // Modeled per-record I/O handling (receive/classify/deliver) burns on the
  // owning worker, outside the enclave — matching the Fig. 7 cost model
  // where only the record crypto crosses the boundary.
  if (options_.io_cost_iterations != 0) {
    for (std::uint32_t i = 0; i < batch.count; ++i) sgx::burn_cycles(options_.io_cost_iterations);
  }
  const auto crypt_all = [&] {
    for (std::uint32_t i = 0; i < batch.count; ++i) {
      reprotect_one(s, (scratch.meta[i] & 1) != 0,
                    static_cast<tls::ContentType>(scratch.meta[i] >> 1), scratch.spans[i]);
    }
  };
  if (options_.enclave && options_.batched_ecalls) {
    // One boundary crossing per batch: the amortization the scaling bench
    // measures against the one-ECALL-per-record baseline below.
    options_.enclave->ecall_batch(batch.count, crypt_all);
  } else if (options_.enclave) {
    for (std::uint32_t i = 0; i < batch.count; ++i) {
      options_.enclave->ecall([&, i] {
        reprotect_one(s, (scratch.meta[i] & 1) != 0,
                      static_cast<tls::ContentType>(scratch.meta[i] >> 1), scratch.spans[i]);
      });
    }
  } else {
    crypt_all();
  }
}

void ReprotectPipeline::reprotect_one(Session& s, bool client_to_server, tls::ContentType type,
                                      MutableByteView body) {
  // Same open → process → seal sequence as Middlebox::reprotect_c2s/s2c,
  // operating on per-session state owned by exactly one worker.
  const auto opened = client_to_server ? s.toward_client.open_c2s_in_place(type, body)
                                       : s.toward_server.open_s2c_in_place(type, body);
  if (!opened) {
    ++s.auth_failures;
    return;  // P2/P4: drop the unauthenticated record, keep the session
  }
  ByteView payload = *opened;
  Bytes processed;
  if (type == tls::ContentType::kApplicationData && s.processor) {
    processed = s.processor(client_to_server, payload);
    payload = processed;
  }
  s.bytes += payload.size();
  ++s.records;
  if (client_to_server)
    s.toward_server.seal_c2s_into(type, payload, s.out_to_server);
  else
    s.toward_client.seal_s2c_into(type, payload, s.out_to_client);
}

std::uint64_t ReprotectPipeline::records_reprotected() const {
  std::uint64_t total = 0;
  for (const auto& s : sessions_) total += s->records;
  return total;
}

std::uint64_t ReprotectPipeline::bytes_processed() const {
  std::uint64_t total = 0;
  for (const auto& s : sessions_) total += s->bytes;
  return total;
}

std::uint64_t ReprotectPipeline::auth_failures() const {
  std::uint64_t total = 0;
  for (const auto& s : sessions_) total += s->auth_failures;
  return total;
}

double ReprotectPipeline::worker_busy_seconds(std::size_t i) const {
  if (pool_) return pool_->busy_seconds(i);
  return i == 0 ? static_cast<double>(serial_busy_nanos_) * 1e-9 : 0.0;
}

double ReprotectPipeline::max_worker_busy_seconds() const {
  double max_busy = 0.0;
  const std::size_t n = pool_ ? pool_->worker_count() : 1;
  for (std::size_t i = 0; i < n; ++i) max_busy = std::max(max_busy, worker_busy_seconds(i));
  return max_busy;
}

}  // namespace mbtls::mb
