#include "mbtls/middlebox.h"

#include "tls/prf.h"

namespace mbtls::mb {

namespace {
tls::Record parse_record_header(const Bytes& raw) {
  tls::Record rec;
  rec.type = static_cast<tls::ContentType>(raw[0]);
  rec.payload.assign(raw.begin() + tls::kRecordHeaderSize, raw.end());
  return rec;
}

std::optional<tls::HandshakeType> first_handshake_type(const tls::Record& rec) {
  if (rec.type != tls::ContentType::kHandshake || rec.payload.empty()) return std::nullopt;
  return static_cast<tls::HandshakeType>(rec.payload[0]);
}
}  // namespace

Middlebox::Middlebox(Options options)
    : options_(std::move(options)),
      trace_(options_.trace_sink, options_.trace_actor.empty()
                                      ? "mbox:" + options_.name
                                      : options_.trace_actor) {}

sgx::MemoryStore* Middlebox::key_store() {
  if (options_.enclave) return &options_.enclave->memory();
  return options_.untrusted_store;
}

void Middlebox::feed_from_client(ByteView data) {
  // A middlebox must never take a session down because *it* failed to make
  // sense of the stream: on any parse error it becomes a transparent relay
  // and forwards the bytes (the endpoints' own MACs and state machines
  // remain the arbiters of validity).
  try {
    down_reader_.feed(data);
    while (auto raw = down_reader_.take_raw()) handle_downstream_record(std::move(*raw));
  } catch (const std::exception&) {
    demote_to_relay("downstream parse error");
    append(to_server_, data);
  }
}

void Middlebox::feed_from_server(ByteView data) {
  try {
    up_reader_.feed(data);
    while (auto raw = up_reader_.take_raw()) handle_upstream_record(std::move(*raw));
  } catch (const std::exception&) {
    demote_to_relay("upstream parse error");
    append(to_client_, data);
  }
}

// ------------------------------------------------------------- discovery

void Middlebox::on_client_hello(const tls::Record& record, const Bytes& raw) {
  saw_client_hello_ = true;
  tls::HandshakeReassembler reasm;
  reasm.feed(record.payload);
  const auto msg = reasm.next();
  if (!msg || msg->type != tls::HandshakeType::kClientHello) {
    demote_to_relay("malformed ClientHello");
    append(to_server_, raw);
    return;
  }
  const tls::ClientHello hello = tls::ClientHello::parse(msg->body);

  if (options_.side == Side::kClientSide) {
    // Join only when the client advertises mbTLS support.
    if (!hello.find_extension(tls::kExtMiddleboxSupport) || options_.peer_known_legacy) {
      if (!hello.find_extension(tls::kExtMiddleboxSupport)) observed_legacy_peer_ = true;
      demote_to_relay("legacy client");
      append(to_server_, raw);
      return;
    }
    mode_ = Mode::kJoining;
    trace_.instant("mbtls", "join.begin", {{"side", "client"}});
    create_secondary(record);
    // Secondary output (our ServerHello flight) is buffered until the
    // primary ServerHello passes and we claim a subchannel.
    append(to_server_, raw);
    return;
  }

  // Server side: announce, forward the hello, claim the next subchannel
  // (one per announcement seen so far), and inject our flight toward the
  // server immediately (its secondary ClientHello is the primary one).
  if (options_.peer_known_legacy) {
    demote_to_relay("peer known legacy");
    append(to_server_, raw);
    return;
  }
  mode_ = Mode::kJoining;
  trace_.instant("mbtls", "join.begin", {{"side", "server"}});
  append(to_server_, tls::frame_plaintext_record(
                         tls::ContentType::kMbtlsMiddleboxAnnouncement, {}));
  trace_.instant("mbtls", "announce.sent", {});
  append(to_server_, raw);
  subchannel_ = static_cast<std::uint8_t>(announcements_seen_downstream_ + 1);
  subchannel_assigned_ = true;
  trace_.instant("mbtls", "subchannel.claimed",
                 {{"subchannel", static_cast<int>(subchannel_)}});
  create_secondary(record);
  drain_secondary();
}

void Middlebox::create_secondary(const tls::Record& client_hello_record) {
  tls::Config cfg;
  cfg.is_client = false;
  if (!options_.cipher_suites.empty()) cfg.cipher_suites = options_.cipher_suites;
  cfg.private_key = options_.private_key;
  cfg.certificate_chain = options_.certificate_chain;
  cfg.enclave = options_.enclave;
  cfg.attest_unsolicited = options_.enclave != nullptr;
  cfg.secret_store = key_store();
  cfg.secret_prefix = options_.name + "/secondary/";
  cfg.now = options_.now;
  cfg.rng_label = options_.name + "/secondary";
  cfg.session_cache = options_.session_cache;
  cfg.trace_sink = options_.trace_sink;
  cfg.trace_actor = trace_.actor() + "/sec";
  secondary_ = std::make_unique<tls::Engine>(std::move(cfg));
  secondary_->on_typed_record = [this](tls::ContentType type, ByteView plaintext) {
    if (type != tls::ContentType::kMbtlsKeyMaterial) return;
    const auto msg = tls::KeyMaterialMsg::parse(plaintext);
    if (msg) install_keys(*msg);
  };
  secondary_->feed_record(client_hello_record);
}

void Middlebox::feed_secondary(ByteView inner_record_bytes) {
  if (!secondary_) return;
  tls::RecordReader inner;
  inner.feed(inner_record_bytes);
  while (auto rec = inner.next()) secondary_->feed_record(*rec);
  drain_secondary();
  maybe_cache_session();
}

void Middlebox::maybe_cache_session() {
  // §3.5: remember this secondary session under the *primary* session's ID
  // so a future ClientHello offering that ID resumes every sub-handshake.
  if (session_cached_ || !options_.session_cache || !secondary_ ||
      !secondary_->handshake_done() || primary_session_id_.empty()) {
    return;
  }
  tls::SessionState state;
  state.session_id = primary_session_id_;
  state.suite = secondary_->suite().id;
  state.master_secret = secondary_->master_secret();
  options_.session_cache->store_by_id(state);
  session_cached_ = true;
}

void Middlebox::drain_secondary() {
  if (!secondary_) return;
  for (auto& record : secondary_->take_output_records()) {
    tls::EncapsulatedRecord enc;
    enc.subchannel = subchannel_;
    enc.inner_record = std::move(record);
    const Bytes framed =
        tls::frame_plaintext_record(tls::ContentType::kMbtlsEncapsulated, enc.encode());
    if (subchannel_assigned_) {
      append(endpoint_out(), framed);
    } else {
      secondary_out_buffer_.push_back(framed);
    }
  }
  if (secondary_->failed())
    demote_to_relay("secondary handshake failed: " + secondary_->error_message());
}

void Middlebox::install_keys(const tls::KeyMaterialMsg& msg) {
  const auto info = tls::suite_info(msg.cipher_suite);
  if (!info) {
    demote_to_relay("unknown cipher suite in key material");
    return;
  }
  toward_client_.emplace(msg.toward_client, info->key_len);
  toward_server_.emplace(msg.toward_server, info->key_len);
  joined_ = true;
  if (trace_.on()) {
    toward_client_->set_trace(trace_.sub("hop_c"));
    toward_server_->set_trace(trace_.sub("hop_s"));
    // Fingerprints only — raw hop keys must never reach a trace sink (lint
    // rule trace-no-secret).
    trace_.instant(
        "mbtls", "joined",
        {{"subchannel", static_cast<int>(subchannel_)},
         {"hop_c_c2s", tls::key_fingerprint(msg.toward_client.client_to_server_key)},
         {"hop_c_s2c", tls::key_fingerprint(msg.toward_client.server_to_client_key)},
         {"hop_s_c2s", tls::key_fingerprint(msg.toward_server.client_to_server_key)},
         {"hop_s_s2c", tls::key_fingerprint(msg.toward_server.server_to_client_key)}});
  }
  if (auto* store = key_store()) {
    store->put(options_.name + "/hop_toward_client_c2s", msg.toward_client.client_to_server_key);
    store->put(options_.name + "/hop_toward_client_s2c", msg.toward_client.server_to_client_key);
    store->put(options_.name + "/hop_toward_server_c2s", msg.toward_server.client_to_server_key);
    store->put(options_.name + "/hop_toward_server_s2c", msg.toward_server.server_to_client_key);
  }
  flush_buffered();
}

bool Middlebox::handshake_expired() {
  if (joined_ || mode_ == Mode::kRelay) return false;
  // Half-joined past the deadline (secondary handshake or key material
  // stalled): step out of the way. Buffered records are forwarded verbatim;
  // the endpoints' MACs and deadlines arbitrate from here.
  demote_to_relay("join deadline exceeded");
  return true;
}

void Middlebox::note_alert(ByteView plaintext, bool client_to_server) {
  const auto alert = parse_alert(plaintext);
  if (alert && alert->is_close_notify()) {
    (client_to_server ? close_seen_c2s_ : close_seen_s2c_) = true;
  }
}

void Middlebox::demote_to_relay(const std::string& reason) {
  if (mode_ != Mode::kRelay) trace_.instant("mbtls", "demote.relay", {{"reason", reason}});
  mode_ = Mode::kRelay;
  secondary_.reset();
  // Anything buffered is forwarded verbatim.
  for (auto& framed : secondary_out_buffer_) (void)framed;  // never sent
  secondary_out_buffer_.clear();
  for (auto& b : buffered_data_) {
    append(b.from_client ? to_server_ : to_client_, b.raw);
  }
  buffered_data_.clear();
}

void Middlebox::flush_buffered() {
  while (!buffered_data_.empty()) {
    Buffered b = std::move(buffered_data_.front());
    buffered_data_.pop_front();
    if (b.from_client)
      reprotect_c2s(b.record);
    else
      reprotect_s2c(b.record);
  }
}

// ------------------------------------------------------------ re-protection

// The forward path is zero-copy: the record body is decrypted in place
// inside the Record's own payload buffer, and the outbound record is sealed
// directly into the accumulating output buffer (whose capacity is reused
// across records). Only a configured application processor — which by
// contract returns a fresh payload — adds an allocation.

void Middlebox::reprotect_c2s(tls::Record& record) {
  const auto opened = toward_client_->open_c2s_in_place(record.type, record.payload);
  if (!opened) {
    ++auth_failures_;
    trace_.instant("mbtls", "reprotect.auth_fail", {{"dir", "c2s"}});
    return;  // P2/P4: unauthenticated or out-of-path record is discarded
  }
  ByteView payload = *opened;
  Bytes processed;
  if (record.type == tls::ContentType::kApplicationData && options_.processor) {
    processed = options_.processor(/*client_to_server=*/true, payload);
    payload = processed;
  } else if (record.type == tls::ContentType::kAlert) {
    note_alert(payload, /*client_to_server=*/true);
  }
  bytes_processed_ += payload.size();
  ++records_reprotected_;
  if (trace_.on()) {
    trace_.counter("reprotect.records", 1);
    trace_.counter("reprotect.bytes", static_cast<double>(payload.size()));
  }
  toward_server_->seal_c2s_into(record.type, payload, to_server_);
}

void Middlebox::reprotect_s2c(tls::Record& record) {
  const auto opened = toward_server_->open_s2c_in_place(record.type, record.payload);
  if (!opened) {
    ++auth_failures_;
    trace_.instant("mbtls", "reprotect.auth_fail", {{"dir", "s2c"}});
    return;
  }
  ByteView payload = *opened;
  Bytes processed;
  if (record.type == tls::ContentType::kApplicationData && options_.processor) {
    processed = options_.processor(/*client_to_server=*/false, payload);
    payload = processed;
  } else if (record.type == tls::ContentType::kAlert) {
    note_alert(payload, /*client_to_server=*/false);
  }
  bytes_processed_ += payload.size();
  ++records_reprotected_;
  if (trace_.on()) {
    trace_.counter("reprotect.records", 1);
    trace_.counter("reprotect.bytes", static_cast<double>(payload.size()));
  }
  toward_client_->seal_s2c_into(record.type, payload, to_client_);
}

// ------------------------------------------------------------ record loops

void Middlebox::handle_downstream_record(Bytes raw) {
  tls::Record record = parse_record_header(raw);

  if (mode_ == Mode::kRelay) {
    append(to_server_, raw);
    return;
  }

  if (!saw_client_hello_) {
    if (first_handshake_type(record) == tls::HandshakeType::kClientHello) {
      on_client_hello(record, raw);
      return;
    }
    if (record.type == tls::ContentType::kMbtlsMiddleboxAnnouncement) {
      // Another middlebox (closer to the client) claiming a server-side slot.
      ++announcements_seen_downstream_;
      append(to_server_, raw);
      return;
    }
    // Unknown pre-hello traffic: relay.
    append(to_server_, raw);
    return;
  }

  switch (record.type) {
    case tls::ContentType::kMbtlsEncapsulated: {
      const auto enc = tls::EncapsulatedRecord::parse(record.payload);
      if (enc && options_.side == Side::kClientSide && subchannel_assigned_ &&
          enc->subchannel == subchannel_) {
        feed_secondary(enc->inner_record);
        return;
      }
      append(to_server_, raw);
      return;
    }
    case tls::ContentType::kMbtlsMiddleboxAnnouncement:
      ++announcements_seen_downstream_;
      append(to_server_, raw);
      return;
    case tls::ContentType::kApplicationData:
      if (joined_) {
        reprotect_c2s(record);
      } else if (mode_ == Mode::kJoining && secondary_ && secondary_->handshake_done()) {
        buffered_data_.push_back({true, record, std::move(raw)});
      } else {
        // The session went to data phase without us: the peer is legacy.
        observed_legacy_peer_ = options_.side == Side::kServerSide;
        demote_to_relay("data phase reached before join");
        append(to_server_, raw);
      }
      return;
    case tls::ContentType::kAlert:
      if (joined_) {
        reprotect_c2s(record);
      } else if (mode_ == Mode::kJoining && secondary_ && secondary_->handshake_done()) {
        // A hop-sealed alert racing our key material (e.g. close_notify right
        // after False-Start data): hold it in order with that data — relaying
        // it raw would reach the next hop under the wrong keys.
        buffered_data_.push_back({true, record, std::move(raw)});
      } else {
        append(to_server_, raw);
      }
      return;
    default:
      // Primary handshake traffic: cut-through forward.
      append(to_server_, raw);
      return;
  }
}

void Middlebox::handle_upstream_record(Bytes raw) {
  tls::Record record = parse_record_header(raw);

  if (mode_ == Mode::kRelay) {
    append(to_client_, raw);
    return;
  }

  switch (record.type) {
    case tls::ContentType::kMbtlsEncapsulated: {
      const auto enc = tls::EncapsulatedRecord::parse(record.payload);
      if (enc && options_.side == Side::kServerSide && subchannel_assigned_ &&
          enc->subchannel == subchannel_) {
        feed_secondary(enc->inner_record);
        return;
      }
      if (enc && options_.side == Side::kClientSide) {
        max_subchannel_seen_upstream_ = std::max(max_subchannel_seen_upstream_, enc->subchannel);
      }
      append(to_client_, raw);
      return;
    }
    case tls::ContentType::kHandshake: {
      // Observe the primary ServerHello: remember the primary session ID
      // (the resumption cache key, §3.5) and — on the client side — claim a
      // subchannel, injecting our secondary ServerHello ahead of it so the
      // next middlebox toward the client numbers itself after us (§3.4).
      if (mode_ == Mode::kJoining && primary_session_id_.empty() &&
          first_handshake_type(record) == tls::HandshakeType::kServerHello) {
        tls::HandshakeReassembler reasm;
        reasm.feed(record.payload);
        if (const auto msg = reasm.next()) {
          try {
            primary_session_id_ = tls::ServerHello::parse(msg->body).session_id;
            maybe_cache_session();
          } catch (const tls::ProtocolError&) {
          }
        }
      }
      if (options_.side == Side::kClientSide && mode_ == Mode::kJoining &&
          !subchannel_assigned_ &&
          first_handshake_type(record) == tls::HandshakeType::kServerHello) {
        subchannel_ = static_cast<std::uint8_t>(max_subchannel_seen_upstream_ + 1);
        subchannel_assigned_ = true;
        trace_.instant("mbtls", "subchannel.claimed",
                       {{"subchannel", static_cast<int>(subchannel_)}});
        // Inject our secondary ServerHello *before* forwarding the primary
        // one, so the next middlebox toward the client sees our subchannel
        // claim first and numbers itself after us (paper §3.4).
        for (auto& framed : secondary_out_buffer_) append(to_client_, framed);
        secondary_out_buffer_.clear();
        drain_secondary();
        append(to_client_, raw);
        return;
      }
      append(to_client_, raw);
      return;
    }
    case tls::ContentType::kApplicationData:
      if (joined_) {
        reprotect_s2c(record);
      } else if (mode_ == Mode::kJoining && secondary_ && secondary_->handshake_done()) {
        buffered_data_.push_back({false, record, std::move(raw)});
      } else {
        observed_legacy_peer_ = options_.side == Side::kServerSide;
        demote_to_relay("data phase reached before join");
        append(to_client_, raw);
      }
      return;
    case tls::ContentType::kAlert:
      if (joined_) {
        reprotect_s2c(record);
      } else if (mode_ == Mode::kJoining && secondary_ && secondary_->handshake_done()) {
        buffered_data_.push_back({false, record, std::move(raw)});
      } else {
        // A fatal alert during the handshake may mean a strict legacy server
        // choked on our announcement (§3.4): remember that.
        if (options_.side == Side::kServerSide && mode_ == Mode::kJoining && !joined_)
          observed_legacy_peer_ = true;
        append(to_client_, raw);
      }
      return;
    default:
      append(to_client_, raw);
      return;
  }
}

}  // namespace mbtls::mb
