// Million-user control plane: the shared, bounded, thread-safe caches that
// amortize per-session control-plane work across a fleet of sessions (see
// DESIGN.md "Control plane").
//
//  * ShardedSessionCache — server-side resumption state behind the same
//    tls::SessionCache interface the engine already consults, but striped
//    over N mutex-guarded LRU shards (the shard-affinity idea of
//    util/workpool.h applied to state instead of work): concurrent server
//    loops touch disjoint shards and never contend on one global lock, and
//    eviction wipes the dead entry's master secret before the memory
//    returns to the allocator.
//  * CertPool — a deduplicating pool of parsed certificates keyed by the
//    SHA-256 of the DER. A fleet of sessions to the same 500 origins parses
//    each distinct certificate once; every other handshake gets a
//    refcounted pointer to the shared parse.
//  * QuoteVerifyCache — memoized sgx::verify_quote keyed by measurement
//    (Knauth et al.: attestation evidence is reused across connections, so
//    its ECDSA verification is a per-quote cost, not a per-handshake one).
#pragma once

#include <atomic>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "tls/engine.h"
#include "tls/session.h"
#include "x509/certificate.h"

namespace mbtls::mb {

/// Counters every control-plane cache exposes. Snapshot semantics: values
/// are read individually from relaxed atomics; totals may be mid-update
/// with respect to each other, which is fine for metrics.
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t stores = 0;
  std::uint64_t evictions = 0;

  double hit_rate() const {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
  }
};

/// Sharded, bounded, thread-safe session cache (drop-in for the engine's
/// Config::session_cache). Session IDs are uniform random 32-byte strings,
/// so a cheap FNV prefix hash spreads them evenly over shards.
class ShardedSessionCache : public tls::SessionCache {
 public:
  struct Options {
    std::size_t shards = 16;             // rounded up to a power of two
    std::size_t capacity_per_shard = 4096;  // LRU-evicted beyond this
  };

  ShardedSessionCache();
  explicit ShardedSessionCache(Options options);
  ~ShardedSessionCache() override;

  void store_by_id(const tls::SessionState& state) override;
  std::optional<tls::SessionState> lookup_by_id(ByteView session_id) const override;
  void store_by_peer(const std::string& peer, const tls::SessionState& state) override;
  std::optional<tls::SessionState> lookup_by_peer(const std::string& peer) const override;

  void clear() override;
  std::size_t size() const override;

  std::size_t shard_count() const { return shards_.size(); }
  CacheStats stats() const;

  /// Per-shard by-id entry counts — how evenly FNV sharding spread the
  /// fleet's sessions. Multi-loop deployments report this next to the
  /// per-loop accept balance (bench_c10k --loops) to show neither layer of
  /// sharding collapsed onto one stripe.
  std::vector<std::size_t> shard_sizes() const;

 private:
  struct Entry {
    Bytes key;
    tls::SessionState state;  // dtor wipes master secret + key material
  };
  /// One LRU domain: most-recent at the front, index into the list.
  struct Store {
    std::list<Entry> lru;
    std::map<Bytes, std::list<Entry>::iterator> index;
  };
  struct Shard {
    mutable std::mutex mu;
    Store by_id;
    Store by_peer;
  };

  Shard& shard_for(ByteView key) const;
  void store_into(Store& store, ByteView key, const tls::SessionState& state);
  std::optional<tls::SessionState> lookup_in(Store& store, ByteView key) const;

  std::vector<std::unique_ptr<Shard>> shards_;
  std::size_t capacity_per_shard_;
  mutable std::atomic<std::uint64_t> hits_{0}, misses_{0}, stores_{0}, evictions_{0};
};

/// Deduplicating pool of parsed certificates, keyed by SHA-256(DER).
/// intern() either returns the existing shared parse (refcounted — entries
/// stay alive while any session still points at them) or parses and
/// publishes a new one. Throws DecodeError exactly like Certificate::parse.
class CertPool : public tls::CertIntern {
 public:
  explicit CertPool(std::size_t shards = 16);

  std::shared_ptr<const x509::Certificate> intern(ByteView der) override;

  /// Number of distinct certificates currently pooled.
  std::size_t size() const;
  /// Drop entries no session references anymore; returns how many died.
  std::size_t purge_unused();
  void clear();
  CacheStats stats() const;

 private:
  struct Shard {
    mutable std::mutex mu;
    std::map<Bytes, std::shared_ptr<const x509::Certificate>> by_digest;
  };

  std::vector<std::unique_ptr<Shard>> shards_;
  mutable std::atomic<std::uint64_t> hits_{0}, misses_{0};
};

/// Memoized attestation-quote verification, sharded by measurement. Both
/// verdicts are cached: verify_quote is a pure function of
/// (measurement, report_data, signature), so a cached false is as sound as
/// a cached true — and it stops a flood of replayed-garbage quotes from
/// burning an ECDSA verification each.
class QuoteVerifyCache : public tls::QuoteVerifier {
 public:
  explicit QuoteVerifyCache(std::size_t shards = 16);

  bool verify(ByteView measurement, ByteView report_data, ByteView signature) override;

  std::size_t size() const;
  void clear();
  CacheStats stats() const;

 private:
  struct Shard {
    mutable std::mutex mu;
    std::map<Bytes, bool> verdicts;  // SHA-256(meas || rd || sig) -> verdict
  };

  std::vector<std::unique_ptr<Shard>> shards_;
  mutable std::atomic<std::uint64_t> hits_{0}, misses_{0};
};

}  // namespace mbtls::mb
