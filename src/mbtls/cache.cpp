#include "mbtls/cache.h"

#include "crypto/sha2.h"
#include "sgx/attestation.h"

namespace mbtls::mb {

namespace {

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

/// FNV-1a over the key bytes. Keys are either uniform random session IDs or
/// peer-name strings; both spread fine without a keyed hash (no adversarial
/// flooding concern: session IDs are chosen by our own DRBG).
std::size_t fnv1a(ByteView key) {
  std::uint64_t h = 1469598103934665603ull;
  for (const std::uint8_t b : key) {
    h ^= b;
    h *= 1099511628211ull;
  }
  return static_cast<std::size_t>(h);
}

}  // namespace

// ------------------------------------------------------- ShardedSessionCache

ShardedSessionCache::ShardedSessionCache() : ShardedSessionCache(Options{}) {}

ShardedSessionCache::ShardedSessionCache(Options options)
    : capacity_per_shard_(options.capacity_per_shard == 0 ? 1 : options.capacity_per_shard) {
  const std::size_t n = round_up_pow2(options.shards == 0 ? 1 : options.shards);
  shards_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) shards_.push_back(std::make_unique<Shard>());
}

ShardedSessionCache::~ShardedSessionCache() = default;  // ~SessionState wipes

ShardedSessionCache::Shard& ShardedSessionCache::shard_for(ByteView key) const {
  return *shards_[fnv1a(key) & (shards_.size() - 1)];
}

void ShardedSessionCache::store_into(Store& store, ByteView key,
                                     const tls::SessionState& state) {
  const Bytes k = to_bytes(key);
  auto it = store.index.find(k);
  if (it != store.index.end()) {
    // Overwrite in place; the old SessionState's destructor wipes its
    // secrets during the assignment.
    it->second->state = state;
    store.lru.splice(store.lru.begin(), store.lru, it->second);
    return;
  }
  store.lru.push_front(Entry{k, state});
  store.index[k] = store.lru.begin();
  if (store.index.size() > capacity_per_shard_) {
    Entry& victim = store.lru.back();
    // ~SessionState wipes the master secret and mbTLS key material; the
    // ticket is an attacker-visible wire blob but scrub it anyway so an
    // evicted entry leaves nothing behind.
    secure_wipe(victim.state.ticket);
    store.index.erase(victim.key);
    store.lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

std::optional<tls::SessionState> ShardedSessionCache::lookup_in(Store& store,
                                                                ByteView key) const {
  auto it = store.index.find(to_bytes(key));
  if (it == store.index.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  store.lru.splice(store.lru.begin(), store.lru, it->second);
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second->state;
}

void ShardedSessionCache::store_by_id(const tls::SessionState& state) {
  if (state.session_id.empty()) return;
  Shard& shard = shard_for(state.session_id);
  std::lock_guard<std::mutex> lock(shard.mu);
  store_into(shard.by_id, state.session_id, state);
  stores_.fetch_add(1, std::memory_order_relaxed);
}

std::optional<tls::SessionState> ShardedSessionCache::lookup_by_id(
    ByteView session_id) const {
  if (session_id.empty()) return std::nullopt;
  Shard& shard = shard_for(session_id);
  std::lock_guard<std::mutex> lock(shard.mu);
  return lookup_in(shard.by_id, session_id);
}

void ShardedSessionCache::store_by_peer(const std::string& peer,
                                        const tls::SessionState& state) {
  // The lookup key is the public peer name, not secret material. (A named
  // Bytes local, not a view: to_bytes of a string_view returns a temporary.)
  const Bytes peer_bytes = to_bytes(std::string_view(peer));
  Shard& shard = shard_for(peer_bytes);
  std::lock_guard<std::mutex> lock(shard.mu);
  store_into(shard.by_peer, peer_bytes, state);
  stores_.fetch_add(1, std::memory_order_relaxed);
}

std::optional<tls::SessionState> ShardedSessionCache::lookup_by_peer(
    const std::string& peer) const {
  const Bytes peer_bytes = to_bytes(std::string_view(peer));
  Shard& shard = shard_for(peer_bytes);
  std::lock_guard<std::mutex> lock(shard.mu);
  return lookup_in(shard.by_peer, peer_bytes);
}

void ShardedSessionCache::clear() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    // list/map destruction runs ~SessionState on every entry, wiping keys.
    shard->by_id.index.clear();
    shard->by_id.lru.clear();
    shard->by_peer.index.clear();
    shard->by_peer.lru.clear();
  }
}

std::size_t ShardedSessionCache::size() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->by_id.index.size() + shard->by_peer.index.size();
  }
  return total;
}

std::vector<std::size_t> ShardedSessionCache::shard_sizes() const {
  std::vector<std::size_t> sizes;
  sizes.reserve(shards_.size());
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    sizes.push_back(shard->by_id.index.size());
  }
  return sizes;
}

CacheStats ShardedSessionCache::stats() const {
  return {hits_.load(std::memory_order_relaxed), misses_.load(std::memory_order_relaxed),
          stores_.load(std::memory_order_relaxed),
          evictions_.load(std::memory_order_relaxed)};
}

// ------------------------------------------------------------------ CertPool

CertPool::CertPool(std::size_t shards) {
  const std::size_t n = round_up_pow2(shards == 0 ? 1 : shards);
  shards_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) shards_.push_back(std::make_unique<Shard>());
}

std::shared_ptr<const x509::Certificate> CertPool::intern(ByteView der) {
  const Bytes digest = crypto::Sha256::digest(der);
  Shard& shard = *shards_[fnv1a(digest) & (shards_.size() - 1)];
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.by_digest.find(digest);
    if (it != shard.by_digest.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }
  // Parse outside the lock: a miss costs a full DER parse + key decode, and
  // holding the shard lock across it would serialize every cold chain that
  // lands on this shard. A racing double-parse publishes once (first wins).
  auto parsed = std::make_shared<const x509::Certificate>(x509::Certificate::parse(der));
  std::lock_guard<std::mutex> lock(shard.mu);
  auto [it, inserted] = shard.by_digest.emplace(digest, std::move(parsed));
  if (!inserted) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    return it->second;
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return it->second;
}

std::size_t CertPool::size() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->by_digest.size();
  }
  return total;
}

std::size_t CertPool::purge_unused() {
  std::size_t purged = 0;
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (auto it = shard->by_digest.begin(); it != shard->by_digest.end();) {
      if (it->second.use_count() == 1) {
        it = shard->by_digest.erase(it);
        ++purged;
      } else {
        ++it;
      }
    }
  }
  return purged;
}

void CertPool::clear() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->by_digest.clear();
  }
}

CacheStats CertPool::stats() const {
  return {hits_.load(std::memory_order_relaxed), misses_.load(std::memory_order_relaxed),
          0, 0};
}

// ---------------------------------------------------------- QuoteVerifyCache

QuoteVerifyCache::QuoteVerifyCache(std::size_t shards) {
  const std::size_t n = round_up_pow2(shards == 0 ? 1 : shards);
  shards_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) shards_.push_back(std::make_unique<Shard>());
}

bool QuoteVerifyCache::verify(ByteView measurement, ByteView report_data,
                              ByteView signature) {
  // Entry key covers all three inputs (the verdict depends on all of them);
  // the shard is picked by measurement alone so one enclave build's quotes
  // stay shard-local.
  crypto::Sha256 h;
  h.update(measurement);
  h.update(report_data);
  h.update(signature);
  const Bytes digest = h.finish();
  Shard& shard = *shards_[fnv1a(crypto::Sha256::digest(measurement)) & (shards_.size() - 1)];
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.verdicts.find(digest);
    if (it != shard.verdicts.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }
  // ECDSA verification outside the lock (it dominates the cost).
  const bool ok = sgx::verify_quote(measurement, report_data, signature);
  std::lock_guard<std::mutex> lock(shard.mu);
  shard.verdicts.emplace(digest, ok);
  misses_.fetch_add(1, std::memory_order_relaxed);
  return ok;
}

std::size_t QuoteVerifyCache::size() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->verdicts.size();
  }
  return total;
}

void QuoteVerifyCache::clear() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->verdicts.clear();
  }
}

CacheStats QuoteVerifyCache::stats() const {
  return {hits_.load(std::memory_order_relaxed), misses_.load(std::memory_order_relaxed),
          0, 0};
}

}  // namespace mbtls::mb
