#include "mbtls/types.h"

namespace mbtls::mb {

namespace {
tls::DirectionKeys direction_keys(const Bytes& key, const Bytes& iv) {
  return tls::DirectionKeys{key, iv};
}
}  // namespace

HopDuplex::HopDuplex(const tls::HopKeys& keys, std::size_t key_len)
    : c2s_(direction_keys(keys.client_to_server_key, keys.client_to_server_iv),
           keys.client_to_server_seq),
      s2c_(direction_keys(keys.server_to_client_key, keys.server_to_client_iv),
           keys.server_to_client_seq) {
  if (keys.client_to_server_key.size() != key_len || keys.server_to_client_key.size() != key_len)
    throw std::invalid_argument("hop key length does not match suite");
}

Bytes HopDuplex::seal_c2s(tls::ContentType type, ByteView plaintext) {
  return c2s_.seal(type, plaintext);
}

std::optional<Bytes> HopDuplex::open_c2s(tls::ContentType type, ByteView body) {
  return c2s_.open(type, body);
}

Bytes HopDuplex::seal_s2c(tls::ContentType type, ByteView plaintext) {
  return s2c_.seal(type, plaintext);
}

std::optional<Bytes> HopDuplex::open_s2c(tls::ContentType type, ByteView body) {
  return s2c_.open(type, body);
}

void HopDuplex::seal_c2s_into(tls::ContentType type, ByteView plaintext, Bytes& out) {
  c2s_.seal_into(type, plaintext, out);
}

std::optional<MutableByteView> HopDuplex::open_c2s_in_place(tls::ContentType type,
                                                            MutableByteView body) {
  return c2s_.open_in_place(type, body);
}

void HopDuplex::seal_s2c_into(tls::ContentType type, ByteView plaintext, Bytes& out) {
  s2c_.seal_into(type, plaintext, out);
}

std::optional<MutableByteView> HopDuplex::open_s2c_in_place(tls::ContentType type,
                                                            MutableByteView body) {
  return s2c_.open_in_place(type, body);
}

std::optional<Alert> parse_alert(ByteView body) {
  if (body.size() != 2) return std::nullopt;
  const auto level = static_cast<tls::AlertLevel>(body[0]);
  if (level != tls::AlertLevel::kWarning && level != tls::AlertLevel::kFatal)
    return std::nullopt;
  return Alert{level, static_cast<tls::AlertDescription>(body[1])};
}

tls::HopKeys generate_hop_keys(std::size_t key_len, crypto::Drbg& rng) {
  tls::HopKeys keys;
  keys.client_to_server_key = rng.bytes(key_len);
  keys.client_to_server_iv = rng.bytes(4);
  keys.server_to_client_key = rng.bytes(key_len);
  keys.server_to_client_iv = rng.bytes(4);
  keys.client_to_server_seq = 0;
  keys.server_to_client_seq = 0;
  return keys;
}

tls::HopKeys bridge_hop_keys(const tls::ConnectionKeys& primary) {
  tls::HopKeys keys;
  keys.client_to_server_key = primary.keys.client_write.key;
  keys.client_to_server_iv = primary.keys.client_write.fixed_iv;
  keys.server_to_client_key = primary.keys.server_write.key;
  keys.server_to_client_iv = primary.keys.server_write.fixed_iv;
  keys.client_to_server_seq = primary.client_seq;
  keys.server_to_client_seq = primary.server_seq;
  return keys;
}

}  // namespace mbtls::mb
