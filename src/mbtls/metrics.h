// Session metrics derived from traces (the analysis half of the tracing
// layer; src/util/trace.h is the emission half).
//
// Two consumers:
//  * CounterSink — a live O(1)-memory sink for long-running harnesses that
//    only want totals (counter deltas plus per-event tallies), no event list.
//  * summarize() & friends — offline reduction of a Recorder's event list
//    into the session-level numbers the paper's evaluation cares about:
//    handshake flights (P7), per-hop keylog fingerprints (P4), record and
//    segment totals, middlebox join/demote/fallback outcomes.
#pragma once

#include "util/trace.h"

namespace mbtls::mb {

/// Accumulating sink: counter totals keyed "actor/name" for explicit
/// counters, event tallies keyed "events/<actor>/<category>.<name>". Never
/// stores events, so it is safe to leave attached for millions of records.
class CounterSink : public trace::Sink {
 public:
  void record(trace::Event e) override;

  const std::map<std::string, double>& totals() const { return totals_; }
  /// Sum of every key whose trailing path component equals `name`.
  double total(std::string_view name) const;
  /// Flat sorted `key value` lines (same format as Recorder::counter_dump).
  std::string dump() const;
  void clear() { totals_.clear(); }

 private:
  std::map<std::string, double> totals_;
};

/// Session-level reduction of a recorded trace.
struct SessionMetrics {
  std::uint64_t records_sealed = 0;
  std::uint64_t records_opened = 0;
  std::uint64_t record_auth_failures = 0;
  std::uint64_t segments_sent = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t taps_fired = 0;
  std::uint64_t losses = 0;
  std::uint64_t handshakes_established = 0;
  std::uint64_t sessions_established = 0;  // mbtls-level "established" events
  std::uint64_t middleboxes_joined = 0;
  std::uint64_t demotions = 0;
  std::uint64_t fallback_redials = 0;
  std::uint64_t failures = 0;
  double reprotected_records = 0;
  double reprotected_bytes = 0;

  /// Flat `key value` lines, sorted, deterministic.
  std::string dump() const;
};

SessionMetrics summarize(const std::vector<trace::Event>& events);

/// Number of handshake flights an actor saw before establishment: the count
/// of "tls"/"flight" events whose actor starts with `actor_prefix`. The
/// paper's P7 invariant is that this matches plain TLS (4 full / 3 resumed).
int flight_count(const std::vector<trace::Event>& events, std::string_view actor_prefix);

/// One hop's key fingerprints from an mbtls "keylog.hop" event.
struct HopKeylog {
  std::string actor;
  std::uint64_t hop = 0;
  std::string c2s;  ///< tls::key_fingerprint of the client→server key
  std::string s2c;
};

/// All keylog.hop events whose actor starts with `actor_prefix`, in emission
/// order. P4 holds iff the fingerprints are pairwise distinct across hops.
std::vector<HopKeylog> hop_keylogs(const std::vector<trace::Event>& events,
                                   std::string_view actor_prefix);

}  // namespace mbtls::mb
