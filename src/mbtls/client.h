// mbTLS client endpoint (§3.4).
//
// Owns the primary TLS engine (whose ClientHello carries the
// MiddleboxSupport extension) plus one secondary engine per discovered or
// pre-configured client-side middlebox. Secondary handshakes ride the same
// byte stream inside Encapsulated records; once the primary handshake and
// every secondary handshake complete, the client generates unique per-hop
// keys, ships them in MBTLSKeyMaterial records over the secondary sessions,
// and switches its data path to the hop adjacent to it.
#pragma once

#include <map>

#include "mbtls/types.h"

namespace mbtls::mb {

class ClientSession {
 public:
  struct Options {
    tls::Config tls;  // is_client forced true
    bool announce_mbtls = true;
    std::vector<std::string> known_middleboxes;
    bool require_middlebox_attestation = false;
    Bytes expected_middlebox_measurement;
    ApprovalCallback approve;  // default: accept every verified middlebox

    /// Handshake deadline in microseconds of virtual time, enforced by the
    /// transport binding (sans-IO sessions have no clock of their own).
    /// 0 disables. A stalled middlebox then yields a fatal alert and a clean
    /// failure instead of a silent hang.
    std::uint64_t handshake_timeout = 0;
    /// P5 degradation path: when the deadline fires, ask the owner to redial
    /// the origin directly with a plain end-to-end TLS session (see
    /// FallbackClient in mbtls/transport.h) instead of giving up for good.
    bool fallback_to_direct_tls = false;

    /// Structured tracing: propagated to the primary and secondary engines
    /// ("<actor>/primary", "<actor>/sec<N>") and used for session-level
    /// events (hop establishment, keylog fingerprints, fallback). Null =
    /// disabled, zero overhead.
    trace::Sink* trace_sink = nullptr;
    std::string trace_actor = "client";
  };

  explicit ClientSession(Options options);

  /// Emit the primary ClientHello.
  void start();

  void feed(ByteView transport_bytes);
  Bytes take_output();

  void send(ByteView application_data);
  Bytes take_app_data();
  void close();

  /// Deadline hook, driven off the virtual clock by the transport layer: if
  /// the handshake is still in flight, emit a fatal handshake_failure alert,
  /// fail the session, and return true (no-op otherwise).
  bool handshake_expired();

  /// Explicit watchdog abort: emit a fatal alert (sealed when keys exist)
  /// and fail with `reason`. Idempotent once terminal.
  void abort(const std::string& reason);

  /// The transport died without a close_notify (peer RST, retransmit
  /// exhaustion, mid-handshake FIN). Anything but a cleanly closed session
  /// becomes an explicit failure — never a hang, never a silent truncation.
  void transport_closed();

  SessionStatus status() const { return status_; }
  bool established() const { return status_ == SessionStatus::kEstablished; }
  bool failed() const { return status_ == SessionStatus::kFailed; }
  const std::string& error_message() const { return error_; }

  /// True once a deadline expiry requested the configured direct-TLS
  /// fallback; the transport owner performs the redial.
  bool wants_fallback() const { return fallback_wanted_; }

  /// Client-side middleboxes in path order (closest to the server first).
  std::vector<MiddleboxDescriptor> middleboxes() const;

  const tls::Engine& primary() const { return primary_; }

 private:
  struct Secondary {
    std::unique_ptr<tls::Engine> engine;
    MiddleboxDescriptor descriptor;
    bool approved = false;
  };

  void handle_record(const tls::Record& record);
  void handle_encapsulated(ByteView payload);
  void handle_data_record(const tls::Record& record);
  void pump_secondary(std::uint8_t sub, Secondary& sec);
  void drain_primary();
  void maybe_finish_setup();
  void distribute_keys();
  void fail(const std::string& message);
  void emit_fatal_alert(tls::AlertDescription description);

  Options options_;
  trace::Emitter trace_;
  tls::Engine primary_;
  std::map<std::uint8_t, Secondary> secondaries_;
  tls::RecordReader reader_;
  crypto::Drbg hop_rng_;
  Bytes out_;
  Bytes app_in_;
  std::optional<HopDuplex> data_path_;  // hop adjacent to the client
  SessionStatus status_ = SessionStatus::kHandshaking;
  std::string error_;
  bool fallback_wanted_ = false;
};

}  // namespace mbtls::mb
