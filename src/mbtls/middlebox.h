// mbTLS middlebox runtime (§3.4): one instance per spliced connection.
//
// The middlebox sits between two TCP segments ("downstream" toward the
// client, "upstream" toward the server) and:
//  * decides, from the ClientHello, whether to join the session (client-side
//    mode requires the MiddleboxSupport extension; server-side mode
//    announces itself with a MiddleboxAnnouncement and joins regardless of
//    client support),
//  * cut-through forwards all primary-handshake records,
//  * runs a secondary TLS handshake with its endpoint — playing the TLS
//    *server* role, with the primary ClientHello serving double duty — over
//    Encapsulated records on its own subchannel,
//  * receives MBTLSKeyMaterial for its two adjacent hops, and thereafter
//    re-protects every data record: open with the inbound hop keys, run the
//    application processor, seal with the outbound hop keys,
//  * falls back to pure relay mode when the session is not mbTLS (legacy
//    client without the extension / legacy server that ignores
//    announcements), caching that fact (observed_legacy_peer).
//
// When an enclave is configured, session secrets (secondary-session keys and
// the installed hop keys) live in enclave memory; otherwise they are written
// to the untrusted store, which is exactly what the Table-1 infrastructure
// adversary reads.
#pragma once

#include <deque>

#include "mbtls/types.h"

namespace mbtls::mb {

class Middlebox {
 public:
  enum class Side { kClientSide, kServerSide };

  /// Application hook: transform one record's worth of application data.
  /// `client_to_server` gives the direction. Return the (possibly modified)
  /// payload.
  using Processor = std::function<Bytes(bool client_to_server, ByteView data)>;

  struct Options {
    std::string name;
    Side side = Side::kClientSide;
    std::shared_ptr<x509::PrivateKey> private_key;
    std::vector<x509::Certificate> certificate_chain;
    std::vector<tls::CipherSuite> cipher_suites;  // empty = engine defaults
    sgx::Enclave* enclave = nullptr;              // secure execution environment
    sgx::MemoryStore* untrusted_store = nullptr;  // where keys land without one
    Processor processor;                          // identity when empty
    bool peer_known_legacy = false;               // cached: don't announce (§3.4)
    std::int64_t now = 1500000000;
    /// Session resumption (§3.5): secondary-session state is cached keyed by
    /// the *primary* session's ID (which every middlebox observes in the
    /// hellos), so the one session ID the shared ClientHello carries lets
    /// each party resume its own sub-handshake.
    tls::SessionCache* session_cache = nullptr;
    /// Join deadline in microseconds of virtual time (0 = none), enforced by
    /// the transport binding: a middlebox whose secondary handshake or key
    /// material stalls demotes itself to a transparent relay instead of
    /// sitting half-joined forever (the endpoints' own deadlines and MACs
    /// then decide the session's fate).
    std::uint64_t handshake_timeout = 0;

    /// Structured tracing (see ClientSession::Options::trace_sink). The
    /// actor defaults to "mbox:<name>" when left empty.
    trace::Sink* trace_sink = nullptr;
    std::string trace_actor;
  };

  explicit Middlebox(Options options);

  // Byte-stream interface; the owner splices two transport connections.
  void feed_from_client(ByteView data);
  void feed_from_server(ByteView data);
  Bytes take_to_client() { return std::move(to_client_); }
  Bytes take_to_server() { return std::move(to_server_); }

  /// Joined the session with hop keys installed.
  bool joined() const { return joined_; }
  /// Secondary handshake completed via abbreviated resumption.
  bool resumed() const { return secondary_ && secondary_->resumed(); }
  /// Demoted (or configured) to transparent forwarding.
  bool relay_mode() const { return mode_ == Mode::kRelay; }
  /// True when the far endpoint turned out not to speak mbTLS — the paper's
  /// middleboxes cache this and stop announcing to that peer.
  bool observed_legacy_peer() const { return observed_legacy_peer_; }
  std::uint8_t subchannel() const { return subchannel_; }
  const std::string& name() const { return options_.name; }

  /// Join-deadline hook (see Options::handshake_timeout): if still
  /// half-joined, demote to relay and return true.
  bool handshake_expired();

  /// Hop-by-hop shutdown visibility: close_notify alerts opened on the
  /// reprotect path are recognized (not treated as opaque data) and
  /// re-protected onward, so a clean endpoint shutdown traverses every hop.
  bool saw_close_notify_from_client() const { return close_seen_c2s_; }
  bool saw_close_notify_from_server() const { return close_seen_s2c_; }

  std::uint64_t records_reprotected() const { return records_reprotected_; }
  std::uint64_t bytes_processed() const { return bytes_processed_; }
  std::uint64_t auth_failures() const { return auth_failures_; }

 private:
  enum class Mode { kUndecided, kJoining, kRelay };

  void handle_downstream_record(Bytes raw);  // arriving from the client
  void handle_upstream_record(Bytes raw);    // arriving from the server
  void on_client_hello(const tls::Record& record, const Bytes& raw);
  void create_secondary(const tls::Record& client_hello_record);
  void feed_secondary(ByteView inner_record_bytes);
  void drain_secondary();
  void install_keys(const tls::KeyMaterialMsg& msg);
  void maybe_cache_session();
  void reprotect_c2s(tls::Record& record);  // decrypts record.payload in place
  void reprotect_s2c(tls::Record& record);
  void note_alert(ByteView plaintext, bool client_to_server);
  void flush_buffered();
  void demote_to_relay(const std::string& reason);
  Bytes& endpoint_out() {
    return options_.side == Side::kClientSide ? to_client_ : to_server_;
  }
  sgx::MemoryStore* key_store();

  Options options_;
  trace::Emitter trace_;
  Mode mode_ = Mode::kUndecided;
  bool saw_client_hello_ = false;
  bool subchannel_assigned_ = false;
  std::uint8_t subchannel_ = 0;
  bool joined_ = false;
  bool observed_legacy_peer_ = false;
  bool close_seen_c2s_ = false;
  bool close_seen_s2c_ = false;

  // Discovery bookkeeping.
  std::uint8_t max_subchannel_seen_upstream_ = 0;   // client side assignment
  std::size_t announcements_seen_downstream_ = 0;   // server side assignment
  Bytes primary_session_id_;                        // from the primary ServerHello
  bool session_cached_ = false;

  std::unique_ptr<tls::Engine> secondary_;
  std::vector<Bytes> secondary_out_buffer_;  // held until subchannel assigned

  std::optional<HopDuplex> toward_client_;
  std::optional<HopDuplex> toward_server_;

  // Data records that arrived before key material (False-Start-like, §3.5).
  struct Buffered {
    bool from_client;
    tls::Record record;
    Bytes raw;
  };
  std::deque<Buffered> buffered_data_;

  tls::RecordReader down_reader_, up_reader_;
  Bytes to_client_, to_server_;

  std::uint64_t records_reprotected_ = 0;
  std::uint64_t bytes_processed_ = 0;
  std::uint64_t auth_failures_ = 0;
};

}  // namespace mbtls::mb
