// mbTLS middlebox runtime (§3.4): one instance per spliced connection.
//
// The middlebox sits between two TCP segments ("downstream" toward the
// client, "upstream" toward the server) and:
//  * decides, from the ClientHello, whether to join the session (client-side
//    mode requires the MiddleboxSupport extension; server-side mode
//    announces itself with a MiddleboxAnnouncement and joins regardless of
//    client support),
//  * cut-through forwards all primary-handshake records,
//  * runs a secondary TLS handshake with its endpoint — playing the TLS
//    *server* role, with the primary ClientHello serving double duty — over
//    Encapsulated records on its own subchannel,
//  * receives MBTLSKeyMaterial for its two adjacent hops, and thereafter
//    re-protects every data record: open with the inbound hop keys, run the
//    application processor, seal with the outbound hop keys,
//  * falls back to pure relay mode when the session is not mbTLS (legacy
//    client without the extension / legacy server that ignores
//    announcements), caching that fact (observed_legacy_peer).
//
// When an enclave is configured, session secrets (secondary-session keys and
// the installed hop keys) live in enclave memory; otherwise they are written
// to the untrusted store, which is exactly what the Table-1 infrastructure
// adversary reads.
//
// This file also hosts ReprotectPipeline, the multi-core data plane that
// runs many established sessions' reprotect paths across a worker pool; the
// Middlebox state machine itself stays single-threaded.
#pragma once

#include <deque>

#include "mbtls/types.h"
#include "sgx/enclave.h"
#include "util/workpool.h"

namespace mbtls::mb {

class Middlebox {
 public:
  enum class Side { kClientSide, kServerSide };

  /// Application hook: transform one record's worth of application data.
  /// `client_to_server` gives the direction. Return the (possibly modified)
  /// payload.
  using Processor = std::function<Bytes(bool client_to_server, ByteView data)>;

  struct Options {
    std::string name;
    Side side = Side::kClientSide;
    std::shared_ptr<x509::PrivateKey> private_key;
    std::vector<x509::Certificate> certificate_chain;
    std::vector<tls::CipherSuite> cipher_suites;  // empty = engine defaults
    sgx::Enclave* enclave = nullptr;              // secure execution environment
    sgx::MemoryStore* untrusted_store = nullptr;  // where keys land without one
    Processor processor;                          // identity when empty
    bool peer_known_legacy = false;               // cached: don't announce (§3.4)
    std::int64_t now = 1500000000;
    /// Session resumption (§3.5): secondary-session state is cached keyed by
    /// the *primary* session's ID (which every middlebox observes in the
    /// hellos), so the one session ID the shared ClientHello carries lets
    /// each party resume its own sub-handshake.
    tls::SessionCache* session_cache = nullptr;
    /// Join deadline in microseconds of virtual time (0 = none), enforced by
    /// the transport binding: a middlebox whose secondary handshake or key
    /// material stalls demotes itself to a transparent relay instead of
    /// sitting half-joined forever (the endpoints' own deadlines and MACs
    /// then decide the session's fate).
    std::uint64_t handshake_timeout = 0;

    /// Structured tracing (see ClientSession::Options::trace_sink). The
    /// actor defaults to "mbox:<name>" when left empty.
    trace::Sink* trace_sink = nullptr;
    std::string trace_actor;
  };

  explicit Middlebox(Options options);

  // Byte-stream interface; the owner splices two transport connections.
  void feed_from_client(ByteView data);
  void feed_from_server(ByteView data);
  Bytes take_to_client() { return std::move(to_client_); }
  Bytes take_to_server() { return std::move(to_server_); }

  /// Joined the session with hop keys installed.
  bool joined() const { return joined_; }
  /// Secondary handshake completed via abbreviated resumption.
  bool resumed() const { return secondary_ && secondary_->resumed(); }
  /// Demoted (or configured) to transparent forwarding.
  bool relay_mode() const { return mode_ == Mode::kRelay; }
  /// True when the far endpoint turned out not to speak mbTLS — the paper's
  /// middleboxes cache this and stop announcing to that peer.
  bool observed_legacy_peer() const { return observed_legacy_peer_; }
  std::uint8_t subchannel() const { return subchannel_; }
  const std::string& name() const { return options_.name; }

  /// Join-deadline hook (see Options::handshake_timeout): if still
  /// half-joined, demote to relay and return true.
  bool handshake_expired();

  /// Hop-by-hop shutdown visibility: close_notify alerts opened on the
  /// reprotect path are recognized (not treated as opaque data) and
  /// re-protected onward, so a clean endpoint shutdown traverses every hop.
  bool saw_close_notify_from_client() const { return close_seen_c2s_; }
  bool saw_close_notify_from_server() const { return close_seen_s2c_; }

  std::uint64_t records_reprotected() const { return records_reprotected_; }
  std::uint64_t bytes_processed() const { return bytes_processed_; }
  std::uint64_t auth_failures() const { return auth_failures_; }

 private:
  enum class Mode { kUndecided, kJoining, kRelay };

  void handle_downstream_record(Bytes& raw);  // arriving from the client
  void handle_upstream_record(Bytes& raw);    // arriving from the server
  void on_client_hello(const tls::Record& record, const Bytes& raw);
  void create_secondary(const tls::Record& client_hello_record);
  void feed_secondary(ByteView inner_record_bytes);
  void drain_secondary();
  void install_keys(const tls::KeyMaterialMsg& msg);
  void maybe_cache_session();
  /// Decrypts `body` (the raw record bytes after the header) in place and
  /// seals the result onto the outbound stream. Zero-copy, zero-allocation
  /// unless an application processor is configured.
  void reprotect_c2s(tls::ContentType type, MutableByteView body);
  void reprotect_s2c(tls::ContentType type, MutableByteView body);
  void note_alert(ByteView plaintext, bool client_to_server);
  void flush_buffered();
  void demote_to_relay(const std::string& reason);
  Bytes& endpoint_out() {
    return options_.side == Side::kClientSide ? to_client_ : to_server_;
  }
  sgx::MemoryStore* key_store();

  Options options_;
  trace::Emitter trace_;
  Mode mode_ = Mode::kUndecided;
  bool saw_client_hello_ = false;
  bool subchannel_assigned_ = false;
  std::uint8_t subchannel_ = 0;
  bool joined_ = false;
  bool observed_legacy_peer_ = false;
  bool close_seen_c2s_ = false;
  bool close_seen_s2c_ = false;

  // Discovery bookkeeping.
  std::uint8_t max_subchannel_seen_upstream_ = 0;   // client side assignment
  std::size_t announcements_seen_downstream_ = 0;   // server side assignment
  Bytes primary_session_id_;                        // from the primary ServerHello
  bool session_cached_ = false;

  std::unique_ptr<tls::Engine> secondary_;
  std::vector<Bytes> secondary_out_buffer_;  // held until subchannel assigned

  std::optional<HopDuplex> toward_client_;
  std::optional<HopDuplex> toward_server_;

  // Data records that arrived before key material (False-Start-like, §3.5).
  struct Buffered {
    bool from_client;
    tls::Record record;
    Bytes raw;
  };
  std::deque<Buffered> buffered_data_;

  tls::RecordReader down_reader_, up_reader_;
  // Reused per record by the feed loops (take_raw_into): the steady-state
  // data path — drain record, open in place, seal into the output stream —
  // performs no per-record allocation.
  Bytes raw_scratch_;
  Bytes to_client_, to_server_;

  std::uint64_t records_reprotected_ = 0;
  std::uint64_t bytes_processed_ = 0;
  std::uint64_t auth_failures_ = 0;
};

/// Multi-core middlebox data plane (the Fig. 7 scaling lever).
///
/// A deployed middlebox carries many spliced sessions; the serial runtime
/// above re-protects them one record at a time on one core. This pipeline
/// fans *established* sessions out across a fixed util::WorkPool:
///
///   Sharding rule: session -> worker (session id mod workers). Every record
///   of one session runs on one worker in submission order, so each hop's
///   AEAD sequence numbers advance exactly as in the serial path — the
///   parallel pipeline's output is byte-identical to the serial pipeline's
///   (tests/test_workpool.cpp cross-checks this, under TSan in check.sh).
///   Different sessions fan out across cores with no shared mutable state:
///   hop channels, output streams and counters are all per-session, and a
///   session belongs to exactly one worker.
///
/// What stays single-threaded: handshakes, discovery, key installation, and
/// the Middlebox state machine — only the open→process→seal data path
/// parallelizes. With `workers == 0` (the default) the pipeline runs inline
/// on the calling thread, fully deterministic; the simulator, chaos and
/// trace suites rely on that mode.
///
/// Queue hygiene: what crosses the worker queue is sealed record bytes —
/// ciphertext — plus plain counters. Hop keys are installed into a session
/// before any traffic is submitted and live inside the per-session
/// HopDuplex; key material must never be posted onto the queue (lint rule
/// queue-no-secret).
class ReprotectPipeline {
 public:
  struct Options {
    /// 0 = serial inline execution (deterministic default). >= 1 spins up
    /// that many workers with one SPSC ring each.
    std::size_t workers = 0;
    /// Records accumulated per queue entry; also the ECALL batch size when
    /// `batched_ecalls` is set. 1 reproduces the serial Fig. 7 cost model
    /// (one enclave crossing per record).
    std::size_t batch_records = 32;
    /// Per-worker ring capacity, in batches (backpressure bound).
    std::size_t queue_capacity = 64;
    /// When set, the open→process→seal path executes inside this enclave.
    sgx::Enclave* enclave = nullptr;
    /// One ECALL per batch (amortized transitions) vs one per record.
    bool batched_ecalls = true;
    /// Modeled per-record network-I/O handling cost (see bench_fig7),
    /// burned on the owning worker outside the enclave.
    std::uint64_t io_cost_iterations = 0;
  };

  using SessionId = std::size_t;

  explicit ReprotectPipeline(Options options);
  ~ReprotectPipeline();
  ReprotectPipeline(const ReprotectPipeline&) = delete;
  ReprotectPipeline& operator=(const ReprotectPipeline&) = delete;

  /// Register an established session by its two adjacent hops' key material
  /// (the same shape Middlebox::install_keys receives). The processor, when
  /// set, runs on the session's worker thread; it must touch only its own
  /// state. Returns the id used for submit()/output access.
  SessionId add_session(const tls::HopKeys& toward_client_keys,
                        const tls::HopKeys& toward_server_keys, std::size_t key_len,
                        Middlebox::Processor processor = {});

  /// Submit one sealed record body (the wire bytes after the 5-byte header)
  /// for re-protection. Must be called from one producer thread. Records of
  /// one session are processed in submission order; an authentication
  /// failure drops that record only (P2/P4, as in the serial runtime).
  void submit(SessionId id, bool client_to_server, tls::ContentType type,
              ByteView sealed_body);

  /// Barrier: dispatches partially-filled batches and waits until every
  /// submitted record has been processed. Outputs and counters below are
  /// valid only after flush() (or from the start, in serial mode).
  void flush();

  /// Re-protected output streams (full wire records), per session.
  const Bytes& to_server(SessionId id) const { return sessions_[id]->out_to_server; }
  const Bytes& to_client(SessionId id) const { return sessions_[id]->out_to_client; }
  Bytes take_to_server(SessionId id) { return std::move(sessions_[id]->out_to_server); }
  Bytes take_to_client(SessionId id) { return std::move(sessions_[id]->out_to_client); }

  std::size_t worker_count() const { return pool_ ? pool_->worker_count() : 1; }
  std::size_t session_count() const { return sessions_.size(); }
  std::size_t worker_of(SessionId id) const { return sessions_[id]->worker; }

  // Aggregated across sessions; call after flush().
  std::uint64_t records_reprotected() const;
  std::uint64_t bytes_processed() const;
  std::uint64_t auth_failures() const;

  /// CPU time worker `i` spent re-protecting (scheduling-independent; see
  /// util::thread_cpu_nanos). In serial mode all time lands on index 0.
  double worker_busy_seconds(std::size_t i) const;
  /// The parallel critical path: the busiest worker's CPU time. Capacity
  /// throughput in the Fig. 7 scaling bench is bytes / this.
  double max_worker_busy_seconds() const;

 private:
  struct Session;

  /// One queue entry: a session's worth of sealed records, length-prefixed.
  /// Only ciphertext crosses the queue (lint rule queue-no-secret).
  struct Batch {
    Session* session = nullptr;
    std::uint32_t count = 0;
    Bytes data;
  };

  struct Session {
    Session(const tls::HopKeys& toward_client_keys, const tls::HopKeys& toward_server_keys,
            std::size_t key_len, Middlebox::Processor p)
        : toward_client(toward_client_keys, key_len),
          toward_server(toward_server_keys, key_len),
          processor(std::move(p)) {}

    HopDuplex toward_client, toward_server;
    Middlebox::Processor processor;
    std::size_t worker = 0;

    // Producer side: the batch under construction.
    Bytes pending;
    std::uint32_t pending_count = 0;

    // Worker side: owned by exactly one worker (sharding rule), read by the
    // producer only after the flush() barrier.
    Bytes out_to_server, out_to_client;
    std::uint64_t records = 0;
    std::uint64_t bytes = 0;
    std::uint64_t auth_failures = 0;
  };

  /// Per-worker reusable scratch (record spans of the batch being walked).
  /// Cache-line sized so neighboring workers never share a line.
  struct alignas(64) WorkerScratch {
    std::vector<MutableByteView> spans;
    std::vector<std::uint8_t> meta;  // bit0: direction, bits 1..: content type
  };

  void dispatch(Session& s);
  void process_batch(std::size_t worker, Batch& batch);
  void reprotect_one(Session& s, bool client_to_server, tls::ContentType type,
                     MutableByteView body);

  Options options_;
  std::vector<std::unique_ptr<Session>> sessions_;
  std::vector<WorkerScratch> scratch_;              // one per worker (index 0 in serial mode)
  std::optional<util::WorkPool<Batch>> pool_;       // absent in serial mode
  std::uint64_t serial_busy_nanos_ = 0;
};

}  // namespace mbtls::mb
