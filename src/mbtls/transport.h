// Glue between the sans-IO mbTLS components and the simulated network's TCP
// sockets. Each binder wires a component's input to socket data events and
// flushes its pending output back to the socket after every event.
#pragma once

#include "mbtls/client.h"
#include "mbtls/middlebox.h"
#include "mbtls/server.h"
#include "net/tcp.h"
#include "tls/engine.h"

namespace mbtls::mb {

/// Binds anything with feed()/take_output() (ClientSession, ServerSession,
/// tls::Engine) to one socket.
template <typename Session>
class SocketBinding {
 public:
  SocketBinding(Session& session, net::Socket& socket) : session_(session), socket_(socket) {
    socket_.on_data = [this](ByteView data) {
      session_.feed(data);
      flush();
    };
  }

  /// Push any pending output (call after start() or send()).
  void flush() {
    const Bytes out = session_.take_output();
    if (!out.empty() && socket_.established()) {
      socket_.send(out);
    } else if (!out.empty()) {
      pending_ = concat({pending_, out});
      socket_.on_connect = [this] { drain_pending(); };
    }
  }

 private:
  void drain_pending() {
    if (!pending_.empty()) {
      socket_.send(pending_);
      pending_.clear();
    }
  }

  Session& session_;
  net::Socket& socket_;
  Bytes pending_;
};

/// Binds a Middlebox between two sockets (downstream toward the client,
/// upstream toward the server).
class MiddleboxBinding {
 public:
  MiddleboxBinding(Middlebox& mbox, net::Socket& downstream, net::Socket& upstream)
      : mbox_(mbox), down_(downstream), up_(upstream) {
    down_.on_data = [this](ByteView data) {
      mbox_.feed_from_client(data);
      flush();
    };
    up_.on_data = [this](ByteView data) {
      mbox_.feed_from_server(data);
      flush();
    };
    up_.on_connect = [this] { flush(); };
  }

  void flush() {
    const Bytes to_server = mbox_.take_to_server();
    if (!to_server.empty()) {
      if (up_.established()) {
        up_.send(to_server);
      } else {
        pending_up_ = concat({pending_up_, to_server});
      }
    }
    if (!pending_up_.empty() && up_.established()) {
      up_.send(pending_up_);
      pending_up_.clear();
    }
    const Bytes to_client = mbox_.take_to_client();
    if (!to_client.empty()) down_.send(to_client);
  }

 private:
  Middlebox& mbox_;
  net::Socket& down_;
  net::Socket& up_;
  Bytes pending_up_;
};

}  // namespace mbtls::mb
