// Glue between the sans-IO mbTLS components and a transport backend. Each
// binder wires a component's input to stream data events and flushes its
// pending output back to the stream after every event.
//
// The bindings are backend-agnostic: they talk to net::Stream /
// net::Scheduler / net::Transport (net/transport.h), so the same glue runs
// on the discrete-event simulator (net::Host + net::Socket, virtual time)
// and on the posix epoll loop (net::posix::EpollLoop, real sockets, real
// time). tests/test_transport_conformance.cpp holds them to identical
// behaviour.
//
// The bindings also own the failure surface the sans-IO cores cannot see:
// handshake deadlines (sessions have no clock), propagation of abnormal TCP
// teardown into explicit session errors, backpressure buffering (a record
// taken from a session or middlebox is never dropped just because the
// destination cannot accept it *yet*), and the P5 degradation path
// (FallbackClient) that redials the origin directly when the middlebox path
// dies mid-handshake.
#pragma once

#include <memory>

#include "mbtls/client.h"
#include "mbtls/middlebox.h"
#include "mbtls/server.h"
#include "net/tcp.h"  // the default (simulator) backend
#include "net/transport.h"
#include "tls/engine.h"
#include "tls/ticket.h"

namespace mbtls::mb {

/// Shared output rule for all bindings: output taken from a sans-IO core is
/// appended to `pending` and drained only when the destination can take it —
/// on flush, on connect, and on the backend's writability edge. Only a
/// *closed* destination discards (the bytes are undeliverable); "not yet
/// established" and "backpressured" both buffer. Losing already-taken
/// records on a transient !writable() was the transport-glue bug the
/// simulator's lockstep delivery used to hide.
inline void drain_or_buffer(net::Stream& stream, Bytes& pending) {
  if (pending.empty()) return;
  if (stream.closed()) {  // teardown raced the output: nowhere to go
    pending.clear();
    return;
  }
  if (!stream.established() || !stream.writable()) return;  // retried on connect/writable
  stream.send(pending);
  pending.clear();
}

/// Binds anything with feed()/take_output() (ClientSession, ServerSession,
/// tls::Engine) to one stream.
template <typename Session>
class SocketBinding {
 public:
  SocketBinding(Session& session, net::Stream& socket) : session_(session), socket_(socket) {
    socket_.on_data = [this](ByteView data) {
      session_.feed(data);
      flush();
    };
    socket_.on_close = [this] {
      // Abnormal or premature teardown must surface as a session error, not
      // a hang (sessions that already saw close_notify ignore this).
      if constexpr (requires { session_.transport_closed(); }) {
        session_.transport_closed();
      }
    };
    // The pending-drain hook is installed exactly once, here, and *chains*
    // any previously installed connect handler (e.g. one that calls
    // session.start() then flush()). flush() used to reassign on_connect on
    // every pre-establishment call, silently clobbering such handlers.
    socket_.on_connect = [this, prior = std::move(socket_.on_connect)] {
      if (prior) prior();
      flush();
    };
    socket_.on_writable = [this] { flush(); };
  }

  /// Push any pending output (call after start() or send()).
  void flush() {
    append(pending_, session_.take_output());
    drain_or_buffer(socket_, pending_);
  }

  /// Enforce the session's handshake deadline: one event `timeout` from now
  /// on the backend's clock; if the session is still handshaking it emits
  /// its fatal alert (flushed here) and the stream is torn down. The timer
  /// holds only a weak liveness token: a binding destroyed first (the
  /// FallbackClient redial pattern) leaves the callback a no-op, not a
  /// dangling `this`.
  void arm_handshake_deadline(net::Scheduler& sched, net::Time timeout) {
    if (timeout == 0) return;
    sched.schedule(timeout, [this, alive = std::weak_ptr<const bool>(alive_)] {
      if (alive.expired()) return;
      if (session_.handshake_expired()) {
        flush();
        if (socket_.established()) {
          socket_.close();  // FIN after the alert drains
        } else {
          socket_.reset();
        }
      }
    });
  }

  net::Stream& socket() { return socket_; }

 private:
  Session& session_;
  net::Stream& socket_;
  Bytes pending_;
  std::shared_ptr<const bool> alive_ = std::make_shared<const bool>(true);
};

/// Binds a Middlebox between two streams (downstream toward the client,
/// upstream toward the server).
class MiddleboxBinding {
 public:
  MiddleboxBinding(Middlebox& mbox, net::Stream& downstream, net::Stream& upstream)
      : mbox_(mbox), down_(downstream), up_(upstream) {
    down_.on_data = [this](ByteView data) {
      mbox_.feed_from_client(data);
      flush();
    };
    up_.on_data = [this](ByteView data) {
      mbox_.feed_from_server(data);
      flush();
    };
    down_.on_connect = [this] { flush(); };
    up_.on_connect = [this] { flush(); };
    down_.on_writable = [this] { flush(); };
    up_.on_writable = [this] { flush(); };
    // A dead segment on one side must kill the other, so neither endpoint is
    // left talking to a silently absent peer.
    down_.on_close = [this] {
      if (!up_.closed()) up_.close();
    };
    up_.on_close = [this] {
      if (!down_.closed()) down_.close();
    };
  }

  /// Take whatever the middlebox produced and push it toward both peers.
  /// Symmetric buffering: records already taken from the middlebox are
  /// buffered per direction (`pending_up_`/`pending_down_`) whenever the
  /// destination is not established or not writable, and drained on the
  /// connect/writable edges — never silently discarded. (flush() used to
  /// drop take_to_server()/take_to_client() output on !writable(), and
  /// buffered only the upstream pre-connect case; real-socket short-write
  /// backpressure makes that loss deterministic.)
  void flush() {
    append(pending_up_, mbox_.take_to_server());
    append(pending_down_, mbox_.take_to_client());
    drain_or_buffer(up_, pending_up_);
    drain_or_buffer(down_, pending_down_);
  }

  /// Enforce the middlebox's join deadline (demote-to-relay on expiry).
  /// Weak-liveness-guarded like arm_handshake_deadline.
  void arm_join_deadline(net::Scheduler& sched, net::Time timeout) {
    if (timeout == 0) return;
    sched.schedule(timeout, [this, alive = std::weak_ptr<const bool>(alive_)] {
      if (alive.expired()) return;
      if (mbox_.handshake_expired()) flush();
    });
  }

 private:
  Middlebox& mbox_;
  net::Stream& down_;
  net::Stream& up_;
  Bytes pending_up_;
  Bytes pending_down_;
  std::shared_ptr<const bool> alive_ = std::make_shared<const bool>(true);
};

/// Periodic ticket-key rotation driven by the owning loop's scheduler: the
/// control plane's fleet-wide rotation becomes a timer-wheel event instead
/// of an operator calling TicketKeyManager::rotate() by hand. One rotator
/// per process (the manager itself is shared by every server engine); it
/// lives on one loop — rotate() is internally locked, so which loop fires
/// it does not matter. The deliberately-uncancellable timer carries the
/// same weak liveness token as every other binding timer: destroy the
/// rotator and the armed callback degrades to a no-op.
class TicketRotator {
 public:
  /// Arms immediately: the first rotation fires `interval` from now, then
  /// every `interval` after that. A zero interval arms nothing.
  TicketRotator(net::Scheduler& sched, tls::TicketKeyManager& keys, net::Time interval)
      : sched_(sched), keys_(keys), interval_(interval) {
    if (interval_ != 0) rearm();
  }

  /// Rotations fired by this rotator (not the manager's total generation,
  /// which manual rotate() calls also advance).
  std::uint64_t rotations() const { return *count_; }

 private:
  void rearm() {
    sched_.schedule(interval_, [this, alive = std::weak_ptr<std::uint64_t>(count_)] {
      if (alive.expired()) return;
      keys_.rotate();
      ++*count_;
      rearm();
    });
  }

  net::Scheduler& sched_;
  tls::TicketKeyManager& keys_;
  net::Time interval_;
  // Doubles as the liveness token the armed callback holds weakly.
  std::shared_ptr<std::uint64_t> count_ = std::make_shared<std::uint64_t>(0);
};

/// The paper's P5 degradation path as a transport-level policy: dial the
/// middlebox path first; if that mbTLS handshake misses its deadline or its
/// transport dies, tear it down (fatal alert + reset) and redial the origin
/// directly with a fresh end-to-end TLS session that does not announce
/// mbTLS. One fallback attempt — a failed direct dial is a hard failure.
class FallbackClient {
 public:
  struct Config {
    net::Endpoint proxy;   // TCP-level middlebox to dial first
    net::Endpoint origin;  // direct-redial target
    ClientSession::Options options;  // options.handshake_timeout paces both dials
  };

  FallbackClient(net::Transport& transport, Config config)
      : transport_(transport), config_(std::move(config)) {}

  /// Streams are owned by the transport and may outlive this object: drop
  /// every callback that captured `this` (the deadline timer guards itself
  /// via the weak token).
  ~FallbackClient() { unhook(); }

  /// Dial the middlebox path and arm the deadline.
  void start() { dial(config_.proxy, /*announce=*/true); }

  /// The currently active session (the direct one after a fallback).
  ClientSession& session() { return *session_; }
  const ClientSession& session() const { return *session_; }
  bool fell_back() const { return fell_back_; }
  net::Stream& socket() { return *socket_; }

  /// Push pending session output to the active stream (call after send()).
  void flush() {
    if (binding_) binding_->flush();
  }

 private:
  void unhook() {
    // Unhook the previous attempt before tearing it down so stale stream
    // events cannot reach a destroyed binding or session.
    binding_.reset();
    if (socket_) {
      socket_->on_connect = nullptr;
      socket_->on_data = nullptr;
      socket_->on_close = nullptr;
      socket_->on_error = nullptr;
      socket_->on_writable = nullptr;
    }
  }

  void dial(const net::Endpoint& target, bool announce) {
    const std::uint64_t attempt = ++attempt_;
    unhook();
    ClientSession::Options opts = config_.options;
    opts.announce_mbtls = announce;
    if (!announce) opts.tls.rng_label += "/fallback";  // fresh randomness on redial
    session_ = std::make_unique<ClientSession>(std::move(opts));
    socket_ = &transport_.dial(target);
    // The start hook goes in *before* the binding so the binding's
    // constructor chains it ahead of its own pending-drain hook.
    socket_->on_connect = [this] {
      session_->start();
      binding_->flush();
    };
    binding_ = std::make_unique<SocketBinding<ClientSession>>(*session_, *socket_);
    socket_->on_close = [this, attempt] {
      if (attempt != attempt_) return;
      session_->transport_closed();
      maybe_fall_back();
    };
    if (config_.options.handshake_timeout != 0) {
      transport_.scheduler().schedule(
          config_.options.handshake_timeout,
          [this, attempt, alive = std::weak_ptr<const bool>(alive_)] {
            if (alive.expired()) return;  // client destroyed before the deadline
            if (attempt != attempt_) return;
            if (session_->handshake_expired()) {
              binding_->flush();
              if (socket_->established()) {
                socket_->close();
              } else {
                socket_->reset();
              }
              maybe_fall_back();
            }
          });
    }
  }

  void maybe_fall_back() {
    if (fell_back_ || !session_->failed() || !config_.options.fallback_to_direct_tls) return;
    fell_back_ = true;
    const trace::Emitter em(config_.options.trace_sink, config_.options.trace_actor);
    em.instant("mbtls", "fallback.redial", {{"attempt", attempt_ + 1}});
    dial(config_.origin, /*announce=*/false);
  }

  net::Transport& transport_;
  Config config_;
  std::unique_ptr<ClientSession> session_;
  std::unique_ptr<SocketBinding<ClientSession>> binding_;
  net::Stream* socket_ = nullptr;
  std::uint64_t attempt_ = 0;
  bool fell_back_ = false;
  std::shared_ptr<const bool> alive_ = std::make_shared<const bool>(true);
};

}  // namespace mbtls::mb
