// Glue between the sans-IO mbTLS components and the simulated network's TCP
// sockets. Each binder wires a component's input to socket data events and
// flushes its pending output back to the socket after every event.
//
// The bindings also own the failure surface the sans-IO cores cannot see:
// virtual-time handshake deadlines (sessions have no clock), propagation of
// abnormal TCP teardown into explicit session errors, and the P5 degradation
// path (FallbackClient) that redials the origin directly when the middlebox
// path dies mid-handshake.
#pragma once

#include "mbtls/client.h"
#include "mbtls/middlebox.h"
#include "mbtls/server.h"
#include "net/tcp.h"
#include "tls/engine.h"

namespace mbtls::mb {

/// Binds anything with feed()/take_output() (ClientSession, ServerSession,
/// tls::Engine) to one socket.
template <typename Session>
class SocketBinding {
 public:
  SocketBinding(Session& session, net::Socket& socket) : session_(session), socket_(socket) {
    socket_.on_data = [this](ByteView data) {
      session_.feed(data);
      flush();
    };
    socket_.on_close = [this] {
      // Abnormal or premature teardown must surface as a session error, not
      // a hang (sessions that already saw close_notify ignore this).
      if constexpr (requires { session_.transport_closed(); }) {
        session_.transport_closed();
      }
    };
  }

  /// Push any pending output (call after start() or send()).
  void flush() {
    const Bytes out = session_.take_output();
    if (out.empty()) return;
    if (!socket_.writable()) return;  // output raced a teardown: nowhere to go
    if (socket_.established()) {
      socket_.send(out);
    } else {
      pending_ = concat({pending_, out});
      socket_.on_connect = [this] { drain_pending(); };
    }
  }

  /// Enforce the session's handshake deadline on the virtual clock: one
  /// event `timeout` from now; if the session is still handshaking it emits
  /// its fatal alert (flushed here) and the socket is torn down.
  void arm_handshake_deadline(net::Simulator& sim, net::Time timeout) {
    if (timeout == 0) return;
    sim.schedule(timeout, [this] {
      if (session_.handshake_expired()) {
        flush();
        if (socket_.established()) {
          socket_.close();  // FIN after the alert drains
        } else {
          socket_.reset();
        }
      }
    });
  }

  net::Socket& socket() { return socket_; }

 private:
  void drain_pending() {
    if (!pending_.empty()) {
      socket_.send(pending_);
      pending_.clear();
    }
  }

  Session& session_;
  net::Socket& socket_;
  Bytes pending_;
};

/// Binds a Middlebox between two sockets (downstream toward the client,
/// upstream toward the server).
class MiddleboxBinding {
 public:
  MiddleboxBinding(Middlebox& mbox, net::Socket& downstream, net::Socket& upstream)
      : mbox_(mbox), down_(downstream), up_(upstream) {
    down_.on_data = [this](ByteView data) {
      mbox_.feed_from_client(data);
      flush();
    };
    up_.on_data = [this](ByteView data) {
      mbox_.feed_from_server(data);
      flush();
    };
    up_.on_connect = [this] { flush(); };
    // A dead segment on one side must kill the other, so neither endpoint is
    // left talking to a silently absent peer.
    down_.on_close = [this] {
      if (!up_.closed()) up_.close();
    };
    up_.on_close = [this] {
      if (!down_.closed()) down_.close();
    };
  }

  void flush() {
    const Bytes to_server = mbox_.take_to_server();
    if (!to_server.empty() && up_.writable()) {
      if (up_.established()) {
        up_.send(to_server);
      } else {
        pending_up_ = concat({pending_up_, to_server});
      }
    }
    if (!pending_up_.empty() && up_.established() && up_.writable()) {
      up_.send(pending_up_);
      pending_up_.clear();
    }
    const Bytes to_client = mbox_.take_to_client();
    if (!to_client.empty() && down_.writable()) down_.send(to_client);
  }

  /// Enforce the middlebox's join deadline (demote-to-relay on expiry).
  void arm_join_deadline(net::Simulator& sim, net::Time timeout) {
    if (timeout == 0) return;
    sim.schedule(timeout, [this] {
      if (mbox_.handshake_expired()) flush();
    });
  }

 private:
  Middlebox& mbox_;
  net::Socket& down_;
  net::Socket& up_;
  Bytes pending_up_;
};

/// The paper's P5 degradation path as a transport-level policy: dial the
/// middlebox path first; if that mbTLS handshake misses its deadline or its
/// transport dies, tear it down (fatal alert + reset) and redial the origin
/// directly with a fresh end-to-end TLS session that does not announce
/// mbTLS. One fallback attempt — a failed direct dial is a hard failure.
class FallbackClient {
 public:
  struct Config {
    net::NodeId proxy = 0;  // TCP-level middlebox to dial first
    net::Port proxy_port = 443;
    net::NodeId origin = 0;  // direct-redial target
    net::Port origin_port = 443;
    ClientSession::Options options;  // options.handshake_timeout paces both dials
  };

  FallbackClient(net::Host& host, Config config) : host_(host), config_(std::move(config)) {}

  /// Dial the middlebox path and arm the deadline.
  void start() { dial(config_.proxy, config_.proxy_port, /*announce=*/true); }

  /// The currently active session (the direct one after a fallback).
  ClientSession& session() { return *session_; }
  const ClientSession& session() const { return *session_; }
  bool fell_back() const { return fell_back_; }
  net::Socket& socket() { return *socket_; }

  /// Push pending session output to the active socket (call after send()).
  void flush() {
    if (binding_) binding_->flush();
  }

 private:
  void dial(net::NodeId node, net::Port port, bool announce) {
    const std::uint64_t attempt = ++attempt_;
    // Unhook the previous attempt before tearing it down so stale socket
    // events cannot reach a destroyed binding or session.
    binding_.reset();
    if (socket_) {
      socket_->on_connect = nullptr;
      socket_->on_data = nullptr;
      socket_->on_close = nullptr;
    }
    ClientSession::Options opts = config_.options;
    opts.announce_mbtls = announce;
    if (!announce) opts.tls.rng_label += "/fallback";  // fresh randomness on redial
    session_ = std::make_unique<ClientSession>(std::move(opts));
    socket_ = &host_.connect(node, port);
    binding_ = std::make_unique<SocketBinding<ClientSession>>(*session_, *socket_);
    socket_->on_connect = [this] {
      session_->start();
      binding_->flush();
    };
    socket_->on_close = [this, attempt] {
      if (attempt != attempt_) return;
      session_->transport_closed();
      maybe_fall_back();
    };
    if (config_.options.handshake_timeout != 0) {
      host_.simulator().schedule(config_.options.handshake_timeout, [this, attempt] {
        if (attempt != attempt_) return;
        if (session_->handshake_expired()) {
          binding_->flush();
          if (socket_->established()) {
            socket_->close();
          } else {
            socket_->reset();
          }
          maybe_fall_back();
        }
      });
    }
  }

  void maybe_fall_back() {
    if (fell_back_ || !session_->failed() || !config_.options.fallback_to_direct_tls) return;
    fell_back_ = true;
    const trace::Emitter em(config_.options.trace_sink, config_.options.trace_actor);
    em.instant("mbtls", "fallback.redial", {{"attempt", attempt_ + 1}});
    dial(config_.origin, config_.origin_port, /*announce=*/false);
  }

  net::Host& host_;
  Config config_;
  std::unique_ptr<ClientSession> session_;
  std::unique_ptr<SocketBinding<ClientSession>> binding_;
  net::Socket* socket_ = nullptr;
  std::uint64_t attempt_ = 0;
  bool fell_back_ = false;
};

}  // namespace mbtls::mb
