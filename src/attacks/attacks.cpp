#include "attacks/attacks.h"

#include <memory>

#include "baselines/naive_shared_key.h"
#include "crypto/hkdf.h"
#include "crypto/sha2.h"
#include "baselines/split_tls.h"
#include "mbox/cache.h"
#include "http/http.h"
#include "mbtls/client.h"
#include "mbtls/middlebox.h"
#include "mbtls/server.h"
#include "tls/engine.h"
#include "x509/certificate.h"

namespace mbtls::attacks {

const char* to_string(Protocol p) {
  switch (p) {
    case Protocol::kNaiveKeyShare: return "naive key-share TLS";
    case Protocol::kSplitTls: return "split TLS";
    case Protocol::kMbtlsNoSgx: return "mbTLS (no SGX)";
    case Protocol::kMbtls: return "mbTLS + SGX";
  }
  return "?";
}

namespace {

using baselines::NaiveKeyShareClient;
using baselines::NaiveKeyShareMiddlebox;
using baselines::SplitTlsMiddlebox;
using mb::ClientSession;
using mb::Middlebox;
using mb::ServerSession;

// ----------------------------------------------------------- shared fixtures

crypto::Drbg& rng() {
  static crypto::Drbg r("attacks", 0);
  return r;
}

const x509::CertificateAuthority& web_ca() {
  static const auto ca =
      x509::CertificateAuthority::create("Web Root CA", x509::KeyType::kEcdsaP256, rng());
  return ca;
}

const x509::CertificateAuthority& intercept_ca() {
  static const auto ca = x509::CertificateAuthority::create("Corp Interception CA",
                                                            x509::KeyType::kEcdsaP256, rng());
  return ca;
}

struct Identity {
  std::shared_ptr<x509::PrivateKey> key;
  std::vector<x509::Certificate> chain;
};

Identity issue_identity(const x509::CertificateAuthority& ca, const std::string& cn) {
  Identity id;
  id.key = std::make_shared<x509::PrivateKey>(
      x509::PrivateKey::generate(x509::KeyType::kEcdsaP256, rng()));
  x509::CertRequest req;
  req.subject_cn = cn;
  req.san_dns = {cn};
  req.not_after = 2524607999;
  req.key = id.key->public_key();
  id.chain = {ca.issue(req, rng())};
  return id;
}

const Identity& server_identity() {
  static const Identity id = issue_identity(web_ca(), "origin.example");
  return id;
}

const Identity& mbox_identity() {
  static const Identity id = issue_identity(web_ca(), "proxy.example");
  return id;
}

// A byte-stream tap: observe and/or rewrite the bytes crossing one segment
// in one direction. Identity when empty.
using Tap = std::function<Bytes(Bytes)>;

/// One client — one middlebox — one server session with taps on both
/// segments, abstracted over the protocol under test. The sgx::Platform is
/// the middlebox infrastructure provider's machine.
class Scenario {
 public:
  virtual ~Scenario() = default;

  virtual void start() = 0;
  virtual bool healthy() const = 0;  // both endpoints content
  virtual void client_send(ByteView data) = 0;
  virtual Bytes server_received() = 0;
  virtual void server_send(ByteView data) = 0;
  virtual Bytes client_received() = 0;
  /// The end-to-end (bridge/primary) client-write key — the secret the MIP
  /// memory attack hunts for.
  virtual Bytes bridge_key() const = 0;

  Tap tap_c2s_seg1, tap_c2s_seg2, tap_s2c_seg1, tap_s2c_seg2;
  sgx::Platform platform;  // the MIP machine hosting the middlebox

  void pump(int max_iters = 300) {
    for (int i = 0; i < max_iters; ++i) {
      if (!step()) break;
    }
  }

 protected:
  virtual Bytes client_out() = 0;
  virtual void client_in(ByteView) = 0;
  virtual void mbox_from_client(ByteView) = 0;
  virtual Bytes mbox_to_server() = 0;
  virtual void mbox_from_server(ByteView) = 0;
  virtual Bytes mbox_to_client() = 0;
  virtual Bytes server_out() = 0;
  virtual void server_in(ByteView) = 0;
  /// Extra per-step plumbing (the naive baseline's control channel).
  virtual bool extra_step() { return false; }

  bool step() {
    bool moved = extra_step();
    auto shuttle = [&moved](Bytes data, const Tap& tap, auto&& sink) {
      if (data.empty()) return;
      if (tap) data = tap(std::move(data));
      if (data.empty()) return;
      moved = true;
      sink(data);
    };
    shuttle(client_out(), tap_c2s_seg1, [&](const Bytes& d) { mbox_from_client(d); });
    shuttle(mbox_to_server(), tap_c2s_seg2, [&](const Bytes& d) { server_in(d); });
    shuttle(server_out(), tap_s2c_seg2, [&](const Bytes& d) { mbox_from_server(d); });
    shuttle(mbox_to_client(), tap_s2c_seg1, [&](const Bytes& d) { client_in(d); });
    return moved;
  }
};

// -------------------------------------------------------------------- mbTLS

class MbtlsScenario : public Scenario {
 public:
  MbtlsScenario(bool with_sgx, Middlebox::Processor processor = {},
                const std::string& expected_code = "header-proxy-v1.2",
                const std::string& actual_code = "header-proxy-v1.2") {
    if (with_sgx) enclave_ = &platform.launch(actual_code);

    ClientSession::Options copts;
    copts.tls.trust_anchors = {web_ca().root()};
    copts.tls.server_name = "origin.example";
    copts.tls.rng_label = "atk-client";
    copts.tls.rng_seed = seed_++;
    copts.require_middlebox_attestation = with_sgx;
    if (with_sgx) copts.expected_middlebox_measurement = sgx::measure(expected_code);
    client_ = std::make_unique<ClientSession>(std::move(copts));

    ServerSession::Options sopts;
    sopts.tls.private_key = server_identity().key;
    sopts.tls.certificate_chain = server_identity().chain;
    sopts.tls.trust_anchors = {web_ca().root()};
    sopts.tls.rng_label = "atk-server";
    sopts.tls.rng_seed = seed_++;
    server_ = std::make_unique<ServerSession>(std::move(sopts));

    Middlebox::Options mopts;
    mopts.name = "proxy.example";
    mopts.side = Middlebox::Side::kClientSide;
    mopts.private_key = mbox_identity().key;
    mopts.certificate_chain = mbox_identity().chain;
    mopts.enclave = enclave_;
    mopts.untrusted_store = &platform.untrusted_memory();
    mopts.processor = std::move(processor);
    mbox_ = std::make_unique<Middlebox>(std::move(mopts));
  }

  void start() override { client_->start(); }
  bool healthy() const override { return client_->established() && server_->established(); }
  void client_send(ByteView d) override { client_->send(d); }
  Bytes server_received() override { return server_->take_app_data(); }
  void server_send(ByteView d) override { server_->send(d); }
  Bytes client_received() override { return client_->take_app_data(); }
  Bytes bridge_key() const override {
    return client_->primary().connection_keys().keys.client_write.key;
  }

  ClientSession& client() { return *client_; }
  ServerSession& server() { return *server_; }
  Middlebox& middlebox() { return *mbox_; }

 protected:
  Bytes client_out() override { return client_->take_output(); }
  void client_in(ByteView d) override { client_->feed(d); }
  void mbox_from_client(ByteView d) override { mbox_->feed_from_client(d); }
  Bytes mbox_to_server() override { return mbox_->take_to_server(); }
  void mbox_from_server(ByteView d) override { mbox_->feed_from_server(d); }
  Bytes mbox_to_client() override { return mbox_->take_to_client(); }
  Bytes server_out() override { return server_->take_output(); }
  void server_in(ByteView d) override { server_->feed(d); }

 private:
  static inline std::uint64_t seed_ = 1000;
  sgx::Enclave* enclave_ = nullptr;
  std::unique_ptr<ClientSession> client_;
  std::unique_ptr<ServerSession> server_;
  std::unique_ptr<Middlebox> mbox_;
};

// ---------------------------------------------------------------- split TLS

class SplitScenario : public Scenario {
 public:
  explicit SplitScenario(Middlebox::Processor processor = {}, bool verify_upstream = true,
                         Identity upstream_identity = server_identity()) {
    tls::Config ccfg;
    ccfg.is_client = true;
    // The client was provisioned with the interception root (plus the web
    // root) — the managed-device deployment model.
    ccfg.trust_anchors = {intercept_ca().root(), web_ca().root()};
    ccfg.server_name = "origin.example";
    ccfg.rng_label = "atk-split-client";
    ccfg.rng_seed = seed_++;
    client_ = std::make_unique<tls::Engine>(std::move(ccfg));

    SplitTlsMiddlebox::Options mopts;
    mopts.ca = &intercept_ca();
    mopts.upstream_trust_anchors = {web_ca().root()};
    mopts.verify_upstream = verify_upstream;
    mopts.processor = std::move(processor);
    mopts.secret_store = &platform.untrusted_memory();
    mopts.rng_seed = seed_++;
    mbox_ = std::make_unique<SplitTlsMiddlebox>(std::move(mopts));

    tls::Config scfg;
    scfg.is_client = false;
    scfg.private_key = upstream_identity.key;
    scfg.certificate_chain = upstream_identity.chain;
    scfg.rng_label = "atk-split-server";
    scfg.rng_seed = seed_++;
    server_ = std::make_unique<tls::Engine>(std::move(scfg));
  }

  void start() override { client_->start(); }
  bool healthy() const override {
    return client_->handshake_done() && server_->handshake_done() && !mbox_->failed();
  }
  void client_send(ByteView d) override { client_->send(d); }
  Bytes server_received() override { return server_->take_plaintext(); }
  void server_send(ByteView d) override { server_->send(d); }
  Bytes client_received() override { return client_->take_plaintext(); }
  Bytes bridge_key() const override {
    // The client-side session's key (held by the interception proxy).
    return client_->connection_keys().keys.client_write.key;
  }

 protected:
  Bytes client_out() override { return client_->take_output(); }
  void client_in(ByteView d) override { client_->feed(d); }
  void mbox_from_client(ByteView d) override { mbox_->feed_from_client(d); }
  Bytes mbox_to_server() override { return mbox_->take_to_server(); }
  void mbox_from_server(ByteView d) override { mbox_->feed_from_server(d); }
  Bytes mbox_to_client() override { return mbox_->take_to_client(); }
  Bytes server_out() override { return server_->take_output(); }
  void server_in(ByteView d) override { server_->feed(d); }

 private:
  static inline std::uint64_t seed_ = 2000;
  std::unique_ptr<tls::Engine> client_;
  std::unique_ptr<SplitTlsMiddlebox> mbox_;
  std::unique_ptr<tls::Engine> server_;
};

// ------------------------------------------------------------------- naive

class NaiveScenario : public Scenario {
 public:
  explicit NaiveScenario(Middlebox::Processor processor = {}) {
    NaiveKeyShareClient::Options copts;
    copts.tls.is_client = true;
    copts.tls.trust_anchors = {web_ca().root()};
    copts.tls.server_name = "origin.example";
    copts.tls.rng_label = "atk-naive-client";
    copts.tls.rng_seed = seed_++;
    copts.control_tls.is_client = true;
    copts.control_tls.trust_anchors = {web_ca().root()};
    copts.control_tls.server_name = "proxy.example";
    copts.control_tls.rng_label = "atk-naive-control";
    copts.control_tls.rng_seed = seed_++;
    client_ = std::make_unique<NaiveKeyShareClient>(std::move(copts));

    NaiveKeyShareMiddlebox::Options mopts;
    mopts.private_key = mbox_identity().key;
    mopts.certificate_chain = mbox_identity().chain;
    mopts.untrusted_store = &platform.untrusted_memory();
    mopts.processor = std::move(processor);
    mbox_ = std::make_unique<NaiveKeyShareMiddlebox>(std::move(mopts));

    tls::Config scfg;
    scfg.is_client = false;
    scfg.private_key = server_identity().key;
    scfg.certificate_chain = server_identity().chain;
    scfg.rng_label = "atk-naive-server";
    scfg.rng_seed = seed_++;
    server_ = std::make_unique<tls::Engine>(std::move(scfg));
  }

  void start() override { client_->start(); }
  bool healthy() const override {
    return client_->primary().handshake_done() && server_->handshake_done();
  }
  void client_send(ByteView d) override { client_->primary().send(d); }
  Bytes server_received() override { return server_->take_plaintext(); }
  void server_send(ByteView d) override { server_->send(d); }
  Bytes client_received() override { return client_->primary().take_plaintext(); }
  Bytes bridge_key() const override {
    return const_cast<NaiveKeyShareClient&>(*client_)
        .primary()
        .connection_keys()
        .keys.client_write.key;
  }
  bool keys_delivered() const { return mbox_->has_keys(); }

 protected:
  Bytes client_out() override { return client_->take_output(); }
  void client_in(ByteView d) override { client_->feed(d); }
  void mbox_from_client(ByteView d) override { mbox_->feed_from_client(d); }
  Bytes mbox_to_server() override { return mbox_->take_to_server(); }
  void mbox_from_server(ByteView d) override { mbox_->feed_from_server(d); }
  Bytes mbox_to_client() override { return mbox_->take_to_client(); }
  Bytes server_out() override { return server_->take_output(); }
  void server_in(ByteView d) override { server_->feed(d); }

  bool extra_step() override {
    // Control channel between client and middlebox (separate TLS session).
    bool moved = false;
    Bytes a = client_->take_control_output();
    if (!a.empty()) {
      moved = true;
      mbox_->feed_control(a);
    }
    Bytes b = mbox_->take_control_output();
    if (!b.empty()) {
      moved = true;
      client_->feed_control(b);
    }
    return moved;
  }

 private:
  static inline std::uint64_t seed_ = 3000;
  std::unique_ptr<NaiveKeyShareClient> client_;
  std::unique_ptr<NaiveKeyShareMiddlebox> mbox_;
  std::unique_ptr<tls::Engine> server_;
};

std::unique_ptr<Scenario> make_scenario(Protocol protocol, Middlebox::Processor processor = {}) {
  switch (protocol) {
    case Protocol::kNaiveKeyShare: return std::make_unique<NaiveScenario>(std::move(processor));
    case Protocol::kSplitTls: return std::make_unique<SplitScenario>(std::move(processor));
    case Protocol::kMbtlsNoSgx:
      return std::make_unique<MbtlsScenario>(false, std::move(processor));
    case Protocol::kMbtls: return std::make_unique<MbtlsScenario>(true, std::move(processor));
  }
  return nullptr;
}

bool contains(ByteView haystack, ByteView needle) {
  if (needle.empty() || haystack.size() < needle.size()) return false;
  for (std::size_t i = 0; i + needle.size() <= haystack.size(); ++i) {
    if (std::equal(needle.begin(), needle.end(), haystack.begin() + static_cast<std::ptrdiff_t>(i)))
      return true;
  }
  return false;
}

/// Split a capture buffer into raw records.
std::vector<Bytes> records_of(const Bytes& capture) {
  std::vector<Bytes> out;
  tls::RecordReader reader;
  reader.feed(capture);
  try {
    while (auto raw = reader.take_raw()) out.push_back(std::move(*raw));
  } catch (const tls::ProtocolError&) {
  }
  return out;
}

}  // namespace

// ---------------------------------------------------------------- attacks

bool wire_eavesdrop(Protocol protocol) {
  auto scenario = make_scenario(protocol);
  Bytes captured;
  scenario->tap_c2s_seg1 = scenario->tap_c2s_seg2 = [&](Bytes d) {
    append(captured, d);
    return d;
  };
  scenario->start();
  scenario->pump();
  if (!scenario->healthy()) return false;
  const auto secret = to_bytes(std::string_view("TOP-SECRET-PAYLOAD-7392"));
  scenario->client_send(secret);
  scenario->pump();
  if (!contains(scenario->server_received(), secret)) return false;  // delivery sanity
  return contains(captured, secret);
}

bool mip_reads_keys_from_memory(Protocol protocol) {
  auto scenario = make_scenario(protocol);
  scenario->start();
  scenario->pump();
  if (!scenario->healthy()) return false;
  scenario->client_send(to_bytes(std::string_view("warm up the data path")));
  scenario->pump();
  Bytes key = scenario->bridge_key();
  const bool found = !scenario->platform.adversary_find_secret(key).empty();
  secure_wipe(key);
  return found;
}

bool record_compare(Protocol protocol) {
  auto scenario = make_scenario(protocol);  // identity processor: no changes
  scenario->start();
  scenario->pump();
  if (!scenario->healthy()) return false;

  Bytes seg1, seg2;
  scenario->tap_c2s_seg1 = [&](Bytes d) {
    append(seg1, d);
    return d;
  };
  scenario->tap_c2s_seg2 = [&](Bytes d) {
    append(seg2, d);
    return d;
  };
  scenario->client_send(to_bytes(std::string_view("unmodified payload")));
  scenario->pump();
  if (scenario->server_received().empty()) return false;

  // The adversary wins if a record leaving the middlebox is bit-identical to
  // one entering it — it then knows the middlebox did not modify the data.
  for (const auto& in_rec : records_of(seg1)) {
    if (in_rec[0] != static_cast<std::uint8_t>(tls::ContentType::kApplicationData)) continue;
    for (const auto& out_rec : records_of(seg2)) {
      if (in_rec == out_rec) return true;
    }
  }
  return false;
}

bool decrypt_recording_with_leaked_key(Protocol protocol) {
  // Record everything on segment 2 (beyond the middlebox).
  auto scenario = make_scenario(protocol);
  Bytes recording;
  scenario->tap_c2s_seg2 = [&](Bytes d) {
    append(recording, d);
    return d;
  };
  scenario->start();
  scenario->pump();
  if (!scenario->healthy()) return false;
  const auto secret = to_bytes(std::string_view("FORWARD-SECRET-DATA-1187"));
  scenario->client_send(secret);
  scenario->pump();
  if (!contains(scenario->server_received(), secret)) return false;

  // "Later": the server's long-term private key leaks. The strongest
  // derivations available to the adversary are hashes of the key itself and
  // of key||transcript — with ephemeral (EC)DHE none of them is the session
  // key. Try each as an AES key against every recorded data record.
  const auto& key = *server_identity().key;
  Bytes long_term;
  if (key.type() == x509::KeyType::kEcdsaP256) {
    long_term = key.ec().private_key.to_bytes();
  } else {
    long_term = key.rsa().d.to_bytes();
  }
  std::vector<Bytes> candidates;
  candidates.push_back(crypto::Sha256::digest(long_term));
  candidates.push_back(crypto::hkdf(crypto::HashAlgo::kSha256, {}, long_term,
                                    to_bytes(std::string_view("key expansion")), 32));
  Bytes keyed_transcript = long_term;
  append(keyed_transcript, recording);
  candidates.push_back(crypto::Sha256::digest(keyed_transcript));

  for (const auto& candidate : candidates) {
    for (const auto& rec : records_of(recording)) {
      if (rec[0] != static_cast<std::uint8_t>(tls::ContentType::kApplicationData)) continue;
      // Try every (iv-guess, seq-guess) the format permits.
      for (std::uint64_t seq = 0; seq < 4; ++seq) {
        tls::HopChannel channel({candidate, Bytes(4, 0)}, seq);
        auto opened = channel.open(tls::ContentType::kApplicationData,
                                   ByteView(rec).subspan(tls::kRecordHeaderSize));
        if (opened && contains(*opened, secret)) return true;
      }
    }
  }
  return false;
}

bool modify_on_wire(Protocol protocol) {
  auto scenario = make_scenario(protocol);
  scenario->start();
  scenario->pump();
  if (!scenario->healthy()) return false;

  scenario->tap_c2s_seg2 = [&](Bytes d) {
    auto recs = records_of(d);
    Bytes out;
    for (auto& rec : recs) {
      if (rec[0] == static_cast<std::uint8_t>(tls::ContentType::kApplicationData)) {
        rec[rec.size() - 1] ^= 0x01;  // flip a ciphertext byte
      }
      append(out, rec);
    }
    return out.empty() ? d : out;
  };
  const auto payload = to_bytes(std::string_view("pay alice $10"));
  scenario->client_send(payload);
  scenario->pump();
  const Bytes received = scenario->server_received();
  // Attack succeeds only if the server accepted data that differs from what
  // was sent (silent corruption). Rejection / connection failure = defended.
  return !received.empty() && !equal(received, payload);
}

bool replay_on_wire(Protocol protocol) {
  auto scenario = make_scenario(protocol);
  scenario->start();
  scenario->pump();
  if (!scenario->healthy()) return false;

  Bytes captured_record;
  scenario->tap_c2s_seg2 = [&](Bytes d) {
    if (captured_record.empty()) {
      for (const auto& rec : records_of(d)) {
        if (rec[0] == static_cast<std::uint8_t>(tls::ContentType::kApplicationData)) {
          captured_record = rec;
          break;
        }
      }
    }
    return d;
  };
  const auto payload = to_bytes(std::string_view("debit $100 once"));
  scenario->client_send(payload);
  scenario->pump();
  const Bytes first = scenario->server_received();
  if (!equal(first, payload) || captured_record.empty()) return false;

  // Replay the captured record straight into the server.
  scenario->tap_c2s_seg2 = {};
  struct Injector : Scenario {};  // (no-op; we reuse the existing scenario)
  // Feed via the normal path: pretend the record arrives again from the mbox.
  // We bypass taps deliberately — the attacker injects at the server's door.
  scenario->tap_c2s_seg2 = nullptr;
  // Direct injection:
  // (Scenario exposes server_in via pump only; emulate by a one-shot tap on
  // an empty send.)
  bool injected = false;
  scenario->tap_c2s_seg2 = [&](Bytes d) {
    if (!injected) {
      injected = true;
      Bytes out = captured_record;
      append(out, d);
      return out;
    }
    return d;
  };
  scenario->client_send(to_bytes(std::string_view("x")));
  scenario->pump();
  const Bytes second = scenario->server_received();
  // Attack succeeds if the replayed payload was accepted a second time.
  return contains(second, payload);
}

bool skip_middlebox(Protocol protocol) {
  // The middlebox is a mandatory filter: it tags everything it forwards.
  auto filter = [](bool c2s, ByteView data) {
    Bytes out = to_bytes(data);
    if (c2s) append(out, to_bytes(std::string_view(" [FILTERED]")));
    return out;
  };
  auto scenario = make_scenario(protocol, filter);
  scenario->start();
  scenario->pump();
  if (!scenario->healthy()) return false;

  // Adversary: capture the client's record before the middlebox, suppress
  // it, and deliver the original bytes directly to the server.
  Bytes stolen;
  scenario->tap_c2s_seg1 = [&](Bytes d) {
    auto recs = records_of(d);
    Bytes pass;
    for (auto& rec : recs) {
      if (stolen.empty() &&
          rec[0] == static_cast<std::uint8_t>(tls::ContentType::kApplicationData)) {
        stolen = rec;  // suppressed from the middlebox path
        continue;
      }
      append(pass, rec);
    }
    return recs.empty() ? d : pass;
  };
  bool injected = false;
  scenario->tap_c2s_seg2 = [&](Bytes d) {
    if (!stolen.empty() && !injected) {
      injected = true;
      Bytes out = stolen;
      append(out, d);
      return out;
    }
    return d;
  };
  const auto payload = to_bytes(std::string_view("malware sample"));
  scenario->client_send(payload);
  scenario->pump();
  // The injection tap only fires when bytes cross segment 2, so give it a
  // carrier record (the suppressed record left that segment silent).
  scenario->client_send(to_bytes(std::string_view("carrier")));
  scenario->pump();
  const Bytes received = scenario->server_received();
  // Attack succeeds if the server accepted the payload WITHOUT the filter
  // tag — i.e., the record truly skipped the middlebox.
  return contains(received, payload) &&
         !contains(received, to_bytes(std::string_view("[FILTERED]")));
}

bool run_wrong_middlebox_code(Protocol protocol) {
  if (protocol == Protocol::kMbtls) {
    // The MIP swaps the MSP's proxy for its own build; the client expected
    // the genuine measurement.
    MbtlsScenario scenario(true, {}, "header-proxy-v1.2", "header-proxy-EVIL");
    scenario.start();
    scenario.pump();
    // Attack succeeds if the session established anyway.
    return scenario.healthy();
  }
  // Without attestation nothing binds the code identity: the swapped
  // middlebox joins and reads data.
  auto scenario = make_scenario(protocol);
  scenario->start();
  scenario->pump();
  return scenario->healthy();
}

bool replay_attestation() {
  // Session 1: a legitimate attested server; capture the SGXAttestation
  // handshake message off the wire.
  sgx::Platform platform;
  sgx::Enclave& enclave = platform.launch("attested-server-v1");
  Bytes captured_attestation_msg;
  {
    tls::Config ccfg;
    ccfg.is_client = true;
    ccfg.trust_anchors = {web_ca().root()};
    ccfg.server_name = "origin.example";
    ccfg.request_attestation = true;
    ccfg.expected_measurement = sgx::measure("attested-server-v1");
    ccfg.rng_label = "replay-c1";
    tls::Engine client(ccfg);
    tls::Config scfg;
    scfg.is_client = false;
    scfg.private_key = server_identity().key;
    scfg.certificate_chain = server_identity().chain;
    scfg.enclave = &enclave;
    scfg.rng_label = "replay-s1";
    tls::Engine server(scfg);
    client.start();
    for (int i = 0; i < 10; ++i) {
      Bytes a = client.take_output();
      Bytes b = server.take_output();
      if (a.empty() && b.empty()) break;
      if (!b.empty()) {
        // Sniff the server flight for the attestation message.
        tls::RecordReader reader;
        reader.feed(b);
        while (auto rec = reader.next()) {
          if (rec->type == tls::ContentType::kHandshake && !rec->payload.empty() &&
              rec->payload[0] == static_cast<std::uint8_t>(tls::HandshakeType::kSgxAttestation)) {
            captured_attestation_msg = rec->payload;
          }
        }
        client.feed(b);
      }
      if (!a.empty()) server.feed(a);
    }
    if (captured_attestation_msg.empty() || !client.handshake_done()) return false;
  }

  // Session 2: a NON-attested server; a MITM splices the stale quote into
  // the flight right before ServerHelloDone.
  tls::Config ccfg;
  ccfg.is_client = true;
  ccfg.trust_anchors = {web_ca().root()};
  ccfg.server_name = "origin.example";
  ccfg.request_attestation = true;
  ccfg.expected_measurement = sgx::measure("attested-server-v1");
  ccfg.rng_label = "replay-c2";
  tls::Engine client(ccfg);
  tls::Config scfg;
  scfg.is_client = false;
  scfg.private_key = server_identity().key;
  scfg.certificate_chain = server_identity().chain;
  scfg.rng_label = "replay-s2";
  tls::Engine server(scfg);
  client.start();
  for (int i = 0; i < 10; ++i) {
    Bytes a = client.take_output();
    Bytes b = server.take_output();
    if (a.empty() && b.empty()) break;
    if (!b.empty()) {
      // MITM: insert the captured attestation record before ServerHelloDone.
      tls::RecordReader reader;
      reader.feed(b);
      Bytes rewritten;
      while (auto raw = reader.take_raw()) {
        const bool is_shd =
            (*raw)[0] == static_cast<std::uint8_t>(tls::ContentType::kHandshake) &&
            raw->size() > tls::kRecordHeaderSize &&
            (*raw)[tls::kRecordHeaderSize] ==
                static_cast<std::uint8_t>(tls::HandshakeType::kServerHelloDone);
        if (is_shd) {
          append(rewritten, tls::frame_plaintext_record(tls::ContentType::kHandshake,
                                                        captured_attestation_msg));
        }
        append(rewritten, *raw);
      }
      client.feed(rewritten);
    }
    if (!a.empty()) server.feed(a);
  }
  // Attack succeeds if the client accepted the stale quote.
  return client.handshake_done() && client.peer_attested();
}

bool impersonate_server(Protocol protocol) {
  // An impostor with a certificate for the right name from an unaccepted CA.
  static crypto::Drbg impostor_rng("impostor", 0);
  static const auto impostor_ca =
      x509::CertificateAuthority::create("Impostor CA", x509::KeyType::kEcdsaP256, impostor_rng);
  Identity impostor;
  impostor.key = std::make_shared<x509::PrivateKey>(
      x509::PrivateKey::generate(x509::KeyType::kEcdsaP256, impostor_rng));
  x509::CertRequest req;
  req.subject_cn = "origin.example";
  req.san_dns = {"origin.example"};
  req.not_after = 2524607999;
  req.key = impostor.key->public_key();
  impostor.chain = {impostor_ca.issue(req, impostor_rng)};

  const auto secret = to_bytes(std::string_view("CREDENTIALS hunter2"));

  if (protocol == Protocol::kSplitTls) {
    // The widely-observed misconfiguration: the proxy skips upstream
    // verification, so the client has no way to notice the impostor.
    SplitScenario scenario({}, /*verify_upstream=*/false, impostor);
    scenario.start();
    scenario.pump();
    if (!scenario.healthy()) return false;
    scenario.client_send(secret);
    scenario.pump();
    return contains(scenario.server_received(), secret);
  }

  // For the other protocols, point the client at the impostor directly.
  tls::Config ccfg;
  ccfg.is_client = true;
  ccfg.trust_anchors = {web_ca().root()};
  ccfg.server_name = "origin.example";
  ccfg.rng_label = "impostor-client";
  tls::Engine client(ccfg);
  tls::Config scfg;
  scfg.is_client = false;
  scfg.private_key = impostor.key;
  scfg.certificate_chain = impostor.chain;
  scfg.rng_label = "impostor-server";
  tls::Engine server(scfg);
  client.start();
  for (int i = 0; i < 10; ++i) {
    Bytes a = client.take_output();
    Bytes b = server.take_output();
    if (a.empty() && b.empty()) break;
    if (!a.empty()) server.feed(a);
    if (!b.empty()) client.feed(b);
  }
  return client.handshake_done();
}

bool cache_poisoning() {
  // §4.2: the (malicious) client holds every key on its side of the
  // session, including the bridge keys — so it can forge a "server response"
  // on the cache-to-server hop and poison the shared cache.
  mbox::WebCache cache;
  MbtlsScenario scenario(false, cache.processor());
  scenario.start();
  scenario.pump();
  if (!scenario.healthy()) return false;

  http::Request req;
  req.target = "/popular-page";
  scenario.client_send(req.serialize());
  scenario.pump();
  (void)scenario.server_received();

  // The attacker (the client itself) forges a response sealed with the
  // bridge's server-write keys and injects it on the mbox-server segment
  // while dropping the real response.
  const auto keys = scenario.client().primary().connection_keys();
  tls::HopChannel forge(keys.keys.server_write, keys.server_seq);
  http::Response evil;
  evil.status = 200;
  evil.body = to_bytes(std::string_view("EVIL-CONTENT"));
  const Bytes forged = forge.seal(tls::ContentType::kApplicationData, evil.serialize());

  bool dropped = false;
  scenario.tap_s2c_seg2 = [&](Bytes d) {
    // Drop the genuine response records; deliver the forged one instead.
    if (!dropped) {
      dropped = true;
      return forged;
    }
    return d;
  };
  http::Response real;
  real.status = 200;
  real.body = to_bytes(std::string_view("genuine content"));
  scenario.server_send(real.serialize());
  scenario.pump();

  const auto cached = cache.lookup("/popular-page");
  return cached && equal(*cached, to_bytes(std::string_view("EVIL-CONTENT")));
}

std::vector<AttackResult> run_all() {
  std::vector<AttackResult> results;
  const Protocol all[] = {Protocol::kNaiveKeyShare, Protocol::kSplitTls, Protocol::kMbtlsNoSgx,
                          Protocol::kMbtls};
  auto add = [&](const std::string& threat, const std::string& property, Protocol p,
                 bool succeeded, const std::string& detail = "") {
    results.push_back({threat, property, p, succeeded, detail});
  };
  for (const auto p : all) {
    add("data read on-the-wire by third party", "P1A", p, wire_eavesdrop(p));
    add("session keys read from middlebox RAM by MIP", "P1A", p, mip_reads_keys_from_memory(p));
    add("record entering/leaving middlebox compared", "P1C", p, record_compare(p));
    add("recorded traffic decrypted after long-term key leak", "P1B", p,
        decrypt_recording_with_leaked_key(p));
    add("record modified on-the-wire", "P2", p, modify_on_wire(p));
    add("record replayed on-the-wire", "P2", p, replay_on_wire(p));
    add("record made to skip the middlebox", "P4", p, skip_middlebox(p));
    add("MIP substitutes middlebox software", "P3B", p, run_wrong_middlebox_code(p));
    add("server impersonated toward the client", "P3A", p, impersonate_server(p));
  }
  add("stale attestation quote replayed", "P3B", Protocol::kMbtls, replay_attestation());
  add("shared cache poisoned by malicious client (known limitation, §4.2)", "-",
      Protocol::kMbtls, cache_poisoning());
  return results;
}

}  // namespace mbtls::attacks
