// Executable adversary scenarios for every Table-1 threat (plus the §4.2
// cache-poisoning discussion). Each attack builds a real session over
// in-memory transport with the attacker interposed at the stated vantage
// point, runs the attack code, and reports whether the attack succeeded.
//
// bench/bench_table1_threats regenerates the paper's Table 1 from these.
#pragma once

#include <string>
#include <vector>

namespace mbtls::attacks {

/// The protocol configuration under attack.
enum class Protocol {
  kNaiveKeyShare,  // Figure 1: e2e TLS + session key handed to the middlebox
  kSplitTls,       // interception with a custom root CA
  kMbtlsNoSgx,     // mbTLS on trusted middlebox hardware (no enclave)
  kMbtls,          // full mbTLS with an SGX-protected middlebox
};

const char* to_string(Protocol p);

struct AttackResult {
  std::string threat;     // Table-1 row
  std::string property;   // P1A / P1B / P1C / P2 / P3A / P3B / P4
  Protocol protocol;
  bool attack_succeeded;  // true = the adversary got what it wanted
  std::string detail;
};

// --- Individual attacks (each returns true when the ATTACK succeeds) ------

/// Third party reads application plaintext off the wire (P1A, network).
bool wire_eavesdrop(Protocol protocol);

/// The middlebox infrastructure provider reads session keys out of the
/// middlebox machine's memory (P1A/P2, memory).
bool mip_reads_keys_from_memory(Protocol protocol);

/// Third party compares records entering/leaving the middlebox to learn
/// whether it modified them (P1C).
bool record_compare(Protocol protocol);

/// Forward secrecy (P1B): the adversary records a session's traffic, later
/// obtains the server's long-term private key, and tries to decrypt the
/// recording using every key it can derive from {long-term key, transcript}.
/// With (EC)DHE key exchange no such derivation exists; the executable
/// attack tries the candidate keys and fails.
bool decrypt_recording_with_leaked_key(Protocol protocol);

/// Third party modifies a data record on the wire undetected (P2).
bool modify_on_wire(Protocol protocol);

/// Third party replays a captured data record undetected (P2).
bool replay_on_wire(Protocol protocol);

/// Third party makes a record skip the middlebox (delivers a record captured
/// before the middlebox directly to the far endpoint) undetected (P4).
bool skip_middlebox(Protocol protocol);

/// The MIP substitutes its own middlebox software for the MSP's (P3B).
bool run_wrong_middlebox_code(Protocol protocol);

/// Replaying an old attestation quote into a new handshake (P3B freshness).
bool replay_attestation();

/// An impostor (without the server's key) impersonates the server to the
/// client (P3A). Under split TLS the client cannot detect this when the
/// proxy skips upstream verification — the paper's [23] finding.
bool impersonate_server(Protocol protocol);

/// §4.2 "Middlebox State Poisoning": a malicious client uses its knowledge
/// of all client-side hop keys to poison a shared web cache. Succeeds by
/// design under mbTLS — the paper documents this limitation.
bool cache_poisoning();

/// Run the full Table-1 matrix.
std::vector<AttackResult> run_all();

}  // namespace mbtls::attacks
