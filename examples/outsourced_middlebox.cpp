// Outsourced middlebox on untrusted infrastructure — the paper's headline
// scenario (§3, requirement 2).
//
// The middlebox service provider (MSP) ships its proxy to a third-party
// cloud (the MIP). Run once WITHOUT SGX: the cloud operator reads the
// session keys straight out of RAM. Run again WITH SGX: the client demands
// an attestation for the exact proxy build, and the operator's memory view
// shows only ciphertext.
#include <cstdio>

#include "mbox/header_proxy.h"
#include "mbtls/client.h"
#include "mbtls/middlebox.h"
#include "mbtls/server.h"
#include "util/hex.h"

using namespace mbtls;

namespace {
crypto::Drbg g_rng("outsourced-example", 0);

struct Identity {
  std::shared_ptr<x509::PrivateKey> key;
  std::vector<x509::Certificate> chain;
};

Identity issue(const x509::CertificateAuthority& ca, const std::string& cn) {
  Identity id;
  id.key = std::make_shared<x509::PrivateKey>(
      x509::PrivateKey::generate(x509::KeyType::kEcdsaP256, g_rng));
  x509::CertRequest req;
  req.subject_cn = cn;
  req.san_dns = {cn};
  req.not_after = 2524607999;
  req.key = id.key->public_key();
  id.chain = {ca.issue(req, g_rng)};
  return id;
}

void pump(mb::ClientSession& client, mb::Middlebox& mbox, mb::ServerSession& server) {
  for (int i = 0; i < 60; ++i) {
    bool moved = false;
    Bytes a = client.take_output();
    if (!a.empty()) {
      moved = true;
      mbox.feed_from_client(a);
    }
    Bytes b = mbox.take_to_server();
    if (!b.empty()) {
      moved = true;
      server.feed(b);
    }
    Bytes c = server.take_output();
    if (!c.empty()) {
      moved = true;
      mbox.feed_from_server(c);
    }
    Bytes d = mbox.take_to_client();
    if (!d.empty()) {
      moved = true;
      client.feed(d);
    }
    if (!moved) break;
  }
}

void run(bool with_sgx, const x509::CertificateAuthority& ca, const Identity& server_id,
         const Identity& mbox_id) {
  std::printf("--- middlebox outsourced to a cloud provider, %s ---\n",
              with_sgx ? "WITH SGX enclave" : "WITHOUT SGX");

  sgx::Platform cloud_machine;  // owned by the infrastructure provider
  sgx::Enclave* enclave = with_sgx ? &cloud_machine.launch("msp-proxy-build-2017.12") : nullptr;

  mb::ClientSession::Options copts;
  copts.tls.trust_anchors = {ca.root()};
  copts.tls.server_name = "origin.example";
  copts.require_middlebox_attestation = with_sgx;
  if (with_sgx) copts.expected_middlebox_measurement = sgx::measure("msp-proxy-build-2017.12");
  mb::ClientSession client(std::move(copts));

  mb::ServerSession::Options sopts;
  sopts.tls.private_key = server_id.key;
  sopts.tls.certificate_chain = server_id.chain;
  mb::ServerSession server(std::move(sopts));

  mb::Middlebox::Options mopts;
  mopts.name = "proxy.cloud.example";
  mopts.side = mb::Middlebox::Side::kClientSide;
  mopts.private_key = mbox_id.key;
  mopts.certificate_chain = mbox_id.chain;
  mopts.enclave = enclave;
  mopts.untrusted_store = &cloud_machine.untrusted_memory();
  mb::Middlebox mbox(std::move(mopts));

  client.start();
  pump(client, mbox, server);
  if (!client.established()) {
    std::printf("  session failed: %s\n\n", client.error_message().c_str());
    return;
  }
  if (with_sgx) {
    const auto descriptors = client.middleboxes();
    const auto& desc = descriptors.at(0);
    std::printf("  client verified enclave measurement %s...\n",
                hex_encode(ByteView(desc.measurement).first(8)).c_str());
  }

  client.send(to_bytes(std::string_view("account=alice&amount=100")));
  pump(client, mbox, server);
  std::printf("  server received: \"%s\"\n", to_string(server.take_app_data()).c_str());

  // THE CLOUD OPERATOR'S VIEW: scan every byte of the machine's memory for
  // the session's bridge key.
  const Bytes bridge_key = client.primary().connection_keys().keys.client_write.key;
  const auto hits = cloud_machine.adversary_find_secret(bridge_key);
  if (hits.empty()) {
    std::printf("  cloud operator scans RAM for the session key: NOT FOUND");
    std::size_t encrypted_regions = 0;
    for (const auto& region : cloud_machine.adversary_memory_view())
      encrypted_regions += region.encrypted;
    std::printf(" (%zu enclave pages visible only as ciphertext)\n\n", encrypted_regions);
  } else {
    std::printf("  cloud operator scans RAM for the session key: FOUND in\n");
    for (const auto& hit : hits) std::printf("    - %s\n", hit.c_str());
    std::printf("  => the MIP can decrypt and forge session traffic at will\n\n");
  }
}

}  // namespace

int main() {
  std::printf("Outsourced middlebox vs the untrusted infrastructure provider\n");
  std::printf("==============================================================\n\n");
  const auto ca =
      x509::CertificateAuthority::create("Demo Root", x509::KeyType::kEcdsaP256, g_rng);
  const Identity server_id = issue(ca, "origin.example");
  const Identity mbox_id = issue(ca, "proxy.cloud.example");
  run(/*with_sgx=*/false, ca, server_id, mbox_id);
  run(/*with_sgx=*/true, ca, server_id, mbox_id);
  return 0;
}
