// Legacy interoperability (P5): an mbTLS endpoint includes middleboxes in a
// session with a completely unmodified TLS 1.2 peer.
//
// Case A: mbTLS client + client-side middlebox, legacy server.
// Case B: legacy client, mbTLS server + server-side middlebox.
// In both cases the legacy engine runs zero mbTLS code paths.
#include <cstdio>

#include "mbtls/client.h"
#include "mbtls/middlebox.h"
#include "mbtls/server.h"

using namespace mbtls;

namespace {
crypto::Drbg g_rng("legacy-example", 0);

struct Identity {
  std::shared_ptr<x509::PrivateKey> key;
  std::vector<x509::Certificate> chain;
};

Identity issue(const x509::CertificateAuthority& ca, const std::string& cn) {
  Identity id;
  id.key = std::make_shared<x509::PrivateKey>(
      x509::PrivateKey::generate(x509::KeyType::kEcdsaP256, g_rng));
  x509::CertRequest req;
  req.subject_cn = cn;
  req.san_dns = {cn};
  req.not_after = 2524607999;
  req.key = id.key->public_key();
  id.chain = {ca.issue(req, g_rng)};
  return id;
}

template <typename Client, typename Server>
void pump(Client& client, mb::Middlebox& mbox, Server& server) {
  for (int i = 0; i < 60; ++i) {
    bool moved = false;
    Bytes a = client.take_output();
    if (!a.empty()) {
      moved = true;
      mbox.feed_from_client(a);
    }
    Bytes b = mbox.take_to_server();
    if (!b.empty()) {
      moved = true;
      server.feed(b);
    }
    Bytes c = server.take_output();
    if (!c.empty()) {
      moved = true;
      mbox.feed_from_server(c);
    }
    Bytes d = mbox.take_to_client();
    if (!d.empty()) {
      moved = true;
      client.feed(d);
    }
    if (!moved) break;
  }
}

}  // namespace

int main() {
  std::printf("mbTLS legacy interoperability (property P5)\n");
  std::printf("===========================================\n\n");
  const auto ca = x509::CertificateAuthority::create("Root", x509::KeyType::kEcdsaP256, g_rng);
  const Identity server_id = issue(ca, "legacy.example");
  const Identity mbox_id = issue(ca, "proxy.example");

  {
    std::printf("Case A: mbTLS client + middlebox, STOCK TLS 1.2 server\n");
    mb::ClientSession::Options copts;
    copts.tls.trust_anchors = {ca.root()};
    copts.tls.server_name = "legacy.example";
    mb::ClientSession client(std::move(copts));

    tls::Config scfg;  // a plain TLS engine: knows nothing about mbTLS
    scfg.is_client = false;
    scfg.private_key = server_id.key;
    scfg.certificate_chain = server_id.chain;
    tls::Engine legacy_server(scfg);

    mb::Middlebox::Options mopts;
    mopts.name = "proxy.example";
    mopts.side = mb::Middlebox::Side::kClientSide;
    mopts.private_key = mbox_id.key;
    mopts.certificate_chain = mbox_id.chain;
    mb::Middlebox mbox(std::move(mopts));

    client.start();
    pump(client, mbox, legacy_server);
    std::printf("  client established=%d  middlebox joined=%d  legacy server sees: plain TLS\n",
                client.established(), mbox.joined());
    client.send(to_bytes(std::string_view("request through the middlebox")));
    pump(client, mbox, legacy_server);
    std::printf("  legacy server received: \"%s\"\n\n",
                to_string(legacy_server.take_plaintext()).c_str());
  }

  {
    std::printf("Case B: STOCK TLS 1.2 client, mbTLS server + server-side middlebox\n");
    tls::Config ccfg;  // plain TLS client, e.g. an old browser
    ccfg.is_client = true;
    ccfg.trust_anchors = {ca.root()};
    ccfg.server_name = "legacy.example";
    tls::Engine legacy_client(ccfg);

    mb::ServerSession::Options sopts;
    sopts.tls.private_key = server_id.key;
    sopts.tls.certificate_chain = server_id.chain;
    sopts.tls.trust_anchors = {ca.root()};
    mb::ServerSession server(std::move(sopts));

    mb::Middlebox::Options mopts;
    mopts.name = "proxy.example";
    mopts.side = mb::Middlebox::Side::kServerSide;
    mopts.private_key = mbox_id.key;
    mopts.certificate_chain = mbox_id.chain;
    mb::Middlebox mbox(std::move(mopts));

    legacy_client.start();
    pump(legacy_client, mbox, server);
    std::printf("  legacy client established=%d  middlebox joined=%d (announced itself to the\n"
                "  server; the client never saw anything but TLS 1.2)\n",
                legacy_client.handshake_done(), mbox.joined());
    legacy_client.send(to_bytes(std::string_view("old client says hi")));
    pump(legacy_client, mbox, server);
    std::printf("  mbTLS server received: \"%s\"\n", to_string(server.take_app_data()).c_str());
  }
  return 0;
}
