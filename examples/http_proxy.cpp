// The paper's §5 prototype: an mbTLS HTTP proxy that performs header
// insertion — here running over the simulated network (real TCP handshakes,
// real link latency) rather than in-memory pipes.
//
// Topology: client (residential) --25ms-- proxy (ISP edge) --8ms-- server.
// The client fetches two pages; the proxy stamps each request with a Via
// header; the server logs what it sees.
#include <cstdio>

#include "http/http.h"
#include "mbox/header_proxy.h"
#include "mbtls/transport.h"

using namespace mbtls;
using namespace mbtls::net;

namespace {
crypto::Drbg g_rng("http-proxy-example", 0);

struct Identity {
  std::shared_ptr<x509::PrivateKey> key;
  std::vector<x509::Certificate> chain;
};

Identity issue(const x509::CertificateAuthority& ca, const std::string& cn) {
  Identity id;
  id.key = std::make_shared<x509::PrivateKey>(
      x509::PrivateKey::generate(x509::KeyType::kEcdsaP256, g_rng));
  x509::CertRequest req;
  req.subject_cn = cn;
  req.san_dns = {cn};
  req.not_after = 2524607999;
  req.key = id.key->public_key();
  id.chain = {ca.issue(req, g_rng)};
  return id;
}
}  // namespace

int main() {
  std::printf("mbTLS HTTP header-insertion proxy (the paper's prototype)\n");
  std::printf("==========================================================\n\n");

  const auto ca = x509::CertificateAuthority::create("Web CA", x509::KeyType::kEcdsaP256, g_rng);
  const Identity server_id = issue(ca, "www.example.com");
  const Identity proxy_id = issue(ca, "proxy.isp.example");

  Simulator sim;
  Network network(sim);
  const NodeId n_client = network.add_node("residential-client");
  const NodeId n_proxy = network.add_node("isp-edge-proxy");
  const NodeId n_server = network.add_node("origin-server");
  network.add_link(n_client, n_proxy, {.propagation = 25 * kMillisecond, .bandwidth_bps = 50e6});
  network.add_link(n_proxy, n_server, {.propagation = 8 * kMillisecond, .bandwidth_bps = 1e9});

  Host client_host(network, n_client);
  Host proxy_host(network, n_proxy);
  Host server_host(network, n_server);

  // --- origin server: parses requests, serves canned pages ---
  mb::ServerSession::Options sopts;
  sopts.tls.private_key = server_id.key;
  sopts.tls.certificate_chain = server_id.chain;
  mb::ServerSession server(std::move(sopts));
  std::unique_ptr<mb::SocketBinding<mb::ServerSession>> server_binding;
  http::RequestParser server_parser;
  server_host.listen(443, [&](Socket& socket) {
    server_binding = std::make_unique<mb::SocketBinding<mb::ServerSession>>(server, socket);
  });

  // --- the proxy ---
  mbox::HeaderInsertionProxy header_proxy("Via", "1.1 mbtls-proxy");
  mb::Middlebox::Options mopts;
  mopts.name = "proxy.isp.example";
  mopts.side = mb::Middlebox::Side::kClientSide;
  mopts.private_key = proxy_id.key;
  mopts.certificate_chain = proxy_id.chain;
  mopts.processor = header_proxy.processor();
  mb::Middlebox proxy(std::move(mopts));
  std::unique_ptr<mb::MiddleboxBinding> proxy_binding;
  proxy_host.listen(443, [&](Socket& downstream) {
    Socket& upstream = proxy_host.connect(n_server, 443);
    proxy_binding = std::make_unique<mb::MiddleboxBinding>(proxy, downstream, upstream);
  });

  // --- the client ---
  mb::ClientSession::Options copts;
  copts.tls.trust_anchors = {ca.root()};
  copts.tls.server_name = "www.example.com";
  copts.approve = [](const mb::MiddleboxDescriptor& desc) {
    std::printf("[client] middlebox \"%s\" wants to join (discovered=%d) -> approving\n",
                desc.certificate_cn.c_str(), desc.discovered);
    return true;
  };
  mb::ClientSession client(std::move(copts));
  Socket& client_socket = client_host.connect(n_proxy, 443);
  mb::SocketBinding<mb::ClientSession> client_binding(client, client_socket);
  client_socket.on_connect = [&] {
    client.start();
    client_binding.flush();
  };

  // Application logic driven off the virtual clock.
  const char* targets[] = {"/index.html", "/about.html"};
  std::size_t next_request = 0;
  http::ResponseParser client_parser;
  std::function<void()> tick = [&] {
    // Server side: answer every complete request.
    const Bytes at_server = server.established() ? server.take_app_data() : Bytes{};
    for (const auto& request : server_parser.feed(at_server)) {
      std::printf("[server %6.1f ms] %s %s (Via: %s)\n",
                  static_cast<double>(sim.now()) / 1000.0, request.method.c_str(),
                  request.target.c_str(), request.headers.get("Via").value_or("-").c_str());
      http::Response resp;
      resp.headers.set("Content-Type", "text/html");
      resp.body = to_bytes(std::string_view("<html>page "));
      append(resp.body, to_bytes(request.target));
      append(resp.body, to_bytes(std::string_view("</html>")));
      server.send(resp.serialize());
      server_binding->flush();
    }
    // Client side: send the next request when idle; print responses.
    if (client.established() && next_request < 2) {
      http::Request req;
      req.target = targets[next_request++];
      req.headers.set("Host", "www.example.com");
      std::printf("[client %6.1f ms] GET %s\n", static_cast<double>(sim.now()) / 1000.0,
                  req.target.c_str());
      client.send(req.serialize());
      client_binding.flush();
    }
    for (const auto& response : client_parser.feed(client.take_app_data())) {
      std::printf("[client %6.1f ms] %d %s: \"%s\"\n", static_cast<double>(sim.now()) / 1000.0,
                  response.status, response.reason.c_str(), to_string(response.body).c_str());
    }
    if (sim.now() < 2 * kSecond) sim.schedule(5 * kMillisecond, tick);
  };
  sim.schedule(kMillisecond, tick);
  sim.run();

  std::printf("\nproxy stats: %lu requests stamped, %lu records re-protected\n",
              static_cast<unsigned long>(header_proxy.requests_seen()),
              static_cast<unsigned long>(proxy.records_reprotected()));
  return 0;
}
