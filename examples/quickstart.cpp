// Quickstart: the smallest complete mbTLS session.
//
// One client, one on-path middlebox (discovered in-band during the
// handshake), one server — all in-process, bytes moved by hand so every
// step is visible. Run: ./quickstart
#include <cstdio>

#include "mbtls/client.h"
#include "mbtls/middlebox.h"
#include "mbtls/server.h"

using namespace mbtls;

namespace {

// A tiny CA for the demo: issues the server's and middlebox's certificates.
crypto::Drbg g_rng("quickstart", 0);

x509::CertificateAuthority make_ca() {
  return x509::CertificateAuthority::create("Demo Root CA", x509::KeyType::kEcdsaP256, g_rng);
}

struct Identity {
  std::shared_ptr<x509::PrivateKey> key;
  std::vector<x509::Certificate> chain;
};

Identity issue(const x509::CertificateAuthority& ca, const std::string& cn) {
  Identity id;
  id.key = std::make_shared<x509::PrivateKey>(
      x509::PrivateKey::generate(x509::KeyType::kEcdsaP256, g_rng));
  x509::CertRequest req;
  req.subject_cn = cn;
  req.san_dns = {cn};
  req.not_after = 2524607999;
  req.key = id.key->public_key();
  id.chain = {ca.issue(req, g_rng)};
  return id;
}

}  // namespace

int main() {
  std::printf("mbTLS quickstart\n================\n\n");

  const auto ca = make_ca();
  const Identity server_id = issue(ca, "server.example");
  const Identity mbox_id = issue(ca, "proxy.example");

  // 1. The three parties. The client does not know the middlebox exists —
  //    it will discover it during the handshake (P6).
  mb::ClientSession::Options copts;
  copts.tls.trust_anchors = {ca.root()};
  copts.tls.server_name = "server.example";
  mb::ClientSession client(std::move(copts));

  mb::ServerSession::Options sopts;
  sopts.tls.private_key = server_id.key;
  sopts.tls.certificate_chain = server_id.chain;
  mb::ServerSession server(std::move(sopts));

  mb::Middlebox::Options mopts;
  mopts.name = "proxy.example";
  mopts.side = mb::Middlebox::Side::kClientSide;
  mopts.private_key = mbox_id.key;
  mopts.certificate_chain = mbox_id.chain;
  mopts.processor = [](bool c2s, ByteView data) {
    std::printf("  [middlebox] processed %zu bytes (%s)\n", data.size(),
                c2s ? "client->server" : "server->client");
    return to_bytes(data);
  };
  mb::Middlebox mbox(std::move(mopts));

  // 2. Run the handshake: shuttle bytes client <-> middlebox <-> server.
  client.start();
  for (int i = 0; i < 50; ++i) {
    bool moved = false;
    Bytes a = client.take_output();
    if (!a.empty()) {
      moved = true;
      mbox.feed_from_client(a);
    }
    Bytes b = mbox.take_to_server();
    if (!b.empty()) {
      moved = true;
      server.feed(b);
    }
    Bytes c = server.take_output();
    if (!c.empty()) {
      moved = true;
      mbox.feed_from_server(c);
    }
    Bytes d = mbox.take_to_client();
    if (!d.empty()) {
      moved = true;
      client.feed(d);
    }
    if (!moved) break;
  }

  if (!client.established() || !server.established()) {
    std::printf("handshake failed: %s / %s\n", client.error_message().c_str(),
                server.error_message().c_str());
    return 1;
  }
  std::printf("handshake complete\n");
  std::printf("  negotiated suite : %s\n", tls::suite_name(client.primary().suite().id));
  for (const auto& desc : client.middleboxes()) {
    std::printf("  discovered mbox  : %s (subchannel %u)\n", desc.certificate_cn.c_str(),
                desc.subchannel);
  }
  std::printf("  server-side view : %zu middleboxes (client-side boxes are invisible to it)\n\n",
              server.middleboxes().size());

  // 3. Application data flows hop by hop, re-protected by the middlebox.
  client.send(to_bytes(std::string_view("hello through the middlebox")));
  for (int i = 0; i < 10; ++i) {
    Bytes a = client.take_output();
    if (!a.empty()) mbox.feed_from_client(a);
    Bytes b = mbox.take_to_server();
    if (!b.empty()) server.feed(b);
  }
  std::printf("server received  : \"%s\"\n", to_string(server.take_app_data()).c_str());

  server.send(to_bytes(std::string_view("hello back")));
  for (int i = 0; i < 10; ++i) {
    Bytes c = server.take_output();
    if (!c.empty()) mbox.feed_from_server(c);
    Bytes d = mbox.take_to_client();
    if (!d.empty()) client.feed(d);
  }
  std::printf("client received  : \"%s\"\n", to_string(client.take_app_data()).c_str());
  std::printf("\nrecords re-protected by middlebox: %lu\n",
              static_cast<unsigned long>(mbox.records_reprotected()));
  return 0;
}
