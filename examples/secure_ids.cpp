// An intrusion-detection middlebox running inside SGX on outsourced
// hardware — the workload the paper's related work discusses (PRI, S-NFV)
// and mbTLS makes deployable: the IDS sees session plaintext to scan it,
// the cloud operator hosting the IDS sees nothing.
//
// The server (an enterprise's mail/API gateway, say) mandates the IDS as a
// server-side middlebox and verifies its code identity by attestation.
#include <cstdio>

#include "mbox/ids.h"
#include "mbtls/client.h"
#include "mbtls/middlebox.h"
#include "mbtls/server.h"

using namespace mbtls;

namespace {
crypto::Drbg g_rng("ids-example", 0);

struct Identity {
  std::shared_ptr<x509::PrivateKey> key;
  std::vector<x509::Certificate> chain;
};

Identity issue(const x509::CertificateAuthority& ca, const std::string& cn) {
  Identity id;
  id.key = std::make_shared<x509::PrivateKey>(
      x509::PrivateKey::generate(x509::KeyType::kEcdsaP256, g_rng));
  x509::CertRequest req;
  req.subject_cn = cn;
  req.san_dns = {cn};
  req.not_after = 2524607999;
  req.key = id.key->public_key();
  id.chain = {ca.issue(req, g_rng)};
  return id;
}

void pump(mb::ClientSession& client, mb::Middlebox& mbox, mb::ServerSession& server) {
  for (int i = 0; i < 80; ++i) {
    bool moved = false;
    Bytes a = client.take_output();
    if (!a.empty()) {
      moved = true;
      mbox.feed_from_client(a);
    }
    Bytes b = mbox.take_to_server();
    if (!b.empty()) {
      moved = true;
      server.feed(b);
    }
    Bytes c = server.take_output();
    if (!c.empty()) {
      moved = true;
      mbox.feed_from_server(c);
    }
    Bytes d = mbox.take_to_client();
    if (!d.empty()) {
      moved = true;
      client.feed(d);
    }
    if (!moved) break;
  }
}

}  // namespace

int main() {
  std::printf("SGX-protected intrusion detection as an mbTLS middlebox\n");
  std::printf("========================================================\n\n");

  const auto ca = x509::CertificateAuthority::create("Root", x509::KeyType::kEcdsaP256, g_rng);
  const Identity server_id = issue(ca, "gateway.corp.example");
  const Identity ids_id = issue(ca, "ids.cloud.example");

  // The IDS runs on a third-party cloud. Enterprise policy: the gateway
  // only accepts the IDS build it audited.
  sgx::Platform cloud;
  sgx::Enclave& enclave = cloud.launch("corp-ids-ruleset-2017-12");

  mbox::IntrusionDetector ids({"SELECT * FROM", "../../etc/passwd", "<script>alert"});

  mb::ClientSession::Options copts;
  copts.tls.trust_anchors = {ca.root()};
  copts.tls.server_name = "gateway.corp.example";
  mb::ClientSession client(std::move(copts));

  mb::ServerSession::Options sopts;
  sopts.tls.private_key = server_id.key;
  sopts.tls.certificate_chain = server_id.chain;
  sopts.tls.trust_anchors = {ca.root()};
  sopts.require_middlebox_attestation = true;
  sopts.expected_middlebox_measurement = sgx::measure("corp-ids-ruleset-2017-12");
  mb::ServerSession server(std::move(sopts));

  mb::Middlebox::Options mopts;
  mopts.name = "ids.cloud.example";
  mopts.side = mb::Middlebox::Side::kServerSide;
  mopts.private_key = ids_id.key;
  mopts.certificate_chain = ids_id.chain;
  mopts.enclave = &enclave;
  mopts.untrusted_store = &cloud.untrusted_memory();
  mopts.processor = ids.processor();
  mb::Middlebox mbox(std::move(mopts));

  client.start();
  pump(client, mbox, server);
  if (!server.established()) {
    std::printf("session failed: %s\n", server.error_message().c_str());
    return 1;
  }
  const auto descriptors = server.middleboxes();
  std::printf("gateway verified IDS: cn=%s attested=%d\n",
              descriptors.at(0).certificate_cn.c_str(), descriptors.at(0).attested);

  // Traffic: one benign request, one attack.
  client.send(to_bytes(std::string_view("GET /profile?id=42")));
  pump(client, mbox, server);
  client.send(to_bytes(std::string_view("GET /download?file=../../etc/passwd")));
  pump(client, mbox, server);
  (void)server.take_app_data();

  std::printf("\nIDS alerts (%zu):\n", ids.alerts().size());
  for (const auto& alert : ids.alerts()) {
    std::printf("  signature \"%s\" at stream offset %llu (%s)\n", alert.signature.c_str(),
                static_cast<unsigned long long>(alert.stream_offset),
                alert.client_to_server ? "client->server" : "server->client");
  }

  // The cloud operator, meanwhile, sees neither rules nor traffic:
  const Bytes key = client.primary().connection_keys().keys.client_write.key;
  std::printf("\ncloud operator searches its RAM for the session key: %s\n",
              cloud.adversary_find_secret(key).empty() ? "not found (enclave-protected)"
                                                       : "FOUND (breach!)");
  return 0;
}
