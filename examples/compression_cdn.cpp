// A Flywheel-style compression service built from two cooperating mbTLS
// middleboxes: a compressor at the server's edge and a decompressor at the
// client's edge. The WAN hop between them carries compressed records; both
// endpoints see only the original bytes.
//
// This is the "compression proxy" workload the paper's introduction uses to
// motivate multi-party sessions: it requires arbitrary computation on the
// payload, which per-pattern schemes (BlindBox) cannot express.
#include <cstdio>

#include "http/http.h"
#include "mbox/compression_proxy.h"
#include "mbtls/client.h"
#include "mbtls/middlebox.h"
#include "mbtls/server.h"

using namespace mbtls;

namespace {
crypto::Drbg g_rng("cdn-example", 0);

struct Identity {
  std::shared_ptr<x509::PrivateKey> key;
  std::vector<x509::Certificate> chain;
};

Identity issue(const x509::CertificateAuthority& ca, const std::string& cn) {
  Identity id;
  id.key = std::make_shared<x509::PrivateKey>(
      x509::PrivateKey::generate(x509::KeyType::kEcdsaP256, g_rng));
  x509::CertRequest req;
  req.subject_cn = cn;
  req.san_dns = {cn};
  req.not_after = 2524607999;
  req.key = id.key->public_key();
  id.chain = {ca.issue(req, g_rng)};
  return id;
}
}  // namespace

int main() {
  std::printf("Compression CDN: two mbTLS middleboxes bracketing the WAN\n");
  std::printf("==========================================================\n\n");

  const auto ca = x509::CertificateAuthority::create("Root", x509::KeyType::kEcdsaP256, g_rng);
  const Identity server_id = issue(ca, "origin.example");
  const Identity decomp_id = issue(ca, "edge-client.example");
  const Identity comp_id = issue(ca, "edge-server.example");

  mb::ClientSession::Options copts;
  copts.tls.trust_anchors = {ca.root()};
  copts.tls.server_name = "origin.example";
  mb::ClientSession client(std::move(copts));

  mb::ServerSession::Options sopts;
  sopts.tls.private_key = server_id.key;
  sopts.tls.certificate_chain = server_id.chain;
  sopts.tls.trust_anchors = {ca.root()};
  mb::ServerSession server(std::move(sopts));

  mbox::DecompressorProxy decompressor;
  mb::Middlebox::Options d_opts;
  d_opts.name = "edge-client.example";
  d_opts.side = mb::Middlebox::Side::kClientSide;
  d_opts.private_key = decomp_id.key;
  d_opts.certificate_chain = decomp_id.chain;
  d_opts.processor = decompressor.processor();
  mb::Middlebox client_edge(std::move(d_opts));

  mbox::CompressorProxy compressor;
  mb::Middlebox::Options c_opts;
  c_opts.name = "edge-server.example";
  c_opts.side = mb::Middlebox::Side::kServerSide;
  c_opts.private_key = comp_id.key;
  c_opts.certificate_chain = comp_id.chain;
  c_opts.processor = compressor.processor();
  mb::Middlebox server_edge(std::move(c_opts));

  // Path: client - client_edge - [WAN] - server_edge - server.
  std::uint64_t wan_bytes = 0;
  auto pump = [&] {
    for (int i = 0; i < 80; ++i) {
      bool moved = false;
      Bytes a = client.take_output();
      if (!a.empty()) {
        moved = true;
        client_edge.feed_from_client(a);
      }
      Bytes b = client_edge.take_to_server();
      if (!b.empty()) {
        moved = true;
        wan_bytes += b.size();
        server_edge.feed_from_client(b);
      }
      Bytes c = server_edge.take_to_server();
      if (!c.empty()) {
        moved = true;
        server.feed(c);
      }
      Bytes d = server.take_output();
      if (!d.empty()) {
        moved = true;
        server_edge.feed_from_server(d);
      }
      Bytes e = server_edge.take_to_client();
      if (!e.empty()) {
        moved = true;
        wan_bytes += e.size();
        client_edge.feed_from_server(e);
      }
      Bytes f = client_edge.take_to_client();
      if (!f.empty()) {
        moved = true;
        client.feed(f);
      }
      if (!moved) break;
    }
  };

  client.start();
  pump();
  if (!client.established() || !server.established()) {
    std::printf("session failed: %s / %s\n", client.error_message().c_str(),
                server.error_message().c_str());
    return 1;
  }
  std::printf("session up: both edges joined (client side: %zu, server side: %zu)\n\n",
              client.middleboxes().size(), server.middleboxes().size());

  // The client requests a large, highly compressible page.
  http::Request req;
  req.target = "/catalog.html";
  client.send(req.serialize());
  pump();
  (void)server.take_app_data();
  http::Response resp;
  for (int i = 0; i < 1500; ++i)
    append(resp.body,
           to_bytes(std::string_view("<li class=\"product\">another catalog item</li>\n")));
  const std::size_t original = resp.serialize().size();
  const std::uint64_t wan_before = wan_bytes;
  server.send(resp.serialize());
  pump();
  const Bytes delivered = client.take_app_data();
  const auto parsed = http::parse_response(delivered);

  std::printf("page size at endpoints : %zu bytes (delivered intact: %s)\n", original,
              parsed && parsed->body == resp.body ? "yes" : "NO");
  std::printf("bytes across the WAN   : %llu (incl. record + compression framing)\n",
              static_cast<unsigned long long>(wan_bytes - wan_before));
  std::printf("compressor saw %llu bytes, emitted %llu (%.1f%% of original)\n",
              static_cast<unsigned long long>(compressor.bytes_in()),
              static_cast<unsigned long long>(compressor.bytes_out()),
              100.0 * static_cast<double>(compressor.bytes_out()) /
                  static_cast<double>(compressor.bytes_in()));
  return 0;
}
