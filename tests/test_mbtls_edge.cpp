// mbTLS edge cases: wire-format codecs, False-Start-style buffering, record
// injection, malformed input robustness, and a parameterized sweep over
// middlebox-chain shapes.
#include <gtest/gtest.h>

#include "tests/mbtls_test_util.h"

namespace mbtls::mb {
namespace {

using namespace testing;

// ----------------------------------------------------------------- codecs

TEST(MbtlsCodec, KeyMaterialRoundTrip) {
  crypto::Drbg rng("km-codec", 0);
  tls::KeyMaterialMsg msg;
  msg.cipher_suite = static_cast<std::uint16_t>(tls::CipherSuite::kEcdheRsaAes256GcmSha384);
  msg.toward_client = generate_hop_keys(32, rng);
  msg.toward_server = generate_hop_keys(32, rng);
  msg.toward_server.client_to_server_seq = 7;
  msg.toward_server.server_to_client_seq = 9;
  const Bytes wire = msg.encode();
  const auto back = tls::KeyMaterialMsg::parse(wire);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->cipher_suite, msg.cipher_suite);
  EXPECT_EQ(back->toward_client.client_to_server_key, msg.toward_client.client_to_server_key);
  EXPECT_EQ(back->toward_server.client_to_server_seq, 7u);
  EXPECT_EQ(back->toward_server.server_to_client_seq, 9u);

  // Truncations never parse.
  for (std::size_t cut = 0; cut < wire.size(); cut += 5) {
    EXPECT_FALSE(tls::KeyMaterialMsg::parse(ByteView(wire).first(cut)).has_value());
  }
}

TEST(MbtlsCodec, EncapsulatedRoundTrip) {
  tls::EncapsulatedRecord enc;
  enc.subchannel = 42;
  enc.inner_record = tls::frame_plaintext_record(tls::ContentType::kHandshake, Bytes(10, 1));
  const Bytes wire = enc.encode();
  const auto back = tls::EncapsulatedRecord::parse(wire);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->subchannel, 42);
  EXPECT_EQ(back->inner_record, enc.inner_record);
  EXPECT_FALSE(tls::EncapsulatedRecord::parse(Bytes(3, 0)).has_value());
}

TEST(MbtlsCodec, MiddleboxSupportExtensionRoundTrip) {
  tls::MiddleboxSupportExtension ext;
  ext.known_middleboxes = {"proxy.a.example", "cache.b.example"};
  ext.optimistic_hellos = {Bytes(20, 0xaa)};
  const Bytes wire = ext.encode();
  const auto back = tls::MiddleboxSupportExtension::parse(wire);
  EXPECT_EQ(back.known_middleboxes, ext.known_middleboxes);
  ASSERT_EQ(back.optimistic_hellos.size(), 1u);
  EXPECT_EQ(back.optimistic_hellos[0], ext.optimistic_hellos[0]);
  EXPECT_THROW(tls::MiddleboxSupportExtension::parse(Bytes{2}), DecodeError);
}

// --------------------------------------------------- chain-shape sweep

struct ChainShape {
  int client_side;
  int server_side;
};

class MbtlsChainSweep : public ::testing::TestWithParam<ChainShape> {};

TEST_P(MbtlsChainSweep, HandshakeAndBidirectionalData) {
  const auto [n_client, n_server] = GetParam();
  const auto id = make_identity("sweep.example");
  ClientSession client(client_options("sweep.example"));
  ServerSession server(server_options(id));
  std::vector<std::unique_ptr<Middlebox>> boxes;
  Chain chain{.client = &client, .middleboxes = {}, .server = &server};
  for (int i = 0; i < n_client + n_server; ++i) {
    auto opts = middlebox_options("m" + std::to_string(i) + ".example",
                                  i < n_client ? Middlebox::Side::kClientSide
                                               : Middlebox::Side::kServerSide);
    boxes.push_back(std::make_unique<Middlebox>(std::move(opts)));
    chain.middleboxes.push_back(boxes.back().get());
  }
  client.start();
  chain.pump(400);
  ASSERT_TRUE(client.established()) << client.error_message();
  ASSERT_TRUE(server.established()) << server.error_message();
  EXPECT_EQ(client.middleboxes().size(), static_cast<std::size_t>(n_client));
  EXPECT_EQ(server.middleboxes().size(), static_cast<std::size_t>(n_server));
  for (const auto& box : boxes) EXPECT_TRUE(box->joined());

  crypto::Drbg rng("sweep-data", static_cast<std::uint64_t>(n_client * 10 + n_server));
  const Bytes up = rng.bytes(5000);
  const Bytes down = rng.bytes(7000);
  client.send(up);
  chain.pump(400);
  EXPECT_EQ(server.take_app_data(), up);
  server.send(down);
  chain.pump(400);
  EXPECT_EQ(client.take_app_data(), down);
}

INSTANTIATE_TEST_SUITE_P(Shapes, MbtlsChainSweep,
                         ::testing::Values(ChainShape{0, 0}, ChainShape{1, 0}, ChainShape{0, 1},
                                           ChainShape{2, 0}, ChainShape{0, 2}, ChainShape{3, 0},
                                           ChainShape{2, 2}, ChainShape{4, 0}, ChainShape{1, 3}),
                         [](const auto& info) {
                           return "c" + std::to_string(info.param.client_side) + "_s" +
                                  std::to_string(info.param.server_side);
                         });

// ----------------------------------------------------- False-Start buffer

TEST(MbtlsEdge, ServerDataBeforeKeyMaterialIsBuffered) {
  // §3.5: data can reach a middlebox before the endpoint's key material
  // (the server finishes first and may speak immediately). The middlebox
  // must buffer, not drop.
  const auto id = make_identity("faststart.example");
  ClientSession client(client_options("faststart.example"));
  ServerSession server(server_options(id));
  Middlebox mbox(middlebox_options("buffering.example", Middlebox::Side::kClientSide));

  client.start();
  // Pump manually so we can inject server data the moment it establishes,
  // *before* the client's KeyMaterial can reach the middlebox.
  bool injected = false;
  for (int i = 0; i < 200; ++i) {
    bool moved = false;
    Bytes a = client.take_output();
    if (!a.empty()) {
      moved = true;
      mbox.feed_from_client(a);
    }
    Bytes b = mbox.take_to_server();
    if (!b.empty()) {
      moved = true;
      server.feed(b);
    }
    if (server.established() && !injected) {
      injected = true;
      server.send(to_bytes(std::string_view("server speaks first")));
    }
    Bytes c = server.take_output();
    if (!c.empty()) {
      moved = true;
      mbox.feed_from_server(c);
    }
    Bytes d = mbox.take_to_client();
    if (!d.empty()) {
      moved = true;
      client.feed(d);
    }
    if (!moved) break;
  }
  ASSERT_TRUE(injected);
  ASSERT_TRUE(client.established()) << client.error_message();
  EXPECT_EQ(to_string(client.take_app_data()), "server speaks first");
  EXPECT_TRUE(mbox.joined());
}

// -------------------------------------------------------------- injection

TEST(MbtlsEdge, ForgedRecordAtMiddleboxIsDiscarded) {
  const auto id = make_identity("forge.example");
  ClientSession client(client_options("forge.example"));
  ServerSession server(server_options(id));
  Middlebox mbox(middlebox_options("strict.example", Middlebox::Side::kClientSide));
  Chain chain{.client = &client, .middleboxes = {&mbox}, .server = &server};
  client.start();
  chain.pump();
  ASSERT_TRUE(client.established());

  // An attacker without hop keys injects a fake application-data record
  // toward the middlebox.
  crypto::Drbg rng("forge", 0);
  Bytes fake_body = rng.bytes(64);
  const Bytes forged =
      tls::frame_plaintext_record(tls::ContentType::kApplicationData, fake_body);
  mbox.feed_from_client(forged);
  EXPECT_EQ(mbox.auth_failures(), 1u);
  // Nothing reached the server, and the session still works.
  EXPECT_TRUE(mbox.take_to_server().empty());
  client.send(to_bytes(std::string_view("still alive")));
  chain.pump();
  EXPECT_EQ(to_string(server.take_app_data()), "still alive");
}

// ----------------------------------------------------------- fuzz-adjacent

TEST(MbtlsEdge, RandomGarbageDoesNotCrashEndpoints) {
  crypto::Drbg rng("garbage", 0);
  for (int trial = 0; trial < 30; ++trial) {
    ClientSession client(client_options("g.example", static_cast<std::uint64_t>(trial)));
    client.start();
    (void)client.take_output();
    Bytes junk = rng.bytes(rng.uniform(300) + 5);
    junk[0] = static_cast<std::uint8_t>(20 + rng.uniform(15));  // plausible types
    client.feed(junk);  // must not crash; may fail the session
    const auto id = make_identity("g.example");
    ServerSession server(server_options(id, static_cast<std::uint64_t>(trial)));
    server.feed(junk);
  }
  SUCCEED();
}

TEST(MbtlsEdge, MutatedHandshakeBytesFailCleanly) {
  // Flip a byte at every position of the client's first flight and feed the
  // result to a fresh server; nothing may crash, and data never flows.
  const auto id = make_identity("mutate.example");
  ClientSession reference(client_options("mutate.example"));
  reference.start();
  const Bytes hello = reference.take_output();
  for (std::size_t at = 0; at < hello.size(); at += 3) {
    Bytes mutated = hello;
    mutated[at] ^= 0x41;
    ServerSession server(server_options(id, at));
    server.feed(mutated);
    EXPECT_FALSE(server.established());
  }
}

TEST(MbtlsEdge, MiddleboxSurvivesMutatedStream) {
  const auto id = make_identity("mstream.example");
  crypto::Drbg rng("mstream", 0);
  for (int trial = 0; trial < 20; ++trial) {
    ClientSession client(client_options("mstream.example", static_cast<std::uint64_t>(trial)));
    ServerSession server(server_options(id, static_cast<std::uint64_t>(trial) + 1));
    Middlebox mbox(middlebox_options("m.example", Middlebox::Side::kClientSide));
    client.start();
    Bytes flight = client.take_output();
    if (!flight.empty()) {
      flight[rng.uniform(flight.size())] ^= static_cast<std::uint8_t>(1 + rng.uniform(255));
    }
    mbox.feed_from_client(flight);  // must not crash
    (void)mbox.take_to_server();
  }
  SUCCEED();
}

TEST(MbtlsEdge, SendBeforeEstablishedThrows) {
  ClientSession client(client_options("early.example"));
  EXPECT_THROW(client.send(Bytes{1, 2, 3}), std::logic_error);
  const auto id = make_identity("early.example");
  ServerSession server(server_options(id));
  EXPECT_THROW(server.send(Bytes{1}), std::logic_error);
}

TEST(MbtlsEdge, HopDuplexRejectsMismatchedKeyLength) {
  crypto::Drbg rng("hoplen", 0);
  const auto keys = generate_hop_keys(16, rng);
  EXPECT_THROW(HopDuplex(keys, 32), std::invalid_argument);
}

// ---------------------------------------------------------- alert hygiene

TEST(MbtlsAlert, ParseRejectsTruncatedAndBogusLevels) {
  EXPECT_FALSE(parse_alert(Bytes{}).has_value());
  // The old code indexed body[1] on a 1-byte alert — this is the regression.
  EXPECT_FALSE(parse_alert(Bytes{1}).has_value());
  EXPECT_FALSE(parse_alert(Bytes{1, 0, 0}).has_value());  // oversized
  EXPECT_FALSE(parse_alert(Bytes{0, 0}).has_value());     // level 0 invalid
  EXPECT_FALSE(parse_alert(Bytes{3, 0}).has_value());     // level 3 invalid
  const auto close = parse_alert(Bytes{1, 0});
  ASSERT_TRUE(close.has_value());
  EXPECT_TRUE(close->is_close_notify());
  const auto fatal = parse_alert(
      Bytes{2, static_cast<std::uint8_t>(tls::AlertDescription::kHandshakeFailure)});
  ASSERT_TRUE(fatal.has_value());
  EXPECT_EQ(fatal->level, tls::AlertLevel::kFatal);
  EXPECT_FALSE(fatal->is_close_notify());
}

// In a zero-middlebox session both endpoints' data path is the bridge hop
// derived from the shared primary keys, so a test can forge what a buggy or
// hostile *peer* (which has the keys) would send: correctly sealed records
// with malformed alert bodies. These must fail the session explicitly —
// never index out of bounds, never be misread as close_notify, never be
// silently ignored.
struct AlertRig {
  AlertRig()
      : id(make_identity("alert.example")),
        client(client_options("alert.example")),
        server(server_options(id)) {
    Chain chain{.client = &client, .middleboxes = {}, .server = &server};
    client.start();
    chain.pump();
  }
  HopDuplex forge() const {
    return HopDuplex(bridge_hop_keys(client.primary().connection_keys()),
                     client.primary().suite().key_len);
  }
  tls::testing::ServerIdentity id;
  ClientSession client;
  ServerSession server;
};

TEST(MbtlsAlert, TruncatedSealedAlertFailsClientSession) {
  AlertRig rig;
  ASSERT_TRUE(rig.client.established());
  auto forge = rig.forge();
  const Bytes one_byte{static_cast<std::uint8_t>(tls::AlertLevel::kWarning)};
  rig.client.feed(forge.seal_s2c(tls::ContentType::kAlert, one_byte));
  EXPECT_TRUE(rig.client.failed());
  EXPECT_EQ(rig.client.error_message(), "malformed alert record");
  EXPECT_NE(rig.client.status(), SessionStatus::kClosed);  // not a close_notify
}

TEST(MbtlsAlert, BogusLevelSealedAlertFailsServerSession) {
  AlertRig rig;
  ASSERT_TRUE(rig.server.established());
  auto forge = rig.forge();
  const Bytes bogus_level{0x03, 0x00};  // description says close_notify, level invalid
  rig.server.feed(forge.seal_c2s(tls::ContentType::kAlert, bogus_level));
  EXPECT_TRUE(rig.server.failed());
  EXPECT_EQ(rig.server.error_message(), "malformed alert record");
  EXPECT_NE(rig.server.status(), SessionStatus::kClosed);
}

TEST(MbtlsAlert, FatalPeerAlertSurfacesDescription) {
  AlertRig rig;
  ASSERT_TRUE(rig.client.established());
  auto forge = rig.forge();
  const Bytes fatal{static_cast<std::uint8_t>(tls::AlertLevel::kFatal),
                    static_cast<std::uint8_t>(tls::AlertDescription::kHandshakeFailure)};
  rig.client.feed(forge.seal_s2c(tls::ContentType::kAlert, fatal));
  ASSERT_TRUE(rig.client.failed());
  EXPECT_NE(rig.client.error_message().find("peer alert"), std::string::npos);
}

}  // namespace
}  // namespace mbtls::mb
