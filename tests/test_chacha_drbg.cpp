// ChaCha20 known answer from RFC 8439 §2.4.2 and DRBG determinism /
// distribution properties.
#include <gtest/gtest.h>

#include <set>

#include "crypto/chacha20.h"
#include "crypto/drbg.h"
#include "util/hex.h"

namespace mbtls::crypto {
namespace {

TEST(ChaCha20, Rfc8439Example) {
  const Bytes key = hex_decode(
      "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
  const Bytes nonce = hex_decode("000000000000004a00000000");
  const auto pt = to_bytes(std::string_view(
      "Ladies and Gentlemen of the class of '99: If I could offer you "
      "only one tip for the future, sunscreen would be it."));
  ChaCha20 cipher(key, nonce, 1);
  Bytes ct = pt;
  cipher.crypt(ct);
  EXPECT_EQ(hex_encode(ByteView(ct).first(32)),
            "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b");
}

TEST(ChaCha20, EncryptDecryptRoundTrip) {
  const Bytes key(32, 7);
  const Bytes nonce(12, 9);
  const Bytes pt = to_bytes(std::string_view("round trip message"));
  ChaCha20 enc(key, nonce);
  Bytes ct = pt;
  enc.crypt(ct);
  EXPECT_NE(ct, pt);
  ChaCha20 dec(key, nonce);
  dec.crypt(ct);
  EXPECT_EQ(ct, pt);
}

TEST(ChaCha20, RejectsBadParams) {
  EXPECT_THROW(ChaCha20(Bytes(31, 0), Bytes(12, 0)), std::invalid_argument);
  EXPECT_THROW(ChaCha20(Bytes(32, 0), Bytes(11, 0)), std::invalid_argument);
}

TEST(Drbg, DeterministicFromSeed) {
  Drbg a("seed", 1);
  Drbg b("seed", 1);
  EXPECT_EQ(a.bytes(64), b.bytes(64));
}

TEST(Drbg, FillIgnoresPriorBufferContents) {
  // Regression: fill() once XORed keystream into whatever the caller's
  // buffer held, so u32()/real() — which pass an uninitialized stack
  // array — were garbage-dependent on their first draw. fill() must
  // deliver raw keystream, equal to bytes(), for any prior contents.
  Drbg a("fill", 3);
  Drbg b("fill", 3);
  Bytes zeroed(16, 0x00), dirty(16, 0xff);
  a.fill(zeroed);
  b.fill(dirty);
  EXPECT_EQ(zeroed, dirty);
  EXPECT_EQ(zeroed, Drbg("fill", 3).bytes(16));

  // Hence derived draws are seed-deterministic from the very first call.
  Drbg c("fill", 4);
  Drbg d("fill", 4);
  EXPECT_EQ(c.u32(), d.u32());
  EXPECT_EQ(c.real(), d.real());
}

TEST(Drbg, DifferentSeedsDiffer) {
  Drbg a("seed", 1);
  Drbg b("seed", 2);
  EXPECT_NE(a.bytes(64), b.bytes(64));
}

TEST(Drbg, UniformBoundsRespected) {
  Drbg rng("uniform", 0);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.uniform(17), 17u);
  }
  // All residues should appear over enough draws.
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.uniform(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Drbg, RealInUnitInterval) {
  Drbg rng("real", 0);
  double sum = 0;
  for (int i = 0; i < 2000; ++i) {
    const double x = rng.real();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 2000, 0.5, 0.05);  // crude mean check
}

TEST(Drbg, ForkProducesIndependentStreams) {
  Drbg parent("fork", 0);
  Drbg child1 = parent.fork("a");
  Drbg child2 = parent.fork("a");  // same label, later fork point
  EXPECT_NE(child1.bytes(32), child2.bytes(32));

  // Forks are reproducible given identical parent history.
  Drbg parent2("fork", 0);
  Drbg child1b = parent2.fork("a");
  EXPECT_EQ(Drbg("fork", 0).fork("a").bytes(32), child1b.bytes(32));
}

}  // namespace
}  // namespace mbtls::crypto
