// Fixture tests for tools/mbtls-lint: drive the real binary over
// tools/lint/fixtures/ and assert the exact finding set. The fixtures keep
// their expected file:line pairs stable (documented inline), so any rule
// regression — missed finding or new false positive — fails here.
//
// The analyzer's internals (lexer, CFG builder, taint dataflow) are also
// unit-tested in-process: tests/CMakeLists.txt compiles tools/lint's
// sources into this binary.
//
// MBTLS_LINT_BIN and MBTLS_LINT_FIXTURES are injected by tests/CMakeLists.txt.
#include <gtest/gtest.h>

#include <sys/wait.h>

#include <algorithm>
#include <array>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cfg.h"
#include "dataflow.h"
#include "lexer.h"
#include "rules.h"

namespace {

using namespace mbtls::lint;

struct LintRun {
  int exit_code = -1;
  std::vector<std::string> lines;  // stdout, one finding per line

  bool has(const std::string& file_suffix, int line, const std::string& rule) const {
    const std::string needle =
        file_suffix + ":" + std::to_string(line) + ": " + rule + ":";
    for (const auto& l : lines) {
      if (l.find(needle) != std::string::npos) return true;
    }
    return false;
  }

  int count_mentioning(const std::string& needle) const {
    int n = 0;
    for (const auto& l : lines) {
      if (l.find(needle) != std::string::npos) ++n;
    }
    return n;
  }

  std::string joined() const {
    std::string all;
    for (const auto& l : lines) all += l + "\n";
    return all;
  }
};

LintRun run_lint(const std::string& args) {
  LintRun out;
  const std::string cmd = std::string(MBTLS_LINT_BIN) + " " + args + " 2>/dev/null";
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return out;
  std::string text;
  std::array<char, 4096> buf{};
  std::size_t got = 0;
  while ((got = fread(buf.data(), 1, buf.size(), pipe)) > 0) {
    text.append(buf.data(), got);
  }
  const int status = pclose(pipe);
  out.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  std::istringstream iss(text);
  std::string line;
  while (std::getline(iss, line)) {
    if (!line.empty()) out.lines.push_back(line);
  }
  return out;
}

const std::string kFixtures = MBTLS_LINT_FIXTURES;

TEST(LintRules, BadFixturesTripEveryRuleAtDocumentedLines) {
  const LintRun run = run_lint(kFixtures);
  ASSERT_EQ(run.exit_code, 1) << "violations must exit nonzero";

  // secret-compare: memcmp, variable-time equal(), operator== on secrets.
  EXPECT_TRUE(run.has("src/crypto/bad_compare.cpp", 11, "secret-compare"));
  EXPECT_TRUE(run.has("src/crypto/bad_compare.cpp", 17, "secret-compare"));
  EXPECT_TRUE(run.has("src/crypto/bad_compare.cpp", 21, "secret-compare"));

  // secret-wipe: annotated local and name-pattern member, never wiped.
  EXPECT_TRUE(run.has("src/crypto/bad_wipe.cpp", 9, "secret-wipe"));
  EXPECT_TRUE(run.has("src/crypto/bad_wipe.cpp", 14, "secret-wipe"));

  // partial-read: Reader/Parser without expect_end() or annotation.
  EXPECT_TRUE(run.has("src/tls/bad_parser.cpp", 24, "partial-read"));
  EXPECT_TRUE(run.has("src/tls/bad_parser.cpp", 29, "partial-read"));

  // banned-fn: strcpy, sprintf, raw new[] in parser code, rand.
  EXPECT_TRUE(run.has("src/tls/bad_parser.cpp", 33, "banned-fn"));
  EXPECT_TRUE(run.has("src/tls/bad_parser.cpp", 35, "banned-fn"));
  EXPECT_TRUE(run.has("src/tls/bad_parser.cpp", 40, "banned-fn"));
  EXPECT_TRUE(run.has("src/tls/bad_parser.cpp", 44, "banned-fn"));

  // nondet-test: srand + wall-clock seed, rand(), random_device.
  EXPECT_TRUE(run.has("tests/bad_nondet.cpp", 10, "nondet-test"));
  EXPECT_TRUE(run.has("tests/bad_nondet.cpp", 11, "nondet-test"));
  EXPECT_TRUE(run.has("tests/bad_nondet.cpp", 15, "nondet-test"));
  // srand/rand in tests also trip banned-fn.
  EXPECT_TRUE(run.has("tests/bad_nondet.cpp", 10, "banned-fn"));
  EXPECT_TRUE(run.has("tests/bad_nondet.cpp", 11, "banned-fn"));

  // trace-no-secret: raw secret and key byte handed to a trace emitter.
  EXPECT_TRUE(run.has("src/tls/bad_trace.cpp", 15, "trace-no-secret"));
  EXPECT_TRUE(run.has("src/tls/bad_trace.cpp", 16, "trace-no-secret"));

  // queue-no-secret: raw key material posted/submitted to a worker queue.
  EXPECT_TRUE(run.has("src/util/bad_queue.cpp", 15, "queue-no-secret"));
  EXPECT_TRUE(run.has("src/util/bad_queue.cpp", 16, "queue-no-secret"));

  // secret-escape: secrets laundered through neutrally-named locals — a
  // direct member copy and a flow through a call summary. Invisible to the
  // name-based trace/queue rules.
  EXPECT_TRUE(run.has("src/mbtls/bad_escape.cpp", 26, "secret-escape"));
  EXPECT_TRUE(run.has("src/mbtls/bad_escape.cpp", 29, "secret-escape"));

  // wipe-all-paths: the happy path wipes (so the old secret-wipe heuristic
  // is satisfied) but an early return leaks — only path-sensitivity sees it.
  EXPECT_TRUE(run.has("src/crypto/bad_wipe_paths.cpp", 16, "wipe-all-paths"));
  for (const auto& l : run.lines) {
    if (l.find("bad_wipe_paths.cpp") != std::string::npos) {
      EXPECT_EQ(l.find("secret-wipe:"), std::string::npos)
          << "the old heuristic must NOT catch this fixture — that is the point: " << l;
    }
  }

  // wipe-all-paths on SIMD locals: a secret-named __m128i in an
  // intrinsic-including file is an owning buffer; the early return leaks it.
  EXPECT_TRUE(run.has("src/crypto/bad_wipe_simd.cpp", 15, "wipe-all-paths"));

  // dangling-span: member store, container store, use-after-recycle, and a
  // returned view into a reusable scratch buffer.
  EXPECT_TRUE(run.has("src/mbtls/bad_span.cpp", 24, "dangling-span"));
  EXPECT_TRUE(run.has("src/mbtls/bad_span.cpp", 25, "dangling-span"));
  EXPECT_TRUE(run.has("src/mbtls/bad_span.cpp", 27, "dangling-span"));
  EXPECT_TRUE(run.has("src/mbtls/bad_span.cpp", 31, "dangling-span"));

  // Lexer stress: the violation after raw strings / digit separators /
  // comment continuations is still caught, and nothing inside them is.
  EXPECT_TRUE(run.has("src/tls/bad_lexer_stress.cpp", 20, "trace-no-secret"));

  // The exact finding multiset: 10 on time(nullptr) doubles the srand line.
  EXPECT_EQ(run.count_mentioning("bad_compare.cpp"), 3);
  EXPECT_EQ(run.count_mentioning("bad_wipe.cpp"), 2);
  EXPECT_EQ(run.count_mentioning("bad_parser.cpp"), 6);
  EXPECT_EQ(run.count_mentioning("bad_nondet.cpp"), 6);
  EXPECT_EQ(run.count_mentioning("bad_trace.cpp"), 2);
  EXPECT_EQ(run.count_mentioning("bad_queue.cpp"), 2);
  EXPECT_EQ(run.count_mentioning("bad_escape.cpp"), 2);
  EXPECT_EQ(run.count_mentioning("bad_wipe_paths.cpp"), 1);
  EXPECT_EQ(run.count_mentioning("bad_wipe_simd.cpp"), 1);
  EXPECT_EQ(run.count_mentioning("bad_span.cpp"), 4);
  EXPECT_EQ(run.count_mentioning("bad_lexer_stress.cpp"), 1);
  EXPECT_EQ(static_cast<int>(run.lines.size()), 30);
}

TEST(LintRules, GoodFixturesAreClean) {
  for (const char* rel :
       {"src/crypto/good_compare.cpp", "src/crypto/good_wipe.cpp",
        "src/crypto/good_wipe_paths.cpp", "src/crypto/good_wipe_simd.cpp",
        "src/crypto/good_simd_no_include.cpp", "src/tls/good_parser.cpp",
        "src/tls/good_trace.cpp", "src/tls/good_lexer_stress.cpp",
        "src/util/good_queue.cpp", "src/mbtls/good_escape.cpp",
        "src/mbtls/good_span.cpp", "tests/good_det.cpp"}) {
    const LintRun run = run_lint(kFixtures + "/" + rel);
    EXPECT_EQ(run.exit_code, 0) << rel;
    EXPECT_TRUE(run.lines.empty()) << rel << " produced: " << run.lines.front();
  }
}

TEST(LintRules, NoFindingsOnGoodTwinsInFullRun) {
  const LintRun run = run_lint(kFixtures);
  EXPECT_EQ(run.count_mentioning("good_compare.cpp"), 0);
  EXPECT_EQ(run.count_mentioning("good_wipe.cpp"), 0);
  EXPECT_EQ(run.count_mentioning("good_wipe_paths.cpp"), 0);
  EXPECT_EQ(run.count_mentioning("good_wipe_simd.cpp"), 0);
  EXPECT_EQ(run.count_mentioning("good_simd_no_include.cpp"), 0);
  EXPECT_EQ(run.count_mentioning("good_parser.cpp"), 0);
  EXPECT_EQ(run.count_mentioning("good_trace.cpp"), 0);
  EXPECT_EQ(run.count_mentioning("good_lexer_stress.cpp"), 0);
  EXPECT_EQ(run.count_mentioning("good_queue.cpp"), 0);
  EXPECT_EQ(run.count_mentioning("good_escape.cpp"), 0);
  EXPECT_EQ(run.count_mentioning("good_span.cpp"), 0);
  EXPECT_EQ(run.count_mentioning("good_det.cpp"), 0);
}

TEST(LintRules, RuleFilterRestrictsOutput) {
  const LintRun run = run_lint("--rule banned-fn " + kFixtures);
  ASSERT_EQ(run.exit_code, 1);
  EXPECT_EQ(static_cast<int>(run.lines.size()), 6);
  for (const auto& l : run.lines) {
    EXPECT_NE(l.find(" banned-fn: "), std::string::npos) << l;
  }
}

TEST(LintRules, ListRulesNamesTheCatalogue) {
  const LintRun run = run_lint("--list-rules");
  ASSERT_EQ(run.exit_code, 0);
  const std::string all = run.joined();
  for (const char* rule :
       {"secret-compare", "secret-wipe", "banned-fn", "partial-read", "nondet-test",
        "trace-no-secret", "queue-no-secret", "secret-escape", "wipe-all-paths",
        "dangling-span"}) {
    EXPECT_NE(all.find(rule), std::string::npos) << rule;
  }
}

TEST(LintRules, UnknownRuleIsAUsageError) {
  const LintRun run = run_lint("--rule no-such-rule " + kFixtures);
  EXPECT_EQ(run.exit_code, 2);
}

TEST(LintRules, JsonOutputCarriesRuleSymbolAndLine) {
  const LintRun run = run_lint("--json " + kFixtures + "/src/crypto/bad_wipe_paths.cpp");
  ASSERT_EQ(run.exit_code, 1);
  const std::string all = run.joined();
  ASSERT_FALSE(run.lines.empty());
  EXPECT_EQ(run.lines.front(), "[");
  EXPECT_NE(all.find("\"rule\": \"wipe-all-paths\""), std::string::npos) << all;
  EXPECT_NE(all.find("\"symbol\": \"install_keys\""), std::string::npos) << all;
  EXPECT_NE(all.find("\"line\": 16"), std::string::npos) << all;
}

TEST(LintRules, BaselineSuppressesReviewedFindings) {
  const std::string path = ::testing::TempDir() + "mbtls_lint_baseline_test.txt";
  {
    std::ofstream out(path);
    out << "# test baseline\n"
        << "wipe-all-paths bad_wipe_paths.cpp install_keys -- fixture demo\n";
  }
  const LintRun run =
      run_lint("--baseline " + path + " " + kFixtures + "/src/crypto/bad_wipe_paths.cpp");
  EXPECT_EQ(run.exit_code, 0);
  EXPECT_TRUE(run.lines.empty());
  std::remove(path.c_str());
}

// ------------------------------------------------------------- lexer units

TEST(LintLexer, RawStringsCollapseToOneToken) {
  const LexedFile f = lex("t.cpp", "auto s = R\"doc(strcpy(a, b);)doc\"; int after = 1;");
  for (const auto& t : f.tokens) EXPECT_NE(t.text, "strcpy");
  bool saw_after = false, saw_string = false;
  for (const auto& t : f.tokens) {
    saw_after = saw_after || (t.kind == TokenKind::kIdentifier && t.text == "after");
    saw_string = saw_string || t.kind == TokenKind::kString;
  }
  EXPECT_TRUE(saw_after) << "lexing must resume after the raw string";
  EXPECT_TRUE(saw_string);
}

TEST(LintLexer, DigitSeparatorsStayOneNumber) {
  const LexedFile f = lex("t.cpp", "int n = 1'000'000;\nint next = 0x10'00;");
  int numbers = 0;
  for (const auto& t : f.tokens) {
    if (t.kind == TokenKind::kNumber) ++numbers;
    EXPECT_NE(t.kind, TokenKind::kChar) << "separator must not open a char literal";
  }
  EXPECT_EQ(numbers, 2);
  bool saw_next = false;
  for (const auto& t : f.tokens)
    saw_next = saw_next || (t.kind == TokenKind::kIdentifier && t.text == "next");
  EXPECT_TRUE(saw_next);
}

TEST(LintLexer, BackslashContinuationExtendsLineComments) {
  const LexedFile f = lex("t.cpp",
                          "// swallowed \\\nstrcpy(a, b);\nint ok = 3;  // lint: secret\n");
  for (const auto& t : f.tokens) EXPECT_NE(t.text, "strcpy");
  bool saw_ok = false;
  for (const auto& t : f.tokens)
    saw_ok = saw_ok || (t.kind == TokenKind::kIdentifier && t.text == "ok");
  EXPECT_TRUE(saw_ok);
  EXPECT_TRUE(f.has_annotation(3, "secret")) << "line numbers must survive continuations";
}

TEST(LintLexer, IncludeTargetsAreRecorded) {
  const LexedFile f = lex("t.cpp",
                          "#include <immintrin.h>\n#include \"crypto/aes.h\"\n"
                          "#  include <vector>\n#define NOT_AN_INCLUDE <x.h>\n"
                          "int code = 1;\n");
  EXPECT_EQ(f.includes.size(), 3u);
  EXPECT_TRUE(f.includes.count("immintrin.h"));
  EXPECT_TRUE(f.includes.count("crypto/aes.h"));
  EXPECT_TRUE(f.includes.count("vector"));
  EXPECT_TRUE(f.has_intrinsic_include());
  // Directive bodies still never reach the token stream.
  for (const auto& t : f.tokens) EXPECT_NE(t.text, "immintrin");

  const LexedFile g = lex("t.cpp", "#include <vector>\nint code = 1;\n");
  EXPECT_FALSE(g.has_intrinsic_include());
}

// --------------------------------------------------------------- CFG units

const Cfg& single_cfg(const LexedFile& f, std::vector<Cfg>& storage) {
  storage = build_cfgs(f);
  EXPECT_EQ(storage.size(), 1u);
  return storage.front();
}

int count_return_blocks(const Cfg& cfg) {
  int n = 0;
  for (const auto& b : cfg.blocks) {
    for (const auto& st : b.stmts)
      if (st.kind == Stmt::Kind::kReturn) ++n;
  }
  return n;
}

TEST(LintCfg, IfElseBuildsADiamond) {
  const LexedFile f = lex(
      "t.cpp", "int f(int a) { int x = 0; if (a) { x = 1; } else { x = 2; } return x; }");
  std::vector<Cfg> cfgs;
  const Cfg& cfg = single_cfg(f, cfgs);
  ASSERT_EQ(cfg.params.size(), 1u);
  EXPECT_EQ(cfg.params[0].name, "a");

  // The entry block ends with the `if` header and has two successors (then
  // and else arms), which merge into a single join block before the return.
  const auto& entry = cfg.blocks[cfg.entry];
  ASSERT_EQ(entry.succs.size(), 2u);
  const auto& then_blk = cfg.blocks[entry.succs[0]];
  const auto& else_blk = cfg.blocks[entry.succs[1]];
  ASSERT_EQ(then_blk.succs.size(), 1u);
  ASSERT_EQ(else_blk.succs.size(), 1u);
  EXPECT_EQ(then_blk.succs[0], else_blk.succs[0]) << "arms must merge (diamond)";
  const auto& join = cfg.blocks[then_blk.succs[0]];
  ASSERT_EQ(join.stmts.size(), 1u);
  EXPECT_EQ(join.stmts[0].kind, Stmt::Kind::kReturn);
  ASSERT_EQ(join.succs.size(), 1u);
  EXPECT_EQ(join.succs[0], cfg.exit_id);
}

TEST(LintCfg, WhileLoopHasABackEdge) {
  const LexedFile f = lex("t.cpp", "int f(int n) { while (n) { n = n - 1; } return n; }");
  std::vector<Cfg> cfgs;
  const Cfg& cfg = single_cfg(f, cfgs);
  // Some block must edge back to an earlier block (the loop head).
  bool back_edge = false;
  for (std::size_t b = 0; b < cfg.blocks.size(); ++b) {
    for (int s : cfg.blocks[b].succs) {
      if (s >= 3 && static_cast<std::size_t>(s) < b) back_edge = true;  // 0-2 synthetic
    }
  }
  EXPECT_TRUE(back_edge);
  const auto reach = reachable_blocks(cfg);
  EXPECT_TRUE(reach[static_cast<std::size_t>(cfg.exit_id)]);
}

TEST(LintCfg, EarlyReturnsEdgeToTheExit) {
  const LexedFile f = lex("t.cpp", "int f(bool b) { if (b) { return 1; } return 2; }");
  std::vector<Cfg> cfgs;
  const Cfg& cfg = single_cfg(f, cfgs);
  EXPECT_EQ(count_return_blocks(cfg), 2);
  for (const auto& blk : cfg.blocks) {
    for (const auto& st : blk.stmts) {
      if (st.kind == Stmt::Kind::kReturn) {
        EXPECT_NE(std::find(blk.succs.begin(), blk.succs.end(), cfg.exit_id),
                  blk.succs.end())
            << "every return block must edge to the synthetic exit";
      }
    }
  }
}

TEST(LintCfg, ThrowEdgesToTheThrowExitNotTheNormalExit) {
  const LexedFile f = lex("t.cpp", "void f(bool b) { if (b) { throw 1; } }");
  std::vector<Cfg> cfgs;
  const Cfg& cfg = single_cfg(f, cfgs);
  EXPECT_NE(cfg.exit_id, cfg.throw_id);
  bool throw_edge = false;
  for (const auto& blk : cfg.blocks) {
    for (const auto& st : blk.stmts) {
      if (st.kind == Stmt::Kind::kThrow) {
        throw_edge = std::find(blk.succs.begin(), blk.succs.end(), cfg.throw_id) !=
                     blk.succs.end();
      }
    }
  }
  EXPECT_TRUE(throw_edge);
}

// ----------------------------------------------------------- taint dataflow

std::vector<Finding> dataflow_findings(const std::string& source) {
  std::vector<LexedFile> files;
  files.push_back(lex("src/mbtls/unit.cpp", source));
  const auto analyzed = analyze_files(files);
  const Summaries sums = compute_summaries(analyzed);
  std::vector<Finding> out;
  for (const auto& af : analyzed) run_dataflow_rules(af, sums, out);
  return out;
}

TEST(LintTaint, JoinIsMayTaint_BranchAssignmentReachesTheSink) {
  // `v` is tainted on only one arm; the union join at the merge point must
  // keep the taint, so the post-merge sink is flagged.
  const auto findings = dataflow_findings(
      "void f(Pool& pool, const Bytes& session_key, bool b) {\n"
      "  Bytes v;\n"
      "  if (b) { v = session_key; }\n"
      "  pool.post(v);\n"
      "}\n");
  ASSERT_EQ(findings.size(), 1u) << (findings.empty() ? "" : findings[0].message);
  EXPECT_EQ(findings[0].rule, "secret-escape");
  EXPECT_EQ(findings[0].line, 4);
  EXPECT_EQ(findings[0].symbol, "f");
}

TEST(LintTaint, StrongUpdateKillsTaintBeforeTheSink) {
  const auto findings = dataflow_findings(
      "void g(Pool& pool, const Bytes& session_key) {\n"
      "  Bytes v = session_key;\n"
      "  v = Bytes(32);\n"
      "  pool.post(v);\n"
      "}\n");
  EXPECT_TRUE(findings.empty()) << findings.front().message;
}

TEST(LintTaint, SummariesCarryTaintAcrossACallBoundary) {
  // `derive` returns a secret (by name); the caller's neutrally-named local
  // becomes tainted purely through the interprocedural summary.
  const auto findings = dataflow_findings(
      "Bytes derive(const Bytes& ikm) {\n"
      "  Bytes master_secret = stretch(ikm);\n"
      "  return master_secret;\n"
      "}\n"
      "void h(Pool& pool, const Bytes& ikm) {\n"
      "  Bytes blob = derive(ikm);\n"
      "  pool.post(blob);\n"
      "}\n");
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "secret-escape");
  EXPECT_EQ(findings[0].symbol, "h");
}

}  // namespace
