// Fixture tests for tools/mbtls-lint: drive the real binary over
// tools/lint/fixtures/ and assert the exact finding set. The fixtures keep
// their expected file:line pairs stable (documented inline), so any rule
// regression — missed finding or new false positive — fails here.
//
// MBTLS_LINT_BIN and MBTLS_LINT_FIXTURES are injected by tests/CMakeLists.txt.
#include <gtest/gtest.h>

#include <sys/wait.h>

#include <array>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

namespace {

struct LintRun {
  int exit_code = -1;
  std::vector<std::string> lines;  // stdout, one finding per line

  bool has(const std::string& file_suffix, int line, const std::string& rule) const {
    const std::string needle =
        file_suffix + ":" + std::to_string(line) + ": " + rule + ":";
    for (const auto& l : lines) {
      if (l.find(needle) != std::string::npos) return true;
    }
    return false;
  }

  int count_mentioning(const std::string& needle) const {
    int n = 0;
    for (const auto& l : lines) {
      if (l.find(needle) != std::string::npos) ++n;
    }
    return n;
  }
};

LintRun run_lint(const std::string& args) {
  LintRun out;
  const std::string cmd = std::string(MBTLS_LINT_BIN) + " " + args + " 2>/dev/null";
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return out;
  std::string text;
  std::array<char, 4096> buf{};
  std::size_t got = 0;
  while ((got = fread(buf.data(), 1, buf.size(), pipe)) > 0) {
    text.append(buf.data(), got);
  }
  const int status = pclose(pipe);
  out.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  std::istringstream iss(text);
  std::string line;
  while (std::getline(iss, line)) {
    if (!line.empty()) out.lines.push_back(line);
  }
  return out;
}

const std::string kFixtures = MBTLS_LINT_FIXTURES;

TEST(LintRules, BadFixturesTripEveryRuleAtDocumentedLines) {
  const LintRun run = run_lint(kFixtures);
  ASSERT_EQ(run.exit_code, 1) << "violations must exit nonzero";

  // secret-compare: memcmp, variable-time equal(), operator== on secrets.
  EXPECT_TRUE(run.has("src/crypto/bad_compare.cpp", 11, "secret-compare"));
  EXPECT_TRUE(run.has("src/crypto/bad_compare.cpp", 17, "secret-compare"));
  EXPECT_TRUE(run.has("src/crypto/bad_compare.cpp", 21, "secret-compare"));

  // secret-wipe: annotated local and name-pattern member, never wiped.
  EXPECT_TRUE(run.has("src/crypto/bad_wipe.cpp", 9, "secret-wipe"));
  EXPECT_TRUE(run.has("src/crypto/bad_wipe.cpp", 14, "secret-wipe"));

  // partial-read: Reader/Parser without expect_end() or annotation.
  EXPECT_TRUE(run.has("src/tls/bad_parser.cpp", 24, "partial-read"));
  EXPECT_TRUE(run.has("src/tls/bad_parser.cpp", 29, "partial-read"));

  // banned-fn: strcpy, sprintf, raw new[] in parser code, rand.
  EXPECT_TRUE(run.has("src/tls/bad_parser.cpp", 33, "banned-fn"));
  EXPECT_TRUE(run.has("src/tls/bad_parser.cpp", 35, "banned-fn"));
  EXPECT_TRUE(run.has("src/tls/bad_parser.cpp", 40, "banned-fn"));
  EXPECT_TRUE(run.has("src/tls/bad_parser.cpp", 44, "banned-fn"));

  // nondet-test: srand + wall-clock seed, rand(), random_device.
  EXPECT_TRUE(run.has("tests/bad_nondet.cpp", 10, "nondet-test"));
  EXPECT_TRUE(run.has("tests/bad_nondet.cpp", 11, "nondet-test"));
  EXPECT_TRUE(run.has("tests/bad_nondet.cpp", 15, "nondet-test"));
  // srand/rand in tests also trip banned-fn.
  EXPECT_TRUE(run.has("tests/bad_nondet.cpp", 10, "banned-fn"));
  EXPECT_TRUE(run.has("tests/bad_nondet.cpp", 11, "banned-fn"));

  // trace-no-secret: raw secret and key byte handed to a trace emitter.
  EXPECT_TRUE(run.has("src/tls/bad_trace.cpp", 15, "trace-no-secret"));
  EXPECT_TRUE(run.has("src/tls/bad_trace.cpp", 16, "trace-no-secret"));

  // queue-no-secret: raw key material posted/submitted to a worker queue.
  EXPECT_TRUE(run.has("src/util/bad_queue.cpp", 15, "queue-no-secret"));
  EXPECT_TRUE(run.has("src/util/bad_queue.cpp", 16, "queue-no-secret"));

  // The exact finding multiset: 10 on time(nullptr) doubles the srand line.
  EXPECT_EQ(run.count_mentioning("bad_compare.cpp"), 3);
  EXPECT_EQ(run.count_mentioning("bad_wipe.cpp"), 2);
  EXPECT_EQ(run.count_mentioning("bad_parser.cpp"), 6);
  EXPECT_EQ(run.count_mentioning("bad_nondet.cpp"), 6);
  EXPECT_EQ(run.count_mentioning("bad_trace.cpp"), 2);
  EXPECT_EQ(run.count_mentioning("bad_queue.cpp"), 2);
  EXPECT_EQ(static_cast<int>(run.lines.size()), 21);
}

TEST(LintRules, GoodFixturesAreClean) {
  for (const char* rel : {"src/crypto/good_compare.cpp", "src/crypto/good_wipe.cpp",
                          "src/tls/good_parser.cpp", "src/tls/good_trace.cpp",
                          "src/util/good_queue.cpp", "tests/good_det.cpp"}) {
    const LintRun run = run_lint(kFixtures + "/" + rel);
    EXPECT_EQ(run.exit_code, 0) << rel;
    EXPECT_TRUE(run.lines.empty()) << rel << " produced: " << run.lines.front();
  }
}

TEST(LintRules, NoFindingsOnGoodTwinsInFullRun) {
  const LintRun run = run_lint(kFixtures);
  EXPECT_EQ(run.count_mentioning("good_compare.cpp"), 0);
  EXPECT_EQ(run.count_mentioning("good_wipe.cpp"), 0);
  EXPECT_EQ(run.count_mentioning("good_parser.cpp"), 0);
  EXPECT_EQ(run.count_mentioning("good_trace.cpp"), 0);
  EXPECT_EQ(run.count_mentioning("good_queue.cpp"), 0);
  EXPECT_EQ(run.count_mentioning("good_det.cpp"), 0);
}

TEST(LintRules, RuleFilterRestrictsOutput) {
  const LintRun run = run_lint("--rule banned-fn " + kFixtures);
  ASSERT_EQ(run.exit_code, 1);
  EXPECT_EQ(static_cast<int>(run.lines.size()), 6);
  for (const auto& l : run.lines) {
    EXPECT_NE(l.find(" banned-fn: "), std::string::npos) << l;
  }
}

TEST(LintRules, ListRulesNamesTheCatalogue) {
  const LintRun run = run_lint("--list-rules");
  ASSERT_EQ(run.exit_code, 0);
  std::string all;
  for (const auto& l : run.lines) all += l + "\n";
  for (const char* rule : {"secret-compare", "secret-wipe", "banned-fn", "partial-read",
                           "nondet-test", "trace-no-secret", "queue-no-secret"}) {
    EXPECT_NE(all.find(rule), std::string::npos) << rule;
  }
}

TEST(LintRules, UnknownRuleIsAUsageError) {
  const LintRun run = run_lint("--rule no-such-rule " + kFixtures);
  EXPECT_EQ(run.exit_code, 2);
}

}  // namespace
