// DER encode/decode round trips and malformed-input rejection.
#include <gtest/gtest.h>

#include "asn1/der.h"
#include "util/hex.h"

namespace mbtls::asn1 {
namespace {

TEST(Der, IntegerEncoding) {
  EXPECT_EQ(hex_encode(encode_integer(std::int64_t{0})), "020100");
  EXPECT_EQ(hex_encode(encode_integer(std::int64_t{127})), "02017f");
  // 128 needs a leading zero byte (two's complement).
  EXPECT_EQ(hex_encode(encode_integer(std::int64_t{128})), "02020080");
  EXPECT_EQ(hex_encode(encode_integer(std::int64_t{256})), "02020100");
}

TEST(Der, IntegerRoundTrip) {
  const bn::BigInt v = bn::BigInt::from_hex("deadbeef00112233");
  const Bytes enc = encode_integer(v);
  Parser p(enc);
  EXPECT_EQ(p.integer(), v);
}

TEST(Der, SmallInteger) {
  const Bytes enc = encode_integer(std::int64_t{65537});
  Parser p(enc);
  EXPECT_EQ(p.small_integer(), 65537);
}

TEST(Der, LongFormLength) {
  const Bytes big(300, 0x55);
  const Bytes enc = encode_octet_string(big);
  // 0x04, 0x82, 0x01, 0x2c prefix.
  EXPECT_EQ(hex_encode(ByteView(enc).first(4)), "0482012c");
  Parser p(enc);
  EXPECT_EQ(to_bytes(p.octet_string()), big);
}

TEST(Der, RejectsNonMinimalLength) {
  // 0x04 0x81 0x05 would be a non-minimal long-form encoding for length 5.
  const Bytes bad = {0x04, 0x81, 0x05, 1, 2, 3, 4, 5};
  Parser p(bad);
  EXPECT_THROW(p.any(), DecodeError);
}

TEST(Der, RejectsTruncated) {
  const Bytes bad = {0x30, 0x05, 0x01};
  Parser p(bad);
  EXPECT_THROW(p.any(), DecodeError);
}

TEST(Der, OidKnownEncodings) {
  // sha256WithRSAEncryption 1.2.840.113549.1.1.11
  EXPECT_EQ(hex_encode(encode_oid("1.2.840.113549.1.1.11")), "06092a864886f70d01010b");
  // id-ecPublicKey 1.2.840.10045.2.1
  EXPECT_EQ(hex_encode(encode_oid("1.2.840.10045.2.1")), "06072a8648ce3d0201");
  // commonName 2.5.4.3
  EXPECT_EQ(hex_encode(encode_oid("2.5.4.3")), "0603550403");
}

TEST(Der, OidRoundTrip) {
  for (const char* oid : {"1.2.840.113549.1.1.11", "2.5.29.17", "1.3.6.1.4.1.311.1",
                          "2.5.4.3", "1.2.840.10045.4.3.2"}) {
    const Bytes enc = encode_oid(oid);
    Parser p(enc);
    EXPECT_EQ(p.oid(), oid);
  }
}

TEST(Der, OidRejectsMalformedText) {
  EXPECT_THROW(encode_oid(""), std::invalid_argument);
  EXPECT_THROW(encode_oid("1."), std::invalid_argument);
  EXPECT_THROW(encode_oid("abc"), std::invalid_argument);
  EXPECT_THROW(encode_oid("3.1"), std::invalid_argument);
}

TEST(Der, BooleanAndNull) {
  const Bytes bt = encode_boolean(true);
  Parser pt(bt);
  EXPECT_TRUE(pt.boolean());
  const Bytes bf = encode_boolean(false);
  Parser pf(bf);
  EXPECT_FALSE(pf.boolean());
  const Bytes bn = encode_null();
  Parser pn(bn);
  EXPECT_NO_THROW(pn.null());
}

TEST(Der, BitString) {
  const Bytes payload = {0xde, 0xad};
  const Bytes enc = encode_bit_string(payload);
  Parser p(enc);
  EXPECT_EQ(p.bit_string(), payload);
}

TEST(Der, Strings) {
  const Bytes bu = encode_utf8_string("héllo");
  Parser pu(bu);
  EXPECT_EQ(pu.string(), "héllo");
  const Bytes bp = encode_printable_string("Example CA");
  Parser pp(bp);
  EXPECT_EQ(pp.string(), "Example CA");
}

TEST(Der, UtcTimeRoundTrip) {
  // 2017-12-12 12:00:00 UTC (the CoNEXT'17 dates) = 1513080000.
  const std::int64_t t = 1513080000;
  const Bytes enc = encode_utc_time(t);
  Parser p(enc);
  EXPECT_EQ(p.utc_time(), t);
}

TEST(Der, UtcTimeKnownString) {
  // Unix epoch: 700101000000Z.
  const Bytes enc = encode_utc_time(0);
  // Skip tag (0x17) + length (0x0d).
  EXPECT_EQ(to_string(ByteView(enc).subspan(2)), "700101000000Z");
}

TEST(Der, UtcTimeRangeEnforced) {
  EXPECT_THROW(encode_utc_time(4102444800), std::invalid_argument);  // 2100
}

TEST(Der, UtcTimeSweep) {
  for (std::int64_t t : {0L, 86399L, 86400L, 951782400L /* 2000-02-29 */,
                         1513080000L, 2524607999L /* 2049-12-31 23:59:59 */}) {
    const Bytes enc = encode_utc_time(t);
    Parser p(enc);
    EXPECT_EQ(p.utc_time(), t) << t;
  }
}

TEST(Der, SequenceNesting) {
  const Bytes inner = encode_sequence({encode_integer(std::int64_t{1}), encode_null()});
  const Bytes outer = encode_sequence({inner, encode_boolean(true)});
  Parser p(outer);
  Parser seq = p.sequence();
  p.expect_end();
  Parser in = seq.sequence();
  EXPECT_EQ(in.small_integer(), 1);
  in.null();
  in.expect_end();
  EXPECT_TRUE(seq.boolean());
  seq.expect_end();
}

TEST(Der, ContextTags) {
  const Bytes wrapped = encode_context(3, encode_integer(std::int64_t{7}));
  EXPECT_EQ(wrapped[0], 0xa3);
  Parser p(wrapped);
  Parser inner = p.context(3);
  EXPECT_EQ(inner.small_integer(), 7);
}

TEST(Der, PeekDoesNotConsume) {
  const Bytes enc = encode_boolean(true);
  Parser p(enc);
  EXPECT_EQ(p.peek_tag(), 0x01);
  EXPECT_TRUE(p.boolean());
}

}  // namespace
}  // namespace mbtls::asn1
