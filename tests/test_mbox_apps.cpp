// Middlebox applications: header-insertion proxy, web cache, IDS, LZ codec,
// and compression proxies — standalone and inside real mbTLS sessions.
#include <gtest/gtest.h>

#include "mbox/cache.h"
#include "mbox/compression_proxy.h"
#include "mbox/header_proxy.h"
#include "mbox/ids.h"
#include "mbox/lz.h"
#include "tests/mbtls_test_util.h"

namespace mbtls::mbox {
namespace {

using namespace mb::testing;

TEST(HeaderProxy, InsertsHeaderIntoRequests) {
  HeaderInsertionProxy proxy("Via", "mbtls-proxy");
  auto processor = proxy.processor();
  http::Request req;
  req.target = "/page";
  const Bytes out = processor(true, req.serialize());
  const auto parsed = http::parse_request(out);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->headers.get("Via"), "mbtls-proxy");
  EXPECT_EQ(proxy.requests_seen(), 1u);
}

TEST(HeaderProxy, ResponsesPassThrough) {
  HeaderInsertionProxy proxy("Via", "p");
  auto processor = proxy.processor();
  http::Response resp;
  resp.body = to_bytes(std::string_view("hello"));
  const Bytes wire = resp.serialize();
  EXPECT_EQ(processor(false, wire), wire);
}

TEST(HeaderProxy, HandlesRequestSplitAcrossRecords) {
  HeaderInsertionProxy proxy("Via", "p");
  auto processor = proxy.processor();
  http::Request req;
  req.body = Bytes(100, 'b');
  const Bytes wire = req.serialize();
  const Bytes first = processor(true, ByteView(wire).first(20));
  EXPECT_TRUE(first.empty());  // buffered
  const Bytes second = processor(true, ByteView(wire).subspan(20));
  const auto parsed = http::parse_request(second);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->headers.get("Via"), "p");
  EXPECT_EQ(parsed->body, req.body);
}

TEST(HeaderProxy, WorksInsideMbtlsSession) {
  // The paper's §5 prototype: an mbTLS HTTP header-insertion proxy.
  const auto id = make_identity("web.example");
  mb::ClientSession client(client_options("web.example"));
  mb::ServerSession server(server_options(id));
  HeaderInsertionProxy proxy("Via", "mbtls-proxy/0.1");
  auto mopts = middlebox_options("proxy.example", mb::Middlebox::Side::kClientSide);
  mopts.processor = proxy.processor();
  mb::Middlebox mbox(std::move(mopts));
  Chain chain{.client = &client, .middleboxes = {&mbox}, .server = &server};
  client.start();
  chain.pump();
  ASSERT_TRUE(client.established()) << client.error_message();

  http::Request req;
  req.target = "/index.html";
  req.headers.set("Host", "web.example");
  client.send(req.serialize());
  chain.pump();
  const auto at_server = http::parse_request(server.take_app_data());
  ASSERT_TRUE(at_server.has_value());
  EXPECT_EQ(at_server->headers.get("Via"), "mbtls-proxy/0.1");
  EXPECT_EQ(at_server->headers.get("Host"), "web.example");
}

TEST(WebCache, CachesSuccessfulResponses) {
  WebCache cache;
  auto processor = cache.processor();
  http::Request req;
  req.target = "/cached";
  processor(true, req.serialize());
  http::Response resp;
  resp.body = to_bytes(std::string_view("payload"));
  processor(false, resp.serialize());
  const auto hit = cache.lookup("/cached");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(to_string(*hit), "payload");
}

TEST(WebCache, IgnoresNon200AndNonGet) {
  WebCache cache;
  auto processor = cache.processor();
  http::Request post;
  post.method = "POST";
  post.target = "/no-cache";
  processor(true, post.serialize());
  http::Response resp;
  processor(false, resp.serialize());
  EXPECT_EQ(cache.size(), 0u);

  http::Request get;
  get.target = "/err";
  processor(true, get.serialize());
  http::Response err;
  err.status = 500;
  err.reason = "Server Error";
  processor(false, err.serialize());
  EXPECT_FALSE(cache.lookup("/err").has_value());
}

TEST(Ids, DetectsSignaturesAcrossRecordBoundaries) {
  IntrusionDetector ids({"EVIL", "maliciouspayload"});
  auto processor = ids.processor();
  processor(true, to_bytes(std::string_view("nothing here")));
  EXPECT_TRUE(ids.alerts().empty());
  // Signature split across two process calls.
  processor(true, to_bytes(std::string_view("...EV")));
  processor(true, to_bytes(std::string_view("IL...")));
  ASSERT_EQ(ids.alerts().size(), 1u);
  EXPECT_EQ(ids.alerts()[0].signature, "EVIL");
  EXPECT_TRUE(ids.alerts()[0].client_to_server);
}

TEST(Ids, OverlappingSignatures) {
  IntrusionDetector ids({"abc", "bcd", "cde"});
  auto processor = ids.processor();
  processor(false, to_bytes(std::string_view("abcde")));
  EXPECT_EQ(ids.alerts().size(), 3u);
}

TEST(Ids, TrafficPassesUnmodified) {
  IntrusionDetector ids({"X"});
  auto processor = ids.processor();
  const Bytes data = to_bytes(std::string_view("some X data"));
  EXPECT_EQ(processor(true, data), data);
}

TEST(Lz, RoundTripVariousInputs) {
  crypto::Drbg rng("lz", 0);
  const std::vector<Bytes> inputs = {
      {},
      to_bytes(std::string_view("a")),
      to_bytes(std::string_view("aaaaaaaaaaaaaaaaaaaaaaaaaaaaa")),
      to_bytes(std::string_view("abcabcabcabcabcabcabcabc")),
      rng.bytes(10),
      rng.bytes(5000),  // incompressible
      Bytes(20000, 0x42),
  };
  for (const auto& input : inputs) {
    const Bytes compressed = lz_compress(input);
    const auto back = lz_decompress(compressed);
    ASSERT_TRUE(back.has_value()) << "size " << input.size();
    EXPECT_EQ(*back, input) << "size " << input.size();
  }
}

TEST(Lz, CompressesRedundantData) {
  Bytes redundant;
  for (int i = 0; i < 500; ++i)
    append(redundant, to_bytes(std::string_view("the same phrase again and again. ")));
  const Bytes compressed = lz_compress(redundant);
  EXPECT_LT(compressed.size(), redundant.size() / 4);
}

TEST(Lz, DecompressRejectsGarbage) {
  // A match token referencing data before the start of output.
  const Bytes bad = {0x01, 0x00, 0x00};  // flag: match; offset 1 with empty output
  EXPECT_FALSE(lz_decompress(bad).has_value());
  const Bytes truncated = {0x01, 0x00};  // match token cut short
  EXPECT_FALSE(lz_decompress(truncated).has_value());
}

TEST(CompressionProxy, PairShrinksWireAndRestoresData) {
  // Compressor on the server side, decompressor on the client side; the
  // repetitive response crosses the middle of the path compressed.
  const auto id = make_identity("big.example");
  mb::ClientSession client(client_options("big.example"));
  mb::ServerSession server(server_options(id));

  DecompressorProxy decomp;
  auto c_opts = middlebox_options("decompress.example", mb::Middlebox::Side::kClientSide);
  c_opts.processor = decomp.processor();
  mb::Middlebox client_mbox(std::move(c_opts));

  CompressorProxy comp;
  auto s_opts = middlebox_options("compress.example", mb::Middlebox::Side::kServerSide);
  s_opts.processor = comp.processor();
  mb::Middlebox server_mbox(std::move(s_opts));

  Chain chain{.client = &client, .middleboxes = {&client_mbox, &server_mbox}, .server = &server};
  client.start();
  chain.pump();
  ASSERT_TRUE(client.established()) << client.error_message();

  Bytes page;
  for (int i = 0; i < 200; ++i)
    append(page, to_bytes(std::string_view("<div class=\"item\">repetitive markup</div>\n")));
  server.send(page);
  chain.pump();
  EXPECT_EQ(client.take_app_data(), page);
  EXPECT_GT(comp.bytes_in(), 0u);
  EXPECT_LT(comp.bytes_out(), comp.bytes_in() / 2);  // real wire savings
  EXPECT_EQ(decomp.failures(), 0u);
}

}  // namespace
}  // namespace mbtls::mbox
