// Helpers for mbTLS integration tests: build client/server/middlebox chains
// over in-memory pipes and pump them to quiescence.
#pragma once

#include <memory>

#include "mbtls/client.h"
#include "mbtls/middlebox.h"
#include "mbtls/server.h"
#include "tests/tls_test_util.h"

namespace mbtls::mb::testing {

using tls::testing::make_identity;
using tls::testing::shared_rng;
using tls::testing::test_ca;

inline ClientSession::Options client_options(const std::string& server_name,
                                             std::uint64_t seed = 1) {
  ClientSession::Options opts;
  opts.tls.is_client = true;
  opts.tls.trust_anchors = {test_ca().root()};
  opts.tls.server_name = server_name;
  opts.tls.rng_label = "mb-client";
  opts.tls.rng_seed = seed;
  return opts;
}

inline ServerSession::Options server_options(const tls::testing::ServerIdentity& id,
                                             std::uint64_t seed = 2) {
  ServerSession::Options opts;
  opts.tls.is_client = false;
  opts.tls.private_key = id.key;
  opts.tls.certificate_chain = id.chain;
  opts.tls.trust_anchors = {test_ca().root()};
  opts.tls.rng_label = "mb-server";
  opts.tls.rng_seed = seed;
  return opts;
}

inline Middlebox::Options middlebox_options(const std::string& name, Middlebox::Side side) {
  const auto id = make_identity(name);
  Middlebox::Options opts;
  opts.name = name;
  opts.side = side;
  opts.private_key = id.key;
  opts.certificate_chain = id.chain;
  return opts;
}

/// A chain: client -- [mbox...] -- server (plain TLS engine or ServerSession).
/// Pumps all byte streams until quiescent.
struct Chain {
  ClientSession* client = nullptr;
  tls::Engine* legacy_client = nullptr;  // alternative to `client`
  std::vector<Middlebox*> middleboxes;   // in path order, client first
  ServerSession* server = nullptr;
  tls::Engine* legacy_server = nullptr;  // alternative to `server`

  // Moves bytes one step; returns true if anything moved.
  bool step() {
    bool moved = false;
    auto move = [&](Bytes&& data, auto&& sink) {
      if (!data.empty()) {
        moved = true;
        sink(data);
      }
    };

    // Client egress -> first middlebox (or server).
    Bytes from_client = client ? client->take_output()
                               : (legacy_client ? legacy_client->take_output() : Bytes{});
    if (!middleboxes.empty()) {
      move(std::move(from_client), [&](const Bytes& d) { middleboxes[0]->feed_from_client(d); });
    } else {
      move(std::move(from_client), [&](const Bytes& d) {
        if (server) server->feed(d);
        if (legacy_server) legacy_server->feed(d);
      });
    }

    // Middlebox relays.
    for (std::size_t i = 0; i < middleboxes.size(); ++i) {
      Bytes up = middleboxes[i]->take_to_server();
      move(std::move(up), [&](const Bytes& d) {
        if (i + 1 < middleboxes.size()) {
          middleboxes[i + 1]->feed_from_client(d);
        } else {
          if (server) server->feed(d);
          if (legacy_server) legacy_server->feed(d);
        }
      });
      Bytes down = middleboxes[i]->take_to_client();
      move(std::move(down), [&](const Bytes& d) {
        if (i == 0) {
          if (client) client->feed(d);
          if (legacy_client) legacy_client->feed(d);
        } else {
          middleboxes[i - 1]->feed_from_server(d);
        }
      });
    }

    // Server egress -> last middlebox (or client).
    Bytes from_server = server ? server->take_output()
                               : (legacy_server ? legacy_server->take_output() : Bytes{});
    if (!middleboxes.empty()) {
      move(std::move(from_server),
           [&](const Bytes& d) { middleboxes.back()->feed_from_server(d); });
    } else {
      move(std::move(from_server), [&](const Bytes& d) {
        if (client) client->feed(d);
        if (legacy_client) legacy_client->feed(d);
      });
    }
    return moved;
  }

  void pump(int max_iters = 200) {
    for (int i = 0; i < max_iters && step(); ++i) {
    }
  }
};

}  // namespace mbtls::mb::testing
