// mcTLS baseline: layered-key access control, the read-only enforcement
// mbTLS trades away, and the deployability costs the paper's §2.2 design
// space attributes to it.
#include <gtest/gtest.h>

#include "baselines/mctls.h"
#include "tests/tls_test_util.h"

namespace mbtls::baselines {
namespace {

using tls::testing::shared_rng;
using tls::testing::test_ca;

McContextKeys test_context() {
  crypto::Drbg rng("mctls-keys", 0);
  const Bytes cs = rng.bytes(32), ss = rng.bytes(32);
  return derive_context_keys(cs, ss);
}

TEST(McTls, BothSharesRequiredForKeys) {
  crypto::Drbg rng("mctls-shares", 0);
  const Bytes cs = rng.bytes(32), ss = rng.bytes(32);
  const auto full = derive_context_keys(cs, ss);
  // Either share alone (other zeroed) yields entirely different keys —
  // a middlebox keyed by only one endpoint has nothing.
  const auto client_only = derive_context_keys(cs, Bytes(32, 0));
  const auto server_only = derive_context_keys(Bytes(32, 0), ss);
  EXPECT_NE(full.reader_key, client_only.reader_key);
  EXPECT_NE(full.reader_key, server_only.reader_key);
  EXPECT_NE(full.writer_mac, client_only.writer_mac);
}

TEST(McTls, KeySubsetsFollowPermissions) {
  const auto ctx = test_context();
  const auto none = keys_for(ctx, McPermission::kNone, false);
  EXPECT_TRUE(none.reader_key.empty());
  const auto ro = keys_for(ctx, McPermission::kRead, false);
  EXPECT_FALSE(ro.reader_key.empty());
  EXPECT_TRUE(ro.writer_mac.empty());
  EXPECT_TRUE(ro.endpoint_mac.empty());
  const auto rw = keys_for(ctx, McPermission::kReadWrite, false);
  EXPECT_FALSE(rw.writer_mac.empty());
  EXPECT_TRUE(rw.endpoint_mac.empty());
  const auto endpoint = keys_for(ctx, McPermission::kNone, true);
  EXPECT_FALSE(endpoint.endpoint_mac.empty());
}

TEST(McTls, UntouchedRecordVerifiesAsUntouched) {
  const auto ctx = test_context();
  McRecordLayer sender(keys_for(ctx, McPermission::kNone, true));
  McRecordLayer receiver(keys_for(ctx, McPermission::kNone, true));
  const Bytes record = sender.seal(to_bytes(std::string_view("pristine")));
  const auto opened = receiver.open(record);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(opened->verdict, McVerdict::kUntouched);
  EXPECT_EQ(to_string(opened->payload), "pristine");
}

TEST(McTls, WriterModificationIsVisibleButLegal) {
  const auto ctx = test_context();
  McRecordLayer sender(keys_for(ctx, McPermission::kNone, true));
  McMiddlebox writer(keys_for(ctx, McPermission::kReadWrite, false), [](ByteView d) {
    Bytes out = to_bytes(d);
    append(out, to_bytes(std::string_view(" [compressed]")));
    return out;
  });
  McRecordLayer receiver(keys_for(ctx, McPermission::kNone, true));

  const Bytes record = sender.seal(to_bytes(std::string_view("data")));
  const Bytes forwarded = writer.process(record);
  const auto opened = receiver.open(forwarded);
  ASSERT_TRUE(opened.has_value());
  // The endpoint knows a writer changed it — the mcTLS signal mbTLS lacks.
  EXPECT_EQ(opened->verdict, McVerdict::kModifiedByWriter);
  EXPECT_EQ(to_string(opened->payload), "data [compressed]");
}

TEST(McTls, ReaderCanReadButNotWrite) {
  const auto ctx = test_context();
  McRecordLayer sender(keys_for(ctx, McPermission::kNone, true));
  McMiddlebox reader(keys_for(ctx, McPermission::kRead, false), {});
  McRecordLayer receiver(keys_for(ctx, McPermission::kNone, true));

  const Bytes record = sender.seal(to_bytes(std::string_view("observe me")));
  const Bytes forwarded = reader.process(record);
  EXPECT_EQ(to_string(reader.last_seen()), "observe me");  // read access works
  const auto opened = receiver.open(forwarded);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(opened->verdict, McVerdict::kUntouched);  // and nothing changed
}

TEST(McTls, MaliciousReaderModificationDetected) {
  // A read-only middlebox decrypts, alters the payload, re-encrypts with
  // the reader key (which it has), and fakes the MACs as best it can. The
  // endpoint's writer-MAC check must flag it.
  const auto ctx = test_context();
  McRecordLayer sender(keys_for(ctx, McPermission::kNone, true));
  McRecordLayer receiver(keys_for(ctx, McPermission::kNone, true));
  const Bytes record = sender.seal(to_bytes(std::string_view("important: pay $10")));

  // The malicious reader's forgery: decrypt with reader key, change bytes,
  // re-seal with garbage MACs (it holds neither MAC key).
  crypto::AesGcm reader_aead(ctx.reader_key);
  Bytes iv(4, 0);
  put_u64(iv, 0);
  auto inner = reader_aead.open(iv, {}, record);
  ASSERT_TRUE(inner.has_value());
  Bytes forged_payload = to_bytes(std::string_view("important: pay $9999"));
  Bytes forged_inner = forged_payload;
  crypto::Drbg rng("forged-macs", 0);
  append(forged_inner, rng.bytes(64));  // fake writer + endpoint MACs
  const Bytes forged = reader_aead.seal(iv, {}, forged_inner);

  const auto opened = receiver.open(forged);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(opened->verdict, McVerdict::kIllegallyModified);
}

TEST(McTls, ThirdPartyTamperingFailsOuterLayer) {
  const auto ctx = test_context();
  McRecordLayer sender(keys_for(ctx, McPermission::kNone, true));
  McRecordLayer receiver(keys_for(ctx, McPermission::kNone, true));
  Bytes record = sender.seal(to_bytes(std::string_view("x")));
  record[record.size() / 2] ^= 1;
  EXPECT_FALSE(receiver.open(record).has_value());
}

TEST(McTls, NoReadPermissionSeesNothing) {
  const auto ctx = test_context();
  McRecordLayer sender(keys_for(ctx, McPermission::kNone, true));
  McMiddlebox blind(keys_for(ctx, McPermission::kNone, false), {});
  const Bytes record = sender.seal(to_bytes(std::string_view("opaque")));
  const Bytes forwarded = blind.process(record);
  EXPECT_EQ(forwarded, record);        // passes through unchanged
  EXPECT_TRUE(blind.last_seen().empty());  // and unread
}

TEST(McTls, SealWithoutWritePermissionThrows) {
  const auto ctx = test_context();
  McRecordLayer reader(keys_for(ctx, McPermission::kRead, false));
  EXPECT_THROW(reader.seal(Bytes{1}), std::logic_error);
}

TEST(McTls, SetupDeliversSharesOverRealTls) {
  crypto::Drbg rng("mctls-setup", 0);
  const auto setup = mctls_setup({McPermission::kRead, McPermission::kReadWrite}, test_ca(), rng);
  ASSERT_EQ(setup.middleboxes.size(), 2u);
  // The derived keys at the middleboxes match the endpoints' context keys.
  EXPECT_EQ(setup.middleboxes[0].reader_key, setup.context.reader_key);
  EXPECT_TRUE(setup.middleboxes[0].writer_mac.empty());
  EXPECT_EQ(setup.middleboxes[1].writer_mac, setup.context.writer_mac);
  // End-to-end: endpoint -> RO box -> RW box -> endpoint.
  McRecordLayer client(keys_for(setup.context, McPermission::kNone, true));
  McMiddlebox ro(setup.middleboxes[0], {});
  McMiddlebox rw(setup.middleboxes[1],
                 [](ByteView d) { return concat({d, to_bytes(std::string_view("!"))}); });
  McRecordLayer server(keys_for(setup.context, McPermission::kNone, true));
  const Bytes rec = client.seal(to_bytes(std::string_view("hi")));
  const auto final_rec = rw.process(ro.process(rec));
  const auto opened = server.open(final_rec);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(to_string(opened->payload), "hi!");
  EXPECT_EQ(opened->verdict, McVerdict::kModifiedByWriter);
}

}  // namespace
}  // namespace mbtls::baselines
