// mbTLS across every supported cipher suite (hop keys, key-material sizes,
// and DHE's larger flights all vary by suite), plus configuration corners:
// pre-declared middleboxes, attestation of the *origin server*, and secrets
// landing in stores on the server side.
#include <gtest/gtest.h>

#include "tests/mbtls_test_util.h"

namespace mbtls::mb {
namespace {

using namespace testing;

class MbtlsSuiteSweep : public ::testing::TestWithParam<tls::CipherSuite> {};

TEST_P(MbtlsSuiteSweep, FullSessionThroughTwoMiddleboxes) {
  const tls::CipherSuite suite = GetParam();
  const auto info = tls::suite_info(suite);
  const auto key_type = info->auth == tls::AuthAlgo::kRsa ? x509::KeyType::kRsa
                                                          : x509::KeyType::kEcdsaP256;
  const auto server_id = make_identity("suites.example", key_type);
  const auto mbox_id = make_identity("suite-mbox.example", key_type);

  auto copts = client_options("suites.example");
  copts.tls.cipher_suites = {suite};
  ClientSession client(std::move(copts));
  auto sopts = server_options(server_id);
  sopts.tls.cipher_suites = {suite};
  ServerSession server(std::move(sopts));

  auto make_box = [&](const char* name, Middlebox::Side side) {
    Middlebox::Options mopts;
    mopts.name = name;
    mopts.side = side;
    mopts.cipher_suites = {suite};
    mopts.private_key = mbox_id.key;
    mopts.certificate_chain = mbox_id.chain;
    return Middlebox(std::move(mopts));
  };
  Middlebox c0 = make_box("c0.example", Middlebox::Side::kClientSide);
  Middlebox s0 = make_box("s0.example", Middlebox::Side::kServerSide);
  Chain chain{.client = &client, .middleboxes = {&c0, &s0}, .server = &server};
  client.start();
  chain.pump(400);
  ASSERT_TRUE(client.established()) << tls::suite_name(suite) << ": " << client.error_message();
  ASSERT_TRUE(server.established()) << server.error_message();
  EXPECT_EQ(client.primary().suite().id, suite);
  EXPECT_TRUE(c0.joined());
  EXPECT_TRUE(s0.joined());

  crypto::Drbg rng("suite-data", static_cast<std::uint64_t>(suite));
  const Bytes blob = rng.bytes(20'000);
  client.send(blob);
  chain.pump(400);
  EXPECT_EQ(server.take_app_data(), blob);
}

INSTANTIATE_TEST_SUITE_P(
    AllSuites, MbtlsSuiteSweep,
    ::testing::Values(tls::CipherSuite::kEcdheEcdsaAes256GcmSha384,
                      tls::CipherSuite::kEcdheEcdsaAes128GcmSha256,
                      tls::CipherSuite::kEcdheRsaAes256GcmSha384,
                      tls::CipherSuite::kEcdheRsaAes128GcmSha256,
                      tls::CipherSuite::kDheRsaAes256GcmSha384,
                      tls::CipherSuite::kDheRsaAes128GcmSha256),
    [](const auto& info) {
      std::string name = tls::suite_name(info.param);
      for (auto& c : name)
        if (c == '-') c = '_';
      return name;
    });

TEST(MbtlsConfig, PreDeclaredMiddleboxNamesTravelInExtension) {
  // A client that knows its middleboxes a priori lists them in the
  // MiddleboxSupport extension (§3.4, pre-configured discovery).
  const auto id = make_identity("declared.example");
  auto copts = client_options("declared.example");
  copts.known_middleboxes = {"proxy-a.example", "proxy-b.example"};
  ClientSession client(std::move(copts));
  client.start();
  const Bytes flight = client.take_output();

  // The server-side parse of the primary ClientHello must expose the list.
  tls::RecordReader reader;
  reader.feed(flight);
  const auto rec = reader.next();
  ASSERT_TRUE(rec.has_value());
  tls::HandshakeReassembler reasm;
  reasm.feed(rec->payload);
  const auto msg = reasm.next();
  ASSERT_TRUE(msg.has_value());
  const auto hello = tls::ClientHello::parse(msg->body);
  const auto* ext = hello.find_extension(tls::kExtMiddleboxSupport);
  ASSERT_NE(ext, nullptr);
  const auto support = tls::MiddleboxSupportExtension::parse(ext->data);
  EXPECT_EQ(support.known_middleboxes,
            (std::vector<std::string>{"proxy-a.example", "proxy-b.example"}));
}

TEST(MbtlsConfig, ServerEndpointCanRequireMiddleboxAttestation) {
  // The paper's third trust scenario: the *service provider* expects its own
  // (outsourced) middlebox and verifies it with certificate + attestation.
  sgx::Platform platform;
  sgx::Enclave& enclave = platform.launch("cdn-node-v3");
  const auto id = make_identity("sp.example");

  ClientSession client(client_options("sp.example"));  // plain mbTLS client
  auto sopts = server_options(id);
  sopts.require_middlebox_attestation = true;
  sopts.expected_middlebox_measurement = sgx::measure("cdn-node-v3");
  ServerSession server(std::move(sopts));

  auto mopts = middlebox_options("cdn.sp.example", Middlebox::Side::kServerSide);
  mopts.enclave = &enclave;
  Middlebox mbox(std::move(mopts));
  Chain chain{.client = &client, .middleboxes = {&mbox}, .server = &server};
  client.start();
  chain.pump();
  ASSERT_TRUE(server.established()) << server.error_message();
  ASSERT_EQ(server.middleboxes().size(), 1u);
  EXPECT_TRUE(server.middleboxes()[0].attested);

  // And the mirror case: wrong code fails the server's policy.
  sgx::Enclave& evil = platform.launch("cdn-node-TAMPERED");
  ClientSession client2(client_options("sp.example", 5));
  auto sopts2 = server_options(id, 6);
  sopts2.require_middlebox_attestation = true;
  sopts2.expected_middlebox_measurement = sgx::measure("cdn-node-v3");
  ServerSession server2(std::move(sopts2));
  auto mopts2 = middlebox_options("cdn.sp.example", Middlebox::Side::kServerSide);
  mopts2.enclave = &evil;
  Middlebox mbox2(std::move(mopts2));
  Chain chain2{.client = &client2, .middleboxes = {&mbox2}, .server = &server2};
  client2.start();
  chain2.pump();
  EXPECT_TRUE(server2.failed());
}

TEST(MbtlsConfig, AnnouncementsVisibleToServerEvenWhenRejectedLater) {
  const auto id = make_identity("count.example");
  ClientSession client(client_options("count.example"));
  auto sopts = server_options(id);
  sopts.approve = [](const MiddleboxDescriptor&) { return false; };  // veto everything
  ServerSession server(std::move(sopts));
  Middlebox mbox(middlebox_options("vetoed.example", Middlebox::Side::kServerSide));
  Chain chain{.client = &client, .middleboxes = {&mbox}, .server = &server};
  client.start();
  chain.pump();
  EXPECT_EQ(server.announcements_seen(), 1u);
  EXPECT_TRUE(server.failed());
  EXPECT_NE(server.error_message().find("rejected by policy"), std::string::npos);
}

}  // namespace
}  // namespace mbtls::mb
