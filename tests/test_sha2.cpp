// SHA-2 known-answer tests (FIPS 180-4 / NIST CAVP examples) plus streaming
// and boundary-condition properties.
#include <gtest/gtest.h>

#include "crypto/sha2.h"
#include "util/hex.h"

namespace mbtls::crypto {
namespace {

TEST(Sha256, EmptyString) {
  EXPECT_EQ(hex_encode(Sha256::digest({})),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(hex_encode(Sha256::digest(to_bytes(std::string_view("abc")))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  const auto msg = to_bytes(std::string_view("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"));
  EXPECT_EQ(hex_encode(Sha256::digest(msg)),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  const Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(hex_encode(h.finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, StreamingMatchesOneShot) {
  // Split the same message at every boundary; digests must agree.
  const auto msg = to_bytes(std::string_view(
      "The quick brown fox jumps over the lazy dog, repeatedly, to cross block boundaries."));
  const Bytes expected = Sha256::digest(msg);
  for (std::size_t split = 0; split <= msg.size(); ++split) {
    Sha256 h;
    h.update(ByteView(msg).first(split));
    h.update(ByteView(msg).subspan(split));
    EXPECT_EQ(h.finish(), expected) << "split at " << split;
  }
}

// Padding edge cases: lengths around the 55/56/64-byte boundaries exercise
// the one-block vs two-block padding paths.
class Sha256PaddingBoundary : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Sha256PaddingBoundary, StreamingMatchesOneShot) {
  const std::size_t len = GetParam();
  const Bytes msg(len, 0x5a);
  const Bytes expected = Sha256::digest(msg);
  Sha256 h;
  for (std::size_t i = 0; i < len; ++i) h.update(ByteView(&msg[i], 1));
  EXPECT_EQ(h.finish(), expected);
}

INSTANTIATE_TEST_SUITE_P(Boundaries, Sha256PaddingBoundary,
                         ::testing::Values(0, 1, 54, 55, 56, 57, 63, 64, 65, 119, 127, 128, 129));

TEST(Sha384, Abc) {
  EXPECT_EQ(hex_encode(Sha384::digest(to_bytes(std::string_view("abc")))),
            "cb00753f45a35e8bb5a03d699ac65007272c32ab0eded1631a8b605a43ff5bed"
            "8086072ba1e7cc2358baeca134c825a7");
}

TEST(Sha384, Empty) {
  EXPECT_EQ(hex_encode(Sha384::digest({})),
            "38b060a751ac96384cd9327eb1b1e36a21fdb71114be07434c0cc7bf63f6e1da"
            "274edebfe76f65fbd51ad2f14898b95b");
}

TEST(Sha512, Abc) {
  EXPECT_EQ(hex_encode(Sha512::digest(to_bytes(std::string_view("abc")))),
            "ddaf35a193617abacc417349ae20413112e6fa4e89a97ea20a9eeee64b55d39a"
            "2192992a274fc1a836ba3c23a3feebbd454d4423643ce80e2a9ac94fa54ca49f");
}

TEST(Sha512, Empty) {
  EXPECT_EQ(hex_encode(Sha512::digest({})),
            "cf83e1357eefb8bdf1542850d66d8007d620e4050b5715dc83f4a921d36ce9ce"
            "47d0d13c5d85f2b0ff8318d2877eec2f63b931bd47417a81a538327af927da3e");
}

TEST(Sha384, PaddingBoundaries) {
  // 111/112/113 bytes exercise SHA-512-family padding paths.
  for (std::size_t len : {111u, 112u, 113u, 127u, 128u, 129u}) {
    const Bytes msg(len, 0xa5);
    const Bytes expected = Sha384::digest(msg);
    Sha384 h;
    h.update(ByteView(msg).first(len / 2));
    h.update(ByteView(msg).subspan(len / 2));
    EXPECT_EQ(h.finish(), expected) << "len " << len;
  }
}

TEST(HashDispatch, SizesAndEquivalence) {
  EXPECT_EQ(digest_size(HashAlgo::kSha256), 32u);
  EXPECT_EQ(digest_size(HashAlgo::kSha384), 48u);
  EXPECT_EQ(digest_size(HashAlgo::kSha512), 64u);
  EXPECT_EQ(block_size(HashAlgo::kSha256), 64u);
  EXPECT_EQ(block_size(HashAlgo::kSha384), 128u);
  const auto msg = to_bytes(std::string_view("abc"));
  EXPECT_EQ(hash(HashAlgo::kSha256, msg), Sha256::digest(msg));
  EXPECT_EQ(hash(HashAlgo::kSha384, msg), Sha384::digest(msg));
  EXPECT_EQ(hash(HashAlgo::kSha512, msg), Sha512::digest(msg));
}

}  // namespace
}  // namespace mbtls::crypto
