// X.509 issuance, parsing, signature verification, hostname matching, and
// chain validation — including the failure modes the legacy-interop
// experiment (§5.1) relies on (expired / invalid certificates).
#include <gtest/gtest.h>

#include "util/reader.h"
#include "x509/certificate.h"
#include "x509/verify.h"

namespace mbtls::x509 {
namespace {

crypto::Drbg& rng() {
  static crypto::Drbg r("x509-tests", 0);
  return r;
}

// Shared CAs (RSA keygen is slow; build once).
const CertificateAuthority& ecdsa_ca() {
  static const CertificateAuthority ca =
      CertificateAuthority::create("Test ECDSA Root", KeyType::kEcdsaP256, rng());
  return ca;
}

const CertificateAuthority& rsa_ca() {
  static const CertificateAuthority ca =
      CertificateAuthority::create("Test RSA Root", KeyType::kRsa, rng());
  return ca;
}

CertRequest leaf_request(const std::string& cn, const PublicKey& key) {
  CertRequest req;
  req.subject_cn = cn;
  req.san_dns = {cn};
  req.not_before = 0;
  req.not_after = 2524607999;  // 2049-12-31, the UTCTime limit
  req.key = key;
  return req;
}

TEST(X509, RootIsSelfSignedCa) {
  const Certificate& root = ecdsa_ca().root();
  EXPECT_TRUE(root.info().is_ca);
  EXPECT_EQ(root.info().subject_cn, "Test ECDSA Root");
  EXPECT_EQ(root.info().issuer_cn, "Test ECDSA Root");
  EXPECT_TRUE(root.verify_signature(root.info().key));
}

TEST(X509, ParseRoundTripPreservesFields) {
  const PrivateKey key = PrivateKey::generate(KeyType::kEcdsaP256, rng());
  CertRequest req = leaf_request("server.example.com", key.public_key());
  req.san_dns = {"server.example.com", "*.alt.example.com"};
  const Certificate cert = ecdsa_ca().issue(req, rng());

  const Certificate reparsed = Certificate::parse(cert.der());
  EXPECT_EQ(reparsed.info().subject_cn, "server.example.com");
  EXPECT_EQ(reparsed.info().issuer_cn, "Test ECDSA Root");
  EXPECT_EQ(reparsed.info().san_dns,
            (std::vector<std::string>{"server.example.com", "*.alt.example.com"}));
  EXPECT_FALSE(reparsed.info().is_ca);
  EXPECT_EQ(reparsed.info().not_after, 2524607999);
}

TEST(X509, EcdsaLeafSignatureVerifies) {
  const PrivateKey key = PrivateKey::generate(KeyType::kEcdsaP256, rng());
  const Certificate cert = ecdsa_ca().issue(leaf_request("a.example", key.public_key()), rng());
  EXPECT_TRUE(cert.verify_signature(ecdsa_ca().root().info().key));
  // Wrong issuer key fails.
  EXPECT_FALSE(cert.verify_signature(key.public_key()));
}

TEST(X509, RsaLeafSignatureVerifies) {
  const PrivateKey key = PrivateKey::generate(KeyType::kEcdsaP256, rng());
  const Certificate cert = rsa_ca().issue(leaf_request("b.example", key.public_key()), rng());
  EXPECT_TRUE(cert.verify_signature(rsa_ca().root().info().key));
}

TEST(X509, TamperedCertificateFailsVerification) {
  const PrivateKey key = PrivateKey::generate(KeyType::kEcdsaP256, rng());
  const Certificate cert = ecdsa_ca().issue(leaf_request("t.example", key.public_key()), rng());
  Bytes der = to_bytes(cert.der());
  // Flip a byte inside the subject name region; the parse may still succeed
  // but the signature must not verify.
  for (std::size_t at = 40; at < 80; at += 13) {
    Bytes mutated = der;
    mutated[at] ^= 0x01;
    try {
      const Certificate bad = Certificate::parse(mutated);
      EXPECT_FALSE(bad.verify_signature(ecdsa_ca().root().info().key)) << "offset " << at;
    } catch (const DecodeError&) {
      // Also an acceptable outcome.
    }
  }
}

TEST(X509, HostnameMatching) {
  const PrivateKey key = PrivateKey::generate(KeyType::kEcdsaP256, rng());
  CertRequest req = leaf_request("www.example.com", key.public_key());
  req.san_dns = {"www.example.com", "*.cdn.example.com"};
  const Certificate cert = ecdsa_ca().issue(req, rng());
  EXPECT_TRUE(cert.matches_hostname("www.example.com"));
  EXPECT_TRUE(cert.matches_hostname("edge1.cdn.example.com"));
  EXPECT_FALSE(cert.matches_hostname("example.com"));
  EXPECT_FALSE(cert.matches_hostname("a.b.cdn.example.com"));  // wildcard is single-label
  EXPECT_FALSE(cert.matches_hostname("evil.com"));
}

TEST(X509, HostnameFallsBackToCnWithoutSans) {
  const PrivateKey key = PrivateKey::generate(KeyType::kEcdsaP256, rng());
  CertRequest req = leaf_request("cn-only.example", key.public_key());
  req.san_dns.clear();
  const Certificate cert = ecdsa_ca().issue(req, rng());
  EXPECT_TRUE(cert.matches_hostname("cn-only.example"));
  EXPECT_FALSE(cert.matches_hostname("other.example"));
}

TEST(X509, ChainVerifyOk) {
  const PrivateKey key = PrivateKey::generate(KeyType::kEcdsaP256, rng());
  const Certificate leaf = ecdsa_ca().issue(leaf_request("ok.example", key.public_key()), rng());
  const Certificate anchors[] = {ecdsa_ca().root()};
  const Certificate chain[] = {leaf};
  VerifyOptions opts{.now = 1500000000, .hostname = "ok.example"};
  EXPECT_EQ(verify_chain(chain, anchors, opts), VerifyStatus::kOk);
}

TEST(X509, ChainVerifyWithIntermediate) {
  // Root -> intermediate CA -> leaf.
  const PrivateKey inter_key = PrivateKey::generate(KeyType::kEcdsaP256, rng());
  CertRequest inter_req = leaf_request("Intermediate CA", inter_key.public_key());
  inter_req.is_ca = true;
  const Certificate inter = ecdsa_ca().issue(inter_req, rng());

  const PrivateKey leaf_key = PrivateKey::generate(KeyType::kEcdsaP256, rng());
  const Certificate leaf =
      issue_certificate(leaf_request("deep.example", leaf_key.public_key()), "Intermediate CA",
                        inter_key, crypto::HashAlgo::kSha256, bn::BigInt(99), rng());

  const Certificate anchors[] = {ecdsa_ca().root()};
  const Certificate chain[] = {leaf, inter};
  VerifyOptions opts{.now = 1500000000, .hostname = "deep.example"};
  EXPECT_EQ(verify_chain(chain, anchors, opts), VerifyStatus::kOk);
}

TEST(X509, ChainVerifyFailures) {
  const PrivateKey key = PrivateKey::generate(KeyType::kEcdsaP256, rng());

  CertRequest expired = leaf_request("expired.example", key.public_key());
  expired.not_after = 1000;  // long past
  const Certificate expired_cert = ecdsa_ca().issue(expired, rng());

  CertRequest future = leaf_request("future.example", key.public_key());
  future.not_before = 2524600000;
  const Certificate future_cert = ecdsa_ca().issue(future, rng());

  const Certificate ok_cert = ecdsa_ca().issue(leaf_request("ok.example", key.public_key()), rng());

  const Certificate anchors[] = {ecdsa_ca().root()};
  VerifyOptions opts{.now = 1500000000, .hostname = ""};

  {
    const Certificate chain[] = {expired_cert};
    EXPECT_EQ(verify_chain(chain, anchors, opts), VerifyStatus::kExpired);
  }
  {
    const Certificate chain[] = {future_cert};
    EXPECT_EQ(verify_chain(chain, anchors, opts), VerifyStatus::kNotYetValid);
  }
  {
    const Certificate chain[] = {ok_cert};
    VerifyOptions host_opts{.now = 1500000000, .hostname = "wrong.example"};
    EXPECT_EQ(verify_chain(chain, anchors, host_opts), VerifyStatus::kHostnameMismatch);
  }
  {
    // No anchors -> unknown issuer.
    EXPECT_EQ(verify_chain(std::span<const Certificate>(&ok_cert, 1), {}, opts),
              VerifyStatus::kUnknownIssuer);
  }
  {
    EXPECT_EQ(verify_chain(std::span<const Certificate>{}, anchors, opts), VerifyStatus::kEmptyChain);
  }
  {
    // Anchor with matching name but wrong key -> bad signature.
    crypto::Drbg other_rng("other-ca", 0);
    const CertificateAuthority impostor =
        CertificateAuthority::create("Test ECDSA Root", KeyType::kEcdsaP256, other_rng);
    const Certificate bad_anchors[] = {impostor.root()};
    const Certificate chain[] = {ok_cert};
    EXPECT_EQ(verify_chain(chain, bad_anchors, opts), VerifyStatus::kBadSignature);
  }
}

TEST(X509, NonCaCannotAnchor) {
  const PrivateKey key = PrivateKey::generate(KeyType::kEcdsaP256, rng());
  const Certificate leaf = ecdsa_ca().issue(leaf_request("x.example", key.public_key()), rng());
  // A leaf pretending to be an anchor with the right name but is_ca=false.
  CertRequest fake = leaf_request("Test ECDSA Root", key.public_key());
  const Certificate fake_anchor = ecdsa_ca().issue(fake, rng());
  const Certificate anchors[] = {fake_anchor};
  const Certificate chain[] = {leaf};
  VerifyOptions opts;
  opts.now = 1500000000;
  EXPECT_EQ(verify_chain(chain, anchors, opts), VerifyStatus::kUnknownIssuer);
}

TEST(X509, SpkiRoundTrip) {
  const PrivateKey ec_key = PrivateKey::generate(KeyType::kEcdsaP256, rng());
  const auto ec_back = PublicKey::from_spki(ec_key.public_key().spki_der());
  ASSERT_TRUE(ec_back.has_value());
  EXPECT_EQ(ec_back->type(), KeyType::kEcdsaP256);

  const auto& rsa_pub = rsa_ca().key().public_key();
  const auto rsa_back = PublicKey::from_spki(rsa_pub.spki_der());
  ASSERT_TRUE(rsa_back.has_value());
  EXPECT_EQ(rsa_back->type(), KeyType::kRsa);
  EXPECT_EQ(rsa_back->rsa().n, rsa_pub.rsa().n);
}

TEST(X509, EcdsaDerSignatureCodec) {
  const Bytes raw(64, 0x42);
  const Bytes der = ecdsa_sig_to_der(raw);
  const auto back = ecdsa_sig_from_der(der);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, raw);
  EXPECT_FALSE(ecdsa_sig_from_der(Bytes{0x30, 0x00}).has_value());
}

TEST(X509, SerialNumbersIncrement) {
  const PrivateKey key = PrivateKey::generate(KeyType::kEcdsaP256, rng());
  const Certificate c1 = ecdsa_ca().issue(leaf_request("s1.example", key.public_key()), rng());
  const Certificate c2 = ecdsa_ca().issue(leaf_request("s2.example", key.public_key()), rng());
  EXPECT_NE(c1.info().serial, c2.info().serial);
}

}  // namespace
}  // namespace mbtls::x509
