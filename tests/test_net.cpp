// Discrete-event simulator, network routing/taps, and TCP behaviour.
#include <gtest/gtest.h>

#include "net/tcp.h"

namespace mbtls::net {
namespace {

TEST(Simulator, EventsRunInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(30, [&] { order.push_back(3); });
  sim.schedule(10, [&] { order.push_back(1); });
  sim.schedule(20, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30u);
}

TEST(Simulator, SameInstantIsFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) sim.schedule(10, [&order, i] { order.push_back(i); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, NestedScheduling) {
  Simulator sim;
  Time fired_at = 0;
  sim.schedule(10, [&] { sim.schedule(5, [&] { fired_at = sim.now(); }); });
  sim.run();
  EXPECT_EQ(fired_at, 15u);
}

TEST(Simulator, RunReportsDrained) {
  Simulator sim;
  sim.schedule(5, [] {});
  EXPECT_EQ(sim.run(), RunStatus::kDrained);
  EXPECT_EQ(sim.run(), RunStatus::kDrained);  // empty queue is also drained
}

TEST(Simulator, RunawayGuard) {
  // A self-rescheduling event must exhaust the budget, not spin forever —
  // and the caller must be able to tell that apart from a drained queue.
  Simulator sim;
  std::size_t fired = 0;
  std::function<void()> loop = [&] {
    ++fired;
    sim.schedule(1, loop);
  };
  sim.schedule(1, loop);
  EXPECT_EQ(sim.run(1000), RunStatus::kBudgetExhausted);
  EXPECT_EQ(fired, 1000u);
  // The runaway event is still queued; another bounded run hits the budget
  // again instead of pretending the simulation finished.
  EXPECT_EQ(sim.run(10), RunStatus::kBudgetExhausted);
  EXPECT_EQ(fired, 1010u);
}

TEST(Simulator, RunUntilDistinguishesDrainedFromDeadline) {
  Simulator sim;
  sim.schedule(10, [] {});
  EXPECT_EQ(sim.run_until(5), RunStatus::kDeadlineReached);
  EXPECT_EQ(sim.run_until(50), RunStatus::kDrained);
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  sim.schedule(10, [&] { ++fired; });
  sim.schedule(100, [&] { ++fired; });
  sim.run_until(50);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 50u);
}

class NetFixture : public ::testing::Test {
 protected:
  NetFixture() : net(sim) {
    a = net.add_node("a");
    b = net.add_node("b");
    c = net.add_node("c");
    net.add_link(a, b, {.propagation = 10 * kMillisecond});
    net.add_link(b, c, {.propagation = 5 * kMillisecond});
  }
  Simulator sim;
  Network net;
  NodeId a, b, c;
};

TEST_F(NetFixture, DirectDelivery) {
  Time arrival = 0;
  net.set_delivery_handler(b, [&](const Packet&) { arrival = sim.now(); });
  Packet p;
  p.src = a;
  p.dst = b;
  net.send(std::move(p));
  sim.run();
  EXPECT_EQ(arrival, 10 * kMillisecond);
}

TEST_F(NetFixture, MultiHopRouting) {
  Time arrival = 0;
  net.set_delivery_handler(c, [&](const Packet&) { arrival = sim.now(); });
  Packet p;
  p.src = a;
  p.dst = c;
  net.send(std::move(p));
  sim.run();
  EXPECT_EQ(arrival, 15 * kMillisecond);
  EXPECT_EQ(net.path_delay(a, c), 15 * kMillisecond);
}

TEST_F(NetFixture, TapObservesAndDrops) {
  int seen = 0, delivered = 0;
  net.add_tap(a, b, [&](Packet&, bool) {
    ++seen;
    return seen > 1 ? TapVerdict::kDrop : TapVerdict::kPass;
  });
  net.set_delivery_handler(b, [&](const Packet&) { ++delivered; });
  for (int i = 0; i < 3; ++i) {
    Packet p;
    p.src = a;
    p.dst = b;
    net.send(std::move(p));
  }
  sim.run();
  EXPECT_EQ(seen, 3);
  EXPECT_EQ(delivered, 1);
}

TEST_F(NetFixture, TapCanModifyPayload) {
  Bytes received;
  net.add_tap(a, b, [&](Packet& p, bool) {
    if (!p.payload.empty()) p.payload[0] ^= 0xff;
    return TapVerdict::kPass;
  });
  net.set_delivery_handler(b, [&](const Packet& p) { received = p.payload; });
  Packet p;
  p.src = a;
  p.dst = b;
  p.payload = {0x00, 0x01};
  net.send(std::move(p));
  sim.run();
  EXPECT_EQ(received, (Bytes{0xff, 0x01}));
}

TEST_F(NetFixture, InjectedPacketRoutesFromInjectionPoint) {
  Time arrival = 0;
  net.set_delivery_handler(c, [&](const Packet&) { arrival = sim.now(); });
  Packet p;
  p.src = a;  // claims to be from a
  p.dst = c;
  net.inject(b, std::move(p));  // but enters the network at b
  sim.run();
  EXPECT_EQ(arrival, 5 * kMillisecond);
}

TEST(Network, BandwidthSerialization) {
  Simulator sim;
  Network net(sim);
  const NodeId a = net.add_node("a");
  const NodeId b = net.add_node("b");
  // 1 Mbps: a 1054-byte packet takes ~8.4 ms to serialize.
  net.add_link(a, b, {.propagation = 0, .bandwidth_bps = 1e6});
  std::vector<Time> arrivals;
  net.set_delivery_handler(b, [&](const Packet&) { arrivals.push_back(sim.now()); });
  for (int i = 0; i < 2; ++i) {
    Packet p;
    p.src = a;
    p.dst = b;
    p.payload = Bytes(1000, 0);
    net.send(std::move(p));
  }
  sim.run();
  ASSERT_EQ(arrivals.size(), 2u);
  const Time tx = static_cast<Time>(1054 * 8);  // usec at 1 Mbps
  EXPECT_EQ(arrivals[0], tx);
  EXPECT_EQ(arrivals[1], 2 * tx);  // queued behind the first
}

TEST(Network, LossRateDropsPackets) {
  Simulator sim;
  Network net(sim, /*loss_seed=*/7);
  const NodeId a = net.add_node("a");
  const NodeId b = net.add_node("b");
  net.add_link(a, b, {.propagation = 1, .loss_rate = 0.5});
  int delivered = 0;
  net.set_delivery_handler(b, [&](const Packet&) { ++delivered; });
  for (int i = 0; i < 200; ++i) {
    Packet p;
    p.src = a;
    p.dst = b;
    net.send(std::move(p));
  }
  sim.run();
  EXPECT_GT(delivered, 60);
  EXPECT_LT(delivered, 140);
}

// ------------------------------------------------------------------- TCP

class TcpFixture : public ::testing::Test {
 protected:
  TcpFixture() : net(sim) {
    a = net.add_node("client");
    b = net.add_node("server");
    net.add_link(a, b, {.propagation = 10 * kMillisecond});
    client = std::make_unique<Host>(net, a);
    server = std::make_unique<Host>(net, b);
  }
  Simulator sim;
  Network net;
  NodeId a, b;
  std::unique_ptr<Host> client, server;
};

TEST_F(TcpFixture, HandshakeTakesOneRtt) {
  Time connected_at = 0;
  server->listen(443, [](Socket&) {});
  Socket& s = client->connect(b, 443);
  s.on_connect = [&] { connected_at = sim.now(); };
  sim.run();
  EXPECT_TRUE(s.established());
  EXPECT_EQ(connected_at, 20 * kMillisecond);  // SYN + SYN-ACK
}

TEST_F(TcpFixture, DataRoundTrip) {
  std::string received_by_server, received_by_client;
  server->listen(443, [&](Socket& s) {
    s.on_data = [&](ByteView d) {
      received_by_server += to_string(d);
      s.send(to_bytes(std::string_view("pong")));
    };
  });
  Socket& c = client->connect(b, 443);
  c.on_connect = [&] { c.send(to_bytes(std::string_view("ping"))); };
  c.on_data = [&](ByteView d) { received_by_client += to_string(d); };
  sim.run();
  EXPECT_EQ(received_by_server, "ping");
  EXPECT_EQ(received_by_client, "pong");
}

TEST_F(TcpFixture, LargeTransferIsSegmentedAndReassembled) {
  crypto::Drbg rng("tcp-large", 0);
  const Bytes blob = rng.bytes(100'000);
  Bytes received;
  server->listen(80, [&](Socket& s) {
    s.on_data = [&](ByteView d) { append(received, d); };
  });
  Socket& c = client->connect(b, 80);
  c.on_connect = [&] { c.send(blob); };
  sim.run();
  EXPECT_EQ(received, blob);
}

TEST_F(TcpFixture, SendBeforeConnectIsQueued) {
  Bytes received;
  server->listen(80, [&](Socket& s) {
    s.on_data = [&](ByteView d) { append(received, d); };
  });
  Socket& c = client->connect(b, 80);
  c.send(to_bytes(std::string_view("early")));  // before handshake completes
  sim.run();
  EXPECT_EQ(to_string(received), "early");
}

TEST_F(TcpFixture, CloseDeliversFin) {
  bool server_saw_close = false, client_saw_close = false;
  server->listen(80, [&](Socket& s) {
    s.on_close = [&] { server_saw_close = true; };
  });
  Socket& c = client->connect(b, 80);
  c.on_close = [&] { client_saw_close = true; };
  c.on_connect = [&] { c.close(); };
  sim.run();
  EXPECT_TRUE(server_saw_close);
  (void)client_saw_close;  // our simplified FIN handling closes the receiver
}

TEST_F(TcpFixture, ConnectToClosedPortGetsReset) {
  bool closed = false;
  Socket& c = client->connect(b, 9999);  // nobody listening
  c.on_close = [&] { closed = true; };
  sim.run();
  EXPECT_TRUE(closed);
  EXPECT_FALSE(c.established());
}

TEST_F(TcpFixture, RetransmissionRecoversFromLoss) {
  // Drop the first two data segments crossing the link.
  int drops = 0;
  net.add_tap(a, b, [&](Packet& p, bool a_to_b) {
    if (a_to_b && !p.payload.empty() && drops < 2) {
      ++drops;
      return TapVerdict::kDrop;
    }
    return TapVerdict::kPass;
  });
  Bytes received;
  server->listen(80, [&](Socket& s) {
    s.on_data = [&](ByteView d) { append(received, d); };
  });
  Socket& c = client->connect(b, 80);
  c.on_connect = [&] { c.send(to_bytes(std::string_view("persistent"))); };
  sim.run();
  EXPECT_EQ(drops, 2);
  EXPECT_EQ(to_string(received), "persistent");
}

TEST_F(TcpFixture, ReorderedSegmentsReassemble) {
  // Swap the order of consecutive data segments by delaying one direction's
  // first data packet: drop it once, let retransmission reorder delivery.
  std::vector<Bytes> held;
  bool captured = false;
  net.add_tap(a, b, [&](Packet& p, bool a_to_b) {
    if (a_to_b && !p.payload.empty() && !captured) {
      captured = true;
      return TapVerdict::kDrop;  // first segment lost; later ones arrive first
    }
    return TapVerdict::kPass;
  });
  crypto::Drbg rng("tcp-reorder", 0);
  const Bytes blob = rng.bytes(5000);  // several MSS
  Bytes received;
  server->listen(80, [&](Socket& s) {
    s.on_data = [&](ByteView d) { append(received, d); };
  });
  Socket& c = client->connect(b, 80);
  c.on_connect = [&] { c.send(blob); };
  sim.run();
  EXPECT_EQ(received, blob);
}

TEST_F(TcpFixture, HandshakeSurvivesSynLoss) {
  int syn_drops = 0;
  net.add_tap(a, b, [&](Packet& p, bool a_to_b) {
    if (a_to_b && p.flags.syn && syn_drops < 1) {
      ++syn_drops;
      return TapVerdict::kDrop;
    }
    return TapVerdict::kPass;
  });
  bool connected = false;
  server->listen(80, [](Socket&) {});
  Socket& c = client->connect(b, 80);
  c.on_connect = [&] { connected = true; };
  sim.run();
  EXPECT_TRUE(connected);
}

TEST_F(TcpFixture, GivesUpAfterMaxRetransmits) {
  // Black-hole every data segment after the handshake. The sender must give
  // up after bounded exponential backoff, surface an explicit error (not a
  // silent close), fire on_close exactly once, and RST the peer so the far
  // side learns the connection is dead too.
  net.add_tap(a, b, [&](Packet& p, bool a_to_b) {
    return (a_to_b && !p.payload.empty()) ? TapVerdict::kDrop : TapVerdict::kPass;
  });
  int client_closes = 0;
  SocketError client_error = SocketError::kNone;
  int server_closes = 0;
  SocketError server_error = SocketError::kNone;
  server->listen(80, [&](Socket& s) {
    s.on_error = [&](SocketError e) { server_error = e; };
    s.on_close = [&] { ++server_closes; };
  });
  Socket& c = client->connect(b, 80);
  c.on_connect = [&] { c.send(to_bytes(std::string_view("doomed"))); };
  c.on_error = [&](SocketError e) { client_error = e; };
  c.on_close = [&] { ++client_closes; };
  sim.run();
  EXPECT_EQ(client_closes, 1);
  EXPECT_EQ(client_error, SocketError::kRetransmitExhausted);
  EXPECT_EQ(c.error(), SocketError::kRetransmitExhausted);
  // The exhaustion RST crossed the (payload-only) blackhole and reset the
  // accepted socket, so the server is not left half-open.
  EXPECT_EQ(server_closes, 1);
  EXPECT_EQ(server_error, SocketError::kPeerReset);
  // Backoff bound: 200ms initial RTO doubling to a 5s cap over 10 rounds
  // stays under ~35s of virtual time — give-up is prompt, not unbounded.
  EXPECT_LT(sim.now(), 40 * kSecond);
}

TEST_F(TcpFixture, ExponentialBackoffSpacesRetransmits) {
  // Record the send times of the doomed segment: gaps must double from the
  // initial RTO and saturate at the cap.
  std::vector<Time> sends;
  net.add_tap(a, b, [&](Packet& p, bool a_to_b) {
    if (a_to_b && !p.payload.empty()) {
      sends.push_back(sim.now());
      return TapVerdict::kDrop;
    }
    return TapVerdict::kPass;
  });
  server->listen(80, [](Socket&) {});
  Socket& c = client->connect(b, 80);
  c.on_connect = [&] { c.send(to_bytes(std::string_view("x"))); };
  sim.run();
  ASSERT_GE(sends.size(), 4u);
  EXPECT_EQ(sends[1] - sends[0], 200 * kMillisecond);
  EXPECT_EQ(sends[2] - sends[1], 400 * kMillisecond);
  EXPECT_EQ(sends[3] - sends[2], 800 * kMillisecond);
  EXPECT_EQ(sends.back() - sends[sends.size() - 2], 5 * kSecond);  // capped
}

TEST_F(TcpFixture, ConvergesUnderHeavyLoss) {
  // 30% random loss in both directions: retransmission with backoff must
  // still deliver the whole stream intact, in bounded virtual time.
  Simulator lossy_sim;
  Network lossy_net(lossy_sim, /*loss_seed=*/1234);
  const NodeId la = lossy_net.add_node("client");
  const NodeId lb = lossy_net.add_node("server");
  lossy_net.add_link(la, lb, {.propagation = 10 * kMillisecond, .loss_rate = 0.3});
  Host lossy_client(lossy_net, la);
  Host lossy_server(lossy_net, lb);

  crypto::Drbg rng("tcp-lossy", 0);
  const Bytes blob = rng.bytes(30'000);
  Bytes received;
  lossy_server.listen(80, [&](Socket& s) {
    s.on_data = [&](ByteView d) { append(received, d); };
  });
  Socket& c = lossy_client.connect(lb, 80);
  c.on_connect = [&] { c.send(blob); };
  EXPECT_EQ(lossy_sim.run(), RunStatus::kDrained);
  EXPECT_EQ(received, blob);
  EXPECT_EQ(c.error(), SocketError::kNone);
  EXPECT_LT(lossy_sim.now(), 5 * 60 * kSecond);
}

}  // namespace
}  // namespace mbtls::net
