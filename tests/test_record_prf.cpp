// TLS record layer (framing, AEAD hop channels) and the TLS 1.2 PRF.
#include <gtest/gtest.h>

#include "crypto/drbg.h"
#include "tls/prf.h"
#include "tls/record.h"
#include "util/hex.h"

namespace mbtls::tls {
namespace {

// Widely-used community test vector for the TLS 1.2 PRF with SHA-256
// (appears in NSS/mbedTLS/wolfSSL test suites).
TEST(Prf, Tls12Sha256KnownAnswer) {
  const Bytes secret = hex_decode("9bbe436ba940f017b17652849a71db35");
  const Bytes seed = hex_decode("a0ba9f936cda311827a6f796ffd5198c");
  const Bytes out = prf(crypto::HashAlgo::kSha256, secret, "test label", seed, 100);
  EXPECT_EQ(hex_encode(out),
            "e3f229ba727be17b8d122620557cd453c2aab21d07c3d495329b52d4e61edb5a"
            "6b301791e90d35c9c9a46b4e14baf9af0fa022f7077def17abfd3797c0564bab"
            "4fbc91666e9def9b97fce34f796789baa48082d122ee42c5a72e5a5110fff701"
            "87347b66");
}

TEST(Prf, OutputLengthExact) {
  const Bytes secret(48, 1);
  for (std::size_t len : {1u, 12u, 31u, 32u, 33u, 48u, 104u}) {
    EXPECT_EQ(prf(crypto::HashAlgo::kSha384, secret, "l", {}, len).size(), len);
  }
}

TEST(Prf, MasterSecretDerivationShape) {
  crypto::Drbg rng("prf-test", 0);
  const Bytes pre_master = rng.bytes(32);
  const Bytes cr = rng.bytes(32), sr = rng.bytes(32);
  const Bytes ms = derive_master_secret(crypto::HashAlgo::kSha384, pre_master, cr, sr);
  EXPECT_EQ(ms.size(), 48u);
  // Different randoms give a different master.
  EXPECT_NE(ms, derive_master_secret(crypto::HashAlgo::kSha384, pre_master, sr, cr));
}

TEST(Prf, KeyBlockPartition) {
  crypto::Drbg rng("kb", 0);
  const Bytes master = rng.bytes(48);
  const Bytes cr = rng.bytes(32), sr = rng.bytes(32);
  const KeyBlock kb = derive_key_block(crypto::HashAlgo::kSha384, master, cr, sr, 32);
  EXPECT_EQ(kb.client_write.key.size(), 32u);
  EXPECT_EQ(kb.server_write.key.size(), 32u);
  EXPECT_EQ(kb.client_write.fixed_iv.size(), 4u);
  EXPECT_NE(kb.client_write.key, kb.server_write.key);
}

TEST(Prf, FinishedVerifyDataDirectional) {
  crypto::Drbg rng("fin", 0);
  const Bytes master = rng.bytes(48);
  const Bytes th = rng.bytes(48);
  const Bytes c = finished_verify_data(crypto::HashAlgo::kSha384, master, true, th);
  const Bytes s = finished_verify_data(crypto::HashAlgo::kSha384, master, false, th);
  EXPECT_EQ(c.size(), 12u);
  EXPECT_NE(c, s);
}

// --------------------------------------------------------------- records

TEST(RecordLayer, PlaintextFraming) {
  const Bytes payload = to_bytes(std::string_view("payload"));
  const Bytes rec = frame_plaintext_record(ContentType::kHandshake, payload);
  EXPECT_EQ(rec[0], 22);
  EXPECT_EQ(get_u16(rec, 1), kVersionTls12);
  EXPECT_EQ(get_u16(rec, 3), payload.size());
  EXPECT_THROW(frame_plaintext_record(ContentType::kHandshake, Bytes(kMaxRecordPayload + 1, 0)),
               ProtocolError);
}

TEST(RecordLayer, HopChannelRoundTripAndSequencing) {
  crypto::Drbg rng("hop", 0);
  const DirectionKeys keys{rng.bytes(32), rng.bytes(4)};
  HopChannel sender(keys, 0);
  HopChannel receiver(keys, 0);
  for (int i = 0; i < 5; ++i) {
    const Bytes msg = rng.bytes(100);
    const Bytes rec = sender.seal(ContentType::kApplicationData, msg);
    const auto opened =
        receiver.open(ContentType::kApplicationData, ByteView(rec).subspan(kRecordHeaderSize));
    ASSERT_TRUE(opened.has_value()) << "record " << i;
    EXPECT_EQ(*opened, msg);
  }
  EXPECT_EQ(sender.sequence(), 5u);
  EXPECT_EQ(receiver.sequence(), 5u);
}

TEST(RecordLayer, SequenceMismatchFailsAuth) {
  crypto::Drbg rng("hop-seq", 0);
  const DirectionKeys keys{rng.bytes(32), rng.bytes(4)};
  HopChannel sender(keys, 0);
  HopChannel receiver(keys, 3);  // receiver expects sequence 3
  const Bytes rec = sender.seal(ContentType::kApplicationData, Bytes(10, 1));
  EXPECT_FALSE(receiver.open(ContentType::kApplicationData, ByteView(rec).subspan(kRecordHeaderSize))
                   .has_value());
}

TEST(RecordLayer, WrongContentTypeFailsAuth) {
  crypto::Drbg rng("hop-type", 0);
  const DirectionKeys keys{rng.bytes(16), rng.bytes(4)};
  HopChannel sender(keys, 0);
  HopChannel receiver(keys, 0);
  const Bytes rec = sender.seal(ContentType::kApplicationData, Bytes(10, 1));
  // Opening as a different content type must fail (type is in the AAD).
  EXPECT_FALSE(
      receiver.open(ContentType::kAlert, ByteView(rec).subspan(kRecordHeaderSize)).has_value());
}

TEST(RecordLayer, ReaderHandlesFragmentedInput) {
  const Bytes rec1 = frame_plaintext_record(ContentType::kHandshake, Bytes(100, 1));
  const Bytes rec2 = frame_plaintext_record(ContentType::kAlert, Bytes{1, 0});
  Bytes stream = concat({rec1, rec2});
  RecordReader reader;
  int count = 0;
  // Feed one byte at a time.
  for (const auto b : stream) {
    reader.feed(ByteView(&b, 1));
    while (auto rec = reader.next()) ++count;
  }
  EXPECT_EQ(count, 2);
}

TEST(RecordLayer, ReaderRejectsOversizedClaim) {
  Bytes bogus = {22, 3, 3, 0xff, 0xff};  // claims 65535-byte record
  RecordReader reader;
  reader.feed(bogus);
  EXPECT_THROW(reader.next(), ProtocolError);
}

TEST(RecordLayer, TakeRawPreservesBytes) {
  const Bytes rec = frame_plaintext_record(ContentType::kApplicationData, Bytes(37, 9));
  RecordReader reader;
  reader.feed(rec);
  const auto raw = reader.take_raw();
  ASSERT_TRUE(raw.has_value());
  EXPECT_EQ(*raw, rec);
}

TEST(RecordLayer, HopChannelRequires4ByteIv) {
  crypto::Drbg rng("hop-iv", 0);
  EXPECT_THROW(HopChannel(DirectionKeys{rng.bytes(32), rng.bytes(12)}, 0), std::invalid_argument);
}

}  // namespace
}  // namespace mbtls::tls
